// Command crossinvvet runs the repo-specific static checks in
// internal/lint (Stats atomicity in the engine packages, nil-receiver
// guards on trace handles).
//
// Two modes:
//
//	crossinvvet dir [dir...]            walk directories, print findings
//	go vet -vettool=./crossinvvet pkgs  run as a vet analysis tool
//
// The vettool mode speaks the cmd/go unit-checker protocol by hand (the
// repo is dependency-free, so x/tools/go/analysis/unitchecker is not
// available): go vet first invokes the tool with -V=full to fingerprint
// it, then once per package with a JSON config file as the sole argument.
// The tool must write the (here empty — the checks export no facts) .vetx
// output file, print diagnostics to stderr, and exit nonzero only when
// there are findings.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"crossinv/internal/lint"
)

// vetConfig is the subset of cmd/go's vet config the tool needs. The file
// carries more fields (import maps, export data paths) that a syntactic
// pass can ignore.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOutput string
}

func main() {
	args := os.Args[1:]

	// Tool fingerprint handshake: go vet caches results keyed on the
	// tool's identity, which it asks for up front with -V=full. Any
	// stable single-line answer works; version-stamping with the content
	// of the binary is what unitchecker does, a fixed version string just
	// means editing the checks requires rebuilding the tool (CI always
	// does).
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("crossinvvet version crossinv-lint-1\n")
			return
		}
		// go vet also queries the tool's supported flags as JSON; these
		// checks take none.
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: crossinvvet dir [dir...]  (or via go vet -vettool)")
		os.Exit(2)
	}
	os.Exit(runDirs(args))
}

// runUnit handles one `go vet` package unit.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crossinvvet: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "crossinvvet: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist even though these checks export none;
	// go vet treats a missing .vetx as tool failure.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "crossinvvet: writing %s: %v\n", cfg.VetxOutput, err)
			return 1
		}
	}
	ds := lint.CheckFiles(cfg.GoFiles)
	for _, d := range ds {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(ds) > 0 {
		return 2
	}
	return 0
}

// runDirs is the standalone mode for local use.
func runDirs(dirs []string) int {
	var n int
	for _, dir := range dirs {
		ds, err := lint.CheckDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crossinvvet: %v\n", err)
			return 1
		}
		for _, d := range ds {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
		n += len(ds)
	}
	if n > 0 {
		return 2
	}
	return 0
}

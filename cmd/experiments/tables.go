package main

import (
	"fmt"

	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/sim"
	"crossinv/internal/workloads"
)

// table51 regenerates Table 5.1: the benchmark suite details and per-
// benchmark applicability of the two techniques.
func table51() {
	header("Table 5.1 — evaluated benchmark programs")
	fmt.Printf("%-14s %-10s %-16s %-12s %8s %10s\n",
		"benchmark", "suite", "function", "inner plan", "DOMORE", "SPECCROSS")
	for _, e := range workloads.All() {
		check := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		fmt.Printf("%-14s %-10s %-16s %-12s %8s %10s\n",
			e.Name, e.Suite, e.Function, e.Plan, check(e.DomoreOK), check(e.SpecOK))
	}
}

// table52 regenerates Table 5.2: the scheduler/worker time ratio of the
// DOMORE-parallelized programs, computed from the traces' per-iteration
// scheduler cost versus task cost (what the paper measured on its testbed).
func table52() {
	header("Table 5.2 — DOMORE scheduler/worker ratio (%)")
	paper := map[string]float64{
		"BLACKSCHOLES": 4.5, "CG": 4.1, "ECLAT": 12.5,
		"FLUIDANIMATE-1": 21.5, "LLUBENCH": 1.7, "SYMM": 1.5,
	}
	m := sim.DefaultModel()
	fmt.Printf("%-16s %12s %12s\n", "benchmark", "measured", "paper")
	for _, name := range domoreNames {
		tr := domoreTrace(name)
		var sched, work int64
		for _, e := range tr.Epochs {
			for _, t := range e.Tasks {
				if t.SchedCost > 0 {
					sched += t.SchedCost
				} else {
					sched += m.SchedPerIter + m.SchedPerAddr*int64(len(t.Reads)+len(t.Writes))
				}
				work += t.Cost
			}
		}
		fmt.Printf("%-16s %11.1f%% %11.1f%%\n", name, 100*float64(sched)/float64(work), paper[name])
	}
}

// table53 regenerates Table 5.3: per-benchmark task, epoch, and checking-
// request counts from a real SPECCROSS execution, plus the profiled minimum
// dependence distances at two input scales (the paper's train/ref inputs).
func table53() {
	header("Table 5.3 — SPECCROSS execution and profiling details")
	fmt.Printf("%-14s %10s %8s %10s %12s %12s\n",
		"benchmark", "tasks", "epochs", "checking", "min dist", "min dist")
	fmt.Printf("%-14s %10s %8s %10s %12s %12s\n", "", "", "", "requests", "(train)", "(ref)")
	for _, name := range specNames {
		e, err := workloads.Find(name)
		if err != nil {
			panic(err)
		}
		kind := signature.Range
		if e.Exact {
			kind = signature.Exact
		}

		// Profiling at two scales (train = 1, ref = 2).
		train := speccross.Profile(e.Make(1).(speccross.Workload), signature.Exact, 6)
		ref := speccross.Profile(e.Make(2).(speccross.Workload), signature.Exact, 6)

		// One real speculative execution for the counters.
		inst := e.Make(1).(speccross.Workload)
		cfg := speccross.Config{Workers: 4, CheckpointEvery: 1000, SigKind: kind}
		if dist, profitable := train.Recommended(cfg.Workers); profitable {
			cfg.SpecDistance = dist
		} else {
			cfg.SpecDistance = train.MinDistance
		}
		stats := speccross.Run(inst, cfg)

		fmt.Printf("%-14s %10d %8d %10d %12s %12s\n",
			name, stats.Tasks, stats.Epochs+stats.ReexecutedEpochs, stats.CheckRequests,
			fmtDist(train.MinDistance), fmtDist(ref.MinDistance))
	}
	fmt.Println("* marks no observed cross-invocation conflict (unbounded speculation is safe)")
	fmt.Println("note: this port's synthetic inputs have structural (scale-invariant) distances;")
	fmt.Println("the paper's train/ref inputs differ because its distances are data-dependent")
}

func fmtDist(d int64) string {
	if d == speccross.NoConflict {
		return "*"
	}
	return fmt.Sprintf("%d", d)
}

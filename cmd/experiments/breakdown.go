package main

import (
	"fmt"
	"time"

	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/workloads"
)

// breakdown runs two real engine executions with event tracing enabled and
// reports where the time went: the stall/queue breakdown of a DOMORE run
// (the overhead Fig 3.3's gap is made of) and the check/recovery breakdown
// of a SPECCROSS run with one injected misspeculation (the rollback cost
// Fig 5.3 trades against checkpoint frequency). The counters come from the
// exact trace Summary; the durations from the trace-derived histograms.
func breakdown() {
	header("Engine time breakdown (trace-derived)")
	breakdownDomore("CG")
	breakdownSpec("LOOPDEP")
}

func pct(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func breakdownDomore(name string) {
	e, err := workloads.Find(name)
	if err != nil {
		panic(err)
	}
	inst := e.Make(*scale)
	rec := trace.NewRecorder()
	start := time.Now()
	stats := domore.Run(inst.(domore.Workload), domore.Options{Workers: 4, Trace: rec})
	wall := time.Since(start)

	sum := rec.Summary()
	g := rec.Metrics()
	busy := g.TotalDuration("iteration.ns")
	stalled := g.TotalDuration("stall.ns")
	queueWait := g.TotalDuration("queue-empty.ns") + g.TotalDuration("queue-full.ns")
	fmt.Printf("\n%s under DOMORE (4 workers + scheduler, wall %v)\n", name, wall.Round(time.Microsecond))
	fmt.Printf("  iterations %d, dispatches %d, sync conditions %d (manifest rate %.1f%%)\n",
		stats.Iterations, stats.Dispatches, stats.SyncConditions,
		100*float64(stats.SyncConditions)/float64(max64(stats.Iterations, 1)))
	fmt.Printf("  worker time:   busy %10v (%5.1f%% of wall x workers)\n", busy.Round(time.Microsecond), pct(busy, 4*wall))
	fmt.Printf("  stall time:    %d stalls, %10v (%5.1f%%)\n",
		sum.Counts[trace.KindStallBegin], stalled.Round(time.Microsecond), pct(stalled, 4*wall))
	fmt.Printf("  queue waiting: %10v (%5.1f%%)\n", queueWait.Round(time.Microsecond), pct(queueWait, 4*wall))
}

func breakdownSpec(name string) {
	e, err := workloads.Find(name)
	if err != nil {
		panic(err)
	}
	inst := e.Make(*scale)
	rec := trace.NewRecorder()
	start := time.Now()
	// SpecDistance bounds the comparison window the same way the profiled
	// distance would (unbounded speculation makes the checker's pairwise
	// comparisons quadratic in segment size, drowning the breakdown).
	stats := speccross.Run(inst.(speccross.Workload), speccross.Config{
		Workers: 4, CheckpointEvery: 100, ForceMisspecEpoch: 2,
		SpecDistance: 512, Trace: rec,
	})
	wall := time.Since(start)

	sum := rec.Summary()
	g := rec.Metrics()
	taskTime := g.TotalDuration("task.ns")
	recovery := g.TotalDuration("recovery.ns")
	fmt.Printf("\n%s under SPECCROSS (4 workers + checker, wall %v, 1 injected misspeculation)\n",
		name, wall.Round(time.Microsecond))
	fmt.Printf("  tasks %d, epochs committed %d, re-executed %d\n",
		stats.Tasks, stats.Epochs, stats.ReexecutedEpochs)
	fmt.Printf("  checker: %d signature comparisons, %d non-empty check requests\n",
		sum.Counts[trace.KindSigCheck], sum.Counts[trace.KindCheckRequest])
	fmt.Printf("  speculative task time: %10v (%5.1f%% of wall x workers)\n",
		taskTime.Round(time.Microsecond), pct(taskTime, 4*wall))
	fmt.Printf("  misspeculations %d, recovery time %v (%5.1f%% of wall), checkpoints %d\n",
		sum.Counts[trace.KindMisspec], recovery.Round(time.Microsecond), pct(recovery, wall),
		sum.Counts[trace.KindCheckpoint])
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Command experiments regenerates every table and figure of the paper's
// evaluation (Chapter 5, plus the motivating Fig 3.3 and Fig 4.3):
//
//	experiments all            # everything below, in order
//	experiments table5.1       # benchmark suite details
//	experiments table5.2       # DOMORE scheduler/worker ratio
//	experiments table5.3       # SPECCROSS task/epoch/request counts + min distances
//	experiments fig3.3         # CG: DOMORE vs pthread-barrier speedup
//	experiments fig4.3         # barrier overhead at 8 and 24 threads
//	experiments fig5.1         # DOMORE vs barrier, six benchmarks
//	experiments fig5.2         # SPECCROSS vs barrier, eight benchmarks
//	experiments fig5.3         # speedup vs checkpoint count, with/without misspeculation
//	experiments fig5.4         # best speedups vs previous work
//	experiments fig5.6         # FLUIDANIMATE case study
//	experiments figA.1         # adaptive engine selection on the phase-shifting workload
//	experiments breakdown      # trace-derived stall/check/recovery time breakdown
//
// Speedup series are produced by the virtual-time simulator driven by each
// workload's recorded trace (see DESIGN.md substitution 1); counter tables
// are produced by running the real concurrent engines. Flags:
//
//	-scale N     input scale factor (default 1)
//	-threads N   maximum thread count of the sweeps (default 24)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"crossinv/internal/sim"
	"crossinv/internal/workloads"

	_ "crossinv/internal/workloads/blackscholes"
	_ "crossinv/internal/workloads/cg"
	_ "crossinv/internal/workloads/eclat"
	_ "crossinv/internal/workloads/equake"
	_ "crossinv/internal/workloads/fdtd"
	_ "crossinv/internal/workloads/fluidanimate"
	_ "crossinv/internal/workloads/jacobi"
	_ "crossinv/internal/workloads/llubench"
	_ "crossinv/internal/workloads/loopdep"
	_ "crossinv/internal/workloads/phased"
	_ "crossinv/internal/workloads/symm"
)

var (
	scale      = flag.Int("scale", 1, "input scale factor")
	maxThreads = flag.Int("threads", 24, "maximum thread count in sweeps")
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	runners := map[string]func(){
		"table5.1": table51,
		"table5.2": table52,
		"table5.3": table53,
		"fig3.3":   fig33,
		"fig4.3":   fig43,
		"fig5.1":   fig51,
		"fig5.2":   fig52,
		"fig5.3":   fig53,
		"fig5.4":   fig54,
		"fig5.6":    fig56,
		"figA.1":    figA1,
		"breakdown": breakdown,
	}
	order := []string{
		"table5.1", "fig3.3", "fig4.3", "fig5.1", "table5.2",
		"fig5.2", "fig5.3", "table5.3", "fig5.4", "fig5.6",
		"figA.1", "breakdown",
	}
	for _, a := range args {
		if a == "all" {
			for _, name := range order {
				runners[name]()
			}
			continue
		}
		f, ok := runners[a]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			os.Exit(2)
		}
		f()
	}
}

// threadSweep yields the x-axis of the scalability figures.
func threadSweep() []int {
	var ts []int
	for t := 2; t <= *maxThreads; t += 2 {
		ts = append(ts, t)
	}
	return ts
}

// traceOf builds (and caches) a benchmark's trace at the current scale.
var traceCache = map[string]*sim.Trace{}

func traceOf(name string) *sim.Trace {
	if tr, ok := traceCache[name]; ok {
		return tr
	}
	e, err := workloads.Find(name)
	if err != nil {
		panic(err)
	}
	tr := e.Make(*scale).Trace()
	traceCache[name] = tr
	return tr
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func header(title string) {
	fmt.Printf("\n==========================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("==========================================================\n")
}

func sortedNames(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

// specNames are the eight SPECCROSS-evaluated programs (Fig 5.2).
var specNames = []string{"CG", "EQUAKE", "FDTD", "FLUIDANIMATE", "JACOBI", "LLUBENCH", "LOOPDEP", "SYMM"}

// domoreNames are the six DOMORE-evaluated programs (Fig 5.1).
// FLUIDANIMATE here is FLUIDANIMATE-1 (ComputeForce only).
var domoreNames = []string{"BLACKSCHOLES", "CG", "ECLAT", "FLUIDANIMATE-1", "LLUBENCH", "SYMM"}

package main

import (
	"fmt"

	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/sim"
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/fluidanimate"
)

// fig33 regenerates Figure 3.3: CG loop speedup with DOMORE vs the
// pthread-barrier baseline across thread counts. The paper shows the
// barrier version below 1× (and worsening), DOMORE scaling to ~11× at 24.
func fig33() {
	header("Figure 3.3 — CG: DOMORE vs pthread barrier (loop speedup over sequential)")
	m := sim.DefaultModel()
	tr := traceOf("CG")
	seq := tr.SeqTime()
	fmt.Printf("%8s %14s %14s\n", "threads", "DOMORE", "pthread barrier")
	for _, th := range threadSweep() {
		dom := sim.SimDomore(tr, th-1, m) // th-1 workers + 1 scheduler
		bar := sim.SimBarrier(tr, th, m)
		fmt.Printf("%8d %14.2fx %14.2fx\n", th, dom.Speedup(seq), bar.Speedup(seq))
	}
	fmt.Println("paper: barrier stays below 1x; DOMORE scales to ~11x at 24 threads")
}

// fig43 regenerates Figure 4.3: barrier overhead as a percentage of
// parallel execution time at 8 and 24 threads, for the eight
// SPECCROSS-evaluated programs.
func fig43() {
	header("Figure 4.3 — barrier overhead (% of parallel runtime) at 8 and 24 threads")
	m := sim.DefaultModel()
	fmt.Printf("%-14s %10s %10s\n", "benchmark", "8 thr", "24 thr")
	for _, name := range specNames {
		tr := traceOf(name)
		row := name
		var fracs []float64
		for _, th := range []int{8, 24} {
			r := sim.SimBarrier(tr, th, m)
			fracs = append(fracs, 100*float64(r.Idle)/float64(r.Makespan*int64(r.Threads)))
		}
		fmt.Printf("%-14s %9.1f%% %9.1f%%\n", row, fracs[0], fracs[1])
	}
	fmt.Println("paper: ≥30% for most programs, growing with thread count (Amdahl limit ~3.3x)")
}

// domoreTrace returns the trace a DOMORE parallelization uses for a Fig 5.1
// benchmark; FLUIDANIMATE-1 uses the ComputeForce-only variant.
func domoreTrace(name string) *sim.Trace {
	if name == "FLUIDANIMATE-1" {
		e, err := workloads.Find("FLUIDANIMATE")
		if err != nil {
			panic(err)
		}
		return e.Make(*scale).(*fluidanimate.Fluid).TraceVariant(fluidanimate.ForcesOnly)
	}
	return traceOf(name)
}

// fig51 regenerates Figure 5.1: DOMORE vs pthread barrier for the six
// DOMORE-evaluated benchmarks, plus the cross-benchmark geomean the paper
// headlines (2.1× over barrier parallelization at 24 threads).
func fig51() {
	header("Figure 5.1 — DOMORE vs pthread barrier (loop speedup over sequential)")
	m := sim.DefaultModel()
	for _, name := range domoreNames {
		tr := domoreTrace(name)
		seq := tr.SeqTime()
		fmt.Printf("\n(%s)\n%8s %14s %14s\n", name, "threads", "DOMORE", "pthread barrier")
		for _, th := range threadSweep() {
			dom := sim.SimDomore(tr, th-1, m)
			bar := sim.SimBarrier(tr, th, m)
			fmt.Printf("%8d %14.2fx %14.2fx\n", th, dom.Speedup(seq), bar.Speedup(seq))
		}
	}
	// Headline geomean at 24 threads.
	var overBarrier, overSeq []float64
	for _, name := range domoreNames {
		tr := domoreTrace(name)
		seq := tr.SeqTime()
		dom := sim.SimDomore(tr, 23, m)
		bar := sim.SimBarrier(tr, 24, m)
		overBarrier = append(overBarrier, float64(bar.Makespan)/float64(dom.Makespan))
		overSeq = append(overSeq, dom.Speedup(seq))
	}
	fmt.Printf("\ngeomean at 24 threads: %.1fx over barrier parallelization, %.1fx over sequential\n",
		geomean(overBarrier), geomean(overSeq))
	fmt.Println("paper: 2.1x over barrier parallelization, 3.2x over sequential")
}

// specGate profiles a benchmark (exact signatures, windowed) and returns
// the per-epoch speculative bound to simulate with: the per-loop profiled
// distances for workloads with labeled epochs, a single global distance
// otherwise (§4.4).
type gate struct {
	of   func(epoch int) int64
	desc string
}

var gateCache = map[string]gate{}

func specGate(name string) gate {
	if g, ok := gateCache[name]; ok {
		return g
	}
	e, err := workloads.Find(name)
	if err != nil {
		panic(err)
	}
	inst := e.Make(1) // distances are structural; scale 1 suffices
	sw, ok := inst.(speccross.Workload)
	if !ok {
		g := gate{of: func(int) int64 { return 0 }, desc: "n/a"}
		gateCache[name] = g
		return g
	}
	pr := speccross.Profile(sw, signature.Exact, 6)
	g := gate{of: pr.PerEpoch(sw), desc: distStr(pr.MinDistance, pr)}
	gateCache[name] = g
	return g
}

func distStr(d int64, pr speccross.ProfileResult) string {
	if pr.MinDistance == speccross.NoConflict {
		return "unbounded (no conflicts observed)"
	}
	if len(pr.PerLoop) > 1 {
		return fmt.Sprintf("per-loop, min %d tasks", d)
	}
	return fmt.Sprintf("%d tasks", d)
}

// fig52 regenerates Figure 5.2: SPECCROSS vs pthread barrier for the eight
// benchmarks, plus the headline geomeans (4.6× vs 1.3× over sequential).
func fig52() {
	header("Figure 5.2 — SPECCROSS vs pthread barrier (loop speedup over sequential)")
	m := sim.DefaultModel()
	for _, name := range specNames {
		tr := traceOf(name)
		seq := tr.SeqTime()
		g := specGate(name)
		fmt.Printf("\n(%s)  [speculative range: %s]\n%8s %14s %14s\n",
			name, g.desc, "threads", "SPECCROSS", "pthread barrier")
		for _, th := range threadSweep() {
			spec := sim.SimSpecCross(tr, sim.SpecConfig{
				Workers: th - 1, CheckpointEvery: ckptPeriod(tr), DistanceOf: g.of,
			}, m)
			bar := sim.SimBarrier(tr, th, m)
			fmt.Printf("%8d %14.2fx %14.2fx\n", th, spec.Speedup(seq), bar.Speedup(seq))
		}
	}
	var specS, barS []float64
	for _, name := range specNames {
		tr := traceOf(name)
		seq := tr.SeqTime()
		spec := sim.SimSpecCross(tr, sim.SpecConfig{
			Workers: 23, CheckpointEvery: ckptPeriod(tr), DistanceOf: specGate(name).of,
		}, m)
		bar := sim.SimBarrier(tr, 24, m)
		specS = append(specS, spec.Speedup(seq))
		barS = append(barS, bar.Speedup(seq))
	}
	fmt.Printf("\ngeomean at 24 threads: SPECCROSS %.1fx, barrier %.1fx (over best sequential)\n",
		geomean(specS), geomean(barS))
	fmt.Println("paper: SPECCROSS 4.6x vs 1.3x for barrier-only parallelization")
}

// ckptPeriod picks the paper's default (every 1000 epochs) capped to the
// trace length.
func ckptPeriod(tr *sim.Trace) int {
	if len(tr.Epochs) < 1000 {
		return len(tr.Epochs)
	}
	return 1000
}

// fig53 regenerates Figure 5.3: geomean speedup at 24 threads as the number
// of checkpoints sweeps from 2 to 100, with and without one injected
// misspeculation.
func fig53() {
	header("Figure 5.3 — geomean speedup vs number of checkpoints (24 threads)")
	m := sim.DefaultModel()
	fmt.Printf("%12s %14s %14s\n", "checkpoints", "no misspec.", "with misspec.")
	for _, numCkpt := range []int{2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		var clean, faulty []float64
		for _, name := range specNames {
			tr := traceOf(name)
			seq := tr.SeqTime()
			period := len(tr.Epochs) / numCkpt
			if period < 1 {
				period = 1
			}
			g := specGate(name)
			c := sim.SimSpecCross(tr, sim.SpecConfig{
				Workers: 23, CheckpointEvery: period, DistanceOf: g.of,
			}, m)
			f := sim.SimSpecCross(tr, sim.SpecConfig{
				Workers: 23, CheckpointEvery: period, DistanceOf: g.of,
				MisspecEpoch: len(tr.Epochs) / 2,
			}, m)
			clean = append(clean, c.Speedup(seq))
			faulty = append(faulty, f.Speedup(seq))
		}
		fmt.Printf("%12d %13.2fx %13.2fx\n", numCkpt, geomean(clean), geomean(faulty))
	}
	fmt.Println("paper: checkpoint overhead grows with count; re-execution cost shrinks — the curves cross")
}

// fig54 regenerates Figure 5.4: the best speedup this work achieves per
// benchmark vs the best previously reported (values recorded from the
// paper's Fig 5.4, approximate — they are testbed-specific).
func fig54() {
	header("Figure 5.4 — best speedup: this work vs previous work (24 threads)")
	m := sim.DefaultModel()
	prev := map[string]float64{
		// Recorded from the paper's Fig 5.4 bars (approximate): SMTX for
		// BLACKSCHOLES, DSWP+ for CG/ECLAT, Helix for EQUAKE, Polly for
		// the PolyBench codes, the hand-parallelized PARSEC version for
		// FLUIDANIMATE, OMP for LOOPDEP.
		"BLACKSCHOLES": 20.0, "CG": 5.0, "ECLAT": 4.5, "EQUAKE": 6.0,
		"FDTD": 1.2, "FLUIDANIMATE": 6.3, "JACOBI": 1.2, "LLUBENCH": 3.4,
		"LOOPDEP": 2.0, "SYMM": 1.1,
	}
	fmt.Printf("%-14s %12s %14s\n", "benchmark", "this work", "previous work")
	names := []string{"BLACKSCHOLES", "CG", "ECLAT", "EQUAKE", "FDTD", "FLUIDANIMATE", "JACOBI", "LLUBENCH", "LOOPDEP", "SYMM"}
	for _, name := range names {
		best := 0.0
		e, err := workloads.Find(name)
		if err != nil {
			panic(err)
		}
		tr := traceOf(name)
		seq := tr.SeqTime()
		if e.DomoreOK {
			dtr := tr
			if name == "FLUIDANIMATE" {
				dtr = e.Make(*scale).(*fluidanimate.Fluid).TraceVariant(fluidanimate.Domore)
			}
			if s := sim.SimDomore(dtr, 23, m).Speedup(dtr.SeqTime()); s > best {
				best = s
			}
		}
		if e.SpecOK {
			s := sim.SimSpecCross(tr, sim.SpecConfig{
				Workers: 23, CheckpointEvery: ckptPeriod(tr), DistanceOf: specGate(name).of,
			}, m).Speedup(seq)
			if s > best {
				best = s
			}
		}
		fmt.Printf("%-14s %11.1fx %13.1fx\n", name, best, prev[name])
	}
	fmt.Println("paper: this work beats or matches previous work everywhere except")
	fmt.Println("BLACKSCHOLES (SMTX pipeline) and FLUIDANIMATE (hand-tuned DOANY)")
}

// fig56 regenerates Figure 5.6: the FLUIDANIMATE case study comparing five
// parallelization plans across thread counts.
func fig56() {
	header("Figure 5.6 — FLUIDANIMATE: program speedup by parallelization plan")
	m := sim.DefaultModel()
	e, err := workloads.Find("FLUIDANIMATE")
	if err != nil {
		panic(err)
	}
	f := e.Make(*scale).(*fluidanimate.Fluid)
	lw := f.TraceVariant(fluidanimate.LocalWrite)
	dm := f.TraceVariant(fluidanimate.Domore)
	mn := f.TraceVariant(fluidanimate.Manual)
	dmJoin := f.TraceVariant(fluidanimate.Domore)
	for i := range dmJoin.Epochs {
		dmJoin.Epochs[i].JoinAfter = true
	}
	// The sequential baseline performs each pair computation once and takes
	// no locks: the original program's work.
	seq := f.SeqWork()
	fgate := specGate("FLUIDANIMATE").of

	fmt.Printf("%8s %12s %12s %12s %12s %12s\n",
		"threads", "LW+Barrier", "LW+SpecX", "DOMORE+Bar", "DOMORE+SpecX", "MANUAL(DOANY)")
	for _, th := range threadSweep() {
		lwB := sim.SimBarrier(lw, th, m)
		lwS := sim.SimSpecCross(lw, sim.SpecConfig{Workers: th - 1, CheckpointEvery: ckptPeriod(lw), DistanceOf: fgate}, m)
		dmB := sim.SimDomore(dmJoin, th-1, m)
		dmS := sim.SimDomore(dm, th-1, m)
		man := sim.SimBarrier(mn, th, m)
		fmt.Printf("%8d %11.2fx %11.2fx %11.2fx %11.2fx %11.2fx\n", th,
			lwB.Speedup(seq), lwS.Speedup(seq), dmB.Speedup(seq), dmS.Speedup(seq), man.Speedup(seq))
	}
	fmt.Println("paper: DOMORE+SpecCross best overall; DOMORE+Barrier beats LW variants and")
	fmt.Println("the manual version at most thread counts; LW+SpecCross > LW+Barrier always")
}

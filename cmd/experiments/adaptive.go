package main

import (
	"fmt"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/sim"
	"crossinv/internal/workloads/phased"
)

// figA1 regenerates Figure A.1 (this reproduction's own extension, not a
// paper figure): the adaptive hybrid runtime on the phase-shifting
// synthetic workload. The workload's manifest-dependence rate drifts
// mid-run — high (DOMORE territory), then low (SPECCROSS territory), then
// high again — so no static engine choice wins end-to-end. The controller
// monitors each window and switches engines at window boundaries; the
// figure shows it tracking the per-phase winner across the 2–24 core
// sweep. See EXPERIMENTS.md "Figure A.1".
func figA1() {
	header("Figure A.1 — adaptive engine selection on the phase-shifting workload")
	m := sim.DefaultModel()
	tr := traceOf("PHASED")
	seq := tr.SeqTime()
	bounds := phased.PhaseBounds(*scale)

	adaptiveAt := func(th int) sim.AdaptiveResult {
		return sim.SimAdaptive(tr, sim.AdaptiveConfig{Threads: th, Window: phased.Window}, m)
	}
	staticSpec := func(t *sim.Trace, th int) sim.AdaptiveResult {
		// The static SPECCROSS run goes through the same windowed path
		// (checkpoint segments of Window epochs), so its misspeculating
		// high-phase windows pay rollback and barrier re-execution.
		return sim.SimAdaptive(t, sim.AdaptiveConfig{
			Threads: th, Window: phased.Window,
			Policy: adaptive.Fixed(adaptive.EngineSpecCross),
			Start:  adaptive.EngineSpecCross,
		}, m)
	}

	fmt.Printf("\n(%s: %d epochs x %d tasks, phases high/low/high at %v)\n",
		tr.Name, len(tr.Epochs), phased.TasksPerEpoch, bounds[:phased.NumPhases])
	fmt.Printf("%8s %10s %10s %14s %10s %9s\n",
		"threads", "adaptive", "DOMORE", "SPECCROSS", "barrier", "switches")
	for _, th := range threadSweep() {
		ad := adaptiveAt(th)
		dom := sim.SimDomore(tr, th-1, m)
		spec := staticSpec(tr, th)
		bar := sim.SimBarrier(tr, th, m)
		fmt.Printf("%8d %9.2fx %9.2fx %13.2fx %9.2fx %9d\n",
			th, ad.Speedup(seq), dom.Speedup(seq), spec.Speedup(seq), bar.Speedup(seq), ad.Switches)
	}

	// Per-phase breakdown at the top budget: the acceptance bar is staying
	// within 10% of the best static engine in every phase.
	th := *maxThreads
	res := adaptiveAt(th)
	fmt.Printf("\nper-phase at %d threads (virtual time; switches charged to their phase):\n", th)
	fmt.Printf("%8s %6s %14s %20s %8s\n", "phase", "kind", "adaptive", "best static", "ratio")
	phaseMk := make([]int64, phased.NumPhases)
	prev := adaptive.Engine(-1)
	swCost := m.BarrierBase + m.BarrierPerThread*int64(th)
	for _, w := range res.Windows {
		p := 0
		for p+1 < phased.NumPhases && w.Start >= bounds[p+1] {
			p++
		}
		phaseMk[p] += w.Makespan
		if prev >= 0 && w.Engine != prev {
			phaseMk[p] += swCost
		}
		prev = w.Engine
	}
	for p := 0; p < phased.NumPhases; p++ {
		sub := &sim.Trace{Name: tr.Name, Epochs: tr.Epochs[bounds[p]:bounds[p+1]]}
		best := int64(1) << 62
		bestEng := adaptive.EngineDomore
		for eng, mk := range map[adaptive.Engine]int64{
			adaptive.EngineBarrier:   sim.SimBarrier(sub, th, m).Makespan,
			adaptive.EngineDomore:    sim.SimDomore(sub, th-1, m).Makespan,
			adaptive.EngineSpecCross: staticSpec(sub, th).Makespan,
		} {
			if mk < best {
				best, bestEng = mk, eng
			}
		}
		kind := "high"
		if p%2 == 1 {
			kind = "low"
		}
		fmt.Printf("%8d %6s %14d %9d (%-10s %7.3f\n",
			p, kind, phaseMk[p], best, bestEng.String()+")", float64(phaseMk[p])/float64(best))
	}
	fmt.Printf("\nengine windows [domore speccross barrier domore-sharded]: %v, %d switches\n",
		res.EngineWindows, res.Switches)
	fmt.Println("acceptance: adaptive within 10% of the best static engine per phase,")
	fmt.Println("beating both all-DOMORE and all-SPECCROSS end-to-end")
}

// Command crossinv is the compiler driver: it parses a loop-nest-language
// program, runs the dependence analysis, reports the candidate regions, and
// executes the program under the chosen strategy, verifying every parallel
// execution against the sequential result.
//
// Usage:
//
//	crossinv [flags] <program.lnl>
//
//	-mode     seq | barrier | domore | domore-sharded | speccross | adaptive
//	          | all   (default all)
//	-engine   alias of -mode (the adaptive-runtime docs use this name; an
//	          explicit -mode that disagrees with -engine is an error)
//	-workers  worker thread count (default 4)
//	-lanes    scheduler lane count for domore-sharded (0: runtime default)
//	-region   candidate region index (default: last detected)
//	-report   print the per-region analysis report and exit
//	-analyze  print the cross-invocation dependence report (distance and
//	          direction vectors, per-region none/forward-only/cyclic/unknown
//	          classification) and exit
//	-lint     run the static plan verifier and exit (nonzero on any error)
//	-json     with -lint or -analyze: emit the result as JSON
//	-dump     print the lowered IR and exit
//	-profile  run the §4.4 profiling pass before speculating (speccross)
//	-ckpt     SPECCROSS checkpoint period in epochs (default 1000)
//	-window   adaptive monitoring window in epochs (0: runtime default)
//	-trace    write a Chrome trace_event JSON of the run to FILE (single
//	          engine modes only; load via chrome://tracing or Perfetto)
//	-metrics  print the metrics registry and per-thread timeline after the
//	          run (single engine modes only)
//	-misspec  inject a misspeculation at epoch N (speccross/adaptive;
//	          with -remote it is forwarded to the daemon, which exercises
//	          its rollback path and flight recorder)
//	-explain  print the adaptive controller's per-window decision audit
//	          after the run: engine, sampled signals, and the policy's
//	          stated reason. With -remote it fetches the daemon's
//	          /debug/decisions journal for the invocation
//	-serve    serve /metrics (Prometheus text), /summary (JSON), and
//	          /debug/pprof/ on ADDR while looping the workload (any mode,
//	          including adaptive and all; CPU profiles carry engine/lane
//	          labels). The loop is the daemon's ServeWorkloadLoop.
//	-serve-runs  with -serve: stop after N runs (0: loop until killed)
//	-remote   send the program to a crossinvd daemon at ADDR instead of
//	          compiling locally — repeat invocations hit the daemon's
//	          plan cache and skip analysis entirely
//
// Examples:
//
//	crossinv -mode all -workers 8 examples/compiler/stencil.lnl
//	crossinv -mode domore -trace out.json -metrics examples/compiler/cg.lnl
//	crossinv -mode speccross -misspec 2 -trace spec.json examples/compiler/cg.lnl
//	crossinv -mode adaptive -serve localhost:9090 examples/compiler/cg.lnl
//	crossinv -remote localhost:9123 -mode speccross examples/compiler/cg.lnl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"crossinv/internal/core"
	"crossinv/internal/daemon"
	"crossinv/internal/ir"
	"crossinv/internal/ir/interp"
	"crossinv/internal/obs"
	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/sim"
	"crossinv/internal/transform/speccrossgen"
)

var (
	mode    = flag.String("mode", "all", "execution mode: seq|barrier|domore|domore-sharded|speccross|adaptive|all")
	engine  = flag.String("engine", "", "alias of -mode")
	workers = flag.Int("workers", 4, "worker thread count")
	lanes   = flag.Int("lanes", 0, "scheduler lane count for domore-sharded (0: runtime default)")
	region  = flag.Int("region", -1, "candidate region index (-1: last)")
	report  = flag.Bool("report", false, "print the analysis report and exit")
	analyze = flag.Bool("analyze", false, "print the cross-invocation dependence report and exit")
	lint    = flag.Bool("lint", false, "run the static plan verifier and exit (nonzero on any error)")
	jsonOut = flag.Bool("json", false, "with -lint or -analyze: emit the result as JSON")
	dump    = flag.Bool("dump", false, "print the lowered IR and exit")
	profile = flag.Bool("profile", false, "profile before speculating")
	ckpt    = flag.Int("ckpt", 1000, "speccross checkpoint period (epochs)")
	window  = flag.Int("window", 0, "adaptive monitoring window in epochs (0: runtime default)")
	sweep   = flag.Bool("sweep", false, "print a 2..24-thread virtual-time scalability sweep and exit")

	traceFile = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
	metrics   = flag.Bool("metrics", false, "print the metrics registry and per-thread timeline after the run")
	misspec   = flag.Int("misspec", 0, "inject a misspeculation at this epoch (speccross/adaptive)")
	explain   = flag.Bool("explain", false, "print the adaptive controller's per-window decision audit after the run (adaptive mode; works with -remote)")

	serve     = flag.String("serve", "", "serve /metrics, /summary, and /debug/pprof on this address while looping the workload")
	serveRuns = flag.Int("serve-runs", 0, "with -serve: stop after this many runs (0: loop until killed)")

	remote = flag.String("remote", "", "run against a crossinvd daemon at this address instead of compiling locally")
)

func main() {
	flag.Parse()
	modeSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "mode" {
			modeSet = true
		}
	})
	resolved, err := resolveMode(*mode, modeSet, *engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossinv:", err)
		os.Exit(2)
	}
	*mode = resolved
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crossinv [flags] <program.lnl>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *remote != "" {
		if *report || *analyze || *lint || *dump || *sweep || *serve != "" || *traceFile != "" || *metrics {
			fatal(fmt.Errorf("-remote sends the program to a daemon; it cannot combine with local-analysis flags (-report/-analyze/-lint/-dump/-sweep/-serve/-trace/-metrics)"))
		}
		if *misspec > 0 && *mode != "speccross" && *mode != "adaptive" {
			fatal(fmt.Errorf("-misspec applies only to -mode speccross or adaptive, not %s", *mode))
		}
		if *explain && *mode != "adaptive" && *mode != "all" {
			fatal(fmt.Errorf("-explain renders the adaptive decision audit; it needs -mode adaptive (or all), not %s", *mode))
		}
		if err := runRemote(*remote, string(src), *mode, *workers, *region, *window, *misspec, *explain); err != nil {
			fatal(err)
		}
		return
	}
	if *explain && *mode != "adaptive" {
		fatal(fmt.Errorf("-explain renders the adaptive decision audit; it needs -mode adaptive, not %s", *mode))
	}
	c, err := core.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if *dump {
		fmt.Print(c.Prog.Dump())
		return
	}
	if *lint {
		out, hasErrors, err := lintOutput(c, flag.Arg(0), *jsonOut)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		if hasErrors {
			os.Exit(1)
		}
		return
	}
	if *report {
		fmt.Print(reportOutput(c))
		return
	}
	if *analyze {
		out, err := analyzeOutput(c, *jsonOut)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	var target *ir.Loop
	if len(c.Regions) > 0 {
		idx := *region
		if idx < 0 {
			idx = len(c.Regions) - 1
		}
		target, err = c.Region(idx)
		if err != nil {
			fatal(err)
		}
	}

	if *sweep {
		if target == nil {
			fatal(fmt.Errorf("no candidate region to sweep"))
		}
		runSweep(c, target)
		return
	}

	observing := *traceFile != "" || *metrics || *serve != ""
	if *traceFile != "" || *metrics || *misspec > 0 {
		switch *mode {
		case "all", "seq":
			fatal(fmt.Errorf("-trace/-metrics/-misspec need a single engine mode, not -mode %s", *mode))
		}
	}
	if *misspec > 0 && *mode != "speccross" && *mode != "adaptive" {
		fatal(fmt.Errorf("-misspec applies only to -mode speccross or adaptive, not %s", *mode))
	}
	var rec *trace.Recorder
	if observing {
		rec = trace.NewRecorder()
	}

	seqEnv, err := c.RunSequential()
	if err != nil {
		fatal(err)
	}
	want := seqEnv.Checksum()
	fmt.Printf("sequential: checksum %016x\n", want)

	runMode := func(m string) {
		if target == nil {
			fmt.Printf("%-10s skipped (no candidate region)\n", m)
			return
		}
		start := time.Now()
		var got uint64
		switch m {
		case "barrier":
			res, err := c.RunBarriersTraced(target, *workers, rec)
			if err != nil {
				fmt.Printf("%-10s inapplicable: %v\n", m, err)
				return
			}
			got = res.Env.Checksum()
			idle, waits := res.Barrier.Stats()
			fmt.Printf("%-10s checksum %016x  %v  (barrier waits %d, idle %v)\n",
				m, got, time.Since(start).Round(time.Microsecond), waits, idle.Round(time.Microsecond))
		case "domore":
			res, err := c.RunDOMOREOpts(target, domore.Options{Workers: *workers, Trace: rec})
			if err != nil {
				fmt.Printf("%-10s inapplicable: %v\n", m, err)
				return
			}
			got = res.Env.Checksum()
			fmt.Printf("%-10s checksum %016x  %v  (iterations %d, sync conditions %d, stalls %d)\n",
				m, got, time.Since(start).Round(time.Microsecond),
				res.Stats.Iterations, res.Stats.SyncConditions, res.Stats.Stalls)
		case "domore-sharded":
			res, err := c.RunDOMOREShardedOpts(target, domore.Options{Workers: *workers, Lanes: *lanes, Trace: rec})
			if err != nil {
				fmt.Printf("%-10s inapplicable: %v\n", m, err)
				return
			}
			got = res.Env.Checksum()
			fmt.Printf("%-10s checksum %016x  %v  (iterations %d, sync conditions %d, batches %d, lane waits %d)\n",
				m, got, time.Since(start).Round(time.Microsecond),
				res.Stats.Iterations, res.Stats.SyncConditions, res.Stats.Batches, res.Stats.LaneWaits)
		case "speccross":
			res, err := c.RunSpecCross(target, speccross.Config{
				Workers: *workers, CheckpointEvery: *ckpt,
				ForceMisspecEpoch: *misspec, Trace: rec,
			}, *profile)
			if err != nil {
				fmt.Printf("%-10s inapplicable: %v\n", m, err)
				return
			}
			got = res.Env.Checksum()
			fmt.Printf("%-10s checksum %016x  %v  (tasks %d, misspeculations %d, checkpoints %d)\n",
				m, got, time.Since(start).Round(time.Microsecond),
				res.Stats.Tasks, res.Stats.Misspeculations, res.Stats.Checkpoints)
		case "adaptive":
			acfg := adaptive.Config{Workers: *workers, Window: *window, Trace: rec}
			acfg.Spec.ForceMisspecEpoch = *misspec
			var audit []obs.DecisionEntry
			if *explain {
				acfg.OnDecision = func(d adaptive.Decision) {
					audit = append(audit, obs.DecisionFromAudit("", d))
				}
			}
			res, err := c.RunAdaptive(target, acfg)
			if err != nil {
				fmt.Printf("%-10s inapplicable: %v\n", m, err)
				return
			}
			got = res.Env.Checksum()
			fmt.Printf("%-10s checksum %016x  %v  (windows %d, switches %d, engine windows [domore speccross barrier domore-sharded] %v)\n",
				m, got, time.Since(start).Round(time.Microsecond),
				res.Stats.Windows, res.Stats.Switches, res.Stats.EngineWindows)
			if *explain {
				fmt.Print(renderDecisions(audit))
			}
		}
		if got != want {
			fmt.Fprintf(os.Stderr, "FAIL: %s checksum %016x != sequential %016x\n", m, got, want)
			os.Exit(1)
		}
	}

	runAll := func() {
		runMode("barrier")
		runMode("domore")
		runMode("domore-sharded")
		runMode("speccross")
		runMode("adaptive")
	}
	runSeq := func() {
		env, err := c.RunSequential()
		if err != nil {
			fatal(err)
		}
		if got := env.Checksum(); got != want {
			fmt.Fprintf(os.Stderr, "FAIL: seq checksum %016x != sequential %016x\n", got, want)
			os.Exit(1)
		}
	}
	var runOnce func()
	switch *mode {
	case "seq":
		runOnce = runSeq
	case "all":
		runOnce = runAll
	case "barrier", "domore", "domore-sharded", "speccross", "adaptive":
		runOnce = func() { runMode(*mode) }
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *serve != "" {
		// One serve loop for every mode — including adaptive and all; the
		// loop body is whatever the mode would have run once.
		if err := serveLoop(*serve, *serveRuns, rec, runOnce); err != nil {
			fatal(err)
		}
	} else if *mode != "seq" {
		runOnce()
	}

	if rec != nil {
		if err := exportTrace(rec, *traceFile, *metrics); err != nil {
			fatal(err)
		}
	}
}

// serveLoop exposes the observability mux on addr and keeps re-running the
// selected engine against the shared recorder, so /metrics and the pprof
// endpoints can be scraped while work is in flight. The recorder's
// counters are cumulative across runs — the monotone series Prometheus
// counters expect. runs == 0 loops until the process is killed.
func serveLoop(addr string, runs int, rec *trace.Recorder, runOnce func()) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving /metrics, /summary, /debug/pprof/ on http://%s\n", ln.Addr())
	return serveOn(ln, runs, rec, runOnce)
}

// serveOn runs the loop against an existing listener (split out so tests
// can allocate the port). The loop itself lives in internal/daemon —
// crossinvd and -serve share one implementation. The listener is closed
// when the loop ends.
func serveOn(ln net.Listener, runs int, rec *trace.Recorder, runOnce func()) error {
	return daemon.ServeWorkloadLoop(ln, runs, rec, runOnce)
}

// exportTrace writes the recorder's Chrome trace_event JSON to file (when
// file is non-empty) and prints the metrics registry plus the per-thread
// timeline to stdout (when metrics is set).
func exportTrace(rec *trace.Recorder, file string, metrics bool) error {
	if file != "" {
		f, err := os.Create(file)
		if err != nil {
			return err
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		sum := rec.Summary()
		fmt.Printf("trace: %s (%d events, %d dropped, %d lanes)\n", file, sum.Events, sum.Dropped, sum.Lanes)
	}
	if metrics {
		fmt.Println("metrics:")
		if err := rec.Metrics().WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println("timeline:")
		if err := rec.WriteTimeline(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// resolveMode reconciles -mode and -engine: -engine is an alias of -mode,
// so setting both to different values is a contradiction the driver refuses
// rather than silently letting one win. modeSet says whether -mode was
// given explicitly (its default does not conflict with anything).
func resolveMode(mode string, modeSet bool, engine string) (string, error) {
	if engine == "" {
		return mode, nil
	}
	if modeSet && mode != engine {
		return "", fmt.Errorf("-mode=%s and -engine=%s disagree; -engine is an alias of -mode, set only one", mode, engine)
	}
	return engine, nil
}

// lintOutput renders the static plan verifier's diagnostics for the
// program, as text or JSON, and reports whether any has error severity.
func lintOutput(c *core.Compiled, file string, asJSON bool) (string, bool, error) {
	list := c.Lint().WithFile(file)
	if asJSON {
		raw, err := list.JSON()
		if err != nil {
			return "", false, err
		}
		return string(raw) + "\n", list.HasErrors(), nil
	}
	return list.Text(), list.HasErrors(), nil
}

// analyzeOutput renders the cross-invocation dependence facts, as the
// human-readable report or as the serialized Facts JSON (the exact form
// whose hash feeds the plan-cache fingerprint).
func analyzeOutput(c *core.Compiled, asJSON bool) (string, error) {
	facts := c.XDep()
	if asJSON {
		raw, err := json.MarshalIndent(facts, "", "  ")
		if err != nil {
			return "", err
		}
		return string(raw) + "\n", nil
	}
	return facts.Text(), nil
}

// reportOutput renders the per-region analysis report.
func reportOutput(c *core.Compiled) string {
	if len(c.Regions) == 0 {
		return "no candidate regions (no outer loop with parallel inner loops)\n"
	}
	var s string
	for _, r := range c.Regions {
		s += c.Report(r)
	}
	return s
}

// runSweep compiles the region into an instruction-counted virtual-time
// trace and prints the scalability series the paper's figures plot: the
// barrier baseline, DOMORE's pipeline, and SPECCROSS with the profiled
// speculative range.
func runSweep(c *core.Compiled, target *ir.Loop) {
	fresh := interp.NewEnv(c.Prog)
	r, err := speccrossgen.New(c.Prog, c.Dep, target, fresh, 1)
	if err != nil {
		fatal(err)
	}
	tr := r.Trace(0)
	pr := r.Profile(signature.Exact)
	dist, _ := pr.Recommended(24)
	seq := tr.SeqTime()
	m := sim.DefaultModel()
	fmt.Printf("virtual-time sweep (%d epochs, %d tasks, min dependence distance %s)\n",
		len(tr.Epochs), tr.Tasks(), distText(pr))
	fmt.Printf("%8s %12s %12s %12s\n", "threads", "barrier", "domore", "speccross")
	for th := 2; th <= 24; th += 2 {
		bar := sim.SimBarrier(tr, th, m)
		dom := sim.SimDomore(tr, th-1, m)
		spec := sim.SimSpecCross(tr, sim.SpecConfig{
			Workers: th - 1, CheckpointEvery: len(tr.Epochs), SpecDistance: dist,
		}, m)
		fmt.Printf("%8d %11.2fx %11.2fx %11.2fx\n", th, bar.Speedup(seq), dom.Speedup(seq), spec.Speedup(seq))
	}
}

func distText(pr speccross.ProfileResult) string {
	if pr.MinDistance == speccross.NoConflict {
		return "* (none)"
	}
	return fmt.Sprintf("%d", pr.MinDistance)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crossinv:", err)
	os.Exit(1)
}

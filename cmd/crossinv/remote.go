package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"crossinv/internal/daemon"
)

// runRemote is the -remote client mode: instead of compiling locally, the
// program text is POSTed to a crossinvd daemon, which compiles, plans,
// profiles, and executes it server-side — hot from its plan cache when it
// has seen the program before. Mode "all" expands to one request per
// engine, mirroring the local driver's output shape.
func runRemote(addr, src, mode string, workers, region, window int) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	modes := []string{mode}
	if mode == "all" {
		modes = []string{"seq", "barrier", "domore", "speccross", "adaptive"}
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	for _, m := range modes {
		resp, status, err := postRun(client, base, &daemon.RunRequest{
			Source: src, Mode: m, Workers: workers, Region: region, Window: window,
		})
		if err != nil {
			return err
		}
		switch {
		case status == 200:
			fmt.Printf("%-10s checksum %016x  %v  (remote %s, cache %s, analysis spans %d)\n",
				resp.Engine, resp.Checksum, time.Duration(resp.DurationNs).Round(time.Microsecond),
				addr, resp.Cache, resp.AnalysisSpans)
		case status == 422:
			fmt.Printf("%-10s inapplicable: %s\n", m, resp.Error)
		case status == 429 || status == 503:
			return fmt.Errorf("daemon at %s refused the invocation (%d): %s", addr, status, resp.Error)
		default:
			return fmt.Errorf("daemon at %s: %s (%d): %s", addr, m, status, resp.Error)
		}
	}
	return nil
}

func postRun(client *http.Client, base string, req *daemon.RunRequest) (*daemon.RunResponse, int, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	httpResp, err := client.Post(base+"/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, 0, fmt.Errorf("reaching daemon: %w", err)
	}
	defer httpResp.Body.Close()
	var resp daemon.RunResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, httpResp.StatusCode, fmt.Errorf("decoding daemon response: %w", err)
	}
	return &resp, httpResp.StatusCode, nil
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"crossinv/internal/daemon"
	"crossinv/internal/obs"
)

// runRemote is the -remote client mode: instead of compiling locally, the
// program text is POSTed to a crossinvd daemon, which compiles, plans,
// profiles, and executes it server-side — hot from its plan cache when it
// has seen the program before. Mode "all" expands to one request per
// engine, mirroring the local driver's output shape. With explain, the
// daemon's /debug/decisions journal is fetched for each adaptive
// invocation and rendered like the local audit.
func runRemote(addr, src, mode string, workers, region, window, misspec int, explain bool) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	modes := []string{mode}
	if mode == "all" {
		modes = []string{"seq", "barrier", "domore", "speccross", "adaptive"}
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	for _, m := range modes {
		req := &daemon.RunRequest{
			Source: src, Mode: m, Workers: workers, Region: region, Window: window,
		}
		if m == "speccross" || m == "adaptive" {
			req.Misspec = misspec
		}
		resp, status, err := postRun(client, base, req)
		if err != nil {
			return err
		}
		switch {
		case status == 200:
			fmt.Printf("%-10s checksum %016x  %v  (remote %s, cache %s, analysis spans %d, invocation %s)\n",
				resp.Engine, resp.Checksum, time.Duration(resp.DurationNs).Round(time.Microsecond),
				addr, resp.Cache, resp.AnalysisSpans, resp.Invocation)
			if explain && m == "adaptive" && resp.Invocation != "" {
				entries, err := fetchDecisions(client, base, resp.Invocation)
				if err != nil {
					return err
				}
				fmt.Print(renderDecisions(entries))
			}
		case status == 422:
			fmt.Printf("%-10s inapplicable: %s\n", m, resp.Error)
		case status == 429 || status == 503:
			return fmt.Errorf("daemon at %s refused the invocation (%d): %s", addr, status, resp.Error)
		default:
			return fmt.Errorf("daemon at %s: %s (%d): %s", addr, m, status, resp.Error)
		}
	}
	return nil
}

// fetchDecisions pulls one invocation's journal entries from the daemon.
func fetchDecisions(client *http.Client, base, invocation string) ([]obs.DecisionEntry, error) {
	httpResp, err := client.Get(base + "/debug/decisions?invocation=" + url.QueryEscape(invocation))
	if err != nil {
		return nil, fmt.Errorf("fetching decision audit: %w", err)
	}
	defer httpResp.Body.Close()
	var doc struct {
		Schema  string              `json:"schema"`
		Entries []obs.DecisionEntry `json:"entries"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decoding decision audit: %w", err)
	}
	if doc.Schema != obs.DecisionsSchema {
		return nil, fmt.Errorf("daemon decision audit has schema %q, want %q", doc.Schema, obs.DecisionsSchema)
	}
	return doc.Entries, nil
}

// renderDecisions formats the decision audit one window per line: the
// sampled signals the policy saw, what it chose, and why.
func renderDecisions(entries []obs.DecisionEntry) string {
	if len(entries) == 0 {
		return "  (no adaptive decisions recorded)\n"
	}
	var b strings.Builder
	for _, e := range entries {
		verb := "stay"
		if e.Switched {
			verb = "switch"
		}
		fmt.Fprintf(&b, "  window %2d [%d,%d) %-9s %s→ %-9s  tasks %-5d misspec %-5v pressure %-6.2f prefilter %-5.2f  %s\n",
			e.Window, e.StartEpoch, e.EndEpoch, e.Engine, verb, e.Next,
			e.Tasks, e.Misspeculated, e.CheckerPressure, e.PrefilterHitRate, e.Reason)
	}
	if src := entries[0].SeedSource; src != "" {
		fmt.Fprintf(&b, "  seed: %s\n", src)
	}
	return b.String()
}

func postRun(client *http.Client, base string, req *daemon.RunRequest) (*daemon.RunResponse, int, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	httpResp, err := client.Post(base+"/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, 0, fmt.Errorf("reaching daemon: %w", err)
	}
	defer httpResp.Body.Close()
	var resp daemon.RunResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, httpResp.StatusCode, fmt.Errorf("decoding daemon response: %w", err)
	}
	return &resp, httpResp.StatusCode, nil
}

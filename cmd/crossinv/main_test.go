package main

import (
	"flag"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossinv/internal/core"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestResolveMode(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mode    string
		modeSet bool
		engine  string
		want    string
		wantErr bool
	}{
		{name: "defaults", mode: "all", want: "all"},
		{name: "mode only", mode: "domore", modeSet: true, want: "domore"},
		{name: "engine only", mode: "all", engine: "speccross", want: "speccross"},
		{name: "both agree", mode: "adaptive", modeSet: true, engine: "adaptive", want: "adaptive"},
		{name: "both disagree", mode: "domore", modeSet: true, engine: "speccross", wantErr: true},
		// The unset -mode default must not conflict with an explicit -engine.
		{name: "default mode with engine", mode: "all", engine: "barrier", want: "barrier"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := resolveMode(tc.mode, tc.modeSet, tc.engine)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("resolveMode = %q, want error", got)
				}
				if !strings.Contains(err.Error(), "disagree") {
					t.Errorf("error %q does not explain the disagreement", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("resolveMode = %q, want %q", got, tc.want)
			}
		})
	}
}

func compileFile(t *testing.T, path string) *core.Compiled {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(string(src))
	if err != nil {
		t.Fatalf("compile %s: %v", path, err)
	}
	return c
}

func checkGolden(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestServeLoop drives the -serve path end to end: a real listener, the
// observability mux over a shared recorder, and the compiled CG example
// looping under DOMORE. The first run blocks until the test has scraped
// /metrics mid-flight, proving the surface serves while work is pending.
func TestServeLoop(t *testing.T) {
	c := compileFile(t, filepath.Join("..", "..", "examples", "compiler", "cg.lnl"))
	if len(c.Regions) == 0 {
		t.Fatal("cg.lnl has no candidate region")
	}
	target, err := c.Region(len(c.Regions) - 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	release := make(chan struct{})
	first := true
	done := make(chan error, 1)
	go func() {
		done <- serveOn(ln, 3, rec, func() {
			if first {
				first = false
				<-release
			}
			if _, err := c.RunDOMOREOpts(target, domore.Options{Workers: 2, Trace: rec}); err != nil {
				t.Error(err)
			}
		})
	}()

	// No keep-alives: the post-shutdown probe must dial fresh rather than
	// reuse a connection that survives the listener close.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	// Scrape while the first run is held open.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-run /metrics: %s", resp.Status)
	}
	if !strings.Contains(string(body), "crossinv_serve_runs 0") {
		t.Errorf("mid-run scrape should report 0 completed runs:\n%s", body)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("serveOn: %v", err)
	}

	// The listener is closed with the loop; the port must be dead.
	if _, err := client.Get(base + "/metrics"); err == nil {
		t.Error("server still reachable after the run loop ended")
	}
	if got := rec.Summary().Counts[trace.KindSchedule]; got == 0 {
		t.Error("no schedule events recorded across serve runs")
	}
}

// TestReportGolden pins the -report format for the example programs.
func TestReportGolden(t *testing.T) {
	for _, name := range []string{"cg", "stencil"} {
		t.Run(name, func(t *testing.T) {
			c := compileFile(t, filepath.Join("..", "..", "examples", "compiler", name+".lnl"))
			checkGolden(t, filepath.Join("testdata", name+".report.golden"), reportOutput(c))
		})
	}
}

// TestAnalyzeGolden pins the -analyze cross-invocation dependence report
// (text and JSON) across the classification spectrum: stencil and
// bad_parfor (cyclic — every invocation rewrites the same locations), and
// cg and irregular (unknown — symbolic bounds, index-array subscripts).
func TestAnalyzeGolden(t *testing.T) {
	examples := map[string]string{
		"stencil":    filepath.Join("..", "..", "examples", "compiler", "stencil.lnl"),
		"cg":         filepath.Join("..", "..", "examples", "compiler", "cg.lnl"),
		"bad_parfor": filepath.Join("testdata", "bad_parfor.lnl"),
		"irregular":  filepath.Join("testdata", "irregular.lnl"),
	}
	for name, path := range examples {
		t.Run(name, func(t *testing.T) {
			c := compileFile(t, path)
			out, err := analyzeOutput(c, false)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, filepath.Join("testdata", name+".analyze.golden"), out)
		})
	}

	// The JSON form is the serialized Facts — the exact bytes whose hash
	// feeds the plan-cache fingerprint — pinned once for the irregular case.
	c := compileFile(t, examples["irregular"])
	jsonText, err := analyzeOutput(c, true)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "irregular.analyze.json.golden"), jsonText)
	if !strings.Contains(jsonText, `"class": "unknown"`) {
		t.Error("irregular JSON report lost the unknown classification")
	}
}

// TestLintGolden pins the -lint output: empty (and exit-clean) for the
// example programs, and the exact text and JSON diagnostics for a program
// whose parfor annotation the verifier disproves.
func TestLintGolden(t *testing.T) {
	for _, name := range []string{"cg", "stencil"} {
		t.Run(name, func(t *testing.T) {
			c := compileFile(t, filepath.Join("..", "..", "examples", "compiler", name+".lnl"))
			out, hasErrors, err := lintOutput(c, name+".lnl", false)
			if err != nil {
				t.Fatal(err)
			}
			if hasErrors {
				t.Errorf("example %s has lint errors:\n%s", name, out)
			}
			checkGolden(t, filepath.Join("testdata", name+".lint.golden"), out)
		})
	}

	c := compileFile(t, filepath.Join("testdata", "bad_parfor.lnl"))
	out, hasErrors, err := lintOutput(c, "bad_parfor.lnl", false)
	if err != nil {
		t.Fatal(err)
	}
	if !hasErrors {
		t.Error("bad_parfor.lnl linted clean")
	}
	checkGolden(t, filepath.Join("testdata", "bad_parfor.lint.golden"), out)

	jsonText, hasErrors, err := lintOutput(c, "bad_parfor.lnl", true)
	if err != nil {
		t.Fatal(err)
	}
	if !hasErrors {
		t.Error("JSON path lost the error severity")
	}
	checkGolden(t, filepath.Join("testdata", "bad_parfor.lint.json.golden"), jsonText)
}

// Command crossinvd is the persistent parallel-execution daemon: it
// accepts LNL programs over HTTP+JSON, compiles and analyzes each one at
// most once, and serves repeat invocations hot from an in-memory program
// cache backed by a content-addressed on-disk plan/profile store — the
// paper's amortize-analysis-across-invocations premise as a service.
//
// Usage:
//
//	crossinvd [flags]
//
//	-addr           listen address (default localhost:9123; :0 picks a port)
//	-cache          plan-cache directory (default <os temp>/crossinv-plancache)
//	-max-inflight   concurrently executing invocations (default 8)
//	-queue          admission queue depth (default 2×max-inflight)
//	-queue-timeout  max time a queued invocation waits (default 2s)
//	-workers        default engine worker count per invocation (default 4)
//	-flight-dir     flight-recorder dump directory (default <cache>/flightrec)
//	-latency-budget p99 latency budget arming the flight recorder's
//	                latency trigger (default 0: disabled)
//	-no-trace       disable request-scoped tracing (spans, flight
//	                recorder retention) — benchmark baseline only
//
// Endpoints: POST /run, GET /plans, GET /healthz, plus /metrics, /summary
// and /debug/pprof/ from the internal/obs mux, plus the request-scoped
// observability surface: GET /debug/decisions (adaptive decision audit,
// ?invocation= filters) and GET /debug/flightrec (always-on flight
// recorder; ?dump=1 forces a snapshot). Drive it with
// `crossinv -remote ADDR prog.lnl` or raw JSON.
//
// SIGTERM/SIGINT drain gracefully: the daemon stops admitting (503),
// finishes every accepted invocation, flushes the cache, then exits.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"crossinv/internal/daemon"
)

var (
	addr         = flag.String("addr", "localhost:9123", "listen address")
	cacheDir     = flag.String("cache", "", "plan-cache directory (default <os temp>/crossinv-plancache)")
	maxInflight  = flag.Int("max-inflight", 8, "max concurrently executing invocations")
	queueDepth   = flag.Int("queue", 0, "admission queue depth (0: 2x max-inflight)")
	queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max time a queued invocation waits for a slot")
	workers      = flag.Int("workers", 4, "default engine worker count per invocation")
	flightDir    = flag.String("flight-dir", "", "flight-recorder dump directory (default <cache>/flightrec)")
	latBudget    = flag.Duration("latency-budget", 0, "p99 latency budget arming the flight recorder's latency trigger (0: disabled)")
	noTrace      = flag.Bool("no-trace", false, "disable request-scoped tracing (benchmark baseline only)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crossinvd:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := *cacheDir
	if dir == "" {
		dir = filepath.Join(os.TempDir(), "crossinv-plancache")
	}
	fdir := *flightDir
	if fdir == "" {
		fdir = filepath.Join(dir, "flightrec")
	}
	s, err := daemon.New(daemon.Config{
		CacheDir:       dir,
		MaxInFlight:    *maxInflight,
		QueueDepth:     *queueDepth,
		QueueTimeout:   *queueTimeout,
		DefaultWorkers: *workers,
		FlightDir:      fdir,
		LatencyBudget:  *latBudget,
		DisableTracing: *noTrace,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is the startup handshake: tests and
	// scripts listen on :0 and scrape the port from here.
	fmt.Printf("crossinvd: serving on http://%s (cache %s)\n", ln.Addr(), dir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("crossinvd: %v — draining\n", sig)
		_ = s.Shutdown()
	}()

	if err := s.Serve(ln); err != nil {
		return err
	}
	// Serve returns once the listener is closed; Shutdown blocks until
	// every accepted invocation completed and the cache is flushed.
	if err := s.Shutdown(); err != nil {
		return err
	}
	c := s.Counters()
	fmt.Printf("crossinvd: drained (admitted %d, completed %d, rejected %d, cache hot/warm/cold %d/%d/%d)\n",
		c["daemon.admitted"], c["daemon.completed"],
		c["daemon.rejected.queue_full"]+c["daemon.rejected.timeout"]+c["daemon.rejected.draining"],
		c["daemon.cache.hot"], c["daemon.cache.warm"], c["daemon.cache.cold"])
	return nil
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"crossinv/internal/daemon"
)

// TestMain doubles as the crossinvd child process: when re-executed with
// CROSSINVD_CHILD=1 the test binary runs the real main() (real flag
// parsing, real signal handling), so the smoke test below exercises the
// daemon end to end including SIGTERM — without needing `go build` inside
// the test.
func TestMain(m *testing.M) {
	if os.Getenv("CROSSINVD_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startChild launches crossinvd as a subprocess on an ephemeral port and
// returns its base URL, the running command, and a channel that yields
// the full stdout after exit.
func startChild(t *testing.T, cacheDir string, extraArgs ...string) (string, *exec.Cmd, <-chan string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-cache", cacheDir}, extraArgs...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CROSSINVD_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	// Handshake: scrape the resolved port from the startup line.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("crossinvd child produced no startup line (err %v)", sc.Err())
	}
	first := sc.Text()
	mURL := regexp.MustCompile(`http://([0-9.:]+)`).FindStringSubmatch(first)
	if mURL == nil {
		t.Fatalf("no address in startup line %q", first)
	}

	rest := make(chan string, 1)
	go func() {
		var sb strings.Builder
		sb.WriteString(first + "\n")
		for sc.Scan() {
			sb.WriteString(sc.Text() + "\n")
		}
		rest <- sb.String()
	}()
	return "http://" + mURL[1], cmd, rest
}

func post(t *testing.T, base string, req *daemon.RunRequest) (*daemon.RunResponse, int) {
	t.Helper()
	raw, _ := json.Marshal(req)
	httpResp, err := http.Post(base+"/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer httpResp.Body.Close()
	var resp daemon.RunResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &resp, httpResp.StatusCode
}

// TestDaemonSmoke is the CI smoke scenario end to end against a real
// crossinvd process: ≥16 concurrent invocations on a temp cache dir,
// /healthz asserted, a second round served from cache, then SIGTERM
// drains with zero dropped accepted requests and a clean exit.
func TestDaemonSmoke(t *testing.T) {
	src, err := os.ReadFile("../../examples/compiler/cg.lnl")
	if err != nil {
		t.Fatal(err)
	}
	// Queue deep enough that all 16 concurrent requests are accepted
	// (rejects are covered by the internal/daemon tests); workers 2 and
	// max-inflight 4 keep the 1-CPU CI box from thrashing.
	base, cmd, finalOut := startChild(t, t.TempDir(),
		"-max-inflight", "4", "-queue", "32", "-queue-timeout", "60s", "-workers", "2")

	req := func(mode string) *daemon.RunRequest {
		return &daemon.RunRequest{Source: string(src), Mode: mode, Workers: 2}
	}

	// Round 1: 16 concurrent cold/hot invocations, all must succeed.
	const n = 16
	var want atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, status := post(t, base, req([]string{"domore", "speccross", "auto"}[i%3]))
			if status != 200 {
				t.Errorf("round 1 req %d: %d %s", i, status, resp.Error)
				return
			}
			if prev := want.Swap(resp.Checksum); prev != 0 && prev != resp.Checksum {
				t.Errorf("checksum drift: %x vs %x", prev, resp.Checksum)
			}
		}(i)
	}
	wg.Wait()

	httpResp, err := http.Get(base + "/healthz")
	if err != nil || httpResp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, httpResp)
	}
	httpResp.Body.Close()

	// Round 2: every invocation must be a pure cache hit — zero analysis.
	for _, mode := range []string{"domore", "speccross", "auto"} {
		resp, status := post(t, base, req(mode))
		if status != 200 {
			t.Fatalf("round 2 %s: %d %s", mode, status, resp.Error)
		}
		if resp.Cache != "hot" || resp.AnalysisSpans != 0 {
			t.Errorf("round 2 %s: cache %q spans %d, want hot/0", mode, resp.Cache, resp.AnalysisSpans)
		}
	}

	// Round 3: SIGTERM mid-storm. Every request must get a definitive
	// answer: 200 (accepted before drain, completed during it) or 503.
	var inflight sync.WaitGroup
	for i := 0; i < 8; i++ {
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			resp, status := post(t, base, req("domore"))
			if status != 200 && status != 503 && status != 429 {
				t.Errorf("drain round: %d %s", status, resp.Error)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	inflight.Wait()

	// Drain stdout to EOF before Wait: Wait closes the pipe and would
	// race the reader goroutine out of the final drain summary.
	out := <-finalOut
	if err := cmd.Wait(); err != nil {
		t.Fatalf("crossinvd exit: %v", err)
	}
	if !strings.Contains(out, "draining") {
		t.Errorf("no drain line in output:\n%s", out)
	}
	drained := regexp.MustCompile(`drained \(admitted (\d+), completed (\d+),`).FindStringSubmatch(out)
	if drained == nil {
		t.Fatalf("no drained summary in output:\n%s", out)
	}
	if drained[1] != drained[2] {
		t.Errorf("drain dropped accepted requests: admitted %s, completed %s", drained[1], drained[2])
	}

	// The cache dir survives the daemon: stats were flushed on drain.
	if !strings.Contains(out, "cache hot/warm/cold") {
		t.Errorf("no cache summary in output:\n%s", out)
	}
}

// TestRemoteClientAgainstDaemon drives the crossinv -remote client path
// (runRemote lives in cmd/crossinv) indirectly: same wire protocol, here
// exercised with raw requests across a daemon restart to confirm the
// warm path over the same cache dir.
func TestWarmRestartAcrossProcesses(t *testing.T) {
	src, err := os.ReadFile("../../examples/compiler/cg.lnl")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	base, cmd, _ := startChild(t, dir, "-workers", "2")
	cold, status := post(t, base, &daemon.RunRequest{Source: string(src), Mode: "speccross", Workers: 2})
	if status != 200 || cold.Cache != "cold" {
		t.Fatalf("cold round: status %d cache %q (%s)", status, cold.Cache, cold.Error)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("first daemon exit: %v", err)
	}

	base2, cmd2, _ := startChild(t, dir, "-workers", "2")
	warm, status := post(t, base2, &daemon.RunRequest{Source: string(src), Mode: "speccross", Workers: 2})
	if status != 200 {
		t.Fatalf("warm round: %d %s", status, warm.Error)
	}
	if warm.Cache != "warm" {
		t.Errorf("restart run classified %q, want warm", warm.Cache)
	}
	if warm.Checksum != cold.Checksum {
		t.Errorf("warm checksum %x != cold %x", warm.Checksum, cold.Checksum)
	}
	_ = cmd2.Process.Signal(syscall.SIGTERM)
	_ = cmd2.Wait()
}

var _ = fmt.Sprintf // keep fmt imported for debug edits

// Command chaos is the differential fuzzing and fault-injection driver:
// it runs seeded random workloads under all five engines (barrier,
// DOMORE, sharded DOMORE, SPECCROSS, adaptive) and fails if any engine's final memory or
// Stats invariants diverge from the sequential oracle.
//
// Modes:
//
//	chaos -n 500                      sweep 500 seeds with all faults injected
//	chaos -seed 42                    re-run one seed (full replay token)
//	chaos -replay case.json           re-run a shrunk artifact or bare spec
//	chaos -mutate drop-addr -shrink   inject an engine-contract bug; exit 0
//	                                  only if the harness catches and shrinks it
//
// On failure (and with -shrink) the failing case is reduced and written
// to -out as a replayable JSON artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"crossinv/internal/chaos"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n       = flag.Int("n", 200, "number of random seeds to sweep")
		seed    = flag.Int64("seed", -1, "run exactly this seed instead of a sweep")
		first   = flag.Int64("first", 1, "first seed of the sweep")
		replay  = flag.String("replay", "", "replay a failing-case JSON (artifact or bare spec)")
		workers = flag.Int("workers", 4, "worker threads per engine")
		ckpt    = flag.Int("checkpoint-every", 3, "SPECCROSS epochs per checkpoint segment")
		window  = flag.Int("window", 4, "adaptive epochs per monitoring window")
		faults  = flag.String("faults", "all", "fault plan: all, none, or a csv of queue-full, delay, sig-conflict, panic, timeout, torn-state, torn-delta, shard-skew")
		mutate  = flag.String("mutate", "", "inject an engine-contract bug (drop-addr, drop-sig-write, skip-restore, skip-delta-restore, widen-static, stale-shard-claim) and require the harness to catch it")
		shrink  = flag.Bool("shrink", false, "shrink failing cases and write artifacts to -out")
		out     = flag.String("out", "chaos-artifacts", "artifact output directory")
		verbose = flag.Bool("v", false, "log every case")
	)
	flag.Parse()
	base := chaos.Options{Workers: *workers, CheckpointEvery: *ckpt, Window: *window}

	if *replay != "" {
		return replayArtifact(*replay, *verbose)
	}
	if *mutate != "" {
		return mutationRun(*mutate, *faults, base, *shrink, *out)
	}

	seeds := sweepSeeds(*seed, *first, *n)
	failedSeeds := 0
	for _, s := range seeds {
		plan, err := chaos.ParseFaults(*faults, s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opts := base
		opts.Faults = plan
		fails := chaos.RunSeed(s, opts)
		if *verbose || len(fails) > 0 {
			fmt.Printf("seed %d: %d failures (faults: %s)\n", s, len(fails), plan)
		}
		if len(fails) == 0 {
			continue
		}
		failedSeeds++
		for _, f := range fails {
			fmt.Printf("  %s\n", f)
		}
		if *shrink {
			shrinkAndWrite(chaos.Generate(s), s, opts, *out)
		}
	}
	if failedSeeds > 0 {
		fmt.Printf("FAIL: %d of %d seeds diverged from the sequential oracle\n", failedSeeds, len(seeds))
		return 1
	}
	fmt.Printf("ok: %d seeds × %d engines × {untraced,traced} matched the sequential oracle\n",
		len(seeds), len(chaos.Engines))
	return 0
}

func sweepSeeds(one, first int64, n int) []uint64 {
	if one >= 0 {
		return []uint64{uint64(one)}
	}
	seeds := make([]uint64, 0, n)
	for s := first; s < first+int64(n); s++ {
		seeds = append(seeds, uint64(s))
	}
	return seeds
}

// mutationRun is the self-test of the harness: with a deliberately broken
// engine contract the differential run MUST fail; exit 0 means the bug
// was caught (and, with -shrink, reduced to a replayable artifact).
func mutationRun(mutate, faults string, base chaos.Options, shrink bool, out string) int {
	mut, err := chaos.ParseMutation(mutate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opts := base
	opts.Mutation = mut
	// The default fault plan for a mutation is the one that drives its
	// broken path (e.g. skip-restore needs a misspeculation); an explicit
	// -faults overrides it.
	opts.Faults = mut.Faults()
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "faults" {
			explicit = true
		}
	})
	if explicit {
		plan, err := chaos.ParseFaults(faults, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opts.Faults = plan
	}

	spec := chaos.MutationCatcher()
	spec.Name = "chaos-mutation-" + string(mut)
	for attempt := 0; attempt < 20; attempt++ {
		for _, traced := range []bool{false, true} {
			o := opts
			o.Traced = traced
			fails := chaos.RunSpec(spec, o)
			if len(fails) == 0 {
				continue
			}
			fmt.Printf("mutation %s caught (attempt %d, traced=%v):\n", mut, attempt+1, traced)
			for _, f := range fails {
				fmt.Printf("  %s\n", f)
			}
			if shrink {
				if !shrinkAndWrite(spec, 0, opts, out) {
					return 1
				}
			}
			return 0
		}
	}
	fmt.Printf("FAIL: mutation %s was NOT detected — the harness missed an injected engine bug\n", mut)
	return 1
}

func shrinkAndWrite(spec *chaos.Spec, seed uint64, opts chaos.Options, out string) bool {
	shrunk, fails := chaos.Shrink(spec, opts, 3)
	if shrunk == nil {
		fmt.Printf("  (failure did not reproduce for the shrinker; artifact not written)\n")
		return false
	}
	path, err := chaos.NewArtifact(seed, opts, shrunk, fails).WriteFile(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	fmt.Printf("  shrunk to %d epochs / %d tasks → %s\n", shrunk.NumEpochs(), shrunk.TotalTasks(), path)
	return true
}

func replayArtifact(path string, verbose bool) int {
	art, err := chaos.LoadArtifact(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opts, err := art.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if verbose {
		fmt.Printf("replaying %s: %d epochs, %d tasks, faults=%s mutation=%q\n",
			path, art.Spec.NumEpochs(), art.Spec.TotalTasks(), art.Faults, art.Mutation)
	}
	for attempt := 0; attempt < 10; attempt++ {
		for _, traced := range []bool{false, true} {
			o := opts
			o.Traced = traced
			if fails := chaos.RunSpec(art.Spec, o); len(fails) > 0 {
				fmt.Printf("reproduced (attempt %d, traced=%v):\n", attempt+1, traced)
				for _, f := range fails {
					fmt.Printf("  %s\n", f)
				}
				return 1
			}
		}
	}
	fmt.Printf("no divergence in 10 replay attempts\n")
	return 0
}

// Command profiler runs the SPECCROSS dependence-distance profiling pass
// (§4.4) over benchmarks or LNL programs, reporting the observed conflicts
// and the minimum dependence distance that bounds safe speculation — the
// inputs to Table 5.3.
//
// Usage:
//
//	profiler -bench CG               # profile a registered benchmark
//	profiler -bench all              # profile all SPECCROSS benchmarks
//	profiler <program.lnl>           # profile an LNL program's region
//
//	-scale N    benchmark input scale (default 1)
//	-window N   epochs of history to compare against (default 6)
//	-workers N  report profitability for this worker count (default 24)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"crossinv/internal/core"
	"crossinv/internal/ir/interp"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/transform/speccrossgen"
	"crossinv/internal/workloads"

	_ "crossinv/internal/workloads/blackscholes"
	_ "crossinv/internal/workloads/cg"
	_ "crossinv/internal/workloads/eclat"
	_ "crossinv/internal/workloads/equake"
	_ "crossinv/internal/workloads/fdtd"
	_ "crossinv/internal/workloads/fluidanimate"
	_ "crossinv/internal/workloads/jacobi"
	_ "crossinv/internal/workloads/llubench"
	_ "crossinv/internal/workloads/loopdep"
	_ "crossinv/internal/workloads/phased"
	_ "crossinv/internal/workloads/symm"
)

var (
	bench    = flag.String("bench", "", "registered benchmark name, or \"all\"")
	scale    = flag.Int("scale", 1, "benchmark input scale")
	window   = flag.Int("window", 6, "profiling window in epochs")
	nworkers = flag.Int("workers", 24, "worker count for the profitability check")
)

func main() {
	flag.Parse()
	switch {
	case *bench == "all":
		for _, e := range workloads.All() {
			if e.SpecOK {
				profileBench(e)
			}
		}
	case *bench != "":
		e, err := workloads.Find(*bench)
		if err != nil {
			fatal(err)
		}
		profileBench(e)
	case flag.NArg() == 1:
		profileLNL(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: profiler [-bench NAME|all] [<program.lnl>]")
		os.Exit(2)
	}
}

func profileBench(e workloads.Entry) {
	inst := e.Make(*scale)
	sw, ok := inst.(speccross.Workload)
	if !ok {
		fmt.Printf("%s: no SPECCROSS adapter\n", e.Name)
		return
	}
	res := speccross.Profile(sw, signature.Exact, *window)
	report(e.Name, res)
}

func profileLNL(path string) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	c, err := core.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if len(c.Regions) == 0 {
		fatal(fmt.Errorf("%s: no candidate region", path))
	}
	for i, region := range c.Regions {
		env := interp.NewEnv(c.Prog)
		r, err := speccrossgen.New(c.Prog, c.Dep, region, env, 1)
		if err != nil {
			fmt.Printf("region %d: %v\n", i, err)
			continue
		}
		report(fmt.Sprintf("%s region %d", path, i), r.Profile(signature.Exact))
	}
}

func report(name string, res speccross.ProfileResult) {
	fmt.Printf("%s: %d tasks over %d epochs, %d conflicts\n", name, res.Tasks, res.Epochs, res.Conflicts)
	if res.MinDistance == speccross.NoConflict {
		fmt.Printf("  min dependence distance: * (none observed — unbounded speculation is safe)\n")
	} else {
		fmt.Printf("  min dependence distance: %d tasks\n", res.MinDistance)
	}
	if len(res.PerLoop) > 0 {
		labels := make([]string, 0, len(res.PerLoop))
		for l := range res.PerLoop {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Printf("  loop %-24s min distance %d\n", l, res.PerLoop[l])
		}
	}
	dist, profitable := res.Recommended(*nworkers)
	if profitable {
		if dist == 0 {
			fmt.Printf("  recommendation: speculate unbounded with %d workers\n", *nworkers)
		} else {
			fmt.Printf("  recommendation: speculate with range %d for %d workers\n", dist, *nworkers)
		}
	} else {
		fmt.Printf("  recommendation: do not speculate with %d workers (distance below threshold, §4.4)\n", *nworkers)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profiler:", err)
	os.Exit(1)
}

// Command bench is the performance-trajectory driver: it runs the full
// engine×workload cell grid (plus runtime-primitive microbenchmarks) with
// warmup and repetition, summarizes every cell with median/mean/CoV and a
// bootstrap confidence interval, and writes a schema-versioned
// BENCH_<n>.json. Committed BENCH files form the repo's performance
// history; -compare gates changes with Mann-Whitney U significance tests.
//
// Usage:
//
//	bench [flags]                      run the grid, write BENCH_<n>.json
//	bench -compare OLD.json NEW.json   benchstat-style delta table; exits 1
//	                                   on significant same-env regressions
//	bench -validate FILE.json          schema-check a BENCH file
//	bench -list                        print the cell grid and exit
//
//	-o FILE      output path (default: next free BENCH_<n>.json in .)
//	-n N         samples per cell (default 5)
//	-warmup N    untimed warmup runs per cell (default 1)
//	-workers N   engine worker count (default 4)
//	-scale N     workload scale (default 1)
//	-cells RE    only run cells whose ID matches the regexp
//	-breakdown   add trace-derived stall/check/recovery fractions per cell
//	-quick       CI smoke mode: -n 1 -warmup 0 (single short iteration)
//	-alpha P     -compare significance level (default 0.05)
//	-threshold F -compare minimum relative delta (default 0.03)
//	-report-only -compare never exits nonzero (CI informational mode)
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"crossinv/internal/bench"

	_ "crossinv/internal/workloads/blackscholes"
	_ "crossinv/internal/workloads/cg"
	_ "crossinv/internal/workloads/eclat"
	_ "crossinv/internal/workloads/equake"
	_ "crossinv/internal/workloads/fdtd"
	_ "crossinv/internal/workloads/fluidanimate"
	_ "crossinv/internal/workloads/jacobi"
	_ "crossinv/internal/workloads/llubench"
	_ "crossinv/internal/workloads/loopdep"
	_ "crossinv/internal/workloads/phased"
	_ "crossinv/internal/workloads/symm"
)

var (
	out        = flag.String("o", "", "output path (default: next free BENCH_<n>.json)")
	n          = flag.Int("n", 5, "samples per cell")
	warmup     = flag.Int("warmup", 1, "untimed warmup runs per cell")
	workers    = flag.Int("workers", 4, "engine worker count")
	scale      = flag.Int("scale", 1, "workload scale")
	cells      = flag.String("cells", "", "only run cells whose ID matches this regexp")
	breakdown  = flag.Bool("breakdown", false, "add trace-derived time breakdowns per cell")
	quick      = flag.Bool("quick", false, "CI smoke mode: -n 1 -warmup 0")
	list       = flag.Bool("list", false, "print the cell grid and exit")
	validate   = flag.String("validate", "", "schema-check this BENCH file and exit")
	compare    = flag.Bool("compare", false, "compare two BENCH files: bench -compare OLD NEW")
	alpha      = flag.Float64("alpha", 0.05, "significance level for -compare")
	threshold  = flag.Float64("threshold", 0.03, "minimum relative median delta for -compare")
	reportOnly = flag.Bool("report-only", false, "with -compare: report but never exit nonzero")
)

func main() {
	flag.Parse()
	switch {
	case *validate != "":
		if _, err := bench.ReadFile(*validate); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid (%s)\n", *validate, bench.Schema)
	case *compare:
		runCompare()
	default:
		runGrid()
	}
}

func runCompare() {
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench -compare OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := bench.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := bench.ReadFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	cr := bench.Compare(old, cur, bench.CompareOptions{Alpha: *alpha, Threshold: *threshold})
	if err := cr.WriteTable(os.Stdout); err != nil {
		fatal(err)
	}
	if cr.Failed() && !*reportOnly {
		os.Exit(1)
	}
}

func runGrid() {
	opts := bench.Options{
		N: *n, Warmup: *warmup, Workers: *workers, Scale: *scale,
		Breakdown: *breakdown, Log: os.Stderr,
	}
	if *quick {
		opts.N, opts.Warmup = 1, 0
	}
	if *cells != "" {
		re, err := regexp.Compile(*cells)
		if err != nil {
			fatal(err)
		}
		opts.Filter = re.MatchString
	}
	if *list {
		ids, err := bench.CellIDs(opts)
		if err != nil {
			fatal(err)
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	res, err := bench.Run(opts)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path, err = bench.NextPath(".")
		if err != nil {
			fatal(err)
		}
	}
	if err := res.WriteFile(path); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d cells, n=%d, %s)\n", path, len(res.Cells), res.N, res.Env.GitRev)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// Command tracecheck validates Chrome trace_event JSON files emitted by
// crossinv -trace (or any tool claiming the same format): it parses each
// file and checks the structural invariants trace.ValidateChrome enforces
// (known phases, named events, balanced begin/end span nesting per
// thread, non-negative timestamps). CI runs it over freshly generated
// traces so a regression in the exporter fails the build rather than
// silently producing files chrome://tracing cannot load.
//
// Usage:
//
//	tracecheck FILE...
//
// Exit status is 0 when every file validates, 1 otherwise.
package main

import (
	"fmt"
	"os"

	"crossinv/internal/runtime/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE...")
		os.Exit(2)
	}
	failed := false
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			failed = true
			continue
		}
		if err := trace.ValidateChrome(data); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", file, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok\n", file)
	}
	if failed {
		os.Exit(1)
	}
}

module crossinv

go 1.22

// Package repro_test hosts the benchmark harness: one testing.B benchmark
// per evaluation table and figure (run `go test -bench . -benchmem`), each
// reporting the paper's headline quantity as a custom metric, plus the
// ablation benchmarks DESIGN.md calls out. The cmd/experiments binary
// prints the full row/series data; these benches make the same numbers
// reproducible under the standard Go tooling.
package repro_test

import (
	"fmt"
	"math"
	"testing"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/sched"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/sim"
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/fluidanimate"
	"crossinv/internal/workloads/phased"

	_ "crossinv/internal/workloads/blackscholes"
	_ "crossinv/internal/workloads/cg"
	_ "crossinv/internal/workloads/eclat"
	_ "crossinv/internal/workloads/equake"
	_ "crossinv/internal/workloads/fdtd"
	_ "crossinv/internal/workloads/jacobi"
	_ "crossinv/internal/workloads/llubench"
	_ "crossinv/internal/workloads/loopdep"
	_ "crossinv/internal/workloads/symm"
)

var specNames = []string{"CG", "EQUAKE", "FDTD", "FLUIDANIMATE", "JACOBI", "LLUBENCH", "LOOPDEP", "SYMM"}
var domoreNames = []string{"BLACKSCHOLES", "CG", "ECLAT", "LLUBENCH", "SYMM"}

func trace(b *testing.B, name string) *sim.Trace {
	b.Helper()
	e, err := workloads.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	return e.Make(1).Trace()
}

func geomean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// gateCache memoizes the profiling pass per benchmark: profiling is the
// expensive part of these benches and its result is deterministic.
var gateCache = map[string]func(int) int64{}

func gateOf(b *testing.B, name string) func(int) int64 {
	b.Helper()
	if g, ok := gateCache[name]; ok {
		return g
	}
	e, err := workloads.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	sw := e.Make(1).(speccross.Workload)
	pr := speccross.Profile(sw, signature.Exact, 4)
	g := pr.PerEpoch(sw)
	gateCache[name] = g
	return g
}

// BenchmarkFig3_3 regenerates Fig 3.3's headline: CG under DOMORE vs the
// pthread-barrier baseline at 24 threads (virtual time).
func BenchmarkFig3_3(b *testing.B) {
	tr := trace(b, "CG")
	m := sim.DefaultModel()
	seq := tr.SeqTime()
	var dom, bar sim.Result
	for i := 0; i < b.N; i++ {
		dom = sim.SimDomore(tr, 23, m)
		bar = sim.SimBarrier(tr, 24, m)
	}
	b.ReportMetric(dom.Speedup(seq), "domore-x")
	b.ReportMetric(bar.Speedup(seq), "barrier-x")
}

// BenchmarkFig4_3 regenerates Fig 4.3's quantity: mean barrier-overhead
// fraction at 24 threads across the eight programs.
func BenchmarkFig4_3(b *testing.B) {
	m := sim.DefaultModel()
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = 0
		for _, name := range specNames {
			r := sim.SimBarrier(trace(b, name), 24, m)
			frac += float64(r.Idle) / float64(r.Makespan*int64(r.Threads))
		}
		frac /= float64(len(specNames))
	}
	b.ReportMetric(100*frac, "barrier-overhead-%")
}

// BenchmarkFig5_1 regenerates Fig 5.1's headline geomean: DOMORE over
// barrier parallelization at 24 threads (paper: 2.1×) and over sequential
// (paper: 3.2×). FLUIDANIMATE-1 is benched separately below.
func BenchmarkFig5_1(b *testing.B) {
	m := sim.DefaultModel()
	var overBar, overSeq []float64
	for i := 0; i < b.N; i++ {
		overBar, overSeq = nil, nil
		for _, name := range domoreNames {
			tr := trace(b, name)
			dom := sim.SimDomore(tr, 23, m)
			bar := sim.SimBarrier(tr, 24, m)
			overBar = append(overBar, float64(bar.Makespan)/float64(dom.Makespan))
			overSeq = append(overSeq, dom.Speedup(tr.SeqTime()))
		}
	}
	b.ReportMetric(geomean(overBar), "geomean-over-barrier-x")
	b.ReportMetric(geomean(overSeq), "geomean-over-seq-x")
}

// BenchmarkFig5_1_Fluidanimate1 regenerates Fig 5.1(d): the ComputeForce-
// only parallelization, which must stay flat for both strategies.
func BenchmarkFig5_1_Fluidanimate1(b *testing.B) {
	f := fluidanimate.New(1)
	tr := f.TraceVariant(fluidanimate.ForcesOnly)
	m := sim.DefaultModel()
	seq := tr.SeqTime()
	var dom, bar sim.Result
	for i := 0; i < b.N; i++ {
		dom = sim.SimDomore(tr, 23, m)
		bar = sim.SimBarrier(tr, 24, m)
	}
	b.ReportMetric(dom.Speedup(seq), "domore-x")
	b.ReportMetric(bar.Speedup(seq), "barrier-x")
}

// BenchmarkFig5_2 regenerates Fig 5.2's headline geomeans at 24 threads
// (paper: SPECCROSS 4.6× vs barrier 1.3×).
func BenchmarkFig5_2(b *testing.B) {
	m := sim.DefaultModel()
	gates := map[string]func(int) int64{}
	for _, name := range specNames {
		gates[name] = gateOf(b, name)
	}
	var specS, barS []float64
	for i := 0; i < b.N; i++ {
		specS, barS = nil, nil
		for _, name := range specNames {
			tr := trace(b, name)
			seq := tr.SeqTime()
			ckpt := len(tr.Epochs)
			if ckpt > 1000 {
				ckpt = 1000
			}
			spec := sim.SimSpecCross(tr, sim.SpecConfig{Workers: 23, CheckpointEvery: ckpt, DistanceOf: gates[name]}, m)
			bar := sim.SimBarrier(tr, 24, m)
			specS = append(specS, spec.Speedup(seq))
			barS = append(barS, bar.Speedup(seq))
		}
	}
	b.ReportMetric(geomean(specS), "speccross-x")
	b.ReportMetric(geomean(barS), "barrier-x")
}

// BenchmarkFig5_3 regenerates Fig 5.3's trade-off: speedup with an injected
// misspeculation at few vs many checkpoints (recovery cost shrinks as
// checkpoints grow).
func BenchmarkFig5_3(b *testing.B) {
	m := sim.DefaultModel()
	tr := trace(b, "LOOPDEP")
	seq := tr.SeqTime()
	gate := gateOf(b, "LOOPDEP")
	var few, many sim.Result
	for i := 0; i < b.N; i++ {
		few = sim.SimSpecCross(tr, sim.SpecConfig{Workers: 23, CheckpointEvery: len(tr.Epochs) / 2, DistanceOf: gate, MisspecEpoch: len(tr.Epochs) / 2}, m)
		many = sim.SimSpecCross(tr, sim.SpecConfig{Workers: 23, CheckpointEvery: len(tr.Epochs) / 50, DistanceOf: gate, MisspecEpoch: len(tr.Epochs) / 2}, m)
	}
	b.ReportMetric(few.Speedup(seq), "2ckpt-x")
	b.ReportMetric(many.Speedup(seq), "50ckpt-x")
}

// BenchmarkTable5_2 regenerates Table 5.2's quantity for CG: the DOMORE
// scheduler/worker ratio (paper: 4.1%).
func BenchmarkTable5_2(b *testing.B) {
	m := sim.DefaultModel()
	tr := trace(b, "CG")
	var ratio float64
	for i := 0; i < b.N; i++ {
		var sched, work int64
		for _, e := range tr.Epochs {
			for _, t := range e.Tasks {
				if t.SchedCost > 0 {
					sched += t.SchedCost
				} else {
					sched += m.SchedPerIter + m.SchedPerAddr*int64(len(t.Reads)+len(t.Writes))
				}
				work += t.Cost
			}
		}
		ratio = 100 * float64(sched) / float64(work)
	}
	b.ReportMetric(ratio, "sched-worker-%")
}

// BenchmarkTable5_3 runs the real SPECCROSS engine on LOOPDEP and reports
// the Table 5.3 counters (tasks, checking requests) per run.
func BenchmarkTable5_3(b *testing.B) {
	e, err := workloads.Find("LOOPDEP")
	if err != nil {
		b.Fatal(err)
	}
	var stats speccross.Stats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inst := e.Make(1).(speccross.Workload)
		b.StartTimer()
		stats = speccross.Run(inst, speccross.Config{Workers: 4, CheckpointEvery: 1000, SpecDistance: 490})
	}
	b.ReportMetric(float64(stats.Tasks), "tasks")
	b.ReportMetric(float64(stats.CheckRequests), "check-requests")
}

// BenchmarkFig5_4 regenerates Fig 5.4's summary: this work's best geomean
// speedup across all ten benchmarks at 24 threads.
func BenchmarkFig5_4(b *testing.B) {
	m := sim.DefaultModel()
	var best []float64
	for i := 0; i < b.N; i++ {
		best = nil
		for _, e := range workloads.All() {
			if e.Name == "PHASED" {
				// The adaptive extension's synthetic is not one of the
				// figure's ten programs (it gets Fig A.1 / BenchmarkAdaptive).
				continue
			}
			tr := e.Make(1).Trace()
			seq := tr.SeqTime()
			v := 0.0
			if e.DomoreOK {
				v = sim.SimDomore(tr, 23, m).Speedup(seq)
			}
			if e.SpecOK {
				ckpt := len(tr.Epochs)
				if ckpt > 1000 {
					ckpt = 1000
				}
				if s := sim.SimSpecCross(tr, sim.SpecConfig{Workers: 23, CheckpointEvery: ckpt}, m).Speedup(seq); s > v {
					v = s
				}
			}
			best = append(best, v)
		}
	}
	b.ReportMetric(geomean(best), "best-geomean-x")
}

// BenchmarkFig5_6 regenerates the FLUIDANIMATE case study's headline
// ordering at 24 threads.
func BenchmarkFig5_6(b *testing.B) {
	f := fluidanimate.New(1)
	m := sim.DefaultModel()
	seq := f.SeqWork()
	lw := f.TraceVariant(fluidanimate.LocalWrite)
	dm := f.TraceVariant(fluidanimate.Domore)
	mn := f.TraceVariant(fluidanimate.Manual)
	var lwB, dmS, man sim.Result
	for i := 0; i < b.N; i++ {
		lwB = sim.SimBarrier(lw, 24, m)
		dmS = sim.SimDomore(dm, 23, m)
		man = sim.SimBarrier(mn, 24, m)
	}
	b.ReportMetric(lwB.Speedup(seq), "lw-barrier-x")
	b.ReportMetric(dmS.Speedup(seq), "domore-speccross-x")
	b.ReportMetric(man.Speedup(seq), "manual-doany-x")
}

// BenchmarkAdaptive regenerates Fig A.1's headline ordering at 24 threads:
// the adaptive controller on the phase-shifting workload against the static
// engine choices. The acceptance bar is adaptive beating both all-DOMORE
// and all-SPECCROSS end-to-end (no static engine suits every phase).
func BenchmarkAdaptive(b *testing.B) {
	m := sim.DefaultModel()
	tr := trace(b, "PHASED")
	seq := tr.SeqTime()
	var ad, spec sim.AdaptiveResult
	var dom sim.Result
	for i := 0; i < b.N; i++ {
		ad = sim.SimAdaptive(tr, sim.AdaptiveConfig{Threads: 24, Window: phased.Window}, m)
		dom = sim.SimDomore(tr, 23, m)
		// Static SPECCROSS runs the same windowed path with a pinned policy,
		// so its misspeculating high-phase windows pay rollback plus barrier
		// re-execution.
		spec = sim.SimAdaptive(tr, sim.AdaptiveConfig{
			Threads: 24, Window: phased.Window,
			Policy: adaptive.Fixed(adaptive.EngineSpecCross),
			Start:  adaptive.EngineSpecCross,
		}, m)
	}
	b.ReportMetric(ad.Speedup(seq), "adaptive-x")
	b.ReportMetric(dom.Speedup(seq), "domore-x")
	b.ReportMetric(spec.Speedup(seq), "speccross-x")
	b.ReportMetric(float64(ad.Switches), "switches")
}

// --- Ablation benchmarks (DESIGN.md) ---

// BenchmarkSignatureScheme compares the signature schemes' cost and, via a
// reported metric, their false-positive behaviour on scattered accesses
// (§4.2.1 motivates Bloom for random patterns; Exact is the custom
// generator FLUIDANIMATE needs).
func BenchmarkSignatureScheme(b *testing.B) {
	for _, kind := range []signature.Kind{signature.Range, signature.Bloom, signature.Exact} {
		b.Run(kind.String(), func(b *testing.B) {
			fp := 0
			trials := 0
			for i := 0; i < b.N; i++ {
				a := signature.New(kind)
				c := signature.New(kind)
				for k := 0; k < 16; k++ {
					a.Write(uint64(i*64+k) * 2)
					c.Write(uint64(i*64+k)*2 + 1)
				}
				trials++
				if a.Conflicts(c) {
					fp++
				}
			}
			b.ReportMetric(100*float64(fp)/float64(trials), "false-positive-%")
		})
	}
}

// BenchmarkCheckerSharding is the "parallelize the checker" future-work
// ablation (§5.2 identifies the single checker as the scaling bottleneck):
// virtual-time speedup of LOOPDEP with 1, 2, and 4 checker shards.
func BenchmarkCheckerSharding(b *testing.B) {
	tr := trace(b, "LOOPDEP")
	seq := tr.SeqTime()
	gate := gateOf(b, "LOOPDEP")
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			m := sim.DefaultModel()
			m.CheckPerTask /= int64(shards)
			var r sim.Result
			for i := 0; i < b.N; i++ {
				r = sim.SimSpecCross(tr, sim.SpecConfig{Workers: 23, CheckpointEvery: 1000, DistanceOf: gate}, m)
			}
			b.ReportMetric(r.Speedup(seq), "speedup-x")
		})
	}
}

// BenchmarkSchedulerDup compares DOMORE's dedicated-scheduler engine with
// the duplicated-scheduler variant (§3.4) on the real runtime.
func BenchmarkSchedulerDup(b *testing.B) {
	e, err := workloads.Find("CG")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dedicated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			inst := e.Make(1).(domore.Workload)
			b.StartTimer()
			domore.Run(inst, domore.Options{Workers: 4})
		}
	})
	b.Run("duplicated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			inst := e.Make(1).(domore.Workload)
			b.StartTimer()
			domore.RunDuplicated(inst, domore.Options{Workers: 4})
		}
	})
	b.Run("work-stealing", func(b *testing.B) {
		// The §3.3.3 future-work policy, implemented in RunStealing.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			inst := e.Make(1).(domore.Workload)
			b.StartTimer()
			domore.RunStealing(inst, domore.Options{Workers: 4})
		}
	})
}

// BenchmarkSpecRange ablates the speculative-range bound: unbounded vs the
// profiled distance vs an over-tight bound, on virtual time.
func BenchmarkSpecRange(b *testing.B) {
	tr := trace(b, "JACOBI")
	seq := tr.SeqTime()
	m := sim.DefaultModel()
	for _, c := range []struct {
		name string
		dist int64
	}{{"unbounded", 0}, {"profiled", 97}, {"tight", 8}} {
		b.Run(c.name, func(b *testing.B) {
			var r sim.Result
			for i := 0; i < b.N; i++ {
				r = sim.SimSpecCross(tr, sim.SpecConfig{Workers: 23, CheckpointEvery: 500, SpecDistance: c.dist}, m)
			}
			b.ReportMetric(r.Speedup(seq), "speedup-x")
		})
	}
}

// BenchmarkSchedulingPolicy compares the iteration-scheduling policies'
// per-assignment cost (§3.3.3; work stealing is the paper's future work).
func BenchmarkSchedulingPolicy(b *testing.B) {
	addrs := []uint64{17, 42, 1017, 2042}
	b.Run("round-robin", func(b *testing.B) {
		p := sched.NewRoundRobin()
		for i := 0; i < b.N; i++ {
			p.Assign(int64(i), addrs, 8)
		}
	})
	b.Run("localwrite", func(b *testing.B) {
		p := sched.NewLocalWrite(1 << 12)
		for i := 0; i < b.N; i++ {
			p.Assign(int64(i), addrs, 8)
		}
	})
	b.Run("work-stealing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ws := sched.NewWorkStealing(8, 1024)
			b.StartTimer()
			for {
				if _, ok := ws.Next(i % 8); !ok {
					break
				}
			}
		}
	})
}

// Compiler: run loop-nest-language programs through the full automatic
// parallelization pipeline — parse → lower → dependence analysis → region
// detection → DOMORE partition/slice/MTCG and SPECCROSS region generation —
// and execute each strategy, checking the results against sequential
// execution. This is the end-to-end path the crossinv CLI drives; the two
// .lnl files next to this program are the Fig 1.3 stencil and the Fig 3.1
// CG nest.
//
// Run with: go run ./examples/compiler
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"crossinv/internal/core"
	"crossinv/internal/runtime/speccross"
)

func main() {
	dir := exampleDir()
	for _, file := range []string{"stencil.lnl", "cg.lnl"} {
		src, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", file)
		run(string(src))
		fmt.Println()
	}
}

func run(src string) {
	c, err := core.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	region := c.Regions[len(c.Regions)-1]
	fmt.Print(c.Report(region))

	seq, err := c.RunSequential()
	if err != nil {
		log.Fatal(err)
	}
	want := seq.Checksum()
	fmt.Printf("sequential  checksum %016x\n", want)

	if res, err := c.RunBarriers(region, 4); err != nil {
		fmt.Printf("barrier     inapplicable: %v\n", err)
	} else {
		mustMatch("barrier", res.Env.Checksum(), want)
		fmt.Printf("barrier     checksum %016x ✔\n", res.Env.Checksum())
	}

	if res, err := c.RunDOMORE(region, 4); err != nil {
		fmt.Printf("domore      inapplicable: %v\n", err)
	} else {
		mustMatch("domore", res.Env.Checksum(), want)
		fmt.Printf("domore      checksum %016x ✔  (%d sync conditions at runtime)\n",
			res.Env.Checksum(), res.Stats.SyncConditions)
	}

	if res, err := c.RunSpecCross(region, speccross.Config{Workers: 4, CheckpointEvery: 20}, true); err != nil {
		fmt.Printf("speccross   inapplicable: %v\n", err)
	} else {
		mustMatch("speccross", res.Env.Checksum(), want)
		fmt.Printf("speccross   checksum %016x ✔  (profiled min distance %s)\n",
			res.Env.Checksum(), distString(res.Profile.MinDistance))
	}
}

func distString(d int64) string {
	if d == speccross.NoConflict {
		return "* (no conflicts)"
	}
	return fmt.Sprintf("%d", d)
}

func mustMatch(name string, got, want uint64) {
	if got != want {
		log.Fatalf("%s checksum %x != sequential %x", name, got, want)
	}
}

// exampleDir locates this example's directory so the .lnl files resolve
// regardless of the working directory `go run` was invoked from.
func exampleDir() string {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(self)
}

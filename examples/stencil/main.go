// Stencil: compare barrier-synchronized DOALL against SPECCROSS on a
// Jacobi-style sweep — the workload class Fig 5.2(e) evaluates — and show
// the virtual-time scalability sweep a 24-core machine would exhibit.
//
// Run with: go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/sim"
	"crossinv/internal/workloads/jacobi"
)

func main() {
	// Real concurrent execution: correctness first.
	golden := jacobi.New(1)
	golden.RunSequential()
	want := golden.Checksum()

	// Profile to bound speculation (§4.4): the stencil's row dependences
	// sit about one invocation apart.
	prof := speccross.Profile(jacobi.New(1), signature.Exact, 6)
	fmt.Printf("profiled min dependence distance: %d tasks\n", prof.MinDistance)

	k := jacobi.New(1)
	dist, profitable := prof.Recommended(4)
	if !profitable {
		log.Fatal("unexpected: jacobi should be profitable to speculate")
	}
	stats := speccross.Run(k, speccross.Config{
		Workers: 4, CheckpointEvery: 250, SpecDistance: dist,
	})
	if k.Checksum() != want {
		log.Fatalf("speccross checksum %x != sequential %x", k.Checksum(), want)
	}
	fmt.Printf("speculative execution: %d tasks, %d epochs, %d misspeculations — matches sequential ✔\n",
		stats.Tasks, stats.Epochs, stats.Misspeculations)

	// Virtual-time scalability: what the paper's 24-core testbed shows
	// (Fig 5.2(e)): the barrier version flattens, SPECCROSS keeps scaling.
	tr := jacobi.New(1).Trace()
	seq := tr.SeqTime()
	m := sim.DefaultModel()
	fmt.Printf("\n%8s %12s %12s\n", "threads", "barrier", "speccross")
	for threads := 2; threads <= 24; threads += 2 {
		bar := sim.SimBarrier(tr, threads, m)
		spec := sim.SimSpecCross(tr, sim.SpecConfig{
			Workers: threads - 1, CheckpointEvery: 1000, SpecDistance: prof.MinDistance,
		}, m)
		fmt.Printf("%8d %11.2fx %11.2fx\n", threads, bar.Speedup(seq), spec.Speedup(seq))
	}
}

// Quickstart: parallelize a loop nest with cross-invocation dependences
// using the two runtime engines this library provides.
//
// The program is the paper's motivating shape (Fig 1.3): a timestep loop
// whose body runs two parallel inner loops, where iteration j of the second
// loop reads values the first loop wrote — dependences that a conventional
// parallelizer respects with a barrier after every invocation. DOMORE
// (Chapter 3) replaces the barrier with runtime scheduling; SPECCROSS
// (Chapter 4) replaces it with a speculative barrier. Both must produce the
// sequential result bit for bit.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
)

const (
	timesteps = 200
	width     = 64
)

// stencil holds the two arrays of Fig 1.3 and implements both engines'
// Workload interfaces over the same state.
type stencil struct {
	a []int64 // written by loop L1, read by L2
	b []int64 // written by loop L2, read by L1
}

func newStencil() *stencil {
	s := &stencil{a: make([]int64, width), b: make([]int64, width+1)}
	for i := range s.b {
		s.b[i] = int64(i)
	}
	return s
}

// iterL1 and iterL2 are the two inner-loop bodies.
func (s *stencil) iterL1(i int) { s.a[i] = s.b[i] + s.b[i+1]*3 }
func (s *stencil) iterL2(j int) { s.b[j+1] = s.a[j] % 1009 }

func (s *stencil) checksum() uint64 {
	h := uint64(1469598103934665603)
	for _, v := range append(append([]int64{}, s.a...), s.b...) {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// --- speccross.Workload: each inner-loop invocation is an epoch ---

func (s *stencil) Epochs() int         { return timesteps * 2 }
func (s *stencil) Tasks(epoch int) int { return width }

func (s *stencil) Run(epoch, task, tid int, sig *signature.Signature) {
	if epoch%2 == 0 {
		if sig != nil {
			sig.Read(uint64(width + task))
			sig.Read(uint64(width + task + 1))
			sig.Write(uint64(task))
		}
		s.iterL1(task)
	} else {
		if sig != nil {
			sig.Read(uint64(task))
			sig.Write(uint64(width + task + 1))
		}
		s.iterL2(task)
	}
}

func (s *stencil) Snapshot() any {
	cp := make([]int64, width+width+1)
	copy(cp, s.a)
	copy(cp[width:], s.b)
	return cp
}

func (s *stencil) Restore(v any) {
	cp := v.([]int64)
	copy(s.a, cp[:width])
	copy(s.b, cp[width:])
}

// --- domore.Workload: same epochs, plus scheduler-side address slices ---

func (s *stencil) Invocations() int       { return timesteps * 2 }
func (s *stencil) Iterations(inv int) int { return width }
func (s *stencil) Sequential(inv int)     {}

func (s *stencil) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	if inv%2 == 0 {
		return append(buf, uint64(width+iter), uint64(width+iter+1), uint64(iter))
	}
	return append(buf, uint64(iter), uint64(width+iter+1))
}

func (s *stencil) Execute(inv, iter, tid int) {
	if inv%2 == 0 {
		s.iterL1(iter)
	} else {
		s.iterL2(iter)
	}
}

func main() {
	// 1. Sequential oracle.
	golden := newStencil()
	for t := 0; t < timesteps; t++ {
		for i := 0; i < width; i++ {
			golden.iterL1(i)
		}
		for j := 0; j < width; j++ {
			golden.iterL2(j)
		}
	}
	want := golden.checksum()
	fmt.Printf("sequential    checksum %016x\n", want)

	// 2. DOMORE: a scheduler thread detects dynamic dependences in shadow
	// memory and forwards synchronization conditions; iterations from
	// different invocations overlap unless they truly conflict.
	ds := newStencil()
	stats := domore.Run(ds, domore.Options{Workers: 4})
	fmt.Printf("domore        checksum %016x  (%d iterations, %d sync conditions, %d stalls)\n",
		ds.checksum(), stats.Iterations, stats.SyncConditions, stats.Stalls)
	if ds.checksum() != want {
		log.Fatal("DOMORE diverged from sequential")
	}

	// 3. SPECCROSS: profile the region to find the minimum dependence
	// distance, then speculate across the barriers with that range.
	prof := speccross.Profile(newStencil(), signature.Range, 8)
	dist, profitable := prof.Recommended(4)
	fmt.Printf("profile       min dependence distance %d (profitable with 4 workers: %v)\n",
		prof.MinDistance, profitable)

	ss := newStencil()
	spec := speccross.Run(ss, speccross.Config{
		Workers: 4, CheckpointEvery: 50, SpecDistance: dist,
	})
	fmt.Printf("speccross     checksum %016x  (%d tasks, %d misspeculations, %d checkpoints)\n",
		ss.checksum(), spec.Tasks, spec.Misspeculations, spec.Checkpoints)
	if ss.checksum() != want {
		log.Fatal("SPECCROSS diverged from sequential")
	}

	fmt.Println("all strategies agree ✔")
}

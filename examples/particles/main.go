// Particles: the FLUIDANIMATE case study (§5.4) as a runnable program.
// One smoothed-particle-hydrodynamics simulation is executed four ways —
// sequentially, with barriers between the eight frame phases, with the
// hand-style DOANY (per-cell locks), and speculatively with per-loop
// profiled ranges — and all four must agree bit for bit.
//
// Run with: go run ./examples/particles
package main

import (
	"fmt"
	"log"

	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/workloads/fluidanimate"
)

func main() {
	golden := fluidanimate.New(1)
	golden.RunSequential()
	want := golden.Checksum()
	fmt.Printf("sequential     checksum %016x\n", want)

	// Barrier-parallelized frame loop: eight barriers per frame.
	fb := fluidanimate.New(1)
	bar := speccross.RunBarriers(fb, 4)
	idle, waits := bar.Stats()
	check("barrier", fb.Checksum(), want)
	fmt.Printf("barrier        checksum %016x  (%d waits, %v idle)\n", fb.Checksum(), waits, idle)

	// The manual PARSEC plan: pair-once interactions under per-cell locks.
	fm := fluidanimate.New(1)
	fm.RunManualDOANY(4)
	check("manual DOANY", fm.Checksum(), want)
	fmt.Printf("manual DOANY   checksum %016x\n", fm.Checksum())

	// SPECCROSS with per-loop speculative ranges: phases whose profiled
	// distance is large overlap freely; the tight ones gate (§5.4 explains
	// why fluidanimate needs exactly this).
	prof := speccross.Profile(fluidanimate.New(1), signature.Exact, 4)
	fmt.Printf("profiled per-loop distances: %v\n", prof.PerLoop)
	fs := fluidanimate.New(1)
	stats := speccross.Run(fs, speccross.Config{
		Workers: 4, CheckpointEvery: 64, SigKind: signature.Exact,
		SpecDistanceOf: prof.PerEpoch(fs),
	})
	check("speccross", fs.Checksum(), want)
	fmt.Printf("speccross      checksum %016x  (%d tasks, %d misspeculations)\n",
		fs.Checksum(), stats.Tasks, stats.Misspeculations)

	fmt.Println("all strategies agree ✔")
}

func check(name string, got, want uint64) {
	if got != want {
		log.Fatalf("%s checksum %x != sequential %x", name, got, want)
	}
}

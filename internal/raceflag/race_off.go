//go:build !race

// Package raceflag exposes whether the race detector is active; see
// race_on.go.
package raceflag

// Enabled reports whether the binary was built with -race.
const Enabled = false

//go:build race

// Package raceflag exposes whether the race detector is active, for two
// test-suite adaptations:
//
//   - Tests that exercise *intentional* speculative overlap — racy by
//     design, per the SPECCROSS execution model (§4.2.1): conflicting
//     accesses race until the checker detects them and rolls back — skip
//     under -race while still running (and validating the detection +
//     recovery path) in the normal suite. The adaptive-runtime tests
//     instead gate speculative windows with a profiled SpecDistance (or a
//     pinned DOMORE policy) so the controller itself stays fully exercised
//     under the detector; only the real-misspeculation recovery test skips.
//   - Long-region workload suites shrink their invocation counts (never
//     their structure) so the detector's 10–20× slowdown stays within
//     timeouts; see internal/workloads/workloadtest.Make.
package raceflag

// Enabled reports whether the binary was built with -race.
const Enabled = true

//go:build race

// Package raceflag exposes whether the race detector is active, so tests
// that exercise *intentional* speculative overlap — racy by design, per the
// SPECCROSS execution model (§4.2.1): conflicting accesses race until the
// checker detects them and rolls back — can be skipped under -race while
// still running (and validating the detection + recovery path) in the
// normal suite.
package raceflag

// Enabled reports whether the binary was built with -race.
const Enabled = true

// Package lint implements the repo-specific static checks that a generic
// `go vet` cannot know about, run via `go vet -vettool` (cmd/crossinvvet)
// or directly over source directories. It is deliberately stdlib-only
// (go/ast + go/parser, no type information): the rules are syntactic
// idioms the codebase's concurrency audits pinned, and a syntactic pass
// keeps the tool dependency-free.
//
// Rule stats-atomic: inside the engine packages (domore, speccross) every
// write to a Stats field that concurrent goroutines share — Stalls,
// RangeStalls, and LaneWaits per the audited concurrency contract on
// domore.Stats — must go through atomic.AddInt64. A plain `stats.Stalls++` inside an engine is
// a data race the race detector only catches when a schedule happens to
// expose it; this pass catches it on every build.
//
// Rule trace-nil-guard: every exported pointer-receiver method on
// trace.Recorder and trace.ThreadTrace must contain the nil-receiver
// guard idiom (`if r == nil`, `return t != nil`, …). A nil recorder is
// the documented "tracing disabled" state passed through every engine, so
// an unguarded method is a latent panic on the untraced path.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Msg)
}

// atomicStatsFields lists Stats fields written by concurrent goroutines
// while an engine runs (the audited contract on domore.Stats: every other
// field is single-writer and may use plain increments).
var atomicStatsFields = map[string]bool{
	"Stalls":          true,
	"RangeStalls":     true,
	"PrefilterChecks": true,
	"PrefilterHits":   true,
	// LaneWaits is written by every scheduler lane of the sharded DOMORE
	// scheduler while the driver runs; like Stalls it crosses goroutines.
	"LaneWaits": true,
}

// enginePackages scopes the stats-atomic rule: only inside the engines do
// worker goroutines write Stats concurrently. Post-join aggregation
// elsewhere (adaptive's window merge, the simulator) is legitimately
// plain.
var enginePackages = map[string]bool{
	"domore":    true,
	"speccross": true,
}

// guardedTypes scopes the nil-guard rule to the trace package's
// nil-tolerant handles.
var guardedTypes = map[string]bool{
	"Recorder":    true,
	"ThreadTrace": true,
}

// CheckFile runs every rule over one parsed file. pkg is the package name
// the file belongs to (used for rule scoping).
func CheckFile(fset *token.FileSet, pkg string, f *ast.File) []Diagnostic {
	var out []Diagnostic
	if enginePackages[pkg] {
		out = append(out, checkStatsAtomic(fset, f)...)
	}
	if pkg == "trace" {
		out = append(out, checkNilGuards(fset, f)...)
	}
	return out
}

// checkStatsAtomic flags direct writes to the audited concurrent Stats
// fields. Reads, atomic.AddInt64(&s.Stalls, …), and composite literals
// are fine; assignment statements and ++/-- targeting the field are not.
func checkStatsAtomic(fset *token.FileSet, f *ast.File) []Diagnostic {
	var out []Diagnostic
	flag := func(pos token.Pos, field, how string) {
		out = append(out, Diagnostic{
			Pos:  fset.Position(pos),
			Rule: "stats-atomic",
			Msg: fmt.Sprintf("non-atomic %s of audited Stats field %s; concurrent goroutines write it, use atomic.AddInt64",
				how, field),
		})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if name, ok := auditedSelector(lhs); ok {
					flag(lhs.Pos(), name, "assignment")
				}
			}
		case *ast.IncDecStmt:
			if name, ok := auditedSelector(st.X); ok {
				flag(st.X.Pos(), name, "increment")
			}
		}
		return true
	})
	return out
}

func auditedSelector(e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !atomicStatsFields[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkNilGuards flags exported pointer-receiver methods on the guarded
// trace types whose body never compares the receiver against nil.
func checkNilGuards(fset *token.FileSet, f *ast.File) []Diagnostic {
	var out []Diagnostic
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		recvName, typeName, ok := pointerReceiver(fd)
		if !ok || !guardedTypes[typeName] {
			continue
		}
		if !comparesReceiverToNil(fd.Body, recvName) {
			out = append(out, Diagnostic{
				Pos:  fset.Position(fd.Pos()),
				Rule: "trace-nil-guard",
				Msg: fmt.Sprintf("method (*%s).%s has no nil-receiver guard; a nil %s means tracing is disabled and must be a no-op",
					typeName, fd.Name.Name, typeName),
			})
		}
	}
	return out
}

// pointerReceiver extracts the receiver ident and pointed-to type name of
// a `func (r *T) M(…)` declaration.
func pointerReceiver(fd *ast.FuncDecl) (recv, typ string, ok bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", "", false
	}
	ident, ok := star.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	if len(field.Names) != 1 {
		return "", "", false // unnamed receiver can't be guarded
	}
	return field.Names[0].Name, ident.Name, true
}

// comparesReceiverToNil reports whether the body contains `recv == nil`
// or `recv != nil` (in either operand order) — the guard idiom in any of
// its shapes: early return, body wrap, or `return recv != nil`.
func comparesReceiverToNil(body *ast.BlockStmt, recv string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if isIdent(be.X, recv) && isNil(be.Y) || isIdent(be.Y, recv) && isNil(be.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool { return isIdent(e, "nil") }

// CheckFiles parses and checks the named Go source files as one package
// unit. Unparseable files are reported as diagnostics rather than errors:
// the build proper will fail on them with a better message, the linter
// just must not crash.
func CheckFiles(files []string) []Diagnostic {
	fset := token.NewFileSet()
	var out []Diagnostic
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue // tests may build Stats fixtures with plain writes
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			out = append(out, Diagnostic{
				Pos: token.Position{Filename: path}, Rule: "parse", Msg: err.Error(),
			})
			continue
		}
		out = append(out, CheckFile(fset, f.Name.Name, f)...)
	}
	sortDiags(out)
	return out
}

// CheckDir walks root recursively and checks every non-test Go file.
func CheckDir(root string) ([]Diagnostic, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return CheckFiles(files), nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

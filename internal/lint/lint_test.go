package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// check parses src as one file of package pkg and runs the rules.
func check(t *testing.T, pkg, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, pkg+".go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return CheckFile(fset, pkg, f)
}

func wantRule(t *testing.T, ds []Diagnostic, rule, substr string) {
	t.Helper()
	for _, d := range ds {
		if d.Rule == rule && strings.Contains(d.Msg, substr) {
			return
		}
	}
	t.Fatalf("no %s diagnostic containing %q in %v", rule, substr, ds)
}

func TestStatsAtomicFlagsPlainWrites(t *testing.T) {
	src := `package domore

import "sync/atomic"

type Stats struct{ Stalls, RangeStalls, LaneWaits, Iterations, Batches int64 }

func bad(s *Stats) {
	s.Stalls++                   // flagged: increment
	s.Stalls = s.Stalls + 1      // flagged: assignment
	s.RangeStalls += 2           // flagged: compound assignment
	s.LaneWaits++                // flagged: scheduler-lane field
	s.Iterations++               // fine: single-writer field
	s.Batches++                  // fine: driver-only field
	_ = s.Stalls                 // fine: read
	atomic.AddInt64(&s.Stalls, 1) // fine: the required idiom
	atomic.AddInt64(&s.LaneWaits, 1) // fine: the required idiom
}
`
	ds := check(t, "domore", src)
	if got := len(ds); got != 4 {
		t.Fatalf("want 4 diagnostics, got %d: %v", got, ds)
	}
	wantRule(t, ds, "stats-atomic", "increment of audited Stats field Stalls")
	wantRule(t, ds, "stats-atomic", "assignment of audited Stats field Stalls")
	wantRule(t, ds, "stats-atomic", "assignment of audited Stats field RangeStalls")
	wantRule(t, ds, "stats-atomic", "increment of audited Stats field LaneWaits")
}

func TestStatsAtomicScopedToEnginePackages(t *testing.T) {
	// Post-join aggregation outside the engines (adaptive's window merge,
	// the simulator) legitimately uses plain arithmetic — same source,
	// different package name, zero findings.
	src := `package adaptive

type Stats struct{ Stalls int64 }

func addDomore(dst, s *Stats) { dst.Stalls += s.Stalls }
`
	if ds := check(t, "adaptive", src); len(ds) != 0 {
		t.Fatalf("aggregation outside engine packages flagged: %v", ds)
	}
}

func TestNilGuardAcceptsAllThreeIdioms(t *testing.T) {
	src := `package trace

type Recorder struct{ n int }
type ThreadTrace struct{ r *Recorder }

// Leading early-return guard.
func (r *Recorder) Summary() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Guard as the whole body.
func (t *ThreadTrace) Enabled() bool { return t != nil }

// Inverted body-wrapping guard.
func (r *Recorder) WriteChrome() int {
	var out int
	if r != nil {
		out = r.n
	}
	return out
}

// Unexported methods are called only behind an exported guard; exempt.
func (r *Recorder) now() int { return r.n }
`
	if ds := check(t, "trace", src); len(ds) != 0 {
		t.Fatalf("guarded idioms flagged: %v", ds)
	}
}

func TestNilGuardFlagsUnguardedExportedMethod(t *testing.T) {
	src := `package trace

type Recorder struct{ n int }
type other struct{ n int }

func (r *Recorder) Events() int { return r.n }

// Non-trace types in the same package are out of scope.
func (o *other) Count() int { return o.n }
`
	ds := check(t, "trace", src)
	if got := len(ds); got != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", got, ds)
	}
	wantRule(t, ds, "trace-nil-guard", "(*Recorder).Events has no nil-receiver guard")
}

func TestNilGuardScopedToTracePackage(t *testing.T) {
	src := `package notrace

type Recorder struct{ n int }

func (r *Recorder) Events() int { return r.n }
`
	if ds := check(t, "notrace", src); len(ds) != 0 {
		t.Fatalf("Recorder outside package trace flagged: %v", ds)
	}
}

func TestCheckFilesSkipsTestsAndReportsParseErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "a.go")
	testf := filepath.Join(dir, "a_test.go")
	broken := filepath.Join(dir, "b.go")
	os.WriteFile(good, []byte("package domore\ntype Stats struct{ Stalls int64 }\nfunc f(s *Stats) { s.Stalls++ }\n"), 0o644)
	os.WriteFile(testf, []byte("package domore\nfunc g(s *Stats) { s.Stalls = 7 }\n"), 0o644)
	os.WriteFile(broken, []byte("package domore\nfunc {"), 0o644)

	ds := CheckFiles([]string{good, testf, broken})
	wantRule(t, ds, "stats-atomic", "Stalls")
	wantRule(t, ds, "parse", "expected")
	for _, d := range ds {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			t.Fatalf("test file was not skipped: %v", d)
		}
	}
}

// TestRepoIsClean runs the pass over the real runtime tree: the audited
// code must satisfy its own rules (this is the same sweep CI runs via
// `go vet -vettool`).
func TestRepoIsClean(t *testing.T) {
	root := filepath.Join("..", "runtime")
	if _, err := os.Stat(root); err != nil {
		t.Skipf("runtime tree not present: %v", err)
	}
	ds, err := CheckDir(root)
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	if len(ds) != 0 {
		for _, d := range ds {
			t.Errorf("%s", d)
		}
	}
}

package pdg_test

import (
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/pdg"
	"crossinv/internal/analysis/scc"
	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
)

func build(t *testing.T, src string, loopIdx int) (*ir.Program, *pdg.Graph) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	dep := depend.Analyze(p)
	var region *ir.Loop
	if loopIdx >= 0 {
		region = p.Loops[loopIdx]
	}
	return p, pdg.Build(p, dep, region)
}

const cgLike = `
func cg() {
  var A[10], B[10], C[100], IDX[100]
  for i = 0 .. 10 {
    start = A[i]
    end = B[i]
    parfor j = start .. end {
      C[IDX[j]] = C[IDX[j]] + j
    }
  }
}
`

func TestBuildWholeProgram(t *testing.T) {
	p, g := build(t, cgLike, -1)
	if len(g.Nodes) != len(p.Instrs) {
		t.Fatalf("nodes = %d, want all %d instructions", len(g.Nodes), len(p.Instrs))
	}
	if len(g.Edges) == 0 {
		t.Fatal("no edges")
	}
}

func TestRegisterEdgesExact(t *testing.T) {
	_, g := build(t, `func f() { var A[4] x = 1 + 2 A[x] = x }`, -1)
	// Each reg has one def; count RegEdge edges and check src defines dst's use.
	regEdges := 0
	for _, e := range g.Edges {
		if e.Kind == pdg.RegEdge {
			regEdges++
			if e.Src == e.Dst {
				t.Fatal("self reg edge")
			}
		}
	}
	if regEdges == 0 {
		t.Fatal("expected register def-use edges")
	}
}

func TestLoopCarriedMemoryEdges(t *testing.T) {
	_, g := build(t, `func f() {
		var A[101]
		for i = 0 .. 100 { A[i+1] = A[i] + 1 }
	}`, -1)
	carried := 0
	for _, e := range g.Edges {
		if e.Kind == pdg.MemoryEdge && e.LoopCarried {
			carried++
		}
	}
	if carried == 0 {
		t.Fatal("recurrence must produce loop-carried memory edges")
	}
}

func TestNoCarriedMemoryEdgesWhenDisjoint(t *testing.T) {
	_, g := build(t, `func f() {
		var A[100], B[101]
		parfor i = 0 .. 100 { A[i] = B[i] + B[i+1] }
	}`, -1)
	for _, e := range g.Edges {
		if e.Kind == pdg.MemoryEdge && e.LoopCarried {
			t.Fatalf("unexpected loop-carried memory edge %v", e)
		}
	}
}

func TestRegionRestrictsNodes(t *testing.T) {
	p, g := build(t, cgLike, 0) // region = outer loop
	// The outer loop's own bound instructions are outside the region.
	for _, id := range g.Nodes {
		for _, in := range p.Loops[0].Lo {
			if in.ID == id {
				t.Fatal("region contains its own Lo instruction")
			}
		}
	}
	// Inner loop bound instructions (start/end reads) are inside.
	found := false
	for _, id := range g.Nodes {
		for _, in := range p.Loops[1].Lo {
			if in.ID == id {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("inner loop bounds missing from region PDG")
	}
}

func TestIrregularStoreFormsSelfSCC(t *testing.T) {
	// The CG pattern of Fig 3.6: the irregular update of C participates in a
	// loop-carried dependence cycle (dashed self-edge) but must not be glued
	// to the scheduler instructions when carried memory edges are ignored.
	p, g := build(t, cgLike, 0)
	full := g.ToSCCGraph(false)
	pruned := g.ToSCCGraph(true)
	rFull := scc.Tarjan(full)
	rPruned := scc.Tarjan(pruned)
	if rPruned.NumComponents() < rFull.NumComponents() {
		t.Fatalf("pruning edges cannot reduce component count: full=%d pruned=%d",
			rFull.NumComponents(), rPruned.NumComponents())
	}
	// Find the store to C; in the pruned graph its component must not
	// contain any instruction from the outer sequential region (the
	// WriteVar start/end instructions).
	var storeID int = -1
	var writeVars []int
	for _, in := range p.Instrs {
		if in.Op == ir.Store && in.Array == "C" {
			storeID = in.ID
		}
		if in.Op == ir.WriteVar {
			writeVars = append(writeVars, in.ID)
		}
	}
	if storeID < 0 || len(writeVars) == 0 {
		t.Fatal("test setup: missing store or writevar")
	}
	sc := rPruned.Comp[g.Index[storeID]]
	for _, wv := range writeVars {
		if rPruned.Comp[g.Index[wv]] == sc {
			t.Fatal("store C glued to sequential region even without carried memory edges")
		}
	}
}

func TestControlEdgesFromBounds(t *testing.T) {
	p, g := build(t, cgLike, 0)
	// Body instructions must be control-dependent on the inner loop bounds.
	inner := p.Loops[1]
	boundID := inner.Lo[len(inner.Lo)-1].ID
	found := false
	for _, e := range g.Edges {
		if e.Kind == pdg.ControlEdge && e.Src == boundID {
			found = true
		}
	}
	if !found {
		t.Fatal("no control edge from inner loop bound")
	}
}

func TestScalarFlowEdges(t *testing.T) {
	_, g := build(t, `func f() {
		var A[4]
		x = 2
		A[0] = x
	}`, -1)
	found := false
	for _, e := range g.Edges {
		if e.Kind == pdg.ScalarEdge && !e.LoopCarried {
			found = true
		}
	}
	if !found {
		t.Fatal("no scalar flow edge from x's write to its read")
	}
}

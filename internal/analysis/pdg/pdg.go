// Package pdg builds program dependence graphs over IR instructions — the
// PDGs of Figs 2.4, 3.1 and 3.6(b) that drive the DOMORE partitioner and
// the SPECCROSS region test. Nodes are instruction IDs; edges carry their
// origin (register, scalar, memory, control) and whether they are
// loop-carried for the region loop (the dashed edges of Fig 3.6(b)).
package pdg

import (
	"fmt"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/scc"
	"crossinv/internal/ir"
)

// EdgeKind describes what a dependence edge carries.
type EdgeKind int

// Edge kinds.
const (
	RegEdge     EdgeKind = iota // virtual-register def→use
	ScalarEdge                  // named-scalar flow/anti/output
	MemoryEdge                  // array flow/anti/output
	ControlEdge                 // loop/if control
)

var kindNames = [...]string{"reg", "scalar", "memory", "control"}

// String returns the kind name.
func (k EdgeKind) String() string { return kindNames[k] }

// Edge is one dependence between two instructions (by ID).
type Edge struct {
	Src, Dst int
	Kind     EdgeKind
	// LoopCarried marks edges that cross iterations of some loop inside the
	// region, or of the region loop itself.
	LoopCarried bool
	// InnerToInner marks carried edges whose endpoints both live inside
	// parallel inner loops — Fig 3.6(b)'s dashed edges: the cross-iteration
	// and cross-invocation dependences DOMORE's runtime enforces. Only
	// these may be ignored when partitioning; a carried dependence touching
	// the sequential region is a hard pipeline constraint.
	InnerToInner bool
	// Privatizable marks carried scalar edges between a sequential-region
	// definition and a parallel-body use: MTCG forwards a per-invocation
	// copy of such live-ins (§3.3.2 step 4), so the carried flow/anti
	// relationship is satisfied by privatization rather than by the
	// partition, and the partitioner may ignore these edges too.
	Privatizable bool
}

// Graph is a program dependence graph over the instructions of one region.
type Graph struct {
	Prog   *ir.Program
	Region *ir.Loop // nil means the whole program body
	// Nodes lists member instruction IDs in textual order.
	Nodes []int
	// Index maps instruction ID to its dense node index.
	Index map[int]int
	Edges []Edge
}

// Build constructs the PDG for a region (a loop's body, or the whole
// program when region is nil), using dep for memory disambiguation.
func Build(p *ir.Program, dep *depend.Result, region *ir.Loop) *Graph {
	g := &Graph{Prog: p, Region: region, Index: map[int]int{}}
	b := &builder{g: g, dep: dep, regDef: map[ir.Reg]int{}}

	var roots []ir.Node
	if region != nil {
		roots = region.Body
	} else {
		roots = p.Body
	}
	b.collect(roots, 0)
	b.regEdges()
	b.scalarEdges()
	b.memoryEdges()
	return g
}

// member records per-node structural facts used to classify edges.
type member struct {
	id        int
	instr     *ir.Instr
	loopDepth int        // nesting depth of loops inside the region
	loops     []*ir.Loop // loops inside the region enclosing this node
	order     int        // textual order
	// controlDeps are instruction IDs whose values control this node's
	// execution (enclosing if-conditions and loop bounds).
	controlDeps []int
}

type builder struct {
	g       *Graph
	dep     *depend.Result
	members []member
	regDef  map[ir.Reg]int // reg → defining node ID
}

func (b *builder) add(in *ir.Instr, loops []*ir.Loop, ctrl []int) {
	m := member{
		id: in.ID, instr: in, loopDepth: len(loops),
		loops:       append([]*ir.Loop(nil), loops...),
		order:       len(b.members),
		controlDeps: append([]int(nil), ctrl...),
	}
	b.g.Index[in.ID] = len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, in.ID)
	b.members = append(b.members, m)
	if in.Op.HasDst() {
		b.regDef[in.Dst] = in.ID
	}
}

// collect walks the region's loop tree, recording members with their
// enclosing loop stacks and control dependences.
func (b *builder) collect(nodes []ir.Node, depth int) {
	b.collectCtx(nodes, nil, nil)
	_ = depth
}

func (b *builder) collectCtx(nodes []ir.Node, loops []*ir.Loop, ctrl []int) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Instr:
			b.add(n, loops, ctrl)
		case *ir.Loop:
			for _, in := range n.Lo {
				b.add(in, loops, ctrl)
			}
			for _, in := range n.Hi {
				b.add(in, loops, ctrl)
			}
			// The loop bounds control everything in the body.
			bodyCtrl := append(append([]int(nil), ctrl...), boundIDs(n)...)
			b.collectCtx(n.Body, append(loops, n), bodyCtrl)
		case *ir.If:
			for _, in := range n.Cond {
				b.add(in, loops, ctrl)
			}
			var condID []int
			if len(n.Cond) > 0 {
				condID = []int{n.Cond[len(n.Cond)-1].ID}
			}
			branchCtrl := append(append([]int(nil), ctrl...), condID...)
			b.collectCtx(n.Then, loops, branchCtrl)
			b.collectCtx(n.Else, loops, branchCtrl)
		}
	}
}

func boundIDs(l *ir.Loop) []int {
	var ids []int
	if len(l.Lo) > 0 {
		ids = append(ids, l.Lo[len(l.Lo)-1].ID)
	}
	if len(l.Hi) > 0 {
		ids = append(ids, l.Hi[len(l.Hi)-1].ID)
	}
	return ids
}

func (b *builder) edge(src, dst int, kind EdgeKind, carried bool) {
	b.edgeFull(src, dst, kind, carried, false)
}

func (b *builder) edgeFull(src, dst int, kind EdgeKind, carried, innerToInner bool) {
	if src == dst && kind != MemoryEdge {
		return
	}
	b.g.Edges = append(b.g.Edges, Edge{Src: src, Dst: dst, Kind: kind, LoopCarried: carried, InnerToInner: innerToInner})
}

func (b *builder) edgeScalarCarried(src, dst int, privatizable bool) {
	if src == dst {
		return
	}
	b.g.Edges = append(b.g.Edges, Edge{Src: src, Dst: dst, Kind: ScalarEdge, LoopCarried: true, Privatizable: privatizable})
}

// regEdges adds def→use edges; registers are single-assignment by
// construction of the lowering, so these are exact. Control dependences are
// added here too (bound/condition → dependent node).
func (b *builder) regEdges() {
	for _, m := range b.members {
		in := m.instr
		for _, use := range regUses(in) {
			if def, ok := b.regDef[use]; ok {
				b.edge(def, in.ID, RegEdge, false)
			}
		}
		for _, c := range m.controlDeps {
			if _, inRegion := b.g.Index[c]; inRegion {
				b.edge(c, in.ID, ControlEdge, false)
			}
		}
	}
}

func regUses(in *ir.Instr) []ir.Reg {
	switch in.Op {
	case ir.Const, ir.ReadVar:
		return nil
	case ir.Load:
		return []ir.Reg{in.A}
	case ir.Store:
		return []ir.Reg{in.A, in.B}
	case ir.WriteVar:
		return []ir.Reg{in.A}
	default:
		return []ir.Reg{in.A, in.B}
	}
}

// scalarEdges connects named-variable writes and reads. Loop induction
// variables have no writer inside the region (the loop header owns them);
// reads of a region-internal loop's variable are control-tied to that
// loop's bounds instead.
func (b *builder) scalarEdges() {
	writes := map[string][]member{}
	reads := map[string][]member{}
	loopVars := map[string]*ir.Loop{}
	for _, m := range b.members {
		switch m.instr.Op {
		case ir.WriteVar:
			writes[m.instr.Var] = append(writes[m.instr.Var], m)
		case ir.ReadVar:
			reads[m.instr.Var] = append(reads[m.instr.Var], m)
		}
		for _, l := range m.loops {
			loopVars[l.Var] = l
		}
	}
	for v, ws := range writes {
		for _, w := range ws {
			for _, r := range reads[v] {
				// A scalar written and read inside the region is carried by
				// any common inner loop — or by the region loop itself,
				// whose iterations re-execute both (the cost/node
				// recurrences of Fig 2.4). A sequential-region definition
				// read inside a parallel body is the live-in pattern MTCG
				// privatizes, so its carried edges are soft for the
				// partitioner.
				carried := shareLoop(w, r) || b.g.Region != nil
				priv := !inParallelBody(w) && inParallelBody(r)
				if r.order > w.order {
					b.edge(w.id, r.id, ScalarEdge, false) // flow
				}
				if carried {
					b.edgeScalarCarried(w.id, r.id, priv) // loop-carried flow
					b.edgeScalarCarried(r.id, w.id, priv) // loop-carried anti
				} else if r.order < w.order {
					b.edge(r.id, w.id, ScalarEdge, false) // anti
				}
			}
			for _, w2 := range ws {
				if w2.order > w.order {
					b.edge(w.id, w2.id, ScalarEdge, false) // output
				}
				if w.id != w2.id && (shareLoop(w, w2) || b.g.Region != nil) {
					b.edge(w.id, w2.id, ScalarEdge, true)
				}
			}
		}
	}
	// Induction-variable reads depend on their loop's bound computation.
	for v, l := range loopVars {
		for _, r := range reads[v] {
			if !hasLoop(r.loops, l) {
				continue
			}
			for _, bid := range boundIDs(l) {
				if _, ok := b.g.Index[bid]; ok {
					b.edge(bid, r.id, ControlEdge, false)
				}
			}
		}
	}
}

func shareLoop(a, c member) bool {
	for _, la := range a.loops {
		if hasLoop(c.loops, la) {
			return true
		}
	}
	return false
}

func hasLoop(loops []*ir.Loop, l *ir.Loop) bool {
	for _, x := range loops {
		if x == l {
			return true
		}
	}
	return false
}

// memoryEdges connects same-array access pairs with at least one write,
// unless the affine tests disprove every aliasing possibility. Pairs that
// can alias in different iterations of a common enclosing loop get
// loop-carried edges in both directions (they form the dependence cycles of
// Fig 3.1(c)); pairs that only alias within one iteration get a textual-
// order edge.
func (b *builder) memoryEdges() {
	var accesses []member
	for _, m := range b.members {
		if m.instr.Op == ir.Load || m.instr.Op == ir.Store {
			accesses = append(accesses, m)
		}
	}
	for i, m1 := range accesses {
		a1 := b.dep.AccessOf(m1.id)
		for _, m2 := range accesses[i:] {
			a2 := b.dep.AccessOf(m2.id)
			if a1 == nil || a2 == nil {
				continue
			}
			if a1.Array != a2.Array || (!a1.IsWrite && !a2.IsWrite) {
				continue
			}
			// Same-iteration aliasing.
			if m1.id != m2.id && sameIterAlias(a1, a2) {
				if m1.order <= m2.order {
					b.edge(m1.id, m2.id, MemoryEdge, false)
				} else {
					b.edge(m2.id, m1.id, MemoryEdge, false)
				}
			}
			// Loop-carried aliasing: test the innermost common loop and the
			// region loop itself (the latter carries the cross-invocation
			// dependences of Fig 3.1(c)).
			carried := false
			if l := commonLoop(m1, m2); l != nil {
				if dep, _, _ := b.dep.TestPair(a1, a2, l); dep {
					carried = true
				}
			}
			if !carried && b.g.Region != nil {
				if dep, _, _ := b.dep.TestPair(a1, a2, b.g.Region); dep {
					carried = true
				}
			}
			if carried {
				i2i := inParallelBody(m1) && inParallelBody(m2)
				b.edgeFull(m1.id, m2.id, MemoryEdge, true, i2i)
				if m1.id != m2.id {
					b.edgeFull(m2.id, m1.id, MemoryEdge, true, i2i)
				}
			}
		}
	}
}

// sameIterAlias reports whether two accesses may touch the same address in
// the same iteration of every common loop (forms equal, or either unknown).
func sameIterAlias(a1, a2 *depend.Access) bool {
	if !a1.Form.Known || !a2.Form.Known {
		return true
	}
	d := depend.SubLin(a1.Form, a2.Form)
	return !d.IsConst() || d.Const == 0
}

// inParallelBody reports whether the member sits inside some parfor loop.
func inParallelBody(m member) bool {
	for _, l := range m.loops {
		if l.Parallel {
			return true
		}
	}
	return false
}

func commonLoop(m1, m2 member) *ir.Loop {
	// Innermost common loop.
	var found *ir.Loop
	for _, l := range m1.loops {
		if hasLoop(m2.loops, l) {
			found = l
		}
	}
	return found
}

// ToSCCGraph converts the PDG into an scc.Graph over dense node indices.
// When ignoreInnerCarried is set, loop-carried memory edges between
// parallel-loop bodies are excluded — this is how the DOMORE partitioner
// sees the graph, because those dependences are enforced at runtime by the
// scheduler rather than by the partition (the dashed-vs-solid distinction
// of Fig 3.6). Carried dependences touching the sequential region are
// always kept: they are pipeline violations the fixed point must see.
func (g *Graph) ToSCCGraph(ignoreInnerCarried bool) *scc.Graph {
	sg := scc.NewGraph(len(g.Nodes))
	for _, e := range g.Edges {
		if ignoreInnerCarried && e.Kind == MemoryEdge && e.LoopCarried && e.InnerToInner {
			continue
		}
		if ignoreInnerCarried && e.Kind == ScalarEdge && e.LoopCarried && e.Privatizable {
			continue
		}
		si, ok1 := g.Index[e.Src]
		di, ok2 := g.Index[e.Dst]
		if ok1 && ok2 && si != di {
			sg.AddEdge(si, di)
		}
	}
	return sg
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("pdg{nodes=%d edges=%d}", len(g.Nodes), len(g.Edges))
}

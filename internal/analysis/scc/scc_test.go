package scc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleNodes(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := Tarjan(g)
	if r.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3", r.NumComponents())
	}
	// Edge order: Comp[u] > Comp[v] for u→v.
	if !(r.Comp[0] > r.Comp[1] && r.Comp[1] > r.Comp[2]) {
		t.Fatalf("component order violated: %v", r.Comp)
	}
}

func TestSimpleCycle(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	r := Tarjan(g)
	if r.NumComponents() != 2 {
		t.Fatalf("components = %d, want 2", r.NumComponents())
	}
	if r.Comp[0] != r.Comp[1] || r.Comp[1] != r.Comp[2] {
		t.Fatalf("cycle not grouped: %v", r.Comp)
	}
	if r.Comp[3] == r.Comp[0] {
		t.Fatal("node 3 must be its own component")
	}
}

func TestFig26LoopShape(t *testing.T) {
	// The Fig 2.4 PDG: statements 3,6 form a cycle; 5 self-cycles; 4 feeds 5.
	// Nodes: 0=stmt3, 1=stmt4, 2=stmt5, 3=stmt6.
	g := NewGraph(4)
	g.AddEdge(0, 1) // 3→4
	g.AddEdge(0, 3) // 3→6
	g.AddEdge(3, 0) // 6→3 (cross-iteration)
	g.AddEdge(1, 2) // 4→5
	g.AddEdge(2, 2) // 5→5 (cross-iteration)
	r := Tarjan(g)
	if r.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3 ({3,6},{4},{5})", r.NumComponents())
	}
	if r.Comp[0] != r.Comp[3] {
		t.Fatal("stmts 3 and 6 must share a component")
	}
	dag := Condense(g, r)
	// DAG must be acyclic: every edge goes from higher comp index to lower.
	for u := 0; u < dag.N(); u++ {
		for _, v := range dag.Succs(u) {
			if u <= v {
				t.Fatalf("condensation edge %d→%d not topologically ordered", u, v)
			}
		}
	}
}

func TestSelfLoopSingleton(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0)
	r := Tarjan(g)
	if r.NumComponents() != 2 {
		t.Fatalf("components = %d, want 2", r.NumComponents())
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	r := Tarjan(g)
	topo := r.Topological()
	pos := make([]int, len(topo))
	for i, c := range topo {
		pos[c] = i
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Succs(u) {
			if pos[r.Comp[u]] >= pos[r.Comp[v]] {
				t.Fatalf("topological order violated for edge %d→%d", u, v)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	r := Tarjan(NewGraph(0))
	if r.NumComponents() != 0 {
		t.Fatalf("components = %d, want 0", r.NumComponents())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewGraph(2).AddEdge(0, 5)
}

// Properties on random graphs: (1) components partition the node set;
// (2) mutual reachability within components; (3) condensation edges respect
// the reverse-topological component numbering (acyclicity).
func TestQuickSCCProperties(t *testing.T) {
	prop := func(seed int64, nNodes, nEdges uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nNodes%20) + 1
		g := NewGraph(n)
		for i := 0; i < int(nEdges); i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		r := Tarjan(g)
		seen := make([]bool, n)
		for _, ms := range r.Members {
			for _, v := range ms {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Reachability check via BFS.
		reach := func(src, dst int) bool {
			if src == dst {
				return true
			}
			visited := make([]bool, n)
			queue := []int{src}
			visited[src] = true
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, v := range g.Succs(u) {
					if v == dst {
						return true
					}
					if !visited[v] {
						visited[v] = true
						queue = append(queue, v)
					}
				}
			}
			return false
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				same := r.Comp[u] == r.Comp[v]
				mutual := reach(u, v) && reach(v, u)
				if same != mutual {
					return false
				}
			}
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Succs(u) {
				if r.Comp[u] < r.Comp[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTarjanChain(b *testing.B) {
	g := NewGraph(10000)
	for i := 0; i < 9999; i++ {
		g.AddEdge(i, i+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tarjan(g)
	}
}

// Package scc computes strongly connected components (Tarjan's algorithm)
// and the condensation DAG over them — the DAG_SCC of Fig 3.6(c) that the
// DOMORE partitioner walks (§3.3.1) and the structure DSWP-style pipelining
// relies on (§2.2).
package scc

import "fmt"

// Graph is a directed graph over dense integer nodes [0, N).
type Graph struct {
	n   int
	adj [][]int
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("scc: invalid node count %d", n))
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N reports the node count.
func (g *Graph) N() int { return g.n }

// AddEdge inserts a directed edge u→v (duplicates are tolerated).
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("scc: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	g.adj[u] = append(g.adj[u], v)
}

// Succs returns the successor list of u (shared, do not mutate).
func (g *Graph) Succs(u int) []int { return g.adj[u] }

// Result is the SCC decomposition of a graph.
type Result struct {
	// Comp maps each node to its component index. Component indices are a
	// reverse topological order: every edge u→v across components satisfies
	// Comp[u] > Comp[v].
	Comp []int
	// Members lists each component's nodes.
	Members [][]int
}

// NumComponents reports the number of SCCs.
func (r *Result) NumComponents() int { return len(r.Members) }

// Tarjan computes strongly connected components iteratively (explicit
// stack, so deep IR graphs cannot overflow the goroutine stack).
func Tarjan(g *Graph) *Result {
	n := g.n
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	var members [][]int
	next := 0

	type frame struct {
		v  int
		ei int // next successor index to visit
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		var call []frame
		call = append(call, frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.adj[v]) {
				w := g.adj[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				var ms []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(members)
					ms = append(ms, w)
					if w == v {
						break
					}
				}
				members = append(members, ms)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return &Result{Comp: comp, Members: members}
}

// Condense builds the DAG over components: an edge C(u)→C(v) for every
// graph edge u→v crossing components, deduplicated.
func Condense(g *Graph, r *Result) *Graph {
	dag := NewGraph(len(r.Members))
	seen := map[[2]int]bool{}
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			cu, cv := r.Comp[u], r.Comp[v]
			if cu == cv {
				continue
			}
			key := [2]int{cu, cv}
			if !seen[key] {
				seen[key] = true
				dag.AddEdge(cu, cv)
			}
		}
	}
	return dag
}

// Topological returns the component indices of the condensation in
// topological order (sources first). Tarjan emits components in reverse
// topological order, so this is just the reversal.
func (r *Result) Topological() []int {
	order := make([]int, len(r.Members))
	for i := range order {
		order[i] = len(r.Members) - 1 - i
	}
	return order
}

package depend

import (
	"fmt"

	"crossinv/internal/ir"
)

// Dep is one memory dependence between two accesses.
type Dep struct {
	Src, Dst *Access
	// CrossIteration marks dependences between different iterations of the
	// queried loop; the rest are loop-independent.
	CrossIteration bool
	// Distance is the dependence distance in iterations when the SIV test
	// resolved it; HasDistance is false for unknown distances.
	Distance    int64
	HasDistance bool
}

// String renders the dependence for reports.
func (d Dep) String() string {
	dist := "?"
	if d.HasDistance {
		dist = fmt.Sprintf("%d", d.Distance)
	}
	return fmt.Sprintf("%s: i%d -> i%d (distance %s)", d.Src.Array, d.Src.Instr.ID, d.Dst.Instr.ID, dist)
}

// DOALLStatus classifies a parallel-loop candidate.
type DOALLStatus int

// DOALL classifications. Proven means the affine tests disprove all
// cross-iteration dependences; RuntimeDependent means the analysis could
// neither prove nor disprove them (index arrays, unknown subscripts) — the
// Chapter 2 limitation DOMORE and SPECCROSS target; Disproven means a
// definite cross-iteration dependence exists, so the parfor annotation is
// wrong.
const (
	Proven DOALLStatus = iota
	RuntimeDependent
	Disproven
)

// String returns the classification name.
func (s DOALLStatus) String() string {
	switch s {
	case Proven:
		return "proven-DOALL"
	case RuntimeDependent:
		return "runtime-dependent"
	case Disproven:
		return "disproven"
	default:
		return fmt.Sprintf("DOALLStatus(%d)", int(s))
	}
}

// stripVar returns the form with the v term removed, and v's coefficient.
func stripVar(f Lin, v string) (rest Lin, coeff int64) {
	if !f.Known {
		return Unknown(), 0
	}
	coeff = f.Coeff(v)
	rest = f.clone()
	if rest.Coeffs != nil {
		delete(rest.Coeffs, v)
		rest.normalize()
	}
	return rest, coeff
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// varVaries reports whether variable name, appearing in access a's
// subscript, takes different values across iterations of l: it names a loop
// nested inside l on a's loop stack, or it is a synthetic parameter whose
// definition sits inside l.
func (r *Result) varVaries(name string, a *Access, l *ir.Loop) bool {
	if def, ok := r.paramDef[name]; ok {
		for _, x := range def {
			if x == l {
				return true
			}
		}
		return false
	}
	depth := a.loopDepth(l)
	if depth < 0 {
		return false
	}
	for _, x := range a.Loops[depth+1:] {
		if x.Var == name {
			return true
		}
	}
	return false
}

// formVaries reports whether a's subscript mentions any variable (other
// than l's own induction variable) that varies across iterations of l.
// Such subscripts cannot be compared by the SIV tests: the "constant" parts
// of the two iterations differ by unknown amounts.
func (r *Result) formVaries(a *Access, l *ir.Loop) bool {
	for v := range a.Form.Coeffs {
		if v == l.Var {
			continue
		}
		if r.varVaries(v, a, l) {
			return true
		}
	}
	return false
}

// TestPair applies the ZIV/SIV/GCD tests to one access pair for
// cross-iteration dependence with respect to loop l. It reports whether a
// dependence may exist and, when resolvable, its distance. Subscripts that
// mention values varying inside l (inner loop variables, scalars recomputed
// in l's body) are conservatively dependent.
func (r *Result) TestPair(a1, a2 *Access, l *ir.Loop) (dep bool, distance int64, hasDistance bool) {
	if !a1.Form.Known || !a2.Form.Known {
		return true, 0, false
	}
	if r.formVaries(a1, l) || r.formVaries(a2, l) {
		return true, 0, false
	}
	v := l.Var
	r1, c1 := stripVar(a1.Form, v)
	r2, c2 := stripVar(a2.Form, v)
	d := SubLin(r2, r1)
	if !d.Known || !d.IsConst() {
		// The non-v parts differ by a non-constant (e.g. an inner loop's
		// variable): cannot disprove.
		return true, 0, false
	}
	diff := d.Const
	switch {
	case c1 == 0 && c2 == 0:
		// ZIV: both subscripts invariant in v.
		return diff == 0, 0, false
	case c1 == c2:
		// Strong SIV: c·(i2 − i1) = −diff ⇒ distance = −diff/c … solve
		// c*i1 + r1 = c*i2 + r2 ⇒ i1 − i2 = diff/c.
		if diff%c1 != 0 {
			return false, 0, false
		}
		k := diff / c1
		if k == 0 {
			return false, 0, false // same-iteration only
		}
		return true, k, true
	default:
		// Weak SIV / GCD test: c1·i1 − c2·i2 = diff has an integer solution
		// iff gcd(c1,c2) divides diff.
		g := gcd(c1, c2)
		if g != 0 && diff%g != 0 {
			return false, 0, false
		}
		return true, 0, false
	}
}

// CrossIterationDeps returns the possible dependences between different
// iterations of l, considering every pair of same-array accesses inside l
// with at least one write.
func (r *Result) CrossIterationDeps(l *ir.Loop) []Dep {
	var deps []Dep
	var inside []*Access
	for _, a := range r.Accesses {
		if a.InLoop(l) {
			inside = append(inside, a)
		}
	}
	for i, a1 := range inside {
		for _, a2 := range inside[i:] {
			if a1.Array != a2.Array || (!a1.IsWrite && !a2.IsWrite) {
				continue
			}
			if dep, dist, has := r.TestPair(a1, a2, l); dep {
				deps = append(deps, Dep{Src: a1, Dst: a2, CrossIteration: true, Distance: dist, HasDistance: has})
			}
		}
	}
	return deps
}

// ClassifyParallel checks a parfor candidate: Proven if all cross-iteration
// dependences are disproven, Disproven if a definite one exists, otherwise
// RuntimeDependent.
func (r *Result) ClassifyParallel(l *ir.Loop) DOALLStatus {
	status := Proven
	for _, d := range r.CrossIterationDeps(l) {
		if d.HasDistance || (d.Src.Form.Known && d.Dst.Form.Known && d.Src.Form.Equal(d.Dst.Form) && d.Src.Form.Coeff(l.Var) == 0) {
			return Disproven
		}
		status = RuntimeDependent
	}
	return status
}

// constBounds evaluates a loop's bound sequences when they are constant.
func constBounds(l *ir.Loop) (lo, hi int64, ok bool) {
	regs := map[ir.Reg]int64{}
	eval := func(instrs []*ir.Instr) bool {
		for _, in := range instrs {
			switch in.Op {
			case ir.Const:
				regs[in.Dst] = in.Imm
			case ir.Add:
				regs[in.Dst] = regs[in.A] + regs[in.B]
			case ir.Sub:
				regs[in.Dst] = regs[in.A] - regs[in.B]
			case ir.Mul:
				regs[in.Dst] = regs[in.A] * regs[in.B]
			default:
				return false
			}
		}
		return true
	}
	if !eval(l.Lo) || !eval(l.Hi) {
		return 0, 0, false
	}
	return regs[l.LoReg], regs[l.HiReg], true
}

// imageRange computes the inclusive address range an access covers across
// its innermost loop's iteration space, when bounds and form permit.
func imageRange(a *Access) (lo, hi int64, ok bool) {
	if !a.Form.Known {
		return 0, 0, false
	}
	if len(a.Loops) == 0 {
		if a.Form.IsConst() {
			return a.Form.Const, a.Form.Const, true
		}
		return 0, 0, false
	}
	inner := a.Loops[len(a.Loops)-1]
	rest, c := stripVar(a.Form, inner.Var)
	if !rest.IsConst() {
		return 0, 0, false
	}
	blo, bhi, ok := constBounds(inner)
	if !ok || bhi <= blo {
		return 0, 0, false
	}
	first := c*blo + rest.Const
	last := c*(bhi-1) + rest.Const
	if first > last {
		first, last = last, first
	}
	return first, last, true
}

// CrossInvocationDeps returns the possible dependences *across* invocations
// of the parallel loops nested in region: pairs of same-array accesses with
// at least one write that live in different inner parallel loops (or the
// same loop, conflicting across its invocations) and are not provably
// disjoint. These are exactly the dependences the baseline respects with a
// barrier and the paper's techniques respect with runtime information.
func (r *Result) CrossInvocationDeps(region *ir.Loop) []Dep {
	var inside []*Access
	for _, a := range r.Accesses {
		if a.InLoop(region) {
			inside = append(inside, a)
		}
	}
	var deps []Dep
	for i, a1 := range inside {
		for _, a2 := range inside[i:] {
			if a1.Array != a2.Array || (!a1.IsWrite && !a2.IsWrite) {
				continue
			}
			// Same innermost parallel loop and same invocation is the
			// intra-invocation case handled by CrossIterationDeps; here we
			// care about different invocations, which always applies since
			// the region re-invokes every inner loop.
			if disjointAcrossInvocations(a1, a2) {
				continue
			}
			deps = append(deps, Dep{Src: a1, Dst: a2})
		}
	}
	return deps
}

// disjointAcrossInvocations attempts to prove the two accesses can never
// touch the same address in different invocations.
func disjointAcrossInvocations(a1, a2 *Access) bool {
	// Constant, distinct subscripts.
	if a1.Form.IsConst() && a2.Form.IsConst() {
		return a1.Form.Const != a2.Form.Const
	}
	// Disjoint image ranges over their iteration spaces.
	lo1, hi1, ok1 := imageRange(a1)
	lo2, hi2, ok2 := imageRange(a2)
	if ok1 && ok2 {
		return hi1 < lo2 || hi2 < lo1
	}
	return false
}

package depend

import (
	"fmt"

	"crossinv/internal/ir"
)

// Access is one array load or store with its derived subscript form and the
// loop nest enclosing it.
type Access struct {
	Instr   *ir.Instr
	Array   string
	IsWrite bool
	// Form is the subscript as an affine form over enclosing loop variables
	// and outer scalars, or unknown.
	Form Lin
	// Loops is the stack of enclosing loops, outermost first.
	Loops []*ir.Loop
}

// InLoop reports whether the access is (transitively) inside l.
func (a *Access) InLoop(l *ir.Loop) bool {
	for _, x := range a.Loops {
		if x == l {
			return true
		}
	}
	return false
}

// innermostIndexIn returns the position of l in the access's loop stack,
// or -1.
func (a *Access) loopDepth(l *ir.Loop) int {
	for i, x := range a.Loops {
		if x == l {
			return i
		}
	}
	return -1
}

// Result holds all accesses of a program, grouped for the dependence
// queries the transformation passes ask.
type Result struct {
	Prog     *ir.Program
	Accesses []*Access
	byInstr  map[int]*Access
	// paramDef records, for each synthetic parameter introduced for a
	// scalar assigned a non-affine value (e.g. start = S[i]), the loop
	// stack of its defining write. A parameter varies with respect to loop
	// l iff l is on its defining stack — the value is recomputed inside l.
	paramDef map[string][]*ir.Loop
}

// AccessOf returns the Access for an instruction ID, or nil.
func (r *Result) AccessOf(id int) *Access { return r.byInstr[id] }

// Analyze symbolically evaluates the program and collects every array
// access with its subscript form.
func Analyze(p *ir.Program) *Result {
	r := &Result{Prog: p, byInstr: map[int]*Access{}, paramDef: map[string][]*ir.Loop{}}
	ev := &evaluator{res: r, regs: make([]Lin, p.NumRegs), vars: map[string]Lin{}}
	ev.nodes(p.Body, nil)
	return r
}

// evaluator performs abstract interpretation over the loop tree, mapping
// registers and scalar variables to affine forms.
type evaluator struct {
	res  *Result
	regs []Lin
	vars map[string]Lin
}

func (ev *evaluator) nodes(nodes []ir.Node, loops []*ir.Loop) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Instr:
			ev.step(n, loops)
		case *ir.Loop:
			ev.instrs(n.Lo, loops)
			ev.instrs(n.Hi, loops)
			// The induction variable is symbolic inside the loop.
			saved, had := ev.vars[n.Var]
			ev.vars[n.Var] = VarForm(n.Var)
			ev.nodes(n.Body, append(loops, n))
			// Conservatively havoc scalars written inside the body: their
			// value after the loop depends on the trip count.
			havocWrites(n.Body, ev.vars)
			if had {
				ev.vars[n.Var] = saved
			} else {
				delete(ev.vars, n.Var)
			}
		case *ir.If:
			ev.instrs(n.Cond, loops)
			ev.nodes(n.Then, loops)
			ev.nodes(n.Else, loops)
			// Join: scalars written in either branch become unknown.
			havocWrites(n.Then, ev.vars)
			havocWrites(n.Else, ev.vars)
		}
	}
}

func (ev *evaluator) instrs(instrs []*ir.Instr, loops []*ir.Loop) {
	for _, in := range instrs {
		ev.step(in, loops)
	}
}

func (ev *evaluator) step(in *ir.Instr, loops []*ir.Loop) {
	switch in.Op {
	case ir.Const:
		ev.regs[in.Dst] = ConstForm(in.Imm)
	case ir.Add:
		ev.regs[in.Dst] = AddLin(ev.regs[in.A], ev.regs[in.B])
	case ir.Sub:
		ev.regs[in.Dst] = SubLin(ev.regs[in.A], ev.regs[in.B])
	case ir.Mul:
		ev.regs[in.Dst] = MulLin(ev.regs[in.A], ev.regs[in.B])
	case ir.Div, ir.Mod, ir.CmpEq, ir.CmpNe, ir.CmpLt, ir.CmpLe, ir.CmpGt, ir.CmpGe:
		ev.regs[in.Dst] = Unknown()
	case ir.ReadVar:
		if f, ok := ev.vars[in.Var]; ok {
			ev.regs[in.Dst] = f
		} else {
			// An outer scalar with no tracked form: treat the name itself
			// as a symbolic parameter (fixed within any loop invocation).
			ev.regs[in.Dst] = VarForm(in.Var)
		}
	case ir.WriteVar:
		f := ev.regs[in.A]
		if !f.Known {
			// The scalar holds a non-affine value (e.g. start = S[i],
			// Fig 3.1). Model it as a fresh symbolic parameter: fixed for
			// the lifetime of this definition, varying across iterations of
			// any loop enclosing the write. This is what lets the CG inner
			// loop stay analyzable with symbolic bounds.
			name := fmt.Sprintf("%%%s#%d", in.Var, in.ID)
			ev.res.paramDef[name] = cloneLoops(loops)
			f = VarForm(name)
		}
		ev.vars[in.Var] = f
	case ir.Load:
		a := &Access{
			Instr: in, Array: in.Array, IsWrite: false,
			Form: ev.regs[in.A], Loops: cloneLoops(loops),
		}
		ev.res.Accesses = append(ev.res.Accesses, a)
		ev.res.byInstr[in.ID] = a
		ev.regs[in.Dst] = Unknown() // loaded values are not affine
	case ir.Store:
		a := &Access{
			Instr: in, Array: in.Array, IsWrite: true,
			Form: ev.regs[in.A], Loops: cloneLoops(loops),
		}
		ev.res.Accesses = append(ev.res.Accesses, a)
		ev.res.byInstr[in.ID] = a
	}
}

func cloneLoops(loops []*ir.Loop) []*ir.Loop {
	c := make([]*ir.Loop, len(loops))
	copy(c, loops)
	return c
}

// havocWrites sets every scalar written inside the node list to unknown.
func havocWrites(nodes []ir.Node, vars map[string]Lin) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Instr:
			if n.Op == ir.WriteVar {
				vars[n.Var] = Unknown()
			}
		case *ir.Loop:
			havocWrites(n.Body, vars)
			vars[n.Var] = Unknown()
		case *ir.If:
			havocWrites(n.Then, vars)
			havocWrites(n.Else, vars)
		}
	}
}

package depend

import "crossinv/internal/ir"

// This file exports the subscript-test building blocks to the
// cross-invocation analyzer (internal/analysis/xdep), which runs the same
// decomposition the intra-loop SIV tests use, but against a region
// variable and with inner-loop terms reduced to constant ranges.

// StripVar returns form f with the v term removed, plus v's coefficient —
// the first step of every subscript pair test.
func StripVar(f Lin, v string) (rest Lin, coeff int64) { return stripVar(f, v) }

// ConstBounds evaluates l's bound sequences when they are constant,
// returning the half-open iteration range [lo, hi).
func ConstBounds(l *ir.Loop) (lo, hi int64, ok bool) { return constBounds(l) }

// VarVariesIn reports whether variable name, appearing in access a's
// subscript, takes different values across iterations of l: it names a
// loop nested inside l on a's loop stack, or it is a synthetic parameter
// whose definition sits inside l.
func (r *Result) VarVariesIn(name string, a *Access, l *ir.Loop) bool {
	return r.varVaries(name, a, l)
}

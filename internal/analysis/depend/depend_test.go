package depend_test

import (
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
)

func analyze(t *testing.T, src string) (*ir.Program, *depend.Result) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p, depend.Analyze(p)
}

func TestLinFormArithmetic(t *testing.T) {
	i := depend.VarForm("i")
	three := depend.ConstForm(3)
	f := depend.AddLin(depend.ScaleLin(i, 2), three) // 2i + 3
	if f.Coeff("i") != 2 || f.Const != 3 {
		t.Fatalf("form = %v", f)
	}
	g := depend.SubLin(f, depend.VarForm("i")) // i + 3
	if g.Coeff("i") != 1 {
		t.Fatalf("sub form = %v", g)
	}
	if got := depend.MulLin(depend.VarForm("i"), depend.VarForm("j")); got.Known {
		t.Fatal("i*j must be unknown")
	}
	if got := depend.AddLin(depend.Unknown(), three); got.Known {
		t.Fatal("⊤ + 3 must be unknown")
	}
	if s := f.String(); s != "2*i + 3" {
		t.Fatalf("String = %q", s)
	}
	if s := depend.Unknown().String(); s != "⊤" {
		t.Fatalf("unknown String = %q", s)
	}
}

func TestSubscriptForms(t *testing.T) {
	p, r := analyze(t, `func f() {
		var A[100], B[100], IDX[100]
		for t = 0 .. 10 {
			parfor i = 0 .. 50 {
				A[2*i+3] = B[i+t]
				B[IDX[i]] = i
			}
		}
	}`)
	_ = p
	var forms []string
	for _, a := range r.Accesses {
		forms = append(forms, a.Array+"["+a.Form.String()+"]")
	}
	want := map[string]bool{
		"B[i + t]": true, "A[2*i + 3]": true, "IDX[i]": true, "B[⊤]": true,
	}
	found := 0
	for _, f := range forms {
		if want[f] {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("forms = %v, want all of %v", forms, want)
	}
}

func TestClassifyParallelProven(t *testing.T) {
	p, r := analyze(t, `func f() {
		var A[100], B[101]
		parfor i = 0 .. 100 { A[i] = B[i] + B[i+1] }
	}`)
	if got := r.ClassifyParallel(p.Loops[0]); got != depend.Proven {
		t.Fatalf("Classify = %v, want proven (writes A[i] disjoint per i)", got)
	}
}

func TestClassifyParallelDisprovenByDistance(t *testing.T) {
	p, r := analyze(t, `func f() {
		var A[101]
		parfor i = 0 .. 100 { A[i+1] = A[i] + 1 }
	}`)
	if got := r.ClassifyParallel(p.Loops[0]); got != depend.Disproven {
		t.Fatalf("Classify = %v, want disproven (distance-1 recurrence)", got)
	}
}

func TestClassifyParallelDisprovenZIV(t *testing.T) {
	p, r := analyze(t, `func f() {
		var A[10]
		parfor i = 0 .. 100 { A[3] = A[3] + i }
	}`)
	if got := r.ClassifyParallel(p.Loops[0]); got != depend.Disproven {
		t.Fatalf("Classify = %v, want disproven (reduction on A[3])", got)
	}
}

func TestClassifyParallelRuntimeDependent(t *testing.T) {
	// The CG/Fig 2.1 Loop_B shape: writes through an index array.
	p, r := analyze(t, `func f() {
		var A[100], IDX[100]
		parfor i = 0 .. 100 { A[IDX[i]] = A[IDX[i]] + i }
	}`)
	if got := r.ClassifyParallel(p.Loops[0]); got != depend.RuntimeDependent {
		t.Fatalf("Classify = %v, want runtime-dependent", got)
	}
}

func TestStridedDisjointProven(t *testing.T) {
	p, r := analyze(t, `func f() {
		var A[200]
		parfor i = 0 .. 100 { A[2*i] = A[2*i+1] + 1 }
	}`)
	// Store A[2i] (even) vs load A[2i'+1] (odd): 2i = 2i'+1 has no integer
	// solution — the GCD test must disprove this.
	if got := r.ClassifyParallel(p.Loops[0]); got != depend.Proven {
		t.Fatalf("Classify = %v, want proven by GCD", got)
	}
}

func TestCrossIterationDistance(t *testing.T) {
	p, r := analyze(t, `func f() {
		var A[105]
		parfor i = 0 .. 100 { A[i+5] = A[i] + 1 }
	}`)
	deps := r.CrossIterationDeps(p.Loops[0])
	foundDist := false
	for _, d := range deps {
		if d.HasDistance && (d.Distance == 5 || d.Distance == -5) {
			foundDist = true
		}
	}
	if !foundDist {
		t.Fatalf("deps = %v, want a resolved distance ±5", deps)
	}
}

func TestCrossInvocationDepsStencil(t *testing.T) {
	// Fig 1.3: L1 writes A reads B; L2 writes B reads A — cross-invocation
	// dependences in both directions.
	p, r := analyze(t, `func f() {
		var A[100], B[101]
		for t = 0 .. 10 {
			parfor i = 0 .. 100 { A[i] = B[i] + B[i+1] }
			parfor j = 1 .. 101 { B[j] = A[j-1] + A[j] }
		}
	}`)
	deps := r.CrossInvocationDeps(p.Loops[0])
	if len(deps) == 0 {
		t.Fatal("expected cross-invocation dependences between L1 and L2")
	}
	arrays := map[string]bool{}
	for _, d := range deps {
		arrays[d.Src.Array] = true
	}
	if !arrays["A"] || !arrays["B"] {
		t.Fatalf("deps should involve both arrays, got %v", arrays)
	}
}

func TestCrossInvocationDisjointRanges(t *testing.T) {
	// The two loops touch provably disjoint halves of A: no dependence.
	p, r := analyze(t, `func f() {
		var A[200]
		for t = 0 .. 10 {
			parfor i = 0 .. 100 { A[i] = i }
			parfor j = 100 .. 200 { A[j] = A[j] + 1 }
		}
	}`)
	deps := r.CrossInvocationDeps(p.Loops[0])
	l1, l2 := p.Loops[1], p.Loops[2]
	for _, d := range deps {
		// Self-dependences within one loop across its invocations are real
		// (invocation t's A[j] feeds invocation t+1's read); what must be
		// disproven is any dependence *between* the disjoint halves.
		if d.Src.InLoop(l1) && d.Dst.InLoop(l2) || d.Src.InLoop(l2) && d.Dst.InLoop(l1) {
			t.Fatalf("unexpected dependence across disjoint halves: %v", d)
		}
	}
}

func TestOuterScalarTreatedAsParameter(t *testing.T) {
	// start/end loaded in the outer loop (the CG bounds pattern): inside the
	// inner loop they are symbolic parameters, and A[j] stays analyzable.
	p, r := analyze(t, `func f() {
		var A[100], S[10], E[10]
		for i = 0 .. 10 {
			start = S[i]
			end = E[i]
			parfor j = 0 .. end { A[j+start] = j }
		}
	}`)
	inner := p.Loops[1]
	for _, a := range r.Accesses {
		if a.Array == "A" && a.IsWrite {
			if !a.Form.Known {
				t.Fatal("A subscript should stay affine in j with symbolic start")
			}
			if a.Form.Coeff("j") != 1 {
				t.Fatalf("coeff(j) = %d", a.Form.Coeff("j"))
			}
		}
	}
	if got := r.ClassifyParallel(inner); got != depend.Proven {
		t.Fatalf("Classify = %v, want proven", got)
	}
}

// Package depend implements the crossinv compiler's memory dependence
// analysis: it derives linear forms for array subscripts by symbolic
// evaluation of the IR and applies ZIV/SIV/GCD-style tests to classify
// same-iteration, cross-iteration, and cross-invocation dependences.
//
// The analysis is deliberately conservative in exactly the ways Chapter 2
// motivates: any subscript it cannot express as an affine function of loop
// variables (e.g. one read through an index array, Loop_B of Fig 2.1) is
// "unknown" and forces an assumed dependence — the imprecision DOMORE and
// SPECCROSS exist to overcome with runtime information.
package depend

import (
	"fmt"
	"sort"
	"strings"
)

// Lin is a linear (affine) form c + Σ coeff(v)·v over named variables, or
// "unknown" when the value is not affine in the visible variables.
type Lin struct {
	Known  bool
	Const  int64
	Coeffs map[string]int64 // zero-valued entries are normalized away
}

// Unknown is the non-affine form.
func Unknown() Lin { return Lin{} }

// ConstForm returns the constant form c.
func ConstForm(c int64) Lin { return Lin{Known: true, Const: c} }

// VarForm returns the form 1·v.
func VarForm(v string) Lin {
	return Lin{Known: true, Coeffs: map[string]int64{v: 1}}
}

// Coeff returns the coefficient of v (0 if absent).
func (l Lin) Coeff(v string) int64 {
	return l.Coeffs[v]
}

// IsConst reports whether the form has no variable terms.
func (l Lin) IsConst() bool { return l.Known && len(l.Coeffs) == 0 }

func (l Lin) clone() Lin {
	c := Lin{Known: l.Known, Const: l.Const}
	if len(l.Coeffs) > 0 {
		c.Coeffs = make(map[string]int64, len(l.Coeffs))
		for k, v := range l.Coeffs {
			c.Coeffs[k] = v
		}
	}
	return c
}

func (l *Lin) normalize() {
	for k, v := range l.Coeffs {
		if v == 0 {
			delete(l.Coeffs, k)
		}
	}
	if len(l.Coeffs) == 0 {
		l.Coeffs = nil
	}
}

// AddLin returns a + b.
func AddLin(a, b Lin) Lin {
	if !a.Known || !b.Known {
		return Unknown()
	}
	r := a.clone()
	r.Const += b.Const
	for v, c := range b.Coeffs {
		if r.Coeffs == nil {
			r.Coeffs = map[string]int64{}
		}
		r.Coeffs[v] += c
	}
	r.normalize()
	return r
}

// SubLin returns a - b.
func SubLin(a, b Lin) Lin {
	if !a.Known || !b.Known {
		return Unknown()
	}
	return AddLin(a, ScaleLin(b, -1))
}

// ScaleLin returns k·a.
func ScaleLin(a Lin, k int64) Lin {
	if !a.Known {
		return Unknown()
	}
	r := a.clone()
	r.Const *= k
	for v := range r.Coeffs {
		r.Coeffs[v] *= k
	}
	r.normalize()
	return r
}

// MulLin returns a·b when at least one side is constant, otherwise unknown
// (subscripts quadratic in loop variables are outside the affine domain).
func MulLin(a, b Lin) Lin {
	if !a.Known || !b.Known {
		return Unknown()
	}
	if a.IsConst() {
		return ScaleLin(b, a.Const)
	}
	if b.IsConst() {
		return ScaleLin(a, b.Const)
	}
	return Unknown()
}

// Equal reports structural equality of two forms.
func (l Lin) Equal(o Lin) bool {
	if l.Known != o.Known {
		return false
	}
	if !l.Known {
		return true
	}
	if l.Const != o.Const || len(l.Coeffs) != len(o.Coeffs) {
		return false
	}
	for v, c := range l.Coeffs {
		if o.Coeffs[v] != c {
			return false
		}
	}
	return true
}

// String renders the form, e.g. "2*i + j + 3" or "⊤" for unknown.
func (l Lin) String() string {
	if !l.Known {
		return "⊤"
	}
	vars := make([]string, 0, len(l.Coeffs))
	for v := range l.Coeffs {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var parts []string
	for _, v := range vars {
		c := l.Coeffs[v]
		switch c {
		case 1:
			parts = append(parts, v)
		case -1:
			parts = append(parts, "-"+v)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, v))
		}
	}
	if l.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", l.Const))
	}
	return strings.Join(parts, " + ")
}

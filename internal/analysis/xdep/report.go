package xdep

import (
	"fmt"
	"strings"
)

// Text renders the facts in the crossinv -analyze report style: one block
// per region with its verdict, distance bounds, loop-pair breakdown, and
// the per-array evidence lines pointing at the tested accesses.
func (f *Facts) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cross-invocation analysis: %s (%s, facts %s)\n",
		f.Program, f.Schema, f.Hash()[:12])
	if len(f.Regions) == 0 {
		b.WriteString("no candidate regions (no outer loop with parallel inner loops)\n")
		return b.String()
	}
	for _, r := range f.Regions {
		fmt.Fprintf(&b, "region: outer loop %q at %s\n", r.Var, r.Pos)
		fmt.Fprintf(&b, "  class: %s%s\n", r.Class, distanceText(&r))
		for _, lp := range r.LoopPairs {
			fmt.Fprintf(&b, "  loops (%s, %s): %s\n", lp.A, lp.B, lp.Class)
		}
		for _, e := range r.Evidence {
			fmt.Fprintf(&b, "  %s: %s [%s] %s -> %s%s\n",
				e.Array, e.Class, e.Test, e.SrcPos, e.DstPos, vectorText(e.Vector))
		}
	}
	return b.String()
}

func distanceText(r *RegionDeps) string {
	if r.Class != ForwardOnly.String() {
		return ""
	}
	return fmt.Sprintf(", distance [%d, %d]", r.MinDistance, r.MaxDistance)
}

func vectorText(v []VectorEntry) string {
	if len(v) == 0 {
		return ""
	}
	parts := make([]string, len(v))
	for i, e := range v {
		if e.HasDistance {
			parts[i] = fmt.Sprintf("%s:%s%d", e.Loop, e.Dir, e.Distance)
		} else {
			parts[i] = fmt.Sprintf("%s:%s", e.Loop, e.Dir)
		}
	}
	return "  (" + strings.Join(parts, " ") + ")"
}

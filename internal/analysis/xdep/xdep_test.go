package xdep_test

import (
	"testing"

	"crossinv/internal/analysis/xdep"
	"crossinv/internal/core"
)

// analyze compiles src and runs the cross-invocation analyzer over its
// candidate regions.
func analyze(t *testing.T, src string) *xdep.Facts {
	t.Helper()
	c, err := core.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return xdep.Analyze(c.Prog, c.Dep, c.Regions)
}

const pipeSrc = `
func pipe() {
  var A[520]
  parfor s = 0 .. 520 {
    A[s] = s * 5 % 11
  }
  for t = 1 .. 64 {
    parfor i = 0 .. 8 {
      A[t*8 + i] = A[t*8 + i - 8] * 3 + 1
    }
  }
}
`

func TestForwardOnlyDistance(t *testing.T) {
	f := analyze(t, pipeSrc)
	if len(f.Regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(f.Regions))
	}
	r := f.Regions[0]
	if r.Class != "forward-only" {
		t.Fatalf("class = %s, want forward-only\nevidence: %+v", r.Class, r.Evidence)
	}
	if r.MinDistance != 1 || r.MaxDistance != 1 {
		t.Errorf("distance bounds [%d, %d], want [1, 1]", r.MinDistance, r.MaxDistance)
	}
	// The self WAW pair (each invocation writes a fresh 8-element block)
	// must be disproven by the Banerjee range reduction.
	var sawNone bool
	for _, e := range r.Evidence {
		if e.Class == "none" && e.Test == "banerjee" {
			sawNone = true
		}
	}
	if !sawNone {
		t.Errorf("no banerjee-disproven pair in evidence: %+v", r.Evidence)
	}
	// Every forward evidence row carries a region-level "<" vector entry.
	for _, e := range r.Evidence {
		if e.Class != "forward-only" {
			continue
		}
		if len(e.Vector) == 0 || e.Vector[0].Dir != "<" || !e.Vector[0].HasDistance {
			t.Errorf("forward pair %s has vector %+v, want leading <1 entry", e.Array, e.Vector)
		}
	}
}

func TestDisjointBlocksAreNone(t *testing.T) {
	f := analyze(t, `
func disjoint() {
  var A[512]
  for t = 0 .. 64 {
    parfor i = 0 .. 8 {
      A[t*8 + i] = t + i
    }
  }
}
`)
	if got := f.Regions[0].Class; got != "none" {
		t.Errorf("class = %s, want none (per-invocation blocks never revisit)\nevidence: %+v",
			got, f.Regions[0].Evidence)
	}
}

func TestGCDDisproof(t *testing.T) {
	f := analyze(t, `
func gcddis() {
  var A[600]
  for t = 0 .. 32 {
    parfor i = 0 .. 1 {
      A[t*4 + 1] = A[t*2] + 1
    }
  }
}
`)
	r := f.Regions[0]
	if r.Class != "none" {
		t.Fatalf("class = %s, want none (odd stores never meet even loads)\nevidence: %+v", r.Class, r.Evidence)
	}
	var sawGCD bool
	for _, e := range r.Evidence {
		if e.Test == "gcd" && e.Class == "none" {
			sawGCD = true
		}
	}
	if !sawGCD {
		t.Errorf("no gcd disproof in evidence: %+v", r.Evidence)
	}
}

func TestGCDRecurrenceIsCyclic(t *testing.T) {
	f := analyze(t, `
func gcdrec() {
  var A[600]
  for t = 0 .. 32 {
    parfor i = 0 .. 1 {
      A[t*4] = A[t*2] + 1
    }
  }
}
`)
	if got := f.Regions[0].Class; got != "cyclic" {
		t.Errorf("class = %s, want cyclic (strides share every 4th element, unbounded distance)", got)
	}
}

func TestRewrittenLocationIsCyclic(t *testing.T) {
	// Stencil shape: every invocation rewrites the whole array, so WAW
	// recurrences exist at every invocation distance.
	f := analyze(t, `
func stencilish() {
  var A[64], B[65]
  for t = 0 .. 8 {
    parfor i = 0 .. 64 {
      A[i] = B[i] + t
    }
    parfor j = 1 .. 65 {
      B[j] = A[j-1] + 1
    }
  }
}
`)
	r := f.Regions[0]
	if r.Class != "cyclic" {
		t.Fatalf("class = %s, want cyclic", r.Class)
	}
	if len(r.LoopPairs) == 0 {
		t.Fatal("no (loop, loop) pair classifications")
	}
	for _, lp := range r.LoopPairs {
		if _, ok := xdep.ParseClass(lp.Class); !ok {
			t.Errorf("loop pair (%s, %s) has invalid class %q", lp.A, lp.B, lp.Class)
		}
	}
}

func TestIndirectSubscriptIsUnknown(t *testing.T) {
	f := analyze(t, `
func irregular() {
  var C[64], IDX[128]
  parfor z = 0 .. 128 {
    IDX[z] = z * 13 % 64
  }
  for t = 0 .. 16 {
    parfor j = 0 .. 8 {
      C[IDX[j]] = C[IDX[j]] + 1
    }
  }
}
`)
	r := f.Regions[0]
	if r.Class != "unknown" {
		t.Fatalf("class = %s, want unknown (index-array subscript)", r.Class)
	}
	var sawNonAffine bool
	for _, e := range r.Evidence {
		if e.Test == "non-affine" {
			sawNonAffine = true
		}
	}
	if !sawNonAffine {
		t.Errorf("no non-affine evidence: %+v", r.Evidence)
	}
}

func TestSymbolicBoundsAreUnknownNotWrong(t *testing.T) {
	// CG shape: the inner bounds come from a scalar recomputed per
	// invocation. The analyzer must refuse (unknown), not guess.
	f := analyze(t, `
func cgish() {
  var S[16], A[200]
  parfor p = 0 .. 16 {
    S[p] = p * 9 % 100
  }
  for i = 0 .. 16 {
    start = S[i] % 100
    end = start + 9
    parfor j = start .. end {
      A[j] = A[j] + 1
    }
  }
}
`)
	if got := f.Regions[0].Class; got != "unknown" {
		t.Errorf("class = %s, want unknown (symbolic inner bounds)", got)
	}
}

func TestHashTracksSubscripts(t *testing.T) {
	a := analyze(t, pipeSrc)
	b := analyze(t, pipeSrc)
	if a.Hash() != b.Hash() {
		t.Fatal("hash is not deterministic")
	}
	// A changed subscript changes the verdict's content address even when
	// the program name and shape are identical.
	c := analyze(t, `
func pipe() {
  var A[520]
  parfor s = 0 .. 520 {
    A[s] = s * 5 % 11
  }
  for t = 2 .. 64 {
    parfor i = 0 .. 8 {
      A[t*8 + i] = A[t*8 + i - 16] * 3 + 1
    }
  }
}
`)
	if a.Hash() == c.Hash() {
		t.Error("changed subscript kept the same facts hash")
	}
	if d := c.Regions[0]; d.Class != "forward-only" || d.MinDistance != 2 {
		t.Errorf("lag-2 pipe classified %s min %d, want forward-only min 2", d.Class, d.MinDistance)
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range []xdep.Class{xdep.None, xdep.ForwardOnly, xdep.Cyclic, xdep.Unknown} {
		got, ok := xdep.ParseClass(c.String())
		if !ok || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := xdep.ParseClass("bogus"); ok {
		t.Error("ParseClass accepted a bogus class")
	}
}

func TestClassifySets(t *testing.T) {
	none := xdep.ClassifySets([]xdep.EpochAccess{
		{Writes: []uint64{0, 1}},
		{Writes: []uint64{2, 3}, Reads: []uint64{4}},
		{Writes: []uint64{5}},
	})
	if none.Class != xdep.None || none.Conflicts != 0 {
		t.Errorf("disjoint sets classified %v with %d conflicts", none.Class, none.Conflicts)
	}

	fwd := xdep.ClassifySets([]xdep.EpochAccess{
		{Writes: []uint64{7}},
		{},
		{Reads: []uint64{7}},          // RAW distance 2
		{Writes: []uint64{7}},         // WAW 3, WAR 1
		{Reads: []uint64{9}},          // no conflict
		{Writes: []uint64{9}},         // WAR distance 1
	})
	if fwd.Class != xdep.ForwardOnly {
		t.Fatalf("class = %v, want forward-only", fwd.Class)
	}
	if fwd.MinDistance != 1 || fwd.MaxDistance != 3 {
		t.Errorf("distance bounds [%d, %d], want [1, 3]", fwd.MinDistance, fwd.MaxDistance)
	}
}

func TestCorruptions(t *testing.T) {
	f := analyze(t, pipeSrc)
	if !xdep.CorruptFlipDirection(f) {
		t.Error("CorruptFlipDirection found no forward vector entry")
	}
	f = analyze(t, pipeSrc)
	n := len(f.Regions[0].Evidence)
	if !xdep.CorruptDropPair(f) || len(f.Regions[0].Evidence) != n-1 {
		t.Error("CorruptDropPair did not drop exactly one pair")
	}
	f = analyze(t, `
func rec() {
  var A[8]
  for t = 0 .. 8 {
    parfor i = 0 .. 2 {
      A[i] = A[i] + 1
    }
  }
}
`)
	if f.Regions[0].Class != "cyclic" {
		t.Fatalf("setup: class = %s, want cyclic", f.Regions[0].Class)
	}
	if !xdep.CorruptWidenCyclic(f) || f.Regions[0].Class != "none" {
		t.Error("CorruptWidenCyclic did not widen the verdict")
	}
}

package xdep

// This file classifies *explicit* per-invocation access sets — the form
// the chaos harness's generated workloads declare — with the same class
// vocabulary as the affine analyzer. Explicit finite sets always yield
// exact answers: either no cross-invocation conflict exists (`none`) or
// every conflict has a concrete forward distance (`forward-only` with
// exact bounds). The chaos soundness gate replays the same workload
// through shadow memory at runtime and fails the sweep if this claim was
// ever optimistic.

// EpochAccess declares one invocation's read and write address sets.
type EpochAccess struct {
	Reads  []uint64
	Writes []uint64
}

// SetFacts is the classification of a sequence of explicit access sets.
type SetFacts struct {
	Class Class `json:"-"`
	// ClassName mirrors Class for serialization.
	ClassName string `json:"class"`
	// MinDistance/MaxDistance bound the conflict distances (in epochs)
	// when Class is forward-only.
	MinDistance int64 `json:"min_distance,omitempty"`
	MaxDistance int64 `json:"max_distance,omitempty"`
	// Conflicts counts the (address, epoch pair) conflicts found.
	Conflicts int `json:"conflicts"`
}

// ClassifySets computes the exact cross-invocation classification of the
// declared epochs: a conflict is a write in one epoch against a read or
// write of the same address in a different epoch.
func ClassifySets(epochs []EpochAccess) SetFacts {
	firstW := map[uint64]int{}
	lastW := map[uint64]int{}
	firstR := map[uint64]int{}
	lastR := map[uint64]int{}
	f := SetFacts{Class: None}

	// hit records a conflict between epoch e and the span of earlier
	// accesses [first, last]: the nearest gives the minimum distance, the
	// earliest the maximum — exact, since every epoch in between that
	// touched the address only yields distances inside that span.
	hit := func(e, first, last int) {
		f.Conflicts++
		if d := int64(e - last); f.MinDistance == 0 || d < f.MinDistance {
			f.MinDistance = d
		}
		if d := int64(e - first); d > f.MaxDistance {
			f.MaxDistance = d
		}
	}
	for e, ep := range epochs {
		for _, w := range ep.Writes {
			// WAW and WAR against earlier epochs.
			if p, ok := lastW[w]; ok {
				hit(e, firstW[w], p)
			}
			if p, ok := lastR[w]; ok {
				hit(e, firstR[w], p)
			}
		}
		for _, r := range ep.Reads {
			// RAW against earlier epochs.
			if p, ok := lastW[r]; ok {
				hit(e, firstW[r], p)
			}
		}
		for _, w := range ep.Writes {
			if _, ok := firstW[w]; !ok {
				firstW[w] = e
			}
			lastW[w] = e
		}
		for _, r := range ep.Reads {
			if _, ok := firstR[r]; !ok {
				firstR[r] = e
			}
			lastR[r] = e
		}
	}
	if f.Conflicts > 0 {
		f.Class = ForwardOnly
	}
	f.ClassName = f.Class.String()
	return f
}

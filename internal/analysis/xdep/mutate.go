package xdep

// Mutation helpers: deliberately corrupt a Facts report the way a buggy
// analyzer (or a rotted cache entry) would, so tests can prove the
// verifier cross-check (verify.XDep) catches each corruption. They mirror
// the Corrupt* idiom of internal/analysis/verify/mutate.go: mutate in
// place, pick a deterministic target, and report whether a target existed.

// CorruptFlipDirection flips the first forward ("<") direction-vector
// entry to backward (">") — the kind of sign error a distance solver bug
// would produce.
func CorruptFlipDirection(f *Facts) bool {
	for ri := range f.Regions {
		for ei := range f.Regions[ri].Evidence {
			for vi := range f.Regions[ri].Evidence[ei].Vector {
				v := &f.Regions[ri].Evidence[ei].Vector[vi]
				if v.Dir == "<" {
					v.Dir = ">"
					return true
				}
			}
		}
	}
	return false
}

// CorruptDropPair removes the first tested subscript pair from the first
// region that has any — a coverage hole: the report no longer accounts
// for an access pair the program contains.
func CorruptDropPair(f *Facts) bool {
	for ri := range f.Regions {
		ev := f.Regions[ri].Evidence
		if len(ev) > 0 {
			f.Regions[ri].Evidence = ev[1:]
			return true
		}
	}
	return false
}

// CorruptWidenCyclic rewrites the first cyclic (or unknown) region verdict
// to `none` — the optimistic widening the conservatism contract forbids:
// an engine trusting it would drop synchronization a proven dependence
// needs.
func CorruptWidenCyclic(f *Facts) bool {
	for ri := range f.Regions {
		r := &f.Regions[ri]
		if r.Class == Cyclic.String() || r.Class == Unknown.String() {
			r.Class = None.String()
			r.MinDistance, r.MaxDistance = 0, 0
			return true
		}
	}
	return false
}

// Package xdep is the static cross-invocation dependence analyzer: it
// upgrades the affine subscript forms of internal/analysis/depend into
// distance/direction vectors with respect to a candidate region's outer
// loop, using the classic GCD and Banerjee-style subscript tests, and
// classifies every (inner loop, inner loop) pair and the whole
// (invocation, invocation) relation as one of four classes:
//
//   - none         — no cross-invocation dependence can exist (the region
//     is provably DOALL across invocations: barriers are pure overhead and
//     speculation can never misspeculate);
//   - forward-only — dependences exist but every one flows a bounded
//     number of invocations forward (the DOMORE pipeline regime; the
//     minimum distance bounds the profitable speculation window);
//   - cyclic       — an affine recurrence with unbounded distance (e.g. a
//     location rewritten every invocation): every invocation may conflict
//     with every earlier one;
//   - unknown      — the subscripts defeat the affine tests (index
//     arrays, symbolic values recomputed inside the region) — the
//     Chapter 2 limitation the paper's runtimes exist for.
//
// Conservatism contract: the classes are ordered none < forward-only <
// cyclic < unknown, and the analyzer may only ever err UPWARD in that
// order. A claim of `none` or `forward-only` is a proof obligation — the
// chaos harness's soundness gate (internal/chaos) checks every generated
// workload's claim against shadow-memory conflicts observed at runtime,
// and the verifier cross-check (verify.XDep) recomputes the facts and
// rejects any report that drifted optimistic.
//
// The report (Facts) is fully serializable — per-array evidence with
// source positions, per-pair direction vectors, and a canonical hash that
// content-addresses the verdict. The hash feeds the plancache fingerprint
// so a stale static verdict can never be replayed against changed source.
package xdep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/ir"
)

// Schema identifies the Facts format; bump on breaking changes so cached
// reports from older analyzers read as stale.
const Schema = "crossinv-xdep/v1"

// Class is the four-way cross-invocation classification, ordered by
// severity: a sound analyzer may report a higher class than the truth,
// never a lower one.
type Class int

// Classification levels, least to most constrained.
const (
	None Class = iota
	ForwardOnly
	Cyclic
	Unknown
)

var classNames = [...]string{"none", "forward-only", "cyclic", "unknown"}

// String returns the class name used in reports and serialized facts.
func (c Class) String() string {
	if c < None || c > Unknown {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// ParseClass maps a serialized class name back to its value.
func ParseClass(s string) (Class, bool) {
	for i, n := range classNames {
		if n == s {
			return Class(i), true
		}
	}
	return Unknown, false
}

// maxClass returns the more severe of two classes.
func maxClass(a, b Class) Class {
	if b > a {
		return b
	}
	return a
}

// VectorEntry is one loop level of a dependence's direction vector.
type VectorEntry struct {
	// Loop is the induction variable of the level.
	Loop string `json:"loop"`
	// Dir is the direction: "<" (source before sink), ">" (after), "="
	// (same iteration), "*" (any).
	Dir string `json:"dir"`
	// Distance is the dependence distance in iterations when resolved.
	Distance    int64 `json:"distance,omitempty"`
	HasDistance bool  `json:"has_distance,omitempty"`
}

// Evidence is one tested subscript pair — the per-array proof (or
// counterexample) backing a region's classification. Src/Dst are
// instruction IDs; positions are internal/diag-style line:col strings so
// `crossinv -analyze` can point at the offending accesses.
type Evidence struct {
	Array  string        `json:"array"`
	Src    int           `json:"src"`
	Dst    int           `json:"dst"`
	SrcPos string        `json:"src_pos"`
	DstPos string        `json:"dst_pos"`
	Test   string        `json:"test"` // ziv | siv | banerjee | gcd | non-affine | symbolic
	Class  string        `json:"class"`
	Vector []VectorEntry `json:"vector,omitempty"`
}

// LoopPair classifies the cross-invocation relation between two parallel
// inner loops of a region (A == B for a loop against its own later
// invocations).
type LoopPair struct {
	A     string `json:"a"`
	B     string `json:"b"`
	Class string `json:"class"`
}

// RegionDeps is the (invocation, invocation) verdict for one candidate
// region, with the per-loop-pair breakdown and the evidence that produced
// it.
type RegionDeps struct {
	// Var and Pos identify the region's outer loop.
	Var string `json:"var"`
	Pos string `json:"pos"`
	// Class is the max-severity classification over every access pair in
	// the region.
	Class string `json:"class"`
	// MinDistance/MaxDistance bound the forward dependence distances (in
	// invocations) when Class is forward-only.
	MinDistance int64 `json:"min_distance,omitempty"`
	MaxDistance int64 `json:"max_distance,omitempty"`
	// LoopPairs classifies each (parfor, parfor) pair of the region.
	LoopPairs []LoopPair `json:"loop_pairs,omitempty"`
	// Evidence lists every tested same-array pair with at least one write.
	Evidence []Evidence `json:"evidence,omitempty"`
}

// Facts is the serializable cross-invocation dependence report for one
// program — the machine-checkable artifact the adaptive runtime seeds
// from, the verifier cross-checks, and the plan cache fingerprints.
type Facts struct {
	Schema  string       `json:"schema"`
	Program string       `json:"program"`
	Regions []RegionDeps `json:"regions"`
}

// Hash is the canonical content address of the report: the hex SHA-256 of
// its deterministic JSON encoding (all fields are slices and scalars, so
// encoding order is fixed). Two sources with different subscripts hash
// differently, which is what keeps stale verdicts out of the plan cache.
func (f *Facts) Hash() string {
	raw, err := json.Marshal(f)
	if err != nil {
		// Facts contains only marshalable fields; reaching here means the
		// struct definition itself regressed.
		panic("xdep: facts not marshalable: " + err.Error())
	}
	h := sha256.Sum256(raw)
	return hex.EncodeToString(h[:])
}

// Region returns the facts for the region with the given outer variable,
// or nil.
func (f *Facts) Region(v string) *RegionDeps {
	for i := range f.Regions {
		if f.Regions[i].Var == v {
			return &f.Regions[i]
		}
	}
	return nil
}

// Analyze runs the cross-invocation tests over every candidate region.
func Analyze(p *ir.Program, dep *depend.Result, regions []*ir.Loop) *Facts {
	f := &Facts{Schema: Schema, Program: p.Name}
	for _, region := range regions {
		f.Regions = append(f.Regions, analyzeRegion(dep, region))
	}
	return f
}

// reduced is one access's subscript with the region variable stripped and
// every inner-loop variable replaced by its constant iteration range: the
// address is c·r + base + t with t in [lo, hi], where r is the invocation
// number and base holds only region-invariant symbols.
type reduced struct {
	base     depend.Lin
	lo, hi   int64
	banerjee bool // a nonzero-width range was folded in
	ok       bool
	why      string // failing test label when !ok
}

// reduce decomposes access a's subscript relative to region. Conservatism:
// any term the decomposition cannot bound (non-affine forms, symbolic
// values that vary inside the region, non-constant inner bounds) makes the
// access unanalyzable, never silently constant.
func reduce(dep *depend.Result, a *depend.Access, region *ir.Loop) (c int64, red reduced) {
	if !a.Form.Known {
		return 0, reduced{why: "non-affine"}
	}
	rest, c := depend.StripVar(a.Form, region.Var)

	ri := -1
	for i, l := range a.Loops {
		if l == region {
			ri = i
		}
	}
	inner := map[string]*ir.Loop{}
	if ri >= 0 {
		for _, l := range a.Loops[ri+1:] {
			inner[l.Var] = l
		}
	}

	red = reduced{base: depend.Lin{Known: true, Const: rest.Const}, ok: true}
	vars := make([]string, 0, len(rest.Coeffs))
	for v := range rest.Coeffs {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		coeff := rest.Coeff(v)
		if l, isInner := inner[v]; isInner {
			blo, bhi, ok := depend.ConstBounds(l)
			if !ok || bhi <= blo {
				return c, reduced{why: "symbolic"}
			}
			// v ranges over [blo, bhi); fold coeff·v into the interval.
			first, last := coeff*blo, coeff*(bhi-1)
			if first > last {
				first, last = last, first
			}
			red.lo += first
			red.hi += last
			if last > first {
				red.banerjee = true
			}
			continue
		}
		if dep.VarVariesIn(v, a, region) {
			// The symbol is recomputed inside the region (an inner scalar,
			// a value loaded from memory): its per-invocation value is
			// unknowable statically.
			return c, reduced{why: "symbolic"}
		}
		if red.base.Coeffs == nil {
			red.base.Coeffs = map[string]int64{}
		}
		red.base.Coeffs[v] = coeff
	}
	return c, red
}

// pairResult is one access pair's classification.
type pairResult struct {
	class       Class
	test        string
	minD, maxD  int64
	hasDistance bool
}

// classifyPair runs the ZIV/SIV/GCD/Banerjee ladder on one same-array
// access pair with respect to the region's invocation variable. The
// dependence equation across invocations r1 (of a1) and r2 (of a2) is
//
//	c1·r1 + base1 + t1 = c2·r2 + base2 + t2,  t1 ∈ [lo1,hi1], t2 ∈ [lo2,hi2]
//
// so c1·r1 − c2·r2 must land in [Δ+lo2−hi1, Δ+hi2−lo1] with Δ = base2−base1.
func classifyPair(dep *depend.Result, a1, a2 *depend.Access, region *ir.Loop) pairResult {
	c1, r1 := reduce(dep, a1, region)
	c2, r2 := reduce(dep, a2, region)
	if !r1.ok {
		return pairResult{class: Unknown, test: r1.why}
	}
	if !r2.ok {
		return pairResult{class: Unknown, test: r2.why}
	}
	d := depend.SubLin(r2.base, r1.base)
	if !d.Known || !d.IsConst() {
		// Region-invariant symbols that do not cancel: the offset between
		// the two subscripts is unknown.
		return pairResult{class: Unknown, test: "symbolic"}
	}
	dlo := d.Const + r2.lo - r1.hi
	dhi := d.Const + r2.hi - r1.lo
	test := "siv"
	if r1.banerjee || r2.banerjee {
		test = "banerjee"
	}

	switch {
	case c1 == 0 && c2 == 0:
		// ZIV: neither subscript moves with the invocation. Disjoint
		// address ranges disprove everything; overlap conflicts at every
		// invocation pair — an unbounded recurrence.
		if dlo > 0 || dhi < 0 {
			return pairResult{class: None, test: "ziv"}
		}
		return pairResult{class: Cyclic, test: "ziv"}

	case c1 == c2:
		// Strong SIV: c·(r1 − r2) = Δ', so the distance k = r2 − r1
		// satisfies c·k ∈ [−dhi, −dlo] — a finite integer set.
		kmin, kmax, any := kRange(c1, -dhi, -dlo)
		if !any {
			return pairResult{class: None, test: test}
		}
		if kmin == 0 && kmax == 0 {
			// Same-invocation only; no cross-invocation dependence.
			return pairResult{class: None, test: test}
		}
		var minD int64
		switch {
		case kmin > 0:
			minD = kmin
		case kmax < 0:
			minD = -kmax
		default:
			minD = 1
		}
		maxD := kmax
		if -kmin > maxD {
			maxD = -kmin
		}
		return pairResult{class: ForwardOnly, test: test, minD: minD, maxD: maxD, hasDistance: true}

	default:
		// Weak SIV / GCD: c1·r1 − c2·r2 = Δ' has an integer solution iff
		// gcd(c1,c2) divides some Δ' in range — and when it does, solutions
		// exist at unboundedly many distances.
		g := gcd64(c1, c2)
		if g != 0 && floorDiv(dhi, g)*g < dlo {
			return pairResult{class: None, test: "gcd"}
		}
		return pairResult{class: Cyclic, test: "gcd"}
	}
}

// kRange returns the integer solutions k of c·k ∈ [a, b] (empty when none).
func kRange(c, a, b int64) (kmin, kmax int64, any bool) {
	if a > b || c == 0 {
		return 0, 0, false
	}
	if c > 0 {
		kmin, kmax = ceilDiv(a, c), floorDiv(b, c)
	} else {
		kmin, kmax = ceilDiv(b, c), floorDiv(a, c)
	}
	return kmin, kmax, kmin <= kmax
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 { return -floorDiv(-a, b) }

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// vector builds the direction vector for an evidence row: the region level
// first, then every loop level the two accesses share below the region
// (classified by the intra-loop SIV tests).
func vector(dep *depend.Result, a1, a2 *depend.Access, region *ir.Loop, pr pairResult) []VectorEntry {
	var out []VectorEntry
	switch pr.class {
	case None:
		out = append(out, VectorEntry{Loop: region.Var, Dir: "="})
	case ForwardOnly:
		out = append(out, VectorEntry{Loop: region.Var, Dir: "<", Distance: pr.minD, HasDistance: true})
	default:
		out = append(out, VectorEntry{Loop: region.Var, Dir: "*"})
	}
	for _, l := range commonLoopsBelow(a1, a2, region) {
		e := VectorEntry{Loop: l.Var}
		depExists, dist, has := dep.TestPair(a1, a2, l)
		switch {
		case !depExists:
			e.Dir = "="
		case has:
			e.Dir = "<"
			if dist < 0 {
				e.Dir, dist = ">", -dist
			}
			e.Distance, e.HasDistance = dist, true
		default:
			e.Dir = "*"
		}
		out = append(out, e)
	}
	return out
}

// commonLoopsBelow returns the loops both accesses sit in strictly inside
// region, outermost first, stopping at the first level where their nests
// diverge.
func commonLoopsBelow(a1, a2 *depend.Access, region *ir.Loop) []*ir.Loop {
	idx := func(a *depend.Access) int {
		for i, l := range a.Loops {
			if l == region {
				return i
			}
		}
		return -1
	}
	i1, i2 := idx(a1), idx(a2)
	if i1 < 0 || i2 < 0 {
		return nil
	}
	s1, s2 := a1.Loops[i1+1:], a2.Loops[i2+1:]
	var out []*ir.Loop
	for i := 0; i < len(s1) && i < len(s2) && s1[i] == s2[i]; i++ {
		out = append(out, s1[i])
	}
	return out
}

// parforOf maps an access to the direct parfor child of region it executes
// in, or nil for the sequential skeleton.
func parforOf(a *depend.Access, region *ir.Loop) *ir.Loop {
	ri := -1
	for i, l := range a.Loops {
		if l == region {
			ri = i
		}
	}
	if ri < 0 || ri+1 >= len(a.Loops) {
		return nil
	}
	cand := a.Loops[ri+1]
	if !cand.Parallel {
		return nil
	}
	for _, n := range region.Body {
		if l, ok := n.(*ir.Loop); ok && l == cand {
			return cand
		}
	}
	return nil
}

func analyzeRegion(dep *depend.Result, region *ir.Loop) RegionDeps {
	rd := RegionDeps{Var: region.Var, Pos: region.Pos.String(), Class: None.String()}

	var inside []*depend.Access
	for _, a := range dep.Accesses {
		if a.InLoop(region) {
			inside = append(inside, a)
		}
	}

	regionClass := None
	var minD, maxD int64
	type pairKey struct{ a, b int } // loop IDs, a <= b
	loopClass := map[pairKey]Class{}
	loopVars := map[int]string{}

	for i, a1 := range inside {
		for _, a2 := range inside[i:] {
			if a1.Array != a2.Array || (!a1.IsWrite && !a2.IsWrite) {
				continue
			}
			pr := classifyPair(dep, a1, a2, region)
			regionClass = maxClass(regionClass, pr.class)
			if pr.hasDistance {
				if minD == 0 || pr.minD < minD {
					minD = pr.minD
				}
				if pr.maxD > maxD {
					maxD = pr.maxD
				}
			}
			rd.Evidence = append(rd.Evidence, Evidence{
				Array:  a1.Array,
				Src:    a1.Instr.ID,
				Dst:    a2.Instr.ID,
				SrcPos: a1.Instr.Pos.String(),
				DstPos: a2.Instr.Pos.String(),
				Test:   pr.test,
				Class:  pr.class.String(),
				Vector: vector(dep, a1, a2, region, pr),
			})
			if p1, p2 := parforOf(a1, region), parforOf(a2, region); p1 != nil && p2 != nil {
				k := pairKey{p1.ID, p2.ID}
				if k.a > k.b {
					k.a, k.b = k.b, k.a
				}
				loopClass[k] = maxClass(loopClass[k], pr.class)
				loopVars[p1.ID], loopVars[p2.ID] = p1.Var, p2.Var
			}
		}
	}

	rd.Class = regionClass.String()
	if regionClass == ForwardOnly {
		rd.MinDistance, rd.MaxDistance = minD, maxD
	}
	keys := make([]pairKey, 0, len(loopClass))
	for k := range loopClass {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		rd.LoopPairs = append(rd.LoopPairs, LoopPair{
			A: loopVars[k.a], B: loopVars[k.b], Class: loopClass[k].String(),
		})
	}
	return rd
}

package verify

import "crossinv/internal/ir"

// Taint is the result of the shared value-taint fixpoint: which registers
// and scalar variables may hold values derived from a designated set of
// taint sources. Both the slice-purity check (§3.3.4: the computeAddr slice
// must never read a value the worker partition may write) and the DOMORE
// view of SPECCROSS regions (speccrossgen.NewDomoreView: task addresses must
// not depend on parallel-written arrays) reduce to this analysis.
type Taint struct {
	Reg map[ir.Reg]bool
	Var map[string]bool
}

// TaintFromArrays runs the taint fixpoint over a straight-line-ish
// instruction list (the flattened body of a loop nest): a register becomes
// tainted when it loads from a source array, reads a tainted scalar, or
// combines a tainted operand; a scalar becomes tainted when written from a
// tainted register. Because taint can round-trip through scalar variables
// across textual order (and across iterations of the enclosing loop), the
// propagation iterates until nothing new is tainted — the conservative
// any-iteration closure.
func TaintFromArrays(instrs []*ir.Instr, sources map[string]bool) *Taint {
	t := &Taint{Reg: map[ir.Reg]bool{}, Var: map[string]bool{}}
	if len(sources) == 0 {
		return t
	}
	for changed := true; changed; {
		changed = false
		mark := func(reg ir.Reg, ok bool) bool { return ok && !t.Reg[reg] }
		for _, in := range instrs {
			switch in.Op {
			case ir.Load:
				if mark(in.Dst, sources[in.Array]) {
					t.Reg[in.Dst] = true
					changed = true
				}
			case ir.ReadVar:
				if mark(in.Dst, t.Var[in.Var]) {
					t.Reg[in.Dst] = true
					changed = true
				}
			case ir.WriteVar:
				if t.Reg[in.A] && !t.Var[in.Var] {
					t.Var[in.Var] = true
					changed = true
				}
			case ir.Store, ir.Const:
				// Stores don't define registers, and Const reads no operand
				// registers (its A/B fields are zero-valued, not register 0
				// uses); loads of the source arrays are the taint entry.
			default:
				if mark(in.Dst, t.Reg[in.A] || t.Reg[in.B]) {
					t.Reg[in.Dst] = true
					changed = true
				}
			}
		}
	}
	return t
}

// Uses returns the registers an instruction reads.
func Uses(in *ir.Instr) []ir.Reg {
	switch in.Op {
	case ir.Const, ir.ReadVar:
		return nil
	case ir.Load:
		return []ir.Reg{in.A}
	case ir.Store:
		return []ir.Reg{in.A, in.B}
	case ir.WriteVar:
		return []ir.Reg{in.A}
	default:
		return []ir.Reg{in.A, in.B}
	}
}

// Package verify is the static plan verifier: an independent soundness
// checker for every parallelization plan the crossinv pipeline emits. The
// transform packages (partition → slice → MTCG → speccrossgen → advisor)
// make the safety-critical decisions of §3.3 and §4.3; this pass re-derives
// each decision's invariant directly from the IR and the PDG and checks the
// emitted plan against it, so a transform bug becomes a compile-time
// diagnostic instead of a data race:
//
//  1. partition soundness — no hard PDG edge flows worker → scheduler, the
//     scheduler set is closed under the §3.3.1 DAG-SCC fixpoint, and only
//     parallel inner-loop bodies may be worker-side;
//  2. slice purity — the computeAddr slice is store-free and (via the
//     shared taint fixpoint) never reads a value the worker partition may
//     write (§3.3.4), and every tracked access has an address register;
//  3. MTCG communication completeness — every cross-partition scalar
//     dependence is covered by exactly one produce/consume pair, and no
//     register value crosses the partition outside a queue (§3.3.2);
//  4. signature coverage — every may-read/may-write access inside a
//     speculative region is captured by the signature instrumentation plan,
//     and epoch boundaries sit only at invocation boundaries (§4.3);
//  5. advisor consistency — a DOALL verdict implies no loop-carried
//     dependence SCC in the loop's PDG (Chapter 2).
//
// Diagnostics are reported through internal/diag with source positions, so
// `crossinv -lint` can point at the offending line. The mutation helpers in
// mutate.go seed deliberate corruptions into plans and are reused as
// negative tests by the transform packages.
package verify

import (
	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/pdg"
	"crossinv/internal/analysis/scc"
	"crossinv/internal/diag"
	"crossinv/internal/ir"
	"crossinv/internal/lang/token"
	"crossinv/internal/transform/advisor"
	"crossinv/internal/transform/mtcg"
	"crossinv/internal/transform/partition"
	"crossinv/internal/transform/slice"
)

// Check names, used as the diag.Diagnostic Check field.
const (
	CheckPartition = "partition"
	CheckSlice     = "slice"
	CheckMTCG      = "mtcg"
	CheckSignature = "signature"
	CheckAdvisor   = "advisor"
	CheckXDep      = "xdep"
)

// hardEdge reports whether the partition must honor the edge: everything
// except loop-carried memory edges between parallel bodies (enforced at
// runtime by the scheduler's shadow memory) and privatizable carried scalar
// edges (satisfied by MTCG's per-invocation live-in forwarding) — the same
// exclusions pdg.Graph.ToSCCGraph(true) applies for the partitioner.
func hardEdge(e pdg.Edge) bool {
	if e.Kind == pdg.MemoryEdge && e.LoopCarried && e.InnerToInner {
		return false
	}
	if e.Kind == pdg.ScalarEdge && e.LoopCarried && e.Privatizable {
		return false
	}
	return true
}

// Partition checks a computed scheduler/worker split against the PDG it was
// derived from: the pipeline invariant (all dependences flow scheduler →
// worker), closure under the §3.3.1 DAG-SCC fixpoint, and the structural
// rule that only parallel inner-loop bodies may run worker-side.
func Partition(part *partition.Result) diag.List {
	var out diag.List
	g := part.Graph
	prog := g.Prog

	// Every region instruction must have a side.
	for _, id := range g.Nodes {
		if _, ok := part.Side[id]; !ok {
			out.Errorf(CheckPartition, prog.Instrs[id].Pos,
				"instruction %d (%s) has no partition side", id, prog.Instrs[id])
		}
	}

	// Pipeline invariant: no hard dependence flows worker → scheduler.
	for _, e := range g.Edges {
		if !hardEdge(e) || e.Src == e.Dst {
			continue
		}
		if part.Side[e.Src] == partition.Worker && part.Side[e.Dst] == partition.Scheduler {
			out.Errorf(CheckPartition, prog.Instrs[e.Dst].Pos,
				"%s dependence flows worker -> scheduler: instruction %d (%s) at %s feeds scheduler instruction %d (%s)",
				e.Kind, e.Src, prog.Instrs[e.Src], prog.Instrs[e.Src].Pos, e.Dst, prog.Instrs[e.Dst])
		}
	}

	// DAG-SCC closure: every strongly connected component of the hard-edge
	// graph must be side-homogeneous (a mixed SCC means the fixpoint was not
	// reached: some cycle straddles the split).
	comps := scc.Tarjan(g.ToSCCGraph(true))
	for _, members := range comps.Members {
		if len(members) < 2 {
			continue
		}
		first := part.Side[g.Nodes[members[0]]]
		for _, m := range members[1:] {
			id := g.Nodes[m]
			if part.Side[id] != first {
				out.Errorf(CheckPartition, prog.Instrs[id].Pos,
					"dependence cycle straddles the partition: instruction %d (%s) is %s but its SCC contains %s instructions",
					id, prog.Instrs[id], part.Side[id], first)
				break
			}
		}
	}

	// Structural rule: the worker side may only contain instructions from
	// parallel inner-loop bodies; the outer loop's sequential region and all
	// loop-traversal code belong to the scheduler (§3.3.1's initial
	// assignment, which the fixpoint only ever moves toward the scheduler).
	eligible := map[int]bool{}
	for _, inner := range part.Inners {
		markBody(inner.Body, eligible)
	}
	for _, id := range g.Nodes {
		if part.Side[id] == partition.Worker && !eligible[id] {
			out.Errorf(CheckPartition, prog.Instrs[id].Pos,
				"sequential-region instruction %d (%s) assigned to the worker partition", id, prog.Instrs[id])
		}
	}
	return out
}

// markBody mirrors the partitioner's initial worker assignment: every
// instruction of the node list, including nested loop bounds and branch
// conditions.
func markBody(nodes []ir.Node, set map[int]bool) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Instr:
			set[n.ID] = true
		case *ir.Loop:
			for _, in := range n.Lo {
				set[in.ID] = true
			}
			for _, in := range n.Hi {
				set[in.ID] = true
			}
			markBody(n.Body, set)
		case *ir.If:
			for _, in := range n.Cond {
				set[in.ID] = true
			}
			markBody(n.Then, set)
			markBody(n.Else, set)
		}
	}
}

// collectInstrs flattens a node list into instruction order, including loop
// bounds and branch conditions.
func collectInstrs(nodes []ir.Node, out *[]*ir.Instr) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Instr:
			*out = append(*out, n)
		case *ir.Loop:
			*out = append(*out, n.Lo...)
			*out = append(*out, n.Hi...)
			collectInstrs(n.Body, out)
		case *ir.If:
			*out = append(*out, n.Cond...)
			collectInstrs(n.Then, out)
			collectInstrs(n.Else, out)
		}
	}
}

// workerWrittenArrays returns the arrays any worker-side instruction stores
// to — the state the computeAddr slice must never read (§3.3.4).
func workerWrittenArrays(p *ir.Program, part *partition.Result) map[string]bool {
	writes := map[string]bool{}
	for _, in := range p.Instrs {
		if in.Op == ir.Store && part.Side[in.ID] == partition.Worker {
			writes[in.Array] = true
		}
	}
	return writes
}

// Slice checks one computeAddr slice for purity and coverage: store-free,
// never reading (directly or through the taint fixpoint) a value the worker
// partition may write, and tracking the address of every memory access in
// the inner loop's body.
func Slice(p *ir.Program, part *partition.Result, ca *slice.ComputeAddr) diag.List {
	var out diag.List
	if ca == nil {
		return out
	}
	workerWrites := workerWrittenArrays(p, part)

	var body []*ir.Instr
	collectInstrs(ca.Inner.Body, &body)
	inBody := map[int]*ir.Instr{}
	for _, in := range body {
		inBody[in.ID] = in
	}
	t := TaintFromArrays(body, workerWrites)

	for _, in := range ca.Instrs {
		switch in.Op {
		case ir.Store:
			out.Errorf(CheckSlice, in.Pos,
				"computeAddr slice of loop %q contains a store to %q; the slice must be side-effect free", ca.Inner.Var, in.Array)
			continue
		case ir.WriteVar:
			out.Errorf(CheckSlice, in.Pos,
				"computeAddr slice of loop %q writes scalar %q; the slice must be side-effect free", ca.Inner.Var, in.Var)
			continue
		case ir.Load:
			if workerWrites[in.Array] {
				out.Errorf(CheckSlice, in.Pos,
					"computeAddr slice of loop %q loads from array %q, which the worker partition writes; the scheduler cannot run ahead of the workers", ca.Inner.Var, in.Array)
			}
		case ir.ReadVar:
			if t.Var[in.Var] {
				out.Errorf(CheckSlice, in.Pos,
					"computeAddr slice of loop %q reads scalar %q, whose value derives from worker-written arrays", ca.Inner.Var, in.Var)
			}
		}
		for _, use := range Uses(in) {
			if t.Reg[use] {
				out.Errorf(CheckSlice, in.Pos,
					"computeAddr slice of loop %q uses register r%d, whose value derives from worker-written arrays", ca.Inner.Var, use)
				break
			}
		}
	}

	// Address coverage: DOMORE's shadow memory only orders the addresses the
	// slice predicts, so an untracked access would race unsynchronized.
	for _, in := range body {
		if in.Op != ir.Load && in.Op != ir.Store {
			continue
		}
		if _, ok := ca.AddrOf[in.ID]; !ok {
			out.Errorf(CheckSlice, in.Pos,
				"memory access %d (%s) in loop %q is not tracked by computeAddr; its address would never reach shadow memory", in.ID, in, ca.Inner.Var)
		}
	}
	for id, reg := range ca.AddrOf {
		in, ok := inBody[id]
		if !ok {
			out.Errorf(CheckSlice, ca.Inner.Pos,
				"computeAddr of loop %q tracks instruction %d, which is not in the loop body", ca.Inner.Var, id)
			continue
		}
		if t.Reg[reg] {
			out.Errorf(CheckSlice, in.Pos,
				"address register r%d of access %d (%s) derives from worker-written arrays; the scheduler cannot precompute it", reg, id, in)
		}
	}
	return out
}

// MTCG checks communication completeness of a DOMORE-transformed region:
// every scalar the worker side reads before defining is forwarded by exactly
// one produce/consume pair (one live-in queue entry), no register value
// crosses the partition outside a queue, and every inner loop has exactly
// one computeAddr slice.
func MTCG(par *mtcg.Parallelized) diag.List {
	var out diag.List
	prog := par.Prog
	part := par.Part

	// Map each worker-side instruction to its inner loop, for edge reports.
	innerOf := map[int]*ir.Loop{}
	for _, inner := range part.Inners {
		set := map[int]bool{}
		markBody(inner.Body, set)
		for id := range set {
			innerOf[id] = inner
		}
	}

	// Register values cannot be forwarded: the queues carry synchronization
	// conditions and the invocation record carries bounds and scalar
	// live-ins, so a scheduler-defined register used worker-side has no
	// communication channel at all.
	for _, e := range part.Graph.Edges {
		if e.Kind != pdg.RegEdge {
			continue
		}
		if part.Side[e.Src] == partition.Scheduler && part.Side[e.Dst] == partition.Worker {
			out.Errorf(CheckMTCG, prog.Instrs[e.Dst].Pos,
				"register value r%d crosses the partition without a queue: scheduler instruction %d (%s) feeds worker instruction %d (%s)",
				prog.Instrs[e.Src].Dst, e.Src, prog.Instrs[e.Src], e.Dst, prog.Instrs[e.Dst])
		}
	}

	for _, inner := range part.Inners {
		ca := par.Slices[inner]
		if ca == nil {
			out.Errorf(CheckMTCG, inner.Pos,
				"inner loop %q has no computeAddr slice; the scheduler cannot dispatch its iterations", inner.Var)
		}

		need, firstRead := liveInNames(inner)
		forwarded := map[string]int{}
		for _, name := range par.LiveIns[inner] {
			forwarded[name]++
		}
		// Missing produce: the worker would read a stale or unset scalar.
		for _, name := range need {
			if forwarded[name] == 0 {
				out.Errorf(CheckMTCG, firstRead[name],
					"worker body of loop %q reads scalar %q but the scheduler never forwards it (missing produce/consume pair)", inner.Var, name)
			}
		}
		needSet := map[string]bool{}
		for _, name := range need {
			needSet[name] = true
		}
		for name, n := range forwarded {
			// Duplicate produce: the live-in queue would have two producers,
			// breaking the SPSC discipline.
			if n > 1 {
				out.Errorf(CheckMTCG, inner.Pos,
					"scalar %q forwarded to loop %q %d times; each live-in queue must have exactly one producer", name, inner.Var, n)
			}
			if !needSet[name] {
				out.Warningf(CheckMTCG, inner.Pos,
					"scalar %q forwarded to loop %q is not a live-in of its body (produce without consume)", name, inner.Var)
			}
		}
	}
	return out
}

// liveInNames independently recomputes the scalars an inner loop's body
// reads before any definition that dominates the read — the values MTCG
// must forward per invocation (§3.3.2 step 4). Unlike the generator's own
// bookkeeping this walk is path-sensitive for conditionals (a scalar defined
// in only one branch is not definitely defined after the If) and treats
// nested-loop definitions as maybe-absent (a zero-trip loop defines
// nothing), so it over-approximates the live-in set the plan must cover.
func liveInNames(inner *ir.Loop) (need []string, firstRead map[string]token.Pos) {
	firstRead = map[string]token.Pos{}
	seen := map[string]bool{}
	read := func(name string, pos token.Pos, defined map[string]bool) {
		if name == inner.Var || defined[name] || seen[name] {
			return
		}
		seen[name] = true
		need = append(need, name)
		firstRead[name] = pos
	}
	readInstrs := func(instrs []*ir.Instr, defined map[string]bool) {
		for _, in := range instrs {
			if in.Op == ir.ReadVar {
				read(in.Var, in.Pos, defined)
			}
		}
	}
	clone := func(m map[string]bool) map[string]bool {
		c := make(map[string]bool, len(m))
		for k, v := range m {
			c[k] = v
		}
		return c
	}
	var walk func(nodes []ir.Node, defined map[string]bool)
	walk = func(nodes []ir.Node, defined map[string]bool) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *ir.Instr:
				if n.Op == ir.ReadVar {
					read(n.Var, n.Pos, defined)
				}
				if n.Op == ir.WriteVar {
					defined[n.Var] = true
				}
			case *ir.Loop:
				readInstrs(n.Lo, defined)
				readInstrs(n.Hi, defined)
				// The loop may zero-trip, so body definitions are not
				// definite after it; walk the body on a scratch copy with
				// the induction variable bound.
				inBody := clone(defined)
				inBody[n.Var] = true
				walk(n.Body, inBody)
				defined[n.Var] = true // the header itself assigns it
			case *ir.If:
				readInstrs(n.Cond, defined)
				dThen := clone(defined)
				dElse := clone(defined)
				walk(n.Then, dThen)
				walk(n.Else, dElse)
				// Definite only when defined on both paths.
				for k := range dThen {
					if dElse[k] {
						defined[k] = true
					}
				}
			}
		}
	}
	walk(inner.Body, map[string]bool{})
	return need, firstRead
}

// SignaturePlan records which memory accesses (by instruction ID) the
// SPECCROSS instrumentation captures into signatures. The pipeline hooks
// every load and store executed inside a task (speccrossgen inserts the
// spec_access points via interpreter hooks), so the default plan marks every
// access in the region's parallel bodies; the verifier checks the plan
// against the region rather than trusting the construction.
type SignaturePlan struct {
	Instrumented map[int]bool
}

// SignaturePlanFor derives the instrumentation plan speccrossgen realizes
// for a region: every load/store inside the direct parfor children.
func SignaturePlanFor(outer *ir.Loop) *SignaturePlan {
	plan := &SignaturePlan{Instrumented: map[int]bool{}}
	for _, n := range outer.Body {
		if l, ok := n.(*ir.Loop); ok && l.Parallel {
			var instrs []*ir.Instr
			collectInstrs(l.Body, &instrs)
			for _, in := range instrs {
				if in.Op == ir.Load || in.Op == ir.Store {
					plan.Instrumented[in.ID] = true
				}
			}
		}
	}
	return plan
}

// Signatures checks a SPECCROSS region: every may-read/may-write access
// inside the speculative (parallel) bodies is covered by the signature
// instrumentation plan, the sequential interleaved code is privatizable
// (runs uninstrumented during the control replay, so it must not store to
// shared arrays nor read arrays the parallel loops write — the Fig 4.1
// constraint), and epoch boundaries sit only at invocation boundaries.
func Signatures(p *ir.Program, outer *ir.Loop, plan *SignaturePlan) diag.List {
	var out diag.List
	var inners []*ir.Loop
	var seqNodes []ir.Node
	for _, n := range outer.Body {
		if l, ok := n.(*ir.Loop); ok && l.Parallel {
			inners = append(inners, l)
		} else {
			seqNodes = append(seqNodes, n)
		}
	}
	if len(inners) == 0 {
		out.Errorf(CheckSignature, outer.Pos,
			"region loop %q has no parallel inner loop: no epochs to speculate across", outer.Var)
		return out
	}

	parallelWrites := map[string]bool{}
	var parInstrs []*ir.Instr
	for _, inner := range inners {
		collectInstrs(inner.Body, &parInstrs)
	}
	for _, in := range parInstrs {
		if in.Op == ir.Store {
			parallelWrites[in.Array] = true
		}
	}

	// Sequential privatizability (the replayed skeleton runs without
	// signatures, so nothing it does may conflict with speculative tasks).
	var seqInstrs []*ir.Instr
	collectInstrs(seqNodes, &seqInstrs)
	for _, inner := range inners {
		seqInstrs = append(seqInstrs, inner.Lo...)
		seqInstrs = append(seqInstrs, inner.Hi...)
	}
	for _, in := range seqInstrs {
		switch in.Op {
		case ir.Store:
			out.Errorf(CheckSignature, in.Pos,
				"sequential region stores to array %q outside signature instrumentation; the region is not privatizable", in.Array)
		case ir.Load:
			if parallelWrites[in.Array] {
				out.Errorf(CheckSignature, in.Pos,
					"sequential region reads array %q, which the parallel loops write; the epoch schedule cannot be precomputed", in.Array)
			}
		}
	}

	// Epoch boundaries: a parallel loop that is not a direct child of the
	// region loop does not become an epoch — inside the sequential skeleton
	// it would run during the uninstrumented replay (an error), inside a
	// task body it merely serializes (a warning).
	var flagNested func(nodes []ir.Node, inTask bool)
	flagNested = func(nodes []ir.Node, inTask bool) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *ir.Loop:
				if n.Parallel {
					if inTask {
						out.Warningf(CheckSignature, n.Pos,
							"parfor %q nested inside a task body executes sequentially within one task", n.Var)
					} else {
						out.Errorf(CheckSignature, n.Pos,
							"parfor %q is not a direct child of region loop %q; epoch boundaries must sit at invocation boundaries", n.Var, outer.Var)
					}
				}
				flagNested(n.Body, inTask)
			case *ir.If:
				flagNested(n.Then, inTask)
				flagNested(n.Else, inTask)
			}
		}
	}
	flagNested(seqNodes, false)
	for _, inner := range inners {
		flagNested(inner.Body, true)
	}

	// Coverage: every access a speculative task may execute must land in a
	// signature, or the checker can miss a true cross-epoch conflict.
	if plan == nil {
		plan = &SignaturePlan{Instrumented: map[int]bool{}}
	}
	for _, in := range parInstrs {
		if in.Op != ir.Load && in.Op != ir.Store {
			continue
		}
		if !plan.Instrumented[in.ID] {
			out.Errorf(CheckSignature, in.Pos,
				"memory access %d (%s) in a speculative task is not covered by signature instrumentation; the checker would miss its conflicts", in.ID, in)
		}
	}
	return out
}

// Advisor checks a Chapter 2 recommendation against the loop's PDG: a DOALL
// verdict must be backed by the absence of any loop-carried dependence SCC,
// and a parfor annotation must not be disproven by the affine tests.
func Advisor(p *ir.Program, dep *depend.Result, loop *ir.Loop, rec advisor.Recommendation) diag.List {
	var out diag.List
	if rec.Plan == advisor.DOALL {
		g := pdg.Build(p, dep, loop)
		comps := scc.Tarjan(g.ToSCCGraph(false))
		for _, e := range g.Edges {
			if !e.LoopCarried {
				continue
			}
			kind := "dependence"
			if si, di := g.Index[e.Src], g.Index[e.Dst]; comps.Comp[si] == comps.Comp[di] {
				kind = "dependence cycle"
			}
			out.Errorf(CheckAdvisor, loop.Pos,
				"DOALL verdict for loop %q contradicts the PDG: loop-carried %s %s between %d (%s at %s) and %d (%s)",
				loop.Var, e.Kind, kind,
				e.Src, p.Instrs[e.Src], p.Instrs[e.Src].Pos, e.Dst, p.Instrs[e.Dst])
			break // one witness suffices
		}
	}
	if loop.Parallel && dep.ClassifyParallel(loop) == depend.Disproven {
		out.Errorf(CheckAdvisor, loop.Pos,
			"parfor annotation on loop %q is disproven: the affine tests found a definite cross-iteration dependence", loop.Var)
	}
	return out
}

// Plan bundles everything the verifier checks for one candidate region.
// Fields left nil (an inapplicable transform) skip their checks — the
// engines fall back at runtime in exactly those cases.
type Plan struct {
	Prog  *ir.Program
	Dep   *depend.Result
	Outer *ir.Loop
	// Part is the DOMORE scheduler/worker split (nil when partitioning is
	// inapplicable for this region).
	Part *partition.Result
	// Par is the full DOMORE transform with slices and live-ins (nil when
	// MTCG is inapplicable).
	Par *mtcg.Parallelized
	// Sig is the SPECCROSS instrumentation plan.
	Sig *SignaturePlan
}

// NewPlan derives the verification plan for a region by running the
// transform pipeline. Transform inapplicability (no parallel inner, heavy
// slice, worker-state slice…) is not an error: the corresponding engine
// refuses the region at runtime too, so those checks are skipped.
func NewPlan(p *ir.Program, dep *depend.Result, outer *ir.Loop) *Plan {
	pl := &Plan{Prog: p, Dep: dep, Outer: outer, Sig: SignaturePlanFor(outer)}
	if par, err := mtcg.Transform(p, dep, outer, slice.Options{}); err == nil {
		pl.Par = par
		pl.Part = par.Part
	} else if part, err := partition.Compute(p, dep, outer); err == nil {
		// MTCG refused (e.g. a heavy slice) but the partition itself exists;
		// still verify it.
		pl.Part = part
	}
	return pl
}

// Verify runs every applicable check over the plan and returns the sorted
// diagnostics.
func (pl *Plan) Verify() diag.List {
	var out diag.List
	if pl.Part != nil {
		out = append(out, Partition(pl.Part)...)
	}
	if pl.Par != nil {
		for _, inner := range pl.Par.Part.Inners {
			out = append(out, Slice(pl.Prog, pl.Par.Part, pl.Par.Slices[inner])...)
		}
		out = append(out, MTCG(pl.Par)...)
	}
	out = append(out, Signatures(pl.Prog, pl.Outer, pl.Sig)...)
	out.Sort()
	return out
}

// Region is the one-call entry point: derive the plan for a region and
// verify it.
func Region(p *ir.Program, dep *depend.Result, outer *ir.Loop) diag.List {
	return NewPlan(p, dep, outer).Verify()
}

package verify

import (
	"sort"

	"crossinv/internal/ir"
	"crossinv/internal/lang/token"
	"crossinv/internal/transform/advisor"
	"crossinv/internal/transform/mtcg"
	"crossinv/internal/transform/partition"
	"crossinv/internal/transform/slice"
)

// Corruption describes a deliberate plan corruption seeded by one of the
// Corrupt* helpers, so mutation tests can assert the verifier flags the
// right check at the right source position. The helpers mutate the plan in
// place and pick their target deterministically (lowest instruction ID /
// first edge), so a failing test reproduces.
type Corruption struct {
	// Name identifies the mutation class.
	Name string
	// Check is the verifier check expected to flag it.
	Check string
	// Pos is the source position the diagnostic must carry.
	Pos token.Pos
}

// CorruptWidenScheduler moves the destination of a worker→worker hard
// dependence into the scheduler partition — the "widened scheduler" bug
// class, which breaks the pipeline invariant because its source now feeds
// the scheduler from the worker side. Returns false when the partition has
// no such edge to corrupt.
func CorruptWidenScheduler(part *partition.Result) (Corruption, bool) {
	for _, e := range part.Graph.Edges {
		if !hardEdge(e) || e.Src == e.Dst {
			continue
		}
		if part.Side[e.Src] == partition.Worker && part.Side[e.Dst] == partition.Worker {
			part.Side[e.Dst] = partition.Scheduler
			return Corruption{
				Name:  "widen-scheduler",
				Check: CheckPartition,
				Pos:   part.Graph.Prog.Instrs[e.Dst].Pos,
			}, true
		}
	}
	return Corruption{}, false
}

// CorruptStoreIntoSlice appends a store from the inner loop's body to the
// computeAddr slice — the §3.3.4 violation slice.Generate exists to prevent
// (a side-effecting slice would make the scheduler's redundant re-execution
// observable). Returns false when the body has no store.
func CorruptStoreIntoSlice(ca *slice.ComputeAddr) (Corruption, bool) {
	var body []*ir.Instr
	collectInstrs(ca.Inner.Body, &body)
	for _, in := range body {
		if in.Op == ir.Store {
			ca.Instrs = append(ca.Instrs, in)
			return Corruption{
				Name:  "store-into-slice",
				Check: CheckSlice,
				Pos:   in.Pos,
			}, true
		}
	}
	return Corruption{}, false
}

// CorruptDropAddr removes the lowest-ID tracked access from the slice's
// address map, so that access's address would never reach shadow memory.
func CorruptDropAddr(p *ir.Program, ca *slice.ComputeAddr) (Corruption, bool) {
	ids := make([]int, 0, len(ca.AddrOf))
	for id := range ca.AddrOf {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return Corruption{}, false
	}
	sort.Ints(ids)
	delete(ca.AddrOf, ids[0])
	return Corruption{
		Name:  "drop-addr",
		Check: CheckSlice,
		Pos:   p.Instrs[ids[0]].Pos,
	}, true
}

// CorruptDropLiveIn removes the first forwarded live-in of the first inner
// loop that has one — the "dropped produce" bug class: the worker would read
// a stale or unset scalar. Returns false when no inner loop forwards any
// live-in.
func CorruptDropLiveIn(par *mtcg.Parallelized) (Corruption, bool) {
	for _, inner := range par.Part.Inners {
		names := par.LiveIns[inner]
		if len(names) == 0 {
			continue
		}
		dropped := names[0]
		par.LiveIns[inner] = names[1:]
		_, firstRead := liveInNames(inner)
		return Corruption{
			Name:  "drop-live-in",
			Check: CheckMTCG,
			Pos:   firstRead[dropped],
		}, true
	}
	return Corruption{}, false
}

// CorruptDuplicateLiveIn forwards the first live-in of the first applicable
// inner loop twice, breaking the one-producer-per-queue (SPSC) discipline.
func CorruptDuplicateLiveIn(par *mtcg.Parallelized) (Corruption, bool) {
	for _, inner := range par.Part.Inners {
		names := par.LiveIns[inner]
		if len(names) == 0 {
			continue
		}
		par.LiveIns[inner] = append(names, names[0])
		return Corruption{
			Name:  "duplicate-live-in",
			Check: CheckMTCG,
			Pos:   inner.Pos,
		}, true
	}
	return Corruption{}, false
}

// CorruptDropInstrumentation removes the lowest-ID access from the signature
// instrumentation plan, so a speculative task performs an access the
// conflict checker never sees.
func CorruptDropInstrumentation(p *ir.Program, plan *SignaturePlan) (Corruption, bool) {
	ids := make([]int, 0, len(plan.Instrumented))
	for id := range plan.Instrumented {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return Corruption{}, false
	}
	sort.Ints(ids)
	delete(plan.Instrumented, ids[0])
	return Corruption{
		Name:  "drop-instrumentation",
		Check: CheckSignature,
		Pos:   p.Instrs[ids[0]].Pos,
	}, true
}

// CorruptDOALL fabricates a DOALL recommendation for a loop regardless of
// its dependences — the advisor bug class Advisor() exists to catch when
// the loop in fact carries a dependence.
func CorruptDOALL(loop *ir.Loop) (advisor.Recommendation, Corruption) {
	return advisor.Recommendation{
			Plan:   advisor.DOALL,
			Reason: "seeded corruption: unconditional DOALL",
		}, Corruption{
			Name:  "forced-doall",
			Check: CheckAdvisor,
			Pos:   loop.Pos,
		}
}

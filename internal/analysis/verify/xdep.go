package verify

import (
	"reflect"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/xdep"
	"crossinv/internal/diag"
	"crossinv/internal/ir"
)

// XDep cross-checks a cross-invocation facts report (freshly computed,
// cached, or received over the wire) against the IR: the analyzer is
// re-run and the supplied report must reproduce it exactly. The check
// ranks its findings — a claim *below* the recomputed severity (the
// report licenses parallelism a proven dependence forbids) is called out
// as a contradiction, because an engine plan built on it would drop
// synchronization the program needs; any other drift is stale facts.
//
// This is the verifier half of the xdep conservatism contract: the chaos
// harness checks claims against runtime conflicts, XDep checks reports
// against the analyzer. Every Corrupt* mutation in internal/analysis/xdep
// must be caught here.
func XDep(p *ir.Program, dep *depend.Result, regions []*ir.Loop, facts *xdep.Facts) diag.List {
	var out diag.List
	var pos0 ir.Instr // zero positions for program-level findings
	if facts == nil {
		out.Errorf(CheckXDep, pos0.Pos, "no cross-invocation facts supplied for program %q", p.Name)
		return out
	}
	fresh := xdep.Analyze(p, dep, regions)
	if facts.Schema != fresh.Schema {
		out.Errorf(CheckXDep, pos0.Pos,
			"facts schema %q does not match analyzer schema %q; the report is from a different analyzer version",
			facts.Schema, fresh.Schema)
		return out
	}
	if facts.Program != fresh.Program {
		out.Errorf(CheckXDep, pos0.Pos,
			"facts are for program %q, not %q", facts.Program, p.Name)
		return out
	}
	if len(facts.Regions) != len(fresh.Regions) {
		out.Errorf(CheckXDep, pos0.Pos,
			"facts cover %d regions, program has %d candidate regions", len(facts.Regions), len(fresh.Regions))
		return out
	}

	for i := range fresh.Regions {
		got, want := &facts.Regions[i], &fresh.Regions[i]
		pos := regions[i].Pos

		if got.Class != want.Class {
			gc, gok := xdep.ParseClass(got.Class)
			wc, wok := xdep.ParseClass(want.Class)
			if gok && wok && gc < wc {
				out.Errorf(CheckXDep, pos,
					"region %q claims %s but the analyzer proves %s: the plan contradicts a proven cross-invocation dependence",
					want.Var, got.Class, want.Class)
			} else {
				out.Errorf(CheckXDep, pos,
					"region %q facts classify %s, analyzer says %s (stale or corrupted report)",
					want.Var, got.Class, want.Class)
			}
		}
		if got.MinDistance != want.MinDistance || got.MaxDistance != want.MaxDistance {
			out.Errorf(CheckXDep, pos,
				"region %q facts bound distances [%d, %d], analyzer proves [%d, %d]",
				want.Var, got.MinDistance, got.MaxDistance, want.MinDistance, want.MaxDistance)
		}
		if len(got.Evidence) != len(want.Evidence) {
			out.Errorf(CheckXDep, pos,
				"region %q facts record %d subscript pairs, analyzer tested %d: the report does not account for every access pair",
				want.Var, len(got.Evidence), len(want.Evidence))
			continue
		}
		for j := range want.Evidence {
			ge, we := got.Evidence[j], want.Evidence[j]
			if reflect.DeepEqual(ge, we) {
				continue
			}
			epos := pos
			if we.Src >= 0 && we.Src < len(p.Instrs) {
				epos = p.Instrs[we.Src].Pos
			}
			if !reflect.DeepEqual(ge.Vector, we.Vector) && ge.Array == we.Array && ge.Class == we.Class {
				out.Errorf(CheckXDep, epos,
					"region %q pair %s(%d,%d): direction vector %v does not match the analyzer's %v",
					want.Var, we.Array, we.Src, we.Dst, ge.Vector, we.Vector)
				continue
			}
			out.Errorf(CheckXDep, epos,
				"region %q pair %d drifted: facts say %s/%s on %s, analyzer says %s/%s on %s",
				want.Var, j, ge.Class, ge.Test, ge.Array, we.Class, we.Test, we.Array)
		}
		if !reflect.DeepEqual(got.LoopPairs, want.LoopPairs) {
			out.Errorf(CheckXDep, pos,
				"region %q loop-pair classes %v do not match the analyzer's %v",
				want.Var, got.LoopPairs, want.LoopPairs)
		}
	}
	out.Sort()
	return out
}

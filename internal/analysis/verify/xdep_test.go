package verify_test

import (
	"strings"
	"testing"

	"crossinv/internal/analysis/xdep"
	"crossinv/internal/analysis/verify"
	"crossinv/internal/diag"
	"crossinv/internal/transform/speccrossgen"
)

// xdepPipeSrc is the canonical forward-only pipeline: each invocation of
// the inner parfor writes a fresh 8-element block and reads the previous
// invocation's block.
const xdepPipeSrc = `func pipe() {
	var A[520]
	parfor s = 0 .. 520 {
		A[s] = s * 5 % 11
	}
	for t = 1 .. 64 {
		parfor i = 0 .. 8 {
			A[t*8 + i] = A[t*8 + i - 8] * 3 + 1
		}
	}
}`

// xdepAnalyze compiles src and returns everything verify.XDep needs plus
// a fresh facts report to corrupt.
func xdepAnalyze(t *testing.T, src string) (run func(*xdep.Facts) diag.List, facts *xdep.Facts) {
	t.Helper()
	p, dep := compile(t, src)
	regions := speccrossgen.Detect(p)
	run = func(f *xdep.Facts) diag.List {
		return verify.XDep(p, dep, regions, f)
	}
	return run, xdep.Analyze(p, dep, regions)
}

func wantXDepError(t *testing.T, list diag.List, substr string) {
	t.Helper()
	for _, d := range list {
		if d.Check == verify.CheckXDep && d.Severity == diag.Error && strings.Contains(d.Msg, substr) {
			return
		}
	}
	t.Errorf("no xdep error containing %q; got:\n%s", substr, list.Text())
}

func TestXDepCleanFactsVerify(t *testing.T) {
	for _, src := range []string{xdepPipeSrc, cgSrc, stencilSrc} {
		run, facts := xdepAnalyze(t, src)
		if list := run(facts); len(list) != 0 {
			t.Errorf("untouched facts flagged:\n%s", list.Text())
		}
	}
}

func TestXDepCatchesFlippedDirection(t *testing.T) {
	run, facts := xdepAnalyze(t, xdepPipeSrc)
	if !xdep.CorruptFlipDirection(facts) {
		t.Fatal("CorruptFlipDirection found nothing to flip")
	}
	wantXDepError(t, run(facts), "direction vector")
}

func TestXDepCatchesDroppedPair(t *testing.T) {
	run, facts := xdepAnalyze(t, xdepPipeSrc)
	if !xdep.CorruptDropPair(facts) {
		t.Fatal("CorruptDropPair found nothing to drop")
	}
	wantXDepError(t, run(facts), "every access pair")
}

func TestXDepCatchesWidenedVerdict(t *testing.T) {
	// The widened verdict is the dangerous direction: the report claims
	// "none" where the analyzer proves a recurrence, so any plan built on
	// it would drop synchronization. The message must say so.
	run, facts := xdepAnalyze(t, stencilSrc)
	if !xdep.CorruptWidenCyclic(facts) {
		t.Fatal("CorruptWidenCyclic found no cyclic region")
	}
	wantXDepError(t, run(facts), "contradicts a proven cross-invocation dependence")
}

func TestXDepNilAndSchemaDrift(t *testing.T) {
	run, facts := xdepAnalyze(t, xdepPipeSrc)
	wantXDepError(t, run(nil), "no cross-invocation facts")

	facts.Schema = "crossinv-xdep/v0"
	wantXDepError(t, run(facts), "schema")
}

func TestXDepStaleDistance(t *testing.T) {
	run, facts := xdepAnalyze(t, xdepPipeSrc)
	facts.Regions[0].MinDistance += 4
	wantXDepError(t, run(facts), "distances")
}

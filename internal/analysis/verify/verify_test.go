package verify_test

import (
	"strings"
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/verify"
	"crossinv/internal/diag"
	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
	"crossinv/internal/lang/token"
	"crossinv/internal/transform/advisor"
	"crossinv/internal/transform/mtcg"
	"crossinv/internal/transform/slice"
)

// cgSrc is the Fig 3.1 shape: inner bounds and addresses come from arrays,
// the worker updates C through an index array.
const cgSrc = `func cg() {
	var S[40], C[120], IDX[400]
	parfor z = 0 .. 400 {
		IDX[z] = z * 17 % 120
	}
	for i = 0 .. 40 {
		start = S[i] % 391
		end = start + 9
		parfor j = start .. end {
			C[IDX[j]] = C[IDX[j]] * 3 + j + 1
		}
	}
}`

// stencilSrc is the Fig 1.3 shape: two parfors per timestep, and the second
// one reads the induction scalar t — a live-in MTCG must forward.
const stencilSrc = `func stencil() {
	var A[256], B[257]
	for t = 0 .. 40 {
		parfor i = 0 .. 256 {
			A[i] = B[i] * 3 + B[i+1]
		}
		parfor j = 1 .. 257 {
			B[j] = A[j-1] % 1009 + t
		}
	}
}`

func compile(t *testing.T, src string) (*ir.Program, *depend.Result) {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(astProg)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p, depend.Analyze(p)
}

func loopByVar(t *testing.T, p *ir.Program, name string) *ir.Loop {
	t.Helper()
	for _, l := range p.Loops {
		if l.Var == name {
			return l
		}
	}
	t.Fatalf("no loop with induction variable %q", name)
	return nil
}

func transform(t *testing.T, src, outerVar string) (*ir.Program, *depend.Result, *mtcg.Parallelized) {
	t.Helper()
	p, dep := compile(t, src)
	outer := loopByVar(t, p, outerVar)
	par, err := mtcg.Transform(p, dep, outer, slice.Options{})
	if err != nil {
		t.Fatalf("mtcg.Transform: %v", err)
	}
	return p, dep, par
}

// wantFlagged asserts that the list contains an error of the corruption's
// check at the corruption's source position.
func wantFlagged(t *testing.T, list diag.List, c verify.Corruption) {
	t.Helper()
	for _, d := range list {
		if d.Severity == diag.Error && d.Check == c.Check && d.Pos == c.Pos {
			return
		}
	}
	t.Errorf("corruption %q not flagged: want an error for check %q at %s, got:\n%s",
		c.Name, c.Check, c.Pos, list.Text())
}

func TestCleanPlansVerify(t *testing.T) {
	for _, tc := range []struct{ name, src, outer string }{
		{"cg", cgSrc, "i"},
		{"stencil", stencilSrc, "t"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, dep := compile(t, tc.src)
			list := verify.Region(p, dep, loopByVar(t, p, tc.outer))
			if len(list) != 0 {
				t.Errorf("clean program produced diagnostics:\n%s", list.Text())
			}
			for _, l := range p.Loops {
				rec := advisor.Advise(p, dep, l)
				if out := verify.Advisor(p, dep, l, rec); len(out) != 0 {
					t.Errorf("advisor check flagged loop %q:\n%s", l.Var, out.Text())
				}
			}
		})
	}
}

func TestCorruptWidenScheduler(t *testing.T) {
	_, _, par := transform(t, cgSrc, "i")
	c, ok := verify.CorruptWidenScheduler(par.Part)
	if !ok {
		t.Fatal("no worker→worker hard edge to corrupt")
	}
	if c.Pos == (token.Pos{}) {
		t.Fatal("corruption has no source position")
	}
	wantFlagged(t, verify.Partition(par.Part), c)
}

func TestCorruptStoreIntoSlice(t *testing.T) {
	p, _, par := transform(t, cgSrc, "i")
	inner := par.Part.Inners[0]
	c, ok := verify.CorruptStoreIntoSlice(par.Slices[inner])
	if !ok {
		t.Fatal("no store in the inner body to corrupt with")
	}
	wantFlagged(t, verify.Slice(p, par.Part, par.Slices[inner]), c)
}

func TestCorruptDropAddr(t *testing.T) {
	p, _, par := transform(t, cgSrc, "i")
	inner := par.Part.Inners[0]
	c, ok := verify.CorruptDropAddr(p, par.Slices[inner])
	if !ok {
		t.Fatal("slice tracks no addresses")
	}
	wantFlagged(t, verify.Slice(p, par.Part, par.Slices[inner]), c)
}

func TestCorruptDropLiveIn(t *testing.T) {
	_, _, par := transform(t, stencilSrc, "t")
	c, ok := verify.CorruptDropLiveIn(par)
	if !ok {
		t.Fatal("no live-in to drop (expected t for the second parfor)")
	}
	if c.Pos == (token.Pos{}) {
		t.Fatal("corruption has no source position")
	}
	wantFlagged(t, verify.MTCG(par), c)
}

func TestCorruptDuplicateLiveIn(t *testing.T) {
	_, _, par := transform(t, stencilSrc, "t")
	c, ok := verify.CorruptDuplicateLiveIn(par)
	if !ok {
		t.Fatal("no live-in to duplicate")
	}
	wantFlagged(t, verify.MTCG(par), c)
}

func TestCorruptDropInstrumentation(t *testing.T) {
	p, _ := compile(t, stencilSrc)
	outer := loopByVar(t, p, "t")
	plan := verify.SignaturePlanFor(outer)
	c, ok := verify.CorruptDropInstrumentation(p, plan)
	if !ok {
		t.Fatal("instrumentation plan is empty")
	}
	wantFlagged(t, verify.Signatures(p, outer, plan), c)
}

func TestCorruptDOALL(t *testing.T) {
	p, dep := compile(t, cgSrc)
	loop := loopByVar(t, p, "j") // carries a dependence through C[IDX[j]]
	rec, c := verify.CorruptDOALL(loop)
	wantFlagged(t, verify.Advisor(p, dep, loop, rec), c)
}

func TestAdvisorAcceptsTrueDOALL(t *testing.T) {
	p, dep := compile(t, stencilSrc)
	loop := loopByVar(t, p, "i") // A[i] = f(B): genuinely independent
	rec := advisor.Advise(p, dep, loop)
	if rec.Plan != advisor.DOALL {
		t.Fatalf("advisor says %v for an independent loop", rec.Plan)
	}
	if out := verify.Advisor(p, dep, loop, rec); len(out) != 0 {
		t.Errorf("true DOALL flagged:\n%s", out.Text())
	}
}

func TestSignaturesNestedParfor(t *testing.T) {
	p, _ := compile(t, `func f() {
		var A[100], B[100]
		for i = 0 .. 10 {
			parfor j = 0 .. 10 {
				parfor k = 0 .. 10 {
					A[k] = B[k] + j
				}
			}
		}
	}`)
	outer := loopByVar(t, p, "i")
	list := verify.Signatures(p, outer, verify.SignaturePlanFor(outer))
	found := false
	for _, d := range list {
		if d.Check == verify.CheckSignature && d.Severity == diag.Warning &&
			strings.Contains(d.Msg, "nested inside a task") {
			found = true
		}
	}
	if !found {
		t.Errorf("nested parfor not warned about:\n%s", list.Text())
	}
}

func TestTaintFixpoint(t *testing.T) {
	// r1 = load A[r0]; s = r1; r2 = read s; r3 = r2 + r0; store B[r0] = r3
	instrs := []*ir.Instr{
		{ID: 0, Op: ir.Const, Dst: 0, Imm: 1},
		{ID: 1, Op: ir.Load, Dst: 1, A: 0, Array: "A"},
		{ID: 2, Op: ir.WriteVar, A: 1, Var: "s"},
		{ID: 3, Op: ir.ReadVar, Dst: 2, Var: "s"},
		{ID: 4, Op: ir.Add, Dst: 3, A: 2, B: 0},
		{ID: 5, Op: ir.Store, A: 0, B: 3, Array: "B"},
	}
	tt := verify.TaintFromArrays(instrs, map[string]bool{"A": true})
	if !tt.Reg[1] || !tt.Var["s"] || !tt.Reg[2] || !tt.Reg[3] {
		t.Errorf("taint did not propagate load→var→read→add: %+v", tt)
	}
	if tt.Reg[0] {
		t.Error("constant register tainted")
	}
	if clean := verify.TaintFromArrays(instrs, map[string]bool{"C": true}); len(clean.Reg) != 0 {
		t.Errorf("taint from unrelated array: %+v", clean.Reg)
	}

	// Round trip across textual order: the write to s happens after the
	// read in program text but taints it through the fixpoint.
	loopy := []*ir.Instr{
		{ID: 0, Op: ir.ReadVar, Dst: 0, Var: "acc"},
		{ID: 1, Op: ir.Load, Dst: 1, A: 0, Array: "A"},
		{ID: 2, Op: ir.WriteVar, A: 1, Var: "acc"},
	}
	tl := verify.TaintFromArrays(loopy, map[string]bool{"A": true})
	if !tl.Reg[0] || !tl.Var["acc"] {
		t.Error("taint did not close the var round trip across iterations")
	}
}

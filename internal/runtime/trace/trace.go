// Package trace is the runtime observability layer shared by every
// execution engine: a low-overhead, per-thread event recorder that the
// barrier, DOMORE, SPECCROSS, and adaptive runtimes emit into.
//
// Design constraints, in order:
//
//  1. Disabled tracing must cost (almost) nothing. Engines hold a
//     *Recorder that is normally nil; Recorder.Lane on a nil recorder
//     returns a nil *ThreadTrace, and every ThreadTrace method is a no-op
//     on a nil receiver. The hot-path cost of disabled tracing is one
//     pointer comparison per emission site.
//  2. No locks on the hot path. Each engine thread owns exactly one lane
//     (a *ThreadTrace); emission appends to the lane's private ring
//     buffer and bumps the lane's private per-kind counters. The only
//     lock is taken at lane registration (once per thread per run).
//     The counters are single-writer atomics, so a monitoring goroutine
//     (crossinv -serve) can read a live Summary while engines emit.
//  3. Bounded memory. Each lane is a fixed-capacity ring; when a run
//     emits more events than fit, the oldest events are overwritten and
//     counted as dropped. The per-kind counters never drop, so counts
//     derived from a Summary are exact even when the ring overflowed —
//     this is what lets tests assert trace-derived statistics equal the
//     engines' own Stats.
//
// Events cover the lifecycle the paper's engines share: iteration/task
// spans, worker stalls with their ⟨depTid, depIterNum⟩ condition
// (§3.2.2), queue full/empty backoff episodes (§3.2.3), epoch
// begin/commit/abort segments, signature checks (§4.2.1),
// misspeculation and recovery spans (§4.2.2), checkpoint/restore, and
// the adaptive controller's window and engine-switch decisions.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies one event type. The schema (argument meaning per kind)
// is documented next to each constant and summarized in README.md.
type Kind uint8

const (
	// KindIterStart/KindIterEnd span one non-speculative iteration or
	// task execution: a DOMORE worker iteration or a barrier-engine task.
	// A=invocation/epoch, B=iteration/task index, C=global iteration
	// number (DOMORE) or 0.
	KindIterStart Kind = iota
	KindIterEnd
	// KindTaskStart/KindTaskEnd span one speculative SPECCROSS task.
	// A=epoch, B=task, C=global task number.
	KindTaskStart
	KindTaskEnd
	// KindSchedule marks the DOMORE scheduler scheduling one iteration.
	// A=1, B=invocation, C=global iteration number.
	KindSchedule
	// KindAddrCheck reports the shadow-memory lookups of one scheduled
	// iteration. A=#addresses, B=invocation, C=global iteration number.
	KindAddrCheck
	// KindSyncCond marks one forwarded ⟨depTid, depIterNum⟩ condition.
	// A=target worker, B=depTid, C=depIterNum.
	KindSyncCond
	// KindDispatch marks one (iteration, worker) dispatch.
	// A=target worker, B=global iteration number.
	KindDispatch
	// KindQueueDepth samples a queue's buffered length at dispatch time.
	// A=depth, B=queue owner lane.
	KindQueueDepth
	// KindStallBegin/KindStallEnd span a worker wait on an unsatisfied
	// dependence. A=depTid, B=depIterNum.
	KindStallBegin
	KindStallEnd
	// KindQueueFullBegin/KindQueueFullEnd span a producer backoff episode
	// on a full ring. A=queue owner lane.
	KindQueueFullBegin
	KindQueueFullEnd
	// KindQueueEmptyBegin/KindQueueEmptyEnd span a consumer backoff
	// episode on an empty ring. A=queue owner lane.
	KindQueueEmptyBegin
	KindQueueEmptyEnd
	// KindBarrierWaitBegin/KindBarrierWaitEnd span one barrier wait.
	// A=epoch.
	KindBarrierWaitBegin
	KindBarrierWaitEnd
	// KindRangeStallBegin/KindRangeStallEnd span a speculative-range
	// stall (the enter_task gating of Table 4.1). A=global task number,
	// B=distance bound.
	KindRangeStallBegin
	KindRangeStallEnd
	// KindEpochBegin opens an epoch segment. A=start epoch, B=end epoch
	// (exclusive). Closed by KindEpochCommit or KindEpochAbort.
	KindEpochBegin
	// KindEpochCommit closes a committed segment. A=#epochs committed,
	// B=start, C=end.
	KindEpochCommit
	// KindEpochAbort closes a misspeculated segment. A=start, B=end.
	KindEpochAbort
	// KindSigCheck marks one checker signature comparison.
	// A=logged task's lane, B=logged task's packed position.
	KindSigCheck
	// KindCheckRequest marks a checking request whose comparison window
	// was non-empty (§4.1.3). A=requesting worker, B=packed position.
	KindCheckRequest
	// KindMisspec marks a detected misspeculation. A=reason
	// (1 conflict, 2 panic, 3 injected, 4 timeout), B=start, C=end.
	KindMisspec
	// KindCheckpoint marks a snapshot. A=epoch after which state is safe.
	KindCheckpoint
	// KindRestore marks a rollback to the segment checkpoint. A=start.
	KindRestore
	// KindRecoveryBegin/KindRecoveryEnd span the non-speculative barrier
	// re-execution after misspeculation. Begin: A=start, B=end.
	// End: A=#epochs re-executed, B=start, C=end.
	KindRecoveryBegin
	KindRecoveryEnd
	// KindWindowBegin marks an adaptive monitoring window. A=first epoch,
	// B=end epoch (exclusive), C=engine. Engine-emitted epoch numbers
	// inside a window are window-relative; this event carries the base.
	KindWindowBegin
	// KindEngineSwitch marks an adaptive engine change at a window
	// boundary. A=from engine, B=to engine, C=boundary epoch.
	KindEngineSwitch
	// KindSigPrefilter marks one checker union pre-filter test: the
	// arriving signature against the running union of a (worker, epoch)
	// log row. A=1 if the row passed the filter (a precise per-task scan
	// followed), else 0 — so Sums[KindSigPrefilter] is the exact hit
	// count and Counts[KindSigPrefilter] the total tests, the
	// checker-pressure signal the adaptive monitor samples. B=logged
	// row's lane, C=relative epoch.
	KindSigPrefilter
	// KindCkptDelta marks an incremental checkpoint: the base image was
	// refreshed for the segment's dirty cells only. A=#cells refreshed,
	// B=epoch after which state is safe. Always paired with the
	// KindCheckpoint event of the same commit.
	KindCkptDelta
	// KindDeltaRestore marks an incremental rollback: the segment's dirty
	// cells were rewritten from the base image. A=#cells restored,
	// B=start epoch. Always paired with the KindRestore event of the
	// same abort.
	KindDeltaRestore
	// KindSpanBegin/KindSpanEnd delimit one request-scoped span (see
	// span.go): a named stage of a daemon invocation (admission, cache
	// lookup, profile, window, …). A=span id (unique per recorder),
	// B=parent span id (0 = root), C=SpanKind code.
	KindSpanBegin
	KindSpanEnd
	// KindShardChunk marks one scheduler lane finishing dependence
	// detection for one chunk of the sharded DOMORE scheduler. A=lane
	// (shard index), B=chunk sequence number, C=first combined iteration
	// number of the chunk. The chaos shard-skew fault keys on this kind.
	KindShardChunk

	// KindCount is the number of event kinds (not itself a kind).
	KindCount
)

var kindNames = [KindCount]string{
	KindIterStart:        "iter.start",
	KindIterEnd:          "iter.end",
	KindTaskStart:        "task.start",
	KindTaskEnd:          "task.end",
	KindSchedule:         "schedule",
	KindAddrCheck:        "addr.check",
	KindSyncCond:         "sync.cond",
	KindDispatch:         "dispatch",
	KindQueueDepth:       "queue.depth",
	KindStallBegin:       "stall.begin",
	KindStallEnd:         "stall.end",
	KindQueueFullBegin:   "queue.full.begin",
	KindQueueFullEnd:     "queue.full.end",
	KindQueueEmptyBegin:  "queue.empty.begin",
	KindQueueEmptyEnd:    "queue.empty.end",
	KindBarrierWaitBegin: "barrier.wait.begin",
	KindBarrierWaitEnd:   "barrier.wait.end",
	KindRangeStallBegin:  "range.stall.begin",
	KindRangeStallEnd:    "range.stall.end",
	KindEpochBegin:       "epoch.begin",
	KindEpochCommit:      "epoch.commit",
	KindEpochAbort:       "epoch.abort",
	KindSigCheck:         "sig.check",
	KindCheckRequest:     "check.request",
	KindMisspec:          "misspec",
	KindCheckpoint:       "checkpoint",
	KindRestore:          "restore",
	KindRecoveryBegin:    "recovery.begin",
	KindRecoveryEnd:      "recovery.end",
	KindWindowBegin:      "window.begin",
	KindEngineSwitch:     "engine.switch",
	KindSigPrefilter:     "sig.prefilter",
	KindCkptDelta:        "checkpoint.delta",
	KindDeltaRestore:     "restore.delta",
	KindSpanBegin:        "span.begin",
	KindSpanEnd:          "span.end",
	KindShardChunk:       "shard.chunk",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Reserved lane identifiers for the non-worker threads. Worker threads
// use their tid (>= 0) as the lane.
const (
	// LaneScheduler is the DOMORE dedicated scheduler thread.
	LaneScheduler = -1
	// LaneControl is the engine/controller goroutine: SPECCROSS segment
	// control (checkpoint, rollback, recovery) and the adaptive
	// controller's window decisions.
	LaneControl = -2
	// LaneCheckerBase is the first SPECCROSS checker shard; shard s uses
	// lane LaneCheckerBase - s.
	LaneCheckerBase = -3
	// LaneRequest is the daemon's request lane: the goroutine serving one
	// /run invocation emits its lifecycle spans (admission, cache lookup,
	// analysis stages) here. Far below the checker range so any realistic
	// shard count stays clear of it.
	LaneRequest = -1000
	// LaneShardBase is the first sharded-scheduler lane of domore.
	// RunSharded; lane l uses LaneShardBase - l. Its own range below
	// LaneRequest, so checker shards and lane counts never collide.
	LaneShardBase = -2000
)

// LaneName renders a lane identifier for human-readable output.
func LaneName(lane int32) string {
	switch {
	case lane >= 0:
		return "worker " + itoa(int64(lane))
	case lane == LaneScheduler:
		return "scheduler"
	case lane == LaneControl:
		return "control"
	case lane == LaneRequest:
		return "request"
	case lane <= LaneShardBase:
		return "sched-lane " + itoa(int64(LaneShardBase-lane))
	default:
		return "checker " + itoa(int64(LaneCheckerBase-lane))
	}
}

// itoa avoids importing strconv into the hot-path file for two call
// sites; it handles the small non-negative integers lanes use.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Event is one recorded occurrence. Nanos is relative to the recorder's
// construction time; A, B, C are kind-specific (see the Kind constants).
type Event struct {
	Nanos   int64
	Lane    int32
	Kind    Kind
	A, B, C int64
}

// DefaultRingCap is the per-lane event capacity of NewRecorder.
const DefaultRingCap = 1 << 14

// Hook observes every recorded event synchronously, on the emitting
// thread, immediately after the event is stored. It exists for fault
// injection: a chaos harness can install a hook that delays chosen lanes
// at chosen event kinds, perturbing schedules at exactly the points the
// engines already mark as interesting (stalls, task starts, queue
// episodes) without adding new instrumentation sites. Hooks must be fast
// and must not emit into the same recorder (that would recurse).
type Hook func(lane int32, k Kind, a, b, c int64)

// Recorder collects events from a set of lanes (one per engine thread).
// A nil *Recorder is the disabled state: Lane returns nil and every
// derived accessor returns zero values.
type Recorder struct {
	start   time.Time
	ringCap int
	hook    Hook

	// invocation labels the recorder with the request it is scoped to
	// (empty outside the daemon); spanID allocates span identifiers.
	// Both follow the same quiescence rules as hook: SetInvocation and
	// Reset only while no thread emits.
	invocation string
	spanID     atomic.Int64

	mu    sync.Mutex
	lanes map[int32]*ThreadTrace
}

// NewRecorder returns an enabled recorder with DefaultRingCap events of
// buffer per lane.
func NewRecorder() *Recorder { return NewRecorderCap(DefaultRingCap) }

// NewRecorderCap returns a recorder whose per-lane rings hold ringCap
// events (rounded up to a power of two, minimum 16).
func NewRecorderCap(ringCap int) *Recorder {
	n := 16
	for n < ringCap {
		n <<= 1
	}
	return &Recorder{start: time.Now(), ringCap: n, lanes: map[int32]*ThreadTrace{}}
}

// Lane returns the per-thread emission handle for the given lane,
// creating it on first use. Safe to call from any goroutine; the
// returned handle must then be used by a single goroutine at a time
// (engine threads re-using a lane across adaptive windows are fine
// because window boundaries quiesce). On a nil recorder, Lane returns
// nil, which every ThreadTrace method treats as "tracing disabled".
func (r *Recorder) Lane(lane int32) *ThreadTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.lanes[lane]; ok {
		return t
	}
	t := &ThreadTrace{rec: r, lane: lane, ring: make([]Event, r.ringCap), mask: uint64(r.ringCap - 1)}
	r.lanes[lane] = t
	return t
}

// SetHook installs fn as the recorder's event hook (nil uninstalls it).
// It must be called before any engine thread emits — the field is read
// without synchronization on the hot path, so installation is only safe
// while the recorder is quiescent (the goroutine-spawn edge into the
// engine's threads publishes it). A nil receiver ignores the call.
func (r *Recorder) SetHook(fn Hook) {
	if r == nil {
		return
	}
	r.hook = fn
}

// SetInvocation labels the recorder with the request id it is scoped to.
// Like SetHook it is only safe while the recorder is quiescent. A nil
// receiver ignores the call.
func (r *Recorder) SetInvocation(id string) {
	if r == nil {
		return
	}
	r.invocation = id
}

// Invocation returns the label set by SetInvocation ("" when unset or on
// a nil recorder).
func (r *Recorder) Invocation() string {
	if r == nil {
		return ""
	}
	return r.invocation
}

// Reset rewinds the recorder to an empty state while keeping its lanes
// and their ring allocations, so a pool of per-request recorders reuses
// buffers instead of reallocating them. The clock restarts (event Nanos
// are relative to the Reset), span ids restart from 1, and the
// invocation label clears; the hook is kept. Only legal while the
// recorder is quiescent — the daemon calls it between invocations, after
// the previous request fully drained. A nil receiver ignores the call.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.lanes {
		for k := Kind(0); k < KindCount; k++ {
			t.counts[k].Store(0)
			t.sums[k].Store(0)
		}
		t.n.Store(0)
	}
	r.start = time.Now()
	r.spanID.Store(0)
	r.invocation = ""
}

// now returns nanoseconds since the recorder was constructed.
func (r *Recorder) now() int64 { return int64(time.Since(r.start)) }

// laneList returns the lanes sorted by id (workers ascending after the
// special lanes), for deterministic export order.
func (r *Recorder) laneList() []*ThreadTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*ThreadTrace, 0, len(r.lanes))
	for _, t := range r.lanes {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lane < out[j].lane })
	return out
}

// ThreadTrace is one lane's private event sink. All methods are no-ops
// on a nil receiver.
//
// The counters (counts, sums, n) are written only by the lane's owning
// thread but stored atomically, so Summary may read them from another
// goroutine at any time without a data race. The ring entries themselves
// are plain memory: only the quiescent consumers (Metrics, Events, the
// Chrome and timeline exporters) walk them.
type ThreadTrace struct {
	rec  *Recorder
	lane int32
	ring []Event
	mask uint64
	n    atomic.Uint64 // total events emitted; ring write cursor

	counts [KindCount]atomic.Int64 // exact per-kind event counts (never drop)
	sums   [KindCount]atomic.Int64 // exact per-kind sums of argument A
}

// Enabled reports whether emissions on this handle record anything;
// use it to skip argument computation (e.g. a queue-length sample)
// when tracing is off.
func (t *ThreadTrace) Enabled() bool { return t != nil }

// Emit records one event. The meaning of a, b, c depends on k; see the
// Kind constants. Argument a is additionally accumulated into the
// per-kind sum, which several derived statistics use.
// Emit's nil guard must inline so that a disabled recorder costs a branch,
// not a call, at every instrumentation site; the ring write lives in emit,
// which is too large to inline.
func (t *ThreadTrace) Emit(k Kind, a, b, c int64) {
	if t == nil {
		return
	}
	t.emit(k, a, b, c)
}

func (t *ThreadTrace) emit(k Kind, a, b, c int64) {
	// Single writer per lane: Load+Store (not Add) keeps the hot path a
	// plain read plus one atomic store per counter.
	t.counts[k].Store(t.counts[k].Load() + 1)
	t.sums[k].Store(t.sums[k].Load() + a)
	n := t.n.Load()
	t.ring[n&t.mask] = Event{Nanos: t.rec.now(), Lane: t.lane, Kind: k, A: a, B: b, C: c}
	t.n.Store(n + 1)
	if h := t.rec.hook; h != nil {
		h(t.lane, k, a, b, c)
	}
}

// events returns the lane's surviving ring contents, oldest first.
func (t *ThreadTrace) events() []Event {
	n := t.n.Load()
	if n <= uint64(len(t.ring)) {
		return t.ring[:n]
	}
	out := make([]Event, 0, len(t.ring))
	for i := n - uint64(len(t.ring)); i < n; i++ {
		out = append(out, t.ring[i&t.mask])
	}
	return out
}

// dropped reports how many of the lane's events were overwritten.
func (t *ThreadTrace) dropped() int64 {
	n := t.n.Load()
	if n <= uint64(len(t.ring)) {
		return 0
	}
	return int64(n) - int64(len(t.ring))
}

// Summary is the exact per-kind accounting of a recorder: event counts
// and argument-A sums per kind, aggregated over all lanes. Unlike the
// ring contents, these never drop, so engine statistics derived from a
// Summary are exact.
type Summary struct {
	Counts  [KindCount]int64
	Sums    [KindCount]int64
	Events  int64
	Dropped int64
	Lanes   int
}

// Summary aggregates the per-lane counters. The counters are single-
// writer atomics, so Summary is safe to call at any time: while engines
// are quiescent (between windows, or after a run) it is exact; while they
// run it is a live monotone snapshot whose counts may lag the emitting
// threads by a few events (each lane's counters are read independently).
// On a nil recorder it returns the zero Summary.
func (r *Recorder) Summary() Summary {
	var s Summary
	if r == nil {
		return s
	}
	for _, t := range r.laneList() {
		for k := Kind(0); k < KindCount; k++ {
			s.Counts[k] += t.counts[k].Load()
			s.Sums[k] += t.sums[k].Load()
		}
		s.Events += int64(t.n.Load())
		s.Dropped += t.dropped()
		s.Lanes++
	}
	return s
}

// Events returns every surviving event, grouped by lane (lanes in id
// order, each lane's events oldest first). Events overwritten by ring
// wraparound are absent; Summary counts remain exact regardless.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, t := range r.laneList() {
		out = append(out, t.events()...)
	}
	return out
}

// SpanEvents returns only the surviving span begin/end events, in the
// same lane-grouped order as Events. It exists for the always-on flight
// recorder: extracting a request's span skeleton (dozens of events)
// without materializing its full engine stream (potentially the whole
// ring) keeps the per-invocation retention cost independent of event
// volume.
func (r *Recorder) SpanEvents() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, t := range r.laneList() {
		for _, e := range t.events() {
			if e.Kind == KindSpanBegin || e.Kind == KindSpanEnd {
				out = append(out, e)
			}
		}
	}
	return out
}

package trace

import (
	"bytes"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestQuantileEdgeCases pins the boundary behaviour the scrape surface
// depends on: empty histograms, single-bucket distributions, the q=0 and
// q=1 extremes, and values in the top buckets whose nominal power-of-two
// edge would overflow int64 (the pre-fix bug: 1<<64 over int64 is 0, so
// huge durations reported a zero quantile).
func TestQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		for _, q := range []float64{0, 0.5, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
			}
		}
	})

	t.Run("single bucket", func(t *testing.T) {
		var h Histogram
		for _, v := range []int64{5, 6, 7} { // all land in bucket [4, 8)
			h.Observe(v)
		}
		for _, q := range []float64{0, 0.25, 0.5, 1} {
			got := h.Quantile(q)
			if got < 7 || got > 8 {
				t.Errorf("Quantile(%v) = %d, want an upper bound in [7, 8]", q, got)
			}
		}
	})

	t.Run("q extremes", func(t *testing.T) {
		var h Histogram
		for _, v := range []int64{1, 100, 10000} {
			h.Observe(v)
		}
		if got := h.Quantile(0); got < 1 || got > 2 {
			t.Errorf("Quantile(0) = %d, want the first bucket's edge (in [1, 2])", got)
		}
		if got := h.Quantile(1); got != 10000 {
			t.Errorf("Quantile(1) = %d, want the observed max 10000", got)
		}
		// Out-of-contract q clamps rather than producing garbage ranks.
		if got := h.Quantile(-0.5); got != h.Quantile(0) {
			t.Errorf("Quantile(-0.5) = %d, want same as Quantile(0) = %d", got, h.Quantile(0))
		}
		if got := h.Quantile(2); got != h.Quantile(1) {
			t.Errorf("Quantile(2) = %d, want same as Quantile(1) = %d", got, h.Quantile(1))
		}
	})

	t.Run("top bucket overflow", func(t *testing.T) {
		var h Histogram
		huge := int64(math.MaxInt64 - 3)
		h.Observe(huge) // bucket 64: nominal edge 1<<64 overflows
		h.Observe(1 << 62)
		for _, q := range []float64{0.5, 1} {
			if got := h.Quantile(q); got <= 0 || got > huge {
				t.Errorf("Quantile(%v) = %d, want a positive bound <= %d", q, got, huge)
			}
		}
		if got := h.Quantile(1); got != huge {
			t.Errorf("Quantile(1) = %d, want max %d", got, huge)
		}
	})

	// Property: Quantile is monotone non-decreasing in q, for a spread of
	// deterministic pseudo-random distributions.
	t.Run("monotone in q", func(t *testing.T) {
		seed := uint64(0xB0B)
		next := func() uint64 {
			seed += 0x9e3779b97f4a7c15
			z := seed
			z ^= z >> 33
			z *= 0xff51afd7ed558ccd
			z ^= z >> 33
			return z
		}
		for trial := 0; trial < 20; trial++ {
			var h Histogram
			n := int(next()%200) + 1
			for i := 0; i < n; i++ {
				shift := next() % 63
				h.Observe(int64(next() % (uint64(1)<<shift + 1)))
			}
			prev := int64(-1)
			for q := 0.0; q <= 1.0; q += 0.01 {
				got := h.Quantile(q)
				if got < prev {
					t.Fatalf("trial %d: Quantile(%v) = %d < Quantile(%v) = %d", trial, q, got, q-0.01, prev)
				}
				prev = got
			}
		}
	})
}

// TestRegistryConcurrentAccess hammers every mutating registry entry point
// against readers and the render paths; under -race this is the regression
// test for the -serve scrape-while-running contract.
func TestRegistryConcurrentAccess(t *testing.T) {
	g := NewRegistry()
	var wg sync.WaitGroup
	const writers = 4
	const perWriter = 2000
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			h := g.Histogram("shared.ns")
			for i := 0; i < perWriter; i++ {
				g.AddCounter("hits", 1)
				g.SetGauge("depth", float64(i))
				h.Observe(int64(i))
				g.Histogram("own.ns").Observe(int64(wr*perWriter + i))
			}
		}(wr)
	}
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = g.Counter("hits")
				_ = g.Gauge("depth")
				_ = g.Counters()
				_ = g.Histogram("shared.ns").Quantile(0.5)
				_ = g.Histogram("shared.ns").Mean()
				_ = g.TotalDuration("own.ns")
				var buf bytes.Buffer
				if err := g.WriteText(&buf); err != nil {
					t.Error(err)
					return
				}
				buf.Reset()
				if err := g.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := g.Counter("hits"); got != writers*perWriter {
		t.Errorf("hits = %d, want %d", got, writers*perWriter)
	}
	if got := g.Histogram("shared.ns").Snapshot().Count; got != writers*perWriter {
		t.Errorf("shared histogram count = %d, want %d", got, writers*perWriter)
	}
}

// TestLiveSummaryWhileEmitting reads Summary and LiveMetrics concurrently
// with a thread emitting on its lane — the live scrape path. Under -race
// this proves the single-writer atomic counters carry no data race; the
// final counts stay exact.
func TestLiveSummaryWhileEmitting(t *testing.T) {
	r := NewRecorder()
	const n = 5000
	done := make(chan struct{})
	go func() {
		defer close(done)
		tt := r.Lane(3)
		for i := 0; i < n; i++ {
			tt.Emit(KindSchedule, 1, 0, int64(i))
		}
	}()
	for {
		sum := r.Summary()
		if sum.Counts[KindSchedule] > n {
			t.Fatalf("live count %d exceeds emitted %d", sum.Counts[KindSchedule], n)
		}
		_ = r.LiveMetrics().Counter("events.schedule")
		select {
		case <-done:
			if got := r.Summary().Counts[KindSchedule]; got != n {
				t.Fatalf("final count = %d, want %d", got, n)
			}
			return
		default:
		}
	}
}

// promLine validates one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [0-9eE.+-]+$|^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)

func TestWritePrometheus(t *testing.T) {
	r := NewRecorder()
	tt := r.Lane(0)
	tt.Emit(KindStallBegin, 2, 7, 0)
	tt.Emit(KindStallEnd, 2, 7, 0)
	tt.Emit(KindQueueDepth, 5, 0, 0)
	g := r.Metrics()

	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE crossinv_events_stall_begin_total counter",
		"crossinv_events_stall_begin_total 1",
		"# TYPE crossinv_trace_lanes gauge",
		"# TYPE crossinv_queue_depth histogram",
		"crossinv_queue_depth_bucket{le=\"+Inf\"} 1",
		"crossinv_queue_depth_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WritePrometheus output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
}

package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// MetricPrefix namespaces every exported Prometheus metric name.
const MetricPrefix = "crossinv_"

// PromName converts a registry metric name to a valid Prometheus metric
// name: the crossinv_ prefix plus the name with every character outside
// [a-zA-Z0-9_] replaced by '_' (registry names use dots and dashes).
func PromName(name string) string {
	var b strings.Builder
	b.WriteString(MetricPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters get a _total suffix, gauges export
// verbatim, and the power-of-two histograms export as native Prometheus
// histograms with cumulative le buckets at the power-of-two edges plus
// _sum and _count. Rendering works from a consistent snapshot, so it is
// safe against concurrent feeders — this is the /metrics surface of
// crossinv -serve.
func (g *Registry) WritePrometheus(w io.Writer) error {
	g.mu.Lock()
	counters := make(map[string]int64, len(g.counters))
	for n, v := range g.counters {
		counters[n] = v
	}
	gauges := make(map[string]float64, len(g.gauges))
	for n, v := range g.gauges {
		gauges[n] = v
	}
	histograms := make(map[string]HistogramSnapshot, len(g.histograms))
	for n, h := range g.histograms {
		histograms[n] = h.Snapshot()
	}
	g.mu.Unlock()

	var names []string
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writePromHistogram(w, PromName(n), histograms[n]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram: cumulative buckets only up to
// the highest populated power-of-two edge (the 65-bucket backing array is
// mostly empty), then +Inf, _sum, and _count.
func writePromHistogram(w io.Writer, pn string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	top := 0
	for i, c := range s.Buckets {
		if c != 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top && i < 63; i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, int64(1)<<uint(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, s.Sum, pn, s.Count); err != nil {
		return err
	}
	return nil
}

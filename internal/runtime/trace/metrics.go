package trace

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// Histogram is a power-of-two-bucketed distribution: value v lands in
// bucket bits.Len64(v), so bucket i covers [2^(i-1), 2^i). It records
// count, sum, min, and max exactly; quantiles are bucket-resolution
// approximations. Values are nanoseconds for duration histograms and
// plain counts for depth histograms.
//
// Observe, Mean, Quantile, and Snapshot synchronize on an internal mutex,
// so concurrent observers and scrapers (crossinv -serve) are safe. The
// exported fields remain directly readable for quiescent consumers (the
// experiments harness, tests); only touch them while no Observe runs.
type Histogram struct {
	mu      sync.Mutex
	Buckets [65]int64
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
}

// Observe adds one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.Buckets[bits.Len64(uint64(v))]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Buckets [65]int64
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
}

// Snapshot returns a consistent copy, safe against concurrent Observe.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{Buckets: h.Buckets, Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max}
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound of the q-quantile at bucket resolution:
// the upper edge of the bucket containing it, clamped to the observed
// maximum (so the top bucket — whose nominal edge would overflow int64 for
// values at or above 2^62 — reports Max, and q=1 is exactly Max). q is
// clamped to [0, 1]; an empty histogram reports 0. The result is monotone
// non-decreasing in q.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	if rank < 0 {
		rank = 0
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			// Bucket i covers [2^(i-1), 2^i); its upper edge overflows
			// int64 for i >= 63, and no observed value exceeds Max, so the
			// clamped edge is the tighter (and overflow-free) upper bound.
			if i >= 63 {
				return h.Max
			}
			edge := int64(1) << uint(i)
			if edge > h.Max {
				edge = h.Max
			}
			return edge
		}
	}
	return h.Max
}

// Registry holds named counters, gauges, and histograms — the metrics
// layer fed from the event stream. Counters and gauges are exact (they
// come from the per-kind Summary counters); histograms are built from
// the surviving ring events, so a long run that overflowed its rings
// has exact counts but sampled distributions.
//
// All methods synchronize on an internal mutex, so a scrape handler
// (crossinv -serve) can read a registry other goroutines are feeding.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]int64
	gauges     map[string]float64
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]int64{},
		gauges:     map[string]float64{},
		histograms: map[string]*Histogram{},
	}
}

// AddCounter increments the named counter by d.
func (g *Registry) AddCounter(name string, d int64) {
	g.mu.Lock()
	g.counters[name] += d
	g.mu.Unlock()
}

// Counter returns the named counter's value.
func (g *Registry) Counter(name string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.counters[name]
}

// Counters returns a copy of the counter map.
func (g *Registry) Counters() map[string]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int64, len(g.counters))
	for n, v := range g.counters {
		out[n] = v
	}
	return out
}

// SetGauge sets the named gauge.
func (g *Registry) SetGauge(name string, v float64) {
	g.mu.Lock()
	g.gauges[name] = v
	g.mu.Unlock()
}

// Gauge returns the named gauge's value.
func (g *Registry) Gauge(name string) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gauges[name]
}

// Histogram returns the named histogram, creating it if absent. The
// returned histogram's own methods synchronize independently, so holding
// the result across concurrent Observe calls is safe.
func (g *Registry) Histogram(name string) *Histogram {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.histograms[name]
	if !ok {
		h = &Histogram{}
		g.histograms[name] = h
	}
	return h
}

// spanClass groups begin/end kind pairs into duration histograms. The
// epoch class has two closing kinds (commit and abort).
type spanClass struct {
	name  string
	begin Kind
	ends  []Kind
}

var spanClasses = [...]spanClass{
	{"iteration", KindIterStart, []Kind{KindIterEnd}},
	{"task", KindTaskStart, []Kind{KindTaskEnd}},
	{"stall", KindStallBegin, []Kind{KindStallEnd}},
	{"queue-full", KindQueueFullBegin, []Kind{KindQueueFullEnd}},
	{"queue-empty", KindQueueEmptyBegin, []Kind{KindQueueEmptyEnd}},
	{"barrier-wait", KindBarrierWaitBegin, []Kind{KindBarrierWaitEnd}},
	{"range-stall", KindRangeStallBegin, []Kind{KindRangeStallEnd}},
	{"epoch", KindEpochBegin, []Kind{KindEpochCommit, KindEpochAbort}},
	{"recovery", KindRecoveryBegin, []Kind{KindRecoveryEnd}},
}

// classOf maps a kind to its span class index and role; ok is false for
// instantaneous kinds.
func classOf(k Kind) (idx int, isBegin bool, ok bool) {
	for i, c := range spanClasses {
		if k == c.begin {
			return i, true, true
		}
		for _, e := range c.ends {
			if k == e {
				return i, false, true
			}
		}
	}
	return 0, false, false
}

// LiveMetrics derives the counter-and-gauge half of the registry from the
// recorder's exact per-kind counters: one counter per event kind, plus
// totals and drop-rate gauges. Unlike Metrics it never walks the ring
// buffers, so it is safe to call while engines are emitting — this is the
// registry the -serve scrape surface renders. On a nil recorder it
// returns an empty registry.
func (r *Recorder) LiveMetrics() *Registry {
	g := NewRegistry()
	if r == nil {
		return g
	}
	sum := r.Summary()
	for k := Kind(0); k < KindCount; k++ {
		if sum.Counts[k] != 0 {
			g.AddCounter("events."+k.String(), sum.Counts[k])
		}
	}
	// The checker's union pre-filter encodes its outcome in argument A
	// (1 = passed, precise scan followed), so the exact hit/miss split —
	// the cheap checker-pressure signal — falls out of the counters.
	if c := sum.Counts[KindSigPrefilter]; c != 0 {
		hits := sum.Sums[KindSigPrefilter]
		g.AddCounter("sig.prefilter.hit", hits)
		g.AddCounter("sig.prefilter.miss", c-hits)
	}
	g.AddCounter("trace.events", sum.Events)
	g.AddCounter("trace.dropped", sum.Dropped)
	g.SetGauge("trace.lanes", float64(sum.Lanes))
	if sum.Events > 0 {
		g.SetGauge("trace.drop.rate", float64(sum.Dropped)/float64(sum.Events))
	}
	return g
}

// Metrics derives the registry from the recorder: one counter per event
// kind (exact), stall/queue/iteration/epoch duration histograms and a
// queue-depth histogram (from surviving ring events), and gauges for
// lane count and drop rate. The histogram pass reads the ring buffers,
// so call Metrics only while the recorded engines are quiescent; use
// LiveMetrics for a concurrent scrape. On a nil recorder it returns an
// empty registry.
func (r *Recorder) Metrics() *Registry {
	g := r.LiveMetrics()
	if r == nil {
		return g
	}

	for _, t := range r.laneList() {
		var open [len(spanClasses)][]int64 // start-time stacks per class
		for _, e := range t.events() {
			if e.Kind == KindQueueDepth {
				g.Histogram("queue.depth").Observe(e.A)
				continue
			}
			idx, isBegin, ok := classOf(e.Kind)
			if !ok {
				continue
			}
			if isBegin {
				open[idx] = append(open[idx], e.Nanos)
				continue
			}
			if n := len(open[idx]); n > 0 {
				start := open[idx][n-1]
				open[idx] = open[idx][:n-1]
				g.Histogram(spanClasses[idx].name + ".ns").Observe(e.Nanos - start)
			}
			// An end without a surviving begin means the begin was
			// overwritten by ring wraparound; skip it.
		}
	}
	return g
}

// WriteText renders the registry as a stable, human-readable listing:
// counters, then gauges, then histograms, each alphabetically.
func (g *Registry) WriteText(w io.Writer) error {
	// Deep-copy under the lock: the maps are mutated in place by
	// concurrent feeders, so rendering must work from a snapshot.
	g.mu.Lock()
	counters := make(map[string]int64, len(g.counters))
	for n, v := range g.counters {
		counters[n] = v
	}
	gauges := make(map[string]float64, len(g.gauges))
	for n, v := range g.gauges {
		gauges[n] = v
	}
	histograms := make(map[string]*Histogram, len(g.histograms))
	for n, h := range g.histograms {
		histograms[n] = h
	}
	g.mu.Unlock()

	var names []string
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "counter   %-28s %d\n", n, counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "gauge     %-28s %.3f\n", n, gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := histograms[n]
		s := h.Snapshot()
		if _, err := fmt.Fprintf(w, "histogram %-28s count %-8d mean %-12.0f p50<=%-12d max %d\n",
			n, s.Count, h.Mean(), h.Quantile(0.5), s.Max); err != nil {
			return err
		}
	}
	return nil
}

// TotalDuration is a convenience: the summed duration of the named span
// histogram as a time.Duration.
func (g *Registry) TotalDuration(name string) time.Duration {
	g.mu.Lock()
	h, ok := g.histograms[name]
	g.mu.Unlock()
	if ok {
		return time.Duration(h.Snapshot().Sum)
	}
	return 0
}

package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSpanLifecycle covers the request-span basics: ids are unique and
// increasing, parents link, Spans reconstructs the tree with intervals,
// and the nil/zero handles are inert.
func TestSpanLifecycle(t *testing.T) {
	r := NewRecorderCap(64)
	lane := r.Lane(LaneRequest)

	root := lane.BeginSpan(SpanInvocation, 0)
	if root.ID() != 1 {
		t.Fatalf("first span id = %d, want 1", root.ID())
	}
	adm := lane.BeginSpan(SpanAdmission, root.ID())
	adm.End()
	exec := lane.BeginSpan(SpanExecute, root.ID())
	// A controller span on another lane parented under exec.
	win := r.Lane(LaneControl).BeginSpan(SpanWindow, exec.ID())
	win.End()
	exec.End()
	root.End()

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("Spans() = %d spans, want 4: %+v", len(spans), spans)
	}
	byKind := map[string]SpanInfo{}
	for _, s := range spans {
		byKind[s.Kind] = s
	}
	if byKind["admission"].Parent != root.ID() || byKind["execute"].Parent != root.ID() {
		t.Errorf("admission/execute not parented under invocation: %+v", spans)
	}
	if byKind["window"].Parent != exec.ID() {
		t.Errorf("window parent = %d, want execute %d", byKind["window"].Parent, exec.ID())
	}
	if byKind["window"].Lane != LaneControl {
		t.Errorf("window lane = %d, want LaneControl", byKind["window"].Lane)
	}
	for k, s := range byKind {
		if s.EndNs == 0 || s.EndNs < s.StartNs {
			t.Errorf("%s: interval [%d, %d] not closed/ordered", k, s.StartNs, s.EndNs)
		}
	}
	if byKind["invocation"].EndNs < byKind["window"].EndNs {
		t.Errorf("root closed before child: %+v", spans)
	}

	// Disabled paths: nil lane and the zero Span are no-ops.
	var nilLane *ThreadTrace
	s := nilLane.BeginSpan(SpanCompile, 7)
	if s.ID() != 0 {
		t.Errorf("nil lane span id = %d, want 0", s.ID())
	}
	s.End()
	var nilRec *Recorder
	nilRec.SetInvocation("x")
	nilRec.Reset()
	if nilRec.Invocation() != "" || nilRec.Spans() != nil {
		t.Error("nil recorder not inert")
	}
}

// TestRecorderReset pins the pooling contract: Reset rewinds counters,
// span ids, and the invocation label while reusing lane rings.
func TestRecorderReset(t *testing.T) {
	r := NewRecorderCap(32)
	r.SetInvocation("inv-1")
	lane := r.Lane(LaneRequest)
	lane.BeginSpan(SpanInvocation, 0).End()
	lane.Emit(KindMisspec, 1, 0, 4)
	if s := r.Summary(); s.Events == 0 {
		t.Fatal("no events before reset")
	}

	r.Reset()
	if r.Invocation() != "" {
		t.Errorf("invocation survived reset: %q", r.Invocation())
	}
	if s := r.Summary(); s.Events != 0 || s.Counts[KindMisspec] != 0 {
		t.Errorf("summary not reset: %+v", s)
	}
	if len(r.Spans()) != 0 {
		t.Errorf("spans survived reset: %+v", r.Spans())
	}
	// Lane handles stay valid and span ids restart.
	sp := lane.BeginSpan(SpanInvocation, 0)
	if sp.ID() != 1 {
		t.Errorf("span id after reset = %d, want 1", sp.ID())
	}
	sp.End()
	if got := len(r.Spans()); got != 1 {
		t.Errorf("spans after reset = %d, want 1", got)
	}
}

// TestChromeSpansAndProcs checks that spans export as balanced B/E pairs
// named by their kind, the invocation labels the process track, and the
// multi-process writer keeps per-(pid,tid) validation happy.
func TestChromeSpansAndProcs(t *testing.T) {
	r := NewRecorderCap(64)
	r.SetInvocation("inv-42")
	lane := r.Lane(LaneRequest)
	root := lane.BeginSpan(SpanInvocation, 0)
	c := lane.BeginSpan(SpanCacheLookup, root.ID())
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("ValidateChrome: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"invocation"`, `"cache.lookup"`, "invocation inv-42", `"request"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome output missing %s:\n%s", want, out)
		}
	}

	// Two invocations as separate process tracks, deliberately reusing
	// the same lanes so only the (pid, tid) keying keeps them balanced.
	r2 := NewRecorderCap(64)
	l2 := r2.Lane(LaneRequest)
	root2 := l2.BeginSpan(SpanInvocation, 0)
	root2.End()

	var mp bytes.Buffer
	err := WriteChromeProcs(&mp, []ChromeProc{
		{PID: 0, Name: "invocation inv-42", Events: r.Events()},
		{PID: 1, Name: "invocation inv-43", Events: r2.Events()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(mp.Bytes()); err != nil {
		t.Fatalf("ValidateChrome(procs): %v\n%s", err, mp.String())
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(mp.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	names := map[int]string{}
	for _, e := range f.TraceEvents {
		if e.Name == "process_name" {
			names[e.PID], _ = e.Args["name"].(string)
		}
	}
	if names[0] != "invocation inv-42" || names[1] != "invocation inv-43" {
		t.Errorf("process names = %v", names)
	}
}

// TestLiveMetricsPrefilterSplit pins the hit/miss derivation from the
// KindSigPrefilter counters: A carries the hit flag, so hits = Sums and
// misses = Counts - Sums.
func TestLiveMetricsPrefilterSplit(t *testing.T) {
	r := NewRecorderCap(32)
	lane := r.Lane(LaneCheckerBase)
	lane.Emit(KindSigPrefilter, 1, 0, 0) // hit
	lane.Emit(KindSigPrefilter, 0, 1, 0) // miss
	lane.Emit(KindSigPrefilter, 0, 2, 0) // miss
	g := r.LiveMetrics()
	if got := g.Counter("sig.prefilter.hit"); got != 1 {
		t.Errorf("hit = %d, want 1", got)
	}
	if got := g.Counter("sig.prefilter.miss"); got != 2 {
		t.Errorf("miss = %d, want 2", got)
	}
}

package trace

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestHookSeesEveryEmission asserts the injection hook fires once per
// emitted event, on the emitting thread, with the event's arguments — the
// contract the chaos fault injector relies on to perturb schedules at
// trace points.
func TestHookSeesEveryEmission(t *testing.T) {
	rec := NewRecorder()
	var calls atomic.Int64
	var wrongArgs atomic.Int64
	rec.SetHook(func(lane int32, k Kind, a, b, c int64) {
		calls.Add(1)
		if k == KindIterStart && a != int64(lane)*10 {
			wrongArgs.Add(1)
		}
	})

	const lanes, per = 4, 100
	var wg sync.WaitGroup
	for l := int32(0); l < lanes; l++ {
		wg.Add(1)
		go func(l int32) {
			defer wg.Done()
			tt := rec.Lane(l)
			for i := 0; i < per; i++ {
				tt.Emit(KindIterStart, int64(l)*10, int64(i), 0)
			}
		}(l)
	}
	wg.Wait()

	if got := calls.Load(); got != lanes*per {
		t.Errorf("hook calls = %d, want %d", got, lanes*per)
	}
	if wrongArgs.Load() != 0 {
		t.Errorf("hook observed %d events with mismatched arguments", wrongArgs.Load())
	}
	// The hook must not perturb the exact counters.
	if sum := rec.Summary(); sum.Counts[KindIterStart] != lanes*per {
		t.Errorf("summary count = %d, want %d", sum.Counts[KindIterStart], lanes*per)
	}
}

// TestHookNilSafe asserts hook installation is a no-op on nil recorders
// and that emission without a hook still works.
func TestHookNilSafe(t *testing.T) {
	var nilRec *Recorder
	nilRec.SetHook(func(int32, Kind, int64, int64, int64) {}) // must not panic
	nilRec.Lane(0).Emit(KindIterStart, 0, 0, 0)

	rec := NewRecorder()
	rec.Lane(0).Emit(KindIterStart, 1, 2, 3) // no hook installed
	if rec.Summary().Counts[KindIterStart] != 1 {
		t.Error("emission without hook lost")
	}
}

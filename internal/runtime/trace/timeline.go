package trace

import (
	"fmt"
	"io"
	"time"
)

// laneSummary is one row of the plain-text timeline: how a thread spent
// its recorded time.
type laneSummary struct {
	lane    int32
	events  int64
	dropped int64
	first   int64
	last    int64
	busy    int64 // iteration + task span time
	stalled int64 // dependence + range + barrier-wait time
	queued  int64 // queue full/empty backoff time
}

// WriteTimeline renders a per-thread summary of the recorded run: for
// each lane, its event count, covered time span, and how that span
// divides into execution (iteration/task spans), stalls (dependence,
// range, and barrier waits), and queue backoff. Durations come from the
// surviving ring events, so heavily overflowed lanes undercount time
// (the drops column says by how much to distrust a row).
func (r *Recorder) WriteTimeline(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-12s %10s %8s %12s %12s %12s %12s\n",
		"thread", "events", "drops", "span", "busy", "stalled", "queue-wait"); err != nil {
		return err
	}
	if r == nil {
		return nil
	}
	for _, t := range r.laneList() {
		s := laneSummary{lane: t.lane, events: int64(t.n.Load()), dropped: t.dropped(), first: -1}
		var open [len(spanClasses)][]int64
		for _, e := range t.events() {
			if s.first < 0 {
				s.first = e.Nanos
			}
			s.last = e.Nanos
			idx, isBegin, ok := classOf(e.Kind)
			if !ok {
				continue
			}
			if isBegin {
				open[idx] = append(open[idx], e.Nanos)
				continue
			}
			n := len(open[idx])
			if n == 0 {
				continue
			}
			d := e.Nanos - open[idx][n-1]
			open[idx] = open[idx][:n-1]
			switch spanClasses[idx].name {
			case "iteration", "task":
				s.busy += d
			case "stall", "range-stall", "barrier-wait":
				s.stalled += d
			case "queue-full", "queue-empty":
				s.queued += d
			}
		}
		span := time.Duration(0)
		if s.first >= 0 {
			span = time.Duration(s.last - s.first)
		}
		if _, err := fmt.Fprintf(w, "%-12s %10d %8d %12v %12v %12v %12v\n",
			LaneName(s.lane), s.events, s.dropped,
			span.Round(time.Microsecond),
			time.Duration(s.busy).Round(time.Microsecond),
			time.Duration(s.stalled).Round(time.Microsecond),
			time.Duration(s.queued).Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}

package trace

import (
	"context"
	"runtime/pprof"
)

// Labeled runs fn with pprof goroutine labels {engine, lane} set, so CPU
// profiles attribute engine time to its lanes (scheduler, worker, checker,
// control). Every engine wraps its thread bodies in Labeled; goroutines
// spawned inside fn inherit the labels until they set their own, so helper
// goroutines stay attributed to the engine that started them. The previous
// label set is restored when fn returns, which is what lets the adaptive
// controller relabel the same OS threads per window.
//
// The lane vocabulary matches LaneName: "scheduler" (DOMORE's dedicated
// scheduler), "worker" (all engines), "checker" (SPECCROSS shards), and
// "control" (SPECCROSS segment control and the adaptive monitor).
func Labeled(engine, lane string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("engine", engine, "lane", lane), func(context.Context) {
		fn()
	})
}

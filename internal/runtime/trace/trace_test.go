package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	th := r.Lane(0)
	if th != nil {
		t.Fatal("nil recorder returned a non-nil lane")
	}
	if th.Enabled() {
		t.Fatal("nil lane reports enabled")
	}
	th.Emit(KindIterStart, 1, 2, 3) // must not panic
	if s := r.Summary(); s.Events != 0 || s.Lanes != 0 {
		t.Fatalf("nil recorder summary = %+v, want zero", s)
	}
	if ev := r.Events(); ev != nil {
		t.Fatalf("nil recorder events = %v, want nil", ev)
	}
	var buf bytes.Buffer
	if err := r.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryCountsExactUnderOverflow(t *testing.T) {
	r := NewRecorderCap(16)
	th := r.Lane(3)
	const n = 1000
	for i := 0; i < n; i++ {
		th.Emit(KindAddrCheck, 4, 0, int64(i))
	}
	s := r.Summary()
	if s.Counts[KindAddrCheck] != n {
		t.Errorf("count = %d, want %d (counts must survive ring overflow)", s.Counts[KindAddrCheck], n)
	}
	if s.Sums[KindAddrCheck] != 4*n {
		t.Errorf("sum = %d, want %d", s.Sums[KindAddrCheck], 4*n)
	}
	if s.Dropped != n-16 {
		t.Errorf("dropped = %d, want %d", s.Dropped, n-16)
	}
	if got := len(r.Events()); got != 16 {
		t.Errorf("surviving events = %d, want 16", got)
	}
	// Oldest events were overwritten: the survivors are the newest 16.
	ev := r.Events()
	if ev[0].C != n-16 || ev[len(ev)-1].C != n-1 {
		t.Errorf("surviving range [%d, %d], want [%d, %d]", ev[0].C, ev[len(ev)-1].C, n-16, n-1)
	}
}

func TestLanesAreConcurrentlyRegistrable(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(lane int32) {
			defer wg.Done()
			th := r.Lane(lane)
			for j := 0; j < 100; j++ {
				th.Emit(KindIterStart, int64(j), 0, 0)
				th.Emit(KindIterEnd, int64(j), 0, 0)
			}
		}(int32(i))
	}
	wg.Wait()
	s := r.Summary()
	if s.Lanes != 8 {
		t.Errorf("lanes = %d, want 8", s.Lanes)
	}
	if s.Counts[KindIterStart] != 800 || s.Counts[KindIterEnd] != 800 {
		t.Errorf("iter counts = %d/%d, want 800/800", s.Counts[KindIterStart], s.Counts[KindIterEnd])
	}
}

func TestLaneReuseReturnsSameHandle(t *testing.T) {
	r := NewRecorder()
	if r.Lane(5) != r.Lane(5) {
		t.Fatal("Lane(5) returned distinct handles")
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < KindCount; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestLaneNames(t *testing.T) {
	for _, tc := range []struct {
		lane int32
		want string
	}{
		{0, "worker 0"}, {12, "worker 12"},
		{LaneScheduler, "scheduler"}, {LaneControl, "control"},
		{LaneCheckerBase, "checker 0"}, {LaneCheckerBase - 2, "checker 2"},
	} {
		if got := LaneName(tc.lane); got != tc.want {
			t.Errorf("LaneName(%d) = %q, want %q", tc.lane, got, tc.want)
		}
	}
}

func TestMetricsFromEvents(t *testing.T) {
	r := NewRecorder()
	th := r.Lane(0)
	th.Emit(KindStallBegin, 1, 7, 0)
	th.Emit(KindStallEnd, 1, 7, 0)
	th.Emit(KindQueueDepth, 5, 0, 0)
	th.Emit(KindQueueDepth, 9, 0, 0)
	th.Emit(KindIterStart, 0, 0, 0)
	th.Emit(KindIterEnd, 0, 0, 0)

	g := r.Metrics()
	if got := g.Counter("events.stall.begin"); got != 1 {
		t.Errorf("stall.begin counter = %d, want 1", got)
	}
	if h := g.Histogram("stall.ns"); h.Count != 1 {
		t.Errorf("stall histogram count = %d, want 1", h.Count)
	}
	if h := g.Histogram("queue.depth"); h.Count != 2 || h.Max != 9 || h.Min != 5 {
		t.Errorf("queue depth histogram = %+v, want count 2 min 5 max 9", h)
	}
	if g.Gauge("trace.lanes") != 1 {
		t.Errorf("trace.lanes gauge = %v, want 1", g.Gauge("trace.lanes"))
	}
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter", "gauge", "histogram", "queue.depth"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("WriteText output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}
	if h.Count != 5 || h.Sum != 1015 {
		t.Fatalf("count/sum = %d/%d", h.Count, h.Sum)
	}
	if h.Min != 1 || h.Max != 1000 {
		t.Fatalf("min/max = %d/%d", h.Min, h.Max)
	}
	if q := h.Quantile(0.5); q < 4 || q > 8 {
		t.Errorf("p50 = %d, want within [4, 8]", q)
	}
	if m := h.Mean(); m != 203 {
		t.Errorf("mean = %v, want 203", m)
	}
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event JSON format
// (the "JSON Array Format" chrome://tracing and Perfetto load).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level object form of the format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID maps a lane to a non-negative Chrome thread id with a
// stable, legible ordering: control=0, scheduler=1, checkers=2…,
// workers from 10.
func chromeTID(lane int32) int {
	switch {
	case lane >= 0:
		return 10 + int(lane)
	case lane == LaneControl:
		return 0
	case lane == LaneScheduler:
		return 1
	default: // checker shard s at lane LaneCheckerBase-s
		return 2 + int(LaneCheckerBase-lane)
	}
}

// spanArgs names the A/B/C arguments for span-class begin events so the
// Chrome UI shows meaningful fields.
func eventArgs(e Event) map[string]any {
	switch e.Kind {
	case KindIterStart, KindIterEnd, KindTaskStart, KindTaskEnd:
		return map[string]any{"epoch": e.A, "index": e.B, "global": e.C}
	case KindStallBegin, KindStallEnd:
		return map[string]any{"depTid": e.A, "depIter": e.B}
	case KindSyncCond:
		return map[string]any{"target": e.A, "depTid": e.B, "depIter": e.C}
	case KindRangeStallBegin, KindRangeStallEnd:
		return map[string]any{"global": e.A, "distance": e.B}
	case KindEpochBegin, KindEpochAbort, KindRecoveryBegin:
		return map[string]any{"start": e.A, "end": e.B}
	case KindEpochCommit, KindRecoveryEnd:
		return map[string]any{"epochs": e.A, "start": e.B, "end": e.C}
	case KindMisspec:
		return map[string]any{"reason": e.A, "start": e.B, "end": e.C}
	case KindWindowBegin:
		return map[string]any{"start": e.A, "end": e.B, "engine": e.C}
	case KindEngineSwitch:
		return map[string]any{"from": e.A, "to": e.B, "epoch": e.C}
	case KindQueueDepth:
		return nil // rendered as a counter event
	default:
		return map[string]any{"a": e.A, "b": e.B, "c": e.C}
	}
}

// WriteChrome writes the recorder's surviving events in Chrome
// trace_event JSON. Spans become balanced B/E pairs per thread (ends
// whose begins were overwritten by ring wraparound are dropped so the
// output always nests), instants become "i" events, and queue-depth
// samples become "C" counter events. The file loads directly in
// chrome://tracing or https://ui.perfetto.dev.
func (r *Recorder) WriteChrome(w io.Writer) error {
	var out []chromeEvent
	if r != nil {
		for _, t := range r.laneList() {
			tid := chromeTID(t.lane)
			out = append(out, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 0, TID: tid,
				Args: map[string]any{"name": LaneName(t.lane)},
			})
			var depth [len(spanClasses)]int
			for _, e := range t.events() {
				ts := float64(e.Nanos) / 1e3
				if e.Kind == KindQueueDepth {
					out = append(out, chromeEvent{
						Name: "queue depth", Phase: "C", TS: ts, PID: 0, TID: tid,
						Args: map[string]any{"depth": e.A},
					})
					continue
				}
				if idx, isBegin, ok := classOf(e.Kind); ok {
					if isBegin {
						depth[idx]++
						out = append(out, chromeEvent{
							Name: spanClasses[idx].name, Phase: "B", TS: ts, PID: 0, TID: tid,
							Args: eventArgs(e),
						})
					} else if depth[idx] > 0 {
						depth[idx]--
						out = append(out, chromeEvent{
							Name: spanClasses[idx].name, Phase: "E", TS: ts, PID: 0, TID: tid,
						})
					}
					continue
				}
				out = append(out, chromeEvent{
					Name: e.Kind.String(), Phase: "i", TS: ts, PID: 0, TID: tid,
					Scope: "t", Args: eventArgs(e),
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ns"})
}

// ValidateChrome checks that data is a structurally sound Chrome
// trace_event file as WriteChrome emits it: a traceEvents array whose
// entries have a name, a known phase, and a non-negative timestamp, and
// whose B/E events balance per thread with matching names (unclosed
// spans at end-of-trace are allowed — a panicked worker legitimately
// leaves one open). The CI trace job runs this (via cmd/tracecheck)
// against a freshly produced file.
func ValidateChrome(data []byte) error {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("trace: no traceEvents")
	}
	stacks := map[int][]string{}
	for i, e := range f.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		switch e.Phase {
		case "B":
			stacks[e.TID] = append(stacks[e.TID], e.Name)
		case "E":
			st := stacks[e.TID]
			if len(st) == 0 {
				return fmt.Errorf("trace: event %d: E %q on tid %d without matching B", i, e.Name, e.TID)
			}
			if top := st[len(st)-1]; top != e.Name {
				return fmt.Errorf("trace: event %d: E %q does not match open B %q", i, e.Name, top)
			}
			stacks[e.TID] = st[:len(st)-1]
		case "i", "C", "M", "X":
			// instant, counter, metadata, complete: no pairing.
		default:
			return fmt.Errorf("trace: event %d has unknown phase %q", i, e.Phase)
		}
		if e.Phase != "M" && e.TS < 0 {
			return fmt.Errorf("trace: event %d has negative timestamp", i)
		}
	}
	return nil
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event JSON format
// (the "JSON Array Format" chrome://tracing and Perfetto load).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level object form of the format.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID maps a lane to a non-negative Chrome thread id with a
// stable, legible ordering: request=0, control=1, scheduler=2,
// checkers=3…, workers from 10.
func chromeTID(lane int32) int {
	switch {
	case lane >= 0:
		return 10 + int(lane)
	case lane == LaneRequest:
		return 0
	case lane == LaneControl:
		return 1
	case lane == LaneScheduler:
		return 2
	default: // checker shard s at lane LaneCheckerBase-s
		return 3 + int(LaneCheckerBase-lane)
	}
}

// spanArgs names the A/B/C arguments for span-class begin events so the
// Chrome UI shows meaningful fields.
func eventArgs(e Event) map[string]any {
	switch e.Kind {
	case KindIterStart, KindIterEnd, KindTaskStart, KindTaskEnd:
		return map[string]any{"epoch": e.A, "index": e.B, "global": e.C}
	case KindStallBegin, KindStallEnd:
		return map[string]any{"depTid": e.A, "depIter": e.B}
	case KindSyncCond:
		return map[string]any{"target": e.A, "depTid": e.B, "depIter": e.C}
	case KindRangeStallBegin, KindRangeStallEnd:
		return map[string]any{"global": e.A, "distance": e.B}
	case KindEpochBegin, KindEpochAbort, KindRecoveryBegin:
		return map[string]any{"start": e.A, "end": e.B}
	case KindEpochCommit, KindRecoveryEnd:
		return map[string]any{"epochs": e.A, "start": e.B, "end": e.C}
	case KindMisspec:
		return map[string]any{"reason": e.A, "start": e.B, "end": e.C}
	case KindWindowBegin:
		return map[string]any{"start": e.A, "end": e.B, "engine": e.C}
	case KindEngineSwitch:
		return map[string]any{"from": e.A, "to": e.B, "epoch": e.C}
	case KindQueueDepth:
		return nil // rendered as a counter event
	default:
		return map[string]any{"a": e.A, "b": e.B, "c": e.C}
	}
}

// appendLaneChrome converts one lane's events (oldest first) into Chrome
// events under the given process, keeping B/E pairs balanced: class ends
// and span ends whose begins were overwritten by ring wraparound are
// dropped so the output always nests.
func appendLaneChrome(out []chromeEvent, pid int, lane int32, events []Event) []chromeEvent {
	tid := chromeTID(lane)
	out = append(out, chromeEvent{
		Name: "thread_name", Phase: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": LaneName(lane)},
	})
	var depth [len(spanClasses)]int
	var spanStack []string // open request-span names, innermost last
	for _, e := range events {
		ts := float64(e.Nanos) / 1e3
		switch e.Kind {
		case KindQueueDepth:
			out = append(out, chromeEvent{
				Name: "queue depth", Phase: "C", TS: ts, PID: pid, TID: tid,
				Args: map[string]any{"depth": e.A},
			})
			continue
		case KindSpanBegin:
			name := SpanKind(e.C).String()
			spanStack = append(spanStack, name)
			out = append(out, chromeEvent{
				Name: name, Phase: "B", TS: ts, PID: pid, TID: tid,
				Args: map[string]any{"span": e.A, "parent": e.B},
			})
			continue
		case KindSpanEnd:
			if n := len(spanStack); n > 0 {
				// Close the innermost open span: spans nest per lane, and
				// reusing the stacked name keeps B/E balanced even if the
				// matching begin's name was lost to wraparound.
				out = append(out, chromeEvent{
					Name: spanStack[n-1], Phase: "E", TS: ts, PID: pid, TID: tid,
				})
				spanStack = spanStack[:n-1]
			}
			continue
		}
		if idx, isBegin, ok := classOf(e.Kind); ok {
			if isBegin {
				depth[idx]++
				out = append(out, chromeEvent{
					Name: spanClasses[idx].name, Phase: "B", TS: ts, PID: pid, TID: tid,
					Args: eventArgs(e),
				})
			} else if depth[idx] > 0 {
				depth[idx]--
				out = append(out, chromeEvent{
					Name: spanClasses[idx].name, Phase: "E", TS: ts, PID: pid, TID: tid,
				})
			}
			continue
		}
		out = append(out, chromeEvent{
			Name: e.Kind.String(), Phase: "i", TS: ts, PID: pid, TID: tid,
			Scope: "t", Args: eventArgs(e),
		})
	}
	return out
}

// WriteChrome writes the recorder's surviving events in Chrome
// trace_event JSON. Spans become balanced B/E pairs per thread (ends
// whose begins were overwritten by ring wraparound are dropped so the
// output always nests), instants become "i" events, and queue-depth
// samples become "C" counter events. A recorder labeled with an
// invocation id (SetInvocation) names its process track after it. The
// file loads directly in chrome://tracing or https://ui.perfetto.dev.
func (r *Recorder) WriteChrome(w io.Writer) error {
	var out []chromeEvent
	if r != nil {
		if inv := r.invocation; inv != "" {
			out = append(out, chromeEvent{
				Name: "process_name", Phase: "M", PID: 0,
				Args: map[string]any{"name": "invocation " + inv},
			})
		}
		for _, t := range r.laneList() {
			out = appendLaneChrome(out, 0, t.lane, t.events())
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ns"})
}

// ChromeProc is one process track of a multi-invocation Chrome export:
// a pid, a display name (typically the invocation id), and the events to
// render under it.
type ChromeProc struct {
	PID    int
	Name   string
	Events []Event
}

// WriteChromeProcs writes several event sets as separate named process
// tracks in one Chrome trace_event file — the flight recorder uses it to
// dump the retained invocation window with each invocation as its own
// track. Events within a proc are grouped by lane (preserving order
// within each lane) and rendered exactly as WriteChrome renders a
// single recorder.
func WriteChromeProcs(w io.Writer, procs []ChromeProc) error {
	var out []chromeEvent
	for _, p := range procs {
		out = append(out, chromeEvent{
			Name: "process_name", Phase: "M", PID: p.PID,
			Args: map[string]any{"name": p.Name},
		})
		var lanes []int32
		byLane := map[int32][]Event{}
		for _, e := range p.Events {
			if _, ok := byLane[e.Lane]; !ok {
				lanes = append(lanes, e.Lane)
			}
			byLane[e.Lane] = append(byLane[e.Lane], e)
		}
		sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
		for _, lane := range lanes {
			out = appendLaneChrome(out, p.PID, lane, byLane[lane])
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ns"})
}

// ValidateChrome checks that data is a structurally sound Chrome
// trace_event file as WriteChrome emits it: a traceEvents array whose
// entries have a name, a known phase, and a non-negative timestamp, and
// whose B/E events balance per thread with matching names (unclosed
// spans at end-of-trace are allowed — a panicked worker legitimately
// leaves one open). The CI trace job runs this (via cmd/tracecheck)
// against a freshly produced file.
func ValidateChrome(data []byte) error {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("trace: no traceEvents")
	}
	// B/E stacks are per (pid, tid): multi-process files (WriteChromeProcs)
	// legitimately reuse tids across invocation tracks.
	type track struct{ pid, tid int }
	stacks := map[track][]string{}
	for i, e := range f.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		tr := track{e.PID, e.TID}
		switch e.Phase {
		case "B":
			stacks[tr] = append(stacks[tr], e.Name)
		case "E":
			st := stacks[tr]
			if len(st) == 0 {
				return fmt.Errorf("trace: event %d: E %q on pid %d tid %d without matching B", i, e.Name, e.PID, e.TID)
			}
			if top := st[len(st)-1]; top != e.Name {
				return fmt.Errorf("trace: event %d: E %q does not match open B %q", i, e.Name, top)
			}
			stacks[tr] = st[:len(st)-1]
		case "i", "C", "M", "X":
			// instant, counter, metadata, complete: no pairing.
		default:
			return fmt.Errorf("trace: event %d has unknown phase %q", i, e.Phase)
		}
		if e.Phase != "M" && e.TS < 0 {
			return fmt.Errorf("trace: event %d has negative timestamp", i)
		}
	}
	return nil
}

package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// emitRunShape records a miniature engine run: an epoch segment with a
// stall, a task, a misspeculation, and a recovery span.
func emitRunShape(r *Recorder) {
	ctl := r.Lane(LaneControl)
	w0 := r.Lane(0)
	ctl.Emit(KindEpochBegin, 0, 4, 0)
	w0.Emit(KindStallBegin, 1, 9, 0)
	w0.Emit(KindStallEnd, 1, 9, 0)
	w0.Emit(KindTaskStart, 0, 0, 0)
	w0.Emit(KindTaskEnd, 0, 0, 0)
	ctl.Emit(KindMisspec, 1, 0, 4)
	ctl.Emit(KindEpochAbort, 0, 4, 0)
	ctl.Emit(KindRestore, 0, 0, 0)
	ctl.Emit(KindRecoveryBegin, 0, 4, 0)
	ctl.Emit(KindRecoveryEnd, 4, 0, 4)
	ctl.Emit(KindCheckpoint, 4, 0, 0)
}

func TestChromeExportValidates(t *testing.T) {
	r := NewRecorder()
	emitRunShape(r)
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	// The epoch span must close via the abort kind, and the stall and
	// misspeculation must be present — the acceptance criterion is that
	// Chrome shows stall and misspeculation spans.
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, e := range f.TraceEvents {
		names[e["name"].(string)]++
	}
	for _, want := range []string{"epoch", "stall", "task", "misspec", "recovery", "thread_name"} {
		if names[want] == 0 {
			t.Errorf("exported trace missing %q events; have %v", want, names)
		}
	}
}

func TestChromeExportDropsOrphanEnds(t *testing.T) {
	// A ring small enough to overwrite the StallBegin must still export
	// a balanced trace (the orphan StallEnd is dropped).
	r := NewRecorderCap(16)
	th := r.Lane(0)
	th.Emit(KindStallBegin, 0, 0, 0)
	for i := 0; i < 40; i++ {
		th.Emit(KindSchedule, 1, 0, int64(i))
	}
	th.Emit(KindStallEnd, 0, 0, 0)
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("overflowed trace does not validate: %v", err)
	}
}

func TestValidateChromeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"empty":          `{"traceEvents":[]}`,
		"no name":        `{"traceEvents":[{"ph":"i","ts":1,"pid":0,"tid":0}]}`,
		"unknown phase":  `{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":0,"tid":0}]}`,
		"unmatched end":  `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":0,"tid":0}]}`,
		"mismatched end": `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0},{"name":"b","ph":"E","ts":2,"pid":0,"tid":0}]}`,
		"negative ts":    `{"traceEvents":[{"name":"x","ph":"i","ts":-5,"pid":0,"tid":0}]}`,
	}
	for name, data := range cases {
		if err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s: ValidateChrome accepted %q", name, data)
		}
	}
}

func TestValidateChromeAllowsUnclosedSpans(t *testing.T) {
	// A panicked worker leaves a span open; that is legal.
	data := `{"traceEvents":[{"name":"task","ph":"B","ts":1,"pid":0,"tid":10}]}`
	if err := ValidateChrome([]byte(data)); err != nil {
		t.Errorf("unclosed span rejected: %v", err)
	}
}

func TestTimelineOutput(t *testing.T) {
	r := NewRecorder()
	emitRunShape(r)
	var buf bytes.Buffer
	if err := r.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"thread", "control", "worker 0"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

package trace

import "sort"

// Request-scoped spans. A span names one stage of a daemon invocation —
// admission, plan-cache lookup, the §4.4 profile, one adaptive window,
// engine execution — and carries an id, a parent id, and a wall
// interval. Spans ride the existing ring recorder as a pair of events
// (KindSpanBegin/KindSpanEnd), so the hot path inherits the recorder's
// properties: a nil handle costs one pointer comparison, an enabled one
// two ring writes, and no allocation either way (Span is a value).
//
// Span ids are allocated from the recorder's atomic counter, so spans
// emitted on different lanes of the same recorder (the request lane and
// the adaptive controller's LaneControl) never collide and can parent
// each other across lanes.

// SpanKind names the stage a span covers. The code travels in the
// event's C argument.
type SpanKind uint8

const (
	// SpanInvocation is the root span of one daemon /run request; every
	// other span of the invocation descends from it.
	SpanInvocation SpanKind = iota
	// SpanAdmission covers the admission-control wait (semaphore or
	// bounded queue) before the request is allowed to execute.
	SpanAdmission
	// SpanCacheLookup covers the plan-cache probe: key derivation plus
	// the verify-on-load disk read.
	SpanCacheLookup
	// SpanCompile covers frontend parse + loop-nest compilation.
	SpanCompile
	// SpanOracle covers the sequential oracle execution that produces
	// the reference checksum.
	SpanOracle
	// SpanProfile covers the §4.4 profiling pass.
	SpanProfile
	// SpanPlan covers DOMORE plan construction.
	SpanPlan
	// SpanWindow covers one adaptive monitoring window (emitted on
	// LaneControl by the controller, parented under SpanExecute).
	SpanWindow
	// SpanExecute covers the parallel engine execution itself.
	SpanExecute

	// SpanKindCount is the number of span kinds (not itself a kind).
	SpanKindCount
)

var spanKindNames = [SpanKindCount]string{
	SpanInvocation:  "invocation",
	SpanAdmission:   "admission",
	SpanCacheLookup: "cache.lookup",
	SpanCompile:     "compile",
	SpanOracle:      "oracle",
	SpanProfile:     "profile",
	SpanPlan:        "plan",
	SpanWindow:      "window",
	SpanExecute:     "execute",
}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) && spanKindNames[k] != "" {
		return spanKindNames[k]
	}
	return "span"
}

// Span is a by-value handle for an open span. The zero Span (returned by
// BeginSpan on a disabled handle) is inert: End is a no-op and ID
// reports 0, which doubles as the "no parent" sentinel — so code can
// thread parent ids unconditionally whether tracing is on or off.
type Span struct {
	t      *ThreadTrace
	id     int64
	parent int64
	kind   SpanKind
}

// BeginSpan opens a span of the given kind under parent (0 = root) and
// emits its begin event on this lane. On a nil handle it returns the
// inert zero Span.
func (t *ThreadTrace) BeginSpan(k SpanKind, parent int64) Span {
	if t == nil {
		return Span{}
	}
	id := t.rec.spanID.Add(1)
	t.emit(KindSpanBegin, id, parent, int64(k))
	return Span{t: t, id: id, parent: parent, kind: k}
}

// ID returns the span's identifier (0 for the inert zero Span).
func (s Span) ID() int64 { return s.id }

// End closes the span, emitting its end event on the lane that opened
// it. A no-op on the zero Span. Spans on one lane must close in LIFO
// order (they describe nested stages), which the Chrome exporter and
// validator rely on.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.emit(KindSpanEnd, s.id, s.parent, int64(s.kind))
}

// SpanInfo is one reconstructed span: the pairing of a begin and (when
// it survived the ring) an end event. EndNs is 0 for spans still open or
// whose end was overwritten.
type SpanInfo struct {
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	Lane    int32  `json:"lane"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns,omitempty"`
}

// SpansFromEvents reconstructs the span set from an event slice (as
// returned by Recorder.Events or retained in a flight-recorder window),
// pairing begin/end by span id. Ends whose begins were overwritten by
// ring wraparound are dropped. The result is ordered by start time,
// then id.
func SpansFromEvents(events []Event) []SpanInfo {
	var out []SpanInfo
	idx := map[int64]int{}
	for _, e := range events {
		switch e.Kind {
		case KindSpanBegin:
			idx[e.A] = len(out)
			out = append(out, SpanInfo{
				ID: e.A, Parent: e.B, Kind: SpanKind(e.C).String(),
				Lane: e.Lane, StartNs: e.Nanos,
			})
		case KindSpanEnd:
			if i, ok := idx[e.A]; ok {
				out[i].EndNs = e.Nanos
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNs != out[j].StartNs {
			return out[i].StartNs < out[j].StartNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Spans reconstructs the recorder's surviving spans across all lanes.
// Quiescent consumers only (it walks the rings); nil recorders report
// none.
func (r *Recorder) Spans() []SpanInfo {
	if r == nil {
		return nil
	}
	return SpansFromEvents(r.Events())
}

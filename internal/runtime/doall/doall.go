// Package doall implements the intra-invocation parallelization baselines
// from Chapter 2 of the paper: DOALL, DOANY (lock-protected commutative
// operations), and LOCALWRITE (owner-computes with redundant traversal).
// These are the techniques the paper's evaluation pairs with pthread-style
// barriers between invocations; DOMORE and SPECCROSS are measured against
// them.
package doall

import (
	"fmt"
	"sync"

	"crossinv/internal/runtime/barrier"
	"crossinv/internal/runtime/sched"
)

// Loop describes one parallelizable inner-loop invocation of N iterations.
type Loop struct {
	// N is the iteration count.
	N int
	// Body executes iteration i on worker tid.
	Body func(i, tid int)
}

// Run executes a sequence of loop invocations with the classic plan the
// paper's Figure 1.3 shows: each invocation's iterations are split across
// workers by the given assignment, and a barrier separates consecutive
// invocations. Between invocations, the optional serial function runs on the
// barrier's serial thread (the sequential region between parallel loops).
//
// invocations yields the loop for invocation k, or ok=false when done; it is
// called once per invocation on the serial thread.
func Run(workers int, invocations func(k int) (Loop, bool), serial func(k int)) *barrier.Barrier {
	if workers <= 0 {
		panic(fmt.Sprintf("doall: invalid worker count %d", workers))
	}
	bar := barrier.New(workers)

	// The invocation sequence must be materialized identically on every
	// worker; the serial thread fetches it and publishes via this slot.
	type slot struct {
		loop Loop
		ok   bool
	}
	var cur slot

	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for k := 0; ; k++ {
				if bar.Wait() { // serial thread fetches the next invocation
					if serial != nil {
						serial(k)
					}
					cur.loop, cur.ok = invocations(k)
				}
				bar.Wait() // publish barrier: all see cur
				if !cur.ok {
					return
				}
				loop := cur.loop
				for i := tid; i < loop.N; i += workers {
					loop.Body(i, tid)
				}
				bar.Wait() // end-of-invocation barrier (the paper's bottleneck)
			}
		}(tid)
	}
	wg.Wait()
	return bar
}

// RunDOANY executes one loop invocation where cross-iteration dependences
// are commutative operations protected by locks (§2.2, Fig 2.3(b)). lockIDs
// returns the indices of the locks iteration i must hold; locks are acquired
// in ascending index order to avoid deadlock.
func RunDOANY(workers int, loop Loop, lockIDs func(i int) []int, locks []sync.Mutex) {
	if workers <= 0 {
		panic(fmt.Sprintf("doall: invalid worker count %d", workers))
	}
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := tid; i < loop.N; i += workers {
				ids := lockIDs(i)
				for _, id := range ids {
					locks[id].Lock()
				}
				loop.Body(i, tid)
				for j := len(ids) - 1; j >= 0; j-- {
					locks[ids[j]].Unlock()
				}
			}
		}(tid)
	}
	wg.Wait()
}

// RunLOCALWRITE executes one loop invocation under the owner-computes rule
// (§2.2, Fig 2.3(c)): every worker traverses all iterations (the redundant
// computation the paper charges against LOCALWRITE), and the body receives
// an owns predicate so it performs only the updates owned by the executing
// worker.
//
// owner maps the address an update targets to its owning worker, using the
// supplied chunked partition.
func RunLOCALWRITE(workers int, n int, partition *sched.LocalWrite, body func(i, tid int, owns func(addr uint64) bool)) {
	if workers <= 0 {
		panic(fmt.Sprintf("doall: invalid worker count %d", workers))
	}
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			owns := func(addr uint64) bool { return partition.Owner(addr, workers) == tid }
			for i := 0; i < n; i++ { // every worker walks every iteration
				body(i, tid, owns)
			}
		}(tid)
	}
	wg.Wait()
}

// RunWorkStealing executes one loop invocation with a work-stealing pool
// (the §3.3.3 future-work scheduling policy, used for the scheduling-policy
// ablation). Iterations may only be independent.
func RunWorkStealing(workers int, loop Loop) {
	pool := sched.NewWorkStealing(workers, int64(loop.N))
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				i, ok := pool.Next(tid)
				if !ok {
					return
				}
				loop.Body(int(i), tid)
			}
		}(tid)
	}
	wg.Wait()
}

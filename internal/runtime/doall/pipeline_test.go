package doall

import (
	"sync/atomic"
	"testing"
)

func TestRunDOACROSSSerializesDependentPrefix(t *testing.T) {
	// The Fig 2.4 loop: cost += doit(node) — a cross-iteration recurrence.
	// doit (the parallel part) runs before wait; the accumulation runs
	// between wait and post and must observe program order.
	const n = 500
	var cost int64
	partial := make([]int64, n)
	RunDOACROSS(4, n, func(i int, wait, post func()) {
		v := int64(i * i % 97) // doit: independent work
		wait()
		cost += v // dependent section, ordered by wait/post
		partial[i] = cost
		post()
	})
	var want int64
	for i := 0; i < n; i++ {
		want += int64(i * i % 97)
		if partial[i] != want {
			t.Fatalf("prefix sum at %d = %d, want %d (ordering violated)", i, partial[i], want)
		}
	}
	if cost != want {
		t.Fatalf("cost = %d, want %d", cost, want)
	}
}

func TestRunDOACROSSPostIsIdempotent(t *testing.T) {
	const n = 100
	var ran atomic.Int64
	RunDOACROSS(3, n, func(i int, wait, post func()) {
		wait()
		post()
		post() // explicit double-post must be harmless
		ran.Add(1)
	})
	if ran.Load() != n {
		t.Fatalf("ran %d iterations, want %d", ran.Load(), n)
	}
}

func TestRunDOACROSSInvalidWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunDOACROSS(0, 1, nil)
}

func TestRunDSWPPipelineOrder(t *testing.T) {
	// Three stages forming the Fig 2.5(b) pipeline: traverse (produce a
	// value), compute, accumulate. The accumulator sees values in
	// iteration order because queues preserve FIFO.
	const n = 1000
	var sum int64
	got := make([]int64, 0, n)
	RunDSWP(n, []func(i int, in int64) int64{
		func(i int, _ int64) int64 { return int64(i) * 3 },
		func(i int, in int64) int64 { return in + 1 },
		func(i int, in int64) int64 {
			sum += in
			got = append(got, in)
			return 0
		},
	})
	if len(got) != n {
		t.Fatalf("accumulated %d values", len(got))
	}
	var want int64
	for i := 0; i < n; i++ {
		v := int64(i)*3 + 1
		want += v
		if got[i] != v {
			t.Fatalf("value %d = %d, want %d (pipeline order violated)", i, got[i], v)
		}
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestRunDSWPSingleStage(t *testing.T) {
	var count int
	RunDSWP(10, []func(i int, in int64) int64{
		func(i int, _ int64) int64 { count++; return 0 },
	})
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
}

func TestRunDSWPNoStages(t *testing.T) {
	RunDSWP(5, nil) // must not hang or panic
}

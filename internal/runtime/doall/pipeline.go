package doall

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"crossinv/internal/runtime/queue"
)

// RunDOACROSS executes one loop whose iterations carry dependences on their
// predecessors (§2.2, Figs 2.4–2.5(a)): iterations are dealt round-robin to
// workers, and the body receives wait/post primitives that enforce the
// cross-iteration dependence — iteration i's wait blocks until iteration
// i−1 has posted, so the code between post and the end of the body runs in
// parallel with other threads while the dependent prefix is serialized.
func RunDOACROSS(workers, n int, body func(i int, wait, post func())) {
	if workers <= 0 {
		panic(fmt.Sprintf("doall: invalid worker count %d", workers))
	}
	// posted[i] flips once iteration i's dependence output is ready.
	posted := make([]atomic.Bool, n+1)
	posted[0].Store(true) // iteration 0 has no predecessor
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := tid; i < n; i += workers {
				wait := func() {
					for spins := 0; !posted[i].Load(); spins++ {
						if spins > 16 {
							runtime.Gosched()
						}
					}
				}
				post := func() { posted[i+1].Store(true) }
				body(i, wait, post)
				post() // idempotent: guarantee the successor unblocks
			}
		}(tid)
	}
	wg.Wait()
}

// RunDSWP executes one loop under decoupled software pipelining (§2.2,
// Fig 2.5(b)): the body is split into stages, each stage runs on its own
// thread processing every iteration in order, and values flow strictly
// forward from stage s to stage s+1 through lock-free queues — the
// unidirectional pipeline that, unlike DOACROSS, tolerates inter-thread
// latency.
//
// stages[s] receives the iteration index and the value produced by the
// previous stage (zero for stage 0) and returns the value for the next.
func RunDSWP(n int, stages []func(i int, in int64) int64) {
	if len(stages) == 0 {
		return
	}
	queues := make([]*queue.SPSC[int64], len(stages)-1)
	for i := range queues {
		queues[i] = queue.NewSPSC[int64](256)
	}
	var wg sync.WaitGroup
	for s := range stages {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				var in int64
				if s > 0 {
					in = queues[s-1].Consume()
				}
				out := stages[s](i, in)
				if s < len(stages)-1 {
					queues[s].Produce(out)
				}
			}
		}(s)
	}
	wg.Wait()
}

package doall

import (
	"sync"
	"sync/atomic"
	"testing"

	"crossinv/internal/runtime/sched"
)

func TestRunMatchesSequentialStencil(t *testing.T) {
	// Two alternating loops with cross-invocation dependences (the Fig 1.3
	// program): L1 writes A from B, L2 writes B from A. Barriers make the
	// parallel result identical to sequential execution.
	const m = 64
	const steps = 10
	seqA := make([]int64, m+1)
	seqB := make([]int64, m+2)
	parA := make([]int64, m+1)
	parB := make([]int64, m+2)
	for i := range seqB {
		seqB[i] = int64(i)
		parB[i] = int64(i)
	}

	for tstep := 0; tstep < steps; tstep++ {
		for i := 0; i < m; i++ {
			seqA[i] = seqB[i] + seqB[i+1]
		}
		for j := 1; j < m+1; j++ {
			seqB[j] = seqA[j-1] + seqA[j]
		}
	}

	Run(4, func(k int) (Loop, bool) {
		if k >= 2*steps {
			return Loop{}, false
		}
		if k%2 == 0 {
			return Loop{N: m, Body: func(i, _ int) { parA[i] = parB[i] + parB[i+1] }}, true
		}
		return Loop{N: m, Body: func(j, _ int) { parB[j+1] = parA[j] + parA[j+1] }}, true
	}, nil)

	for i := range seqA {
		if seqA[i] != parA[i] {
			t.Fatalf("A[%d] = %d, want %d", i, parA[i], seqA[i])
		}
	}
	for i := range seqB {
		if seqB[i] != parB[i] {
			t.Fatalf("B[%d] = %d, want %d", i, parB[i], seqB[i])
		}
	}
}

func TestRunSerialSectionRunsOncePerInvocation(t *testing.T) {
	var serialCalls atomic.Int64
	var iters atomic.Int64
	const invocations = 7
	Run(3, func(k int) (Loop, bool) {
		if k >= invocations {
			return Loop{}, false
		}
		return Loop{N: 10, Body: func(_, _ int) { iters.Add(1) }}, true
	}, func(k int) {
		serialCalls.Add(1)
	})
	// serial runs before each invocation fetch, including the final probe.
	if got := serialCalls.Load(); got != invocations+1 {
		t.Fatalf("serial calls = %d, want %d", got, invocations+1)
	}
	if got := iters.Load(); got != invocations*10 {
		t.Fatalf("iterations = %d, want %d", got, invocations*10)
	}
}

func TestRunBarrierStatsAccumulate(t *testing.T) {
	bar := Run(2, func(k int) (Loop, bool) {
		if k >= 3 {
			return Loop{}, false
		}
		return Loop{N: 8, Body: func(_, _ int) {}}, true
	}, nil)
	_, waits := bar.Stats()
	if waits == 0 {
		t.Fatal("expected barrier waits to be recorded")
	}
}

func TestRunDOANYAtomicCounters(t *testing.T) {
	// Each iteration increments one of a few shared counters under its lock;
	// the final totals must equal the sequential result regardless of order
	// (commutativity is what DOANY requires, §2.2).
	const n = 1000
	const buckets = 4
	counts := make([]int64, buckets)
	locks := make([]sync.Mutex, buckets)
	RunDOANY(4, Loop{N: n, Body: func(i, _ int) {
		counts[i%buckets]++
	}}, func(i int) []int { return []int{i % buckets} }, locks)
	for b := 0; b < buckets; b++ {
		if counts[b] != n/buckets {
			t.Fatalf("bucket %d = %d, want %d", b, counts[b], n/buckets)
		}
	}
}

func TestRunDOANYMultipleLocksNoDeadlock(t *testing.T) {
	const n = 500
	var total int64
	locks := make([]sync.Mutex, 3)
	RunDOANY(4, Loop{N: n, Body: func(i, _ int) {
		total++
	}}, func(i int) []int { return []int{0, 1, 2} }, locks)
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
}

func TestRunLOCALWRITEOwnerComputes(t *testing.T) {
	// Irregular updates through an index array (Fig 2.3(c)): node[idx[i]]++.
	// Under LOCALWRITE each element is updated exactly once, by its owner.
	const n = 400
	const space = 100
	idx := make([]int, n)
	for i := range idx {
		idx[i] = (i * 37) % space
	}
	seq := make([]int64, space)
	for i := 0; i < n; i++ {
		seq[idx[i]]++
	}

	par := make([]int64, space)
	writers := make([][]int, space) // which tid wrote each cell
	var mu sync.Mutex
	partition := sched.NewLocalWrite(space)
	RunLOCALWRITE(4, n, partition, func(i, tid int, owns func(uint64) bool) {
		a := uint64(idx[i])
		if owns(a) {
			par[a]++ // no lock needed: single owner per address
			mu.Lock()
			writers[a] = append(writers[a], tid)
			mu.Unlock()
		}
	})

	for a := 0; a < space; a++ {
		if par[a] != seq[a] {
			t.Fatalf("cell %d = %d, want %d", a, par[a], seq[a])
		}
		for _, w := range writers[a] {
			if w != partition.Owner(uint64(a), 4) {
				t.Fatalf("cell %d written by non-owner %d", a, w)
			}
		}
	}
}

func TestRunWorkStealingCoversAllIterations(t *testing.T) {
	const n = 1000
	var hits [n]atomic.Int32
	RunWorkStealing(4, Loop{N: n, Body: func(i, _ int) {
		hits[i].Add(1)
	}})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("iteration %d executed %d times", i, got)
		}
	}
}

func TestInvalidWorkersPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"Run":           func() { Run(0, nil, nil) },
		"RunDOANY":      func() { RunDOANY(0, Loop{}, nil, nil) },
		"RunLOCALWRITE": func() { RunLOCALWRITE(0, 0, sched.NewLocalWrite(1), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with 0 workers did not panic", name)
				}
			}()
			f()
		}()
	}
}

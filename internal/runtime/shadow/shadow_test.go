package shadow

import (
	"testing"
	"testing/quick"
)

func stores(size int) map[string]Store {
	return map[string]Store{
		"dense":  NewDense(size),
		"sparse": NewSparse(),
	}
}

func TestEmptyLookup(t *testing.T) {
	for name, s := range stores(16) {
		e := s.Lookup(3)
		if e.Iter != None {
			t.Errorf("%s: fresh Lookup.Iter = %d, want None", name, e.Iter)
		}
		if s.Len() != 0 {
			t.Errorf("%s: fresh Len = %d, want 0", name, s.Len())
		}
	}
}

func TestUpdateLookup(t *testing.T) {
	for name, s := range stores(16) {
		s.Update(5, 2, 17)
		e := s.Lookup(5)
		if e.Tid != 2 || e.Iter != 17 {
			t.Errorf("%s: Lookup(5) = %+v, want {2 17}", name, e)
		}
		// Overwrite: shadow memory records the most recent accessor only.
		s.Update(5, 3, 20)
		e = s.Lookup(5)
		if e.Tid != 3 || e.Iter != 20 {
			t.Errorf("%s: after overwrite Lookup(5) = %+v, want {3 20}", name, e)
		}
		if s.Len() != 1 {
			t.Errorf("%s: Len = %d, want 1", name, s.Len())
		}
	}
}

func TestReset(t *testing.T) {
	for name, s := range stores(16) {
		s.Update(1, 0, 1)
		s.Update(2, 1, 2)
		s.Reset()
		if s.Len() != 0 {
			t.Errorf("%s: Len after Reset = %d, want 0", name, s.Len())
		}
		if e := s.Lookup(1); e.Iter != None {
			t.Errorf("%s: Lookup after Reset = %+v, want empty", name, e)
		}
	}
}

func TestDenseOutOfRange(t *testing.T) {
	d := NewDense(4)
	d.Update(100, 1, 1) // silently ignored: out of configured range
	if e := d.Lookup(100); e.Iter != None {
		t.Fatalf("out-of-range Lookup = %+v, want empty", e)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d, want 0", d.Len())
	}
}

// Property: after any sequence of updates, both stores agree on every address
// (dense and sparse are behaviourally identical within the dense range).
func TestQuickDenseSparseEquivalent(t *testing.T) {
	type op struct {
		Addr uint8
		Tid  int8
		Iter uint16
	}
	prop := func(ops []op) bool {
		d := NewDense(256)
		s := NewSparse()
		for _, o := range ops {
			tid := int32(o.Tid)
			iter := int64(o.Iter)
			d.Update(uint64(o.Addr), tid, iter)
			s.Update(uint64(o.Addr), tid, iter)
		}
		for a := uint64(0); a < 256; a++ {
			if d.Lookup(a) != s.Lookup(a) {
				return false
			}
		}
		return d.Len() == s.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the most recent Update for an address always wins.
func TestQuickLastWriterWins(t *testing.T) {
	prop := func(addrs []uint8) bool {
		s := NewSparse()
		last := map[uint64]Entry{}
		for i, a := range addrs {
			e := Entry{Tid: int32(i % 5), Iter: int64(i)}
			s.Update(uint64(a), e.Tid, e.Iter)
			last[uint64(a)] = e
		}
		for a, want := range last {
			if s.Lookup(a) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDenseUpdateLookup(b *testing.B) {
	d := NewDense(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint64(i) & 0xffff
		d.Update(a, int32(i&3), int64(i))
		_ = d.Lookup(a)
	}
}

func BenchmarkSparseUpdateLookup(b *testing.B) {
	s := NewSparse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := uint64(i) & 0xffff
		s.Update(a, int32(i&3), int64(i))
		_ = s.Lookup(a)
	}
}

package shadow

// This file adds the sharded shadow memory behind the sharded DOMORE
// scheduler (ROADMAP item 2): the address space is partitioned by hash
// across N per-shard stores so N scheduler lanes can perform dependence
// detection concurrently without any locking.
//
// Shard-ownership invariant: ShardOf is a pure function of (addr, shards),
// so every access to a given address — lookup and update alike — lands in
// the same shard for the lifetime of a run. A lane that owns shard s is
// therefore the *only* goroutine that ever touches shard s's store, which
// makes the per-shard stores single-writer structures exactly like the
// unsharded scheduler's store ("lock-free by ownership"). Correctness of
// sharded dependence detection follows: per address, the lane observes the
// same lookup/update sequence the single scheduler would.

// Mix is a splitmix64-style finalizer: an invertible mixer whose output
// bits all depend on all input bits. It is the hash behind ShardOf;
// exported so fault-injection and tests can reproduce shard placement.
func Mix(a uint64) uint64 {
	a ^= a >> 30
	a *= 0xbf58476d1ce4e5b9
	a ^= a >> 27
	a *= 0x94d049bb133111eb
	a ^= a >> 31
	return a
}

// ShardOf maps an address to its owning shard in [0, shards). The mapping
// uses the high output bits of Mix through a fixed-point multiply, so it is
// unbiased for any shard count, not just powers of two. Array-index address
// spaces are sequential — taking addr%shards would alias entire iteration
// stripes onto one shard — which is why the mixer runs first.
func ShardOf(addr uint64, shards int) int {
	h := Mix(addr) >> 32
	return int(h * uint64(shards) >> 32)
}

// Sharded partitions a shadow memory across per-shard stores by ShardOf.
// It implements Store — routing each call to the owning shard — so code
// that is agnostic to sharding (tests, stats, Reset between regions) can
// treat it as one store; the scheduler lanes instead call Shard once and
// operate on their own store directly, which is the lock-free hot path.
type Sharded struct {
	shards []Store
}

// NewSharded builds a sharded store with one sub-store per shard. mk
// constructs the store for each shard index; nil defaults to NewSparse.
func NewSharded(shards int, mk func(shard int) Store) *Sharded {
	if shards <= 0 {
		shards = 1
	}
	if mk == nil {
		mk = func(int) Store { return NewSparse() }
	}
	s := &Sharded{shards: make([]Store, shards)}
	for i := range s.shards {
		s.shards[i] = mk(i)
	}
	return s
}

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns the store owning shard i. The caller must respect the
// shard-ownership invariant: only addresses with ShardOf(addr, Shards())
// == i may be looked up or updated through it, and only by one goroutine
// at a time.
func (s *Sharded) Shard(i int) Store { return s.shards[i] }

// Lookup implements Store by routing to the owning shard.
func (s *Sharded) Lookup(addr uint64) Entry {
	return s.shards[ShardOf(addr, len(s.shards))].Lookup(addr)
}

// Update implements Store by routing to the owning shard.
func (s *Sharded) Update(addr uint64, tid int32, iter int64) {
	s.shards[ShardOf(addr, len(s.shards))].Update(addr, tid, iter)
}

// Reset implements Store: every shard is cleared. Single-goroutine only
// (between region executions, like the other stores).
func (s *Sharded) Reset() {
	for _, sh := range s.shards {
		sh.Reset()
	}
}

// Len implements Store by summing the shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

package shadow

import "testing"

// TestShardOfStableAndInRange pins the two properties the scheduler lanes
// rely on: ShardOf is a pure function (the shard-ownership invariant) and
// its result is always in [0, shards), for shard counts that are not
// powers of two as well.
func TestShardOfStableAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7, 16} {
		for addr := uint64(0); addr < 10000; addr++ {
			s := ShardOf(addr, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", addr, shards, s)
			}
			if again := ShardOf(addr, shards); again != s {
				t.Fatalf("ShardOf(%d, %d) unstable: %d then %d", addr, shards, s, again)
			}
		}
	}
}

// TestShardOfSpreadsSequentialAddresses guards the reason Mix exists: array
// index spaces are sequential, and a sharding that stripes them onto one
// shard would serialize the lanes. Require every shard to get a reasonable
// cut of a sequential range.
func TestShardOfSpreadsSequentialAddresses(t *testing.T) {
	const n, shards = 1 << 14, 4
	var hist [shards]int
	for addr := uint64(0); addr < n; addr++ {
		hist[ShardOf(addr, shards)]++
	}
	for s, c := range hist {
		if c < n/shards/2 || c > n/shards*2 {
			t.Errorf("shard %d got %d of %d sequential addresses (ideal %d)", s, c, n, n/shards)
		}
	}
}

// TestShardedAgreesWithFlat replays one op log on a Sharded store and a
// flat Sparse store; Lookup results, Len, and Reset must agree throughout,
// and every address must route to the shard ShardOf names.
func TestShardedAgreesWithFlat(t *testing.T) {
	sh := NewSharded(3, nil)
	flat := NewSparse()
	rng := uint64(12345)
	for i := 0; i < 5000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		addr := rng >> 40 // small space so updates collide
		tid := int32(rng>>8) % 4
		iter := int64(i)
		if got, want := sh.Lookup(addr), flat.Lookup(addr); got != want {
			t.Fatalf("op %d: Sharded.Lookup(%d) = %+v, Sparse = %+v", i, addr, got, want)
		}
		if got := sh.Shard(ShardOf(addr, sh.Shards())).Lookup(addr); got != flat.Lookup(addr) {
			t.Fatalf("op %d: owning shard disagrees with flat store at %d", i, addr)
		}
		sh.Update(addr, tid, iter)
		flat.Update(addr, tid, iter)
		if sh.Len() != flat.Len() {
			t.Fatalf("op %d: Sharded.Len = %d, Sparse.Len = %d", i, sh.Len(), flat.Len())
		}
	}
	sh.Reset()
	if sh.Len() != 0 {
		t.Fatalf("Len = %d after Reset", sh.Len())
	}
}

// TestShardedDenseShards exercises the mk constructor: Dense sub-stores
// keep their bounds behavior behind the sharded router.
func TestShardedDenseShards(t *testing.T) {
	sh := NewSharded(2, func(int) Store { return NewDense(64) })
	sh.Update(7, 1, 10)
	if e := sh.Lookup(7); e.Tid != 1 || e.Iter != 10 {
		t.Fatalf("Lookup(7) = %+v", e)
	}
	sh.Update(1 << 20, 2, 11) // out of Dense range: dropped, reported untouched
	if e := sh.Lookup(1 << 20); e.Iter != None {
		t.Fatalf("out-of-range address reported touched: %+v", e)
	}
	if sh.Len() != 1 {
		t.Fatalf("Len = %d, want 1", sh.Len())
	}
}

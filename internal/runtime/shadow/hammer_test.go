package shadow

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"crossinv/internal/raceflag"
)

// The shadow stores are single-writer by contract: the engines give each
// scheduler (or each duplicated-scheduler worker, §3.4) a private
// instance or serialize access externally. The hammer reproduces the
// strongest concurrent shape that contract allows — many goroutines
// mutating one store under external synchronization, with per-address
// update order fixed by ownership — and asserts the result is exactly a
// sequential replay of the same update log: last writer wins, per
// address, no lost or phantom entries.

type update struct {
	addr uint64
	tid  int32
	iter int64
}

const hammerAddrSpace = 96

func hammerLog(n int) []update {
	rng := rand.New(rand.NewSource(7))
	log := make([]update, n)
	for i := range log {
		log[i] = update{
			addr: uint64(rng.Intn(hammerAddrSpace)),
			tid:  int32(rng.Intn(8)),
			iter: int64(i),
		}
	}
	return log
}

func hammer(t *testing.T, mk func() Store) {
	const goroutines = 4
	n := 30000
	if raceflag.Enabled {
		n = 6000
	}
	log := hammerLog(n)

	// Every entry ever logged per address, for the reader invariant.
	written := make(map[uint64]map[Entry]bool)
	for _, u := range log {
		if written[u.addr] == nil {
			written[u.addr] = make(map[Entry]bool)
		}
		written[u.addr][Entry{Tid: u.tid, Iter: u.iter}] = true
	}

	st := mk()
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers run concurrently with the writers and may observe any
	// intermediate state; every observed entry must be either untouched
	// or something some writer actually logged for that address.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				addr := uint64(rng.Intn(hammerAddrSpace))
				mu.Lock()
				e := st.Lookup(addr)
				mu.Unlock()
				if e.Iter != None && !written[addr][e] {
					t.Errorf("lookup(%d) returned %+v, which no writer ever recorded", addr, e)
					return
				}
				runtime.Gosched()
			}
		}(int64(100 + r))
	}

	// Writers partition the log by address ownership, so each address's
	// updates are applied in log order by exactly one goroutine while the
	// interleaving ACROSS addresses is scheduler-chosen. Gosched keeps the
	// schedule genuinely interleaved on single-CPU runners.
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i, u := range log {
				if int(u.addr)%goroutines != g {
					continue
				}
				mu.Lock()
				st.Update(u.addr, u.tid, u.iter)
				mu.Unlock()
				if i&63 == 0 {
					runtime.Gosched()
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	// Sequential replay of the identical log is the oracle.
	ref := mk()
	for _, u := range log {
		ref.Update(u.addr, u.tid, u.iter)
	}
	for addr := uint64(0); addr < hammerAddrSpace; addr++ {
		if got, want := st.Lookup(addr), ref.Lookup(addr); got != want {
			t.Errorf("addr %d: concurrent store holds %+v, sequential replay holds %+v", addr, got, want)
		}
	}
	if st.Len() != ref.Len() {
		t.Errorf("concurrent store Len %d != sequential replay Len %d", st.Len(), ref.Len())
	}
}

func TestConcurrentHammerLastWriterWins(t *testing.T) {
	t.Run("dense", func(t *testing.T) { hammer(t, func() Store { return NewDense(hammerAddrSpace) }) })
	t.Run("sparse", func(t *testing.T) { hammer(t, func() Store { return NewSparse() }) })
}

// decodeStoreOps interprets fuzz bytes as a shadow-memory op log: each
// 4-byte record is (op, addr, tid, iter). Addresses span 0..255 so some
// fall outside a Dense(128) store's range.
const fuzzDenseSize = 128

// FuzzStoreAgreement checks Dense, Sparse, and a plain map model agree on
// any op log: Sparse matches the model everywhere, Dense matches it on
// in-range addresses and reports out-of-range addresses untouched.
func FuzzStoreAgreement(f *testing.F) {
	f.Add([]byte{0, 5, 1, 9, 1, 5, 0, 0})             // update then lookup
	f.Add([]byte{0, 200, 2, 3, 1, 200, 0, 0})         // out-of-dense-range update
	f.Add([]byte{0, 9, 1, 1, 0, 9, 2, 2, 1, 9, 0, 0}) // last writer wins
	f.Add([]byte{0, 4, 1, 1, 7, 0, 0, 0, 1, 4, 0, 0}) // reset clears
	f.Fuzz(func(t *testing.T, data []byte) {
		dense := NewDense(fuzzDenseSize)
		sparse := NewSparse()
		model := make(map[uint64]Entry)

		check := func(addr uint64) {
			want, ok := model[addr]
			if !ok {
				want = Entry{Tid: -1, Iter: None}
			}
			if got := sparse.Lookup(addr); got != want {
				t.Fatalf("sparse.Lookup(%d) = %+v, model = %+v", addr, got, want)
			}
			got := dense.Lookup(addr)
			if addr >= fuzzDenseSize {
				if got.Iter != None {
					t.Fatalf("dense.Lookup(%d) = %+v for out-of-range address", addr, got)
				}
			} else if got != want {
				t.Fatalf("dense.Lookup(%d) = %+v, model = %+v", addr, got, want)
			}
		}

		for i := 0; i+3 < len(data); i += 4 {
			op, addr := data[i], uint64(data[i+1])
			switch {
			case op%8 == 7:
				dense.Reset()
				sparse.Reset()
				model = make(map[uint64]Entry)
			case op%2 == 0:
				tid, iter := int32(data[i+2]), int64(data[i+3])
				dense.Update(addr, tid, iter)
				sparse.Update(addr, tid, iter)
				model[addr] = Entry{Tid: tid, Iter: iter}
			default:
				check(addr)
			}
		}

		for addr := uint64(0); addr < 256; addr++ {
			check(addr)
		}
		if sparse.Len() != len(model) {
			t.Fatalf("sparse.Len() = %d, model has %d addresses", sparse.Len(), len(model))
		}
		inRange := 0
		for a := range model {
			if a < fuzzDenseSize {
				inRange++
			}
		}
		if dense.Len() != inRange {
			t.Fatalf("dense.Len() = %d, model has %d in-range addresses", dense.Len(), inRange)
		}
	})
}

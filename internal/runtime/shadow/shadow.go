// Package shadow implements the shadow memory the DOMORE scheduler uses to
// detect dynamic dependences at runtime (§3.2.1). Each shadow entry records
// which worker thread last touched the corresponding memory location and in
// which (combined, cross-invocation) iteration, as the tuple ⟨tid, iterNum⟩.
//
// Two stores are provided: Dense, an array indexed directly by address, for
// workloads whose address space is a compact range of array indices; and
// Sparse, a map-backed store for workloads with large or scattered address
// spaces. Both are single-writer structures: only the scheduler thread (or,
// in the duplicated-scheduler variant of §3.4, one private instance per
// worker) mutates them, so no internal locking is needed.
package shadow

// None is the iteration number stored in an empty entry; the paper writes it
// as ⊥ and tests depIterNum != -1 in Algorithm 1.
const None int64 = -1

// Entry is one shadow-memory cell: the last accessor of an address.
type Entry struct {
	Tid  int32 // worker thread that last accessed the address
	Iter int64 // combined iteration number of that access, or None
}

// empty is the value of an untouched cell.
var empty = Entry{Tid: -1, Iter: None}

// Store is the shadow-memory abstraction shared by the dense and sparse
// implementations.
type Store interface {
	// Lookup returns the last recorded accessor of addr, or an entry with
	// Iter == None if the address has not been touched.
	Lookup(addr uint64) Entry
	// Update records that worker tid accessed addr during iteration iter.
	Update(addr uint64, tid int32, iter int64)
	// Reset clears every entry. It is used between outer-region executions.
	Reset()
	// Len reports how many addresses currently have a recorded accessor.
	Len() int
}

// Dense is a Store backed by a flat slice; address a maps to cell a. Lookups
// and updates are O(1) with no hashing, which is what makes the scheduler
// cheap enough to keep up with workers (Table 5.2 measures the ratio).
type Dense struct {
	cells []Entry
	used  int
}

// NewDense returns a dense store covering addresses [0, size).
func NewDense(size int) *Dense {
	d := &Dense{cells: make([]Entry, size)}
	d.Reset()
	return d
}

// Lookup implements Store. Addresses outside the configured range are
// reported as untouched; the caller's performance guard is expected to size
// the store from the workload's address bound.
func (d *Dense) Lookup(addr uint64) Entry {
	if addr >= uint64(len(d.cells)) {
		return empty
	}
	return d.cells[addr]
}

// Update implements Store.
func (d *Dense) Update(addr uint64, tid int32, iter int64) {
	if addr >= uint64(len(d.cells)) {
		return
	}
	if d.cells[addr].Iter == None {
		d.used++
	}
	d.cells[addr] = Entry{Tid: tid, Iter: iter}
}

// Reset implements Store.
func (d *Dense) Reset() {
	for i := range d.cells {
		d.cells[i] = empty
	}
	d.used = 0
}

// Len implements Store.
func (d *Dense) Len() int { return d.used }

// Sparse is a Store backed by a map, for address spaces too large or too
// scattered to shadow densely (the space/time trade-off §3.2.1 discusses;
// the paper notes a signature scheme could substitute here too).
type Sparse struct {
	cells map[uint64]Entry
}

// NewSparse returns an empty sparse store.
func NewSparse() *Sparse {
	return &Sparse{cells: make(map[uint64]Entry)}
}

// Lookup implements Store.
func (s *Sparse) Lookup(addr uint64) Entry {
	if e, ok := s.cells[addr]; ok {
		return e
	}
	return empty
}

// Update implements Store.
func (s *Sparse) Update(addr uint64, tid int32, iter int64) {
	s.cells[addr] = Entry{Tid: tid, Iter: iter}
}

// Reset implements Store.
func (s *Sparse) Reset() { clear(s.cells) }

// Len implements Store.
func (s *Sparse) Len() int { return len(s.cells) }

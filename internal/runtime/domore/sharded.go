package domore

import (
	"sync"
	"sync/atomic"

	"crossinv/internal/runtime/queue"
	"crossinv/internal/runtime/sched"
	"crossinv/internal/runtime/shadow"
	"crossinv/internal/runtime/trace"
)

// This file implements the sharded DOMORE scheduler (ROADMAP item 2): the
// paper names the single scheduler thread as the engine's scalability
// ceiling (§3.3.3), because it serializes computeAddr, every shadow-memory
// operation, and one queue produce per condition. RunSharded removes all
// three serial costs while preserving Run's schedule exactly:
//
//   - Shadow memory is partitioned by address hash (shadow.Sharded) across
//     N scheduler lanes. Each lane owns one shard and performs dependence
//     detection for exactly the addresses hashing to it, so per address the
//     lookup/update sequence is identical to the single scheduler's — the
//     shard-ownership invariant (see internal/runtime/shadow/sharded.go).
//   - Lanes work chunk-at-a-time: the driver publishes a chunk of
//     iterations, the lanes detect dependences for their shards in
//     parallel, and the driver merges the per-lane conditions back into
//     iteration order. With Options.ConcurrentAddr the lanes also compute
//     the address sets (redundantly, like the duplicated scheduler of
//     §3.4); otherwise the driver precomputes them into a reused arena.
//   - Synchronization conditions and dispatch records are buffered per
//     worker and published with queue.ProduceBatch, amortizing the queue's
//     index publication over the chunk instead of paying it per iteration.
//
// Batching must not reorder the schedule's liveness argument: Run's
// correctness rests on the fact that when a worker receives a condition
// referencing ⟨depTid, depIter⟩, the kindRun for depIter is already in
// depTid's queue (the scheduler produced it in an earlier iteration).
// Naive per-chunk flushing breaks this — a worker can stall on a condition
// whose prerequisite dispatch is still sitting in the driver's buffer
// while the driver spins on that worker's full queue. The driver therefore
// maintains the iteration-order publication invariant: before buffering a
// condition that references worker u, it flushes u's entire buffer (which
// by iteration order already holds depIter's dispatch if it is
// unpublished). Dependence-free stretches still get exactly one
// publication per worker per chunk; each manifested dependence forces at
// most one early flush, bounded by SyncConditions.

// defaults for the sharded scheduler knobs (Options.Lanes, Options.Batch).
const (
	defaultLanes = 4
	defaultBatch = 256

	// batchConsume is the worker-side batch: how many messages one
	// TryConsumeBatch drains per head publication.
	batchConsume = 64
)

// laneCond is one dependence a scheduler lane detected: iteration it (a
// chunk-relative index) executed by accessor must wait for depTid to
// finish depIter. Lanes append them in iteration order, which is what lets
// the driver merge the per-lane lists with one cursor each.
type laneCond struct {
	it       int32
	accessor int32
	depTid   int32
	depIter  int64
}

// shardChunk is the driver↔lane handoff record. The driver fills the
// bounds (and, without ConcurrentAddr, the address arena and assignments)
// before publishing the chunk's sequence number; lanes only read those
// fields. With ConcurrentAddr lane 0 instead records counts/tids/tidOff —
// it is the recording lane — between the publish and its completion store,
// so the driver may read them after every lane has completed. All slices
// are reused across chunks; the steady state allocates nothing.
type shardChunk struct {
	stop    bool
	inv     int32
	it0     int32 // first inner-loop index of the chunk
	n       int32 // iterations in the chunk
	iterNum int64 // combined iteration number of the first

	counts []int64 // per-iteration address count (KindAddrCheck arg)
	tids   []int32 // flat per-iteration assigned workers
	tidOff []int32 // len n+1 offsets into tids

	addrs   []uint64 // serial mode: flat per-iteration address arena
	addrOff []int32  // len n+1 offsets into addrs
}

// shardLane is one scheduler lane's handoff state. ready and done are
// sequence numbers (driver publishes ready, lane publishes done); the
// padding keeps the two spin targets off each other's cache lines.
type shardLane struct {
	ready atomic.Int64
	_     [56]byte
	done  atomic.Int64
	_     [56]byte
	conds []laneCond // lane output for the current chunk
}

// shardedRun carries the driver's merge state so the helpers share it
// without re-threading a dozen parameters.
type shardedRun struct {
	w          Workload
	opts       *Options
	nw         int
	concurrent bool
	store      *shadow.Sharded
	newPolicy  func() sched.Policy
	owner      *sched.LocalWrite // serial mode: shared, Owner is pure
	multiOwner bool
	ch         *shardChunk
	lanes      []shardLane
	queues     []*queue.SPSC[cond]
	stats      *Stats
	sch        *trace.ThreadTrace
	pending    [][]cond // per-worker conditions for the current iteration
	outbuf     [][]cond // per-worker buffered (unpublished) messages
	cursor     []int    // per-lane merge cursor into lane conds
	scratch    []uint64 // serial mode: ComputeAddr scratch, copied to the arena
}

// RunSharded executes the workload under DOMORE with the sharded scheduler
// and batched condition queues. It produces the same schedule as Run — the
// same iterations, dispatches, synchronization conditions, and shadow
// lookups, which the workloadtest equivalence suite asserts field by field
// — with the scheduler's dependence detection spread across Options.Lanes
// concurrent lanes. Stalls and LaneWaits remain timing-dependent.
func RunSharded(w Workload, opts Options) Stats {
	opts.fill()
	if opts.Lanes <= 0 {
		opts.Lanes = defaultLanes
	}
	if opts.Batch <= 0 {
		opts.Batch = defaultBatch
	}
	nw := opts.Workers

	d := &shardedRun{
		w:          w,
		opts:       &opts,
		nw:         nw,
		concurrent: opts.ConcurrentAddr,
		store:      shadow.NewSharded(opts.Lanes, opts.NewShard),
		ch:         &shardChunk{},
		lanes:      make([]shardLane, opts.Lanes),
		queues:     make([]*queue.SPSC[cond], nw),
		stats:      &Stats{},
		pending:    make([][]cond, nw),
		outbuf:     make([][]cond, nw),
		cursor:     make([]int, opts.Lanes),
	}
	d.sch = opts.Trace.Lane(trace.LaneScheduler)
	if d.concurrent {
		d.newPolicy = opts.NewPolicy
		if d.newPolicy == nil {
			d.newPolicy = func() sched.Policy { return sched.NewRoundRobin() }
		}
	} else {
		d.owner, d.multiOwner = opts.Policy.(*sched.LocalWrite)
	}
	for i := range d.queues {
		d.queues[i] = queue.NewSPSC[cond](opts.QueueCap)
	}
	latestFinished := make([]paddedInt64, nw)
	for i := range latestFinished {
		latestFinished[i].v.Store(-1)
	}

	var wg sync.WaitGroup
	for tid := 0; tid < nw; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			trace.Labeled("domore", "worker", func() {
				workerBatched(w, tid, d.queues[tid], latestFinished, d.stats, opts.Trace.Lane(int32(tid)))
			})
		}(tid)
	}
	for l := 0; l < opts.Lanes; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			trace.Labeled("domore", "sched-lane", func() {
				d.lane(l)
			})
		}(l)
	}

	trace.Labeled("domore", "scheduler", func() {
		d.drive()
	})
	wg.Wait()
	return *d.stats
}

// drive is the sharded scheduler's main loop: sequential regions, chunk
// handoff, merge, and batched publication.
func (d *shardedRun) drive() {
	w, ch := d.w, d.ch
	seq := int64(0)
	iterNum := int64(0)
	invocations := w.Invocations()
	for inv := 0; inv < invocations; inv++ {
		w.Sequential(inv)
		iters := w.Iterations(inv)
		d.sch.Emit(trace.KindEpochBegin, int64(inv), int64(inv+1), 0)
		for it0 := 0; it0 < iters; it0 += d.opts.Batch {
			n := iters - it0
			if n > d.opts.Batch {
				n = d.opts.Batch
			}
			ch.inv, ch.it0, ch.n, ch.iterNum = int32(inv), int32(it0), int32(n), iterNum
			if !d.concurrent {
				d.prepareSerial()
			}
			seq++
			for l := range d.lanes {
				d.lanes[l].ready.Store(seq)
			}
			for l := range d.lanes {
				for spins := 0; d.lanes[l].done.Load() < seq; spins++ {
					queue.Backoff(spins)
				}
			}
			d.merge()
			iterNum += int64(n)
		}
		d.sch.Emit(trace.KindEpochCommit, 1, int64(inv), int64(inv+1))
	}
	// Stop the lanes, then publish the end tokens.
	ch.stop = true
	seq++
	for l := range d.lanes {
		d.lanes[l].ready.Store(seq)
	}
	for l := range d.lanes {
		for spins := 0; d.lanes[l].done.Load() < seq; spins++ {
			queue.Backoff(spins)
		}
	}
	for t := range d.outbuf {
		d.outbuf[t] = append(d.outbuf[t], cond{Kind: kindEnd})
		d.flush(t)
	}
}

// prepareSerial fills the chunk's address arena and worker assignments on
// the driver (the always-safe path for workloads whose ComputeAddr shares
// state, e.g. the interpreter-backed regions). The Policy sees the exact
// call sequence Run would make.
func (d *shardedRun) prepareSerial() {
	ch := d.ch
	ch.counts = ch.counts[:0]
	ch.tids = ch.tids[:0]
	ch.tidOff = append(ch.tidOff[:0], 0)
	ch.addrs = ch.addrs[:0]
	ch.addrOff = append(ch.addrOff[:0], 0)
	for k := int32(0); k < ch.n; k++ {
		start := len(ch.addrs)
		// ComputeAddr may return a private buffer instead of appending to
		// the one passed (the interpreter-backed workloads do), so copy the
		// result into the chunk arena rather than aliasing it.
		d.scratch = d.w.ComputeAddr(int(ch.inv), int(ch.it0+k), d.scratch[:0])
		ch.addrs = append(ch.addrs, d.scratch...)
		ch.addrOff = append(ch.addrOff, int32(len(ch.addrs)))
		ch.counts = append(ch.counts, int64(len(ch.addrs)-start))
		tids := d.opts.Policy.Assign(ch.iterNum+int64(k), ch.addrs[start:], d.nw)
		for _, t := range tids {
			ch.tids = append(ch.tids, int32(t))
		}
		ch.tidOff = append(ch.tidOff, int32(len(ch.tids)))
	}
}

// lane is one scheduler lane: it processes every chunk in order but
// performs shadow lookups and updates only for the addresses hashing to
// its shard, appending detected dependences in iteration order.
func (d *shardedRun) lane(l int) {
	ls := &d.lanes[l]
	lt := d.opts.Trace.Lane(int32(trace.LaneShardBase - l))
	myShard := d.store.Shard(l)
	nl := len(d.lanes)
	nw := d.nw
	ch := d.ch

	var pol sched.Policy
	owner, multiOwner := d.owner, d.multiOwner
	if d.concurrent {
		pol = d.newPolicy()
		owner, multiOwner = pol.(*sched.LocalWrite)
	}
	recording := d.concurrent && l == 0

	var buf []uint64
	for seq := int64(1); ; seq++ {
		if ls.ready.Load() < seq {
			atomic.AddInt64(&d.stats.LaneWaits, 1)
			for spins := 0; ls.ready.Load() < seq; spins++ {
				queue.Backoff(spins)
			}
		}
		if ch.stop {
			ls.done.Store(seq)
			return
		}
		ls.conds = ls.conds[:0]
		if recording {
			ch.counts = ch.counts[:0]
			ch.tids = ch.tids[:0]
			ch.tidOff = append(ch.tidOff[:0], 0)
		}
		for k := int32(0); k < ch.n; k++ {
			iterNum := ch.iterNum + int64(k)
			var addrs []uint64
			var t0 int32
			var nt int
			if d.concurrent {
				buf = d.w.ComputeAddr(int(ch.inv), int(ch.it0+k), buf[:0])
				addrs = buf
				tids := pol.Assign(iterNum, addrs, nw)
				t0, nt = int32(tids[0]), len(tids)
				if recording {
					ch.counts = append(ch.counts, int64(len(addrs)))
					for _, t := range tids {
						ch.tids = append(ch.tids, int32(t))
					}
					ch.tidOff = append(ch.tidOff, int32(len(ch.tids)))
				}
			} else {
				addrs = ch.addrs[ch.addrOff[k]:ch.addrOff[k+1]]
				t0 = ch.tids[ch.tidOff[k]]
				nt = int(ch.tidOff[k+1] - ch.tidOff[k])
			}
			for _, a := range addrs {
				if shadow.ShardOf(a, nl) != l {
					continue
				}
				accessor := t0
				if multiOwner && nt > 1 {
					accessor = int32(owner.Owner(a, nw))
				}
				dep := myShard.Lookup(a)
				if dep.Iter != shadow.None && dep.Tid != accessor {
					ls.conds = append(ls.conds, laneCond{it: k, accessor: accessor, depTid: dep.Tid, depIter: dep.Iter})
				}
				myShard.Update(a, accessor, iterNum)
			}
		}
		lt.Emit(trace.KindShardChunk, int64(l), seq, ch.iterNum)
		ls.done.Store(seq)
	}
}

// merge replays the completed chunk in iteration order on the driver:
// per-lane conditions are merged and deduplicated exactly as the single
// scheduler would (addDep keeps the newest iteration per source thread, an
// order-independent maximum, so the merged set matches Run's), the
// scheduler-lane trace events are emitted, and the outgoing messages are
// buffered per worker under the iteration-order publication invariant.
func (d *shardedRun) merge() {
	ch, stats := d.ch, d.stats
	for l := range d.cursor {
		d.cursor[l] = 0
	}
	for k := int32(0); k < ch.n; k++ {
		iterNum := ch.iterNum + int64(k)
		tids := ch.tids[ch.tidOff[k]:ch.tidOff[k+1]]
		d.sch.Emit(trace.KindSchedule, 1, int64(ch.inv), iterNum)
		d.sch.Emit(trace.KindAddrCheck, ch.counts[k], int64(ch.inv), iterNum)
		stats.AddrChecks += ch.counts[k]
		for _, t := range tids {
			d.pending[t] = d.pending[t][:0]
		}
		for l := range d.lanes {
			lc := d.lanes[l].conds
			for d.cursor[l] < len(lc) && lc[d.cursor[l]].it == k {
				c := lc[d.cursor[l]]
				d.cursor[l]++
				d.pending[c.accessor] = addDep(d.pending[c.accessor], c.depTid, c.depIter)
			}
		}
		for _, t := range tids {
			for _, dep := range d.pending[t] {
				// Publication invariant: dep references ⟨dep.Tid, dep.Iter⟩;
				// dep.Iter's dispatch was buffered to dep.Tid in an earlier
				// iteration, so flushing dep.Tid first guarantees it is on
				// the queue before this condition can be.
				d.flush(int(dep.Tid))
				d.outbuf[t] = append(d.outbuf[t], dep)
				stats.SyncConditions++
				d.sch.Emit(trace.KindSyncCond, int64(t), int64(dep.Tid), dep.Iter)
			}
			d.outbuf[t] = append(d.outbuf[t], cond{Kind: kindRun, Iter: iterNum, Inv: ch.inv, Index: ch.it0 + k})
			stats.Dispatches++
			d.sch.Emit(trace.KindDispatch, int64(t), iterNum, 0)
		}
		stats.Iterations++
	}
	for t := range d.outbuf {
		d.flush(t)
	}
}

// flush publishes worker t's buffered messages with a batched produce (one
// tail publication per available stretch of ring), recording a queue-full
// backoff episode when the ring cannot take the whole batch at once. An
// empty buffer is a no-op, so Batches counts exactly the non-empty
// publications.
func (d *shardedRun) flush(t int) {
	msgs := d.outbuf[t]
	if len(msgs) == 0 {
		return
	}
	q := d.queues[t]
	n := q.TryProduceBatch(msgs)
	if n < len(msgs) {
		d.sch.Emit(trace.KindQueueFullBegin, int64(t), 0, 0)
		for spins := 1; n < len(msgs); spins++ {
			k := q.TryProduceBatch(msgs[n:])
			if k == 0 {
				queue.Backoff(spins)
			} else {
				n += k
				spins = 0
			}
		}
		d.sch.Emit(trace.KindQueueFullEnd, int64(t), 0, 0)
	}
	d.stats.Batches++
	if d.sch.Enabled() {
		d.sch.Emit(trace.KindQueueDepth, int64(q.Len()), int64(t), 0)
	}
	d.outbuf[t] = msgs[:0]
}

// workerBatched is Algorithm 2 on the batched consume path: identical
// message semantics to worker, but the queue's head index is published
// once per drained batch instead of once per message. The empty-ring wait
// uses the same Backoff schedule, so single-CPU boxes still make progress
// (see TESTING.md, "Single-CPU runners").
func workerBatched(w Workload, tid int, q *queue.SPSC[cond], latestFinished []paddedInt64, stats *Stats, tt *trace.ThreadTrace) {
	batch := make([]cond, batchConsume)
	for {
		n := q.TryConsumeBatch(batch)
		if n == 0 {
			tt.Emit(trace.KindQueueEmptyBegin, int64(tid), 0, 0)
			for spins := 1; n == 0; spins++ {
				n = q.TryConsumeBatch(batch)
				if n == 0 {
					queue.Backoff(spins)
				}
			}
			tt.Emit(trace.KindQueueEmptyEnd, int64(tid), 0, 0)
		}
		for i := 0; i < n; i++ {
			c := batch[i]
			switch c.Kind {
			case kindEnd:
				// Always the final message on the queue, so no batch tail
				// can follow it.
				return
			case kindDep:
				if latestFinished[c.Tid].v.Load() < c.Iter {
					atomic.AddInt64(&stats.Stalls, 1)
					tt.Emit(trace.KindStallBegin, int64(c.Tid), c.Iter, 0)
					for spins := 0; latestFinished[c.Tid].v.Load() < c.Iter; spins++ {
						queue.Backoff(spins)
					}
					tt.Emit(trace.KindStallEnd, int64(c.Tid), c.Iter, 0)
				}
			case kindRun:
				tt.Emit(trace.KindIterStart, int64(c.Inv), int64(c.Index), c.Iter)
				w.Execute(int(c.Inv), int(c.Index), tid)
				latestFinished[tid].v.Store(c.Iter)
				tt.Emit(trace.KindIterEnd, int64(c.Inv), int64(c.Index), c.Iter)
			}
		}
	}
}

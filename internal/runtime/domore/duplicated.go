package domore

import (
	"runtime"
	"sync"
	"sync/atomic"

	"crossinv/internal/runtime/sched"
	"crossinv/internal/runtime/shadow"
	"crossinv/internal/runtime/trace"
)

// RunDuplicated executes the workload under the duplicated-scheduler variant
// of §3.4 (Figs 3.8–3.9): there is no dedicated scheduler thread. Every
// worker replays the scheduler code — the outer-loop sequential region,
// computeAddr, assignment, and shadow-memory bookkeeping — against a private
// shadow replica, and executes only the iterations assigned to itself. Since
// all replicas replay the identical deterministic schedule, every worker
// derives the same synchronization conditions; a worker assigned an
// iteration waits directly on latestFinished instead of consuming its own
// queue (semantically equivalent to Fig 3.9's produce-to-self).
//
// This trades redundant scheduling work for the absence of a scheduler
// thread, which is what allows DOMORE-parallelized loops to be nested inside
// a SPECCROSS region. The workload's Sequential code is executed by every
// worker and must therefore be duplication-safe (idempotent or
// thread-private), the constraint Fig 4.1 illustrates.
func RunDuplicated(w Workload, opts Options) Stats {
	opts.fill()
	if opts.NewPolicy == nil {
		opts.NewPolicy = func() sched.Policy { return sched.NewRoundRobin() }
	}
	nw := opts.Workers

	latestFinished := make([]paddedInt64, nw)
	for i := range latestFinished {
		latestFinished[i].v.Store(-1)
	}

	var stats Stats
	var wg sync.WaitGroup
	for tid := 0; tid < nw; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			// Each replica fuses scheduling and execution, so its lane is
			// "worker": there is no dedicated scheduler to attribute to.
			trace.Labeled("domore", "worker", func() {
				duplicatedWorker(w, &opts, tid, nw, latestFinished, &stats)
			})
		}(tid)
	}
	wg.Wait()

	// The replicas each counted the full schedule; normalize the
	// scheduler-side counters to per-schedule values.
	stats.Iterations /= int64(nw)
	stats.AddrChecks /= int64(nw)
	stats.SyncConditions /= int64(nw)
	return stats
}

// duplicatedWorker is Fig 3.9's scheduler()+worker() fused loop, run by each
// worker against a private shadow replica and policy instance.
func duplicatedWorker(w Workload, opts *Options, tid, nw int, latestFinished []paddedInt64, stats *Stats) {
	shadowMem := shadow.NewSparse()
	policy := opts.NewPolicy()
	owner, multiOwner := policy.(*sched.LocalWrite)

	deps := make([]cond, 0, 8)
	var buf []uint64
	iterNum := int64(0)
	invocations := w.Invocations()
	for inv := 0; inv < invocations; inv++ {
		w.Sequential(inv)
		iters := w.Iterations(inv)
		for it := 0; it < iters; it++ {
			buf = w.ComputeAddr(inv, it, buf[:0])
			addrs := buf
			tids := policy.Assign(iterNum, addrs, nw)
			mine := false
			deps = deps[:0]
			for _, a := range addrs {
				accessor := int32(tids[0])
				if multiOwner && len(tids) > 1 {
					accessor = int32(owner.Owner(a, nw))
				}
				dep := shadowMem.Lookup(a)
				if dep.Iter != shadow.None && dep.Tid != accessor && accessor == int32(tid) {
					deps = addDep(deps, dep.Tid, dep.Iter)
				}
				shadowMem.Update(a, accessor, iterNum)
			}
			for _, t := range tids {
				if t == tid {
					mine = true
				}
			}
			atomic.AddInt64(&stats.AddrChecks, int64(len(addrs)))
			atomic.AddInt64(&stats.Iterations, 1)
			atomic.AddInt64(&stats.SyncConditions, int64(len(deps)))
			if mine {
				for _, d := range deps {
					if latestFinished[d.Tid].v.Load() < d.Iter {
						atomic.AddInt64(&stats.Stalls, 1)
						for spins := 0; latestFinished[d.Tid].v.Load() < d.Iter; spins++ {
							if spins > 16 {
								runtime.Gosched()
							}
						}
					}
				}
				w.Execute(inv, it, tid)
				latestFinished[tid].v.Store(iterNum)
				atomic.AddInt64(&stats.Dispatches, 1)
			}
			iterNum++
		}
	}
}

package domore

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestRunStealingMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	w := newIrregular(rng, 20, 50, 64, 2)
	want := w.sequentialRun()
	stats := RunStealing(w, Options{Workers: 4})
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
	if stats.Iterations != 20*50 || stats.Dispatches != 20*50 {
		t.Fatalf("iterations/dispatches = %d/%d", stats.Iterations, stats.Dispatches)
	}
	if stats.SyncConditions == 0 {
		t.Fatal("expected dynamic dependences on a 64-cell space")
	}
}

func TestRunStealingNoConflicts(t *testing.T) {
	w := &irregular{data: make([]int64, 1000)}
	for inv := 0; inv < 5; inv++ {
		iters := make([][]uint64, 10)
		for it := range iters {
			iters[it] = []uint64{uint64(inv*10 + it)}
		}
		w.idx = append(w.idx, iters)
		for range iters {
			w.seqs = append(w.seqs, int64(len(w.seqs)+1))
		}
	}
	want := w.sequentialRun()
	stats := RunStealing(w, Options{Workers: 3})
	if stats.SyncConditions != 0 || stats.Stalls != 0 {
		t.Fatalf("conditions/stalls = %d/%d, want 0/0", stats.SyncConditions, stats.Stalls)
	}
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
}

// skewed is an independent workload where one iteration per invocation is
// much slower than the rest — the load-imbalance case work stealing exists
// for. With round-robin the straggler's thread also serializes the
// iterations dealt behind it; with stealing the other workers drain them.
type skewed struct {
	invs, iters int
	slowEvery   int
	hits        []atomic.Int32
}

func (s *skewed) Invocations() int       { return s.invs }
func (s *skewed) Iterations(inv int) int { return s.iters }
func (s *skewed) Sequential(inv int)     {}
func (s *skewed) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	return append(buf, uint64(inv*s.iters+iter))
}

func (s *skewed) Execute(inv, iter, tid int) {
	if iter%s.slowEvery == 0 {
		time.Sleep(200 * time.Microsecond)
	}
	s.hits[inv*s.iters+iter].Add(1)
}

func TestRunStealingExecutesEachIterationOnce(t *testing.T) {
	s := &skewed{invs: 8, iters: 24, slowEvery: 7}
	s.hits = make([]atomic.Int32, s.invs*s.iters)
	RunStealing(s, Options{Workers: 4})
	for i := range s.hits {
		if got := s.hits[i].Load(); got != 1 {
			t.Fatalf("iteration %d executed %d times", i, got)
		}
	}
}

func TestQuickStealingEquivalence(t *testing.T) {
	prop := func(seed int64, workers uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nw := int(workers%4) + 1
		w := newIrregular(rng, 8, 25, 24, 2)
		want := w.sequentialRun()
		RunStealing(w, Options{Workers: nw})
		for a := range want {
			if w.data[a] != want[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

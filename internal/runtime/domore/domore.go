// Package domore implements the DOMORE runtime engine (Chapter 3): the first
// non-speculative automatic parallelization runtime to exploit
// cross-invocation parallelism using runtime information.
//
// A scheduler thread executes the outer loop's sequential region, redundantly
// computes the addresses each inner-loop iteration will access (the
// computeAddr slice of §3.3.4), detects dynamic dependences through shadow
// memory (§3.2.1), and forwards synchronization conditions ⟨depTid,
// depIterNum⟩ followed by a dispatch record over per-worker lock-free queues
// (§3.2.2, Algorithms 1–2). Workers stall only on the conditions they
// receive — iterations from consecutive invocations overlap freely unless a
// dependence actually manifests, replacing the global barrier of Fig 3.2(a)
// with the pipelined plan of Fig 3.2(c).
//
// The package also provides the duplicated-scheduler variant of §3.4
// (Figs 3.8–3.9), which removes the dedicated scheduler thread so DOMORE can
// compose with SPECCROSS.
package domore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"crossinv/internal/runtime/queue"
	"crossinv/internal/runtime/sched"
	"crossinv/internal/runtime/shadow"
	"crossinv/internal/runtime/trace"
)

// Workload is the code region DOMORE parallelizes: an outer loop whose body
// is a sequential section followed by one parallelizable inner-loop
// invocation (the CG loop nest of Fig 3.1 is the canonical shape).
type Workload interface {
	// Invocations reports the number of inner-loop invocations (outer-loop
	// trip count).
	Invocations() int
	// Iterations reports the inner-loop trip count for invocation inv.
	// It is called after Sequential(inv), so bounds computed by the
	// sequential region are visible.
	Iterations(inv int) int
	// Sequential executes the outer-loop code preceding invocation inv
	// (statements A–C in the CG example). It runs on the scheduler thread.
	Sequential(inv int)
	// ComputeAddr appends the shared-memory addresses iteration (inv, iter)
	// will access to buf and returns it. This is the compiler-generated
	// computeAddr slice: it must be side-effect free (§3.3.4 aborts the
	// transformation otherwise). The caller owns buf, so implementations
	// stay allocation-free and safe for the concurrent replicas of
	// RunDuplicated (§3.4), which call ComputeAddr from every worker.
	ComputeAddr(inv, iter int, buf []uint64) []uint64
	// Execute runs the inner-loop body for iteration (inv, iter) on worker
	// tid. Under a multi-owner policy (LOCALWRITE) it is invoked once per
	// owner and must restrict its writes to addresses owned by tid.
	Execute(inv, iter, tid int)
}

// Options configures a DOMORE execution.
type Options struct {
	// Workers is the number of worker threads (the scheduler is extra).
	Workers int
	// Policy assigns iterations to workers; defaults to round-robin.
	Policy sched.Policy
	// NewPolicy, when set, constructs a thread-private policy instance for
	// each replica in RunDuplicated (replicas must not share policy scratch
	// state). Defaults to fresh round-robin instances; set it when using
	// LOCALWRITE or a custom policy with the duplicated scheduler.
	NewPolicy func() sched.Policy
	// Shadow is the dependence-detection store; defaults to a Sparse store.
	// For dense integer address spaces a shadow.Dense sized to the space is
	// markedly faster (§3.2.1 discusses the trade-off).
	Shadow shadow.Store
	// QueueCap is the per-worker condition-queue capacity (default 1024).
	QueueCap int
	// Trace, when non-nil, receives engine events: the scheduler emits on
	// trace.LaneScheduler (per-invocation epoch spans, schedule/addr-check/
	// sync-cond/dispatch records, queue-depth samples) and worker tid emits
	// on lane tid (iteration spans, stall spans carrying the ⟨depTid,
	// depIterNum⟩ condition, queue-empty backoff episodes). A nil Trace
	// compiles the hot path down to nil-receiver no-ops. Run and RunSharded
	// honor Trace (RunSharded additionally emits one KindShardChunk per
	// chunk per scheduler lane on lanes trace.LaneShardBase - l);
	// RunDuplicated and RunStealing ignore it — their replicated
	// schedulers have no single scheduler lane, so their event streams
	// would misattribute scheduling work (left to a future change).
	Trace *trace.Recorder

	// Lanes is the number of scheduler lanes RunSharded partitions shadow
	// memory across (default 4). Ignored by the other entry points.
	Lanes int
	// Batch is RunSharded's chunk size: the number of iterations scheduled
	// per lane handoff, and the granularity at which synchronization
	// conditions are batched onto the worker queues (default 256).
	Batch int
	// NewShard, when set, constructs the shadow store for one shard of
	// RunSharded's partitioned shadow memory; defaults to fresh Sparse
	// stores. Use Dense sub-stores for compact integer address spaces.
	// RunSharded ignores Shadow — the partition must be built per shard.
	NewShard func(shard int) shadow.Store
	// ConcurrentAddr lets RunSharded call ComputeAddr concurrently from
	// every scheduler lane (each lane redundantly computes the full
	// address set and keeps the addresses hashing to its shard), which
	// removes the serial address computation entirely. It requires the
	// same safety the concurrent replicas of RunDuplicated need — the
	// documented ComputeAddr contract — which interpreter-backed workloads
	// sharing one replay environment (mtcg, speccrossgen's DomoreView) do
	// not meet. When false (the default), the driver computes each chunk's
	// addresses serially into a reused arena and the lanes perform only
	// the sharded dependence detection, which is always safe. With
	// ConcurrentAddr, a stateful Policy requires NewPolicy, exactly like
	// RunDuplicated (each lane replays assignments on a private instance).
	ConcurrentAddr bool
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		panic(fmt.Sprintf("domore: invalid worker count %d", o.Workers))
	}
	if o.Policy == nil {
		o.Policy = sched.NewRoundRobin()
	}
	if o.Shadow == nil {
		o.Shadow = shadow.NewSparse()
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
}

// Stats reports what the runtime engine observed; the experiments harness
// uses these counters for Table 5.2 and the figure captions.
//
// Concurrency contract (audited, enforced by the stats_race_test regression
// under -race): while an engine runs, each field has exactly one writing
// discipline. Fields written only by the single scheduler goroutine use
// plain increments (all but Stalls in Run; AddrChecks, Iterations, and
// SyncConditions in RunStealing's sequential precompute; every field but
// Stalls and LaneWaits in RunSharded, whose driver alone merges lane
// results); fields written by concurrent goroutines use atomic.AddInt64
// (Stalls in every engine, LaneWaits in RunSharded's scheduler lanes,
// Dispatches in RunStealing, every field in RunDuplicated, whose scheduler
// is replicated per worker). A field is never written through both
// disciplines in one run, and the returned Stats is read only after all
// goroutines have joined, so callers may read it without synchronization.
type Stats struct {
	// Iterations is the total number of inner-loop iterations scheduled
	// (combined across invocations — the paper's global iteration numbers).
	Iterations int64
	// Dispatches counts (iteration, worker) pairs; equals Iterations under
	// single-owner policies and exceeds it under LOCALWRITE.
	Dispatches int64
	// SyncConditions counts ⟨depTid, depIterNum⟩ conditions forwarded — the
	// dynamic dependences that actually manifested across threads.
	SyncConditions int64
	// Stalls counts worker waits that found the dependence not yet
	// satisfied (i.e. the condition caused an actual pause).
	Stalls int64
	// AddrChecks counts shadow-memory lookups performed by the scheduler.
	AddrChecks int64
	// Batches counts batched queue publications by RunSharded's driver:
	// each is one ProduceBatch flush of a worker's buffered conditions and
	// dispatches. Deterministic for a given workload and options (flushes
	// happen at chunk boundaries and when the iteration-order publication
	// invariant forces one); zero under the other entry points.
	Batches int64
	// LaneWaits counts chunk-handoff wait episodes in RunSharded's
	// scheduler lanes: a lane found its next chunk not yet published and
	// spun. Timing-dependent (like Stalls); zero under the other entry
	// points.
	LaneWaits int64
}

// message kinds carried on the scheduler→worker queues.
const (
	kindDep int32 = iota // wait until latestFinished[Tid] >= Iter
	kindRun              // execute (Inv, Index); then publish Iter as finished
	kindEnd              // worker shutdown (the END_TOKEN of §3.3.2)
)

// cond is one queue message. For kindDep, Tid/Iter carry the dependence;
// for kindRun, Iter is the combined iteration number and Inv/Index locate
// the loop iteration to execute.
type cond struct {
	Kind  int32
	Tid   int32
	Iter  int64
	Inv   int32
	Index int32
}

// Run executes the workload under DOMORE with a dedicated scheduler thread
// (the Fig 3.2(c) plan) and returns execution statistics.
func Run(w Workload, opts Options) Stats {
	opts.fill()
	nw := opts.Workers

	queues := make([]*queue.SPSC[cond], nw)
	for i := range queues {
		queues[i] = queue.NewSPSC[cond](opts.QueueCap)
	}
	latestFinished := make([]paddedInt64, nw)
	for i := range latestFinished {
		latestFinished[i].v.Store(-1)
	}

	var stats Stats
	var wg sync.WaitGroup
	for tid := 0; tid < nw; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			trace.Labeled("domore", "worker", func() {
				worker(w, tid, queues[tid], latestFinished, &stats, opts.Trace.Lane(int32(tid)))
			})
		}(tid)
	}

	trace.Labeled("domore", "scheduler", func() {
		scheduler(w, opts, queues, &stats)
	})
	wg.Wait()
	return stats
}

// paddedInt64 keeps each worker's latestFinished slot on its own cache line.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// scheduler is Algorithm 1 plus the outer-loop sequential regions: for every
// iteration it computes the address set, assigns workers, detects conflicts
// in shadow memory, and forwards conditions followed by the dispatch record.
func scheduler(w Workload, opts Options, queues []*queue.SPSC[cond], stats *Stats) {
	nw := opts.Workers
	shadowMem := opts.Shadow
	owner, multiOwner := opts.Policy.(*sched.LocalWrite)
	sch := opts.Trace.Lane(trace.LaneScheduler)

	// Per-target pending dependence conditions for the current iteration,
	// deduplicated to the newest iteration per (target, depTid) pair.
	pending := make([][]cond, nw)

	iterNum := int64(0)
	var buf []uint64
	invocations := w.Invocations()
	for inv := 0; inv < invocations; inv++ {
		w.Sequential(inv)
		iters := w.Iterations(inv)
		sch.Emit(trace.KindEpochBegin, int64(inv), int64(inv+1), 0)
		for it := 0; it < iters; it++ {
			buf = w.ComputeAddr(inv, it, buf[:0])
			addrs := buf
			tids := opts.Policy.Assign(iterNum, addrs, nw)
			sch.Emit(trace.KindSchedule, 1, int64(inv), iterNum)
			sch.Emit(trace.KindAddrCheck, int64(len(addrs)), int64(inv), iterNum)
			for _, t := range tids {
				pending[t] = pending[t][:0]
			}
			for _, a := range addrs {
				// The thread that will actually perform this access: the
				// single assignee, or the address's owner under LOCALWRITE.
				accessor := int32(tids[0])
				if multiOwner && len(tids) > 1 {
					accessor = int32(owner.Owner(a, nw))
				}
				stats.AddrChecks++
				dep := shadowMem.Lookup(a)
				if dep.Iter != shadow.None && dep.Tid != accessor {
					pending[accessor] = addDep(pending[accessor], dep.Tid, dep.Iter)
				}
				shadowMem.Update(a, accessor, iterNum)
			}
			for _, t := range tids {
				for _, d := range pending[t] {
					produce(queues[t], d, int64(t), sch)
					stats.SyncConditions++
					sch.Emit(trace.KindSyncCond, int64(t), int64(d.Tid), d.Iter)
				}
				produce(queues[t], cond{Kind: kindRun, Iter: iterNum, Inv: int32(inv), Index: int32(it)}, int64(t), sch)
				stats.Dispatches++
				sch.Emit(trace.KindDispatch, int64(t), iterNum, 0)
				if sch.Enabled() {
					sch.Emit(trace.KindQueueDepth, int64(queues[t].Len()), int64(t), 0)
				}
			}
			stats.Iterations++
			iterNum++
		}
		sch.Emit(trace.KindEpochCommit, 1, int64(inv), int64(inv+1))
	}
	for t, q := range queues {
		produce(q, cond{Kind: kindEnd}, int64(t), sch)
	}
}

// produce forwards one message to worker owner's queue, recording a
// queue-full backoff episode on tt when the ring has no room. The fast
// path is a single TryProduce, so with tracing disabled (nil tt) it
// degrades to exactly queue.Produce.
func produce(q *queue.SPSC[cond], c cond, owner int64, tt *trace.ThreadTrace) {
	if q.TryProduce(c) {
		return
	}
	tt.Emit(trace.KindQueueFullBegin, owner, 0, 0)
	for spins := 1; ; spins++ {
		if q.TryProduce(c) {
			tt.Emit(trace.KindQueueFullEnd, owner, 0, 0)
			return
		}
		queue.Backoff(spins)
	}
}

// consume receives one message from worker owner's queue, recording a
// queue-empty backoff episode on tt when the ring is dry; see produce.
func consume(q *queue.SPSC[cond], owner int64, tt *trace.ThreadTrace) cond {
	if v, ok := q.TryConsume(); ok {
		return v
	}
	tt.Emit(trace.KindQueueEmptyBegin, owner, 0, 0)
	for spins := 1; ; spins++ {
		if v, ok := q.TryConsume(); ok {
			tt.Emit(trace.KindQueueEmptyEnd, owner, 0, 0)
			return v
		}
		queue.Backoff(spins)
	}
}

// addDep appends a ⟨depTid, depIter⟩ condition, keeping only the newest
// iteration per dependence source thread.
func addDep(deps []cond, tid int32, iter int64) []cond {
	for i := range deps {
		if deps[i].Tid == tid {
			if iter > deps[i].Iter {
				deps[i].Iter = iter
			}
			return deps
		}
	}
	return append(deps, cond{Kind: kindDep, Tid: tid, Iter: iter})
}

// worker is Algorithm 2: consume conditions, stall on unsatisfied
// dependences, execute dispatched iterations, and publish completion.
func worker(w Workload, tid int, q *queue.SPSC[cond], latestFinished []paddedInt64, stats *Stats, tt *trace.ThreadTrace) {
	for {
		c := consume(q, int64(tid), tt)
		switch c.Kind {
		case kindEnd:
			return
		case kindDep:
			if latestFinished[c.Tid].v.Load() < c.Iter {
				atomic.AddInt64(&stats.Stalls, 1)
				tt.Emit(trace.KindStallBegin, int64(c.Tid), c.Iter, 0)
				for spins := 0; latestFinished[c.Tid].v.Load() < c.Iter; spins++ {
					queue.Backoff(spins)
				}
				tt.Emit(trace.KindStallEnd, int64(c.Tid), c.Iter, 0)
			}
		case kindRun:
			tt.Emit(trace.KindIterStart, int64(c.Inv), int64(c.Index), c.Iter)
			w.Execute(int(c.Inv), int(c.Index), tid)
			latestFinished[tid].v.Store(c.Iter)
			tt.Emit(trace.KindIterEnd, int64(c.Inv), int64(c.Index), c.Iter)
		}
	}
}

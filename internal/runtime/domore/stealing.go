package domore

import (
	"runtime"
	"sync"
	"sync/atomic"

	"crossinv/internal/runtime/trace"
)

// RunStealing executes the workload under DOMORE with dynamic load
// balancing — the scheduling policy §3.3.3 plans as future work
// ("Integration of a work stealing scheduler similar to Cilk").
//
// The dedicated scheduler still detects dependences through shadow memory
// (Algorithm 1), but because the executing worker of an iteration is no
// longer known at scheduling time, synchronization conditions carry only
// dependence iteration numbers: shadow memory records the last accessing
// *iteration* per address, and a worker waits on per-iteration completion
// flags instead of the per-thread latestFinished watermark. Iterations are
// dealt into a shared pool that idle workers drain, so a straggler no
// longer delays the iterations queued behind it on a fixed thread — the
// load-balancing benefit Cilk-style stealing buys, combined with DOMORE's
// cross-invocation conditions (§4.5.4 explains why classic work stealing
// alone cannot cross barriers).
func RunStealing(w Workload, opts Options) Stats {
	opts.fill()
	nw := opts.Workers

	type task struct {
		inv, iter int
		iterNum   int64
		deps      []int64
	}
	tasks := make(chan task, opts.QueueCap)

	// Per-iteration completion flags, stored in a two-level table whose
	// outer layer is fixed-size: the scheduler installs a chunk before
	// publishing any task that references it (the channel send orders the
	// installation before the workers' loads), and workers never observe a
	// reallocating append.
	const chunkBits = 14
	const chunkSize = 1 << chunkBits
	const maxChunks = 1 << 16 // ≈10⁹ iterations
	table := make([][]atomic.Bool, maxChunks)
	flag := func(i int64) *atomic.Bool {
		return &table[i>>chunkBits][i&(chunkSize-1)]
	}

	var stats Stats
	var wg sync.WaitGroup
	for tid := 0; tid < nw; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			trace.Labeled("domore", "worker", func() {
				for t := range tasks {
					for _, d := range t.deps {
						if !flag(d).Load() {
							atomic.AddInt64(&stats.Stalls, 1)
							for spins := 0; !flag(d).Load(); spins++ {
								if spins > 16 {
									runtime.Gosched()
								}
							}
						}
					}
					w.Execute(t.inv, t.iter, tid)
					flag(t.iterNum).Store(true)
					atomic.AddInt64(&stats.Dispatches, 1)
				}
			})
		}(tid)
	}

	trace.Labeled("domore", "scheduler", func() {
		shadowMem := opts.Shadow
		var deps []int64
		var buf []uint64
		iterNum := int64(0)
		invocations := w.Invocations()
		for inv := 0; inv < invocations; inv++ {
			w.Sequential(inv)
			iters := w.Iterations(inv)
			for it := 0; it < iters; it++ {
				buf = w.ComputeAddr(inv, it, buf[:0])
				addrs := buf
				deps = deps[:0]
				for _, a := range addrs {
					stats.AddrChecks++
					dep := shadowMem.Lookup(a)
					// Skip self-dependences: an iteration that lists an address
					// twice would otherwise wait on its own completion flag.
					if dep.Iter >= 0 && dep.Iter != iterNum {
						deps = appendDep(deps, dep.Iter)
					}
					shadowMem.Update(a, 0, iterNum)
				}
				if chunk := iterNum >> chunkBits; table[chunk] == nil {
					table[chunk] = make([]atomic.Bool, chunkSize)
				}
				tasks <- task{inv: inv, iter: it, iterNum: iterNum, deps: append([]int64(nil), deps...)}
				stats.Iterations++
				stats.SyncConditions += int64(len(deps))
				iterNum++
			}
		}
		close(tasks)
	})
	wg.Wait()
	return stats
}

func appendDep(deps []int64, d int64) []int64 {
	for _, x := range deps {
		if x == d {
			return deps
		}
	}
	return append(deps, d)
}

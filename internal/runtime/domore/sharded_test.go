package domore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crossinv/internal/runtime/sched"
	"crossinv/internal/runtime/shadow"
	"crossinv/internal/runtime/trace"
)

func TestRunShardedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := newIrregular(rng, 20, 50, 64, 2)
	want := w.sequentialRun()
	stats := RunSharded(w, Options{Workers: 4})
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
	if stats.Iterations != 20*50 {
		t.Fatalf("Iterations = %d, want %d", stats.Iterations, 20*50)
	}
	if stats.SyncConditions == 0 {
		t.Fatal("expected cross-thread dependences on a 64-cell space with 1000 iterations")
	}
	if stats.Batches == 0 {
		t.Fatal("Batches = 0; the sharded driver publishes through batched flushes")
	}
}

// TestRunShardedScheduleEquivalence is the core sharding claim: for the
// same workload, RunSharded produces exactly Run's schedule — every
// deterministic Stats field agrees, in both address-sourcing modes and
// across lane counts and chunk sizes that do and don't divide the
// invocation length. Stalls/LaneWaits/Batches are timing- or mode-specific
// and deliberately excluded.
func TestRunShardedScheduleEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name       string
		lanes      int
		batch      int
		concurrent bool
	}{
		{"serial-4x256", 4, 256, false},
		{"serial-3x7", 3, 7, false},
		{"serial-1x1", 1, 1, false},
		{"concurrent-4x64", 4, 64, true},
		{"concurrent-2x13", 2, 13, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() *irregular {
				return newIrregular(rand.New(rand.NewSource(1234)), 16, 45, 48, 3)
			}
			ref := mk()
			want := Run(ref, Options{Workers: 4})

			w := mk()
			got := RunSharded(w, Options{
				Workers: 4, Lanes: tc.lanes, Batch: tc.batch, ConcurrentAddr: tc.concurrent,
			})
			for a := range ref.data {
				if w.data[a] != ref.data[a] {
					t.Fatalf("data[%d] = %d, Run produced %d", a, w.data[a], ref.data[a])
				}
			}
			if got.Iterations != want.Iterations {
				t.Errorf("Iterations = %d, Run = %d", got.Iterations, want.Iterations)
			}
			if got.Dispatches != want.Dispatches {
				t.Errorf("Dispatches = %d, Run = %d", got.Dispatches, want.Dispatches)
			}
			if got.SyncConditions != want.SyncConditions {
				t.Errorf("SyncConditions = %d, Run = %d", got.SyncConditions, want.SyncConditions)
			}
			if got.AddrChecks != want.AddrChecks {
				t.Errorf("AddrChecks = %d, Run = %d", got.AddrChecks, want.AddrChecks)
			}
		})
	}
}

// TestRunShardedLocalWrite covers multi-owner scheduling: the serial mode
// shares the driver's LocalWrite (lanes only call its pure Owner), the
// concurrent mode replays assignments on per-lane instances via NewPolicy.
func TestRunShardedLocalWrite(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := "serial"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			mk := func() *localWorkload {
				rng := rand.New(rand.NewSource(5))
				return &localWorkload{irregular: *newIrregular(rng, 10, 30, 40, 3), space: 40, workers: 4}
			}
			ref := mk()
			want := Run(ref, Options{Workers: 4, Policy: sched.NewLocalWrite(40)})

			w := mk()
			got := RunSharded(w, Options{
				Workers:        4,
				Lanes:          3,
				Batch:          11,
				Policy:         sched.NewLocalWrite(40),
				NewPolicy:      func() sched.Policy { return sched.NewLocalWrite(40) },
				ConcurrentAddr: concurrent,
			})
			for a := range ref.data {
				if w.data[a] != ref.data[a] {
					t.Fatalf("data[%d] = %d, Run produced %d", a, w.data[a], ref.data[a])
				}
			}
			if got.Dispatches != want.Dispatches || got.SyncConditions != want.SyncConditions ||
				got.Iterations != want.Iterations || got.AddrChecks != want.AddrChecks {
				t.Errorf("sharded stats %+v disagree with Run %+v", got, want)
			}
			if got.Dispatches < got.Iterations {
				t.Errorf("Dispatches (%d) < Iterations (%d); multi-owner iterations should fan out", got.Dispatches, got.Iterations)
			}
		})
	}
}

// TestRunShardedTinyQueues drives the batched publication path through
// constant backpressure: chunks far larger than the rings force every
// flush to split and spin. This is the regression test for the
// iteration-order publication invariant — a driver that buffers a
// dispatch past a condition referencing it deadlocks here (worker stalled
// on an unpublished dispatch while the driver spins on its full ring).
func TestRunShardedTinyQueues(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	w := newIrregular(rng, 12, 64, 16, 2) // 16-cell space: dependences everywhere
	want := w.sequentialRun()
	stats := RunSharded(w, Options{Workers: 3, Lanes: 2, Batch: 64, QueueCap: 2})
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
	if stats.SyncConditions == 0 {
		t.Fatal("tiny address space produced no cross-thread dependences; test lost its point")
	}
}

// TestRunShardedTraceParity asserts the trace-derived counters equal the
// engine's Stats — the same contract the workloadtest suite enforces for
// Run — plus the sharded-only invariant: every lane emits one
// KindShardChunk per chunk, and Batches is deterministic across runs.
func TestRunShardedTraceParity(t *testing.T) {
	run := func() (Stats, *trace.Summary) {
		rng := rand.New(rand.NewSource(9))
		w := newIrregular(rng, 10, 37, 32, 2)
		rec := trace.NewRecorder()
		stats := RunSharded(w, Options{Workers: 4, Lanes: 3, Batch: 10, Trace: rec})
		sum := rec.Summary()
		return stats, &sum
	}
	stats, sum := run()
	if sum.Counts[trace.KindSchedule] != stats.Iterations {
		t.Errorf("trace schedules %d != Iterations %d", sum.Counts[trace.KindSchedule], stats.Iterations)
	}
	if sum.Counts[trace.KindDispatch] != stats.Dispatches {
		t.Errorf("trace dispatches %d != Dispatches %d", sum.Counts[trace.KindDispatch], stats.Dispatches)
	}
	if sum.Counts[trace.KindSyncCond] != stats.SyncConditions {
		t.Errorf("trace sync conds %d != SyncConditions %d", sum.Counts[trace.KindSyncCond], stats.SyncConditions)
	}
	if sum.Sums[trace.KindAddrCheck] != stats.AddrChecks {
		t.Errorf("trace addr checks %d != AddrChecks %d", sum.Sums[trace.KindAddrCheck], stats.AddrChecks)
	}
	if sum.Counts[trace.KindStallBegin] != stats.Stalls {
		t.Errorf("trace stalls %d != Stalls %d", sum.Counts[trace.KindStallBegin], stats.Stalls)
	}
	// 10 invocations of 37 iterations in chunks of 10 → 4 chunks each.
	const wantChunks = 10 * 4
	if got := sum.Counts[trace.KindShardChunk]; got != wantChunks*3 {
		t.Errorf("trace shard chunks = %d, want %d chunks × 3 lanes", got, wantChunks*3)
	}
	stats2, _ := run()
	if stats2.Batches != stats.Batches {
		t.Errorf("Batches not deterministic: %d then %d", stats.Batches, stats2.Batches)
	}
}

// TestRunShardedDenseShards exercises the NewShard constructor with Dense
// sub-stores over the workload's compact address space.
func TestRunShardedDenseShards(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := newIrregular(rng, 10, 30, 32, 2)
	want := w.sequentialRun()
	RunSharded(w, Options{Workers: 4, NewShard: func(int) shadow.Store { return shadow.NewDense(32) }})
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
}

// Property: arbitrary access patterns, worker/lane/batch splits, both
// address modes — the sharded engine always reproduces the sequential
// result.
func TestRunShardedQuick(t *testing.T) {
	prop := func(seed int64, workers, lanes, batch uint8, concurrent bool) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newIrregular(rng, 8, 25, 24, 2)
		want := w.sequentialRun()
		RunSharded(w, Options{
			Workers:        int(workers%4) + 1,
			Lanes:          int(lanes%5) + 1,
			Batch:          int(batch%40) + 1,
			ConcurrentAddr: concurrent,
		})
		for a := range want {
			if w.data[a] != want[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRunShardedSteadyStateAllocs proves the zero-allocation steady state:
// growing the run by 1000 iterations must not grow its allocation count by
// more than rounding noise, because every chunk structure (cond lists,
// address arenas, assignment arrays, batch buffers) is reused. Fixed
// per-run costs (goroutines, queues, shadow headroom) cancel in the
// difference. AllocsPerRun pins GOMAXPROCS to 1, which doubles as a
// single-CPU liveness check for the lane handoff and batch consume spins.
func TestRunShardedSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	mkRun := func(invs int) func() {
		rng := rand.New(rand.NewSource(3))
		w := newIrregular(rng, invs, 50, 64, 2)
		return func() {
			RunSharded(w, Options{Workers: 2, Lanes: 2, Batch: 32})
		}
	}
	small := testing.AllocsPerRun(5, mkRun(4))   // 200 iterations
	big := testing.AllocsPerRun(5, mkRun(24))    // 1200 iterations
	marginal := (big - small) / float64(1000)
	if marginal > 0.05 {
		t.Errorf("marginal allocations = %.4f/iteration (small run %.0f, big run %.0f); steady state should reuse every buffer",
			marginal, small, big)
	}
}

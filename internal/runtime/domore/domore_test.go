package domore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crossinv/internal/runtime/sched"
	"crossinv/internal/runtime/shadow"
)

// irregular is a synthetic CG-shaped workload: an outer loop of invocations,
// each an inner loop whose iteration it updates data[idx[inv][it]] with a
// non-commutative function. The final value of every cell therefore depends
// on the exact order of the updates that touched it, which is precisely what
// DOMORE's runtime synchronization must preserve across invocations.
type irregular struct {
	idx  [][][]uint64 // idx[inv][it] = addresses accessed by that iteration
	data []int64
	seqs []int64 // sequence tags, one per combined iteration
}

func newIrregular(rng *rand.Rand, invocations, itersPerInv, space, addrsPerIter int) *irregular {
	w := &irregular{data: make([]int64, space)}
	tag := int64(1)
	for inv := 0; inv < invocations; inv++ {
		iters := make([][]uint64, itersPerInv)
		for it := range iters {
			as := make([]uint64, addrsPerIter)
			for k := range as {
				as[k] = uint64(rng.Intn(space))
			}
			iters[it] = as
			w.seqs = append(w.seqs, tag)
			tag++
		}
		w.idx = append(w.idx, iters)
	}
	return w
}

func (w *irregular) Invocations() int       { return len(w.idx) }
func (w *irregular) Iterations(inv int) int { return len(w.idx[inv]) }
func (w *irregular) Sequential(inv int)     {}
func (w *irregular) ComputeAddr(inv, it int, buf []uint64) []uint64 {
	return append(buf, w.idx[inv][it]...)
}

func (w *irregular) tagOf(inv, it int) int64 {
	n := 0
	for i := 0; i < inv; i++ {
		n += len(w.idx[i])
	}
	return w.seqs[n+it]
}

func (w *irregular) Execute(inv, it, tid int) {
	tag := w.tagOf(inv, it)
	for _, a := range w.idx[inv][it] {
		w.data[a] = w.data[a]*3 + tag // non-commutative: order-sensitive
	}
}

// sequentialRun computes the golden result.
func (w *irregular) sequentialRun() []int64 {
	data := make([]int64, len(w.data))
	for inv := range w.idx {
		for it := range w.idx[inv] {
			tag := w.tagOf(inv, it)
			for _, a := range w.idx[inv][it] {
				data[a] = data[a]*3 + tag
			}
		}
	}
	return data
}

func TestRunMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := newIrregular(rng, 20, 50, 64, 2)
	want := w.sequentialRun()
	stats := Run(w, Options{Workers: 4})
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
	if stats.Iterations != 20*50 {
		t.Fatalf("Iterations = %d, want %d", stats.Iterations, 20*50)
	}
	if stats.SyncConditions == 0 {
		t.Fatal("expected cross-thread dependences on a 64-cell space with 1000 iterations")
	}
}

func TestRunNoConflictsNoConditions(t *testing.T) {
	// Every iteration touches a distinct address → no dependences at all,
	// so the engine must forward zero synchronization conditions (the
	// fully-parallel case of Fig 3.5 before the conflict).
	w := &irregular{data: make([]int64, 1000)}
	for inv := 0; inv < 5; inv++ {
		iters := make([][]uint64, 10)
		for it := range iters {
			iters[it] = []uint64{uint64(inv*10 + it)}
		}
		w.idx = append(w.idx, iters)
		for range iters {
			w.seqs = append(w.seqs, int64(len(w.seqs)+1))
		}
	}
	want := w.sequentialRun()
	stats := Run(w, Options{Workers: 3})
	if stats.SyncConditions != 0 {
		t.Fatalf("SyncConditions = %d, want 0 for disjoint accesses", stats.SyncConditions)
	}
	if stats.Stalls != 0 {
		t.Fatalf("Stalls = %d, want 0", stats.Stalls)
	}
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
}

func TestRunSingleWorker(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := newIrregular(rng, 5, 20, 16, 1)
	want := w.sequentialRun()
	Run(w, Options{Workers: 1})
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
}

func TestRunDenseShadow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := newIrregular(rng, 10, 30, 32, 2)
	want := w.sequentialRun()
	Run(w, Options{Workers: 4, Shadow: shadow.NewDense(32)})
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
}

func TestRunDuplicatedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	w := newIrregular(rng, 15, 40, 48, 2)
	want := w.sequentialRun()
	stats := RunDuplicated(w, Options{Workers: 4})
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
	if stats.Iterations != 15*40 {
		t.Fatalf("normalized Iterations = %d, want %d", stats.Iterations, 15*40)
	}
	if stats.Dispatches != 15*40 {
		t.Fatalf("Dispatches = %d, want %d (each iteration executed once)", stats.Dispatches, 15*40)
	}
}

// localWorkload exercises LOCALWRITE scheduling: iterations touch several
// addresses and each owner applies only its own updates.
type localWorkload struct {
	irregular
	space   int
	workers int
}

func (w *localWorkload) Execute(inv, it, tid int) {
	part := sched.NewLocalWrite(uint64(w.space))
	tag := w.tagOf(inv, it)
	for _, a := range w.idx[inv][it] {
		if part.Owner(a, w.workers) == tid {
			w.data[a] = w.data[a]*3 + tag
		}
	}
}

func TestRunLocalWritePolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := newIrregular(rng, 10, 30, 40, 3)
	w := &localWorkload{irregular: *base, space: 40, workers: 4}
	want := w.sequentialRun()
	stats := Run(w, Options{Workers: 4, Policy: sched.NewLocalWrite(40)})
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
	if stats.Dispatches < stats.Iterations {
		t.Fatalf("Dispatches (%d) < Iterations (%d); multi-owner iterations should fan out", stats.Dispatches, stats.Iterations)
	}
}

func TestInvalidWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with 0 workers did not panic")
		}
	}()
	Run(&irregular{}, Options{Workers: 0})
}

// Property: for arbitrary irregular access patterns and worker counts, both
// DOMORE variants produce exactly the sequential result.
func TestQuickEquivalence(t *testing.T) {
	prop := func(seed int64, workers uint8, dup bool) bool {
		rng := rand.New(rand.NewSource(seed))
		nw := int(workers%4) + 1
		w := newIrregular(rng, 8, 25, 24, 2)
		want := w.sequentialRun()
		if dup {
			RunDuplicated(w, Options{Workers: nw})
		} else {
			Run(w, Options{Workers: nw})
		}
		for a := range want {
			if w.data[a] != want[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDomoreIrregular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := rand.New(rand.NewSource(1))
		w := newIrregular(rng, 20, 100, 256, 2)
		b.StartTimer()
		Run(w, Options{Workers: 4})
	}
}

package domore

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestStatsCountersRace is the regression for the Stats concurrency
// contract (see the Stats doc comment): it drives every engine over a
// conflict-dense workload with enough workers that the worker-side atomic
// increments (Stalls everywhere, Dispatches under stealing, everything
// under the duplicated scheduler) run concurrently with the engine's
// single-writer plain increments. Under `go test -race` any field written
// through both disciplines — or read before the joins — is reported; in a
// plain run it still pins the counter totals.
func TestStatsCountersRace(t *testing.T) {
	const invs, iters = 40, 64
	engines := []struct {
		name string
		run  func(Workload, Options) Stats
	}{
		{"dedicated", Run},
		{"duplicated", RunDuplicated},
		{"stealing", RunStealing},
	}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			w := newIrregular(rng, invs, iters, 32, 2)
			want := w.sequentialRun()

			stats := eng.run(w, Options{Workers: 4})
			if !reflect.DeepEqual(w.data, want) {
				t.Fatal("parallel result diverged from sequential")
			}
			if stats.Iterations != invs*iters {
				t.Fatalf("Iterations = %d, want %d", stats.Iterations, invs*iters)
			}
			if stats.Dispatches != stats.Iterations {
				t.Fatalf("Dispatches = %d != Iterations %d under a single-owner policy",
					stats.Dispatches, stats.Iterations)
			}
			// 32 cells shared by 2560 two-address iterations: cross-worker
			// dependences must have manifested.
			if stats.SyncConditions == 0 {
				t.Fatal("no synchronization conditions on a conflict-dense workload")
			}
			if stats.AddrChecks == 0 {
				t.Fatal("no shadow lookups recorded")
			}
		})
	}
}

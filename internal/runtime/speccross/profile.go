package speccross

import (
	"math"

	"crossinv/internal/runtime/signature"
)

// ProfileResult reports what the profiling run (§4.4) observed. The paper's
// profiling library runs the parallelized program with non-speculative
// barriers on a training input, records every cross-epoch conflict, and
// derives the minimum dependence distance used to bound speculation.
type ProfileResult struct {
	// Tasks and Epochs describe the profiled region.
	Tasks  int64
	Epochs int64
	// Conflicts counts cross-epoch signature conflicts observed. Epoch
	// scans that provably cannot lower MinDistance (or the per-loop
	// minimum) are pruned, so far-apart conflicts beyond the current
	// minima may go uncounted; Conflicts is a lower bound on the true
	// pair count, while the distance minima are exact within the window.
	Conflicts int64
	// MinDistance is the minimum number of tasks between any two
	// conflicting tasks (global task numbering), or NoConflict if no
	// conflict was observed. Table 5.3 reports this per benchmark.
	MinDistance int64
	// PerLoop gives the minimum dependence distance per loop label, for
	// workloads implementing Labeler (FLUIDANIMATE-2's per-inner-loop
	// distances in Table 5.3). Loops with no observed conflict are absent.
	PerLoop map[string]int64
}

// NoConflict is the MinDistance value when profiling observed no
// cross-epoch conflicts (the "*" entries of Table 5.3).
const NoConflict int64 = math.MaxInt64

// DefaultProfileWindow is the comparison window generated code and the
// daemon profile with: the default Config.CheckpointEvery. The engine never
// overlaps epochs across a checkpoint boundary, so distances at or beyond
// the checkpoint period can never cause a misspeculation and a window of
// that period loses nothing — while keeping the profiling pass linear in
// epochs instead of quadratic.
const DefaultProfileWindow = 1000

// Recommended returns the speculative-range bound to use at runtime:
// the observed minimum distance, or 0 (unbounded) when no conflict was
// observed. Profitable reports whether speculation is advisable at all —
// the paper declines to speculate when the distance is below the worker
// count (§4.4: "If the minimum dependence distance is smaller than a
// threshold value, speculation will not be done. By default, the threshold
// value is set to be equal to the number of worker threads.").
func (r *ProfileResult) Recommended(workers int) (specDistance int64, profitable bool) {
	if r.MinDistance == NoConflict {
		return 0, true
	}
	return r.MinDistance, r.MinDistance >= int64(workers)
}

// PerEpoch returns a per-epoch speculative bound from the per-loop minimum
// distances, for workloads implementing Labeler: epochs of loops with no
// observed conflict speculate unbounded, the rest use their loop's profiled
// distance. Install the result as Config.SpecDistanceOf.
func (r *ProfileResult) PerEpoch(w Workload) func(epoch int) int64 {
	labeler, ok := w.(Labeler)
	if !ok {
		d, _ := r.Recommended(1)
		return func(int) int64 { return d }
	}
	return func(epoch int) int64 {
		if d, ok := r.PerLoop[labeler.EpochLabel(epoch)]; ok {
			return d
		}
		return 0
	}
}

// Profile executes the workload sequentially in epoch order, computing each
// task's signature and comparing it against the signatures of tasks from
// earlier epochs within the given window of preceding epochs. window <= 0
// means compare against every earlier epoch (exact but quadratic); the
// engine only ever overlaps epochs within a checkpoint segment, so a window
// of the checkpoint period is exact in practice.
//
// Profiling never mutates speculation state and uses the workload's own Run
// with a live signature, exactly like the paper's shared profiling/
// speculation interface (Table 4.1: the same inserted calls serve both
// modes, selected by MODE).
func Profile(w Workload, kind signature.Kind, window int) ProfileResult {
	res := ProfileResult{MinDistance: NoConflict, PerLoop: map[string]int64{}}
	labeler, hasLabels := w.(Labeler)

	epochs := w.Epochs()
	res.Epochs = int64(epochs)

	type profTask struct {
		global int64
		sig    *signature.Signature
	}
	perEpoch := make([][]profTask, 0, epochs)

	global := int64(0)
	for e := 0; e < epochs; e++ {
		n := w.Tasks(e)
		cur := make([]profTask, 0, n)
		label := ""
		if hasLabels {
			label = labeler.EpochLabel(e)
		}
		lo := 0
		if window > 0 && e-window > 0 {
			lo = e - window
		}
		for t := 0; t < n; t++ {
			sig := signature.New(kind)
			w.Run(e, t, 0, sig)
			res.Tasks++
			mine := profTask{global: global, sig: sig}
			global++
			if !sig.Empty() {
				for pe := lo; pe < e; pe++ {
					prior := perEpoch[pe]
					if len(prior) == 0 {
						continue
					}
					// Distance pruning: the closest possible conflict with
					// epoch pe is against its last task. If even that
					// distance cannot lower the global minimum or this
					// loop's per-loop minimum, the whole epoch scan is
					// unproductive. (Absent per-loop entries mean the label
					// still has everything to learn, so no pruning then.)
					if closest := mine.global - prior[len(prior)-1].global; closest >= res.MinDistance {
						if pl, ok := res.PerLoop[label]; ok && closest >= pl {
							continue
						}
					}
					for i := range perEpoch[pe] {
						prev := &perEpoch[pe][i]
						if prev.sig != nil && sig.Conflicts(prev.sig) {
							res.Conflicts++
							d := mine.global - prev.global
							if d < res.MinDistance {
								res.MinDistance = d
							}
							if cur, ok := res.PerLoop[label]; !ok || d < cur {
								res.PerLoop[label] = d
							}
						}
					}
				}
			}
			cur = append(cur, mine)
		}
		perEpoch = append(perEpoch, cur)
	}
	return res
}

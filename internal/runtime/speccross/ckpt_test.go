package speccross

import (
	"testing"

	"crossinv/internal/runtime/signature"
)

// deltaArrayWorkload is a DeltaWorkload with a large state and a small
// per-task write set: each task owns the cells congruent to its task index
// and writes a few of them per epoch (record-before-write), so tasks of one
// epoch are independent and tasks of different epochs conflict only within
// one owner — which always runs on the same worker row, so the checker
// never flags it. Misspeculation is driven by injection instead.
type deltaArrayWorkload struct {
	epochs, tasks, cells int
	writesPerTask        int
	state                []int64
	irr                  map[int]bool
}

func newDeltaArray(epochs, tasks, cells int) *deltaArrayWorkload {
	return &deltaArrayWorkload{
		epochs: epochs, tasks: tasks, cells: cells, writesPerTask: 4,
		state: make([]int64, cells),
		irr:   map[int]bool{},
	}
}

func (w *deltaArrayWorkload) Epochs() int             { return w.epochs }
func (w *deltaArrayWorkload) Tasks(int) int           { return w.tasks }
func (w *deltaArrayWorkload) Irreversible(e int) bool { return w.irr[e] }
func (w *deltaArrayWorkload) Snapshot() any           { return append([]int64(nil), w.state...) }
func (w *deltaArrayWorkload) Restore(s any)           { copy(w.state, s.([]int64)) }

func (w *deltaArrayWorkload) StateLen() int                       { return w.cells }
func (w *deltaArrayWorkload) ReadCell(c uint64) int64             { return w.state[c] }
func (w *deltaArrayWorkload) WriteCell(c uint64, v int64)         { w.state[c] = v }
func (w *deltaArrayWorkload) AddrCells(a uint64) (uint64, uint64) { return a, a + 1 }

func (w *deltaArrayWorkload) cellOf(e, t, j int) int {
	slots := w.cells / w.tasks
	return t + ((e*3+j*7)%slots)*w.tasks
}

func (w *deltaArrayWorkload) Run(e, t, tid int, sig *signature.Signature) {
	for j := 0; j < w.writesPerTask; j++ {
		c := w.cellOf(e, t, j)
		if sig != nil {
			sig.Write(uint64(c))
		}
		w.state[c] = w.state[c]*3 + int64(e*1000+t*10+j+1)
	}
}

func (w *deltaArrayWorkload) sequential() []int64 {
	saved := append([]int64(nil), w.state...)
	for e := 0; e < w.epochs; e++ {
		for t := 0; t < w.tasks; t++ {
			w.Run(e, t, 0, nil)
		}
	}
	out := w.state
	w.state = saved
	return out
}

// TestIncrementalCheckpointEquivalence runs the same workload — including
// an irreversible epoch (untracked execution forcing a full base rebuild)
// and an injected misspeculation (forcing a delta rollback) — under full
// and incremental checkpointing and requires identical final state, equal
// to the sequential replay.
func TestIncrementalCheckpointEquivalence(t *testing.T) {
	build := func() *deltaArrayWorkload {
		w := newDeltaArray(40, 8, 1<<14)
		w.irr[17] = true
		return w
	}
	want := build().sequential()

	results := map[CheckpointMode]*deltaArrayWorkload{}
	var incStats Stats
	for _, mode := range []CheckpointMode{CkptFull, CkptIncremental} {
		w := build()
		st := Run(w, Config{
			Workers:           4,
			SigKind:           signature.Exact,
			CheckpointEvery:   10,
			Checkpoint:        mode,
			ForceMisspecEpoch: 25,
		})
		if st.Misspeculations != 1 {
			t.Fatalf("mode %v: Misspeculations = %d, want the 1 injected", mode, st.Misspeculations)
		}
		results[mode] = w
		if mode == CkptIncremental {
			incStats = st
		}
	}

	for mode, w := range results {
		for i := range want {
			if w.state[i] != want[i] {
				t.Fatalf("mode %v: state[%d] = %d, sequential = %d", mode, i, w.state[i], want[i])
			}
		}
	}

	if incStats.DeltaCheckpoints == 0 {
		t.Error("incremental mode took no delta checkpoints")
	}
	if incStats.DeltaRestores != 1 {
		t.Errorf("DeltaRestores = %d, want 1 (the injected abort)", incStats.DeltaRestores)
	}
	// The point of checkpoint substitution: total refreshed cells must be
	// bounded by the tracked write set, far below one full copy per
	// checkpoint. Upper bound: every task write distinct across all
	// committed segments.
	maxDirty := int64(40 * 8 * 4)
	if incStats.DeltaCells > maxDirty {
		t.Errorf("DeltaCells = %d, want <= %d (write-set bound)", incStats.DeltaCells, maxDirty)
	}
	if full := int64(1 << 14); incStats.DeltaCells >= full {
		t.Errorf("DeltaCells = %d >= one full state copy (%d); substitution saved nothing", incStats.DeltaCells, full)
	}
}

// TestCkptIncrementalRequiresDeltaWorkload pins the configuration error:
// forcing incremental checkpoints on a workload with no delta view must
// panic rather than silently fall back.
func TestCkptIncrementalRequiresDeltaWorkload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with CkptIncremental on a non-delta workload did not panic")
		}
	}()
	g := newGrid(4, 4, 2, 8)
	Run(g, Config{Workers: 2, Checkpoint: CkptIncremental})
}

// TestBlockGranularDeltaSpans exercises AddrCells spans wider than one
// cell: block-granular signature addresses must refresh and roll back the
// whole block.
func TestBlockGranularDeltaSpans(t *testing.T) {
	const blocks, blockSize = 16, 8
	w := &blockDeltaWorkload{
		epochs: 20, tasks: 4,
		state: make([]int64, blocks*blockSize),
	}
	want := w.sequential()
	st := Run(w, Config{
		Workers:           2,
		SigKind:           signature.Exact,
		CheckpointEvery:   5,
		Checkpoint:        CkptIncremental,
		ForceMisspecEpoch: 7,
	})
	if st.Misspeculations != 1 {
		t.Fatalf("Misspeculations = %d, want 1", st.Misspeculations)
	}
	if st.DeltaRestores != 1 {
		t.Fatalf("DeltaRestores = %d, want 1", st.DeltaRestores)
	}
	for i := range want {
		if w.state[i] != want[i] {
			t.Fatalf("state[%d] = %d, sequential = %d", i, w.state[i], want[i])
		}
	}
}

// blockDeltaWorkload records block-granular addresses (block b covers cells
// [8b, 8b+8)) and mutates every cell of the block, like the chunked
// kernels (EQUAKE, BLACKSCHOLES).
type blockDeltaWorkload struct {
	epochs, tasks int
	state         []int64
}

const blockCells = 8

func (w *blockDeltaWorkload) Epochs() int   { return w.epochs }
func (w *blockDeltaWorkload) Tasks(int) int { return w.tasks }
func (w *blockDeltaWorkload) Snapshot() any { return append([]int64(nil), w.state...) }
func (w *blockDeltaWorkload) Restore(s any) { copy(w.state, s.([]int64)) }

func (w *blockDeltaWorkload) StateLen() int               { return len(w.state) }
func (w *blockDeltaWorkload) ReadCell(c uint64) int64     { return w.state[c] }
func (w *blockDeltaWorkload) WriteCell(c uint64, v int64) { w.state[c] = v }
func (w *blockDeltaWorkload) AddrCells(a uint64) (uint64, uint64) {
	return a * blockCells, (a + 1) * blockCells
}

func (w *blockDeltaWorkload) blockOf(e, t int) int {
	blocks := len(w.state) / blockCells
	// Owner partitioning as in deltaArrayWorkload, at block granularity.
	perOwner := blocks / w.tasks
	return t + ((e*5)%perOwner)*w.tasks
}

func (w *blockDeltaWorkload) Run(e, t, tid int, sig *signature.Signature) {
	b := w.blockOf(e, t)
	if sig != nil {
		sig.Write(uint64(b))
	}
	for i := 0; i < blockCells; i++ {
		c := b*blockCells + i
		w.state[c] = w.state[c]*5 + int64(e*100+t*10+i+1)
	}
}

func (w *blockDeltaWorkload) sequential() []int64 {
	saved := append([]int64(nil), w.state...)
	for e := 0; e < w.epochs; e++ {
		for t := 0; t < w.tasks; t++ {
			w.Run(e, t, 0, nil)
		}
	}
	out := w.state
	w.state = saved
	return out
}

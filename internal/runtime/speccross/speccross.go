// Package speccross implements the SPECCROSS runtime system (Chapter 4): a
// software-only speculative barrier. Worker threads execute past loop
// invocation boundaries (epochs) without synchronizing; each task publishes
// a memory-access signature; a checker thread compares signatures of tasks
// from *different* epochs that overlapped in time (signatures from the same
// epoch are never compared — the inner loops are independently parallelized,
// which is the advantage over TM-style speculation Fig 4.4 illustrates).
// On misspeculation the runtime restores the last checkpoint and re-executes
// the affected epochs with non-speculative barriers (§4.2.2).
//
// The package also provides the profiling mode of §4.4, which computes the
// minimum dependence distance used to bound the speculative range at runtime.
package speccross

import (
	"fmt"
	"time"

	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/trace"
)

// Workload is the code region SPECCROSS parallelizes: a sequence of epochs
// (parallel loop invocations separated by barriers in the baseline), each a
// set of independent tasks (loop iterations).
type Workload interface {
	// Epochs reports the number of barriers/invocations in the region.
	Epochs() int
	// Tasks reports the number of tasks in the given epoch.
	Tasks(epoch int) int
	// Run executes one task on worker tid. When sig is non-nil the body
	// must record its shared-memory accesses into it (the spec_access
	// instrumentation Algorithm 5 inserts); sig is nil during
	// non-speculative (re-)execution, where no tracking is needed.
	Run(epoch, task, tid int, sig *signature.Signature)
	// Snapshot captures the speculatively-mutated state. It is invoked only
	// at epoch boundaries with all workers quiescent.
	Snapshot() any
	// Restore rolls the state back to a snapshot taken by Snapshot.
	Restore(snapshot any)
}

// DeltaWorkload is optionally implemented by workloads whose speculative
// state is an addressable array of int64 cells (the signature address of a
// cell is its index). It enables incremental copy-on-write checkpoints
// (§4.2.2's checkpoint substitution): instead of a full Snapshot per
// segment, the engine keeps one base image and refreshes or restores only
// the cells the segment's tracked write set touched, so checkpoint and
// recovery cost scale with dirty state rather than heap size.
//
// Contract: during speculative execution every state mutation must be
// recorded with Signature.Write *before* the store is performed
// (record-before-write). Signature addresses need not be element-granular:
// AddrCells maps each one to the state cell span it covers, and every cell
// a task actually stores to must lie inside the span of some address the
// task recorded. Addresses whose span falls outside [0, StateLen) —
// sentinel conflict addresses, for example — are ignored by the
// checkpointer. Run calls with a nil signature (barrier recovery,
// irreversible epochs) are untracked; the engine rebuilds the full base
// image after them. A StateLen of 0 declares the workload delta-incapable
// (no sound address→cell mapping is available) and keeps CkptAuto on full
// snapshots.
type DeltaWorkload interface {
	Workload
	// StateLen reports the number of state cells (0 disables incremental
	// checkpointing).
	StateLen() int
	// ReadCell returns the current value of one cell.
	ReadCell(cell uint64) int64
	// WriteCell overwrites one cell; the engine uses it to roll dirty
	// cells back to their checkpoint values.
	WriteCell(cell uint64, v int64)
	// AddrCells resolves a signature address to the state cell span
	// [lo, hi) it covers — the identity mapping (addr, addr+1) when
	// signature addresses are element indices.
	AddrCells(addr uint64) (lo, hi uint64)
}

// CheckpointMode selects how segment checkpoints are taken.
type CheckpointMode int

const (
	// CkptAuto (the default) uses incremental checkpoints when the
	// workload implements DeltaWorkload and full snapshots otherwise.
	CkptAuto CheckpointMode = iota
	// CkptFull forces full Snapshot/Restore checkpoints.
	CkptFull
	// CkptIncremental requires incremental checkpoints; Run panics if the
	// workload does not implement DeltaWorkload.
	CkptIncremental
)

// Irreversibler is optionally implemented by workloads with epochs that
// perform irreversible operations (I/O); such epochs are executed
// non-speculatively between two full synchronizations (§4.2.2).
type Irreversibler interface {
	Irreversible(epoch int) bool
}

// Labeler optionally names the loop each epoch is an invocation of, so the
// profiler can report a minimum dependence distance per loop (the loop_name
// parameter of enter_barrier in Table 4.1).
type Labeler interface {
	EpochLabel(epoch int) string
}

// Config tunes a SPECCROSS execution.
type Config struct {
	// Workers is the number of worker threads. One additional checker
	// thread is spawned (§4.2.1), so total concurrency is Workers+1.
	Workers int
	// SigKind selects the signature scheme (default Range, §4.2.1).
	SigKind signature.Kind
	// SpecDistance is the speculation bound in tasks: a worker stalls when
	// it would run SpecDistance or more tasks ahead of the laggard thread
	// (the minimum dependence distance from profiling, §4.4), so any task
	// pair separated by at least the profiled distance is ordered. Zero or
	// negative means unbounded speculation.
	SpecDistance int64
	// SpecDistanceOf, when set, overrides SpecDistance per epoch — the
	// per-loop minimum dependence distances of §4.4 (Table 4.1 passes
	// spec_distance to enter_task per loop; Table 5.3 reports per-loop
	// values for FLUIDANIMATE). The bound applies to tasks of that epoch.
	SpecDistanceOf func(epoch int) int64
	// CheckpointEvery is the number of epochs between checkpoints
	// (default 1000, §4.2.2).
	CheckpointEvery int
	// Checkpoint selects full-snapshot or incremental checkpoints
	// (default CkptAuto: incremental whenever the workload implements
	// DeltaWorkload).
	Checkpoint CheckpointMode
	// QueueCap is the per-worker request-queue capacity (default 1024).
	QueueCap int
	// CheckerShards is the number of checker threads (default 2, clamped
	// to Workers — the parallelized checker §5.2 names as future work
	// after identifying the single checker thread as the scaling
	// bottleneck; set 1 to reproduce the paper's single-checker design).
	// Each shard drains a subset of the worker queues against a shared
	// signature log sharded by worker row, each row guarded by its own
	// lock; every shard logs its entry before comparing, so for any
	// overlapping pair at least the later-logged side observes the
	// earlier one.
	CheckerShards int
	// SpecTimeout, when positive, bounds the wall-clock duration of one
	// speculative segment; exceeding it triggers misspeculation (the
	// user-defined timeout of §4.2.2, guarding against speculative updates
	// that change loop exit conditions).
	SpecTimeout time.Duration
	// ForceMisspecEpoch, when positive, artificially triggers one
	// misspeculation upon completion of a task of that epoch — the
	// fault-injection mode Fig 5.3's "with misspec." series uses.
	// Zero (the default) disables injection.
	ForceMisspecEpoch int
	// Trace, when non-nil, receives engine events: segment control
	// (epoch begin/commit/abort, misspeculation, checkpoint/restore,
	// recovery spans) on trace.LaneControl, speculative task spans and
	// range stalls on worker lanes 0..Workers-1, and signature
	// comparisons / check requests on checker lanes (shard s emits on
	// trace.LaneCheckerBase - s). A nil Trace compiles the hot path down
	// to nil-receiver no-ops.
	Trace *trace.Recorder
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		panic(fmt.Sprintf("speccross: invalid worker count %d", c.Workers))
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1000
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.CheckerShards <= 0 {
		c.CheckerShards = 2
	}
	if c.CheckerShards > c.Workers {
		c.CheckerShards = c.Workers
	}
	if c.ForceMisspecEpoch == 0 {
		c.ForceMisspecEpoch = -1
	}
}

// Stats reports what the runtime observed; Table 5.3 is generated from
// these counters.
//
// Concurrency contract (audited, enforced by the stats_race_test regression
// under -race): Tasks and RangeStalls are incremented with atomic.AddInt64
// by concurrent workers; CheckRequests, Comparisons, PrefilterChecks, and
// PrefilterHits with atomic.AddInt64 by the checker shards; Epochs, Misspeculations,
// Checkpoints, ReexecutedEpochs, DeltaCheckpoints, DeltaCells, and
// DeltaRestores with plain increments by the engine goroutine alone, at
// segment boundaries where workers and checker are quiescent. The returned
// Stats is read only after every thread has joined, so callers may read it
// without synchronization.
type Stats struct {
	// Tasks is the number of task executions, excluding re-execution.
	Tasks int64
	// Epochs is the number of epochs executed speculatively.
	Epochs int64
	// CheckRequests counts checking requests sent to the checker thread
	// whose comparison window was non-empty (requests against an empty
	// window are logged but skipped, the optimization §4.1.3 describes).
	CheckRequests int64
	// Comparisons counts signature pairs compared by the checker.
	Comparisons int64
	// Misspeculations counts detected violations (signature conflicts,
	// worker panics, injected faults, and timeouts).
	Misspeculations int64
	// Checkpoints counts snapshots taken.
	Checkpoints int64
	// ReexecutedEpochs counts epochs re-executed with non-speculative
	// barriers after misspeculation.
	ReexecutedEpochs int64
	// RangeStalls counts tasks that stalled on the speculative-range bound.
	RangeStalls int64
	// PrefilterChecks counts checker union pre-filter tests: one per
	// candidate (worker, epoch) log row an arriving signature was screened
	// against. Rows whose running union does not conflict skip the precise
	// per-task scan, so Comparisons only counts survivors.
	PrefilterChecks int64
	// PrefilterHits counts the pre-filter tests that passed (the union
	// conflicted, forcing a precise per-task scan). The hit rate
	// PrefilterHits/PrefilterChecks is the cheap checker-pressure signal
	// the adaptive monitor samples.
	PrefilterHits int64
	// DeltaCheckpoints counts checkpoints taken incrementally (a subset of
	// Checkpoints); DeltaCells is the total number of state cells those
	// checkpoints refreshed in the base image.
	DeltaCheckpoints int64
	DeltaCells       int64
	// DeltaRestores counts incremental rollbacks: misspeculation recoveries
	// that rewrote only the segment's dirty cells instead of restoring a
	// full snapshot.
	DeltaRestores int64
}

// packET packs an (epoch, task) pair so positions can be compared with a
// single integer comparison and published with a single atomic store; the
// 64-bit write atomicity requirement §4.2.1 calls out is what the atomic
// gives us on every architecture.
func packET(epoch, task int32) uint64 {
	return uint64(uint32(epoch))<<32 | uint64(uint32(task))
}

func unpackET(v uint64) (epoch, task int32) {
	return int32(v >> 32), int32(uint32(v))
}

package speccross

import (
	"runtime"
	"sync"
	"sync/atomic"

	"crossinv/internal/runtime/queue"
	"crossinv/internal/runtime/trace"
)

// checker is the violation-detection state (§4.2.1, Fig 4.7). One or more
// checker threads (Config.CheckerShards; the paper uses one and names
// parallelizing it as future work, §5.2) drain the per-worker request
// queues and compare each arriving task's signature against logged
// signatures of tasks from *different* epochs that overlapped it in time.
// Same-epoch signatures are never compared — the epochs are independently
// parallelized loops, which is the saving over TM-style speculation
// (Fig 4.4).
//
// Overlap pairing is bidirectional. For an arriving task r:
//
//   - r is the later-epoch side against any logged task s of another thread
//     with s.epoch < r.epoch and s at-or-after the watermark r recorded for
//     s's thread when r began ("epochs earlier than the signature's epoch,
//     but at least as recent as the epoch-task pair recorded when the task
//     began", §4.2.1);
//   - r is the earlier-epoch side against any logged later-epoch task s
//     whose own watermark for r's thread was at-or-before r's position —
//     meaning r had not finished when s began, so they overlapped.
//
// Each shard logs the entry (write lock) *before* comparing (read lock), so
// for any overlapping pair processed concurrently by different shards, the
// later-logged side observes the earlier one: every cross-epoch overlapping
// pair is checked at least once.
type checker struct {
	workers int
	start   int // first epoch of the segment

	mu sync.RWMutex
	// log[tid][e-start] holds the entries logged for worker tid in epoch e
	// (the signature-log rows of Fig 4.8).
	log [][][]taskEntry
	// maxEpoch[tid] is the highest epoch index (relative) logged per worker.
	maxEpoch []int
}

func newChecker(workers, start, end int) *checker {
	c := &checker{
		workers:  workers,
		start:    start,
		log:      make([][][]taskEntry, workers),
		maxEpoch: make([]int, workers),
	}
	for i := range c.log {
		c.log[i] = make([][]taskEntry, end-start)
		c.maxEpoch[i] = -1
	}
	return c
}

// run consumes requests from the given queue subset until each has sent its
// end token. It flags misspeculation on the shared state when a conflict is
// found and keeps draining so no worker blocks on a full queue during
// shutdown.
func (c *checker) run(queues []*queue.SPSC[request], st *specState, stats *Stats, tt *trace.ThreadTrace) {
	finished := make([]bool, len(queues))
	remaining := len(queues)
	for remaining > 0 {
		progress := false
		for qi, q := range queues {
			if finished[qi] {
				continue
			}
			req, ok := q.TryConsume()
			if !ok {
				continue
			}
			progress = true
			if req.end {
				finished[qi] = true
				remaining--
				continue
			}
			c.process(req.entry, st, stats, tt)
		}
		if !progress {
			// Nothing buffered on any queue: let the workers run. The
			// checker's latency only delays detection, never progress.
			runtime.Gosched()
		}
	}
}

// process logs the entry and performs both comparison directions.
func (c *checker) process(e taskEntry, st *specState, stats *Stats, tt *trace.ThreadTrace) {
	epoch, _ := unpackET(e.pos)
	rel := int(epoch) - c.start

	// Empty signatures cannot conflict with anything; skip both the log and
	// the comparisons (the "guaranteed independent" skip of §4.1.3).
	if e.sig.Empty() {
		return
	}

	// Log first (see the type comment for why ordering matters with
	// sharded checkers).
	c.mu.Lock()
	c.log[e.tid][rel] = append(c.log[e.tid][rel], e)
	if rel > c.maxEpoch[e.tid] {
		c.maxEpoch[e.tid] = rel
	}
	c.mu.Unlock()

	c.mu.RLock()
	defer c.mu.RUnlock()

	windowNonEmpty := false

	// Direction 1: e is the later-epoch side.
	for o := 0; o < c.workers; o++ {
		if o == int(e.tid) {
			continue
		}
		wmEpoch, _ := unpackET(e.wm[o])
		if int(wmEpoch) < int(epoch) {
			windowNonEmpty = true
		}
		lo := int(wmEpoch) - c.start
		if lo < 0 {
			lo = 0
		}
		for re := lo; re < rel && re <= c.maxEpoch[o]; re++ {
			for i := range c.log[o][re] {
				s := &c.log[o][re][i]
				if s.pos < e.wm[o] {
					continue // finished before e began: ordered, no overlap
				}
				atomic.AddInt64(&stats.Comparisons, 1)
				tt.Emit(trace.KindSigCheck, int64(s.tid), int64(s.pos), 0)
				if e.sig.Conflicts(s.sig) {
					st.misspec.CompareAndSwap(misspecNone, misspecConflict)
					return
				}
			}
		}
	}

	// Direction 2: e is the earlier-epoch side of already-logged tasks from
	// later epochs that began before e finished.
	for o := 0; o < c.workers; o++ {
		if o == int(e.tid) {
			continue
		}
		for re := rel + 1; re <= c.maxEpoch[o]; re++ {
			for i := range c.log[o][re] {
				s := &c.log[o][re][i]
				if s.wm[e.tid] > e.pos {
					continue // s began after e finished: ordered
				}
				windowNonEmpty = true
				atomic.AddInt64(&stats.Comparisons, 1)
				tt.Emit(trace.KindSigCheck, int64(s.tid), int64(s.pos), 0)
				if e.sig.Conflicts(s.sig) {
					st.misspec.CompareAndSwap(misspecNone, misspecConflict)
					return
				}
			}
		}
	}

	if windowNonEmpty {
		atomic.AddInt64(&stats.CheckRequests, 1)
		tt.Emit(trace.KindCheckRequest, int64(e.tid), int64(e.pos), 0)
	}
}

package speccross

import (
	"runtime"
	"sync"
	"sync/atomic"

	"crossinv/internal/runtime/queue"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/trace"
)

// checker is the violation-detection state (§4.2.1, Fig 4.7). One or more
// checker threads (Config.CheckerShards; the paper uses one and names
// parallelizing it as future work, §5.2) drain the per-worker request
// queues and compare each arriving task's signature against logged
// signatures of tasks from *different* epochs that overlapped it in time.
// Same-epoch signatures are never compared — the epochs are independently
// parallelized loops, which is the saving over TM-style speculation
// (Fig 4.4).
//
// Overlap pairing is bidirectional. For an arriving task r:
//
//   - r is the later-epoch side against any logged task s of another thread
//     with s.epoch < r.epoch and s at-or-after the watermark r recorded for
//     s's thread when r began ("epochs earlier than the signature's epoch,
//     but at least as recent as the epoch-task pair recorded when the task
//     began", §4.2.1);
//   - r is the earlier-epoch side against any logged later-epoch task s
//     whose own watermark for r's thread was at-or-before r's position —
//     meaning r had not finished when s began, so they overlapped.
//
// The log is sharded by worker row, each row guarded by its own lock, so
// shards comparing against different workers' histories never contend.
// Each shard logs the entry (write lock on its own row) *before* scanning
// the other rows (read locks), which preserves the coverage argument
// pairwise per row: for any overlapping pair (a, b) processed concurrently
// by different shards, if a's scan of b's row missed b, then a's read of
// that row completed before b was appended — so b's later scan of a's row,
// which b performs only after appending itself, observes a. Every
// cross-epoch overlapping pair is checked at least once.
//
// Two summaries amortize the scans:
//
//   - union[rel] is the running union signature of every entry logged for
//     (worker, epoch): a conservative pre-filter. If the arriving
//     signature does not conflict with the union, it conflicts with no
//     entry, and the precise per-task scan is skipped.
//   - minWM[rel] is the element-wise minimum watermark vector over the
//     row-epoch's entries: the direction-2 overlap test "some logged task
//     began before r finished" becomes one comparison instead of a scan.
type checker struct {
	workers int
	start   int // first epoch of the segment
	kind    signature.Kind
	rows    []checkerRow
}

// checkerRow is the signature-log row of one worker (Fig 4.8), with its
// per-epoch entries, union signatures, and watermark minima.
type checkerRow struct {
	mu sync.RWMutex
	// log[e-start] holds the entries logged for this worker in epoch e.
	log [][]taskEntry
	// union[e-start] is the union of all logged signatures for the epoch.
	union []*signature.Signature
	// minWM[e-start][t] is the minimum watermark any logged entry of the
	// epoch recorded for worker t, or nil when nothing is logged yet.
	minWM [][]uint64
	// maxEpoch is the highest epoch index (relative) logged.
	maxEpoch int
}

func newChecker(workers int, kind signature.Kind, start, end int) *checker {
	c := &checker{
		workers: workers,
		start:   start,
		kind:    kind,
		rows:    make([]checkerRow, workers),
	}
	for i := range c.rows {
		r := &c.rows[i]
		r.log = make([][]taskEntry, end-start)
		r.union = make([]*signature.Signature, end-start)
		r.minWM = make([][]uint64, end-start)
		r.maxEpoch = -1
	}
	return c
}

// run consumes requests from the given queue subset until each has sent its
// end token. It flags misspeculation on the shared state when a conflict is
// found and keeps draining so no worker blocks on a full queue during
// shutdown.
func (c *checker) run(queues []*queue.SPSC[request], st *specState, stats *Stats, tt *trace.ThreadTrace) {
	finished := make([]bool, len(queues))
	remaining := len(queues)
	for remaining > 0 {
		progress := false
		for qi, q := range queues {
			if finished[qi] {
				continue
			}
			req, ok := q.TryConsume()
			if !ok {
				continue
			}
			progress = true
			if req.end {
				finished[qi] = true
				remaining--
				continue
			}
			c.process(req.entry, st, stats, tt)
		}
		if !progress {
			// Nothing buffered on any queue: let the workers run. The
			// checker's latency only delays detection, never progress.
			runtime.Gosched()
		}
	}
}

// process logs the entry and performs both comparison directions.
func (c *checker) process(e taskEntry, st *specState, stats *Stats, tt *trace.ThreadTrace) {
	epoch, _ := unpackET(e.pos)
	rel := int(epoch) - c.start

	// Empty signatures cannot conflict with anything; skip both the log and
	// the comparisons (the "guaranteed independent" skip of §4.1.3).
	if e.sig.Empty() {
		return
	}

	// Seal while this shard still solely owns the entry: exact sets sort
	// lazily, and after logging, other shards may compare against the
	// signature concurrently — those comparisons must be pure reads.
	e.sig.Seal()

	// Log first (see the type comment for why ordering matters with
	// sharded checkers). The row's union stays sealed under the same lock,
	// so readers always see a sorted accumulator.
	row := &c.rows[e.tid]
	row.mu.Lock()
	row.log[rel] = append(row.log[rel], e)
	if row.union[rel] == nil {
		row.union[rel] = signature.New(c.kind)
	}
	row.union[rel].Union(e.sig)
	row.union[rel].Seal()
	if row.minWM[rel] == nil {
		row.minWM[rel] = append([]uint64(nil), e.wm...)
	} else {
		mw := row.minWM[rel]
		for i, w := range e.wm {
			if w < mw[i] {
				mw[i] = w
			}
		}
	}
	if rel > row.maxEpoch {
		row.maxEpoch = rel
	}
	row.mu.Unlock()

	windowNonEmpty := false
	conflict := false

	for o := 0; o < c.workers && !conflict; o++ {
		if o == int(e.tid) {
			continue
		}
		wmEpoch, _ := unpackET(e.wm[o])
		if int(wmEpoch) < int(epoch) {
			windowNonEmpty = true
		}
		lo := int(wmEpoch) - c.start
		if lo < 0 {
			lo = 0
		}
		orow := &c.rows[o]
		orow.mu.RLock()

		// Direction 1: e is the later-epoch side.
		for re := lo; re < rel && re <= orow.maxEpoch; re++ {
			u := orow.union[re]
			if u == nil {
				continue
			}
			atomic.AddInt64(&stats.PrefilterChecks, 1)
			if !e.sig.Conflicts(u) {
				tt.Emit(trace.KindSigPrefilter, 0, int64(o), int64(re))
				continue
			}
			atomic.AddInt64(&stats.PrefilterHits, 1)
			tt.Emit(trace.KindSigPrefilter, 1, int64(o), int64(re))
			for i := range orow.log[re] {
				s := &orow.log[re][i]
				if s.pos < e.wm[o] {
					continue // finished before e began: ordered, no overlap
				}
				atomic.AddInt64(&stats.Comparisons, 1)
				tt.Emit(trace.KindSigCheck, int64(s.tid), int64(s.pos), 0)
				if e.sig.Conflicts(s.sig) {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
		}

		// Direction 2: e is the earlier-epoch side of already-logged tasks
		// from later epochs that began before e finished.
		for re := rel + 1; re <= orow.maxEpoch && !conflict; re++ {
			mw := orow.minWM[re]
			if mw == nil || mw[e.tid] > e.pos {
				continue // every logged task began after e finished: ordered
			}
			windowNonEmpty = true
			u := orow.union[re]
			atomic.AddInt64(&stats.PrefilterChecks, 1)
			if !e.sig.Conflicts(u) {
				tt.Emit(trace.KindSigPrefilter, 0, int64(o), int64(re))
				continue
			}
			atomic.AddInt64(&stats.PrefilterHits, 1)
			tt.Emit(trace.KindSigPrefilter, 1, int64(o), int64(re))
			for i := range orow.log[re] {
				s := &orow.log[re][i]
				if s.wm[e.tid] > e.pos {
					continue // s began after e finished: ordered
				}
				atomic.AddInt64(&stats.Comparisons, 1)
				tt.Emit(trace.KindSigCheck, int64(s.tid), int64(s.pos), 0)
				if e.sig.Conflicts(s.sig) {
					conflict = true
					break
				}
			}
		}

		orow.mu.RUnlock()
	}

	if conflict {
		st.misspec.CompareAndSwap(misspecNone, misspecConflict)
		return
	}

	if windowNonEmpty {
		atomic.AddInt64(&stats.CheckRequests, 1)
		tt.Emit(trace.KindCheckRequest, int64(e.tid), int64(e.pos), 0)
	}
}

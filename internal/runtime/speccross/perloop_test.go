package speccross

import (
	"testing"

	"crossinv/internal/raceflag"
	"crossinv/internal/runtime/signature"
)

// twoLoopWorkload alternates a conflict-free loop (disjoint blocks per
// epoch) with a tightly-conflicting loop, so the per-loop distances differ
// and per-epoch gating matters (the FLUIDANIMATE situation of §5.4).
type twoLoopWorkload struct {
	*gridWorkload
}

func newTwoLoop(epochs, tasks int) *twoLoopWorkload {
	g := newGrid(epochs, tasks, 1, 0)
	g.data = make([]int64, 4*tasks*epochs)
	return &twoLoopWorkload{gridWorkload: g}
}

func (w *twoLoopWorkload) base(epoch, task int) int {
	if epoch%2 == 0 {
		// Loop L1: a fresh disjoint block every invocation.
		return (epoch/2)*w.tasks + task
	}
	// Loop L2: the same block every invocation — conflicts at distance
	// 2·tasks between consecutive L2 epochs.
	return 2*w.tasks*w.epochs + task
}

func (w *twoLoopWorkload) Run(epoch, task, tid int, sig *signature.Signature) {
	a := w.base(epoch, task)
	if sig != nil {
		sig.Read(uint64(a))
		sig.Write(uint64(a))
	}
	w.data[a] = w.data[a]*3 + int64(epoch*w.tasks+task+1)
}

func (w *twoLoopWorkload) sequential() []int64 {
	data := make([]int64, len(w.data))
	for e := 0; e < w.epochs; e++ {
		for t := 0; t < w.tasks; t++ {
			a := w.base(e, t)
			data[a] = data[a]*3 + int64(e*w.tasks+t+1)
		}
	}
	return data
}

func TestProfilePerLoopDistancesDiffer(t *testing.T) {
	w := newTwoLoop(12, 6)
	pr := Profile(w, signature.Exact, 0)
	d1, ok1 := pr.PerLoop["L1"]
	d2, ok2 := pr.PerLoop["L2"]
	if ok1 && d1 <= d2 {
		t.Fatalf("L1 distance %d should exceed L2's %d (L1 is conflict-free)", d1, d2)
	}
	if !ok2 || d2 != 12 {
		t.Fatalf("L2 distance = %d (ok=%v), want 2 epochs = 12", d2, ok2)
	}
}

func TestPerEpochGatingRunsCorrectly(t *testing.T) {
	w := newTwoLoop(12, 6)
	want := w.sequential()
	pr := Profile(newTwoLoop(12, 6), signature.Exact, 0)
	stats := Run(w, Config{
		Workers:         3,
		CheckpointEvery: 6,
		SigKind:         signature.Exact,
		SpecDistanceOf:  pr.PerEpoch(w),
	})
	for a := range want {
		if w.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, w.data[a], want[a])
		}
	}
	if stats.Misspeculations != 0 {
		t.Fatalf("misspeculations = %d with per-loop gating", stats.Misspeculations)
	}
}

func TestPerEpochFallsBackWithoutLabeler(t *testing.T) {
	// A workload without EpochLabel gets the global recommendation.
	g := newGrid(6, 4, 2, 0)
	pr := Profile(unlabeled{g}, signature.Exact, 0)
	f := pr.PerEpoch(unlabeled{g})
	if f(0) != f(3) {
		t.Fatal("global fallback must be epoch-independent")
	}
}

// unlabeled hides gridWorkload's EpochLabel (a named field, not an
// embedding, so no method promotion occurs).
type unlabeled struct{ g *gridWorkload }

func (u unlabeled) Epochs() int                               { return u.g.Epochs() }
func (u unlabeled) Tasks(e int) int                           { return u.g.Tasks(e) }
func (u unlabeled) Run(e, t, tid int, s *signature.Signature) { u.g.Run(e, t, tid, s) }
func (u unlabeled) Snapshot() any                             { return u.g.Snapshot() }
func (u unlabeled) Restore(s any)                             { u.g.Restore(s) }

func TestShardedCheckerDetectsConflicts(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("unbounded speculation over conflicting epochs races by design (§4.2.1)")
	}
	// With multiple checker shards, the log-then-compare ordering must
	// still catch every overlapping conflicting pair: run the conflicting
	// grid repeatedly and require the sequential result every time.
	for _, shards := range []int{1, 2, 4} {
		g := newGrid(12, 8, 4, 1)
		want := g.sequential()
		Run(g, Config{Workers: 4, CheckpointEvery: 3, CheckerShards: shards})
		for a := range want {
			if g.data[a] != want[a] {
				t.Fatalf("shards=%d: data[%d] = %d, want %d", shards, a, g.data[a], want[a])
			}
		}
	}
}

func TestShardedCheckerNoFalseMisspecWhenDisjoint(t *testing.T) {
	g := newGrid(10, 6, 3, 18) // fully disjoint epochs
	want := g.sequential()
	stats := Run(g, Config{Workers: 3, CheckpointEvery: 5, CheckerShards: 3})
	for a := range want {
		if g.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, g.data[a], want[a])
		}
	}
	if stats.Misspeculations != 0 {
		t.Fatalf("misspeculations = %d on disjoint epochs", stats.Misspeculations)
	}
}

func TestCheckerShardsClampedToWorkers(t *testing.T) {
	g := newGrid(4, 4, 2, 8)
	want := g.sequential()
	Run(g, Config{Workers: 2, CheckpointEvery: 4, CheckerShards: 16})
	for a := range want {
		if g.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, g.data[a], want[a])
		}
	}
}

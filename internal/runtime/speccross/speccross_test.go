package speccross

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"crossinv/internal/raceflag"
	"crossinv/internal/runtime/signature"
)

// gridWorkload is a synthetic program shaped like the paper's Fig 4.2:
// each epoch is a DOALL loop whose tasks touch disjoint address blocks
// (intra-epoch independence), while blocks are revisited across epochs with
// a configurable shift, creating cross-epoch dependences of a known
// distance. Updates are order-sensitive so any epoch-order violation that
// escaped detection would corrupt the checksum.
type gridWorkload struct {
	epochs    int
	tasks     int
	blockSize int
	shift     int // address shift per epoch; 0 = always conflict with the same block
	data      []int64
	slowTask  int           // tid-0 task to slow down (forces thread skew); -1 off
	slowDur   time.Duration // busy-wait duration for the slow task
	mu        sync.Mutex    // protects log
	log       []int         // irreversible-epoch journal
	irrEpochs map[int]bool
}

func newGrid(epochs, tasks, blockSize, shift int) *gridWorkload {
	return &gridWorkload{
		epochs: epochs, tasks: tasks, blockSize: blockSize, shift: shift,
		data:     make([]int64, tasks*blockSize+epochs*shift+blockSize),
		slowTask: -1, irrEpochs: map[int]bool{},
	}
}

func (g *gridWorkload) Epochs() int         { return g.epochs }
func (g *gridWorkload) Tasks(epoch int) int { return g.tasks }

func (g *gridWorkload) base(epoch, task int) int {
	return task*g.blockSize + epoch*g.shift
}

func (g *gridWorkload) Run(epoch, task, tid int, sig *signature.Signature) {
	if g.slowTask >= 0 && epoch == 0 && task == g.slowTask {
		deadline := time.Now().Add(g.slowDur)
		for time.Now().Before(deadline) {
		}
	}
	tag := int64(epoch*g.tasks + task + 1)
	b := g.base(epoch, task)
	for i := 0; i < g.blockSize; i++ {
		a := b + i
		if sig != nil {
			sig.Read(uint64(a))
			sig.Write(uint64(a))
		}
		g.data[a] = g.data[a]*3 + tag
	}
	if g.irrEpochs[epoch] {
		g.mu.Lock()
		g.log = append(g.log, epoch*g.tasks+task)
		g.mu.Unlock()
	}
}

func (g *gridWorkload) Snapshot() any {
	cp := make([]int64, len(g.data))
	copy(cp, g.data)
	return cp
}

func (g *gridWorkload) Restore(s any) {
	copy(g.data, s.([]int64))
}

func (g *gridWorkload) Irreversible(epoch int) bool { return g.irrEpochs[epoch] }

func (g *gridWorkload) EpochLabel(epoch int) string {
	if epoch%2 == 0 {
		return "L1"
	}
	return "L2"
}

// sequential computes the golden result on a fresh copy.
func (g *gridWorkload) sequential() []int64 {
	data := make([]int64, len(g.data))
	for e := 0; e < g.epochs; e++ {
		for t := 0; t < g.tasks; t++ {
			tag := int64(e*g.tasks + t + 1)
			b := g.base(e, t)
			for i := 0; i < g.blockSize; i++ {
				data[b+i] = data[b+i]*3 + tag
			}
		}
	}
	return data
}

func checkResult(t *testing.T, g *gridWorkload, want []int64) {
	t.Helper()
	for a := range want {
		if g.data[a] != want[a] {
			t.Fatalf("data[%d] = %d, want %d", a, g.data[a], want[a])
		}
	}
}

func TestRunBarriersMatchesSequential(t *testing.T) {
	g := newGrid(10, 12, 4, 2)
	want := g.sequential()
	bar := RunBarriers(g, 4)
	checkResult(t, g, want)
	if _, waits := bar.Stats(); waits == 0 {
		t.Fatal("expected barrier waits")
	}
}

func TestSpeculativeNoConflicts(t *testing.T) {
	// shift ≥ tasks*blockSize would be fully disjoint per epoch; instead use
	// conflicting layout but verify correctness either way. Here: disjoint.
	g := newGrid(8, 6, 3, 6*3)
	want := g.sequential()
	stats := Run(g, Config{Workers: 3, CheckpointEvery: 4})
	checkResult(t, g, want)
	if stats.Misspeculations != 0 {
		t.Fatalf("Misspeculations = %d, want 0 for disjoint epochs", stats.Misspeculations)
	}
	if stats.Tasks != 8*6 {
		t.Fatalf("Tasks = %d, want %d", stats.Tasks, 8*6)
	}
	if stats.Checkpoints == 0 {
		t.Fatal("expected checkpoints")
	}
}

func TestSpeculativeConflictingAlwaysCorrect(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("unbounded speculation over conflicting epochs races by design (§4.2.1); detection+rollback validated without -race")
	}
	// shift 1 < blockSize: task t of epoch e+1 overlaps task t−1 of epoch e,
	// which round-robin places on a *different* thread — genuine cross-thread
	// cross-epoch dependences. Whether or not an overlap manifests in time on
	// this host, the final state must be the sequential one.
	g := newGrid(12, 8, 4, 1)
	want := g.sequential()
	stats := Run(g, Config{Workers: 4, CheckpointEvery: 3})
	checkResult(t, g, want)
	t.Logf("misspeculations=%d reexecuted=%d comparisons=%d",
		stats.Misspeculations, stats.ReexecutedEpochs, stats.Comparisons)
}

func TestForcedMisspeculationRecovers(t *testing.T) {
	// Fully disjoint epochs (shift = tasks*blockSize): no genuine conflict
	// can fire, so the injected fault is the only misspeculation.
	g := newGrid(10, 6, 3, 18)
	want := g.sequential()
	stats := Run(g, Config{Workers: 3, CheckpointEvery: 5, ForceMisspecEpoch: 6})
	checkResult(t, g, want)
	if stats.Misspeculations != 1 {
		t.Fatalf("Misspeculations = %d, want exactly 1 injected", stats.Misspeculations)
	}
	if stats.ReexecutedEpochs != 5 {
		t.Fatalf("ReexecutedEpochs = %d, want 5 (the misspeculated segment)", stats.ReexecutedEpochs)
	}
}

func TestWorkerPanicTriggersRecovery(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("conflicting unbounded speculation, racy by design")
	}
	g := newGrid(6, 4, 2, 1)
	want := g.sequential()
	var fired bool
	w := &panicOnce{gridWorkload: g, fireEpoch: 2, fireTask: 1, fired: &fired}
	stats := Run(w, Config{Workers: 2, CheckpointEvery: 10})
	checkResult(t, g, want)
	if stats.Misspeculations != 1 {
		t.Fatalf("Misspeculations = %d, want 1 from the panic", stats.Misspeculations)
	}
}

// panicOnce panics the first time a given task runs speculatively,
// simulating the segmentation-fault misspeculation trigger of §4.2.2.
type panicOnce struct {
	*gridWorkload
	fireEpoch, fireTask int
	fired               *bool
}

func (p *panicOnce) Run(epoch, task, tid int, sig *signature.Signature) {
	if sig != nil && !*p.fired && epoch == p.fireEpoch && task == p.fireTask {
		*p.fired = true
		panic("injected speculative fault")
	}
	p.gridWorkload.Run(epoch, task, tid, sig)
}

func TestTimeoutTriggersMisspeculation(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("conflicting unbounded speculation, racy by design")
	}
	g := newGrid(4, 4, 2, 2)
	g.slowTask = 0
	g.slowDur = 60 * time.Millisecond
	want := g.sequential()
	stats := Run(g, Config{Workers: 2, CheckpointEvery: 100, SpecTimeout: 10 * time.Millisecond})
	checkResult(t, g, want)
	if stats.Misspeculations == 0 {
		t.Fatal("expected a timeout-triggered misspeculation")
	}
}

func TestIrreversibleEpochRunsExactlyOnce(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("conflicting unbounded speculation, racy by design")
	}
	g := newGrid(9, 5, 2, 1)
	g.irrEpochs[4] = true
	want := g.sequential()
	Run(g, Config{Workers: 3, CheckpointEvery: 100, ForceMisspecEpoch: 7})
	checkResult(t, g, want)
	// Epoch 4 journals once per task, exactly once despite the later
	// misspeculation (it sits in its own non-speculative segment with a
	// checkpoint after it, §4.2.2).
	if len(g.log) != 5 {
		t.Fatalf("irreversible epoch journaled %d entries, want 5", len(g.log))
	}
}

func TestSpecDistanceGating(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("gating below the conflict distance races by design; see §4.2.1")
	}
	g := newGrid(20, 4, 2, 2)
	g.slowTask = 1
	g.slowDur = 5 * time.Millisecond
	want := g.sequential()
	stats := Run(g, Config{Workers: 2, CheckpointEvery: 100, SpecDistance: 4})
	checkResult(t, g, want)
	if stats.RangeStalls == 0 {
		t.Log("no range stalls observed (host scheduling dependent); gating path untested this run")
	}
}

func TestSingleWorker(t *testing.T) {
	g := newGrid(6, 3, 2, 1)
	want := g.sequential()
	stats := Run(g, Config{Workers: 1})
	checkResult(t, g, want)
	if stats.Misspeculations != 0 {
		t.Fatalf("single worker cannot misspeculate, got %d", stats.Misspeculations)
	}
}

func TestInvalidWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with 0 workers did not panic")
		}
	}()
	Run(newGrid(1, 1, 1, 0), Config{Workers: 0})
}

func TestPackUnpackET(t *testing.T) {
	cases := []struct{ e, task int32 }{{0, 0}, {1, 2}, {1000, 65535}, {1 << 20, 1 << 20}}
	for _, c := range cases {
		e, task := unpackET(packET(c.e, c.task))
		if e != c.e || task != c.task {
			t.Fatalf("roundtrip (%d,%d) → (%d,%d)", c.e, c.task, e, task)
		}
	}
	if packET(2, 0) <= packET(1, 1<<30) {
		t.Fatal("epoch must dominate task in packed comparison")
	}
}

func TestProfileFindsMinDistance(t *testing.T) {
	// shift 0: task t of epoch e conflicts with task t of epoch e-1.
	// Global numbering: distance = tasks per epoch, exactly.
	g := newGrid(6, 7, 3, 0)
	res := Profile(g, signature.Range, 0)
	if res.MinDistance != 7 {
		t.Fatalf("MinDistance = %d, want 7", res.MinDistance)
	}
	if res.Conflicts == 0 {
		t.Fatal("expected conflicts")
	}
	if res.Tasks != 6*7 {
		t.Fatalf("Tasks = %d, want 42", res.Tasks)
	}
	spec, profitable := res.Recommended(4)
	if spec != 7 || !profitable {
		t.Fatalf("Recommended = (%d,%v), want (7,true)", spec, profitable)
	}
	if _, profitable := res.Recommended(16); profitable {
		t.Fatal("distance 7 must be unprofitable for 16 workers")
	}
}

func TestProfileNoConflict(t *testing.T) {
	g := newGrid(5, 4, 2, 4*2)
	res := Profile(g, signature.Range, 0)
	if res.MinDistance != NoConflict {
		t.Fatalf("MinDistance = %d, want NoConflict", res.MinDistance)
	}
	spec, profitable := res.Recommended(8)
	if spec != 0 || !profitable {
		t.Fatalf("Recommended = (%d,%v), want unbounded+profitable", spec, profitable)
	}
}

func TestProfilePerLoopLabels(t *testing.T) {
	g := newGrid(6, 5, 2, 0)
	res := Profile(g, signature.Range, 0)
	if len(res.PerLoop) == 0 {
		t.Fatal("expected per-loop distances with a Labeler workload")
	}
	for label, d := range res.PerLoop {
		if label != "L1" && label != "L2" {
			t.Fatalf("unexpected label %q", label)
		}
		if d < 5 {
			t.Fatalf("loop %s distance %d below epoch size", label, d)
		}
	}
}

// Property: for random shapes, worker counts, and checkpoint periods —
// with and without injected misspeculation — SPECCROSS always produces the
// sequential result.
func TestQuickAlwaysSequentialResult(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("random shifts include conflicting unbounded speculation, racy by design")
	}
	prop := func(seed int64, workers, ckpt uint8, inject bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := newGrid(4+rng.Intn(8), 2+rng.Intn(6), 1+rng.Intn(3), rng.Intn(4))
		want := g.sequential()
		cfg := Config{
			Workers:         int(workers%4) + 1,
			CheckpointEvery: int(ckpt%6) + 1,
		}
		if inject && g.epochs > 1 {
			cfg.ForceMisspecEpoch = 1 + rng.Intn(g.epochs-1)
		}
		Run(g, cfg)
		for a := range want {
			if g.data[a] != want[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpecCrossGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := newGrid(50, 32, 4, 4)
		b.StartTimer()
		Run(g, Config{Workers: 4, CheckpointEvery: 25})
	}
}

package speccross

import (
	"testing"

	"crossinv/internal/runtime/signature"
)

// TestStatsCountersRace is the regression for the Stats concurrency
// contract (see the Stats doc comment): worker threads bump Tasks and
// RangeStalls atomically while the checker shards bump PrefilterChecks,
// CheckRequests, and Comparisons, concurrently with the engine's plain
// segment-boundary counters. The workload's epochs are fully disjoint so the
// execution is data-race-free by construction, and an injected
// misspeculation drives the rollback/re-execution counters (also engine-side
// plain writes) without introducing a real conflict. `go test -race` flags
// any counter written through both disciplines; a plain run still pins the
// totals.
func TestStatsCountersRace(t *testing.T) {
	g := newGrid(60, 8, 4, 8*4) // shift = tasks*blockSize: disjoint epochs
	want := g.sequential()
	stats := Run(g, Config{
		Workers:           4,
		CheckpointEvery:   10,
		SpecDistance:      7, // exercise the RangeStalls atomic path too
		ForceMisspecEpoch: 25,
	})
	checkResult(t, g, want)

	if stats.Misspeculations != 1 {
		t.Fatalf("Misspeculations = %d, want the 1 injected", stats.Misspeculations)
	}
	if stats.ReexecutedEpochs != 10 {
		t.Fatalf("ReexecutedEpochs = %d, want the injected segment's 10", stats.ReexecutedEpochs)
	}
	// Speculative task executions cover at least the 50 clean epochs; the
	// aborted segment's partial attempt makes the exact total timing-
	// dependent.
	if min := int64(50 * 8); stats.Tasks < min {
		t.Fatalf("Tasks = %d, want >= %d", stats.Tasks, min)
	}
	if stats.Epochs < 50 {
		t.Fatalf("Epochs = %d, want >= 50 speculative epochs", stats.Epochs)
	}
	if stats.Checkpoints == 0 {
		t.Fatal("no checkpoints recorded")
	}
	// The grid's epochs occupy disjoint address ranges, so the union
	// pre-filter screens out every candidate row before the precise scan:
	// PrefilterChecks must run, Comparisons legitimately may not.
	if stats.CheckRequests == 0 || stats.PrefilterChecks == 0 {
		t.Fatal("checker counters untouched; the atomic checker path did not run")
	}
}

// transposedWorkload writes cell task*epochs + epoch per task: every cell is
// distinct (no real dependences), but a worker's per-epoch write envelope
// spans almost the whole array, so Range union pre-filters alias across
// epochs and the checker must fall through to the precise per-task scan —
// which then exonerates every pair. This pins the Comparisons atomic path
// (and its -race discipline) now that the pre-filter hides it from
// disjoint-envelope workloads.
type transposedWorkload struct {
	epochs, tasks int
	data          []int64
}

func (w *transposedWorkload) Epochs() int   { return w.epochs }
func (w *transposedWorkload) Tasks(int) int { return w.tasks }
func (w *transposedWorkload) Snapshot() any { return append([]int64(nil), w.data...) }
func (w *transposedWorkload) Restore(s any) { copy(w.data, s.([]int64)) }
func (w *transposedWorkload) cell(e, t int) int {
	return t*w.epochs + e
}

func (w *transposedWorkload) Run(epoch, task, tid int, sig *signature.Signature) {
	a := w.cell(epoch, task)
	if sig != nil {
		sig.Write(uint64(a))
	}
	w.data[a] = int64(epoch*w.tasks + task + 1)
}

func TestPrefilterAliasFallsThroughToPreciseScan(t *testing.T) {
	w := &transposedWorkload{epochs: 40, tasks: 8}
	w.data = make([]int64, w.tasks*w.epochs)
	stats := Run(w, Config{Workers: 4, CheckpointEvery: 10})
	for e := 0; e < w.epochs; e++ {
		for task := 0; task < w.tasks; task++ {
			if got, want := w.data[w.cell(e, task)], int64(e*w.tasks+task+1); got != want {
				t.Fatalf("cell(%d,%d) = %d, want %d", e, task, got, want)
			}
		}
	}
	if stats.Misspeculations != 0 {
		t.Fatalf("Misspeculations = %d, want 0 (all cells distinct)", stats.Misspeculations)
	}
	if stats.Comparisons == 0 {
		t.Fatal("Comparisons = 0; the transposed layout should alias the union pre-filter and force precise scans")
	}
	if stats.PrefilterChecks == 0 {
		t.Fatal("PrefilterChecks = 0; every precise scan is gated by a pre-filter test")
	}
}

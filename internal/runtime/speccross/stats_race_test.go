package speccross

import "testing"

// TestStatsCountersRace is the regression for the Stats concurrency
// contract (see the Stats doc comment): worker threads bump Tasks and
// RangeStalls atomically while the checker bumps CheckRequests and
// Comparisons, concurrently with the engine's plain segment-boundary
// counters. The workload's epochs are fully disjoint so the execution is
// data-race-free by construction, and an injected misspeculation drives the
// rollback/re-execution counters (also engine-side plain writes) without
// introducing a real conflict. `go test -race` flags any counter written
// through both disciplines; a plain run still pins the totals.
func TestStatsCountersRace(t *testing.T) {
	g := newGrid(60, 8, 4, 8*4) // shift = tasks*blockSize: disjoint epochs
	want := g.sequential()
	stats := Run(g, Config{
		Workers:           4,
		CheckpointEvery:   10,
		SpecDistance:      7, // exercise the RangeStalls atomic path too
		ForceMisspecEpoch: 25,
	})
	checkResult(t, g, want)

	if stats.Misspeculations != 1 {
		t.Fatalf("Misspeculations = %d, want the 1 injected", stats.Misspeculations)
	}
	if stats.ReexecutedEpochs != 10 {
		t.Fatalf("ReexecutedEpochs = %d, want the injected segment's 10", stats.ReexecutedEpochs)
	}
	// Speculative task executions cover at least the 50 clean epochs; the
	// aborted segment's partial attempt makes the exact total timing-
	// dependent.
	if min := int64(50 * 8); stats.Tasks < min {
		t.Fatalf("Tasks = %d, want >= %d", stats.Tasks, min)
	}
	if stats.Epochs < 50 {
		t.Fatalf("Epochs = %d, want >= 50 speculative epochs", stats.Epochs)
	}
	if stats.Checkpoints == 0 {
		t.Fatal("no checkpoints recorded")
	}
	if stats.CheckRequests == 0 || stats.Comparisons == 0 {
		t.Fatal("checker counters untouched; the atomic checker path did not run")
	}
}

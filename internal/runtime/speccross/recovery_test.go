package speccross

import (
	"runtime"
	"sync/atomic"
	"testing"

	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/trace"
)

// recoveryWorkload forces a signature conflict in chosen checkpoint
// segments deterministically: in a conflict pair (epochs a, a+1), the
// task (a, 0) records a sentinel address and then spins until task
// (a+1, 1) — on the other worker, since tasks are assigned t = tid mod
// workers — has recorded the same sentinel and raised a flag. The two
// tasks therefore provably overlap in time with intersecting write sets,
// so the checker must detect the conflict; during barrier re-execution
// (sig == nil) neither the sentinel nor the spin happens, so recovery
// terminates deterministically.
type recoveryWorkload struct {
	state []int64 // one private cell per (epoch, task)
	flags []atomic.Bool
	// pairOf[e] is the conflict-pair index started at epoch e, or -1.
	pairOf []int
}

const recoverySentinel = uint64(1) << 40

// newRecoveryWorkload builds 6 epochs × 2 tasks with conflict pairs at
// epochs (2,3) and (4,5): with CheckpointEvery=2 the segments are [0,2)
// [2,4) [4,6), so the first segment commits and the next two abort
// back-to-back.
func newRecoveryWorkload() *recoveryWorkload {
	w := &recoveryWorkload{
		state:  make([]int64, 12),
		flags:  make([]atomic.Bool, 2),
		pairOf: []int{-1, -1, 0, -1, 1, -1},
	}
	return w
}

func (w *recoveryWorkload) Epochs() int         { return len(w.pairOf) }
func (w *recoveryWorkload) Tasks(epoch int) int { return 2 }
func (w *recoveryWorkload) Snapshot() any {
	cp := make([]int64, len(w.state))
	copy(cp, w.state)
	return cp
}
func (w *recoveryWorkload) Restore(s any) { copy(w.state, s.([]int64)) }

// The delta view: element-granular addresses (the sentinel lies outside
// [0, StateLen) and is ignored by the checkpointer, exercising the
// out-of-range skip).
func (w *recoveryWorkload) StateLen() int                       { return len(w.state) }
func (w *recoveryWorkload) ReadCell(cell uint64) int64          { return w.state[cell] }
func (w *recoveryWorkload) WriteCell(cell uint64, v int64)      { w.state[cell] = v }
func (w *recoveryWorkload) AddrCells(a uint64) (uint64, uint64) { return a, a + 1 }

func (w *recoveryWorkload) Run(e, t, tid int, sig *signature.Signature) {
	if sig != nil {
		if pair := w.pairOf[e]; pair >= 0 && t == 0 {
			// Conflict-pair opener: log the sentinel, then hold the task
			// open until the closer has logged it too. The budget bounds
			// the spin if the engine semantics ever change; the flag makes
			// the normal path deterministic.
			sig.Write(recoverySentinel)
			for i := 0; i < 1<<24 && !w.flags[pair].Load(); i++ {
				runtime.Gosched()
			}
		}
		if e > 0 && w.pairOf[e-1] >= 0 && t == 1 {
			sig.Write(recoverySentinel)
			w.flags[w.pairOf[e-1]].Store(true)
		}
		// Record-before-write for the owned cell (DeltaWorkload contract).
		sig.Write(uint64(e*2 + t))
	}
	// Each task owns one cell, so tasks never race and the final state
	// must match the sequential replay exactly.
	w.state[e*2+t] += int64(e*31 + t*7 + 1)
}

// sequentialRecoveryState replays the workload's memory effects serially.
func sequentialRecoveryState() []int64 {
	state := make([]int64, 12)
	for e := 0; e < 6; e++ {
		for t := 0; t < 2; t++ {
			state[e*2+t] += int64(e*31 + t*7 + 1)
		}
	}
	return state
}

// TestRecoveryDeterministicConflicts pins the exact recovery accounting
// under forced conflicts with back-to-back segment aborts: the engine
// must misspeculate exactly once per poisoned segment, re-execute exactly
// those segments' epochs, and leave memory identical to the sequential
// result. Any drift in these counts means the recovery path changed
// behaviour, not just performance.
func TestRecoveryDeterministicConflicts(t *testing.T) {
	// The exact same recovery accounting must hold under both checkpoint
	// substitutions: full snapshots and incremental (write-set) deltas.
	for _, mode := range []struct {
		name string
		ckpt CheckpointMode
	}{{"full", CkptFull}, {"incremental", CkptIncremental}} {
		t.Run(mode.name, func(t *testing.T) {
			w := newRecoveryWorkload()
			rec := trace.NewRecorder()
			stats := Run(w, Config{
				Workers:         2,
				SigKind:         signature.Exact,
				CheckpointEvery: 2,
				Checkpoint:      mode.ckpt,
				Trace:           rec,
			})

			if stats.Misspeculations != 2 {
				t.Errorf("Misspeculations = %d, want exactly 2 (one per poisoned segment)", stats.Misspeculations)
			}
			if stats.ReexecutedEpochs != 4 {
				t.Errorf("ReexecutedEpochs = %d, want exactly 4 (segments [2,4) and [4,6))", stats.ReexecutedEpochs)
			}
			if stats.Epochs != 2 {
				t.Errorf("speculatively committed Epochs = %d, want exactly 2 (segment [0,2))", stats.Epochs)
			}
			if stats.Checkpoints != 3 {
				t.Errorf("Checkpoints = %d, want exactly 3 (one per segment end)", stats.Checkpoints)
			}
			switch mode.ckpt {
			case CkptFull:
				if stats.DeltaRestores != 0 || stats.DeltaCheckpoints != 0 {
					t.Errorf("full mode took delta checkpoints: %+v", stats)
				}
			case CkptIncremental:
				if stats.DeltaRestores != 2 {
					t.Errorf("DeltaRestores = %d, want 2 (one per abort)", stats.DeltaRestores)
				}
				if stats.DeltaCheckpoints != 1 {
					t.Errorf("DeltaCheckpoints = %d, want 1 (only segment [0,2) commits)", stats.DeltaCheckpoints)
				}
			}

			sum := rec.Summary()
			if got := sum.Counts[trace.KindMisspec]; got != 2 {
				t.Errorf("trace misspec events = %d, want 2", got)
			}
			if got := sum.Counts[trace.KindRecoveryBegin]; got != 2 {
				t.Errorf("trace recovery spans = %d, want 2", got)
			}
			if got := sum.Sums[trace.KindRecoveryEnd]; got != stats.ReexecutedEpochs {
				t.Errorf("trace re-executed epochs = %d, engine Stats = %d", got, stats.ReexecutedEpochs)
			}
			if got := sum.Counts[trace.KindRestore]; got != 2 {
				t.Errorf("trace restore events = %d, want 2", got)
			}
			if got := sum.Counts[trace.KindDeltaRestore]; got != stats.DeltaRestores {
				t.Errorf("trace delta-restore events = %d, engine Stats = %d", got, stats.DeltaRestores)
			}

			want := sequentialRecoveryState()
			for i := range want {
				if w.state[i] != want[i] {
					t.Errorf("state[%d] = %d after recovery, sequential = %d", i, w.state[i], want[i])
				}
			}
		})
	}
}

// TestRecoveryInjectedMisspec pins the same accounting under the engine's
// own fault-injection knob (Config.ForceMisspecEpoch), with no workload
// cooperation at all: exactly one injected misspeculation, exactly one
// segment re-executed.
func TestRecoveryInjectedMisspec(t *testing.T) {
	w := newRecoveryWorkload()
	w.pairOf = []int{-1, -1, -1, -1, -1, -1} // no real conflicts
	stats := Run(w, Config{
		Workers:           2,
		SigKind:           signature.Exact,
		CheckpointEvery:   2,
		ForceMisspecEpoch: 2,
	})
	if stats.Misspeculations != 1 {
		t.Errorf("Misspeculations = %d, want exactly 1", stats.Misspeculations)
	}
	if stats.ReexecutedEpochs != 2 {
		t.Errorf("ReexecutedEpochs = %d, want exactly 2", stats.ReexecutedEpochs)
	}
	if stats.Epochs != 4 {
		t.Errorf("committed Epochs = %d, want 4", stats.Epochs)
	}
	want := sequentialRecoveryState()
	for i := range want {
		if w.state[i] != want[i] {
			t.Errorf("state[%d] = %d after recovery, sequential = %d", i, w.state[i], want[i])
		}
	}
}

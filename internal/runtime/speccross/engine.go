package speccross

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crossinv/internal/runtime/barrier"
	"crossinv/internal/runtime/queue"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/trace"
)

// Run executes the workload under SPECCROSS and returns runtime statistics.
//
// Execution proceeds in segments of Config.CheckpointEvery epochs. Each
// segment begins from a checkpoint; its epochs run speculatively (no
// barriers). If the checker detects a violation — or a worker panics, or an
// injected fault or timeout fires — the whole segment is rolled back to its
// checkpoint and re-executed with non-speculative barriers, the recovery
// semantics of §4.2.2 (the paper re-executes the misspeculated prefix; we
// conservatively re-execute the segment, which preserves the checkpoint-
// frequency/re-execution trade-off Fig 5.3 studies). Epochs flagged
// irreversible are likewise executed non-speculatively between two full
// synchronizations.
func Run(w Workload, cfg Config) Stats {
	var stats Stats
	// Segment control (checkpoint, rollback, recovery sequencing) runs on
	// the calling goroutine; label it so profile samples of Snapshot and
	// Restore attribute to the control lane. Worker and checker goroutines
	// relabel themselves.
	trace.Labeled("speccross", "control", func() {
		stats = run(w, cfg)
	})
	return stats
}

func run(w Workload, cfg Config) Stats {
	cfg.fill()
	var stats Stats
	ctl := cfg.Trace.Lane(trace.LaneControl)

	irr, hasIrr := w.(Irreversibler)
	epochs := w.Epochs()
	snapshot := w.Snapshot()

	for start := 0; start < epochs; {
		// An irreversible epoch forms its own non-speculative segment.
		if hasIrr && irr.Irreversible(start) {
			runBarriers(w, cfg.Workers, start, start+1, cfg.Trace)
			snapshot = w.Snapshot()
			stats.Checkpoints++
			ctl.Emit(trace.KindCheckpoint, int64(start+1), 0, 0)
			start++
			continue
		}
		end := start + cfg.CheckpointEvery
		if end > epochs {
			end = epochs
		}
		if hasIrr {
			for e := start + 1; e < end; e++ {
				if irr.Irreversible(e) {
					end = e
					break
				}
			}
		}

		ctl.Emit(trace.KindEpochBegin, int64(start), int64(end), 0)
		if ok, reason := runSpeculative(w, &cfg, start, end, &stats); ok {
			ctl.Emit(trace.KindEpochCommit, int64(end-start), int64(start), int64(end))
			snapshot = w.Snapshot()
			stats.Checkpoints++
			ctl.Emit(trace.KindCheckpoint, int64(end), 0, 0)
			stats.Epochs += int64(end - start)
		} else {
			stats.Misspeculations++
			ctl.Emit(trace.KindMisspec, int64(reason), int64(start), int64(end))
			ctl.Emit(trace.KindEpochAbort, int64(start), int64(end), 0)
			w.Restore(snapshot)
			ctl.Emit(trace.KindRestore, int64(start), 0, 0)
			ctl.Emit(trace.KindRecoveryBegin, int64(start), int64(end), 0)
			runBarriers(w, cfg.Workers, start, end, cfg.Trace)
			stats.ReexecutedEpochs += int64(end - start)
			ctl.Emit(trace.KindRecoveryEnd, int64(end-start), int64(start), int64(end))
			snapshot = w.Snapshot()
			stats.Checkpoints++
			ctl.Emit(trace.KindCheckpoint, int64(end), 0, 0)
		}
		start = end
	}
	_ = snapshot
	return stats
}

// RunBarriers executes the workload with the baseline plan: every epoch's
// tasks are split across workers and a non-speculative barrier separates
// epochs (Fig 4.2(c)). It returns the barrier so callers can read idle-time
// statistics (Fig 4.3).
func RunBarriers(w Workload, workers int) *barrier.Barrier {
	return RunBarriersTraced(w, workers, nil)
}

// RunBarriersTraced is RunBarriers with event tracing: each worker tid
// emits iteration spans and barrier-wait spans on lane tid of rec. A nil
// rec is equivalent to RunBarriers.
func RunBarriersTraced(w Workload, workers int, rec *trace.Recorder) *barrier.Barrier {
	if workers <= 0 {
		panic(fmt.Sprintf("speccross: invalid worker count %d", workers))
	}
	return runBarriers(w, workers, 0, w.Epochs(), rec)
}

func runBarriers(w Workload, workers, start, end int, rec *trace.Recorder) *barrier.Barrier {
	bar := barrier.New(workers)
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			trace.Labeled("barrier", "worker", func() {
				tt := rec.Lane(int32(tid))
				for e := start; e < end; e++ {
					n := w.Tasks(e)
					for t := tid; t < n; t += workers {
						tt.Emit(trace.KindIterStart, int64(e), int64(t), 0)
						w.Run(e, t, tid, nil)
						tt.Emit(trace.KindIterEnd, int64(e), int64(t), 0)
					}
					tt.Emit(trace.KindBarrierWaitBegin, int64(e), 0, 0)
					bar.Wait()
					tt.Emit(trace.KindBarrierWaitEnd, int64(e), 0, 0)
				}
			})
		}(tid)
	}
	wg.Wait()
	return bar
}

// taskEntry is one logged task execution: its signature plus the watermark
// vector (other threads' positions when the task began), which the checker
// needs to pair overlapping tasks in both directions.
type taskEntry struct {
	tid int32
	pos uint64   // packed (epoch, task)
	wm  []uint64 // packed watermark per worker (own slot unused)
	sig *signature.Signature
}

// request is one message on a worker→checker queue.
type request struct {
	entry taskEntry
	end   bool
}

// specState is the shared state of one speculative segment.
type specState struct {
	cfg   *Config
	start int32 // first epoch of the segment
	// pos[tid] is the packed (epoch, task) each worker most recently began.
	pos []paddedU64
	// done[tid] counts globally-numbered completed tasks, for range gating.
	done []paddedI64
	// prefix[e-start] is the global task number of the first task of epoch e.
	prefix []int64
	// misspec is set (with a reason) when the segment must be abandoned.
	misspec atomic.Int32
}

type paddedU64 struct {
	v atomic.Uint64
	_ [56]byte
}

type paddedI64 struct {
	v atomic.Int64
	_ [56]byte
}

// misspeculation reasons.
const (
	misspecNone int32 = iota
	misspecConflict
	misspecPanic
	misspecInjected
	misspecTimeout
)

// runSpeculative executes epochs [start, end) without barriers and reports
// whether the segment committed cleanly; on misspeculation, reason is the
// misspec* code that triggered the abort.
func runSpeculative(w Workload, cfg *Config, start, end int, stats *Stats) (ok bool, reason int32) {
	nw := cfg.Workers
	st := &specState{cfg: cfg, start: int32(start)}
	st.pos = make([]paddedU64, nw)
	st.done = make([]paddedI64, nw)
	st.prefix = make([]int64, end-start+1)
	for e := start; e < end; e++ {
		st.prefix[e-start+1] = st.prefix[e-start] + int64(w.Tasks(e))
	}
	for i := 0; i < nw; i++ {
		st.pos[i].v.Store(packET(int32(start), 0))
		st.done[i].v.Store(-1)
	}

	queues := make([]*queue.SPSC[request], nw)
	for i := range queues {
		queues[i] = queue.NewSPSC[request](cfg.QueueCap)
	}

	var timer *time.Timer
	if cfg.SpecTimeout > 0 {
		timer = time.AfterFunc(cfg.SpecTimeout, func() {
			st.misspec.CompareAndSwap(misspecNone, misspecTimeout)
		})
		defer timer.Stop()
	}

	// Spawn the checker shard(s): each drains its queue subset against the
	// shared log (CheckerShards = 1 is the paper's single checker thread).
	chk := newChecker(nw, start, end)
	var checkers sync.WaitGroup
	for sh := 0; sh < cfg.CheckerShards; sh++ {
		var subset []*queue.SPSC[request]
		for qi := sh; qi < nw; qi += cfg.CheckerShards {
			subset = append(subset, queues[qi])
		}
		checkers.Add(1)
		go func(sh int, subset []*queue.SPSC[request]) {
			defer checkers.Done()
			trace.Labeled("speccross", "checker", func() {
				chk.run(subset, st, stats, cfg.Trace.Lane(trace.LaneCheckerBase-int32(sh)))
			})
		}(sh, subset)
	}

	var wg sync.WaitGroup
	for tid := 0; tid < nw; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			trace.Labeled("speccross", "worker", func() {
				specWorker(w, st, tid, start, end, queues[tid], stats, cfg.Trace.Lane(int32(tid)))
			})
		}(tid)
	}
	wg.Wait()
	checkers.Wait()

	r := st.misspec.Load()
	return r == misspecNone, r
}

// specWorker executes this thread's share of every epoch in the segment,
// publishing positions, signatures and checking requests (the worker loop of
// Fig 4.7).
func specWorker(w Workload, st *specState, tid, start, end int, q *queue.SPSC[request], stats *Stats, tt *trace.ThreadTrace) {
	nw := st.cfg.Workers
	defer func() {
		if r := recover(); r != nil {
			// A fault during speculative execution (the segfault trigger of
			// §4.2.2): flag misspeculation and shut down this worker.
			st.misspec.CompareAndSwap(misspecNone, misspecPanic)
			produceReq(q, request{end: true}, tid, tt)
		}
	}()

	for e := start; e < end; e++ {
		n := w.Tasks(e)
		for t := tid; t < n; t += nw {
			if st.misspec.Load() != misspecNone {
				produceReq(q, request{end: true}, tid, tt)
				return
			}
			global := st.prefix[e-start] + int64(t)
			dist := st.cfg.SpecDistance
			if st.cfg.SpecDistanceOf != nil {
				dist = st.cfg.SpecDistanceOf(e)
			}
			if stallOnRange(st, tid, global, dist, stats, tt) {
				produceReq(q, request{end: true}, tid, tt)
				return
			}

			// Publish position, then read the other threads' positions:
			// the watermark vector for this task (Fig 4.6).
			st.pos[tid].v.Store(packET(int32(e), int32(t)))
			wm := make([]uint64, nw)
			for o := 0; o < nw; o++ {
				if o != tid {
					wm[o] = st.pos[o].v.Load()
				}
			}

			tt.Emit(trace.KindTaskStart, int64(e), int64(t), global)
			sig := signature.New(st.cfg.SigKind)
			w.Run(e, t, tid, sig)
			st.done[tid].v.Store(global)
			atomic.AddInt64(&stats.Tasks, 1)
			tt.Emit(trace.KindTaskEnd, int64(e), int64(t), global)

			produceReq(q, request{entry: taskEntry{
				tid: int32(tid), pos: packET(int32(e), int32(t)), wm: wm, sig: sig,
			}}, tid, tt)

			if st.cfg.ForceMisspecEpoch == e {
				st.misspec.CompareAndSwap(misspecNone, misspecInjected)
			}
		}
	}
	// Mark this worker as past the segment so range gating never waits on
	// a thread that has no tasks left.
	st.done[tid].v.Store(1 << 62)
	produceReq(q, request{end: true}, tid, tt)
}

// produceReq forwards one checking request, recording a queue-full backoff
// episode on tt when the checker has fallen behind and the ring is full
// (checker pressure, §5.2). With tracing disabled it degrades to exactly
// queue.Produce.
func produceReq(q *queue.SPSC[request], r request, owner int, tt *trace.ThreadTrace) {
	if q.TryProduce(r) {
		return
	}
	tt.Emit(trace.KindQueueFullBegin, int64(owner), 0, 0)
	for spins := 1; ; spins++ {
		if q.TryProduce(r) {
			tt.Emit(trace.KindQueueFullEnd, int64(owner), 0, 0)
			return
		}
		queue.Backoff(spins)
	}
}

// stallOnRange blocks while this worker is more than SpecDistance tasks
// ahead of the laggard (the enter_task gating of Table 4.1). It reports true
// if the segment misspeculated while waiting.
func stallOnRange(st *specState, tid int, global, dist int64, stats *Stats, tt *trace.ThreadTrace) (aborted bool) {
	if dist <= 0 {
		return false
	}
	stalled := false
	for spins := 0; ; spins++ {
		min := int64(1<<62 - 1)
		for o := range st.done {
			if o == tid {
				continue
			}
			if d := st.done[o].v.Load(); d < min {
				min = d
			}
		}
		if global-min < dist {
			// Strictly within the profiled window: any pair separated by
			// at least the minimum dependence distance is ordered, so a
			// faithful profile guarantees misspeculation-free execution.
			if stalled {
				tt.Emit(trace.KindRangeStallEnd, global, dist, 0)
			}
			return false
		}
		if st.misspec.Load() != misspecNone {
			if stalled {
				tt.Emit(trace.KindRangeStallEnd, global, dist, 1)
			}
			return true
		}
		if !stalled {
			stalled = true
			atomic.AddInt64(&stats.RangeStalls, 1)
			tt.Emit(trace.KindRangeStallBegin, global, dist, 0)
		}
		queue.Backoff(spins)
	}
}

package speccross

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crossinv/internal/runtime/barrier"
	"crossinv/internal/runtime/queue"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/trace"
)

// Run executes the workload under SPECCROSS and returns runtime statistics.
//
// Execution proceeds in segments of Config.CheckpointEvery epochs. Each
// segment begins from a checkpoint; its epochs run speculatively (no
// barriers). If the checker detects a violation — or a worker panics, or an
// injected fault or timeout fires — the whole segment is rolled back to its
// checkpoint and re-executed with non-speculative barriers, the recovery
// semantics of §4.2.2 (the paper re-executes the misspeculated prefix; we
// conservatively re-execute the segment, which preserves the checkpoint-
// frequency/re-execution trade-off Fig 5.3 studies). Epochs flagged
// irreversible are likewise executed non-speculatively between two full
// synchronizations.
//
// Checkpoints are full snapshots or — for DeltaWorkloads under the default
// CkptAuto — incremental: the engine keeps one base image of the state and,
// at each commit, refreshes only the cells the segment's tracked write set
// touched; a rollback likewise rewrites only the dirty cells. This is the
// checkpoint substitution of §4.2.2: checkpoint and recovery cost are
// bounded by the write set, not the heap.
func Run(w Workload, cfg Config) Stats {
	var stats Stats
	// Segment control (checkpoint, rollback, recovery sequencing) runs on
	// the calling goroutine; label it so profile samples of Snapshot and
	// Restore attribute to the control lane. Worker and checker goroutines
	// relabel themselves.
	trace.Labeled("speccross", "control", func() {
		stats = run(w, cfg)
	})
	return stats
}

func run(w Workload, cfg Config) Stats {
	cfg.fill()
	var stats Stats
	ctl := cfg.Trace.Lane(trace.LaneControl)

	irr, hasIrr := w.(Irreversibler)
	epochs := w.Epochs()

	dw, hasDelta := w.(DeltaWorkload)
	hasDelta = hasDelta && dw.StateLen() > 0
	useDelta := false
	switch cfg.Checkpoint {
	case CkptFull:
	case CkptIncremental:
		if !hasDelta {
			panic("speccross: Config.Checkpoint is CkptIncremental but the workload does not implement DeltaWorkload (or declares StateLen 0)")
		}
		useDelta = true
	default:
		useDelta = hasDelta
	}

	// Checkpoint state. Full mode keeps the latest snapshot; incremental
	// mode keeps a base image of every cell plus a generation-stamped
	// visited array, so per-segment dirty-set dedup is O(dirty) with no
	// O(heap) clearing between segments.
	var snapshot any
	var base, stamp []int64
	var gen int64
	rebuildBase := func() {
		if base == nil {
			base = make([]int64, dw.StateLen())
		}
		for i := range base {
			base[i] = dw.ReadCell(uint64(i))
		}
	}
	if useDelta {
		rebuildBase()
		stamp = make([]int64, len(base))
	} else {
		snapshot = w.Snapshot()
	}

	// checkpointFull re-captures the whole state: the full-snapshot mode,
	// and the incremental mode's fallback after untracked (nil-signature)
	// execution — barrier recovery and irreversible epochs.
	checkpointFull := func(end int) {
		if useDelta {
			rebuildBase()
		} else {
			snapshot = w.Snapshot()
		}
		stats.Checkpoints++
		ctl.Emit(trace.KindCheckpoint, int64(end), 0, 0)
	}
	// checkpointDirty refreshes the base image for the committed segment's
	// tracked write set only.
	checkpointDirty := func(end int, dirty [][]uint64) {
		if !useDelta {
			checkpointFull(end)
			return
		}
		gen++
		cells := int64(0)
		for _, dl := range dirty {
			for _, a := range dl {
				lo, hi := dw.AddrCells(a)
				if hi > uint64(len(base)) {
					hi = uint64(len(base)) // sentinel / out-of-range addresses
				}
				for c := lo; c < hi; c++ {
					if stamp[c] == gen {
						continue // already refreshed this segment
					}
					stamp[c] = gen
					base[c] = dw.ReadCell(c)
					cells++
				}
			}
		}
		stats.Checkpoints++
		stats.DeltaCheckpoints++
		stats.DeltaCells += cells
		ctl.Emit(trace.KindCheckpoint, int64(end), 0, 0)
		ctl.Emit(trace.KindCkptDelta, cells, int64(end), 0)
	}
	// restore rolls the state back to the segment's checkpoint: a full
	// Restore, or a rewrite of exactly the dirty cells.
	restore := func(start int, dirty [][]uint64) {
		if !useDelta {
			w.Restore(snapshot)
			ctl.Emit(trace.KindRestore, int64(start), 0, 0)
			return
		}
		gen++
		cells := int64(0)
		for _, dl := range dirty {
			for _, a := range dl {
				lo, hi := dw.AddrCells(a)
				if hi > uint64(len(base)) {
					hi = uint64(len(base))
				}
				for c := lo; c < hi; c++ {
					if stamp[c] == gen {
						continue
					}
					stamp[c] = gen
					dw.WriteCell(c, base[c])
					cells++
				}
			}
		}
		stats.DeltaRestores++
		ctl.Emit(trace.KindRestore, int64(start), 0, 0)
		ctl.Emit(trace.KindDeltaRestore, cells, int64(start), 0)
	}

	for start := 0; start < epochs; {
		// An irreversible epoch forms its own non-speculative segment.
		if hasIrr && irr.Irreversible(start) {
			runBarriers(w, cfg.Workers, start, start+1, cfg.Trace)
			checkpointFull(start + 1)
			start++
			continue
		}
		end := start + cfg.CheckpointEvery
		if end > epochs {
			end = epochs
		}
		if hasIrr {
			for e := start + 1; e < end; e++ {
				if irr.Irreversible(e) {
					end = e
					break
				}
			}
		}

		ctl.Emit(trace.KindEpochBegin, int64(start), int64(end), 0)
		if ok, reason, dirty := runSpeculative(w, &cfg, start, end, &stats, useDelta); ok {
			ctl.Emit(trace.KindEpochCommit, int64(end-start), int64(start), int64(end))
			checkpointDirty(end, dirty)
			stats.Epochs += int64(end - start)
		} else {
			stats.Misspeculations++
			ctl.Emit(trace.KindMisspec, int64(reason), int64(start), int64(end))
			ctl.Emit(trace.KindEpochAbort, int64(start), int64(end), 0)
			restore(start, dirty)
			ctl.Emit(trace.KindRecoveryBegin, int64(start), int64(end), 0)
			runBarriers(w, cfg.Workers, start, end, cfg.Trace)
			stats.ReexecutedEpochs += int64(end - start)
			ctl.Emit(trace.KindRecoveryEnd, int64(end-start), int64(start), int64(end))
			// Recovery ran untracked (nil signatures), so the incremental
			// path re-captures the whole base image here.
			checkpointFull(end)
		}
		start = end
	}
	return stats
}

// RunBarriers executes the workload with the baseline plan: every epoch's
// tasks are split across workers and a non-speculative barrier separates
// epochs (Fig 4.2(c)). It returns the barrier so callers can read idle-time
// statistics (Fig 4.3).
func RunBarriers(w Workload, workers int) *barrier.Barrier {
	return RunBarriersTraced(w, workers, nil)
}

// RunBarriersTraced is RunBarriers with event tracing: each worker tid
// emits iteration spans and barrier-wait spans on lane tid of rec. A nil
// rec is equivalent to RunBarriers.
func RunBarriersTraced(w Workload, workers int, rec *trace.Recorder) *barrier.Barrier {
	if workers <= 0 {
		panic(fmt.Sprintf("speccross: invalid worker count %d", workers))
	}
	return runBarriers(w, workers, 0, w.Epochs(), rec)
}

func runBarriers(w Workload, workers, start, end int, rec *trace.Recorder) *barrier.Barrier {
	bar := barrier.New(workers)
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			trace.Labeled("barrier", "worker", func() {
				tt := rec.Lane(int32(tid))
				for e := start; e < end; e++ {
					n := w.Tasks(e)
					for t := tid; t < n; t += workers {
						tt.Emit(trace.KindIterStart, int64(e), int64(t), 0)
						w.Run(e, t, tid, nil)
						tt.Emit(trace.KindIterEnd, int64(e), int64(t), 0)
					}
					tt.Emit(trace.KindBarrierWaitBegin, int64(e), 0, 0)
					bar.Wait()
					tt.Emit(trace.KindBarrierWaitEnd, int64(e), 0, 0)
				}
			})
		}(tid)
	}
	wg.Wait()
	return bar
}

// taskEntry is one logged task execution: its signature plus the watermark
// vector (other threads' positions when the task began), which the checker
// needs to pair overlapping tasks in both directions.
type taskEntry struct {
	tid int32
	pos uint64   // packed (epoch, task)
	wm  []uint64 // packed watermark per worker (own slot unused)
	sig *signature.Signature
}

// request is one message on a worker→checker queue.
type request struct {
	entry taskEntry
	end   bool
}

// specState is the shared state of one speculative segment.
type specState struct {
	cfg   *Config
	start int32 // first epoch of the segment
	// pos[tid] is the packed (epoch, task) each worker most recently began.
	pos []paddedU64
	// done[tid] counts globally-numbered completed tasks, for range gating.
	done []paddedI64
	// prefix[e-start] is the global task number of the first task of epoch e.
	prefix []int64
	// misspec is set (with a reason) when the segment must be abandoned.
	misspec atomic.Int32
	// trackWrites enables per-worker dirty logs for incremental
	// checkpointing; dirty[tid] is worker tid's accumulated write log,
	// published before the worker exits (and read by the engine only
	// after all workers joined).
	trackWrites bool
	dirty       [][]uint64
}

type paddedU64 struct {
	v atomic.Uint64
	_ [56]byte
}

type paddedI64 struct {
	v atomic.Int64
	_ [56]byte
}

// misspeculation reasons.
const (
	misspecNone int32 = iota
	misspecConflict
	misspecPanic
	misspecInjected
	misspecTimeout
)

// sigBlock is how many per-task signatures a worker acquires per batch
// allocation (signature.NewBatch); the watermark vectors are carved from a
// matching arena, so per-task allocation cost is O(1/sigBlock).
const sigBlock = 64

// runSpeculative executes epochs [start, end) without barriers and reports
// whether the segment committed cleanly; on misspeculation, reason is the
// misspec* code that triggered the abort. With trackWrites set, dirty holds
// each worker's write log for the segment (tracked addresses, in order,
// possibly with duplicates).
func runSpeculative(w Workload, cfg *Config, start, end int, stats *Stats, trackWrites bool) (ok bool, reason int32, dirty [][]uint64) {
	nw := cfg.Workers
	st := &specState{cfg: cfg, start: int32(start), trackWrites: trackWrites}
	st.pos = make([]paddedU64, nw)
	st.done = make([]paddedI64, nw)
	st.prefix = make([]int64, end-start+1)
	st.dirty = make([][]uint64, nw)
	for e := start; e < end; e++ {
		st.prefix[e-start+1] = st.prefix[e-start] + int64(w.Tasks(e))
	}
	for i := 0; i < nw; i++ {
		st.pos[i].v.Store(packET(int32(start), 0))
		st.done[i].v.Store(-1)
	}

	queues := make([]*queue.SPSC[request], nw)
	for i := range queues {
		queues[i] = queue.NewSPSC[request](cfg.QueueCap)
	}

	var timer *time.Timer
	if cfg.SpecTimeout > 0 {
		timer = time.AfterFunc(cfg.SpecTimeout, func() {
			st.misspec.CompareAndSwap(misspecNone, misspecTimeout)
		})
		defer timer.Stop()
	}

	// Spawn the checker shard(s): each drains its queue subset against the
	// row-sharded log (CheckerShards = 1 is the paper's single checker
	// thread).
	chk := newChecker(nw, cfg.SigKind, start, end)
	var checkers sync.WaitGroup
	for sh := 0; sh < cfg.CheckerShards; sh++ {
		var subset []*queue.SPSC[request]
		for qi := sh; qi < nw; qi += cfg.CheckerShards {
			subset = append(subset, queues[qi])
		}
		checkers.Add(1)
		go func(sh int, subset []*queue.SPSC[request]) {
			defer checkers.Done()
			trace.Labeled("speccross", "checker", func() {
				chk.run(subset, st, stats, cfg.Trace.Lane(trace.LaneCheckerBase-int32(sh)))
			})
		}(sh, subset)
	}

	var wg sync.WaitGroup
	for tid := 0; tid < nw; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			trace.Labeled("speccross", "worker", func() {
				specWorker(w, st, tid, start, end, queues[tid], stats, cfg.Trace.Lane(int32(tid)))
			})
		}(tid)
	}
	wg.Wait()
	checkers.Wait()

	r := st.misspec.Load()
	return r == misspecNone, r, st.dirty
}

// specWorker executes this thread's share of every epoch in the segment,
// publishing positions, signatures and checking requests (the worker loop of
// Fig 4.7).
func specWorker(w Workload, st *specState, tid, start, end int, q *queue.SPSC[request], stats *Stats, tt *trace.ThreadTrace) {
	nw := st.cfg.Workers

	// dlog accumulates this worker's tracked writes across the segment;
	// curSig points at the in-flight task's signature so the panic path
	// below can harvest writes recorded before the fault (the workload
	// records each write before performing it, so a cell a faulting task
	// managed to dirty is always in the log).
	var dlog []uint64
	var curSig *signature.Signature
	if st.trackWrites {
		dlog = make([]uint64, 0, 256)
	}

	defer func() {
		if r := recover(); r != nil {
			// A fault during speculative execution (the segfault trigger of
			// §4.2.2): flag misspeculation and shut down this worker.
			if st.trackWrites && curSig != nil && curSig.WriteLog != nil {
				st.dirty[tid] = curSig.WriteLog
			}
			st.misspec.CompareAndSwap(misspecNone, misspecPanic)
			produceReq(q, request{end: true}, tid, tt)
		}
	}()

	// Per-task signatures and watermark vectors come from block arenas.
	var sigs []signature.Signature
	var wmArena []uint64
	sigi := sigBlock

	for e := start; e < end; e++ {
		n := w.Tasks(e)
		for t := tid; t < n; t += nw {
			if st.misspec.Load() != misspecNone {
				produceReq(q, request{end: true}, tid, tt)
				return
			}
			global := st.prefix[e-start] + int64(t)
			dist := st.cfg.SpecDistance
			if st.cfg.SpecDistanceOf != nil {
				dist = st.cfg.SpecDistanceOf(e)
			}
			if stallOnRange(st, tid, global, dist, stats, tt) {
				produceReq(q, request{end: true}, tid, tt)
				return
			}

			// Publish position, then read the other threads' positions:
			// the watermark vector for this task (Fig 4.6).
			st.pos[tid].v.Store(packET(int32(e), int32(t)))
			if sigi == sigBlock {
				sigs = signature.NewBatch(st.cfg.SigKind, sigBlock)
				wmArena = make([]uint64, nw*sigBlock)
				sigi = 0
			}
			sig := &sigs[sigi]
			wm := wmArena[sigi*nw : (sigi+1)*nw : (sigi+1)*nw]
			sigi++
			for o := 0; o < nw; o++ {
				if o != tid {
					wm[o] = st.pos[o].v.Load()
				}
			}

			tt.Emit(trace.KindTaskStart, int64(e), int64(t), global)
			if st.trackWrites {
				sig.WriteLog = dlog
			}
			curSig = sig
			w.Run(e, t, tid, sig)
			curSig = nil
			if st.trackWrites {
				dlog = sig.WriteLog
				sig.WriteLog = nil
				st.dirty[tid] = dlog
			}
			// Seal before publishing: checker shards compare against the
			// logged signature concurrently, which must be read-only.
			sig.Seal()
			st.done[tid].v.Store(global)
			atomic.AddInt64(&stats.Tasks, 1)
			tt.Emit(trace.KindTaskEnd, int64(e), int64(t), global)

			produceReq(q, request{entry: taskEntry{
				tid: int32(tid), pos: packET(int32(e), int32(t)), wm: wm, sig: sig,
			}}, tid, tt)

			if st.cfg.ForceMisspecEpoch == e {
				st.misspec.CompareAndSwap(misspecNone, misspecInjected)
			}
		}
	}
	// Mark this worker as past the segment so range gating never waits on
	// a thread that has no tasks left.
	st.done[tid].v.Store(1 << 62)
	produceReq(q, request{end: true}, tid, tt)
}

// produceReq forwards one checking request, recording a queue-full backoff
// episode on tt when the checker has fallen behind and the ring is full
// (checker pressure, §5.2). With tracing disabled it degrades to exactly
// queue.Produce.
func produceReq(q *queue.SPSC[request], r request, owner int, tt *trace.ThreadTrace) {
	if q.TryProduce(r) {
		return
	}
	tt.Emit(trace.KindQueueFullBegin, int64(owner), 0, 0)
	for spins := 1; ; spins++ {
		if q.TryProduce(r) {
			tt.Emit(trace.KindQueueFullEnd, int64(owner), 0, 0)
			return
		}
		queue.Backoff(spins)
	}
}

// stallOnRange blocks while this worker is more than SpecDistance tasks
// ahead of the laggard (the enter_task gating of Table 4.1). It reports true
// if the segment misspeculated while waiting.
func stallOnRange(st *specState, tid int, global, dist int64, stats *Stats, tt *trace.ThreadTrace) (aborted bool) {
	if dist <= 0 {
		return false
	}
	stalled := false
	for spins := 0; ; spins++ {
		min := int64(1<<62 - 1)
		for o := range st.done {
			if o == tid {
				continue
			}
			if d := st.done[o].v.Load(); d < min {
				min = d
			}
		}
		if global-min < dist {
			// Strictly within the profiled window: any pair separated by
			// at least the minimum dependence distance is ordered, so a
			// faithful profile guarantees misspeculation-free execution.
			if stalled {
				tt.Emit(trace.KindRangeStallEnd, global, dist, 0)
			}
			return false
		}
		if st.misspec.Load() != misspecNone {
			if stalled {
				tt.Emit(trace.KindRangeStallEnd, global, dist, 1)
			}
			return true
		}
		if !stalled {
			stalled = true
			atomic.AddInt64(&stats.RangeStalls, 1)
			tt.Emit(trace.KindRangeStallBegin, global, dist, 0)
		}
		queue.Backoff(spins)
	}
}

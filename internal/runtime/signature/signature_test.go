package signature

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var kinds = []Kind{Range, Bloom}

func TestKindString(t *testing.T) {
	if Range.String() != "range" || Bloom.String() != "bloom" {
		t.Fatalf("kind names wrong: %q %q", Range, Bloom)
	}
}

func TestEmptySetsNeverIntersect(t *testing.T) {
	for _, k := range kinds {
		a, b := NewSet(k), NewSet(k)
		if a.Intersects(b) {
			t.Errorf("%v: empty sets intersect", k)
		}
		a.Add(1)
		if a.Intersects(b) || b.Intersects(a) {
			t.Errorf("%v: empty vs non-empty intersect", k)
		}
	}
}

func TestSharedAddressDetected(t *testing.T) {
	for _, k := range kinds {
		a, b := NewSet(k), NewSet(k)
		a.Add(42)
		b.Add(42)
		if !a.Intersects(b) {
			t.Errorf("%v: shared address 42 not detected", k)
		}
	}
}

func TestRangeDisjointNotDetected(t *testing.T) {
	a, b := NewSet(Range), NewSet(Range)
	a.Add(10)
	a.Add(20)
	b.Add(30)
	b.Add(40)
	if a.Intersects(b) {
		t.Fatal("disjoint ranges [10,20] and [30,40] reported intersecting")
	}
	b.Add(15) // now [15,40] overlaps [10,20]
	if !a.Intersects(b) {
		t.Fatal("overlapping ranges not detected")
	}
}

func TestRangeBounds(t *testing.T) {
	r := &RangeSet{}
	if _, _, ok := r.Bounds(); ok {
		t.Fatal("empty RangeSet reported bounds")
	}
	r.Add(7)
	r.Add(3)
	r.Add(5)
	min, max, ok := r.Bounds()
	if !ok || min != 3 || max != 7 {
		t.Fatalf("Bounds = (%d,%d,%v), want (3,7,true)", min, max, ok)
	}
}

func TestReset(t *testing.T) {
	for _, k := range kinds {
		a := NewSet(k)
		a.Add(1)
		a.Add(999)
		a.Reset()
		if !a.Empty() {
			t.Errorf("%v: not empty after Reset", k)
		}
		b := NewSet(k)
		b.Add(1)
		if a.Intersects(b) {
			t.Errorf("%v: reset set still intersects", k)
		}
	}
}

func TestMixedKindsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixing Range and Bloom did not panic")
		}
	}()
	NewSet(Range).Intersects(NewSet(Bloom))
}

// Soundness property: if the same address is added to two sets, Intersects
// must be true, for both schemes. (False positives are allowed; false
// negatives are not — they would corrupt speculative execution.)
func TestQuickSoundness(t *testing.T) {
	for _, k := range kinds {
		k := k
		prop := func(as, bs []uint32, shared uint32) bool {
			a, b := NewSet(k), NewSet(k)
			for _, x := range as {
				a.Add(uint64(x))
			}
			for _, x := range bs {
				b.Add(uint64(x))
			}
			a.Add(uint64(shared))
			b.Add(uint64(shared))
			return a.Intersects(b) && b.Intersects(a)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

// Symmetry property: Intersects is commutative.
func TestQuickSymmetry(t *testing.T) {
	for _, k := range kinds {
		k := k
		prop := func(as, bs []uint16) bool {
			a, b := NewSet(k), NewSet(k)
			for _, x := range as {
				a.Add(uint64(x))
			}
			for _, x := range bs {
				b.Add(uint64(x))
			}
			return a.Intersects(b) == b.Intersects(a)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

func TestBloomFalsePositiveRateBetterThanRangeOnScattered(t *testing.T) {
	// The paper motivates Bloom signatures for random access patterns
	// (§4.2.1). With two tasks touching interleaved but disjoint scattered
	// addresses, a range signature always conflicts while a Bloom signature
	// mostly should not.
	rng := rand.New(rand.NewSource(1))
	const trials = 200
	rangeFP, bloomFP := 0, 0
	for trial := 0; trial < trials; trial++ {
		ra, rb := NewSet(Range), NewSet(Range)
		ba, bb := NewBloomSet(DefaultBloomBits), NewBloomSet(DefaultBloomBits)
		for i := 0; i < 16; i++ {
			// Even addresses to task A, odd to task B: disjoint, interleaved.
			a := uint64(rng.Intn(1<<20)) * 2
			b := uint64(rng.Intn(1<<20))*2 + 1
			ra.Add(a)
			ba.Add(a)
			rb.Add(b)
			bb.Add(b)
		}
		if ra.Intersects(rb) {
			rangeFP++
		}
		if ba.Intersects(bb) {
			bloomFP++
		}
	}
	if rangeFP < trials*9/10 {
		t.Fatalf("range FP = %d/%d; expected interleaved envelopes to almost always overlap", rangeFP, trials)
	}
	if bloomFP >= rangeFP {
		t.Fatalf("bloom FP (%d) should be below range FP (%d) on scattered accesses", bloomFP, rangeFP)
	}
}

func TestSignatureConflicts(t *testing.T) {
	mk := func(reads, writes []uint64) *Signature {
		s := New(Range)
		for _, a := range reads {
			s.Read(a)
		}
		for _, a := range writes {
			s.Write(a)
		}
		return s
	}
	cases := []struct {
		name string
		a, b *Signature
		want bool
	}{
		{"read-read only", mk([]uint64{1, 2}, nil), mk([]uint64{1, 2}, nil), false},
		{"write-write", mk(nil, []uint64{5}), mk(nil, []uint64{5}), true},
		{"write-read (flow)", mk(nil, []uint64{5}), mk([]uint64{5}, nil), true},
		{"read-write (anti)", mk([]uint64{5}, nil), mk(nil, []uint64{5}), true},
		{"disjoint", mk([]uint64{1}, []uint64{2}), mk([]uint64{10}, []uint64{20}), false},
	}
	for _, c := range cases {
		if got := c.a.Conflicts(c.b); got != c.want {
			t.Errorf("%s: Conflicts = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSignatureResetAndEmpty(t *testing.T) {
	s := New(Bloom)
	if !s.Empty() {
		t.Fatal("fresh signature not empty")
	}
	s.Read(1)
	s.Write(2)
	if s.Empty() {
		t.Fatal("populated signature reported empty")
	}
	s.Reset()
	if !s.Empty() {
		t.Fatal("signature not empty after Reset")
	}
}

func BenchmarkRangeAdd(b *testing.B) {
	s := NewSet(Range)
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}

func BenchmarkBloomAdd(b *testing.B) {
	s := NewBloomSet(DefaultBloomBits)
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}

func BenchmarkRangeIntersect(b *testing.B) {
	x, y := NewSet(Range), NewSet(Range)
	for i := 0; i < 64; i++ {
		x.Add(uint64(i))
		y.Add(uint64(i + 1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Intersects(y)
	}
}

func BenchmarkBloomIntersect(b *testing.B) {
	x, y := NewBloomSet(DefaultBloomBits), NewBloomSet(DefaultBloomBits)
	for i := 0; i < 64; i++ {
		x.Add(uint64(i))
		y.Add(uint64(i + 1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Intersects(y)
	}
}

package signature

import (
	"math/rand"
	"testing"
)

// buildAll records the same reads/writes into one Signature per kind, so
// properties can be checked up and down the precision ladder.
func buildAll(reads, writes []uint64) map[Kind]*Signature {
	sigs := map[Kind]*Signature{}
	for _, k := range []Kind{Range, Bloom, Exact} {
		s := New(k)
		for _, a := range reads {
			s.Read(a)
		}
		for _, a := range writes {
			s.Write(a)
		}
		sigs[k] = s
	}
	return sigs
}

// TestExactConflictImpliesApproximate is the precision-ladder property:
// the exact signature never reports a false positive, so whenever it
// reports a conflict the conflict is real — and a sound approximate
// scheme (Range, Bloom) must then report it too. A violation means the
// approximate scheme can miss a true cross-epoch dependence, which in
// SPECCROSS silently commits a wrong result instead of misspeculating.
func TestExactConflictImpliesApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		// Small address universe so real overlaps are common.
		universe := uint64(rng.Intn(200)) + 2
		draw := func() []uint64 {
			n := rng.Intn(12)
			addrs := make([]uint64, n)
			for i := range addrs {
				addrs[i] = uint64(rng.Intn(int(universe)))
			}
			return addrs
		}
		a := buildAll(draw(), draw())
		b := buildAll(draw(), draw())

		if !a[Exact].Conflicts(b[Exact]) {
			continue
		}
		for _, k := range []Kind{Range, Bloom} {
			if !a[k].Conflicts(b[k]) {
				t.Fatalf("trial %d: exact signatures conflict but %v misses it (false negative)", trial, k)
			}
		}
	}
}

// TestConflictSymmetry checks Conflicts is symmetric for every kind: the
// checker compares epoch signatures in one direction only.
func TestConflictSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		draw := func() []uint64 {
			n := rng.Intn(8)
			addrs := make([]uint64, n)
			for i := range addrs {
				addrs[i] = uint64(rng.Intn(64))
			}
			return addrs
		}
		a := buildAll(draw(), draw())
		b := buildAll(draw(), draw())
		for _, k := range []Kind{Range, Bloom, Exact} {
			if a[k].Conflicts(b[k]) != b[k].Conflicts(a[k]) {
				t.Fatalf("trial %d: %v Conflicts is asymmetric", trial, k)
			}
		}
	}
}

// TestBloomProbeCollisionAddresses regression-tests the partitioned-probe
// fix: with a single shared bit space, addresses whose probe hashes
// collide modulo the filter width (53, 532, 1431, ... for 2048 bits) set
// fewer than bloomHashes distinct bits, and two filters sharing only such
// an address failed the >= bloomHashes common-bit test — a false
// negative. Partitioning guarantees k distinct bits per address.
func TestBloomProbeCollisionAddresses(t *testing.T) {
	for _, addr := range []uint64{53, 532, 1431, 2050, 2283} {
		a := NewBloomSet(DefaultBloomBits)
		b := NewBloomSet(DefaultBloomBits)
		a.Add(addr)
		b.Add(addr)
		if !a.Intersects(b) {
			t.Errorf("two bloom filters sharing only address %d do not intersect (false negative)", addr)
		}
	}
}

// TestBloomSingleSharedAddressExhaustive sweeps a large address range:
// for every address, a filter containing exactly that address must
// intersect another filter containing it. This is the strongest
// no-false-negative statement a unit test can make about one element.
func TestBloomSingleSharedAddressExhaustive(t *testing.T) {
	a := NewBloomSet(DefaultBloomBits)
	b := NewBloomSet(DefaultBloomBits)
	for addr := uint64(0); addr < 50_000; addr++ {
		a.Reset()
		b.Reset()
		a.Add(addr)
		b.Add(addr)
		if !a.Intersects(b) {
			t.Fatalf("address %d: singleton bloom filters do not intersect", addr)
		}
	}
}

// TestBloomSaturation pins the behaviour of a Bloom signature at high
// fill factors: it degrades to "conflicts with everything" (false
// positives approach certainty) but stays sound. Past roughly one address
// per bit, nearly every bit is set, so a disjoint probe set still finds
// >= bloomHashes common bits — the filter is useless but never unsafe.
func TestBloomSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	saturated := NewBloomSet(DefaultBloomBits)
	for i := 0; i < 4*DefaultBloomBits; i++ {
		saturated.Add(uint64(rng.Int63()))
	}

	// Soundness survives saturation: a genuinely shared address conflicts.
	shared := uint64(1234567)
	saturated.Add(shared)
	probe := NewBloomSet(DefaultBloomBits)
	probe.Add(shared)
	if !saturated.Intersects(probe) {
		t.Fatal("saturated filter misses a genuinely shared address")
	}

	// And disjoint probes now false-positive essentially always — the
	// documented trade-off that motivates the Exact kind for tasks whose
	// footprints saturate the filter.
	falsePositives := 0
	const probes = 200
	for i := 0; i < probes; i++ {
		p := NewBloomSet(DefaultBloomBits)
		p.Add(uint64(rng.Int63())<<32 | 1) // fresh addresses, almost surely not in the fill set
		if saturated.Intersects(p) {
			falsePositives++
		}
	}
	if falsePositives < probes*9/10 {
		t.Errorf("saturated filter false-positived on only %d/%d disjoint probes; saturation behaviour changed", falsePositives, probes)
	}
}

// decodeLadderCase turns fuzz bytes into two signatures' access logs.
// Each 3-byte record is (flags, addrHi, addrLo): flags bit0 selects the
// signature, bit1 selects read vs write.
func decodeLadderCase(data []byte) (ra, wa, rb, wb []uint64) {
	for i := 0; i+2 < len(data); i += 3 {
		addr := uint64(data[i+1])<<8 | uint64(data[i+2])
		switch data[i] & 3 {
		case 0:
			ra = append(ra, addr)
		case 2:
			wa = append(wa, addr)
		case 1:
			rb = append(rb, addr)
		case 3:
			wb = append(wb, addr)
		}
	}
	return
}

// FuzzKindLadder fuzzes the precision-ladder property directly: for any
// pair of access logs, an exact-signature conflict must be reported by
// Bloom and by Range too (approximate kinds may false-positive, never
// false-negative), Conflicts must be symmetric, and empty signatures must
// conflict with nothing.
func FuzzKindLadder(f *testing.F) {
	f.Add([]byte{2, 0, 53, 3, 0, 53})        // shared write at probe-collision addr 53
	f.Add([]byte{0, 0, 7, 1, 0, 7})          // read/read sharing: never a conflict
	f.Add([]byte{2, 1, 0, 3, 2, 0})          // disjoint writes
	f.Add([]byte{2, 0, 9, 1, 0, 9, 0, 0, 1}) // write/read overlap
	f.Fuzz(func(t *testing.T, data []byte) {
		ra, wa, rb, wb := decodeLadderCase(data)
		a := buildAll(ra, wa)
		b := buildAll(rb, wb)

		exact := a[Exact].Conflicts(b[Exact])
		for _, k := range []Kind{Range, Bloom, Exact} {
			got := a[k].Conflicts(b[k])
			if exact && !got {
				t.Fatalf("%v misses an exact conflict (false negative): A(r=%v w=%v) B(r=%v w=%v)", k, ra, wa, rb, wb)
			}
			if got != b[k].Conflicts(a[k]) {
				t.Fatalf("%v Conflicts is asymmetric", k)
			}
			if a[k].Empty() && got {
				t.Fatalf("%v: empty signature reports a conflict", k)
			}
		}
		// Read/read sharing alone must never conflict under the exact kind.
		if len(wa) == 0 && len(wb) == 0 && exact {
			t.Fatalf("exact signatures conflict with no writes on either side")
		}
	})
}

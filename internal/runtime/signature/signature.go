// Package signature implements the memory-access signatures SPECCROSS uses
// for misspeculation detection (§4.2.1). A signature is an approximate,
// constant-space summary of the addresses a task touched; two tasks from
// different epochs conflict if their signatures indicate a write/write,
// write/read, or read/write overlap.
//
// Two summary schemes are provided, matching the paper:
//
//   - Range: the default scheme, recording only the minimum and maximum
//     address accessed. Cheap and effective when accesses are clustered.
//   - Bloom: a Bloom filter over addresses, with a configurable bit width.
//     Better false-positive behaviour for random access patterns.
//
// Both schemes are sound: they may report a conflict where none exists
// (false positive, causing a needless misspeculation) but never miss a true
// overlap.
package signature

import (
	"fmt"
	"math/bits"
	"slices"
)

// Kind selects a summary scheme.
type Kind int

const (
	// Range records [min,max] address bounds (the paper's default).
	Range Kind = iota
	// Bloom records a Bloom filter of addresses.
	Bloom
	// Exact records the precise address set. It is never wrong but costs
	// memory proportional to the task's footprint; §4.2.3 notes the
	// runtime accepts user-provided signature generators, and exact sets
	// are the right generator for tasks whose read sets saturate a Bloom
	// filter (FLUIDANIMATE's grid rebuild reads every cell's bucket
	// header). The profiler (§4.4) also uses it so that minimum
	// dependence distances are not contaminated by false positives.
	Exact
)

// String returns the scheme name.
func (k Kind) String() string {
	switch k {
	case Range:
		return "range"
	case Bloom:
		return "bloom"
	case Exact:
		return "exact"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Set summarizes a set of addresses. Implementations must be sound: if an
// address was Added to both of two sets, Intersects must report true.
type Set interface {
	// Add records one address.
	Add(addr uint64)
	// Intersects reports whether the two summaries may share an address.
	// The argument must be of the same dynamic type as the receiver.
	Intersects(other Set) bool
	// Union folds other's addresses into the receiver, so that the
	// receiver intersects everything other intersected. The argument must
	// be of the same dynamic type as the receiver. The checker uses
	// unions as a conservative per-epoch pre-filter: no conflict with the
	// union of a set of signatures implies no conflict with any of them.
	Union(other Set)
	// Empty reports whether no address has been recorded.
	Empty() bool
	// Reset returns the set to empty for reuse.
	Reset()
}

// NewSet returns an empty Set of the given kind.
func NewSet(k Kind) Set {
	switch k {
	case Range:
		return &RangeSet{}
	case Bloom:
		return NewBloomSet(DefaultBloomBits)
	case Exact:
		return NewExactSet()
	default:
		panic(fmt.Sprintf("signature: unknown kind %d", int(k)))
	}
}

// RangeSet summarizes addresses by their inclusive [Min,Max] envelope.
type RangeSet struct {
	min, max uint64
	nonEmpty bool
}

// Add implements Set.
func (r *RangeSet) Add(addr uint64) {
	if !r.nonEmpty {
		r.min, r.max, r.nonEmpty = addr, addr, true
		return
	}
	if addr < r.min {
		r.min = addr
	}
	if addr > r.max {
		r.max = addr
	}
}

// Intersects implements Set.
func (r *RangeSet) Intersects(other Set) bool {
	o, ok := other.(*RangeSet)
	if !ok {
		panic("signature: mixed signature kinds")
	}
	if !r.nonEmpty || !o.nonEmpty {
		return false
	}
	return r.min <= o.max && o.min <= r.max
}

// Union implements Set: the merged envelope covers both inputs.
func (r *RangeSet) Union(other Set) {
	o, ok := other.(*RangeSet)
	if !ok {
		panic("signature: mixed signature kinds")
	}
	if !o.nonEmpty {
		return
	}
	if !r.nonEmpty {
		*r = *o
		return
	}
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// Empty implements Set.
func (r *RangeSet) Empty() bool { return !r.nonEmpty }

// Reset implements Set.
func (r *RangeSet) Reset() { *r = RangeSet{} }

// Bounds returns the recorded envelope; ok is false if the set is empty.
func (r *RangeSet) Bounds() (min, max uint64, ok bool) {
	return r.min, r.max, r.nonEmpty
}

// DefaultBloomBits is the default Bloom filter width in bits. 2048 bits
// (four cache lines) holds the intersection-test false-positive rate low
// for the task sizes in Table 5.3 (tens of accesses per task); the
// intersection test needs much sparser filters than membership queries do.
const DefaultBloomBits = 2048

// bloomHashes is the number of hash functions (k) per address.
const bloomHashes = 3

// BloomSet summarizes addresses with a Bloom filter.
type BloomSet struct {
	bits  []uint64
	nbits uint64
	n     int // addresses added
}

// NewBloomSet returns a Bloom summary with the given width in bits, rounded
// up to a multiple of 64.
func NewBloomSet(bits int) *BloomSet {
	if bits <= 0 {
		panic(fmt.Sprintf("signature: invalid bloom width %d", bits))
	}
	words := (bits + 63) / 64
	return &BloomSet{bits: make([]uint64, words), nbits: uint64(words * 64)}
}

// hash mixes addr with a per-probe seed (splitmix64 finalizer).
func bloomHash(addr, seed uint64) uint64 {
	x := addr + seed*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add implements Set. The filter is partitioned: probe i draws from its
// own nbits/k segment of the bit vector, so every address sets exactly
// bloomHashes distinct bits. With a single shared bit space two probes of
// the same address can collide (addr 53 mod 2048 sets only two distinct
// bits), and Intersects' >= k common-bit threshold would then miss a true
// overlap — an unsound signature.
func (b *BloomSet) Add(addr uint64) {
	seg := b.nbits / bloomHashes
	for i := uint64(0); i < bloomHashes; i++ {
		bit := i*seg + bloomHash(addr, i+1)%seg
		b.bits[bit/64] |= 1 << (bit % 64)
	}
	b.n++
}

// Intersects implements Set.
//
// A shared element sets the same k distinct bits (one per partition
// segment) in both filters, so requiring at least k common bits in the
// AND of the bit vectors is sound: it may false-positive on bits set by
// different elements, but can never miss a true overlap. The loop is a
// whole-word sweep: one AND plus one popcount instruction per 64 bits.
func (b *BloomSet) Intersects(other Set) bool {
	o, ok := other.(*BloomSet)
	if !ok {
		panic("signature: mixed signature kinds")
	}
	if b.nbits != o.nbits {
		panic("signature: mismatched bloom widths")
	}
	if b.n == 0 || o.n == 0 {
		return false
	}
	common := 0
	for i, w := range b.bits {
		common += bits.OnesCount64(w & o.bits[i])
		if common >= bloomHashes {
			return true
		}
	}
	return false
}

// Union implements Set: a whole-word OR of the bit vectors. The union of
// two partitioned filters is the filter that would have resulted from
// adding both address sets, so all soundness properties carry over.
func (b *BloomSet) Union(other Set) {
	o, ok := other.(*BloomSet)
	if !ok {
		panic("signature: mixed signature kinds")
	}
	if b.nbits != o.nbits {
		panic("signature: mismatched bloom widths")
	}
	for i, w := range o.bits {
		b.bits[i] |= w
	}
	b.n += o.n
}

// Empty implements Set.
func (b *BloomSet) Empty() bool { return b.n == 0 }

// Reset implements Set.
func (b *BloomSet) Reset() {
	clear(b.bits)
	b.n = 0
}

// Signature is the per-task access summary: separate read and write sets so
// the checker can distinguish flow/anti/output conflicts from harmless
// read/read sharing.
type Signature struct {
	Reads  Set
	Writes Set
	// WriteLog, when non-nil, additionally records every written address
	// in call order. The SPECCROSS engine installs a log buffer here while
	// running a task under incremental checkpointing, then harvests it as
	// the task's contribution to the segment's dirty set; the checker
	// never reads it. Everyone else leaves it nil and pays one pointer
	// compare per Write.
	WriteLog []uint64
}

// New returns an empty Signature using the given scheme for both sets.
func New(k Kind) *Signature {
	return &Signature{Reads: NewSet(k), Writes: NewSet(k)}
}

// NewBatch returns n empty Signatures of the given kind backed by batch
// allocations: one slice of set headers and (for Bloom) one contiguous bit
// arena, instead of 3–5 small allocations per signature. The SPECCROSS
// workers grab signatures in blocks from here, which is what moves the
// per-task allocation count to O(1/blockSize).
func NewBatch(k Kind, n int) []Signature {
	sigs := make([]Signature, n)
	switch k {
	case Range:
		sets := make([]RangeSet, 2*n)
		for i := range sigs {
			sigs[i].Reads, sigs[i].Writes = &sets[2*i], &sets[2*i+1]
		}
	case Bloom:
		words := DefaultBloomBits / 64
		sets := make([]BloomSet, 2*n)
		arena := make([]uint64, 2*n*words)
		for i := range sets {
			sets[i].bits = arena[i*words : (i+1)*words : (i+1)*words]
			sets[i].nbits = uint64(words * 64)
		}
		for i := range sigs {
			sigs[i].Reads, sigs[i].Writes = &sets[2*i], &sets[2*i+1]
		}
	case Exact:
		sets := make([]ExactSet, 2*n)
		for i := range sigs {
			sigs[i].Reads, sigs[i].Writes = &sets[2*i], &sets[2*i+1]
		}
	default:
		panic(fmt.Sprintf("signature: unknown kind %d", int(k)))
	}
	return sigs
}

// Read records a load of addr.
func (s *Signature) Read(addr uint64) { s.Reads.Add(addr) }

// Write records a store to addr.
func (s *Signature) Write(addr uint64) {
	s.Writes.Add(addr)
	if s.WriteLog != nil {
		s.WriteLog = append(s.WriteLog, addr)
	}
}

// Reset empties both sets for reuse. WriteLog is detached, not truncated:
// its backing array belongs to whoever installed it.
func (s *Signature) Reset() {
	s.Reads.Reset()
	s.Writes.Reset()
	s.WriteLog = nil
}

// Empty reports whether the task recorded no accesses at all.
func (s *Signature) Empty() bool { return s.Reads.Empty() && s.Writes.Empty() }

// Seal finalizes the signature for concurrent read-only use. Exact sets
// sort lazily on first Intersects; sealing forces that sort while the
// signature still has a single owner, so later comparisons from multiple
// checker shards are pure reads. Range and Bloom sets need no sealing.
func (s *Signature) Seal() {
	if e, ok := s.Reads.(*ExactSet); ok {
		e.seal()
	}
	if e, ok := s.Writes.(*ExactSet); ok {
		e.seal()
	}
}

// Union folds other into the receiver set-wise.
func (s *Signature) Union(other *Signature) {
	s.Reads.Union(other.Reads)
	s.Writes.Union(other.Writes)
}

// Conflicts reports whether executing the receiver's task and other's task
// on opposite sides of a (removed) barrier could have violated a dependence:
// any write/write, write/read, or read/write overlap.
func (s *Signature) Conflicts(other *Signature) bool {
	if s.Writes.Intersects(other.Writes) {
		return true
	}
	if s.Writes.Intersects(other.Reads) {
		return true
	}
	if s.Reads.Intersects(other.Writes) {
		return true
	}
	return false
}

// ExactSet records the precise address set; Intersects is never a false
// positive (nor a false negative). The representation is an append-only
// slice (duplicates allowed) sorted lazily on first Intersects, which
// replaces a map insert per access with an append and a map iteration per
// comparison with a linear merge scan.
//
// Lazy sorting mutates the set, so an ExactSet shared between goroutines
// must be sealed (Signature.Seal) while it still has a single owner;
// afterwards Intersects is read-only.
type ExactSet struct {
	addrs  []uint64
	sorted bool
}

// NewExactSet returns an empty exact summary.
func NewExactSet() *ExactSet {
	return &ExactSet{sorted: true}
}

// Add implements Set.
func (e *ExactSet) Add(addr uint64) {
	if e.sorted && len(e.addrs) > 0 && addr < e.addrs[len(e.addrs)-1] {
		e.sorted = false
	}
	e.addrs = append(e.addrs, addr)
}

func (e *ExactSet) seal() {
	if !e.sorted {
		slices.Sort(e.addrs)
		e.sorted = true
	}
}

// Intersects implements Set: a merge scan over the two sorted slices.
func (e *ExactSet) Intersects(other Set) bool {
	o, ok := other.(*ExactSet)
	if !ok {
		panic("signature: mixed signature kinds")
	}
	e.seal()
	o.seal()
	a, b := e.addrs, o.addrs
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Union implements Set. When both sides are already sorted (the common
// case in the checker, which seals signatures before logging and unions
// them into an always-sorted accumulator) the result is built by a linear
// merge and stays sorted, so no re-sort is ever needed on that path.
func (e *ExactSet) Union(other Set) {
	o, ok := other.(*ExactSet)
	if !ok {
		panic("signature: mixed signature kinds")
	}
	if len(o.addrs) == 0 {
		return
	}
	if len(e.addrs) == 0 {
		e.addrs = append(e.addrs[:0], o.addrs...)
		e.sorted = o.sorted
		return
	}
	if e.sorted && o.sorted {
		merged := make([]uint64, 0, len(e.addrs)+len(o.addrs))
		i, j := 0, 0
		for i < len(e.addrs) && j < len(o.addrs) {
			if e.addrs[i] <= o.addrs[j] {
				merged = append(merged, e.addrs[i])
				i++
			} else {
				merged = append(merged, o.addrs[j])
				j++
			}
		}
		merged = append(merged, e.addrs[i:]...)
		merged = append(merged, o.addrs[j:]...)
		e.addrs = merged
		return
	}
	e.addrs = append(e.addrs, o.addrs...)
	e.sorted = false
}

// Empty implements Set.
func (e *ExactSet) Empty() bool { return len(e.addrs) == 0 }

// Reset implements Set.
func (e *ExactSet) Reset() {
	e.addrs = e.addrs[:0]
	e.sorted = true
}

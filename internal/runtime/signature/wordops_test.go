package signature

import (
	"math/rand"
	"testing"
)

// This file differentially tests the word-parallel set operations (the
// whole-word AND/popcount intersect, the whole-word OR union, and the
// sorted-slice exact sets) against bit-by-bit and map-based references.
// The references are deliberately the naive formulations the word loops
// replaced, so any divergence is a bug in the fast path.

// refBloom is a bit-by-bit reference Bloom filter: one bool per bit,
// probes computed with the same partitioned hashing as BloomSet.
type refBloom struct {
	bits []bool
	n    int
}

func newRefBloom() *refBloom {
	return &refBloom{bits: make([]bool, DefaultBloomBits)}
}

func (r *refBloom) add(addr uint64) {
	seg := uint64(len(r.bits)) / bloomHashes
	for i := uint64(0); i < bloomHashes; i++ {
		r.bits[i*seg+bloomHash(addr, i+1)%seg] = true
	}
	r.n++
}

// intersects is the bit-by-bit formulation of the >= k common-bit test.
func (r *refBloom) intersects(o *refBloom) bool {
	if r.n == 0 || o.n == 0 {
		return false
	}
	common := 0
	for i := range r.bits {
		if r.bits[i] && o.bits[i] {
			common++
			if common >= bloomHashes {
				return true
			}
		}
	}
	return false
}

func (r *refBloom) union(o *refBloom) {
	for i := range r.bits {
		r.bits[i] = r.bits[i] || o.bits[i]
	}
	r.n += o.n
}

// sameBits asserts the packed word vector equals the reference bit array.
func sameBits(t *testing.T, b *BloomSet, r *refBloom) {
	t.Helper()
	for i := range r.bits {
		got := b.bits[i/64]>>(i%64)&1 == 1
		if got != r.bits[i] {
			t.Fatalf("bit %d: word-parallel filter has %v, bit-by-bit reference has %v", i, got, r.bits[i])
		}
	}
}

// drawAddrs mixes clustered small addresses (so real overlaps happen) with
// the known probe-collision addresses from the PR 5 soundness fix.
func drawAddrs(rng *rand.Rand) []uint64 {
	collisions := []uint64{53, 532, 1431, 2050, 2283}
	n := rng.Intn(20)
	addrs := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			addrs = append(addrs, collisions[rng.Intn(len(collisions))])
		} else {
			addrs = append(addrs, uint64(rng.Intn(4096)))
		}
	}
	return addrs
}

// TestBloomWordOpsMatchBitReference drives random add/union/intersect
// sequences through BloomSet and the bit-by-bit reference in lockstep: the
// bit vectors must stay identical and every intersection verdict must
// agree, including after unions and resets.
func TestBloomWordOpsMatchBitReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		a, b := NewBloomSet(DefaultBloomBits), NewBloomSet(DefaultBloomBits)
		ra, rb := newRefBloom(), newRefBloom()
		for _, addr := range drawAddrs(rng) {
			a.Add(addr)
			ra.add(addr)
		}
		for _, addr := range drawAddrs(rng) {
			b.Add(addr)
			rb.add(addr)
		}
		sameBits(t, a, ra)
		sameBits(t, b, rb)
		if got, want := a.Intersects(b), ra.intersects(rb); got != want {
			t.Fatalf("trial %d: word-parallel Intersects = %v, bit-by-bit = %v", trial, got, want)
		}

		// Union must equal the bit-by-bit OR, and verdicts must agree after.
		u := NewBloomSet(DefaultBloomBits)
		u.Union(a)
		u.Union(b)
		ru := newRefBloom()
		ru.union(ra)
		ru.union(rb)
		sameBits(t, u, ru)
		probe, rp := NewBloomSet(DefaultBloomBits), newRefBloom()
		for _, addr := range drawAddrs(rng) {
			probe.Add(addr)
			rp.add(addr)
		}
		if got, want := u.Intersects(probe), ru.intersects(rp); got != want {
			t.Fatalf("trial %d: post-union Intersects = %v, reference = %v", trial, got, want)
		}

		// Reset must clear every word.
		a.Reset()
		if !a.Empty() {
			t.Fatalf("trial %d: Reset left the filter non-empty", trial)
		}
		for i, w := range a.bits {
			if w != 0 {
				t.Fatalf("trial %d: Reset left word %d = %#x", trial, i, w)
			}
		}
	}
}

// refExact is the map-backed exact set the sorted-slice version replaced.
type refExact map[uint64]struct{}

func (r refExact) intersects(o refExact) bool {
	for a := range r {
		if _, ok := o[a]; ok {
			return true
		}
	}
	return false
}

// TestExactSliceMatchesMapReference differentially tests the sorted-slice
// ExactSet (lazy sort, duplicates allowed, merge-scan intersect) against
// the map reference across random add/union/reset sequences.
func TestExactSliceMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 2000; trial++ {
		a, b := NewExactSet(), NewExactSet()
		ra, rb := refExact{}, refExact{}
		for _, addr := range drawAddrs(rng) {
			a.Add(addr)
			ra[addr] = struct{}{}
		}
		for _, addr := range drawAddrs(rng) {
			b.Add(addr)
			rb[addr] = struct{}{}
		}
		if got, want := a.Intersects(b), ra.intersects(rb); got != want {
			t.Fatalf("trial %d: slice Intersects = %v, map reference = %v", trial, got, want)
		}
		if got, want := a.Empty(), len(ra) == 0; got != want {
			t.Fatalf("trial %d: Empty = %v, reference = %v", trial, got, want)
		}

		// Union then probe.
		a.Union(b)
		for addr := range rb {
			ra[addr] = struct{}{}
		}
		probe := NewExactSet()
		rp := refExact{}
		for _, addr := range drawAddrs(rng) {
			probe.Add(addr)
			rp[addr] = struct{}{}
		}
		if got, want := a.Intersects(probe), ra.intersects(rp); got != want {
			t.Fatalf("trial %d: post-union Intersects = %v, reference = %v", trial, got, want)
		}

		// Reset and reuse: stale addresses must not linger.
		a.Reset()
		if !a.Empty() {
			t.Fatalf("trial %d: Reset left the set non-empty", trial)
		}
		a.Add(1)
		only := NewExactSet()
		only.Add(2)
		if a.Intersects(only) {
			t.Fatalf("trial %d: reset set intersects a disjoint singleton", trial)
		}
	}
}

// TestUnionPreFilterSoundness pins the property the checker's per-epoch
// union pre-filter relies on: if a probe signature does not conflict with
// the union of a group of signatures, it conflicts with none of them.
func TestUnionPreFilterSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, k := range []Kind{Range, Bloom, Exact} {
		for trial := 0; trial < 500; trial++ {
			group := make([]*Signature, 1+rng.Intn(6))
			union := New(k)
			for i := range group {
				group[i] = New(k)
				for _, a := range drawAddrs(rng) {
					group[i].Read(a)
				}
				for _, a := range drawAddrs(rng) {
					group[i].Write(a)
				}
				union.Union(group[i])
			}
			probe := New(k)
			for _, a := range drawAddrs(rng) {
				probe.Read(a)
			}
			for _, a := range drawAddrs(rng) {
				probe.Write(a)
			}
			if probe.Conflicts(union) {
				continue
			}
			for i, g := range group {
				if probe.Conflicts(g) {
					t.Fatalf("kind %v trial %d: union pre-filter says no conflict but member %d conflicts", k, trial, i)
				}
			}
		}
	}
}

// TestSealedSignatureComparisonsAreReadOnly checks Seal makes subsequent
// exact-set comparisons non-mutating, which is what lets multiple checker
// shards compare against the same logged signature concurrently.
func TestSealedSignatureComparisonsAreReadOnly(t *testing.T) {
	s := New(Exact)
	for _, a := range []uint64{9, 3, 7, 3, 1} {
		s.Read(a)
		s.Write(a + 100)
	}
	s.Seal()
	probe := New(Exact)
	probe.Write(3)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				if !s.Conflicts(probe) {
					panic("sealed signature lost a conflict")
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

// TestNewBatchEquivalence checks batch-allocated signatures behave
// identically to individually allocated ones for every kind.
func TestNewBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, k := range []Kind{Range, Bloom, Exact} {
		batch := NewBatch(k, 8)
		for i := range batch {
			single := New(k)
			for _, a := range drawAddrs(rng) {
				batch[i].Read(a)
				single.Read(a)
			}
			for _, a := range drawAddrs(rng) {
				batch[i].Write(a)
				single.Write(a)
			}
			probe := New(k)
			for _, a := range drawAddrs(rng) {
				probe.Write(a)
			}
			if got, want := batch[i].Conflicts(probe), single.Conflicts(probe); got != want {
				t.Fatalf("kind %v slot %d: batch Conflicts = %v, single = %v", k, i, got, want)
			}
		}
		// Neighbouring batch slots must be fully isolated.
		batch2 := NewBatch(k, 2)
		batch2[0].Write(42)
		if !batch2[1].Empty() {
			t.Fatalf("kind %v: writing slot 0 leaked into slot 1", k)
		}
		probe := New(k)
		probe.Read(42)
		if batch2[1].Conflicts(probe) {
			t.Fatalf("kind %v: slot 1 conflicts through slot 0's write", k)
		}
	}
}

// TestWriteLogRecordsWrites pins the WriteLog contract the incremental
// checkpointer relies on: with a log installed every Write appends its
// address in order, reads never do, and a nil log costs nothing.
func TestWriteLogRecordsWrites(t *testing.T) {
	s := New(Range)
	s.Write(5) // no log installed: not recorded
	s.WriteLog = make([]uint64, 0, 4)
	s.Read(1)
	s.Write(2)
	s.Write(2)
	s.Write(9)
	got := s.WriteLog
	want := []uint64{2, 2, 9}
	if len(got) != len(want) {
		t.Fatalf("WriteLog = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WriteLog = %v, want %v", got, want)
		}
	}
	s.Reset()
	if s.WriteLog != nil {
		t.Fatal("Reset did not detach the write log")
	}
}

// decodeWordOpsCase turns fuzz bytes into an operation sequence over a
// pair of sets: each 3-byte record is (op, addrHi, addrLo). op mod 4
// selects add-to-A, add-to-B, union-B-into-A, or reset-A.
func decodeWordOpsCase(data []byte) (ops []int, addrs []uint64) {
	for i := 0; i+2 < len(data); i += 3 {
		ops = append(ops, int(data[i]%4))
		addrs = append(addrs, uint64(data[i+1])<<8|uint64(data[i+2]))
	}
	return
}

// FuzzWordParallelOps fuzzes arbitrary add/union/reset sequences through
// the word-parallel Bloom filter and the sorted-slice exact set, checking
// every intersection verdict against the bit-by-bit and map references.
func FuzzWordParallelOps(f *testing.F) {
	f.Add([]byte{0, 0, 53, 1, 0, 53})        // probe-collision addr on both sides
	f.Add([]byte{0, 0, 7, 2, 0, 0, 1, 0, 7}) // union then shared addr
	f.Add([]byte{0, 0, 9, 3, 0, 0, 1, 0, 9}) // reset erases A's side
	f.Add([]byte{1, 8, 2, 0, 8, 2, 2, 0, 0}) // high addresses + union
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, addrs := decodeWordOpsCase(data)
		a, b := NewBloomSet(DefaultBloomBits), NewBloomSet(DefaultBloomBits)
		ra, rb := newRefBloom(), newRefBloom()
		ea, eb := NewExactSet(), NewExactSet()
		ma, mb := refExact{}, refExact{}
		for i, op := range ops {
			addr := addrs[i]
			switch op {
			case 0:
				a.Add(addr)
				ra.add(addr)
				ea.Add(addr)
				ma[addr] = struct{}{}
			case 1:
				b.Add(addr)
				rb.add(addr)
				eb.Add(addr)
				mb[addr] = struct{}{}
			case 2:
				a.Union(b)
				ra.union(rb)
				ea.Union(eb)
				for x := range mb {
					ma[x] = struct{}{}
				}
			case 3:
				a.Reset()
				ra = newRefBloom()
				ea.Reset()
				ma = refExact{}
			}
			if got, want := a.Intersects(b), ra.intersects(rb); got != want {
				t.Fatalf("op %d: bloom word Intersects = %v, bit reference = %v", i, got, want)
			}
			if got, want := ea.Intersects(eb), ma.intersects(mb); got != want {
				t.Fatalf("op %d: exact slice Intersects = %v, map reference = %v", i, got, want)
			}
			if got, want := a.Empty(), ra.n == 0; got != want {
				t.Fatalf("op %d: bloom Empty = %v, reference = %v", i, got, want)
			}
			if got, want := ea.Empty(), len(ma) == 0; got != want {
				t.Fatalf("op %d: exact Empty = %v, reference = %v", i, got, want)
			}
		}
		sameBits(t, a, ra)
		sameBits(t, b, rb)
	})
}

// Package barrier implements the reusable non-speculative barrier that the
// paper's baseline parallelizations place between loop invocations
// (pthread_barrier_wait in Fig 1.3), plus instrumentation that measures how
// long each thread idles at the barrier — the quantity Fig 4.3 reports as
// "barrier overhead".
package barrier

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Barrier is a sense-reversing reusable barrier for a fixed set of
// participants. It may be reused for any number of phases.
type Barrier struct {
	parties int

	mu    sync.Mutex
	cond  *sync.Cond
	count int    // arrivals in the current phase
	phase uint64 // generation counter; changing it releases waiters

	waitTime  atomic.Int64 // cumulative nanoseconds spent blocked, all threads
	waitCount atomic.Int64 // cumulative number of Wait calls
}

// New returns a barrier for the given number of participating threads.
func New(parties int) *Barrier {
	if parties <= 0 {
		panic(fmt.Sprintf("barrier: invalid party count %d", parties))
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Parties reports the number of participants the barrier synchronizes.
func (b *Barrier) Parties() int { return b.parties }

// Wait blocks until all parties have called Wait for the current phase.
// It returns true for exactly one (arbitrary) caller per phase — the analog
// of PTHREAD_BARRIER_SERIAL_THREAD — which callers may use to run per-phase
// serial work.
func (b *Barrier) Wait() bool {
	start := time.Now()
	serial := b.wait()
	b.waitTime.Add(time.Since(start).Nanoseconds())
	b.waitCount.Add(1)
	return serial
}

func (b *Barrier) wait() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return true
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	return false
}

// Stats reports the cumulative time all threads have spent blocked in Wait
// and the total number of Wait calls. The idle time is the direct measure of
// the synchronization overhead the paper attributes to barriers (§2.3 cites
// up to 61% of runtime; Fig 4.3 measures ≥30% for these benchmarks).
func (b *Barrier) Stats() (idle time.Duration, waits int64) {
	return time.Duration(b.waitTime.Load()), b.waitCount.Load()
}

// ResetStats zeroes the accumulated statistics.
func (b *Barrier) ResetStats() {
	b.waitTime.Store(0)
	b.waitCount.Store(0)
}

package barrier

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestInvalidPartiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSinglePartyNeverBlocks(t *testing.T) {
	b := New(1)
	for i := 0; i < 10; i++ {
		if !b.Wait() {
			t.Fatal("single-party barrier must always elect the caller as serial")
		}
	}
}

// TestPhaseOrdering checks the fundamental barrier property: all work from
// phase k is observed by every thread before any work from phase k+1 begins.
func TestPhaseOrdering(t *testing.T) {
	const parties = 8
	const phases = 50
	b := New(parties)
	var counter atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, parties)
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				counter.Add(1)
				b.Wait()
				if got := counter.Load(); got != int64((ph+1)*parties) {
					errs <- "phase boundary violated"
					return
				}
				b.Wait() // second barrier so no thread races ahead into the next Add
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func TestExactlyOneSerialPerPhase(t *testing.T) {
	const parties = 6
	const phases = 40
	b := New(parties)
	var serials atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				if b.Wait() {
					serials.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := serials.Load(); got != phases {
		t.Fatalf("serial elections = %d, want %d (one per phase)", got, phases)
	}
}

func TestStatsAccumulateIdleTime(t *testing.T) {
	b := New(2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.Wait()
	}()
	time.Sleep(20 * time.Millisecond) // make the peer idle measurably
	b.Wait()
	wg.Wait()
	idle, waits := b.Stats()
	if waits != 2 {
		t.Fatalf("waits = %d, want 2", waits)
	}
	if idle < 10*time.Millisecond {
		t.Fatalf("idle = %v, want at least ~20ms accumulated by the early arriver", idle)
	}
	b.ResetStats()
	if idle, waits := b.Stats(); idle != 0 || waits != 0 {
		t.Fatalf("after ResetStats: idle=%v waits=%d, want zeros", idle, waits)
	}
}

func TestReuseManyPhases(t *testing.T) {
	const parties = 4
	b := New(parties)
	var wg sync.WaitGroup
	var sum atomic.Int64
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for ph := 0; ph < 200; ph++ {
				sum.Add(int64(id))
				b.Wait()
			}
		}(p)
	}
	wg.Wait()
	if got := sum.Load(); got != 200*(0+1+2+3) {
		t.Fatalf("sum = %d, want %d", got, 200*6)
	}
}

func BenchmarkBarrierWait(b *testing.B) {
	for _, parties := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "p2", 4: "p4", 8: "p8"}[parties], func(b *testing.B) {
			bar := New(parties)
			var wg sync.WaitGroup
			for p := 0; p < parties; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						bar.Wait()
					}
				}()
			}
			wg.Wait()
		})
	}
}

package adaptive_test

import (
	"strings"
	"testing"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/runtime/trace"
)

// TestDecisionAudit drives the phased kernel with the audit hook and the
// trace recorder on: every window must produce one Decision carrying a
// non-empty reason, the injected misspeculation must be explained as the
// ground for its switch, and the controller must emit one request span
// per window parented under the caller-provided span id.
func TestDecisionAudit(t *testing.T) {
	k := buildKernel(false)
	rec := trace.NewRecorder()
	var decisions []adaptive.Decision
	cfg := adaptive.Config{
		Workers: 4,
		Window:  8,
		Spec: speccross.Config{
			SpecDistance:      safeDist,
			ForceMisspecEpoch: 66,
		},
		Trace:      rec,
		SpanParent: 99,
		SeedSource: "test:manual",
		OnDecision: func(d adaptive.Decision) { decisions = append(decisions, d) },
	}
	stats := adaptive.Run(k, cfg)

	if len(decisions) != stats.Windows {
		t.Fatalf("got %d decisions for %d windows", len(decisions), stats.Windows)
	}
	sawMisspec := false
	for i, d := range decisions {
		if d.Window != i {
			t.Errorf("decision %d has Window %d", i, d.Window)
		}
		if d.Reason == "" {
			t.Errorf("decision %d has empty reason", i)
		}
		if d.SeedSource != "test:manual" {
			t.Errorf("decision %d seed source = %q", i, d.SeedSource)
		}
		if d.WindowNs <= 0 {
			t.Errorf("decision %d WindowNs = %d", i, d.WindowNs)
		}
		if d.Sample != stats.Samples[i] {
			t.Errorf("decision %d sample diverges from stats.Samples", i)
		}
		if d.Sample.Misspeculated {
			sawMisspec = true
			if !d.Switched || d.Next != adaptive.EngineDomore {
				t.Errorf("misspeculating window %d: Switched=%v Next=%v", i, d.Switched, d.Next)
			}
			if !strings.Contains(d.Reason, "misspeculated") {
				t.Errorf("misspeculating window reason = %q", d.Reason)
			}
			if d.PolicyHold == 0 {
				t.Errorf("misspeculating window: hysteresis hold not exposed")
			}
		}
	}
	if !sawMisspec {
		t.Fatal("no decision covered the injected misspeculation")
	}

	// One window span per window, parented under SpanParent.
	var winSpans int
	for _, s := range rec.Spans() {
		if s.Kind == "window" {
			winSpans++
			if s.Parent != 99 {
				t.Errorf("window span parent = %d, want 99", s.Parent)
			}
			if s.Lane != trace.LaneControl {
				t.Errorf("window span lane = %d, want control", s.Lane)
			}
			if s.EndNs == 0 {
				t.Error("window span left open")
			}
		}
	}
	if winSpans != stats.Windows {
		t.Errorf("window spans = %d, want %d", winSpans, stats.Windows)
	}
}

// TestPrefilterPressureFallback pins the cheap checker-pressure signal:
// with PrefilterMax set, a high pre-filter hit rate alone (no
// misspeculation, comparisons under PressureMax) triggers fallback, and
// the policy explains it. With the knob at its zero default the same
// sample keeps speculating.
func TestPrefilterPressureFallback(t *testing.T) {
	s := adaptive.Sample{
		Engine:           adaptive.EngineSpecCross,
		Tasks:            64,
		CheckerPressure:  1,
		PrefilterHitRate: 0.95,
	}

	p := &adaptive.ThresholdPolicy{PrefilterMax: 0.5}
	if next := p.Decide(s); next != adaptive.EngineDomore {
		t.Fatalf("Decide = %v, want domore fallback on pre-filter pressure", next)
	}
	st := p.Explain()
	if !strings.Contains(st.Reason, "pre-filter hit rate") {
		t.Errorf("reason = %q, want pre-filter explanation", st.Reason)
	}
	if st.Hold == 0 {
		t.Error("fallback did not arm the backoff hold")
	}

	off := &adaptive.ThresholdPolicy{}
	if next := off.Decide(s); next != adaptive.EngineSpecCross {
		t.Fatalf("Decide = %v with PrefilterMax disabled, want speccross", next)
	}
	if r := off.Explain().Reason; !strings.Contains(r, "healthy") {
		t.Errorf("healthy reason = %q", r)
	}
}

package adaptive

import "fmt"

// Engine identifies one of the three execution strategies the controller
// selects between: the non-speculative barrier baseline (Fig 1.3(b)),
// DOMORE's scheduler/worker pipeline (Chapter 3), and SPECCROSS's
// speculative barrier (Chapter 4).
type Engine int

const (
	// EngineDomore is the DOMORE runtime (non-speculative, synchronizes
	// only manifested dependences). It is the zero value on purpose: it is
	// the safe probe when nothing is known yet, so it is also the default
	// starting engine (Config.Start).
	EngineDomore Engine = iota
	// EngineSpecCross is the SPECCROSS runtime (speculative barrier).
	EngineSpecCross
	// EngineBarrier is the pthread-barrier baseline.
	EngineBarrier
	// EngineDomoreSharded is DOMORE with the sharded scheduler and batched
	// condition queues (domore.RunSharded): the same schedule as
	// EngineDomore with the scheduler's dependence detection spread across
	// lanes, so it is a legal quiesce-point target wherever DOMORE is.
	EngineDomoreSharded
	// NumEngines is the number of selectable engines.
	NumEngines
)

// String returns the engine's display name.
func (e Engine) String() string {
	switch e {
	case EngineBarrier:
		return "barrier"
	case EngineDomore:
		return "domore"
	case EngineDomoreSharded:
		return "domore-sharded"
	case EngineSpecCross:
		return "speccross"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Sample is what the online monitors observed over one window of epochs.
// Each engine reports the signals it can measure natively:
//
//   - DOMORE windows report ManifestRate — synchronization conditions
//     forwarded per scheduled iteration, the dynamic analogue of the
//     paper's "manifest rate" (72.4% for CG, 99% for ECLAT, §5.1);
//   - SPECCROSS windows report Misspeculated and CheckerPressure
//     (signature comparisons per task, a proxy for checker-queue load,
//     the §5.2 scaling bottleneck);
//   - barrier windows carry no dependence signal (the baseline is blind,
//     which is why the default policy only uses it as a fallback).
type Sample struct {
	// Engine is the engine that executed the window.
	Engine Engine
	// StartEpoch and EndEpoch delimit the window, [StartEpoch, EndEpoch).
	StartEpoch, EndEpoch int
	// Tasks is the number of tasks/iterations the window executed.
	Tasks int64
	// ManifestRate is sync conditions per iteration (DOMORE windows).
	ManifestRate float64
	// Misspeculated reports whether the window rolled back (SPECCROSS).
	Misspeculated bool
	// CheckerPressure is signature comparisons per task (SPECCROSS).
	CheckerPressure float64
	// PrefilterHitRate is the fraction of checker union pre-filter tests
	// that passed and forced a precise per-task scan (SPECCROSS windows).
	// It is a cheaper leading indicator of checker load than
	// CheckerPressure: the union test runs once per (worker, epoch) row
	// regardless of how many tasks the row logs.
	PrefilterHitRate float64
}

// Policy picks the engine for the next window given the sample of the
// last one. Implementations may be stateful (hysteresis, bandit
// estimators); the controller calls Decide exactly once per window, in
// window order, from a single goroutine.
type Policy interface {
	Decide(s Sample) Engine
}

// ThresholdPolicy is the default controller policy: a hysteresis
// threshold scheme around the paper's crossover finding (§5, Fig 5.4 —
// DOMORE wins when cross-invocation dependences manifest frequently,
// SPECCROSS when they are rare, and §4.4's profitability threshold says
// speculation should not be attempted when conflicts sit too close).
//
// From DOMORE it hands off to SPECCROSS after Patience consecutive
// windows whose manifest rate is at or below SpecEnter. From SPECCROSS it
// falls back to DOMORE as soon as a window misspeculates or checker
// pressure exceeds PressureMax, then holds DOMORE for Backoff windows
// before trusting a low manifest rate again (misspeculation is paid in
// rollback plus barrier re-execution, so flapping is the worst case).
// Barrier windows carry no signal; the policy immediately probes with
// DOMORE, whose monitors see every manifested dependence.
type ThresholdPolicy struct {
	// SpecEnter is the manifest-rate bound at or below which a DOMORE
	// window counts toward switching to SPECCROSS (default 0.05).
	SpecEnter float64
	// PressureMax is the checker-comparisons-per-task bound above which a
	// SPECCROSS window triggers fallback to DOMORE (default 8).
	PressureMax float64
	// Patience is how many consecutive qualifying DOMORE windows are
	// required before entering SPECCROSS (default 1).
	Patience int
	// Backoff is how many DOMORE windows to hold after a misspeculation
	// before low manifest rates count again (default 4).
	Backoff int
	// PrefilterMax, when positive, is the union pre-filter hit-rate bound
	// above which a SPECCROSS window triggers fallback even before the
	// precise comparisons pile up (the cheap checker-pressure signal).
	// Zero disables the check, which is the default: the bound is
	// workload-dependent, so callers opt in.
	PrefilterMax float64

	low        int    // consecutive DOMORE windows at/below SpecEnter
	hold       int    // remaining post-misspeculation hold windows
	lastReason string // ground for the last Decide answer, for Explain
}

// NewThreshold returns a ThresholdPolicy with the default constants.
func NewThreshold() *ThresholdPolicy {
	return &ThresholdPolicy{SpecEnter: 0.05, PressureMax: 8, Patience: 1, Backoff: 4}
}

func (p *ThresholdPolicy) fill() {
	if p.SpecEnter == 0 {
		p.SpecEnter = 0.05
	}
	if p.PressureMax == 0 {
		p.PressureMax = 8
	}
	if p.Patience <= 0 {
		p.Patience = 1
	}
	if p.Backoff <= 0 {
		p.Backoff = 4
	}
}

// Decide implements Policy.
func (p *ThresholdPolicy) Decide(s Sample) Engine {
	p.fill()
	switch s.Engine {
	case EngineBarrier:
		// The barrier baseline observes nothing; probe with DOMORE, whose
		// scheduler measures the manifest rate directly.
		p.lastReason = "barrier window carries no dependence signal; probing with domore"
		return EngineDomore
	case EngineDomore, EngineDomoreSharded:
		// The sharded scheduler produces DOMORE's exact schedule, so its
		// windows carry the same manifest-rate signal; stay-decisions keep
		// the caller's flavor rather than silently dropping the sharding.
		if p.hold > 0 {
			p.hold--
			p.low = 0
			p.lastReason = fmt.Sprintf("post-misspeculation backoff, holding %v (%d windows left)", s.Engine, p.hold)
			return s.Engine
		}
		if s.ManifestRate <= p.SpecEnter {
			p.low++
		} else {
			p.low = 0
		}
		if p.low >= p.Patience {
			p.low = 0
			p.lastReason = fmt.Sprintf("manifest rate %.3f at/below spec-enter %.3f for %d window(s); entering speculation",
				s.ManifestRate, p.SpecEnter, p.Patience)
			return EngineSpecCross
		}
		if s.ManifestRate <= p.SpecEnter {
			p.lastReason = fmt.Sprintf("manifest rate %.3f qualifies but patience %d/%d not met", s.ManifestRate, p.low, p.Patience)
		} else {
			p.lastReason = fmt.Sprintf("manifest rate %.3f above spec-enter %.3f; dependences manifest, staying in %v",
				s.ManifestRate, p.SpecEnter, s.Engine)
		}
		return s.Engine
	case EngineSpecCross:
		switch {
		case s.Misspeculated:
			p.lastReason = fmt.Sprintf("window misspeculated; falling back to domore for %d windows", p.Backoff)
		case s.CheckerPressure > p.PressureMax:
			p.lastReason = fmt.Sprintf("checker pressure %.2f above %.2f; falling back to domore", s.CheckerPressure, p.PressureMax)
		case p.PrefilterMax > 0 && s.PrefilterHitRate > p.PrefilterMax:
			p.lastReason = fmt.Sprintf("pre-filter hit rate %.2f above %.2f; falling back to domore", s.PrefilterHitRate, p.PrefilterMax)
		default:
			p.lastReason = fmt.Sprintf("speculation healthy (pressure %.2f, pre-filter hit rate %.2f); staying in speccross",
				s.CheckerPressure, s.PrefilterHitRate)
			return EngineSpecCross
		}
		p.hold = p.Backoff
		p.low = 0
		return EngineDomore
	}
	p.lastReason = fmt.Sprintf("unknown engine %v; keeping it", s.Engine)
	return s.Engine
}

// Explain implements Explainer: the reason for the last Decide answer
// plus the hysteresis counters backing it.
func (p *ThresholdPolicy) Explain() PolicyState {
	return PolicyState{Reason: p.lastReason, Low: p.low, Hold: p.hold}
}

// Fixed is a degenerate policy that always answers the same engine — the
// static strategies the adaptive controller is compared against (and a
// way to run any single engine through the windowed execution path).
type Fixed Engine

// Decide implements Policy.
func (f Fixed) Decide(Sample) Engine { return Engine(f) }

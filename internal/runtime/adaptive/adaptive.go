// Package adaptive is the hybrid runtime: it executes an
// invocation-structured code region window by window, monitors live
// conflict and misspeculation signals, and switches execution engines —
// barrier, DOMORE, or SPECCROSS — at window boundaries.
//
// The paper's central empirical finding is a crossover (§5, Fig 5.4):
// DOMORE wins when cross-invocation dependences manifest frequently (CG's
// 72.4% manifest rate, ECLAT's 99%), SPECCROSS wins when they are rare.
// The static engines require that choice to be baked in at the call site;
// this package takes the paper's title one step further and uses runtime
// information to pick the runtime itself. Windows of W epochs run under
// the current engine; DOMORE windows report the manifest-dependence rate
// (sync conditions per iteration, from the scheduler of Algorithm 1),
// SPECCROSS windows report misspeculations and checker pressure (from
// the Chapter 4 Stats); a Policy — hysteresis thresholds by default,
// pluggable for bandit-style learners — picks the engine for the next
// window. Switches pay the documented quiesce cost: a drain barrier when
// leaving DOMORE, a checkpoint barrier when leaving SPECCROSS (both fall
// out of the window join every window boundary performs).
package adaptive

import (
	"fmt"
	"time"

	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/shadow"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/runtime/trace"
)

// Workload is a code region executable under every engine: one workload
// definition providing both the DOMORE view (invocations of iterations
// with redundantly computable address sets, §3.3.4) and the SPECCROSS
// view (epochs of independent tasks with checkpointable state, §4.2).
// Invocations and epochs must describe the same structure:
// Invocations() == Epochs() and Iterations(i) == Tasks(i) for every i.
//
// The epochal.Kernel skeleton and the benchmark adapters already satisfy
// both halves; Combine glues together separately implemented views.
type Workload interface {
	domore.Workload
	speccross.Workload
}

// WindowStarter is optionally implemented by workloads that maintain
// derived state for the DOMORE view (for example a private array mirror
// that address recomputation replays against). WindowStart(epoch) is
// invoked at each window boundary, with every engine quiescent and all
// epochs before epoch committed, so the workload can resynchronize that
// state before the next window runs.
type WindowStarter interface {
	WindowStart(epoch int)
}

// Combine builds a unified Workload from separately implemented engine
// views over the same region and shared state. The two views must agree
// on structure (d.Invocations() == s.Epochs(), iteration counts equal).
func Combine(d domore.Workload, s speccross.Workload) Workload {
	return &combined{d: d, s: s}
}

type combined struct {
	d domore.Workload
	s speccross.Workload
}

func (c *combined) Invocations() int         { return c.d.Invocations() }
func (c *combined) Iterations(inv int) int   { return c.d.Iterations(inv) }
func (c *combined) Sequential(inv int)       { c.d.Sequential(inv) }
func (c *combined) Execute(inv, iter, t int) { c.d.Execute(inv, iter, t) }
func (c *combined) Epochs() int              { return c.s.Epochs() }
func (c *combined) Tasks(epoch int) int      { return c.s.Tasks(epoch) }
func (c *combined) Snapshot() any            { return c.s.Snapshot() }
func (c *combined) Restore(snap any)         { c.s.Restore(snap) }
func (c *combined) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	return c.d.ComputeAddr(inv, iter, buf)
}
func (c *combined) Run(epoch, task, tid int, sig *signature.Signature) {
	c.s.Run(epoch, task, tid, sig)
}

// Config tunes an adaptive execution.
type Config struct {
	// Workers is the worker thread count handed to every engine (each
	// engine adds its own scheduler/checker threads as usual).
	Workers int
	// Window is the number of epochs per monitoring window (default 32).
	Window int
	// Policy picks the engine for each next window (default NewThreshold).
	Policy Policy
	// Start is the engine of the first window (default EngineDomore: it is
	// non-speculative and measures the manifest rate directly, so it is
	// the safe probe when nothing is known yet).
	Start Engine
	// Domore is the DOMORE options template. Workers is overridden per
	// window; Shadow is replaced by a fresh store each DOMORE window
	// (iteration numbering restarts per window, and every dependence into
	// an earlier window is already satisfied by the window-boundary
	// quiesce, so carrying shadow state across windows would manufacture
	// waits on iterations that never re-execute).
	Domore domore.Options
	// Spec is the SPECCROSS config template. Workers and CheckpointEvery
	// are overridden per window (each window is one checkpoint segment, so
	// a misspeculating window rolls back exactly to its own start).
	Spec speccross.Config
	// Trace, when non-nil, is shared by the controller and every engine
	// window: the controller emits window-begin and engine-switch events
	// on trace.LaneControl, and each window's engine emits its usual
	// stream (lanes persist across windows; the boundary quiesce makes
	// the handoff safe). When set, the per-window monitor Sample is
	// derived from trace-event deltas rather than from engine Stats, so
	// the policy's inputs come from the same observability stream that
	// export and metrics use.
	Trace *trace.Recorder
	// SpanParent, when nonzero, parents each window's request span under
	// an enclosing span — the daemon passes its execute span's id so the
	// invocation's span tree shows every window.
	SpanParent int64
	// OnDecision, when non-nil, observes every window-boundary decision
	// synchronously from the controller goroutine — the audit hook the
	// daemon journals into /debug/decisions. It must be fast; engine
	// threads are quiescent while it runs.
	OnDecision func(Decision)
	// SeedSource records how Start/Policy were primed (set by
	// SeedFromFacts/SeedFromProfile, overridable by callers replaying a
	// cached seed); it is copied into every Decision for provenance.
	SeedSource string
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		panic(fmt.Sprintf("adaptive: invalid worker count %d", c.Workers))
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Policy == nil {
		c.Policy = NewThreshold()
	}
}

// Stats reports what the adaptive controller and its engines observed.
type Stats struct {
	// Windows is the number of windows executed.
	Windows int
	// Switches counts engine changes at window boundaries.
	Switches int
	// EngineWindows counts windows executed per engine, indexed by Engine.
	EngineWindows [NumEngines]int
	// Domore aggregates the DOMORE windows' statistics.
	Domore domore.Stats
	// Spec aggregates the SPECCROSS windows' statistics.
	Spec speccross.Stats
	// Samples is the per-window monitor log, in execution order.
	Samples []Sample
}

// Run executes the workload under the adaptive controller and returns the
// combined statistics. Correctness is engine-independent: every window
// runs to completion (SPECCROSS windows recover internally via rollback
// and barrier re-execution), and window boundaries fully quiesce, so the
// final state equals the sequential result regardless of the decisions.
func Run(w Workload, cfg Config) Stats {
	cfg.fill()
	epochs := w.Epochs()
	if inv := w.Invocations(); inv != epochs {
		panic(fmt.Sprintf("adaptive: workload views disagree: %d invocations vs %d epochs", inv, epochs))
	}

	var stats Stats
	trace.Labeled("adaptive", "control", func() {
		stats = runWindows(w, cfg, epochs)
	})
	return stats
}

// runWindows is the controller loop: it runs on the adaptive monitor's
// labeled goroutine, and each window's engine relabels the threads it
// spawns (the controller thread itself re-labels per engine call via the
// engines' own Labeled wrappers, so its scheduling work attributes to the
// engine that performed it).
func runWindows(w Workload, cfg Config, epochs int) Stats {
	var stats Stats
	ctl := cfg.Trace.Lane(trace.LaneControl)
	engine := cfg.Start
	for lo := 0; lo < epochs; {
		hi := lo + cfg.Window
		if hi > epochs {
			hi = epochs
		}
		if ws, ok := w.(WindowStarter); ok {
			ws.WindowStart(lo)
		}
		win := &window{w: w, lo: lo, hi: hi}
		sample := Sample{Engine: engine, StartEpoch: lo, EndEpoch: hi}
		winSpan := ctl.BeginSpan(trace.SpanWindow, cfg.SpanParent)
		ctl.Emit(trace.KindWindowBegin, int64(lo), int64(hi), int64(engine))
		before := cfg.Trace.Summary()
		winStart := time.Now()

		switch engine {
		case EngineBarrier:
			speccross.RunBarriersTraced(win, cfg.Workers, cfg.Trace)
			for e := lo; e < hi; e++ {
				sample.Tasks += int64(w.Tasks(e))
			}
		case EngineDomore, EngineDomoreSharded:
			opts := cfg.Domore
			opts.Workers = cfg.Workers
			opts.Shadow = shadow.NewSparse()
			opts.Trace = cfg.Trace
			var st domore.Stats
			if engine == EngineDomoreSharded {
				// The sharded scheduler builds its own per-shard stores; the
				// serial address mode is the default because not every
				// adaptive workload's ComputeAddr is lane-concurrent (the
				// interpreter-backed regions share one replay environment).
				st = domore.RunSharded(win, opts)
			} else {
				st = domore.Run(win, opts)
			}
			addDomore(&stats.Domore, st)
			sample.Tasks = st.Iterations
			if st.Iterations > 0 {
				sample.ManifestRate = float64(st.SyncConditions) / float64(st.Iterations)
			}
		case EngineSpecCross:
			sc := cfg.Spec
			sc.Workers = cfg.Workers
			sc.CheckpointEvery = hi - lo
			sc.Trace = cfg.Trace
			// The template's epoch-indexed knobs are absolute; the window
			// view re-bases epochs to 0, so shift them accordingly.
			if of := cfg.Spec.SpecDistanceOf; of != nil {
				base := lo
				sc.SpecDistanceOf = func(epoch int) int64 { return of(base + epoch) }
			}
			if fe := cfg.Spec.ForceMisspecEpoch; fe > 0 {
				if fe >= lo && fe < hi {
					rel := fe - lo
					if rel == 0 && hi-lo > 1 {
						// speccross only injects on positive epoch indices;
						// keep the fault in-window by moving it one epoch.
						rel = 1
					}
					sc.ForceMisspecEpoch = rel
				} else {
					sc.ForceMisspecEpoch = -1
				}
			}
			st := speccross.Run(win, sc)
			addSpec(&stats.Spec, st)
			sample.Tasks = st.Tasks
			sample.Misspeculated = st.Misspeculations > 0
			if st.Tasks > 0 {
				sample.CheckerPressure = float64(st.Comparisons) / float64(st.Tasks)
			}
			if st.PrefilterChecks > 0 {
				sample.PrefilterHitRate = float64(st.PrefilterHits) / float64(st.PrefilterChecks)
			}
		default:
			panic(fmt.Sprintf("adaptive: unknown engine %v", engine))
		}
		winNs := int64(time.Since(winStart))
		winSpan.End()

		boundaryStart := time.Now()
		if ctl.Enabled() {
			// The monitor refactor: with tracing on, the policy's inputs
			// come from the event stream (exact Summary deltas over the
			// quiescent window boundary), not from engine Stats.
			applyTraceSample(&sample, engine, before, cfg.Trace.Summary())
		}

		stats.Windows++
		stats.EngineWindows[engine]++
		stats.Samples = append(stats.Samples, sample)

		next := cfg.Policy.Decide(sample)
		if next < 0 || next >= NumEngines {
			panic(fmt.Sprintf("adaptive: policy returned unknown engine %v", next))
		}
		if next != engine {
			stats.Switches++
			ctl.Emit(trace.KindEngineSwitch, int64(engine), int64(next), int64(hi))
		}
		if cfg.OnDecision != nil {
			ps := explainPolicy(cfg.Policy, next)
			cfg.OnDecision(Decision{
				Window:     stats.Windows - 1,
				Sample:     sample,
				Next:       next,
				Switched:   next != engine,
				WindowNs:   winNs,
				BoundaryNs: int64(time.Since(boundaryStart)),
				Reason:     ps.Reason,
				SeedSource: cfg.SeedSource,
				PolicyLow:  ps.Low,
				PolicyHold: ps.Hold,
			})
		}
		engine = next
		lo = hi
	}
	return stats
}

// applyTraceSample overwrites the monitor fields of sample with values
// derived from the window's trace-event deltas. The mapping mirrors the
// Stats-based derivation exactly: DOMORE's manifest rate is sync
// conditions per scheduled iteration, SPECCROSS's checker pressure is
// signature comparisons per committed task, and a window misspeculated
// iff a misspec event fired inside it.
func applyTraceSample(sample *Sample, engine Engine, before, after trace.Summary) {
	d := func(k trace.Kind) int64 { return after.Counts[k] - before.Counts[k] }
	switch engine {
	case EngineBarrier:
		sample.Tasks = d(trace.KindIterEnd)
	case EngineDomore, EngineDomoreSharded:
		// The sharded driver emits the same scheduler-lane kinds as the
		// single scheduler, so the derivation is shared.
		sample.Tasks = d(trace.KindSchedule)
		if sample.Tasks > 0 {
			sample.ManifestRate = float64(d(trace.KindSyncCond)) / float64(sample.Tasks)
		}
	case EngineSpecCross:
		sample.Tasks = d(trace.KindTaskEnd)
		sample.Misspeculated = d(trace.KindMisspec) > 0
		if sample.Tasks > 0 {
			sample.CheckerPressure = float64(d(trace.KindSigCheck)) / float64(sample.Tasks)
		}
		// The pre-filter event carries its outcome in argument A, so the
		// hit rate falls out of the count/sum deltas.
		if checks := d(trace.KindSigPrefilter); checks > 0 {
			hits := after.Sums[trace.KindSigPrefilter] - before.Sums[trace.KindSigPrefilter]
			sample.PrefilterHitRate = float64(hits) / float64(checks)
		}
	}
}

// window exposes the epoch range [lo, hi) of a workload as a standalone
// workload under both engine views, shifting indices so each engine sees
// a region starting at invocation/epoch 0.
type window struct {
	w      Workload
	lo, hi int
}

func (s *window) Invocations() int       { return s.hi - s.lo }
func (s *window) Iterations(inv int) int { return s.w.Iterations(s.lo + inv) }
func (s *window) Sequential(inv int)     { s.w.Sequential(s.lo + inv) }
func (s *window) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	return s.w.ComputeAddr(s.lo+inv, iter, buf)
}
func (s *window) Execute(inv, iter, tid int) { s.w.Execute(s.lo+inv, iter, tid) }

func (s *window) Epochs() int         { return s.hi - s.lo }
func (s *window) Tasks(epoch int) int { return s.w.Tasks(s.lo + epoch) }
func (s *window) Run(epoch, task, tid int, sig *signature.Signature) {
	s.w.Run(s.lo+epoch, task, tid, sig)
}
func (s *window) Snapshot() any    { return s.w.Snapshot() }
func (s *window) Restore(snap any) { s.w.Restore(snap) }

// The speccross.DeltaWorkload view forwards to the underlying workload so
// SPECCROSS windows keep incremental checkpoints; StateLen 0 (the
// delta-incapable marker) is reported when the workload has no delta view.
func (s *window) StateLen() int {
	if dw, ok := s.w.(speccross.DeltaWorkload); ok {
		return dw.StateLen()
	}
	return 0
}

func (s *window) ReadCell(cell uint64) int64 {
	return s.w.(speccross.DeltaWorkload).ReadCell(cell)
}

func (s *window) WriteCell(cell uint64, v int64) {
	s.w.(speccross.DeltaWorkload).WriteCell(cell, v)
}

func (s *window) AddrCells(addr uint64) (lo, hi uint64) {
	return s.w.(speccross.DeltaWorkload).AddrCells(addr)
}

// Irreversible forwards the §4.2.2 irreversible-epoch marker when the
// underlying workload provides one.
func (s *window) Irreversible(epoch int) bool {
	if irr, ok := s.w.(speccross.Irreversibler); ok {
		return irr.Irreversible(s.lo + epoch)
	}
	return false
}

func addDomore(dst *domore.Stats, s domore.Stats) {
	dst.Iterations += s.Iterations
	dst.Dispatches += s.Dispatches
	dst.SyncConditions += s.SyncConditions
	dst.Stalls += s.Stalls
	dst.AddrChecks += s.AddrChecks
	dst.Batches += s.Batches
	dst.LaneWaits += s.LaneWaits
}

func addSpec(dst *speccross.Stats, s speccross.Stats) {
	dst.Tasks += s.Tasks
	dst.Epochs += s.Epochs
	dst.CheckRequests += s.CheckRequests
	dst.Comparisons += s.Comparisons
	dst.Misspeculations += s.Misspeculations
	dst.Checkpoints += s.Checkpoints
	dst.ReexecutedEpochs += s.ReexecutedEpochs
	dst.RangeStalls += s.RangeStalls
	dst.PrefilterChecks += s.PrefilterChecks
	dst.PrefilterHits += s.PrefilterHits
	dst.DeltaCheckpoints += s.DeltaCheckpoints
	dst.DeltaCells += s.DeltaCells
	dst.DeltaRestores += s.DeltaRestores
}

package adaptive

import "crossinv/internal/runtime/speccross"

// NoConflictDistance re-exports speccross.NoConflict for seed callers
// that carry profile distances without importing the engine.
const NoConflictDistance = speccross.NoConflict

// This file is the static–dynamic synergy seam (ROADMAP item 5, "The
// Potential of Synergistic Static, Dynamic and Speculative Loop Nest
// Optimizations"): instead of starting every adaptive execution cold with
// the default probe engine, a caller holding profile history — typically
// the crossinvd plan cache — primes the policy state before the first
// window runs.

// ParseEngine maps an engine's display name back to its identifier — the
// inverse of Engine.String, used to revive cached seeds.
func ParseEngine(name string) (Engine, bool) {
	switch name {
	case "domore":
		return EngineDomore, true
	case "domore-sharded":
		return EngineDomoreSharded, true
	case "speccross":
		return EngineSpecCross, true
	case "barrier":
		return EngineBarrier, true
	}
	return 0, false
}

// SeedFromProfile primes the config from a §4.4 conflict profile
// (minDistance as speccross.ProfileResult.MinDistance reports it,
// NoConflict meaning none observed):
//
//   - profitable speculation (distance ≥ workers, the paper's threshold):
//     start directly in SPECCROSS with the profiled distance installed as
//     the speculative-range bound — skipping the cold DOMORE probe window
//     the default Start would spend rediscovering what the profile knows;
//   - unprofitable speculation: the paper's rule is "speculation will not
//     be done", so the policy is pinned to DOMORE. The default
//     ThresholdPolicy only ever moves between DOMORE and SPECCROSS, so
//     pinning is exactly threshold-minus-speculation — and it keeps
//     profile-gated runs deterministic under the race detector (entering
//     SPECCROSS below the profiled distance races by design).
//
// Callers that also cached a preferred start engine or window (plan-cache
// adaptive seeds) should set Start/Window before calling; SeedFromProfile
// only overrides Start when the profile demands it.
// SeedFromFacts primes the config from a static cross-invocation verdict
// (an internal/analysis/xdep class name), so the first window already runs
// the engine the dependence structure calls for instead of probing:
//
//   - "none": the region is provably DOALL across invocations — pin
//     barrier-free speculation. With no cross-invocation dependence the
//     speculative engine can never misspeculate, so the policy is fixed
//     there and the unbounded speculative range (SpecDistance 0) applies;
//   - "forward-only": every dependence flows a bounded number of
//     invocations forward — start in DOMORE, the pipeline regime. When
//     minDistance > 0 it pre-loads the speculative-range bound so a later
//     policy escalation to SPECCROSS speculates within the proven window;
//   - "cyclic" / "unknown": static analysis cannot license anything
//     cheaper, which is exactly the regime the paper's runtimes target —
//     start in SPECCROSS unpinned and let the threshold policy back off
//     to DOMORE if the dependences actually manifest.
//
// An unrecognized class leaves the config untouched and reports false, so
// callers replaying cached facts degrade to the cold default on schema
// drift rather than mis-seeding.
func (c *Config) SeedFromFacts(class string, minDistance int64) bool {
	switch class {
	case "none":
		c.Start = EngineSpecCross
		c.Policy = Fixed(EngineSpecCross)
		c.Spec.SpecDistance = 0
	case "forward-only":
		c.Start = EngineDomore
		if minDistance > 0 {
			c.Spec.SpecDistance = minDistance
		}
	case "cyclic", "unknown":
		c.Start = EngineSpecCross
	default:
		return false
	}
	c.SeedSource = "facts:" + class
	return true
}

func (c *Config) SeedFromProfile(minDistance int64, workers int) {
	if workers <= 0 {
		workers = 1
	}
	if minDistance != NoConflictDistance && minDistance < int64(workers) {
		c.Start = EngineDomore
		c.Policy = Fixed(EngineDomore)
		c.SeedSource = "profile:unprofitable"
		return
	}
	c.Start = EngineSpecCross
	if minDistance != NoConflictDistance {
		c.Spec.SpecDistance = minDistance
	} else {
		c.Spec.SpecDistance = 0
	}
	c.SeedSource = "profile:speculate"
}

package adaptive

import "crossinv/internal/runtime/speccross"

// NoConflictDistance re-exports speccross.NoConflict for seed callers
// that carry profile distances without importing the engine.
const NoConflictDistance = speccross.NoConflict

// This file is the static–dynamic synergy seam (ROADMAP item 5, "The
// Potential of Synergistic Static, Dynamic and Speculative Loop Nest
// Optimizations"): instead of starting every adaptive execution cold with
// the default probe engine, a caller holding profile history — typically
// the crossinvd plan cache — primes the policy state before the first
// window runs.

// ParseEngine maps an engine's display name back to its identifier — the
// inverse of Engine.String, used to revive cached seeds.
func ParseEngine(name string) (Engine, bool) {
	switch name {
	case "domore":
		return EngineDomore, true
	case "speccross":
		return EngineSpecCross, true
	case "barrier":
		return EngineBarrier, true
	}
	return 0, false
}

// SeedFromProfile primes the config from a §4.4 conflict profile
// (minDistance as speccross.ProfileResult.MinDistance reports it,
// NoConflict meaning none observed):
//
//   - profitable speculation (distance ≥ workers, the paper's threshold):
//     start directly in SPECCROSS with the profiled distance installed as
//     the speculative-range bound — skipping the cold DOMORE probe window
//     the default Start would spend rediscovering what the profile knows;
//   - unprofitable speculation: the paper's rule is "speculation will not
//     be done", so the policy is pinned to DOMORE. The default
//     ThresholdPolicy only ever moves between DOMORE and SPECCROSS, so
//     pinning is exactly threshold-minus-speculation — and it keeps
//     profile-gated runs deterministic under the race detector (entering
//     SPECCROSS below the profiled distance races by design).
//
// Callers that also cached a preferred start engine or window (plan-cache
// adaptive seeds) should set Start/Window before calling; SeedFromProfile
// only overrides Start when the profile demands it.
func (c *Config) SeedFromProfile(minDistance int64, workers int) {
	if workers <= 0 {
		workers = 1
	}
	if minDistance != NoConflictDistance && minDistance < int64(workers) {
		c.Start = EngineDomore
		c.Policy = Fixed(EngineDomore)
		return
	}
	c.Start = EngineSpecCross
	if minDistance != NoConflictDistance {
		c.Spec.SpecDistance = minDistance
	} else {
		c.Spec.SpecDistance = 0
	}
}

package adaptive_test

import (
	"testing"

	"crossinv/internal/raceflag"
	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// The test kernel is a miniature of internal/workloads/phased: 96 epochs of
// 8 tasks in three phases — high manifest rate [0,32), low [32,64), high
// [64,96). Every planted conflict reuses an address written exactly two
// epochs earlier (shifted one slot, so round-robin never co-locates the
// pair on one worker), giving a fixed dependence distance of
// 2*tpe-1 = 15 tasks. With Spec.SpecDistance = 15 every conflicting pair is
// ordered by the speculative-range gate, so SPECCROSS windows are
// misspeculation-free and race-free while DOMORE still measures the rate.
const (
	tpe        = 8  // tasks per epoch
	testEpochs = 96 // three 32-epoch phases
	safeDist   = 2*tpe - 1
)

// buildKernel constructs the test workload. When closeHigh is set, the
// final high phase conflicts with the *previous* epoch instead (distance
// 7 < safeDist): under an unbounded speculative range those conflicts
// genuinely overlap and misspeculate — that variant is intentionally racy
// and only runs without the race detector (see internal/raceflag).
func buildKernel(closeHigh bool) *epochal.Kernel {
	const space = 1 << 12
	rng := workloads.NewRng(7)
	addr := make([]uint64, testEpochs*tpe)
	last := make(map[uint64]int)
	for e := 0; e < testEpochs; e++ {
		high := e < 32 || e >= 64
		inEpoch := make(map[uint64]bool, tpe)
		for t := 0; t < tpe; t++ {
			var a uint64
			reused := false
			lag := 2
			if closeHigh && e >= 64 {
				lag = 1
			}
			if e >= lag && e != 32 && e != 64 {
				rate := 30
				if high {
					rate = 750
				}
				if rng.Intn(1000) < rate {
					a = addr[(e-lag)*tpe+(t+1)%tpe]
					reused = !inEpoch[a]
				}
			}
			if !reused {
				for {
					a = uint64(rng.Intn(space))
					if inEpoch[a] {
						continue
					}
					if le, ok := last[a]; !ok || e-le > 4 {
						break
					}
				}
			}
			addr[e*tpe+t] = a
			last[a] = e
			inEpoch[a] = true
		}
	}
	k := &epochal.Kernel{
		BenchName: "adaptive-test",
		State:     make([]int64, space),
		NumEpochs: testEpochs,
		SeqCost:   10,
	}
	k.TasksOf = func(epoch int) int { return tpe }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		a := addr[epoch*tpe+task]
		return append(reads, a), append(writes, a)
	}
	k.Update = func(epoch, task int) {
		g := epoch*tpe + task
		a := addr[g]
		k.State[a] = k.State[a]*3 + int64(g) + 1
	}
	k.TaskCost = func(epoch, task int) int64 { return 100 }
	return k
}

func seqChecksum(closeHigh bool) uint64 {
	g := buildKernel(closeHigh)
	g.RunSequential()
	return g.Checksum()
}

// TestAdaptiveTracksPhases drives the full controller loop race-cleanly:
// DOMORE through the first high phase, handoff to SPECCROSS once the low
// phase drops the manifest rate, fallback to DOMORE when the injected
// misspeculation fires after the high phase returns.
func TestAdaptiveTracksPhases(t *testing.T) {
	want := seqChecksum(false)
	k := buildKernel(false)
	stats := adaptive.Run(k, adaptive.Config{
		Workers: 4,
		Window:  8,
		Spec: speccross.Config{
			SpecDistance: safeDist,
			// Fault-inject at epoch 66: the race-safe kernel's conflicts are
			// all range-gated, so this stands in for the misspeculation a
			// close-conflict phase causes (same stats path, no data race).
			ForceMisspecEpoch: 66,
		},
	})
	if got := k.Checksum(); got != want {
		t.Fatalf("adaptive checksum %x != sequential %x", got, want)
	}
	if wantWin := testEpochs / 8; stats.Windows != wantWin {
		t.Fatalf("Windows = %d, want %d", stats.Windows, wantWin)
	}
	sum := 0
	for _, n := range stats.EngineWindows {
		sum += n
	}
	if sum != stats.Windows {
		t.Fatalf("EngineWindows sums to %d, want %d", sum, stats.Windows)
	}
	if len(stats.Samples) != stats.Windows {
		t.Fatalf("len(Samples) = %d, want %d", len(stats.Samples), stats.Windows)
	}
	// Recompute switches from the sample log.
	switches := 0
	for i := 1; i < len(stats.Samples); i++ {
		if stats.Samples[i].Engine != stats.Samples[i-1].Engine {
			switches++
		}
	}
	if switches != stats.Switches {
		t.Fatalf("Switches = %d but samples show %d engine changes", stats.Switches, switches)
	}
	// The controller must actually use both engines and cross over in both
	// directions: domore → speccross on the low phase, speccross → domore on
	// the injected misspeculation.
	if stats.EngineWindows[adaptive.EngineDomore] == 0 || stats.EngineWindows[adaptive.EngineSpecCross] == 0 {
		t.Fatalf("controller never switched: engine windows %v", stats.EngineWindows)
	}
	if stats.Switches < 2 {
		t.Fatalf("Switches = %d, want at least one handoff each direction", stats.Switches)
	}
	if stats.Spec.Misspeculations != 1 {
		t.Fatalf("Misspeculations = %d, want exactly the injected one", stats.Spec.Misspeculations)
	}
	// The first window runs the default start engine and must observe the
	// high phase's manifest rate.
	first := stats.Samples[0]
	if first.Engine != adaptive.EngineDomore {
		t.Fatalf("first window engine = %v, want default start domore", first.Engine)
	}
	if first.ManifestRate < 0.3 {
		t.Fatalf("high-phase manifest rate = %.3f, want >= 0.3", first.ManifestRate)
	}
	// After the misspeculating window the policy must fall back to DOMORE
	// and hold it for the rest of the run (the final phase stays high-rate).
	saw := false
	for i, s := range stats.Samples {
		if s.Misspeculated {
			saw = true
			for _, rest := range stats.Samples[i+1:] {
				if rest.Engine != adaptive.EngineDomore {
					t.Fatalf("window [%d,%d) ran %v after misspeculation fallback", rest.StartEpoch, rest.EndEpoch, rest.Engine)
				}
			}
		}
	}
	if !saw {
		t.Fatal("no sample recorded the injected misspeculation")
	}
}

// TestAdaptiveFixedPolicies runs every engine end-to-end through the
// windowed execution path and checks the result is still the sequential
// one.
func TestAdaptiveFixedPolicies(t *testing.T) {
	want := seqChecksum(false)
	for eng := adaptive.Engine(0); eng < adaptive.NumEngines; eng++ {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			k := buildKernel(false)
			stats := adaptive.Run(k, adaptive.Config{
				Workers: 4,
				Window:  8,
				Policy:  adaptive.Fixed(eng),
				Start:   eng,
				Spec:    speccross.Config{SpecDistance: safeDist},
			})
			if got := k.Checksum(); got != want {
				t.Fatalf("%v checksum %x != sequential %x", eng, got, want)
			}
			if stats.Switches != 0 {
				t.Fatalf("fixed policy switched %d times", stats.Switches)
			}
			if stats.EngineWindows[eng] != stats.Windows {
				t.Fatalf("engine windows %v, want all %d on %v", stats.EngineWindows, stats.Windows, eng)
			}
			if eng == adaptive.EngineSpecCross && stats.Spec.Misspeculations != 0 {
				t.Fatalf("range-gated speculation misspeculated %d times", stats.Spec.Misspeculations)
			}
		})
	}
}

// TestAdaptiveWindowRemainder checks a window size that does not divide
// the epoch count: the tail window must still run and cover the region.
func TestAdaptiveWindowRemainder(t *testing.T) {
	want := seqChecksum(false)
	k := buildKernel(false)
	stats := adaptive.Run(k, adaptive.Config{
		Workers: 2,
		Window:  7, // 96 = 13*7 + 5
		Policy:  adaptive.Fixed(adaptive.EngineDomore),
		Start:   adaptive.EngineDomore,
	})
	if got := k.Checksum(); got != want {
		t.Fatalf("checksum %x != sequential %x", got, want)
	}
	if stats.Windows != 14 {
		t.Fatalf("Windows = %d, want 14", stats.Windows)
	}
	lastS := stats.Samples[len(stats.Samples)-1]
	if lastS.StartEpoch != 91 || lastS.EndEpoch != 96 {
		t.Fatalf("tail window [%d,%d), want [91,96)", lastS.StartEpoch, lastS.EndEpoch)
	}
	if stats.Domore.Iterations != testEpochs*tpe {
		t.Fatalf("iterations %d, want %d", stats.Domore.Iterations, testEpochs*tpe)
	}
}

// splitViews wraps a kernel so Combine gets two genuinely distinct values.
type domoreView struct{ *epochal.Kernel }
type specView struct{ *epochal.Kernel }

// TestCombine glues separately-implemented engine views back into one
// adaptive workload and checks execution forwards to both.
func TestCombine(t *testing.T) {
	want := seqChecksum(false)
	k := buildKernel(false)
	var w adaptive.Workload = adaptive.Combine(domoreView{k}, specView{k})
	stats := adaptive.Run(w, adaptive.Config{
		Workers: 4,
		Window:  16,
		Spec:    speccross.Config{SpecDistance: safeDist},
	})
	if got := k.Checksum(); got != want {
		t.Fatalf("combined checksum %x != sequential %x", got, want)
	}
	if stats.Windows != testEpochs/16 {
		t.Fatalf("Windows = %d, want %d", stats.Windows, testEpochs/16)
	}
}

// mismatched reports a different epoch count on the speccross view.
type mismatched struct{ *epochal.Kernel }

func (m mismatched) Epochs() int { return m.Kernel.Epochs() - 1 }

// TestViewMismatchPanics: the two views must describe the same region.
func TestViewMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted disagreeing views")
		}
	}()
	k := buildKernel(false)
	adaptive.Run(adaptive.Combine(k, mismatched{k}), adaptive.Config{Workers: 2})
}

// windowLog records WindowStart callbacks.
type windowLog struct {
	*epochal.Kernel
	starts []int
}

func (wl *windowLog) WindowStart(epoch int) { wl.starts = append(wl.starts, epoch) }

// TestWindowStarter checks the quiesced boundary callback fires once per
// window, in order, before the window executes.
func TestWindowStarter(t *testing.T) {
	wl := &windowLog{Kernel: buildKernel(false)}
	adaptive.Run(wl, adaptive.Config{
		Workers: 2,
		Window:  32,
		Policy:  adaptive.Fixed(adaptive.EngineBarrier),
		Start:   adaptive.EngineBarrier,
	})
	wantStarts := []int{0, 32, 64}
	if len(wl.starts) != len(wantStarts) {
		t.Fatalf("WindowStart called %d times, want %d", len(wl.starts), len(wantStarts))
	}
	for i, s := range wl.starts {
		if s != wantStarts[i] {
			t.Fatalf("WindowStart[%d] = %d, want %d", i, s, wantStarts[i])
		}
	}
}

// TestAdaptiveRecoversFromRealMisspeculation runs the close-conflict
// variant under an unbounded speculative range: the final high phase's
// distance-7 conflicts genuinely overlap, misspeculate, and roll back.
// Speculative execution past an unchecked conflict is a data race by
// construction (the checker detects it after the fact), so this test is
// skipped under the race detector; the race-safe tests above cover the
// same control path via fault injection.
func TestAdaptiveRecoversFromRealMisspeculation(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("speculation past close conflicts races by design; injection covers this path under -race")
	}
	want := seqChecksum(true)
	k := buildKernel(true)
	stats := adaptive.Run(k, adaptive.Config{
		Workers: 4,
		Window:  8,
	})
	if got := k.Checksum(); got != want {
		t.Fatalf("adaptive checksum %x != sequential %x after rollback", got, want)
	}
	if stats.Spec.Misspeculations == 0 {
		t.Fatal("close-conflict phase never misspeculated")
	}
	if stats.Spec.ReexecutedEpochs == 0 {
		t.Fatal("misspeculation must re-execute the window with barriers")
	}
}

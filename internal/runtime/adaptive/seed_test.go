package adaptive_test

import (
	"testing"

	"crossinv/internal/runtime/adaptive"
)

func TestParseEngine(t *testing.T) {
	for e := adaptive.Engine(0); e < adaptive.NumEngines; e++ {
		got, ok := adaptive.ParseEngine(e.String())
		if !ok || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, ok)
		}
	}
	if _, ok := adaptive.ParseEngine("warp-drive"); ok {
		t.Error("ParseEngine accepted an unknown name")
	}
}

func TestSeedFromProfile(t *testing.T) {
	// Profitable: distance at/above the worker count starts SPECCROSS
	// with the profiled bound installed.
	var cfg adaptive.Config
	cfg.SeedFromProfile(16, 4)
	if cfg.Start != adaptive.EngineSpecCross || cfg.Spec.SpecDistance != 16 {
		t.Errorf("profitable seed: start %v distance %d, want speccross/16", cfg.Start, cfg.Spec.SpecDistance)
	}
	if cfg.Policy != nil {
		t.Error("profitable seed must leave the policy adaptive")
	}

	// No observed conflict: unbounded speculation.
	cfg = adaptive.Config{}
	cfg.SeedFromProfile(adaptive.NoConflictDistance, 4)
	if cfg.Start != adaptive.EngineSpecCross || cfg.Spec.SpecDistance != 0 {
		t.Errorf("no-conflict seed: start %v distance %d, want speccross/0", cfg.Start, cfg.Spec.SpecDistance)
	}

	// Unprofitable: §4.4 declines to speculate — pinned to DOMORE.
	cfg = adaptive.Config{}
	cfg.SeedFromProfile(2, 4)
	if cfg.Start != adaptive.EngineDomore {
		t.Errorf("unprofitable seed started %v, want domore", cfg.Start)
	}
	fixed, ok := cfg.Policy.(adaptive.Fixed)
	if !ok || adaptive.Engine(fixed) != adaptive.EngineDomore {
		t.Errorf("unprofitable seed policy = %#v, want Fixed(domore)", cfg.Policy)
	}
}

// TestSeededRunMatchesSequential executes a profile-seeded adaptive run end
// to end on the phased test kernel and checks the result still matches
// sequential — seeding biases decisions, never correctness — and that the
// seeded start engine actually ran the first window (the cold probe was
// skipped).
func TestSeededRunMatchesSequential(t *testing.T) {
	want := seqChecksum(false)
	k := buildKernel(false)
	cfg := adaptive.Config{Workers: 4, Window: 8}
	cfg.SeedFromProfile(safeDist, 4) // profitable: 15 ≥ 4, gated and race-free
	stats := adaptive.Run(k, cfg)
	if stats.Windows == 0 {
		t.Fatal("no windows executed")
	}
	if stats.Samples[0].Engine != adaptive.EngineSpecCross {
		t.Errorf("first window ran %v, want the seeded speccross start", stats.Samples[0].Engine)
	}
	if got := k.Checksum(); got != want {
		t.Errorf("seeded adaptive checksum %x != sequential %x", got, want)
	}
}

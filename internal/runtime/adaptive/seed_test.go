package adaptive_test

import (
	"testing"

	"crossinv/internal/runtime/adaptive"
)

func TestParseEngine(t *testing.T) {
	for e := adaptive.Engine(0); e < adaptive.NumEngines; e++ {
		got, ok := adaptive.ParseEngine(e.String())
		if !ok || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, ok)
		}
	}
	if _, ok := adaptive.ParseEngine("warp-drive"); ok {
		t.Error("ParseEngine accepted an unknown name")
	}
}

func TestSeedFromProfile(t *testing.T) {
	// Profitable: distance at/above the worker count starts SPECCROSS
	// with the profiled bound installed.
	var cfg adaptive.Config
	cfg.SeedFromProfile(16, 4)
	if cfg.Start != adaptive.EngineSpecCross || cfg.Spec.SpecDistance != 16 {
		t.Errorf("profitable seed: start %v distance %d, want speccross/16", cfg.Start, cfg.Spec.SpecDistance)
	}
	if cfg.Policy != nil {
		t.Error("profitable seed must leave the policy adaptive")
	}

	// No observed conflict: unbounded speculation.
	cfg = adaptive.Config{}
	cfg.SeedFromProfile(adaptive.NoConflictDistance, 4)
	if cfg.Start != adaptive.EngineSpecCross || cfg.Spec.SpecDistance != 0 {
		t.Errorf("no-conflict seed: start %v distance %d, want speccross/0", cfg.Start, cfg.Spec.SpecDistance)
	}

	// Unprofitable: §4.4 declines to speculate — pinned to DOMORE.
	cfg = adaptive.Config{}
	cfg.SeedFromProfile(2, 4)
	if cfg.Start != adaptive.EngineDomore {
		t.Errorf("unprofitable seed started %v, want domore", cfg.Start)
	}
	fixed, ok := cfg.Policy.(adaptive.Fixed)
	if !ok || adaptive.Engine(fixed) != adaptive.EngineDomore {
		t.Errorf("unprofitable seed policy = %#v, want Fixed(domore)", cfg.Policy)
	}
}

func TestSeedFromFacts(t *testing.T) {
	// Provably DOALL across invocations: barrier-free speculation, pinned.
	var cfg adaptive.Config
	if !cfg.SeedFromFacts("none", 0) {
		t.Fatal("SeedFromFacts rejected class none")
	}
	if cfg.Start != adaptive.EngineSpecCross || cfg.Spec.SpecDistance != 0 {
		t.Errorf("none seed: start %v distance %d, want speccross/0", cfg.Start, cfg.Spec.SpecDistance)
	}
	fixed, ok := cfg.Policy.(adaptive.Fixed)
	if !ok || adaptive.Engine(fixed) != adaptive.EngineSpecCross {
		t.Errorf("none seed policy = %#v, want Fixed(speccross)", cfg.Policy)
	}

	// Forward-only: the DOMORE pipeline regime, with the proven distance
	// pre-loaded as the speculative bound for a later escalation.
	cfg = adaptive.Config{}
	if !cfg.SeedFromFacts("forward-only", 12) {
		t.Fatal("SeedFromFacts rejected class forward-only")
	}
	if cfg.Start != adaptive.EngineDomore || cfg.Spec.SpecDistance != 12 {
		t.Errorf("forward-only seed: start %v distance %d, want domore/12", cfg.Start, cfg.Spec.SpecDistance)
	}
	if cfg.Policy != nil {
		t.Error("forward-only seed must leave the policy adaptive")
	}

	// Cyclic and unknown: speculate, unpinned.
	for _, class := range []string{"cyclic", "unknown"} {
		cfg = adaptive.Config{}
		if !cfg.SeedFromFacts(class, 0) {
			t.Fatalf("SeedFromFacts rejected class %s", class)
		}
		if cfg.Start != adaptive.EngineSpecCross || cfg.Policy != nil {
			t.Errorf("%s seed: start %v policy %#v, want unpinned speccross", class, cfg.Start, cfg.Policy)
		}
	}

	// Schema drift: an unrecognized class must not touch the config.
	cfg = adaptive.Config{}
	if cfg.SeedFromFacts("diagonal", 3) {
		t.Error("SeedFromFacts accepted an unknown class")
	}
	if cfg.Start != adaptive.EngineDomore || cfg.Spec.SpecDistance != 0 {
		t.Errorf("rejected seed mutated the config: %+v", cfg)
	}
}

// TestStaticSeedReachesStableEngineSooner is the ROADMAP item 5 claim in
// miniature: on the phased kernel (whose first phase is conflict-heavy,
// making DOMORE the right opening engine), a cold start — no knowledge, so
// the blind barrier baseline — needs a probe window before the policy
// lands on DOMORE, while a statically seeded run (xdep proved the
// dependences forward-only) opens there. Both must still match sequential.
func TestStaticSeedReachesStableEngineSooner(t *testing.T) {
	firstStable := func(seed bool) int {
		want := seqChecksum(false)
		k := buildKernel(false)
		cfg := adaptive.Config{Workers: 4, Window: 8}
		if seed {
			if !cfg.SeedFromFacts("forward-only", safeDist) {
				t.Fatal("SeedFromFacts rejected forward-only")
			}
		} else {
			cfg.Start = adaptive.EngineBarrier
		}
		stats := adaptive.Run(k, cfg)
		if got := k.Checksum(); got != want {
			t.Fatalf("seed=%v checksum %x != sequential %x", seed, got, want)
		}
		for i, s := range stats.Samples {
			if s.Engine == adaptive.EngineDomore {
				return i
			}
		}
		t.Fatalf("seed=%v never ran DOMORE: %+v", seed, stats.Samples)
		return -1
	}
	cold := firstStable(false)
	seeded := firstStable(true)
	if seeded >= cold {
		t.Errorf("seeded run reached DOMORE at window %d, cold at %d; want seeded < cold", seeded, cold)
	}
	if seeded != 0 {
		t.Errorf("seeded run's first window ran the wrong engine (stable at %d, want 0)", seeded)
	}
}

// TestSeededRunMatchesSequential executes a profile-seeded adaptive run end
// to end on the phased test kernel and checks the result still matches
// sequential — seeding biases decisions, never correctness — and that the
// seeded start engine actually ran the first window (the cold probe was
// skipped).
func TestSeededRunMatchesSequential(t *testing.T) {
	want := seqChecksum(false)
	k := buildKernel(false)
	cfg := adaptive.Config{Workers: 4, Window: 8}
	cfg.SeedFromProfile(safeDist, 4) // profitable: 15 ≥ 4, gated and race-free
	stats := adaptive.Run(k, cfg)
	if stats.Windows == 0 {
		t.Fatal("no windows executed")
	}
	if stats.Samples[0].Engine != adaptive.EngineSpecCross {
		t.Errorf("first window ran %v, want the seeded speccross start", stats.Samples[0].Engine)
	}
	if got := k.Checksum(); got != want {
		t.Errorf("seeded adaptive checksum %x != sequential %x", got, want)
	}
}

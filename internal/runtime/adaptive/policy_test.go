package adaptive_test

import (
	"testing"

	"crossinv/internal/runtime/adaptive"
)

func domoreSample(rate float64) adaptive.Sample {
	return adaptive.Sample{Engine: adaptive.EngineDomore, Tasks: 100, ManifestRate: rate}
}

func specSample(misspec bool, pressure float64) adaptive.Sample {
	return adaptive.Sample{Engine: adaptive.EngineSpecCross, Tasks: 100, Misspeculated: misspec, CheckerPressure: pressure}
}

func TestEngineString(t *testing.T) {
	cases := map[adaptive.Engine]string{
		adaptive.EngineBarrier:   "barrier",
		adaptive.EngineDomore:    "domore",
		adaptive.EngineSpecCross: "speccross",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(e), got, want)
		}
	}
	if got := adaptive.Engine(99).String(); got != "engine(99)" {
		t.Errorf("unknown engine String() = %q", got)
	}
}

func TestThresholdBarrierProbes(t *testing.T) {
	p := adaptive.NewThreshold()
	if got := p.Decide(adaptive.Sample{Engine: adaptive.EngineBarrier}); got != adaptive.EngineDomore {
		t.Fatalf("after a blind barrier window got %v, want the domore probe", got)
	}
}

func TestThresholdEnterSpeculation(t *testing.T) {
	p := adaptive.NewThreshold()
	p.Patience = 2
	if got := p.Decide(domoreSample(0.7)); got != adaptive.EngineDomore {
		t.Fatalf("high manifest rate switched to %v", got)
	}
	if got := p.Decide(domoreSample(0.01)); got != adaptive.EngineDomore {
		t.Fatalf("one low window must not satisfy Patience=2, got %v", got)
	}
	// A high-rate window in between resets the consecutive-window count.
	if got := p.Decide(domoreSample(0.9)); got != adaptive.EngineDomore {
		t.Fatalf("rate spike switched to %v", got)
	}
	p.Decide(domoreSample(0.0))
	if got := p.Decide(domoreSample(0.02)); got != adaptive.EngineSpecCross {
		t.Fatalf("two consecutive low windows got %v, want speccross", got)
	}
}

func TestThresholdMisspeculationBackoff(t *testing.T) {
	p := adaptive.NewThreshold()
	p.Backoff = 2
	if got := p.Decide(specSample(true, 0)); got != adaptive.EngineDomore {
		t.Fatalf("misspeculation got %v, want fallback to domore", got)
	}
	// During the hold, even rate zero must not re-enter speculation.
	for i := 0; i < 2; i++ {
		if got := p.Decide(domoreSample(0)); got != adaptive.EngineDomore {
			t.Fatalf("hold window %d got %v, want domore", i, got)
		}
	}
	// Hold expired: a low window counts again.
	if got := p.Decide(domoreSample(0)); got != adaptive.EngineSpecCross {
		t.Fatalf("post-hold low window got %v, want speccross", got)
	}
}

func TestThresholdCheckerPressure(t *testing.T) {
	p := adaptive.NewThreshold()
	if got := p.Decide(specSample(false, 3)); got != adaptive.EngineSpecCross {
		t.Fatalf("moderate pressure got %v, want to stay speculative", got)
	}
	if got := p.Decide(specSample(false, 50)); got != adaptive.EngineDomore {
		t.Fatalf("checker overload got %v, want fallback to domore", got)
	}
}

func TestThresholdZeroValueUsesDefaults(t *testing.T) {
	// A zero ThresholdPolicy must behave like NewThreshold (fill on Decide).
	var p adaptive.ThresholdPolicy
	if got := p.Decide(domoreSample(0.04)); got != adaptive.EngineSpecCross {
		t.Fatalf("zero-value policy: low window got %v, want speccross with default Patience=1", got)
	}
	if got := p.Decide(specSample(false, 0.5)); got != adaptive.EngineSpecCross {
		t.Fatalf("zero-value policy: clean spec window got %v", got)
	}
}

func TestFixedPolicy(t *testing.T) {
	for eng := adaptive.Engine(0); eng < adaptive.NumEngines; eng++ {
		p := adaptive.Fixed(eng)
		for _, s := range []adaptive.Sample{domoreSample(0.9), domoreSample(0), specSample(true, 99), {Engine: adaptive.EngineBarrier}} {
			if got := p.Decide(s); got != eng {
				t.Fatalf("Fixed(%v).Decide = %v", eng, got)
			}
		}
	}
}

package adaptive

import "fmt"

// Decision is the audit record of one window-boundary choice: everything
// the controller knew when it picked the next engine, plus what that
// knowledge cost. The daemon journals these into /debug/decisions and
// `crossinv -explain` renders them, so a slow or misspeculating request
// leaves a per-window evidence trail of why each engine ran.
type Decision struct {
	// Window is the zero-based window index within the run.
	Window int
	// Sample is the monitor sample the policy decided on (it carries the
	// executed engine, the epoch range, and the window's signals).
	Sample Sample
	// Next is the engine chosen for the following window; Switched
	// reports whether that differs from the window's engine.
	Next     Engine
	Switched bool
	// WindowNs is the wall time of the window's engine execution;
	// BoundaryNs is the cost of the boundary itself (sampling the trace
	// deltas plus the policy decision) — the price of adaptivity, and of
	// a switch when one happens (the quiesce is part of the window join).
	WindowNs   int64
	BoundaryNs int64
	// Reason is the policy's stated ground for Next (from Explainer when
	// the policy provides one, else a generic fallback).
	Reason string
	// SeedSource records how the run's starting engine/policy were
	// primed (Config.SeedSource): static facts, §4.4 profile, plan
	// cache, or empty for a cold start.
	SeedSource string
	// PolicyLow and PolicyHold expose the ThresholdPolicy hysteresis
	// state after the decision (zero for other policies).
	PolicyLow, PolicyHold int
}

// PolicyState is a policy's self-description after a Decide call, for
// audit rendering: the reason for the last answer and the hysteresis
// counters backing it.
type PolicyState struct {
	Reason    string
	Low, Hold int
}

// Explainer is optionally implemented by policies that can account for
// their decisions. The controller queries it immediately after each
// Decide and copies the state into the window's Decision.
type Explainer interface {
	Explain() PolicyState
}

// Explain implements Explainer for the pinned policy.
func (f Fixed) Explain() PolicyState {
	return PolicyState{Reason: "policy pinned to " + Engine(f).String()}
}

// explainPolicy extracts the audit state from a policy, synthesizing a
// generic reason for policies that do not implement Explainer.
func explainPolicy(p Policy, next Engine) PolicyState {
	if ex, ok := p.(Explainer); ok {
		if st := ex.Explain(); st.Reason != "" {
			return st
		}
	}
	return PolicyState{Reason: fmt.Sprintf("policy %T chose %s", p, next)}
}

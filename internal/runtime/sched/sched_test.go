package sched

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	for i := int64(0); i < 20; i++ {
		got := p.Assign(i, nil, 4)
		if len(got) != 1 || got[0] != int(i%4) {
			t.Fatalf("Assign(%d) = %v, want [%d]", i, got, i%4)
		}
	}
	if p.Name() != "round-robin" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestLocalWriteOwnership(t *testing.T) {
	p := NewLocalWrite(100)
	// 4 workers → chunks of 25: [0,25) w0, [25,50) w1, [50,75) w2, [75,100) w3.
	cases := []struct {
		addr uint64
		want int
	}{{0, 0}, {24, 0}, {25, 1}, {49, 1}, {50, 2}, {99, 3}}
	for _, c := range cases {
		if got := p.Owner(c.addr, 4); got != c.want {
			t.Errorf("Owner(%d) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestLocalWriteMultiOwnerAssign(t *testing.T) {
	p := NewLocalWrite(100)
	got := p.Assign(7, []uint64{10, 30, 12}, 4) // owners 0, 1, 0 → {0,1}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Assign = %v, want [0 1]", got)
	}
}

func TestLocalWriteEmptyAddrsFallsBack(t *testing.T) {
	p := NewLocalWrite(100)
	got := p.Assign(6, nil, 4)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Assign with no addrs = %v, want round-robin [2]", got)
	}
}

func TestLocalWriteOutOfRangeClamps(t *testing.T) {
	p := NewLocalWrite(100)
	if got := p.Owner(1000, 4); got != 3 {
		t.Fatalf("Owner(out-of-range) = %d, want last owner 3", got)
	}
}

// Property: every owner is a valid worker index, and owners partition the
// address space monotonically.
func TestQuickLocalWriteValidOwners(t *testing.T) {
	prop := func(addr uint64, space uint32, workers uint8) bool {
		w := int(workers%16) + 1
		sp := uint64(space%10000) + 1
		p := NewLocalWrite(sp)
		o := p.Owner(addr%sp, w)
		return o >= 0 && o < w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLocalWriteMonotone(t *testing.T) {
	prop := func(a, b uint32, workers uint8) bool {
		w := int(workers%8) + 1
		p := NewLocalWrite(1 << 20)
		x, y := uint64(a)%(1<<20), uint64(b)%(1<<20)
		if x > y {
			x, y = y, x
		}
		return p.Owner(x, w) <= p.Owner(y, w)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDequeLIFOOwnerFIFOThief(t *testing.T) {
	d := &Deque{}
	for i := int64(0); i < 4; i++ {
		d.Push(i)
	}
	if v, ok := d.Pop(); !ok || v != 3 {
		t.Fatalf("Pop = %d,%v; want 3 (LIFO)", v, ok)
	}
	if v, ok := d.Steal(); !ok || v != 0 {
		t.Fatalf("Steal = %d,%v; want 0 (FIFO)", v, ok)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestDequeEmpty(t *testing.T) {
	d := &Deque{}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on empty succeeded")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal on empty succeeded")
	}
}

func TestWorkStealingDrainsExactlyOnce(t *testing.T) {
	const workers = 4
	const total = 1000
	ws := NewWorkStealing(workers, total)
	var mu sync.Mutex
	seen := make(map[int64]int)
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				v, ok := ws.Next(tid)
				if !ok {
					return
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}(tid)
	}
	wg.Wait()
	if len(seen) != total {
		t.Fatalf("drained %d distinct iterations, want %d", len(seen), total)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("iteration %d executed %d times", v, n)
		}
	}
	if ws.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", ws.Remaining())
	}
}

func TestWorkStealingStealsFromLoadedVictim(t *testing.T) {
	ws := NewWorkStealing(2, 0)
	ws.deques[1].Push(7)
	// Worker 0 has nothing; it must steal from worker 1.
	if v, ok := ws.Next(0); !ok || v != 7 {
		t.Fatalf("Next(0) = %d,%v; want steal of 7", v, ok)
	}
}

func BenchmarkRoundRobinAssign(b *testing.B) {
	p := NewRoundRobin()
	for i := 0; i < b.N; i++ {
		_ = p.Assign(int64(i), nil, 8)
	}
}

func BenchmarkLocalWriteAssign(b *testing.B) {
	p := NewLocalWrite(1 << 16)
	addrs := []uint64{17, 42000, 11, 60000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Assign(int64(i), addrs, 8)
	}
}

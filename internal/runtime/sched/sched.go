// Package sched provides the iteration-scheduling policies the DOMORE
// scheduler chooses among (§3.3.3): round-robin, LOCALWRITE-style memory
// partitioning, and the work-stealing policy the paper lists as planned
// future work (integrated here as an ablation).
package sched

import (
	"fmt"
	"sync"
)

// Policy decides which worker thread(s) execute a given iteration.
//
// Assign receives the combined (cross-invocation) iteration number, the
// addresses the iteration will access (as computed by computeAddr), and the
// worker count; it returns the thread IDs that must run the iteration.
// Round-robin returns exactly one tid; LOCALWRITE may return several when an
// iteration touches memory owned by multiple threads (§3.3.3: "If multiple
// threads own the memory locations, that iteration is scheduled to all of
// them").
type Policy interface {
	Assign(iterNum int64, addrs []uint64, workers int) []int
	// Name identifies the policy in reports and benchmarks.
	Name() string
}

// RoundRobin assigns iteration i to worker i mod workers — the default
// policy used by most of the paper's parallelizations.
type RoundRobin struct {
	// scratch avoids a per-call allocation; Assign results must be consumed
	// before the next call, which matches the scheduler's usage.
	scratch [1]int
}

// NewRoundRobin returns a round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Assign implements Policy.
func (r *RoundRobin) Assign(iterNum int64, _ []uint64, workers int) []int {
	r.scratch[0] = int(iterNum % int64(workers))
	return r.scratch[:]
}

// Name implements Policy.
func (r *RoundRobin) Name() string { return "round-robin" }

// LocalWrite partitions the address space into equal chunks, one per worker,
// and schedules each iteration to the owner(s) of the addresses it touches
// (the LOCALWRITE owner-computes rule, §2.2 and §3.3.3). Iterations that
// touch no shadowed address fall back to round-robin so work stays balanced.
type LocalWrite struct {
	// AddrSpace is the exclusive upper bound of the address space being
	// partitioned. Must be positive.
	AddrSpace uint64

	scratch []int
	seen    map[int]bool
}

// NewLocalWrite returns a LOCALWRITE policy over [0, addrSpace).
func NewLocalWrite(addrSpace uint64) *LocalWrite {
	if addrSpace == 0 {
		panic("sched: LOCALWRITE needs a positive address space")
	}
	return &LocalWrite{AddrSpace: addrSpace, seen: make(map[int]bool)}
}

// Owner returns the worker owning addr under the chunked partition.
func (l *LocalWrite) Owner(addr uint64, workers int) int {
	if addr >= l.AddrSpace {
		addr = l.AddrSpace - 1
	}
	chunk := (l.AddrSpace + uint64(workers) - 1) / uint64(workers)
	return int(addr / chunk)
}

// Assign implements Policy.
func (l *LocalWrite) Assign(iterNum int64, addrs []uint64, workers int) []int {
	l.scratch = l.scratch[:0]
	if len(addrs) == 0 {
		return append(l.scratch, int(iterNum%int64(workers)))
	}
	clear(l.seen)
	for _, a := range addrs {
		o := l.Owner(a, workers)
		if !l.seen[o] {
			l.seen[o] = true
			l.scratch = append(l.scratch, o)
		}
	}
	return l.scratch
}

// Name implements Policy.
func (l *LocalWrite) Name() string { return "localwrite" }

// Deque is a work-stealing deque: the owner pushes and pops at the bottom,
// thieves steal from the top. This implementation uses a mutex, which is
// adequate for the iteration granularities in the evaluated workloads; the
// abstraction is what matters for the scheduling-policy ablation.
type Deque struct {
	mu    sync.Mutex
	items []int64
}

// Push adds an item at the bottom (owner side).
func (d *Deque) Push(v int64) {
	d.mu.Lock()
	d.items = append(d.items, v)
	d.mu.Unlock()
}

// Pop removes the most recently pushed item (owner side, LIFO).
func (d *Deque) Pop() (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return 0, false
	}
	v := d.items[n-1]
	d.items = d.items[:n-1]
	return v, true
}

// Steal removes the oldest item (thief side, FIFO).
func (d *Deque) Steal() (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	v := d.items[0]
	d.items = d.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (d *Deque) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

// WorkStealing is a Cilk-style load-balancing pool over iteration numbers:
// iterations are dealt round-robin into per-worker deques, and idle workers
// steal. The paper cites this as the planned alternative scheduling policy
// for DOMORE (§3.3.3); it cannot be expressed as a pure Assign policy (the
// mapping is decided at execution time), so it carries its own deques and a
// Next method workers drain from.
type WorkStealing struct {
	deques []*Deque
}

// NewWorkStealing returns a pool with one deque per worker, preloaded by
// dealing iterations [0,total) round-robin.
func NewWorkStealing(workers int, total int64) *WorkStealing {
	if workers <= 0 {
		panic(fmt.Sprintf("sched: invalid worker count %d", workers))
	}
	w := &WorkStealing{deques: make([]*Deque, workers)}
	for i := range w.deques {
		w.deques[i] = &Deque{}
	}
	for i := int64(0); i < total; i++ {
		w.deques[i%int64(workers)].Push(i)
	}
	return w
}

// Next returns the next iteration for worker tid: its own deque first
// (LIFO for locality), then stealing from victims in order. ok is false when
// no work remains anywhere.
func (w *WorkStealing) Next(tid int) (int64, bool) {
	if v, ok := w.deques[tid].Pop(); ok {
		return v, true
	}
	for off := 1; off < len(w.deques); off++ {
		victim := (tid + off) % len(w.deques)
		if v, ok := w.deques[victim].Steal(); ok {
			return v, true
		}
	}
	return 0, false
}

// Remaining reports the total queued iterations across all deques.
func (w *WorkStealing) Remaining() int {
	n := 0
	for _, d := range w.deques {
		n += d.Len()
	}
	return n
}

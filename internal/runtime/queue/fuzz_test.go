package queue

import (
	"testing"
)

// FuzzSPSCOrder drives one queue single-threaded against a plain slice
// model: the first byte picks the capacity, every following byte is an
// op (even = TryProduce of a running counter, odd = TryConsume). The
// queue must accept exactly when the model has room, surface elements in
// FIFO order, and report an exact Len when no concurrency is involved.
func FuzzSPSCOrder(f *testing.F) {
	f.Add([]byte{1, 0, 0, 1, 1})          // cap 2: two produces, two consumes
	f.Add([]byte{0, 0, 0, 0, 1})          // cap 1: overflow then drain
	f.Add([]byte{3, 1, 1, 0, 1, 0, 0, 1}) // consume-on-empty interleavings
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		q := NewSPSC[int](int(data[0]%16) + 1)
		var model []int
		next := 0
		for _, op := range data[1:] {
			if op%2 == 0 {
				ok := q.TryProduce(next)
				if want := len(model) < q.Cap(); ok != want {
					t.Fatalf("TryProduce accepted=%v with %d of %d buffered", ok, len(model), q.Cap())
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.TryConsume()
				if want := len(model) > 0; ok != want {
					t.Fatalf("TryConsume ok=%v with %d buffered", ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("TryConsume = %d, FIFO model head = %d", v, model[0])
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				t.Fatalf("Len() = %d, model holds %d", q.Len(), len(model))
			}
		}
	})
}

// FuzzSPSCConcurrent streams the fuzz bytes through a queue between a
// real producer goroutine and the consumer, with the capacity chosen by
// the first byte so the ring wraps and both the full-ring and empty-ring
// blocking paths run. The consumer must observe exactly the produced
// sequence — any reorder, loss, or duplication is a bug in the index
// protocol.
func FuzzSPSCConcurrent(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 255, 0, 255, 0})
	f.Add([]byte{7, 42})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		vals := data[1:]
		if len(vals) > 4096 {
			vals = vals[:4096]
		}
		q := NewSPSC[byte](int(data[0]%8) + 1)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for _, v := range vals {
				q.Produce(v)
			}
		}()
		for i, want := range vals {
			if got := q.Consume(); got != want {
				t.Errorf("element %d: consumed %d, produced %d", i, got, want)
				break
			}
		}
		<-done
		if _, ok := q.TryConsume(); ok {
			t.Error("queue non-empty after consuming every produced element")
		}
	})
}

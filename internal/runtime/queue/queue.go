// Package queue provides the single-producer single-consumer lock-free ring
// buffer used to forward synchronization conditions from the DOMORE scheduler
// to its workers and checking requests from SPECCROSS workers to the checker.
//
// The design follows the lock-free queue the paper builds on (§3.2.3): one
// cache-line-padded head index owned by the consumer, one tail index owned by
// the producer, and a power-of-two ring so index masking is a single AND.
// Produce and Consume spin (with cooperative yielding) when the ring is full
// or empty; TryProduce and TryConsume never block.
package queue

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// cacheLine is the assumed cache-line size used for padding between the
// producer-owned and consumer-owned fields so they never share a line.
const cacheLine = 64

// SPSC is a bounded lock-free queue safe for exactly one producer goroutine
// and one consumer goroutine. The zero value is not usable; construct with
// NewSPSC.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    [cacheLine]byte
	head atomic.Uint64 // next slot to consume; owned by the consumer
	_    [cacheLine]byte
	tail atomic.Uint64 // next slot to fill; owned by the producer
	_    [cacheLine]byte

	// cachedHead and cachedTail let each side avoid re-reading the other
	// side's index on every operation (the classic SPSC optimization).
	cachedHead uint64 // producer's last observed head
	cachedTail uint64 // consumer's last observed tail
}

// MaxCapacity bounds NewSPSC: the largest capacity (pre-rounding) a ring
// may be constructed with. Beyond it the power-of-two round-up would
// overflow (capacities above 1<<62 used to spin the constructor forever),
// and any value near it could never be allocated anyway.
const MaxCapacity = 1 << 30

// NewSPSC returns an SPSC queue with capacity rounded up to the next power of
// two. Capacity must be in [1, MaxCapacity].
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: invalid capacity %d", capacity))
	}
	if capacity > MaxCapacity {
		panic(fmt.Sprintf("queue: capacity %d exceeds maximum %d", capacity, MaxCapacity))
	}
	n := uint64(1)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: n - 1}
}

// Cap reports the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len reports the number of buffered elements. It is a racy snapshot —
// either index may advance between the two loads and before the caller
// uses the result — so it is suitable for monitoring and heuristics, not
// for synchronization. The two loads are not atomic together: loading
// tail first means a concurrent consumer can advance head past the
// observed tail, which would make the difference negative; Len clamps
// that case to 0. (The tail-then-head order also guarantees the result
// never exceeds Cap: head only grows, so a stale head can only shrink
// the difference.)
func (q *SPSC[T]) Len() int {
	tail := q.tail.Load()
	head := q.head.Load()
	if head >= tail {
		return 0
	}
	return int(tail - head)
}

// TryProduce appends v if there is room and reports whether it did.
// It must only be called from the producer goroutine.
func (q *SPSC[T]) TryProduce(v T) bool {
	tail := q.tail.Load()
	if tail-q.cachedHead >= uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if tail-q.cachedHead >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Produce appends v, spinning until space is available.
// It must only be called from the producer goroutine.
func (q *SPSC[T]) Produce(v T) {
	for spins := 0; !q.TryProduce(v); spins++ {
		Backoff(spins)
	}
}

// TryConsume removes and returns the oldest element if one is buffered.
// It must only be called from the consumer goroutine.
func (q *SPSC[T]) TryConsume() (T, bool) {
	head := q.head.Load()
	if head >= q.cachedTail {
		q.cachedTail = q.tail.Load()
		if head >= q.cachedTail {
			var zero T
			return zero, false
		}
	}
	v := q.buf[head&q.mask]
	var zero T
	q.buf[head&q.mask] = zero // release references for GC
	q.head.Store(head + 1)
	return v, true
}

// TryProduceBatch appends as many elements of vs as there is room for and
// returns how many it appended (possibly 0). All appended elements become
// visible to the consumer with a single tail publication, so the per-element
// synchronization cost is amortized over the batch — the batched
// sync-condition path of the sharded DOMORE scheduler. FIFO order within vs
// is preserved. It must only be called from the producer goroutine.
func (q *SPSC[T]) TryProduceBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	tail := q.tail.Load()
	free := uint64(len(q.buf)) - (tail - q.cachedHead)
	if free < uint64(len(vs)) {
		q.cachedHead = q.head.Load()
		free = uint64(len(q.buf)) - (tail - q.cachedHead)
		if free == 0 {
			return 0
		}
	}
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		q.buf[(tail+i)&q.mask] = vs[i]
	}
	q.tail.Store(tail + n)
	return int(n)
}

// ProduceBatch appends every element of vs, spinning while the ring is full.
// It must only be called from the producer goroutine.
func (q *SPSC[T]) ProduceBatch(vs []T) {
	for spins := 0; len(vs) > 0; spins++ {
		if n := q.TryProduceBatch(vs); n > 0 {
			vs = vs[n:]
			spins = 0
			continue
		}
		Backoff(spins)
	}
}

// TryConsumeBatch removes up to len(dst) buffered elements into dst and
// returns how many it removed (possibly 0). Like TryProduceBatch, the head
// index is published once per batch. Consumed slots are zeroed so the ring
// releases references for GC. It must only be called from the consumer
// goroutine.
func (q *SPSC[T]) TryConsumeBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	head := q.head.Load()
	avail := q.cachedTail - head
	if avail < uint64(len(dst)) {
		q.cachedTail = q.tail.Load()
		avail = q.cachedTail - head
		if avail == 0 {
			return 0
		}
	}
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	var zero T
	for i := uint64(0); i < n; i++ {
		dst[i] = q.buf[(head+i)&q.mask]
		q.buf[(head+i)&q.mask] = zero
	}
	q.head.Store(head + n)
	return int(n)
}

// ConsumeBatch removes at least one and up to len(dst) elements into dst,
// spinning (with the Backoff schedule, so a 1-CPU box still makes progress)
// until something arrives. len(dst) must be at least 1. It must only be
// called from the consumer goroutine.
func (q *SPSC[T]) ConsumeBatch(dst []T) int {
	for spins := 0; ; spins++ {
		if n := q.TryConsumeBatch(dst); n > 0 {
			return n
		}
		Backoff(spins)
	}
}

// Consume removes and returns the oldest element, spinning until one arrives.
// It must only be called from the consumer goroutine.
func (q *SPSC[T]) Consume() T {
	for spins := 0; ; spins++ {
		if v, ok := q.TryConsume(); ok {
			return v
		}
		Backoff(spins)
	}
}

// Backoff spin-wait politeness constants: attempts below BackoffBusySpins
// busy-spin; from there to BackoffYieldCap the schedule yields at
// power-of-two attempt numbers (exponentially spaced); past the cap every
// attempt yields.
const (
	BackoffBusySpins = 4
	BackoffYieldCap  = 1 << 8
)

// Backoff yields the processor with a capped exponential schedule, given
// the number of failed attempts so far. The first few attempts busy-spin
// — cheap when the peer runs on another core and the wait is ephemeral.
// After that the schedule calls runtime.Gosched at exponentially spaced
// attempts (4, 8, 16, … BackoffYieldCap), then on every attempt: under
// GOMAXPROCS=1 a full (or empty) ring makes progress only when the
// waiter yields, so the first yield must come early and the steady state
// must yield continuously rather than burn the peer's only processor.
//
// It is exported so engine code that needs a custom wait loop (e.g. to
// trace a backoff episode around TryProduce) degrades identically to
// Produce/Consume.
func Backoff(spins int) {
	if spins < BackoffBusySpins {
		return
	}
	if spins < BackoffYieldCap && spins&(spins-1) != 0 {
		return
	}
	runtime.Gosched()
}

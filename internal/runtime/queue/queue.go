// Package queue provides the single-producer single-consumer lock-free ring
// buffer used to forward synchronization conditions from the DOMORE scheduler
// to its workers and checking requests from SPECCROSS workers to the checker.
//
// The design follows the lock-free queue the paper builds on (§3.2.3): one
// cache-line-padded head index owned by the consumer, one tail index owned by
// the producer, and a power-of-two ring so index masking is a single AND.
// Produce and Consume spin (with cooperative yielding) when the ring is full
// or empty; TryProduce and TryConsume never block.
package queue

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// cacheLine is the assumed cache-line size used for padding between the
// producer-owned and consumer-owned fields so they never share a line.
const cacheLine = 64

// SPSC is a bounded lock-free queue safe for exactly one producer goroutine
// and one consumer goroutine. The zero value is not usable; construct with
// NewSPSC.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    [cacheLine]byte
	head atomic.Uint64 // next slot to consume; owned by the consumer
	_    [cacheLine]byte
	tail atomic.Uint64 // next slot to fill; owned by the producer
	_    [cacheLine]byte

	// cachedHead and cachedTail let each side avoid re-reading the other
	// side's index on every operation (the classic SPSC optimization).
	cachedHead uint64 // producer's last observed head
	cachedTail uint64 // consumer's last observed tail
}

// NewSPSC returns an SPSC queue with capacity rounded up to the next power of
// two. Capacity must be positive.
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: invalid capacity %d", capacity))
	}
	n := uint64(1)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: n - 1}
}

// Cap reports the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len reports the number of buffered elements. It is a snapshot and may be
// stale by the time the caller uses it.
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// TryProduce appends v if there is room and reports whether it did.
// It must only be called from the producer goroutine.
func (q *SPSC[T]) TryProduce(v T) bool {
	tail := q.tail.Load()
	if tail-q.cachedHead >= uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if tail-q.cachedHead >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Produce appends v, spinning until space is available.
// It must only be called from the producer goroutine.
func (q *SPSC[T]) Produce(v T) {
	for spins := 0; !q.TryProduce(v); spins++ {
		backoff(spins)
	}
}

// TryConsume removes and returns the oldest element if one is buffered.
// It must only be called from the consumer goroutine.
func (q *SPSC[T]) TryConsume() (T, bool) {
	head := q.head.Load()
	if head >= q.cachedTail {
		q.cachedTail = q.tail.Load()
		if head >= q.cachedTail {
			var zero T
			return zero, false
		}
	}
	v := q.buf[head&q.mask]
	var zero T
	q.buf[head&q.mask] = zero // release references for GC
	q.head.Store(head + 1)
	return v, true
}

// Consume removes and returns the oldest element, spinning until one arrives.
// It must only be called from the consumer goroutine.
func (q *SPSC[T]) Consume() T {
	for spins := 0; ; spins++ {
		if v, ok := q.TryConsume(); ok {
			return v
		}
		backoff(spins)
	}
}

// backoff yields the processor with increasing politeness: busy-spin briefly,
// then hand the scheduler a chance to run the peer goroutine. On a machine
// with fewer cores than runnable goroutines (including the single-core case)
// the Gosched path is what makes progress.
func backoff(spins int) {
	if spins < 16 {
		return
	}
	runtime.Gosched()
}

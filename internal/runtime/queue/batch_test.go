package queue

import (
	"runtime"
	"testing"
)

// FuzzSPSCBatchOrder drives the batch operations single-threaded against a
// plain slice model, freely interleaved with the single-element operations:
// the first byte picks the capacity, then each pair of bytes is (op, size).
// The batch paths must accept exactly min(size, free)/min(size, buffered)
// elements, preserve FIFO order across batch and single operations, and
// keep Len exact after every step.
func FuzzSPSCBatchOrder(f *testing.F) {
	f.Add([]byte{1, 0, 3, 1, 3})                   // cap 2: batch produce 3 (1 rejected), batch consume 3
	f.Add([]byte{3, 0, 2, 2, 0, 1, 2, 3, 0})       // mixed batch/single produce then drains
	f.Add([]byte{0, 0, 1, 0, 1, 1, 2})             // cap 1: batch of 1 behaves like single
	f.Add([]byte{7, 0, 8, 1, 4, 0, 8, 1, 8, 1, 8}) // wrap-around across batches
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		q := NewSPSC[int](int(data[0]%16) + 1)
		var model []int
		next := 0
		ops := data[1:]
		for i := 0; i+1 < len(ops); i += 2 {
			op, size := ops[i]%4, int(ops[i+1]%(16+1))
			switch op {
			case 0: // TryProduceBatch
				vs := make([]int, size)
				for j := range vs {
					vs[j] = next + j
				}
				n := q.TryProduceBatch(vs)
				want := q.Cap() - len(model)
				if want > size {
					want = size
				}
				if want > 0 != (n > 0) || (n > 0 && n != want) {
					t.Fatalf("TryProduceBatch(%d) = %d with %d of %d buffered, want %d",
						size, n, len(model), q.Cap(), want)
				}
				model = append(model, vs[:n]...)
				next += n
			case 1: // TryConsumeBatch
				dst := make([]int, size)
				n := q.TryConsumeBatch(dst)
				want := len(model)
				if want > size {
					want = size
				}
				if n != want {
					t.Fatalf("TryConsumeBatch(%d) = %d with %d buffered, want %d", size, n, len(model), want)
				}
				for j := 0; j < n; j++ {
					if dst[j] != model[j] {
						t.Fatalf("batch element %d = %d, FIFO model = %d", j, dst[j], model[j])
					}
				}
				model = model[n:]
			case 2: // TryProduce
				ok := q.TryProduce(next)
				if want := len(model) < q.Cap(); ok != want {
					t.Fatalf("TryProduce accepted=%v with %d of %d buffered", ok, len(model), q.Cap())
				}
				if ok {
					model = append(model, next)
					next++
				}
			case 3: // TryConsume
				v, ok := q.TryConsume()
				if want := len(model) > 0; ok != want {
					t.Fatalf("TryConsume ok=%v with %d buffered", ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("TryConsume = %d, FIFO model head = %d", v, model[0])
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				t.Fatalf("Len() = %d, model holds %d", q.Len(), len(model))
			}
		}
	})
}

// TestSPSCBatchSingleHammer interleaves batch and single-element operations
// between a real producer/consumer pair: the producer alternates ProduceBatch
// chunks with single Produce calls, the consumer alternates ConsumeBatch
// with single Consume, over a ring small enough to wrap thousands of times.
// The consumer must observe the exact produced sequence. Both sides block
// through Backoff, which yields, so the schedule interleaves on 1-CPU CI too.
func TestSPSCBatchSingleHammer(t *testing.T) {
	for _, cap := range []int{1, 4, 64} {
		t.Run("", func(t *testing.T) {
			const total = 20000
			q := NewSPSC[int](cap)
			done := make(chan struct{})
			go func() {
				defer close(done)
				chunk := make([]int, 0, 7)
				for next := 0; next < total; {
					if next%3 == 0 {
						chunk = chunk[:0]
						for k := 0; k < 7 && next+k < total; k++ {
							chunk = append(chunk, next+k)
						}
						q.ProduceBatch(chunk)
						next += len(chunk)
					} else {
						q.Produce(next)
						next++
					}
				}
			}()
			dst := make([]int, 5)
			want := 0
			for want < total {
				if want%2 == 0 {
					n := q.ConsumeBatch(dst)
					for i := 0; i < n; i++ {
						if dst[i] != want {
							t.Fatalf("consumed %d, want %d", dst[i], want)
						}
						want++
					}
				} else {
					if got := q.Consume(); got != want {
						t.Fatalf("consumed %d, want %d", got, want)
					}
					want++
				}
				if l := q.Len(); l < 0 || l > q.Cap() {
					t.Fatalf("Len() = %d outside [0, %d]", l, q.Cap())
				}
			}
			<-done
			if n := q.TryConsumeBatch(dst); n != 0 {
				t.Fatalf("queue non-empty after consuming every produced element: %d left", n)
			}
		})
	}
}

// TestBatchConsumeSingleCPU pins GOMAXPROCS to 1 and pushes a full ring's
// worth of traffic through the batch consumer loop. On one processor the
// consumer's empty-ring spin makes progress only because Backoff yields
// early and keeps yielding (see TESTING.md, "Single-CPU runners"); a
// regression that busy-spins the batch path livelocks this test until the
// suite timeout kills it.
func TestBatchConsumeSingleCPU(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const total = 5000
	q := NewSPSC[int](8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		chunk := make([]int, 0, 16)
		for next := 0; next < total; {
			chunk = chunk[:0]
			for k := 0; k < 16 && next+k < total; k++ {
				chunk = append(chunk, next+k)
			}
			// Batches of 16 into a ring of 8: every ProduceBatch call must
			// split and spin on the full ring, the producer-side dual of the
			// consumer path under test.
			q.ProduceBatch(chunk)
			next += len(chunk)
		}
	}()
	dst := make([]int, 4)
	for want := 0; want < total; {
		n := q.ConsumeBatch(dst)
		for i := 0; i < n; i++ {
			if dst[i] != want {
				t.Fatalf("consumed %d, want %d", dst[i], want)
			}
			want++
		}
	}
	<-done
}

package queue

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {1000, 1024},
	}
	for _, c := range cases {
		if got := NewSPSC[int](c.in).Cap(); got != c.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSPSC(0) did not panic")
		}
	}()
	NewSPSC[int](0)
}

func TestTryProduceFull(t *testing.T) {
	q := NewSPSC[int](2)
	if !q.TryProduce(1) || !q.TryProduce(2) {
		t.Fatal("TryProduce failed with room available")
	}
	if q.TryProduce(3) {
		t.Fatal("TryProduce succeeded on a full queue")
	}
	if got := q.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
}

func TestTryConsumeEmpty(t *testing.T) {
	q := NewSPSC[string](4)
	if v, ok := q.TryConsume(); ok {
		t.Fatalf("TryConsume on empty queue returned %q", v)
	}
}

func TestFIFOOrderSingleThread(t *testing.T) {
	q := NewSPSC[int](8)
	for round := 0; round < 5; round++ { // exercise wraparound
		for i := 0; i < 8; i++ {
			q.Produce(round*8 + i)
		}
		for i := 0; i < 8; i++ {
			if got := q.Consume(); got != round*8+i {
				t.Fatalf("round %d: Consume() = %d, want %d", round, got, round*8+i)
			}
		}
	}
}

func TestInterleavedProduceConsume(t *testing.T) {
	// Single-goroutine interleaving must respect the capacity bound:
	// produce bursts only while TryProduce reports room, then drain one.
	q := NewSPSC[int](4)
	next := 0
	expect := 0
	for i := 0; i < 100; i++ {
		q.Produce(next)
		next++
		if i%3 == 0 && q.TryProduce(next) {
			next++
		}
		if got := q.Consume(); got != expect {
			t.Fatalf("Consume() = %d, want %d", got, expect)
		}
		expect++
	}
	for expect < next {
		if got := q.Consume(); got != expect {
			t.Fatalf("drain: Consume() = %d, want %d", got, expect)
		}
		expect++
	}
}

func TestConcurrentFIFO(t *testing.T) {
	const n = 100000
	q := NewSPSC[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Produce(i)
		}
	}()
	for i := 0; i < n; i++ {
		if got := q.Consume(); got != i {
			t.Fatalf("Consume() = %d, want %d (order violated)", got, i)
		}
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("queue not drained: Len() = %d", q.Len())
	}
}

func TestConcurrentStructPayload(t *testing.T) {
	type cond struct {
		Tid  int32
		Iter int64
	}
	const n = 20000
	q := NewSPSC[cond](32)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			got := q.Consume()
			if got.Tid != int32(i%7) || got.Iter != int64(i) {
				t.Errorf("payload %d corrupted: %+v", i, got)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		q.Produce(cond{Tid: int32(i % 7), Iter: int64(i)})
	}
	<-done
}

// Property: for any sequence of values produced, consuming returns exactly
// that sequence (FIFO preservation).
func TestQuickFIFOProperty(t *testing.T) {
	prop := func(vals []int64) bool {
		q := NewSPSC[int64](8)
		out := make([]int64, 0, len(vals))
		i := 0
		for i < len(vals) {
			for i < len(vals) && q.TryProduce(vals[i]) {
				i++
			}
			for {
				v, ok := q.TryConsume()
				if !ok {
					break
				}
				out = append(out, v)
			}
		}
		for {
			v, ok := q.TryConsume()
			if !ok {
				break
			}
			out = append(out, v)
		}
		if len(out) != len(vals) {
			return false
		}
		for j := range vals {
			if out[j] != vals[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProduceConsume(b *testing.B) {
	q := NewSPSC[int64](1024)
	b.RunParallel(func(pb *testing.PB) {
		// RunParallel with one producer/consumer pair is not expressible;
		// use the serial path to measure per-op cost.
		for pb.Next() {
			q.Produce(1)
			q.Consume()
		}
	})
}

package queue

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {1000, 1024},
	}
	for _, c := range cases {
		if got := NewSPSC[int](c.in).Cap(); got != c.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSPSC(0) did not panic")
		}
	}()
	NewSPSC[int](0)
}

func TestAbsurdCapacityPanics(t *testing.T) {
	// Capacities above 1<<62 used to overflow the power-of-two round-up
	// and spin NewSPSC forever; anything above MaxCapacity must instead
	// panic with a message that names the limit.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewSPSC(MaxCapacity+1) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "exceeds maximum") {
			t.Fatalf("panic %v does not explain the capacity limit", r)
		}
	}()
	NewSPSC[int](MaxCapacity + 1)
}

func TestMaxCapacityConstructs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a 1Gi-element ring")
	}
	q := NewSPSC[byte](MaxCapacity)
	if q.Cap() != MaxCapacity {
		t.Fatalf("Cap() = %d, want %d", q.Cap(), MaxCapacity)
	}
}

// TestLenNeverNegativeHammer races Len against a concurrent
// producer/consumer pair. Len loads tail then head non-atomically; before
// the clamp, a consumer advancing between the two loads made it return a
// negative length.
func TestLenNeverNegativeHammer(t *testing.T) {
	const n = 50000
	q := NewSPSC[int](64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Produce(i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Consume()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; ; i++ {
		select {
		case <-done:
			if l := q.Len(); l != 0 {
				t.Fatalf("drained queue Len() = %d, want 0", l)
			}
			return
		default:
		}
		if l := q.Len(); l < 0 || l > q.Cap() {
			t.Fatalf("Len() = %d outside [0, %d]", l, q.Cap())
		}
		if i%64 == 0 {
			runtime.Gosched() // don't starve the producer/consumer pair
		}
	}
}

// TestFullRingSingleProc pins GOMAXPROCS to 1 and forces the producer to
// block on a full ring: progress then depends entirely on the backoff
// schedule yielding to the consumer. The old schedule busy-spun 16
// iterations before the first yield; the capped exponential schedule
// must both yield early and keep yielding, or this test hangs.
func TestFullRingSingleProc(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	const n = 50000
	q := NewSPSC[int](4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			q.Produce(i) // ring is full almost immediately
		}
	}()
	for i := 0; i < n; i++ {
		if got := q.Consume(); got != i {
			t.Errorf("Consume() = %d, want %d", got, i)
			break
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("producer did not finish: backoff never yielded to the consumer")
	}
}

func TestBackoffSchedule(t *testing.T) {
	// The schedule's shape (not its effect) is easy to pin: no yield
	// below BackoffBusySpins, exponentially spaced yield points up to
	// the cap, and every spin past the cap. Backoff's only observable
	// action is runtime.Gosched, so assert the decision points via the
	// exported constants instead.
	if BackoffBusySpins >= BackoffYieldCap {
		t.Fatalf("busy prefix %d not below yield cap %d", BackoffBusySpins, BackoffYieldCap)
	}
	yieldsAt := func(spins int) bool {
		if spins < BackoffBusySpins {
			return false
		}
		return spins >= BackoffYieldCap || spins&(spins-1) == 0
	}
	if yieldsAt(0) || yieldsAt(BackoffBusySpins-1) {
		t.Error("schedule yields inside the busy prefix")
	}
	if !yieldsAt(BackoffBusySpins) {
		t.Error("first yield must come right after the busy prefix")
	}
	if !yieldsAt(BackoffYieldCap) || !yieldsAt(BackoffYieldCap+1) || !yieldsAt(BackoffYieldCap+97) {
		t.Error("schedule must yield on every attempt past the cap")
	}
}

func TestTryProduceFull(t *testing.T) {
	q := NewSPSC[int](2)
	if !q.TryProduce(1) || !q.TryProduce(2) {
		t.Fatal("TryProduce failed with room available")
	}
	if q.TryProduce(3) {
		t.Fatal("TryProduce succeeded on a full queue")
	}
	if got := q.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
}

func TestTryConsumeEmpty(t *testing.T) {
	q := NewSPSC[string](4)
	if v, ok := q.TryConsume(); ok {
		t.Fatalf("TryConsume on empty queue returned %q", v)
	}
}

func TestFIFOOrderSingleThread(t *testing.T) {
	q := NewSPSC[int](8)
	for round := 0; round < 5; round++ { // exercise wraparound
		for i := 0; i < 8; i++ {
			q.Produce(round*8 + i)
		}
		for i := 0; i < 8; i++ {
			if got := q.Consume(); got != round*8+i {
				t.Fatalf("round %d: Consume() = %d, want %d", round, got, round*8+i)
			}
		}
	}
}

func TestInterleavedProduceConsume(t *testing.T) {
	// Single-goroutine interleaving must respect the capacity bound:
	// produce bursts only while TryProduce reports room, then drain one.
	q := NewSPSC[int](4)
	next := 0
	expect := 0
	for i := 0; i < 100; i++ {
		q.Produce(next)
		next++
		if i%3 == 0 && q.TryProduce(next) {
			next++
		}
		if got := q.Consume(); got != expect {
			t.Fatalf("Consume() = %d, want %d", got, expect)
		}
		expect++
	}
	for expect < next {
		if got := q.Consume(); got != expect {
			t.Fatalf("drain: Consume() = %d, want %d", got, expect)
		}
		expect++
	}
}

func TestConcurrentFIFO(t *testing.T) {
	const n = 100000
	q := NewSPSC[int](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Produce(i)
		}
	}()
	for i := 0; i < n; i++ {
		if got := q.Consume(); got != i {
			t.Fatalf("Consume() = %d, want %d (order violated)", got, i)
		}
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("queue not drained: Len() = %d", q.Len())
	}
}

func TestConcurrentStructPayload(t *testing.T) {
	type cond struct {
		Tid  int32
		Iter int64
	}
	const n = 20000
	q := NewSPSC[cond](32)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			got := q.Consume()
			if got.Tid != int32(i%7) || got.Iter != int64(i) {
				t.Errorf("payload %d corrupted: %+v", i, got)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		q.Produce(cond{Tid: int32(i % 7), Iter: int64(i)})
	}
	<-done
}

// Property: for any sequence of values produced, consuming returns exactly
// that sequence (FIFO preservation).
func TestQuickFIFOProperty(t *testing.T) {
	prop := func(vals []int64) bool {
		q := NewSPSC[int64](8)
		out := make([]int64, 0, len(vals))
		i := 0
		for i < len(vals) {
			for i < len(vals) && q.TryProduce(vals[i]) {
				i++
			}
			for {
				v, ok := q.TryConsume()
				if !ok {
					break
				}
				out = append(out, v)
			}
		}
		for {
			v, ok := q.TryConsume()
			if !ok {
				break
			}
			out = append(out, v)
		}
		if len(out) != len(vals) {
			return false
		}
		for j := range vals {
			if out[j] != vals[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProduceConsume(b *testing.B) {
	q := NewSPSC[int64](1024)
	b.RunParallel(func(pb *testing.PB) {
		// RunParallel with one producer/consumer pair is not expressible;
		// use the serial path to measure per-op cost.
		for pb.Next() {
			q.Produce(1)
			q.Consume()
		}
	})
}

package daemon

import (
	"fmt"

	"crossinv/internal/obs"
	"crossinv/internal/runtime/trace"
)

// invocation is the request-scoped observability context: a pooled trace
// recorder stamped with the invocation id, the request-lane root span,
// and the decision entries an adaptive run journals. Every /run carries
// one from admission through engine execution; in-process Execute calls
// get one too, so tests and the bench harness see the same span tree the
// HTTP path produces.
type invocation struct {
	id   string
	rec  *trace.Recorder // nil when tracing is disabled
	lane *trace.ThreadTrace
	root trace.Span

	// decisions accumulates this request's adaptive-controller journal
	// entries (appended from the request goroutine only — adaptive.Run is
	// synchronous, so no lock is needed).
	decisions []obs.DecisionEntry
}

// span opens a request-lane stage span parented under the invocation
// root. Safe on a disabled invocation: every call degrades to a no-op.
func (inv *invocation) span(k trace.SpanKind) trace.Span {
	return inv.lane.BeginSpan(k, inv.root.ID())
}

// beginInvocation assigns the next invocation id and checks a recorder
// out of the pool. The recorder is request-private (engines write to it
// freely) and returns to the pool in finishInvocation.
func (s *Server) beginInvocation() *invocation {
	inv := &invocation{id: fmt.Sprintf("inv-%06d", s.invSeq.Add(1))}
	if s.cfg.DisableTracing {
		return inv
	}
	inv.rec = s.recPool.Get().(*trace.Recorder)
	inv.rec.SetInvocation(inv.id)
	inv.lane = inv.rec.Lane(trace.LaneRequest)
	inv.root = inv.lane.BeginSpan(trace.SpanInvocation, 0)
	return inv
}

// finishInvocation closes the root span, feeds the flight recorder, and
// recycles the recorder. It stamps the response with the trace-derived
// speculation counters so clients see what the window retains. Called
// exactly once per invocation, after the response is final but before
// it is written.
func (s *Server) finishInvocation(inv *invocation, req *RunRequest, resp *RunResponse, status int) {
	inv.root.End()
	fi := obs.FlightInvocation{
		ID:        inv.id,
		Mode:      req.Mode,
		Engine:    resp.Engine,
		Cache:     resp.Cache,
		Status:    status,
		DurNs:     resp.DurationNs,
		Decisions: inv.decisions,
	}
	var full func() []trace.Event
	if inv.rec != nil {
		sum := inv.rec.Summary()
		fi.Misspecs = sum.Counts[trace.KindMisspec]
		fi.Tasks = sum.Counts[trace.KindTaskStart] + sum.Counts[trace.KindIterStart]
		fi.Comparisons = sum.Counts[trace.KindSigCheck]
		fi.PrefilterChecks = sum.Counts[trace.KindSigPrefilter]
		fi.PrefilterHits = sum.Sums[trace.KindSigPrefilter]
		s.prefilterChecks.Add(fi.PrefilterChecks)
		s.prefilterHits.Add(fi.PrefilterHits)
		resp.Misspecs = fi.Misspecs
		fi.Events = inv.rec.SpanEvents()
		fi.Spans = trace.SpansFromEvents(fi.Events)
		// Full capture stays lazy: Observe invokes it synchronously (only
		// on a trigger) before this function recycles the recorder, so the
		// rings are still intact when a dump serializes them.
		rec := inv.rec
		full = func() []trace.Event { return rec.Events() }
	}
	s.flight.Observe(fi, full)
	if inv.rec != nil {
		inv.rec.Reset()
		s.recPool.Put(inv.rec)
		inv.rec = nil
		inv.lane = nil
	}
}

package daemon

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crossinv/internal/obs"
	"crossinv/internal/runtime/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// obsPipe carries a cross-invocation dependence four epochs back: the
// static verdict is forward-only and the §4.4 profile finds distance 4,
// so adaptive (4 workers) starts speculating under the unpinned
// threshold policy — exactly the regime where a forced misspeculation
// makes the controller switch and explain itself. 64 epochs / window 16
// = exactly 4 adaptive windows, which the tests below pin.
const obsPipe = `func pipe() {
  var A[600]
  for t = 4 .. 68 {
    parfor i = 0 .. 8 {
      A[t*8 + i] = A[(t-4)*8 + i] * 3 + 1
    }
  }
}
`

// obsRun is the forced-misspec invocation every observability test
// drives: one rollback at epoch 10, recovered and re-verified.
func obsRun() *RunRequest {
	return &RunRequest{Source: obsPipe, Mode: "adaptive", Workers: 4, Window: 16, Misspec: 10}
}

// TestRequestObservability is the tentpole acceptance test, end to end
// over HTTP: a forced-misspec /run yields a response carrying its
// invocation id and exact misspec count, a /debug/decisions entry per
// adaptive window (filterable by that id), a flight-recorder dump on
// disk whose Chrome artifact validates and names the invocation's
// track, and a /debug/flightrec window entry holding the span skeleton
// including the admission span only the HTTP path adds.
func TestRequestObservability(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, Config{FlightDir: dir})
	h := s.Handler()

	body, err := json.Marshal(obsRun())
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", bytes.NewReader(body)))
	if rr.Code != 200 {
		t.Fatalf("/run: %d %s", rr.Code, rr.Body.String())
	}
	var resp RunResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Invocation == "" {
		t.Fatalf("response lacks invocation identity: %+v", resp)
	}
	if resp.Misspecs < 1 {
		t.Fatalf("forced misspeculation not reflected: %+v", resp)
	}

	// Decision audit: one journal entry per window, filtered by id, with
	// the misspeculating window explained.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/decisions?invocation="+resp.Invocation, nil))
	var decisions struct {
		Schema  string              `json:"schema"`
		Entries []obs.DecisionEntry `json:"entries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &decisions); err != nil {
		t.Fatal(err)
	}
	if decisions.Schema != obs.DecisionsSchema {
		t.Errorf("decisions schema = %q", decisions.Schema)
	}
	if len(decisions.Entries) != 4 {
		t.Fatalf("decision entries = %d, want 4 (64 epochs / window 16)", len(decisions.Entries))
	}
	sawMisspec := false
	for i, e := range decisions.Entries {
		if e.Invocation != resp.Invocation || e.Window != i || e.Reason == "" {
			t.Errorf("entry %d malformed: %+v", i, e)
		}
		if e.Misspeculated {
			sawMisspec = true
			if !e.Switched || e.Next != "domore" || !strings.Contains(e.Reason, "misspeculated") {
				t.Errorf("misspec window not explained: %+v", e)
			}
		}
	}
	if !sawMisspec {
		t.Fatal("no decision covered the forced misspeculation")
	}

	// Flight recorder: the misspec-storm dump exists on disk, its JSON
	// artifact is schema-tagged with full spans, and its Chrome artifact
	// validates and names the invocation's track.
	matches, _ := filepath.Glob(filepath.Join(dir, "flightrec-*-"+obs.TriggerMisspec+".json"))
	if len(matches) != 1 {
		t.Fatalf("misspec dump files = %v, want exactly one", matches)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Schema     string           `json:"schema"`
		Invocation string           `json:"invocation"`
		FullSpans  []trace.SpanInfo `json:"full_spans"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Schema != obs.FlightSchema || dump.Invocation != resp.Invocation {
		t.Errorf("dump doc = %+v", dump)
	}
	if len(dump.FullSpans) == 0 {
		t.Error("dump has no full spans")
	}
	tdata, err := os.ReadFile(strings.TrimSuffix(matches[0], ".json") + ".trace.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(tdata); err != nil {
		t.Errorf("chrome dump invalid: %v", err)
	}
	if !strings.Contains(string(tdata), "invocation "+resp.Invocation) {
		t.Error("chrome dump does not name the invocation track")
	}

	// /debug/flightrec: the window retains the invocation with its span
	// skeleton, including the admission span only handleRun adds.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flightrec", nil))
	var doc struct {
		Schema   string                 `json:"schema"`
		Triggers map[string]int64       `json:"triggers"`
		Window   []obs.FlightInvocation `json:"window"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != obs.FlightSchema || doc.Triggers[obs.TriggerMisspec] != 1 {
		t.Errorf("flightrec doc = %+v", doc)
	}
	found := false
	for _, fi := range doc.Window {
		if fi.ID != resp.Invocation {
			continue
		}
		found = true
		if fi.Misspecs != resp.Misspecs || fi.Engine != "adaptive" {
			t.Errorf("window entry diverges from response: %+v", fi)
		}
		kinds := map[string]bool{}
		for _, sp := range fi.Spans {
			kinds[sp.Kind] = true
		}
		for _, want := range []string{"invocation", "admission", "cache.lookup", "window", "execute"} {
			if !kinds[want] {
				t.Errorf("window entry missing %q span: have %v", want, kinds)
			}
		}
		if len(fi.Decisions) != 4 {
			t.Errorf("window entry carries %d decisions, want 4", len(fi.Decisions))
		}
	}
	if !found {
		t.Error("flight window lost the invocation")
	}
}

// TestExecuteTracedSpanTree pins the span tree an in-process invocation
// produces: one root, the analysis stages parented under it, and one
// closed window span per adaptive window parented under the execute
// span.
func TestExecuteTracedSpanTree(t *testing.T) {
	s := newServer(t, Config{})
	resp, status, events := s.ExecuteTraced(obsRun())
	if status != 200 || !resp.OK {
		t.Fatalf("run failed: %d %+v", status, resp)
	}
	spans := trace.SpansFromEvents(events)
	byKind := map[string][]trace.SpanInfo{}
	for _, sp := range spans {
		if sp.EndNs == 0 {
			t.Errorf("span %s left open", sp.Kind)
		}
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
	}
	if len(byKind["invocation"]) != 1 || byKind["invocation"][0].Parent != 0 {
		t.Fatalf("want one root invocation span: %+v", byKind["invocation"])
	}
	root := byKind["invocation"][0].ID
	for _, kind := range []string{"compile", "cache.lookup", "oracle", "profile", "execute"} {
		got := byKind[kind]
		if len(got) != 1 || got[0].Parent != root {
			t.Errorf("%s spans = %+v, want one under root %d", kind, got, root)
		}
	}
	exec := byKind["execute"][0].ID
	if wins := byKind["window"]; len(wins) != 4 {
		t.Errorf("window spans = %d, want 4", len(wins))
	} else {
		for _, w := range wins {
			if w.Parent != exec {
				t.Errorf("window span parent = %d, want execute %d", w.Parent, exec)
			}
		}
	}
}

// TestChromeExportGolden locks the Chrome trace a daemon request
// exports: the span-phase event sequence is deterministic for the
// fixed-window forced-misspec run, so it is kept as a golden file
// (regenerate with -update). The full document must also pass
// tracecheck's validator and name the invocation's track.
func TestChromeExportGolden(t *testing.T) {
	s := newServer(t, Config{})
	resp, status, events := s.ExecuteTraced(obsRun())
	if status != 200 {
		t.Fatalf("run failed: %d %+v", status, resp)
	}
	var buf bytes.Buffer
	err := trace.WriteChromeProcs(&buf, []trace.ChromeProc{
		{PID: 0, Name: "invocation " + resp.Invocation, Events: events},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if !strings.Contains(buf.String(), "invocation "+resp.Invocation) {
		t.Error("export does not name the invocation track")
	}

	// Distill the deterministic skeleton: begin/end phases of the named
	// spans, in document order, ignoring timestamps and engine events.
	var raw struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	spanNames := map[string]bool{
		"invocation": true, "admission": true, "cache.lookup": true,
		"compile": true, "oracle": true, "profile": true, "plan": true,
		"window": true, "execute": true,
	}
	var lines []string
	for _, e := range raw.TraceEvents {
		if (e.Ph == "B" || e.Ph == "E") && spanNames[e.Name] {
			lines = append(lines, e.Ph+" "+e.Name)
		}
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "chrome_spans.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("span skeleton diverged from golden (rerun with -update if intended):\ngot:\n%swant:\n%s", got, want)
	}
}

// TestDisableTracing pins the baseline mode: no recorder, no spans, no
// misspec counters — but invocation identity and the decision audit
// (which reads engine stats, not the trace) still work.
func TestDisableTracing(t *testing.T) {
	s := newServer(t, Config{DisableTracing: true})
	resp, status, events := s.ExecuteTraced(obsRun())
	if status != 200 || !resp.OK {
		t.Fatalf("run failed: %d %+v", status, resp)
	}
	if resp.Invocation == "" {
		t.Error("invocation id lost without tracing")
	}
	if len(events) != 0 {
		t.Errorf("tracing disabled but %d events captured", len(events))
	}
	if resp.Misspecs != 0 {
		t.Errorf("misspec counter without a recorder: %d", resp.Misspecs)
	}
	entries := s.Decisions().Snapshot(resp.Invocation)
	if len(entries) != 4 {
		t.Fatalf("decision entries = %d, want 4 without tracing", len(entries))
	}
	saw := false
	for _, e := range entries {
		if e.Misspeculated {
			saw = true
		}
	}
	if !saw {
		t.Error("stats-path sampling lost the forced misspeculation")
	}
}

// TestAdmissionTimeoutDump pins the external trigger: a request that
// waits out the admission queue produces a 429 carrying its invocation
// id and an admission-timeout dump.
func TestAdmissionTimeoutDump(t *testing.T) {
	s := newServer(t, Config{MaxInFlight: 1, QueueDepth: 1, QueueTimeout: 10 * time.Millisecond})
	h := s.Handler()

	// Occupy the only slot.
	s.inflight <- struct{}{}
	defer func() { <-s.inflight }()

	body, _ := json.Marshal(&RunRequest{Source: obsPipe, Mode: "seq"})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/run", bytes.NewReader(body)))
	if rr.Code != 429 {
		t.Fatalf("status = %d, want 429", rr.Code)
	}
	var resp RunResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Invocation == "" {
		t.Error("rejected request lacks invocation id")
	}
	found := false
	for _, d := range s.Flight().Dumps() {
		if d.Trigger == obs.TriggerAdmissionTimeout && d.Invocation == resp.Invocation {
			found = true
		}
	}
	if !found {
		t.Errorf("no admission-timeout dump for %s: %+v", resp.Invocation, s.Flight().Dumps())
	}
}

package daemon

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crossinv/internal/core"
	"crossinv/internal/obs"
	"crossinv/internal/plancache"
	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/transform/mtcg"
)

// RunRequest is one invocation: a program and how to execute it.
type RunRequest struct {
	// Source is the LNL program text (required) — the content address.
	Source string `json:"source"`
	// Mode is seq, barrier, domore, domore-sharded, speccross, adaptive, or
	// auto (default auto: the profile-informed engine choice).
	Mode string `json:"mode,omitempty"`
	// Workers overrides the daemon's default engine worker count.
	Workers int `json:"workers,omitempty"`
	// Region indexes the candidate region to parallelize. Negative means
	// the last detected region (the crossinv CLI's default); 0 is the
	// JSON zero value, so "unset" picks the first region.
	Region int `json:"region,omitempty"`
	// Sig selects the signature scheme: range (default), bloom, exact.
	Sig string `json:"sig,omitempty"`
	// Window overrides the adaptive monitoring window.
	Window int `json:"window,omitempty"`
	// Misspec, when positive, forces one artificial misspeculation at
	// that epoch (speccross and adaptive modes). A fault-injection knob:
	// it exercises the rollback/recovery path and trips the flight
	// recorder's misspec-storm trigger on demand.
	Misspec int `json:"misspec,omitempty"`
}

// RunResponse reports one invocation's outcome.
type RunResponse struct {
	OK bool `json:"ok"`
	// Invocation is the request-scoped trace id: the key into
	// /debug/decisions?invocation= and the flight recorder's window.
	Invocation string `json:"invocation,omitempty"`
	Engine     string `json:"engine,omitempty"`
	// Checksum is the executed result; SeqChecksum the sequential oracle
	// it was verified against.
	Checksum    uint64 `json:"checksum,omitempty"`
	SeqChecksum uint64 `json:"seq_checksum,omitempty"`
	// Cache classifies the dispatch path: "hot" (program live in memory —
	// no parse, analysis, oracle, profile, or transform ran), "warm"
	// (compiled fresh, but oracle/profile replayed from the disk cache),
	// "cold" (full pipeline).
	Cache string `json:"cache,omitempty"`
	// AnalysisSpans counts the analysis stages this request actually ran
	// (compile + oracle + profile + DOMORE transform). Hot is exactly 0.
	AnalysisSpans int64 `json:"analysis_spans"`
	Regions       int   `json:"regions,omitempty"`
	DurationNs    int64 `json:"duration_ns"`
	// Misspecs is the exact misspeculation count the request's trace
	// recorder observed (0 when tracing is disabled).
	Misspecs int64  `json:"misspecs,omitempty"`
	Error    string `json:"error,omitempty"`
}

// spans tallies the analysis stages one request ran.
type spans struct{ compile, oracle, profile, plan int64 }

func (st *spans) total() int64 { return st.compile + st.oracle + st.profile + st.plan }

// program is the in-memory (hot) cache for one source hash: the live
// compiled IR plus every derived artifact, built at most once and shared
// read-only by concurrent invocations.
type program struct {
	hash string
	runs atomic.Int64

	mu         sync.Mutex
	compiled   *core.Compiled
	compileErr error
	facts      []core.RegionFacts
	xdepHash   string
	lintClean  bool
	oracleDone bool
	oracle     uint64
	regions    map[int]*regionPlan
}

// regionPlan caches per-region derived artifacts. The DOMORE transform is
// immutable after construction (Bind makes per-run state) and the profile
// is a pure value, so both are safe to share across invocations.
type regionPlan struct {
	mu   sync.Mutex
	par  *mtcg.Parallelized
	prof map[signature.Kind]*speccross.ProfileResult
	seed *plancache.AdaptiveSeed
}

type programInfo struct {
	SourceHash string `json:"source_hash"`
	Regions    int    `json:"regions"`
	Runs       int64  `json:"runs"`
	OracleHot  bool   `json:"oracle_hot"`
}

func (s *Server) program(src string) *program {
	hash := core.SourceHash(src)
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.programs[hash]
	if !ok {
		p = &program{hash: hash, regions: map[int]*regionPlan{}}
		s.programs[hash] = p
	}
	return p
}

func (s *Server) programInfos() []programInfo {
	s.mu.Lock()
	progs := make([]*program, 0, len(s.programs))
	for _, p := range s.programs {
		progs = append(progs, p)
	}
	s.mu.Unlock()
	out := make([]programInfo, 0, len(progs))
	for _, p := range progs {
		p.mu.Lock()
		info := programInfo{SourceHash: p.hash, Runs: p.runs.Load(), OracleHot: p.oracleDone}
		if p.compiled != nil {
			info.Regions = len(p.compiled.Regions)
		}
		p.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SourceHash < out[j].SourceHash })
	return out
}

// ensureCompiled parses and analyzes the program once per daemon lifetime
// (sticky error: a program that does not compile never recompiles).
func (p *program) ensureCompiled(s *Server, src string, st *spans) (*core.Compiled, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.compiled == nil && p.compileErr == nil {
		c, err := core.Compile(src)
		st.compile++
		s.spanCompile.Add(1)
		if err != nil {
			p.compileErr = err
		} else {
			p.compiled = c
			p.facts = c.Facts()
			p.xdepHash = c.XDep().Hash()
			p.lintClean = !c.Lint().HasErrors()
		}
	}
	return p.compiled, p.compileErr
}

func (p *program) region(idx int) *regionPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	rp, ok := p.regions[idx]
	if !ok {
		rp = &regionPlan{prof: map[signature.Kind]*speccross.ProfileResult{}}
		p.regions[idx] = rp
	}
	return rp
}

// adopt tries to fill the in-memory gaps (oracle, profile, adaptive seed)
// from the disk cache. Verify-on-load: an entry is adopted only when the
// freshly compiled program re-passes the analysis/verify gates (lint
// clean) and the entry's shape matches the compiled region count — on any
// doubt it is ignored and the cold path recomputes. Returns whether the
// disk entry supplied anything.
func (s *Server) adopt(p *program, rp *regionPlan, key plancache.Key, kind signature.Kind) bool {
	p.mu.Lock()
	needOracle := !p.oracleDone
	p.mu.Unlock()
	needProf := false
	if rp != nil {
		rp.mu.Lock()
		needProf = rp.prof[kind] == nil
		rp.mu.Unlock()
	}
	if !needOracle && !needProf {
		return false // fully hot; don't touch disk
	}
	plan, ok := s.store.Get(key)
	if !ok {
		return false
	}
	p.mu.Lock()
	valid := p.compiled != nil && p.lintClean && plan.Regions == len(p.compiled.Regions) &&
		// Verify-on-load for the static verdict: the plan's echoed facts
		// hash must match a fresh analyzer run. The fingerprint already
		// keys on the hash, so a mismatch here means a tampered or
		// colliding entry — recompute rather than trust it.
		(plan.XDepHash == "" || plan.XDepHash == p.xdepHash)
	if valid && needOracle {
		p.oracle = plan.SeqChecksum
		p.oracleDone = true
	}
	p.mu.Unlock()
	if !valid {
		return false
	}
	if rp != nil {
		rp.mu.Lock()
		if plan.Profile != nil && rp.prof[kind] == nil {
			rp.prof[kind] = fromCacheProfile(plan.Profile)
		}
		if rp.seed == nil {
			rp.seed = plan.Adaptive
		}
		rp.mu.Unlock()
	}
	return true
}

// ensureOracle computes (once) the sequential oracle checksum.
func (p *program) ensureOracle(s *Server, c *core.Compiled, st *spans) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.oracleDone {
		sum, err := c.Oracle()
		st.oracle++
		s.spanOracle.Add(1)
		if err != nil {
			return 0, err
		}
		p.oracle = sum
		p.oracleDone = true
	}
	return p.oracle, nil
}

// ensureProfile computes (once per signature kind) the §4.4 conflict
// profile for the region.
func (rp *regionPlan) ensureProfile(s *Server, c *core.Compiled, regionIdx int, kind signature.Kind, st *spans) (*speccross.ProfileResult, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.prof[kind] == nil {
		region, err := c.Region(regionIdx)
		if err != nil {
			return nil, err
		}
		pr, err := c.ProfileRegion(region, kind)
		st.profile++
		s.spanProfile.Add(1)
		if err != nil {
			return nil, err
		}
		rp.prof[kind] = &pr
	}
	return rp.prof[kind], nil
}

// ensureDomorePlan builds (once) the verified DOMORE transform.
func (rp *regionPlan) ensureDomorePlan(s *Server, c *core.Compiled, regionIdx int, st *spans) (*mtcg.Parallelized, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.par == nil {
		region, err := c.Region(regionIdx)
		if err != nil {
			return nil, err
		}
		par, err := c.PlanDOMORE(region)
		st.plan++
		s.spanPlan.Add(1)
		if err != nil {
			return nil, err
		}
		rp.par = par
	}
	return rp.par, nil
}

func sigKind(name string) (signature.Kind, bool) {
	switch name {
	case "", "range":
		return signature.Range, true
	case "bloom":
		return signature.Bloom, true
	case "exact":
		return signature.Exact, true
	}
	return 0, false
}

func sigName(k signature.Kind) string {
	switch k {
	case signature.Bloom:
		return "bloom"
	case signature.Exact:
		return "exact"
	default:
		return "range"
	}
}

func toCacheProfile(pr *speccross.ProfileResult) *plancache.Profile {
	cp := &plancache.Profile{
		Tasks: pr.Tasks, Epochs: pr.Epochs,
		Conflicts: pr.Conflicts, MinDistance: pr.MinDistance,
	}
	if len(pr.PerLoop) > 0 {
		cp.PerLoop = make(map[string]int64, len(pr.PerLoop))
		for k, v := range pr.PerLoop {
			cp.PerLoop[k] = v
		}
	}
	return cp
}

func fromCacheProfile(cp *plancache.Profile) *speccross.ProfileResult {
	pr := &speccross.ProfileResult{
		Tasks: cp.Tasks, Epochs: cp.Epochs,
		Conflicts: cp.Conflicts, MinDistance: cp.MinDistance,
		PerLoop: map[string]int64{},
	}
	for k, v := range cp.PerLoop {
		pr.PerLoop[k] = v
	}
	return pr
}

func toCacheFacts(fs []core.RegionFacts) []plancache.RegionFacts {
	out := make([]plancache.RegionFacts, len(fs))
	for i, f := range fs {
		out[i] = plancache.RegionFacts{
			Var: f.Var, Pos: f.Pos, AdvisorPlan: f.AdvisorPlan,
			InnerClasses:    append([]string(nil), f.InnerClasses...),
			CrossInvDeps:    f.CrossInvDeps,
			XDepClass:       f.XDepClass,
			XDepMinDistance: f.XDepMinDistance,
			XDepMaxDistance: f.XDepMaxDistance,
		}
	}
	return out
}

// putPlan persists every artifact the request left in memory. Best
// effort: a failed write degrades the next restart to cold, nothing else.
func (s *Server) putPlan(p *program, rp *regionPlan, key plancache.Key, kind signature.Kind, regionIdx, workers, window int) {
	p.mu.Lock()
	plan := plancache.Plan{
		SeqChecksum: p.oracle,
		Regions:     len(p.compiled.Regions),
		RegionIndex: regionIdx,
		Facts:       toCacheFacts(p.facts),
		XDepHash:    p.xdepHash,
		LintClean:   p.lintClean,
	}
	p.mu.Unlock()
	if rp != nil {
		rp.mu.Lock()
		if pr := rp.prof[kind]; pr != nil {
			plan.Profile = toCacheProfile(pr)
			if _, profitable := pr.Recommended(workers); profitable {
				plan.Engine = "speccross"
			} else {
				plan.Engine = "domore"
			}
			if window <= 0 {
				window = 32
			}
			plan.Adaptive = &plancache.AdaptiveSeed{Start: plan.Engine, Window: window}
		}
		rp.mu.Unlock()
	}
	_ = s.store.Put(key, plan)
}

// Execute runs one invocation through the cache-aware dispatch and
// returns the response plus its HTTP status. It is exported for
// in-process callers (tests, the bench harness); handleRun wraps it with
// admission control. In-process invocations get the same request-scoped
// tracing the HTTP path does (flight-recorder retention included).
//
// Status mapping: 400 malformed request, 422 the program itself cannot
// compile or be parallelized as asked (the daemon is healthy), 500 an
// engine failed or verification against the oracle mismatched.
func (s *Server) Execute(req *RunRequest) (*RunResponse, int) {
	inv := s.beginInvocation()
	resp, status := s.execute(req, inv)
	s.finishInvocation(inv, req, resp, status)
	return resp, status
}

// ExecuteTraced is Execute plus the invocation's full event capture,
// snapshotted before the recorder is recycled — what the Chrome-export
// golden test and in-process trace consumers use. events is nil when
// tracing is disabled.
func (s *Server) ExecuteTraced(req *RunRequest) (resp *RunResponse, status int, events []trace.Event) {
	inv := s.beginInvocation()
	resp, status = s.execute(req, inv)
	// Close the root here so the capture contains the complete tree; the
	// zeroed Span makes finishInvocation's End a no-op. Copy the events:
	// they may alias live ring storage, and the recorder is about to be
	// recycled for another request.
	inv.root.End()
	inv.root = trace.Span{}
	if evs := inv.rec.Events(); evs != nil {
		events = append([]trace.Event(nil), evs...)
	}
	s.finishInvocation(inv, req, resp, status)
	return resp, status, events
}

// execute is the dispatch body: every stage is wrapped in a request-lane
// span parented under inv's root, and engines write to inv's recorder.
func (s *Server) execute(req *RunRequest, inv *invocation) (*RunResponse, int) {
	start := time.Now()
	resp := &RunResponse{Invocation: inv.id}
	fail := func(status int, format string, args ...any) (*RunResponse, int) {
		resp.Error = fmt.Sprintf(format, args...)
		resp.DurationNs = time.Since(start).Nanoseconds()
		return resp, status
	}

	if req.Source == "" {
		return fail(400, "empty source")
	}
	mode := req.Mode
	if mode == "" {
		mode = "auto"
	}
	switch mode {
	case "seq", "barrier", "domore", "domore-sharded", "speccross", "adaptive", "auto":
	default:
		return fail(400, "unknown mode %q", mode)
	}
	kind, ok := sigKind(req.Sig)
	if !ok {
		return fail(400, "unknown signature kind %q", req.Sig)
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}

	p := s.program(req.Source)
	p.runs.Add(1)
	st := &spans{}
	csp := inv.span(trace.SpanCompile)
	c, err := p.ensureCompiled(s, req.Source, st)
	csp.End()
	if err != nil {
		resp.AnalysisSpans = st.total()
		return fail(422, "compile: %v", err)
	}
	resp.Regions = len(c.Regions)

	regionIdx := req.Region
	if regionIdx < 0 {
		regionIdx = len(c.Regions) - 1
		if regionIdx < 0 {
			regionIdx = 0
		}
	}
	p.mu.Lock()
	xdepHash := p.xdepHash
	p.mu.Unlock()
	key := plancache.Key{
		SourceHash:  p.hash,
		Fingerprint: plancache.Fingerprint(core.PipelineVersion, regionIdx, sigName(kind), xdepHash),
	}

	// Sequential mode is its own oracle: run, record, done.
	if mode == "seq" {
		env, rerr := c.RunSequential()
		if rerr != nil {
			return fail(422, "sequential: %v", rerr)
		}
		sum := env.Checksum()
		p.mu.Lock()
		freshOracle := !p.oracleDone
		if freshOracle {
			p.oracle = sum
			p.oracleDone = true
		}
		p.mu.Unlock()
		if freshOracle {
			s.putPlan(p, nil, key, kind, regionIdx, workers, req.Window)
		}
		resp.OK = true
		resp.Engine = "seq"
		resp.Checksum = sum
		resp.SeqChecksum = sum
		resp.Cache = cacheLabel(st, false)
		s.countCache(resp.Cache)
		resp.AnalysisSpans = st.total()
		resp.DurationNs = time.Since(start).Nanoseconds()
		return resp, 200
	}

	region, err := c.Region(regionIdx)
	if err != nil {
		return fail(422, "region %d: %v", regionIdx, err)
	}
	rp := p.region(regionIdx)
	lsp := inv.span(trace.SpanCacheLookup)
	diskHit := s.adopt(p, rp, key, kind)
	lsp.End()

	osp := inv.span(trace.SpanOracle)
	oracle, err := p.ensureOracle(s, c, st)
	osp.End()
	if err != nil {
		resp.AnalysisSpans = st.total()
		return fail(422, "oracle: %v", err)
	}

	// profile wraps ensureProfile in its span; all three call sites (auto
	// dispatch, speccross, adaptive seeding) go through it.
	profile := func() (*speccross.ProfileResult, error) {
		psp := inv.span(trace.SpanProfile)
		defer psp.End()
		return rp.ensureProfile(s, c, regionIdx, kind, st)
	}

	engine := mode
	if mode == "auto" {
		pr, perr := profile()
		if perr != nil {
			resp.AnalysisSpans = st.total()
			return fail(422, "profile: %v", perr)
		}
		if _, profitable := pr.Recommended(workers); profitable {
			engine = "speccross"
		} else {
			engine = "domore"
		}
	}

	var sum uint64
	var rerr error
	esp := inv.span(trace.SpanExecute)
	switch engine {
	case "barrier":
		res, e := c.RunBarriersTraced(region, workers, inv.rec)
		if e != nil {
			rerr = e
		} else {
			sum = res.Env.Checksum()
		}
	case "domore":
		psp := inv.span(trace.SpanPlan)
		par, e := rp.ensureDomorePlan(s, c, regionIdx, st)
		psp.End()
		if e != nil {
			esp.End()
			resp.AnalysisSpans = st.total()
			return fail(422, "domore plan: %v", e)
		}
		res, e := c.RunDOMOREPlanned(par, region, domore.Options{Workers: workers, Trace: inv.rec})
		if e != nil {
			rerr = e
		} else {
			sum = res.Env.Checksum()
		}
	case "domore-sharded":
		psp := inv.span(trace.SpanPlan)
		par, e := rp.ensureDomorePlan(s, c, regionIdx, st)
		psp.End()
		if e != nil {
			esp.End()
			resp.AnalysisSpans = st.total()
			return fail(422, "domore plan: %v", e)
		}
		res, e := c.RunDOMOREShardedPlanned(par, region, domore.Options{Workers: workers, Trace: inv.rec})
		if e != nil {
			rerr = e
		} else {
			sum = res.Env.Checksum()
		}
	case "speccross":
		pr, e := profile()
		if e != nil {
			esp.End()
			resp.AnalysisSpans = st.total()
			return fail(422, "profile: %v", e)
		}
		scfg := speccross.Config{
			Workers: workers, SigKind: kind,
			Trace:             inv.rec,
			ForceMisspecEpoch: req.Misspec,
		}
		res, e := c.RunSpecCrossProfiled(region, scfg, *pr)
		if e != nil {
			rerr = e
		} else {
			sum = res.Env.Checksum()
		}
	case "adaptive":
		cfg := adaptive.Config{Workers: workers, Window: req.Window}
		if cfg.Window <= 0 {
			rp.mu.Lock()
			if rp.seed != nil {
				cfg.Window = rp.seed.Window
			}
			rp.mu.Unlock()
		}
		cfg.Spec.SigKind = kind
		cfg.Spec.ForceMisspecEpoch = req.Misspec
		cfg.Trace = inv.rec
		cfg.SpanParent = esp.ID()
		cfg.OnDecision = func(d adaptive.Decision) {
			e := obs.DecisionFromAudit(inv.id, d)
			s.decisions.Append(e)
			inv.decisions = append(inv.decisions, e)
		}
		// Static facts seed first. A provably-DOALL region ("none") pins
		// barrier-free speculation and the §4.4 profiling pass is skipped
		// outright — there is no dependence to profile. Otherwise the
		// static seed is a prior the dynamic profile refines.
		var fclass string
		var fdist int64
		p.mu.Lock()
		if regionIdx < len(p.facts) {
			fclass = p.facts[regionIdx].XDepClass
			fdist = p.facts[regionIdx].XDepMinDistance
		}
		p.mu.Unlock()
		cfg.SeedFromFacts(fclass, fdist)
		if fclass != "none" {
			pr, e := profile()
			if e != nil {
				esp.End()
				resp.AnalysisSpans = st.total()
				return fail(422, "profile: %v", e)
			}
			cfg.SeedFromProfile(pr.MinDistance, workers)
		}
		res, e := c.RunAdaptive(region, cfg)
		if e != nil {
			rerr = e
		} else {
			sum = res.Env.Checksum()
		}
	}
	esp.End()
	resp.AnalysisSpans = st.total()
	if rerr != nil {
		// Construction failures (e.g. no DOMORE view for this region shape)
		// and execution faults are properties of the program, not the
		// daemon: 422, like a compile error.
		return fail(422, "%s: %v", engine, rerr)
	}
	if sum != oracle {
		return fail(500, "%s checksum %x != sequential oracle %x", engine, sum, oracle)
	}

	if st.oracle > 0 || st.profile > 0 {
		s.putPlan(p, rp, key, kind, regionIdx, workers, req.Window)
	}

	resp.OK = true
	resp.Engine = engine
	resp.Checksum = sum
	resp.SeqChecksum = oracle
	resp.Cache = cacheLabel(st, diskHit)
	s.countCache(resp.Cache)
	resp.DurationNs = time.Since(start).Nanoseconds()
	return resp, 200
}

// cacheLabel classifies the dispatch path this request took. The DOMORE
// transform holds live IR pointers and is rebuilt per process, so a warm
// (post-restart) invocation may re-plan; what warm never repeats is the
// oracle run and the profiling pass.
func cacheLabel(st *spans, diskHit bool) string {
	switch {
	case st.compile == 0 && st.oracle == 0 && st.profile == 0 && st.plan == 0:
		return "hot"
	case diskHit && st.oracle == 0 && st.profile == 0:
		return "warm"
	default:
		return "cold"
	}
}

// bump the cache-path counters once classified.
func (s *Server) countCache(label string) {
	switch label {
	case "hot":
		s.cacheHot.Add(1)
	case "warm":
		s.cacheWarm.Add(1)
	default:
		s.cacheCold.Add(1)
	}
}

// Package daemon is crossinvd's engine room: a long-running service that
// accepts many concurrent program invocations over HTTP+JSON and serves
// them hot from a content-addressed plan/profile cache. It is the paper's
// premise — amortize analysis across invocations — applied at service
// scale: the first invocation of a program pays parse, dependence
// analysis, the sequential oracle, and the §4.4 profiling pass; every
// repeat skips all of it (internal/plancache persists the serializable
// artifacts across restarts, an in-memory program cache keeps the live IR
// and transforms hot within one).
//
// Surface:
//
//	POST /run      execute a program under one engine (JSON in/out)
//	GET  /plans    list cached plans (disk entries + hot programs)
//	GET  /healthz  liveness + admission state; 503 while draining
//	/metrics, /summary, /debug/pprof/  — the internal/obs mux
//
// Concurrency contract: a shared worker budget with admission control —
// at most MaxInFlight invocations execute, at most QueueDepth more wait
// (bounded, with timeout), the rest are rejected 429 immediately. Each
// admitted invocation gets its own environment and trace recorder
// (per-request isolation; the compiled IR and transforms are shared
// read-only). Shutdown drains gracefully: stop admitting, finish every
// in-flight invocation, flush the cache.
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"crossinv/internal/obs"
	"crossinv/internal/plancache"
	"crossinv/internal/runtime/trace"
)

// Config tunes the daemon.
type Config struct {
	// CacheDir roots the on-disk plan cache (required).
	CacheDir string
	// MaxInFlight bounds concurrently executing invocations (default 8).
	MaxInFlight int
	// QueueDepth bounds invocations waiting for an execution slot; the
	// QueueDepth+1'th concurrent waiter is rejected 429 without waiting
	// (default 2×MaxInFlight).
	QueueDepth int
	// QueueTimeout bounds how long a queued invocation waits before a 429
	// (default 2s).
	QueueTimeout time.Duration
	// DefaultWorkers is the engine worker count when a request does not
	// name one (default 4).
	DefaultWorkers int
	// FlightDir is where the flight recorder writes dump artifacts; empty
	// keeps dumps in-memory only (the /debug/flightrec window still works).
	FlightDir string
	// LatencyBudget arms the flight recorder's p99 trigger (see
	// obs.FlightConfig.LatencyBudget); zero disables it.
	LatencyBudget time.Duration
	// TraceRingCap sizes each per-invocation recorder's event rings
	// (default 4096 — smaller than trace.DefaultRingCap because recorders
	// are pooled per request, not per process).
	TraceRingCap int
	// DisableTracing turns off request-scoped recorders entirely: no
	// spans, no flight-recorder event retention, engines run untraced.
	// The overhead benchmark's baseline; not recommended in production.
	DisableTracing bool
}

func (c *Config) fill() error {
	if c.CacheDir == "" {
		return fmt.Errorf("daemon: Config.CacheDir is required")
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxInFlight
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 4
	}
	if c.TraceRingCap <= 0 {
		c.TraceRingCap = 4096
	}
	return nil
}

// Server is the daemon state. Create with New, serve with Serve, stop
// with Shutdown.
type Server struct {
	cfg   Config
	store *plancache.Store

	// rec is the daemon-lifetime recorder behind /metrics — engines do
	// not write to it (each invocation gets a private recorder); it
	// exists so the obs mux has a live registry to decorate with the
	// daemon's own counters and the plan cache's.
	rec *trace.Recorder

	// Request-scoped observability: invSeq stamps invocation ids, recPool
	// recycles per-request recorders (Reset between uses), decisions is
	// the adaptive-controller journal behind /debug/decisions, flight the
	// always-on anomaly recorder behind /debug/flightrec.
	invSeq    atomic.Int64
	recPool   sync.Pool
	decisions *obs.DecisionLog
	flight    *obs.FlightRecorder

	mu       sync.Mutex
	programs map[string]*program

	inflight chan struct{}
	waiting  atomic.Int64
	running  atomic.Int64
	draining atomic.Bool
	done     chan struct{}
	// drainMu orders request registration (wg.Add under RLock, refused
	// once draining) against Shutdown (sets draining under Lock, then
	// wg.Wait) — without it, an Add could race Wait at counter zero.
	drainMu      sync.RWMutex
	wg           sync.WaitGroup
	shutdownOnce sync.Once
	shutdownErr  error
	drained      chan struct{}

	admitted        atomic.Int64
	completed       atomic.Int64
	failed          atomic.Int64
	rejectedFull    atomic.Int64
	rejectedTimeout atomic.Int64
	rejectedDrain   atomic.Int64

	// Analysis-span counters: how many times each cold-path stage
	// actually ran. The warm-path acceptance test pins these exactly —
	// a round of cache hits must not move any of them.
	spanCompile atomic.Int64
	spanOracle  atomic.Int64
	spanProfile atomic.Int64
	spanPlan    atomic.Int64 // DOMORE partition/slice/MTCG pipeline

	cacheHot  atomic.Int64
	cacheWarm atomic.Int64
	cacheCold atomic.Int64

	// Checker pre-filter totals across all invocations, accumulated from
	// each request recorder at finish. The hit rate is the cheap
	// checker-pressure signal the adaptive monitor samples per window;
	// these daemon-lifetime sums are its /metrics aggregate. Zero when
	// tracing is disabled.
	prefilterChecks atomic.Int64
	prefilterHits   atomic.Int64
}

// New opens the plan cache and builds a server.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	store, err := plancache.Open(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		store:     store,
		rec:       trace.NewRecorder(),
		programs:  map[string]*program{},
		inflight:  make(chan struct{}, cfg.MaxInFlight),
		done:      make(chan struct{}),
		drained:   make(chan struct{}),
		decisions: obs.NewDecisionLog(0),
		flight: obs.NewFlightRecorder(obs.FlightConfig{
			Dir:           cfg.FlightDir,
			LatencyBudget: cfg.LatencyBudget,
		}),
	}
	s.recPool.New = func() any { return trace.NewRecorderCap(cfg.TraceRingCap) }
	return s, nil
}

// Decisions exposes the adaptive-decision journal (tests, in-process
// embedders).
func (s *Server) Decisions() *obs.DecisionLog { return s.decisions }

// Flight exposes the flight recorder (tests, in-process embedders).
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Store exposes the plan cache (tests and /plans).
func (s *Server) Store() *plancache.Store { return s.store }

// Handler builds the daemon's full HTTP surface: the obs mux (metrics,
// summary, pprof) decorated with daemon gauges, plus /run, /plans, and
// /healthz.
func (s *Server) Handler() http.Handler {
	mux := obs.NewMux(s.rec, s.decorate)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/plans", s.handlePlans)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/decisions", s.decisions.Handler())
	mux.HandleFunc("/debug/flightrec", s.flight.Handler())
	return mux
}

// Serve accepts connections on ln until Shutdown. A clean shutdown
// returns nil.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	go func() {
		<-s.done
		// Drain: stop accepting but let every active connection finish its
		// response — an accepted invocation is never dropped mid-flight.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Shutdown drains the daemon: stop admitting (healthz flips to 503, /run
// answers 503), wait for every in-flight invocation to complete, flush
// the plan cache, and release the listener. Idempotent; every caller
// blocks until the drain is complete.
func (s *Server) Shutdown() error {
	s.shutdownOnce.Do(func() {
		s.drainMu.Lock()
		s.draining.Store(true)
		s.drainMu.Unlock()
		close(s.done)
		s.wg.Wait()
		s.shutdownErr = s.store.Flush()
		close(s.drained)
	})
	<-s.drained
	return s.shutdownErr
}

// beginRequest registers a request with the drain tracker. It returns
// false once draining: the caller must answer 503 without executing.
func (s *Server) beginRequest() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.wg.Add(1)
	return true
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Counters snapshots the daemon metrics (the same numbers /metrics
// exports), merged with the plan cache's.
func (s *Server) Counters() map[string]int64 {
	out := s.store.Counters()
	out["daemon.admitted"] = s.admitted.Load()
	out["daemon.completed"] = s.completed.Load()
	out["daemon.failed"] = s.failed.Load()
	out["daemon.rejected.queue_full"] = s.rejectedFull.Load()
	out["daemon.rejected.timeout"] = s.rejectedTimeout.Load()
	out["daemon.rejected.draining"] = s.rejectedDrain.Load()
	out["daemon.span.compile"] = s.spanCompile.Load()
	out["daemon.span.oracle"] = s.spanOracle.Load()
	out["daemon.span.profile"] = s.spanProfile.Load()
	out["daemon.span.plan"] = s.spanPlan.Load()
	out["daemon.cache.hot"] = s.cacheHot.Load()
	out["daemon.cache.warm"] = s.cacheWarm.Load()
	out["daemon.cache.cold"] = s.cacheCold.Load()
	out["checker.prefilter.checks"] = s.prefilterChecks.Load()
	out["checker.prefilter.hits"] = s.prefilterHits.Load()
	for name, v := range s.flight.Counters() {
		out[name] = v
	}
	return out
}

// decorate injects the daemon counters and gauges into each /metrics
// scrape's registry.
func (s *Server) decorate(g *trace.Registry) {
	for name, v := range s.Counters() {
		g.AddCounter(name, v)
	}
	g.SetGauge("daemon.inflight", float64(s.running.Load()))
	g.SetGauge("daemon.waiting", float64(s.waiting.Load()))
	if s.draining.Load() {
		g.SetGauge("daemon.draining", 1)
	} else {
		g.SetGauge("daemon.draining", 0)
	}
}

// admitErr classifies an admission rejection. timeout marks the
// queue-timeout flavor, which doubles as a flight-recorder trigger: a
// request waiting out the full queue timeout means the daemon has been
// saturated for that long, which is exactly when an operator wants a
// window snapshot.
type admitErr struct {
	status  int
	msg     string
	timeout bool
}

func (e *admitErr) Error() string { return e.msg }

// admit acquires an execution slot under the shared worker budget, or
// rejects: 503 while draining, 429 when the wait queue is full or the
// queue timeout expires. On success the returned release func must be
// called when the invocation finishes.
func (s *Server) admit() (release func(), aerr *admitErr) {
	if s.draining.Load() {
		s.rejectedDrain.Add(1)
		return nil, &admitErr{status: http.StatusServiceUnavailable, msg: "daemon is draining"}
	}
	release = func() {
		s.running.Add(-1)
		<-s.inflight
	}
	select {
	case s.inflight <- struct{}{}:
		// Fast path: a slot was free. Even if draining flips now, this
		// invocation was accepted and will run to completion.
		s.admitted.Add(1)
		s.running.Add(1)
		return release, nil
	default:
	}
	// Queue path: bounded waiters, bounded wait.
	if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		s.rejectedFull.Add(1)
		return nil, &admitErr{status: http.StatusTooManyRequests, msg: "admission queue full"}
	}
	defer s.waiting.Add(-1)
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.inflight <- struct{}{}:
		if s.draining.Load() {
			// Drain began while queued: this invocation was never
			// accepted, so bounce it rather than prolong the drain.
			<-s.inflight
			s.rejectedDrain.Add(1)
			return nil, &admitErr{status: http.StatusServiceUnavailable, msg: "daemon is draining"}
		}
		s.admitted.Add(1)
		s.running.Add(1)
		return release, nil
	case <-timer.C:
		s.rejectedTimeout.Add(1)
		return nil, &admitErr{status: http.StatusTooManyRequests, msg: "admission queue timeout", timeout: true}
	case <-s.done:
		s.rejectedDrain.Add(1)
		return nil, &admitErr{status: http.StatusServiceUnavailable, msg: "daemon is draining"}
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RunRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &RunResponse{Error: "bad request: " + err.Error()})
		return
	}

	if !s.beginRequest() {
		s.rejectedDrain.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, &RunResponse{Error: "daemon is draining"})
		return
	}
	defer s.wg.Done()

	inv := s.beginInvocation()
	adm := inv.span(trace.SpanAdmission)
	release, aerr := s.admit()
	adm.End()
	if aerr != nil {
		if aerr.timeout {
			s.flight.RecordTrigger(obs.TriggerAdmissionTimeout, aerr.msg, inv.id)
		}
		resp := &RunResponse{Invocation: inv.id, Error: aerr.msg}
		s.finishInvocation(inv, &req, resp, aerr.status)
		writeJSON(w, aerr.status, resp)
		return
	}
	defer release()

	resp, status := s.execute(&req, inv)
	s.finishInvocation(inv, &req, resp, status)
	if status >= 500 || (status >= 400 && status != http.StatusUnprocessableEntity) {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	writeJSON(w, status, resp)
}

// PlansSchema versions the /plans document.
const PlansSchema = "crossinv-plans/v1"

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	type plansDoc struct {
		Schema   string           `json:"schema"`
		Entries  []plancache.Info `json:"entries"`
		Programs []programInfo    `json:"programs"`
		Counters map[string]int64 `json:"counters"`
	}
	doc := plansDoc{
		Schema:   PlansSchema,
		Entries:  s.store.List(),
		Programs: s.programInfos(),
		Counters: s.Counters(),
	}
	writeJSON(w, http.StatusOK, &doc)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status   string `json:"status"`
		InFlight int64  `json:"inflight"`
		Waiting  int64  `json:"waiting"`
		Admitted int64  `json:"admitted"`
		Programs int    `json:"programs"`
	}
	h := health{
		Status:   "ok",
		InFlight: s.running.Load(),
		Waiting:  s.waiting.Load(),
		Admitted: s.admitted.Load(),
	}
	s.mu.Lock()
	h.Programs = len(s.programs)
	s.mu.Unlock()
	status := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, &h)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

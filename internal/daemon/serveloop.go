package daemon

import (
	"net"
	"net/http"
	"sync/atomic"

	"crossinv/internal/obs"
	"crossinv/internal/runtime/trace"
)

// ServeWorkloadLoop is the `crossinv -serve` mode folded onto the daemon
// internals: one observability surface (the internal/obs mux, same as the
// daemon's Handler) on an existing listener, while the caller's workload
// re-runs in a loop on this goroutine. The recorder's counters accumulate
// across runs — the monotone series Prometheus counters expect — and the
// serve.runs gauge reports completed iterations. runs == 0 loops until
// the process is killed; otherwise the listener closes after the last
// run.
func ServeWorkloadLoop(ln net.Listener, runs int, rec *trace.Recorder, runOnce func()) error {
	var completed atomic.Int64
	mux := obs.NewMux(rec, func(g *trace.Registry) {
		g.SetGauge("serve.runs", float64(completed.Load()))
	})
	go func() {
		// http.Serve always returns a non-nil error once the listener
		// closes; that is the loop's normal shutdown, not a failure.
		_ = http.Serve(ln, mux)
	}()
	for i := 0; runs == 0 || i < runs; i++ {
		runOnce()
		completed.Add(1)
	}
	return ln.Close()
}

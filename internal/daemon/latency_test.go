package daemon

import (
	"sort"
	"testing"
	"time"

	"crossinv/internal/raceflag"
)

// TestWarmBeatsColdLatency pins the acceptance criterion: over the
// examples corpus, the warm path (daemon restart over a populated plan
// cache — recompiles, but replays the oracle checksum and §4.4 profile)
// must have at least 2× better median invocation latency than the cold
// path (full pipeline). Skipped under the race detector: the 10–20×
// instrumentation slowdown makes wall-clock assertions meaningless.
func TestWarmBeatsColdLatency(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("wall-clock assertion; race instrumentation distorts timing")
	}
	examples := map[string]string{}
	for name, src := range corpus(t) {
		if name == "cg.lnl" || name == "stencil.lnl" {
			examples[name] = src
		}
	}
	if len(examples) != 2 {
		t.Fatalf("examples corpus incomplete: %v", examples)
	}

	var coldNs, warmNs []int64
	const rounds = 3
	for r := 0; r < rounds; r++ {
		dir := t.TempDir()
		cold, err := New(Config{CacheDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		for name, src := range examples {
			start := time.Now()
			resp, status := cold.Execute(&RunRequest{Source: src, Mode: "speccross", Workers: 4})
			if status != 200 {
				t.Fatalf("%s cold: %d %s", name, status, resp.Error)
			}
			if resp.Cache != "cold" {
				t.Fatalf("%s first run classified %q", name, resp.Cache)
			}
			coldNs = append(coldNs, time.Since(start).Nanoseconds())
		}
		if err := cold.Shutdown(); err != nil {
			t.Fatal(err)
		}

		warm, err := New(Config{CacheDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		for name, src := range examples {
			start := time.Now()
			resp, status := warm.Execute(&RunRequest{Source: src, Mode: "speccross", Workers: 4})
			if status != 200 {
				t.Fatalf("%s warm: %d %s", name, status, resp.Error)
			}
			if resp.Cache != "warm" {
				t.Fatalf("%s restart run classified %q", name, resp.Cache)
			}
			warmNs = append(warmNs, time.Since(start).Nanoseconds())
		}
		if err := warm.Shutdown(); err != nil {
			t.Fatal(err)
		}
	}

	cp50, wp50 := median(coldNs), median(warmNs)
	t.Logf("cold p50 %v, warm p50 %v (%.1fx)", time.Duration(cp50), time.Duration(wp50), float64(cp50)/float64(wp50))
	if cp50 < 2*wp50 {
		t.Errorf("warm p50 %v not ≥2x better than cold p50 %v", time.Duration(wp50), time.Duration(cp50))
	}
}

func median(ns []int64) int64 {
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

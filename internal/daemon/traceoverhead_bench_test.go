package daemon

import (
	"path/filepath"
	"testing"
)

// benchTraceOverhead times the hot path (in-memory program cache, zero
// analysis spans) with request tracing on or off. Paired with
// internal/bench's daemon/trace.{off,on} cells and TestTraceOverheadGate;
// this benchmark is the precise single-process view:
//
//	go test ./internal/daemon/ -run '^$' -bench BenchmarkTrace
func benchTraceOverhead(b *testing.B, disable bool) {
	s, err := New(Config{
		CacheDir:       filepath.Join(b.TempDir(), "cache"),
		DefaultWorkers: 4,
		DisableTracing: disable,
	})
	if err != nil {
		b.Fatal(err)
	}
	req := &RunRequest{Source: benchProgram, Mode: "speccross", Workers: 4}
	s.Execute(req) // cold: compile + analyze + fill cache
	s.Execute(req) // first hot hit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp, status := s.Execute(req); status != 200 {
			b.Fatal(resp.Error)
		}
	}
}

const benchProgram = `
func cg() {
  var S[40], E[40], C[120], IDX[400]
  parfor p = 0 .. 40 { S[p] = p * 9 % 300 }
  parfor q = 0 .. 40 { E[q] = S[q] % 300 + 9 }
  parfor z = 0 .. 400 { IDX[z] = z * 17 % 120 }
  for i = 0 .. 40 {
    start = S[i] % 391
    end = start + 9
    parfor j = start .. end {
      C[IDX[j]] = C[IDX[j]] * 3 + j + 1
    }
  }
}
`

func BenchmarkTraceOff(b *testing.B) { benchTraceOverhead(b, true) }
func BenchmarkTraceOn(b *testing.B)  { benchTraceOverhead(b, false) }

package daemon

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crossinv/internal/core"
	"crossinv/internal/plancache"
)

// corpus loads every LNL program the repo ships: the examples plus the
// core test corpus.
func corpus(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, dir := range []string{"../../examples/compiler", "../../internal/core/testdata"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".lnl" {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = string(raw)
		}
	}
	if len(out) < 4 {
		t.Fatalf("corpus too small: %d programs", len(out))
	}
	return out
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Shutdown() })
	return s
}

// allModes runs on every corpus program, including under -race: the §4.4
// profiling pass is windowed to the checkpoint period and distance-pruned
// (speccross.DefaultProfileWindow), so no corpus program's cold profile is
// quadratic anymore — the old profileHeavy carve-out for stencil.lnl is
// retired.
var allModes = []string{"barrier", "domore", "domore-sharded", "speccross", "adaptive", "auto"}

// TestModesMatchSequentialOverCorpus is the daemon-level equivalence
// gate: every engine, on every corpus program, either matches the
// sequential oracle exactly or declines cleanly (422 — the program cannot
// be parallelized that way). A 500 is an engine or verification failure.
func TestModesMatchSequentialOverCorpus(t *testing.T) {
	s := newServer(t, Config{})
	for name, src := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			seq, status := s.Execute(&RunRequest{Source: src, Mode: "seq"})
			if status != 200 {
				t.Fatalf("seq: %d %s", status, seq.Error)
			}
			for _, mode := range allModes {
				resp, status := s.Execute(&RunRequest{Source: src, Mode: mode, Workers: 4})
				switch status {
				case 200:
					if resp.Checksum != seq.Checksum {
						t.Errorf("%s checksum %x != seq %x", mode, resp.Checksum, seq.Checksum)
					}
				case 422:
					t.Logf("%s declined: %s", mode, resp.Error)
				default:
					t.Errorf("%s: status %d: %s", mode, status, resp.Error)
				}
			}
		})
	}
}

// TestHotPathZeroAnalysisSpans pins the acceptance criterion: once a
// program is live in memory, repeat invocations run zero analysis stages
// — no parse, no dependence analysis, no oracle, no profile, no
// transform. The global span counters must not move either.
func TestHotPathZeroAnalysisSpans(t *testing.T) {
	src := corpus(t)["cg.lnl"]
	s := newServer(t, Config{})
	for _, mode := range []string{"seq", "barrier", "domore", "speccross", "adaptive", "auto"} {
		if resp, status := s.Execute(&RunRequest{Source: src, Mode: mode, Workers: 4}); status != 200 {
			t.Fatalf("cold %s: %d %s", mode, status, resp.Error)
		}
	}
	before := s.Counters()
	for _, mode := range []string{"seq", "barrier", "domore", "speccross", "adaptive", "auto"} {
		resp, status := s.Execute(&RunRequest{Source: src, Mode: mode, Workers: 4})
		if status != 200 {
			t.Fatalf("hot %s: %d %s", mode, status, resp.Error)
		}
		if resp.Cache != "hot" {
			t.Errorf("%s repeat classified %q, want hot", mode, resp.Cache)
		}
		if resp.AnalysisSpans != 0 {
			t.Errorf("%s hot invocation ran %d analysis spans, want 0", mode, resp.AnalysisSpans)
		}
	}
	after := s.Counters()
	for _, k := range []string{"daemon.span.compile", "daemon.span.oracle", "daemon.span.profile", "daemon.span.plan"} {
		if after[k] != before[k] {
			t.Errorf("%s moved %d -> %d across a hot round", k, before[k], after[k])
		}
	}
	if after["daemon.cache.hot"]-before["daemon.cache.hot"] != 6 {
		t.Errorf("hot counter advanced %d, want 6", after["daemon.cache.hot"]-before["daemon.cache.hot"])
	}
}

// TestWarmRestartSkipsOracleAndProfile: a fresh daemon over the same
// cache dir must re-compile (the IR is live state) but replay the oracle
// checksum and §4.4 profile from disk — and produce identical results.
func TestWarmRestartSkipsOracleAndProfile(t *testing.T) {
	dir := t.TempDir()
	progs := corpus(t)

	cold := newServer(t, Config{CacheDir: dir})
	want := map[string]uint64{}
	for name, src := range progs {
		resp, status := cold.Execute(&RunRequest{Source: src, Mode: "speccross", Workers: 4})
		if status == 200 {
			want[name] = resp.Checksum
			if resp.Cache != "cold" {
				t.Errorf("%s first run classified %q, want cold", name, resp.Cache)
			}
		} else if status != 422 {
			t.Fatalf("%s cold: %d %s", name, status, resp.Error)
		}
	}
	if len(want) == 0 {
		t.Fatal("no corpus program ran under speccross")
	}
	if err := cold.Shutdown(); err != nil {
		t.Fatal(err)
	}

	warm := newServer(t, Config{CacheDir: dir})
	for name := range want {
		resp, status := warm.Execute(&RunRequest{Source: progs[name], Mode: "speccross", Workers: 4})
		if status != 200 {
			t.Fatalf("%s warm: %d %s", name, status, resp.Error)
		}
		if resp.Checksum != want[name] {
			t.Errorf("%s warm checksum %x != cold %x", name, resp.Checksum, want[name])
		}
		if resp.Cache != "warm" {
			t.Errorf("%s restart run classified %q, want warm", name, resp.Cache)
		}
	}
	c := warm.Counters()
	if c["daemon.span.oracle"] != 0 || c["daemon.span.profile"] != 0 {
		t.Errorf("warm restart ran %d oracle / %d profile spans, want 0/0",
			c["daemon.span.oracle"], c["daemon.span.profile"])
	}
	if c["plancache.hit"] == 0 {
		t.Error("warm restart recorded no plan-cache hits")
	}
}

// TestCorruptCacheEntryRecovers: a rotted disk entry must degrade the
// request to a cold recompute (never an error) and be repaired in place.
func TestCorruptCacheEntryRecovers(t *testing.T) {
	dir := t.TempDir()
	src := corpus(t)["cg.lnl"]

	cold := newServer(t, Config{CacheDir: dir})
	first, status := cold.Execute(&RunRequest{Source: src, Mode: "speccross", Workers: 4})
	if status != 200 {
		t.Fatalf("cold: %d %s", status, first.Error)
	}
	if err := cold.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Tear every cached entry under the root.
	torn := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" || d.Name() == "stats.json" {
			return err
		}
		torn++
		return os.WriteFile(path, []byte(`{"schema":"crossinv-plancache/v1","plan":`), 0o644)
	})
	if err != nil || torn == 0 {
		t.Fatalf("tore %d entries, err %v", torn, err)
	}

	s := newServer(t, Config{CacheDir: dir})
	resp, status := s.Execute(&RunRequest{Source: src, Mode: "speccross", Workers: 4})
	if status != 200 {
		t.Fatalf("run over corrupt cache: %d %s", status, resp.Error)
	}
	if resp.Checksum != first.Checksum {
		t.Errorf("recovered checksum %x != original %x", resp.Checksum, first.Checksum)
	}
	if resp.Cache != "cold" {
		t.Errorf("corrupt entry classified %q, want cold recompute", resp.Cache)
	}
	if c := s.Counters(); c["plancache.corrupt"] == 0 {
		t.Error("plancache.corrupt did not count the torn entry")
	}
	// The cold run re-Put the entry: one more restart must be warm again.
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	again := newServer(t, Config{CacheDir: dir})
	if resp, status := again.Execute(&RunRequest{Source: src, Mode: "speccross", Workers: 4}); status != 200 || resp.Cache != "warm" {
		t.Errorf("post-repair restart: status %d cache %q, want 200/warm", status, resp.Cache)
	}
}

func postRun(t *testing.T, url string, req *RunRequest) (*RunResponse, int) {
	t.Helper()
	raw, _ := json.Marshal(req)
	httpResp, err := http.Post(url+"/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer httpResp.Body.Close()
	var resp RunResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode /run response: %v", err)
	}
	return &resp, httpResp.StatusCode
}

// TestConcurrentInvocationsWithAdmissionControl fires 64 concurrent
// invocations at a deliberately small worker budget: every response must
// be a verified 200 or an admission 429, at least one of each must occur
// (the budget saturates AND still serves), and afterwards the daemon is
// healthy with zero in-flight work.
func TestConcurrentInvocationsWithAdmissionControl(t *testing.T) {
	src := corpus(t)["cg.lnl"]
	s := newServer(t, Config{MaxInFlight: 2, QueueDepth: 2, QueueTimeout: 20 * time.Millisecond})
	// Pre-warm so concurrent requests exercise the hot path, not 64
	// simultaneous compiles of the same program.
	if resp, status := s.Execute(&RunRequest{Source: src, Mode: "domore", Workers: 2}); status != 200 {
		t.Fatalf("pre-warm: %d %s", status, resp.Error)
	}
	want := mustSeq(t, s, src)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 64
	var ok, rejected, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, status := postRun(t, ts.URL, &RunRequest{Source: src, Mode: "domore", Workers: 2})
			switch status {
			case 200:
				if resp.Checksum != want {
					t.Errorf("concurrent run checksum %x != %x", resp.Checksum, want)
				}
				ok.Add(1)
			case 429:
				rejected.Add(1)
			default:
				other.Add(1)
				t.Errorf("unexpected status %d: %s", status, resp.Error)
			}
		}()
	}
	wg.Wait()

	if ok.Load() == 0 {
		t.Error("no concurrent invocation succeeded")
	}
	if rejected.Load() == 0 {
		t.Error("admission control never engaged: 64 concurrent requests, budget 2+2, zero 429s")
	}
	if got := ok.Load() + rejected.Load() + other.Load(); got != n {
		t.Errorf("accounted for %d of %d requests", got, n)
	}
	c := s.Counters()
	if c["daemon.admitted"] != c["daemon.completed"] {
		t.Errorf("admitted %d != completed %d (dropped work?)", c["daemon.admitted"], c["daemon.completed"])
	}

	httpResp, err := http.Get(ts.URL + "/healthz")
	if err != nil || httpResp.StatusCode != 200 {
		t.Fatalf("healthz after storm: %v %v", err, httpResp)
	}
	httpResp.Body.Close()
}

func mustSeq(t *testing.T, s *Server, src string) uint64 {
	t.Helper()
	resp, status := s.Execute(&RunRequest{Source: src, Mode: "seq"})
	if status != 200 {
		t.Fatalf("seq: %d %s", status, resp.Error)
	}
	return resp.Checksum
}

// TestGracefulDrain starts a request storm, begins Shutdown mid-storm,
// and asserts the drain contract: every admitted invocation completes
// with a verified result (zero dropped), late arrivals get 503, and
// after Shutdown returns the daemon reports draining on /healthz.
func TestGracefulDrain(t *testing.T) {
	src := corpus(t)["cg.lnl"]
	s := newServer(t, Config{MaxInFlight: 2, QueueDepth: 2, QueueTimeout: 50 * time.Millisecond})
	if resp, status := s.Execute(&RunRequest{Source: src, Mode: "domore", Workers: 2}); status != 200 {
		t.Fatalf("pre-warm: %d %s", status, resp.Error)
	}
	want := mustSeq(t, s, src)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 32
	var ok, rejected, unavailable atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, status := postRun(t, ts.URL, &RunRequest{Source: src, Mode: "domore", Workers: 2})
			switch status {
			case 200:
				if resp.Checksum != want {
					t.Errorf("drained run checksum %x != %x", resp.Checksum, want)
				}
				ok.Add(1)
			case 429:
				rejected.Add(1)
			case 503:
				unavailable.Add(1)
			default:
				t.Errorf("unexpected status %d: %s", status, resp.Error)
			}
		}(i)
	}

	var shutdownDone sync.WaitGroup
	shutdownDone.Add(1)
	go func() {
		defer shutdownDone.Done()
		time.Sleep(5 * time.Millisecond) // let some requests get admitted
		if err := s.Shutdown(); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	wg.Wait()
	shutdownDone.Wait()

	c := s.Counters()
	if c["daemon.admitted"] != c["daemon.completed"] {
		t.Errorf("drain dropped accepted work: admitted %d, completed %d",
			c["daemon.admitted"], c["daemon.completed"])
	}
	if got := ok.Load() + rejected.Load() + unavailable.Load(); got != n {
		t.Errorf("accounted for %d of %d requests", got, n)
	}
	if int64(c["daemon.completed"]) < ok.Load() {
		t.Errorf("completed %d < observed 200s %d", c["daemon.completed"], ok.Load())
	}

	httpResp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain = %d, want 503", httpResp.StatusCode)
	}
	if resp, status := postRun(t, ts.URL, &RunRequest{Source: src, Mode: "seq"}); status != 503 {
		t.Errorf("post-drain /run = %d (%s), want 503", status, resp.Error)
	}

	// The drain flushed cache stats to disk.
	if _, err := os.Stat(filepath.Join(s.Store().Dir(), "stats.json")); err != nil {
		t.Errorf("drain did not flush cache stats: %v", err)
	}
}

// TestHTTPSurface smoke-tests the observability endpoints the daemon
// mounts next to /run: /plans lists entries and hot programs, /metrics
// exports the daemon counters, /healthz reports admission state.
func TestHTTPSurface(t *testing.T) {
	src := corpus(t)["cg.lnl"]
	s := newServer(t, Config{})
	if resp, status := s.Execute(&RunRequest{Source: src, Mode: "auto", Workers: 4}); status != 200 {
		t.Fatalf("seed run: %d %s", status, resp.Error)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var plans struct {
		Entries  []map[string]any `json:"entries"`
		Programs []programInfo    `json:"programs"`
		Counters map[string]int64 `json:"counters"`
	}
	httpResp, err := http.Get(ts.URL + "/plans")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&plans); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if len(plans.Entries) == 0 || len(plans.Programs) != 1 {
		t.Errorf("/plans: %d entries, %d programs; want ≥1 and 1", len(plans.Entries), len(plans.Programs))
	}
	if plans.Counters["plancache.put"] == 0 {
		t.Error("/plans counters missing plancache.put")
	}

	httpResp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(httpResp)
	for _, metric := range []string{"daemon_admitted", "daemon_cache_cold", "daemon_span_oracle", "plancache_put", "daemon_inflight"} {
		if !strings.Contains(raw, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}

	httpResp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status   string `json:"status"`
		Programs int    `json:"programs"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if h.Status != "ok" || h.Programs != 1 {
		t.Errorf("healthz = %+v, want ok/1 program", h)
	}
}

func readAll(r *http.Response) (string, error) {
	defer r.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			if err.Error() == "EOF" {
				return sb.String(), nil
			}
			return sb.String(), err
		}
	}
}

// TestRejectionShapes covers the request-validation edges.
func TestRejectionShapes(t *testing.T) {
	s := newServer(t, Config{})
	cases := []struct {
		name   string
		req    RunRequest
		status int
	}{
		{"empty source", RunRequest{}, 400},
		{"bad mode", RunRequest{Source: "func f() { }", Mode: "warp"}, 400},
		{"bad sig", RunRequest{Source: "func f() { }", Mode: "seq", Sig: "md5"}, 400},
		{"parse error", RunRequest{Source: "func f( {", Mode: "seq"}, 422},
		{"no region", RunRequest{Source: "func f() { var A[4]\nfor i = 0 .. 4 { A[i] = i } }", Mode: "domore"}, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, status := s.Execute(&tc.req)
			if status != tc.status {
				t.Errorf("status %d (%s), want %d", status, resp.Error, tc.status)
			}
			if resp.OK {
				t.Error("rejected request reported OK")
			}
		})
	}
}

// TestChangedSubscriptInvalidatesPlan pins the xdep axis of the plan-cache
// key: two programs identical in shape whose inner subscripts differ by
// one lag constant must produce different facts hashes, hence different
// fingerprints — a plan derived under one dependence verdict can never be
// replayed for the other. The daemon echoes the hash into the stored plan
// so adopt() can re-verify it on load.
func TestChangedSubscriptInvalidatesPlan(t *testing.T) {
	mk := func(lag int) string {
		return `func pipe() {
  var A[520]
  parfor s = 0 .. 520 {
    A[s] = s * 5 % 11
  }
  for t = 2 .. 64 {
    parfor i = 0 .. 8 {
      A[t*8 + i] = A[t*8 + i - ` + strconv.Itoa(lag) + `] * 3 + 1
    }
  }
}
`
	}
	ca, err := core.Compile(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := core.Compile(mk(16))
	if err != nil {
		t.Fatal(err)
	}
	ha, hb := ca.XDep().Hash(), cb.XDep().Hash()
	if ha == hb {
		t.Fatal("lag-8 and lag-16 subscripts share a facts hash")
	}
	fa := plancache.Fingerprint(core.PipelineVersion, 0, "range", ha)
	fb := plancache.Fingerprint(core.PipelineVersion, 0, "range", hb)
	if fa == fb {
		t.Fatal("different facts hashes produced the same fingerprint")
	}

	// Even for one source hash, the two fingerprints address different
	// cache slots: a plan stored under verdict A misses under verdict B.
	store, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := core.SourceHash(mk(8))
	if err := store.Put(plancache.Key{SourceHash: src, Fingerprint: fa},
		plancache.Plan{SeqChecksum: 1, Regions: 1, XDepHash: ha}); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(plancache.Key{SourceHash: src, Fingerprint: fb}); ok {
		t.Error("plan stored under one dependence verdict was served for another")
	}

	// End to end: the daemon stores the facts hash with the plan it writes.
	s := newServer(t, Config{})
	resp, status := s.Execute(&RunRequest{Source: mk(8), Mode: "domore"})
	if status != 200 || !resp.OK {
		t.Fatalf("domore run failed: %d %+v", status, resp)
	}
	infos := s.store.List()
	if len(infos) == 0 {
		t.Fatal("daemon stored no plan")
	}
	if !strings.Contains(infos[0].Fingerprint, "xdep="+ha) {
		t.Errorf("stored fingerprint %q lacks the facts hash %s", infos[0].Fingerprint, ha)
	}
}

// TestAdaptiveSkipsProfileForProvenDOALL pins the SeedFromFacts fast path:
// a region the analyzer proves free of cross-invocation dependences runs
// adaptive without ever paying the §4.4 profiling pass — the static facts
// already license unbounded speculation.
func TestAdaptiveSkipsProfileForProvenDOALL(t *testing.T) {
	const doall = `func blocks() {
  var A[512]
  for t = 0 .. 64 {
    parfor i = 0 .. 8 {
      A[t*8 + i] = t + i
    }
  }
}
`
	s := newServer(t, Config{})
	resp, status := s.Execute(&RunRequest{Source: doall, Mode: "adaptive"})
	if status != 200 || !resp.OK {
		t.Fatalf("adaptive run failed: %d %+v", status, resp)
	}
	if n := s.spanProfile.Load(); n != 0 {
		t.Errorf("provably-DOALL region still ran %d profiling passes", n)
	}
}

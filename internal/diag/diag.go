// Package diag is the diagnostics layer the static plan verifier (and any
// future analysis pass) reports through: a diagnostic carries the check that
// produced it, a severity, a source position (from the lexer tokens threaded
// through the IR), and a human-readable message. Lists render either as
// compiler-style text ("file:line:col: severity: [check] message") or as
// JSON for tooling (the `crossinv -lint -json` output).
package diag

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"crossinv/internal/lang/token"
)

// Severity grades a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	Info Severity = iota
	Warning
	Error
)

// String returns the severity name as rendered in text and JSON output.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Diagnostic is one finding of an analysis pass.
type Diagnostic struct {
	// Check names the verifier check that produced the finding
	// (e.g. "partition", "slice", "mtcg", "signature", "advisor").
	Check    string
	Severity Severity
	// File is the source file name, when known (the CLI fills it in;
	// library callers may leave it empty).
	File string
	// Pos is the source position of the offending construct; the zero Pos
	// means the finding has no single source anchor.
	Pos token.Pos
	Msg string
}

// String renders the diagnostic in compiler style:
//
//	file:line:col: severity: [check] message
//
// The file: prefix is omitted when File is empty, and the position when it
// is the zero Pos.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.File != "" {
		b.WriteString(d.File)
		b.WriteByte(':')
	}
	if d.Pos.Line != 0 {
		fmt.Fprintf(&b, "%s: ", d.Pos)
	} else if d.File != "" {
		b.WriteByte(' ')
	}
	fmt.Fprintf(&b, "%s: [%s] %s", d.Severity, d.Check, d.Msg)
	return b.String()
}

// jsonDiagnostic is the stable wire form of a Diagnostic (documented in the
// README; field names are part of the -lint -json contract).
type jsonDiagnostic struct {
	Check    string `json:"check"`
	Severity string `json:"severity"`
	File     string `json:"file,omitempty"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// MarshalJSON implements json.Marshaler with the documented wire format.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonDiagnostic{
		Check:    d.Check,
		Severity: d.Severity.String(),
		File:     d.File,
		Line:     d.Pos.Line,
		Col:      d.Pos.Col,
		Message:  d.Msg,
	})
}

// List is an ordered collection of diagnostics.
type List []Diagnostic

// Add appends a diagnostic built from its parts.
func (l *List) Add(check string, sev Severity, pos token.Pos, format string, args ...any) {
	*l = append(*l, Diagnostic{
		Check: check, Severity: sev, Pos: pos, Msg: fmt.Sprintf(format, args...),
	})
}

// Errorf appends an error-severity diagnostic.
func (l *List) Errorf(check string, pos token.Pos, format string, args ...any) {
	l.Add(check, Error, pos, format, args...)
}

// Warningf appends a warning-severity diagnostic.
func (l *List) Warningf(check string, pos token.Pos, format string, args ...any) {
	l.Add(check, Warning, pos, format, args...)
}

// HasErrors reports whether any diagnostic has Error severity.
func (l List) HasErrors() bool {
	for _, d := range l {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors returns only the Error-severity diagnostics.
func (l List) Errors() List {
	var out List
	for _, d := range l {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// WithFile returns a copy with every diagnostic's File set to name.
func (l List) WithFile(name string) List {
	out := make(List, len(l))
	for i, d := range l {
		d.File = name
		out[i] = d
	}
	return out
}

// Sort orders diagnostics by position, then check, then message, so output
// is deterministic regardless of check execution order.
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// Text renders the list one diagnostic per line.
func (l List) Text() string {
	var b strings.Builder
	for _, d := range l {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the list as an indented JSON array (an empty list renders as
// "[]", not "null", so consumers can always range over it).
func (l List) JSON() ([]byte, error) {
	if l == nil {
		l = List{}
	}
	return json.MarshalIndent(l, "", "  ")
}

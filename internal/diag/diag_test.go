package diag

import (
	"encoding/json"
	"strings"
	"testing"

	"crossinv/internal/lang/token"
)

func TestStringForms(t *testing.T) {
	d := Diagnostic{
		Check: "partition", Severity: Error,
		File: "a.lnl", Pos: token.Pos{Line: 3, Col: 7},
		Msg: "dependence flows worker -> scheduler",
	}
	if got, want := d.String(), "a.lnl:3:7: error: [partition] dependence flows worker -> scheduler"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d.File = ""
	if got, want := d.String(), "3:7: error: [partition] dependence flows worker -> scheduler"; got != want {
		t.Errorf("no-file String() = %q, want %q", got, want)
	}
	d.Pos = token.Pos{}
	if got, want := d.String(), "error: [partition] dependence flows worker -> scheduler"; got != want {
		t.Errorf("no-pos String() = %q, want %q", got, want)
	}
}

func TestListHelpers(t *testing.T) {
	var l List
	l.Warningf("mtcg", token.Pos{Line: 9, Col: 1}, "forwarded live-in %q never consumed", "x")
	if l.HasErrors() {
		t.Error("warning-only list reports errors")
	}
	l.Errorf("slice", token.Pos{Line: 2, Col: 4}, "store in computeAddr")
	if !l.HasErrors() {
		t.Error("list with an error does not report errors")
	}
	if n := len(l.Errors()); n != 1 {
		t.Errorf("Errors() kept %d diagnostics, want 1", n)
	}
	l.Sort()
	if l[0].Check != "slice" {
		t.Errorf("Sort() put %q first, want slice (earlier position)", l[0].Check)
	}
	withFile := l.WithFile("prog.lnl")
	for _, d := range withFile {
		if d.File != "prog.lnl" {
			t.Errorf("WithFile left File = %q", d.File)
		}
	}
	if l[0].File != "" {
		t.Error("WithFile mutated the receiver")
	}
	text := l.Text()
	if !strings.Contains(text, "[slice]") || !strings.Contains(text, "[mtcg]") {
		t.Errorf("Text() missing checks:\n%s", text)
	}
}

func TestJSONWireFormat(t *testing.T) {
	l := List{{
		Check: "signature", Severity: Warning,
		File: "p.lnl", Pos: token.Pos{Line: 11, Col: 5},
		Msg: "nested parfor executes sequentially inside a task",
	}}
	raw, err := l.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, raw)
	}
	d := decoded[0]
	for k, want := range map[string]any{
		"check": "signature", "severity": "warning", "file": "p.lnl",
		"line": float64(11), "col": float64(5),
		"message": "nested parfor executes sequentially inside a task",
	} {
		if d[k] != want {
			t.Errorf("JSON field %q = %v, want %v", k, d[k], want)
		}
	}

	empty, err := List(nil).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "[]" {
		t.Errorf("nil list JSON = %q, want []", empty)
	}
}

// Package plancache is the content-addressed, on-disk plan/profile store
// that amortizes the crossinv pipeline across invocations — the paper's
// premise applied to the compiler itself. Entries are keyed by the
// program-source hash plus a pipeline/config fingerprint and hold only
// serializable plan artifacts: analysis facts, the sequential oracle
// checksum, the §4.4 conflict profile, the adaptive seed, and a
// bench-informed engine choice. The live IR and transforms are rebuilt by
// the owner (they hold pointers); everything expensive to *discover* is
// persisted here.
//
// Robustness contract: a torn, truncated, hash-mismatched, or
// wrong-schema entry is a MISS, never an error — the caller recomputes
// and overwrites. Writes are atomic (temp file + rename in the same
// directory). The Counters map exposes hit/miss/corrupt/put totals for
// the daemon's /metrics surface; "corrupt" is the `plancache.corrupt`
// metric the regression tests pin.
package plancache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Schema identifies the entry format. Bump on breaking changes: entries
// from other schemas are treated as corrupt (a miss), so an upgraded
// daemon silently recomputes rather than misreading old data.
const Schema = "crossinv-plancache/v1"

// Key addresses one entry: the content hash of the program source plus a
// fingerprint of everything else the cached artifacts depend on (pipeline
// version, region index, signature kind, and the cross-invocation facts
// hash — the engine/config/analysis axis).
type Key struct {
	// SourceHash is the hex SHA-256 of the program source text.
	SourceHash string
	// Fingerprint folds the non-source inputs, e.g.
	// "pipeline/v1|region=2|sig=range|xdep=ab12…".
	Fingerprint string
}

// Fingerprint builds the canonical fingerprint string from its parts.
// xdep is the content hash of the static cross-invocation facts
// (xdep.Facts.Hash(), or a fixed token like "none" for workloads without
// static analysis): folding it into the key means a plan derived under one
// dependence verdict can never be replayed against source whose subscripts
// — and hence whose proven dependences — changed.
func Fingerprint(pipeline string, region int, sig, xdep string) string {
	return fmt.Sprintf("%s|region=%d|sig=%s|xdep=%s", pipeline, region, sig, xdep)
}

// ID is the entry's content address: the hex SHA-256 of the key pair.
// It names the file on disk, so distinct configs of one program coexist.
func (k Key) ID() string {
	h := sha256.New()
	h.Write([]byte(k.SourceHash))
	h.Write([]byte{0})
	h.Write([]byte(k.Fingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// Profile is the serializable §4.4 profiling result (mirrors
// speccross.ProfileResult field for field; this package stays free of
// runtime imports so stores can be linked anywhere).
type Profile struct {
	Tasks       int64            `json:"tasks"`
	Epochs      int64            `json:"epochs"`
	Conflicts   int64            `json:"conflicts"`
	MinDistance int64            `json:"min_distance"`
	PerLoop     map[string]int64 `json:"per_loop,omitempty"`
}

// AdaptiveSeed primes the adaptive policy on warm invocations: the engine
// to start with and the monitoring window that history found effective.
type AdaptiveSeed struct {
	Start  string `json:"start"`
	Window int    `json:"window,omitempty"`
}

// RegionFacts mirrors core.RegionFacts (see that type for field docs).
type RegionFacts struct {
	Var             string   `json:"var"`
	Pos             string   `json:"pos"`
	AdvisorPlan     string   `json:"advisor_plan"`
	InnerClasses    []string `json:"inner_classes,omitempty"`
	CrossInvDeps    int      `json:"cross_inv_deps"`
	XDepClass       string   `json:"xdep_class,omitempty"`
	XDepMinDistance int64    `json:"xdep_min_distance,omitempty"`
	XDepMaxDistance int64    `json:"xdep_max_distance,omitempty"`
}

// Plan is the cached payload: every pipeline artifact that is a pure
// function of (source, fingerprint) and serializable.
type Plan struct {
	// SeqChecksum is the sequential oracle checksum — programs are
	// deterministic, so warm invocations verify against it without
	// re-running the sequential executor.
	SeqChecksum uint64 `json:"seq_checksum"`
	// Regions is the candidate-region count and RegionIndex the region
	// these artifacts were derived for.
	Regions     int `json:"regions"`
	RegionIndex int `json:"region_index"`
	// Facts is the serializable dependence-analysis record per region.
	Facts []RegionFacts `json:"facts,omitempty"`
	// Profile is the cached §4.4 conflict profile (nil when the region
	// was never profiled).
	Profile *Profile `json:"profile,omitempty"`
	// Adaptive seeds the hybrid runtime's policy (nil when unknown).
	Adaptive *AdaptiveSeed `json:"adaptive,omitempty"`
	// Engine records the bench-informed engine choice for this program
	// ("" when no bench history exists).
	Engine string `json:"engine,omitempty"`
	// XDepHash is the content hash of the static cross-invocation facts
	// the plan was derived under. It echoes the fingerprint's xdep part so
	// an adopter can re-verify the stored verdict against a fresh
	// analyzer run before trusting the plan.
	XDepHash string `json:"xdep_hash,omitempty"`
	// LintClean records that the plan verifier passed when the entry was
	// written; loaders re-verify regardless (verify-on-load), this flag
	// just lets /plans report entries that were stored despite warnings.
	LintClean bool `json:"lint_clean"`
}

// Entry is the on-disk document: schema header, key echo, payload, and
// the payload integrity hash.
type Entry struct {
	Schema      string `json:"schema"`
	SourceHash  string `json:"source_hash"`
	Fingerprint string `json:"fingerprint"`
	CreatedAt   string `json:"created_at"`
	Plan        Plan   `json:"plan"`
	// PlanSHA256 is the hex SHA-256 of the canonical (compact) JSON
	// encoding of Plan; Get recomputes and compares it, so a torn or
	// bit-flipped payload reads as corrupt, not as a wrong plan.
	PlanSHA256 string `json:"plan_sha256"`
}

// Info is one /plans listing row.
type Info struct {
	ID          string `json:"id"`
	SourceHash  string `json:"source_hash"`
	Fingerprint string `json:"fingerprint"`
	CreatedAt   string `json:"created_at"`
	Engine      string `json:"engine,omitempty"`
	Profiled    bool   `json:"profiled"`
}

// Store is the on-disk cache. All methods are safe for concurrent use.
type Store struct {
	dir string

	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
	puts    atomic.Int64

	// writeMu serializes Put per process; cross-process safety comes from
	// the atomic rename (last writer wins, both plans being equally valid
	// recomputations of the same pure function).
	writeMu sync.Mutex
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("plancache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id[:2], id+".json")
}

func planHash(p Plan) (string, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(raw)
	return hex.EncodeToString(h[:]), nil
}

// Get loads the entry for key. ok is false on any miss — absent entry or
// any form of corruption (unparseable JSON, wrong schema, key mismatch,
// integrity-hash mismatch). Corruption additionally increments the
// corrupt counter and removes the bad file so the next Put starts clean;
// it NEVER fails the request.
func (s *Store) Get(key Key) (Plan, bool) {
	id := key.ID()
	raw, err := os.ReadFile(s.path(id))
	if err != nil {
		s.misses.Add(1)
		return Plan{}, false
	}
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return s.quarantine(id) // torn or truncated write
	}
	if e.Schema != Schema {
		return s.quarantine(id)
	}
	if e.SourceHash != key.SourceHash || e.Fingerprint != key.Fingerprint {
		return s.quarantine(id) // ID collision or tampered key echo
	}
	want, err := planHash(e.Plan)
	if err != nil || want != e.PlanSHA256 {
		return s.quarantine(id) // payload bit-rot
	}
	s.hits.Add(1)
	return e.Plan, true
}

// quarantine records a corrupt entry as a miss and deletes the file.
func (s *Store) quarantine(id string) (Plan, bool) {
	s.corrupt.Add(1)
	s.misses.Add(1)
	_ = os.Remove(s.path(id))
	return Plan{}, false
}

// Put writes (or atomically replaces) the entry for key.
func (s *Store) Put(key Key, p Plan) error {
	sum, err := planHash(p)
	if err != nil {
		return fmt.Errorf("plancache: encode plan: %w", err)
	}
	e := Entry{
		Schema:      Schema,
		SourceHash:  key.SourceHash,
		Fingerprint: key.Fingerprint,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		Plan:        p,
		PlanSHA256:  sum,
	}
	raw, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return fmt.Errorf("plancache: %w", err)
	}
	raw = append(raw, '\n')

	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	dst := s.path(key.ID())
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("plancache: %w", err)
	}
	// Atomic publish: a reader sees the old entry or the new one, never a
	// prefix. The temp file lives in the destination directory so the
	// rename cannot cross filesystems.
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".tmp-"+key.ID()[:8]+"-*")
	if err != nil {
		return fmt.Errorf("plancache: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("plancache: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("plancache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("plancache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("plancache: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// List enumerates every readable entry, sorted by ID. Corrupt files are
// skipped (and counted) — listing is diagnostic, it must not fail because
// one entry rotted.
func (s *Store) List() []Info {
	var out []Info
	subdirs, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	for _, sd := range subdirs {
		if !sd.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sd.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if filepath.Ext(name) != ".json" {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(s.dir, sd.Name(), name))
			if err != nil {
				continue
			}
			var e Entry
			if err := json.Unmarshal(raw, &e); err != nil || e.Schema != Schema {
				s.corrupt.Add(1)
				continue
			}
			out = append(out, Info{
				ID:          name[:len(name)-len(".json")],
				SourceHash:  e.SourceHash,
				Fingerprint: e.Fingerprint,
				CreatedAt:   e.CreatedAt,
				Engine:      e.Plan.Engine,
				Profiled:    e.Plan.Profile != nil,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Counters snapshots the store metrics. Keys are the metric names the
// daemon exports: plancache.hit, plancache.miss, plancache.corrupt,
// plancache.put.
func (s *Store) Counters() map[string]int64 {
	return map[string]int64{
		"plancache.hit":     s.hits.Load(),
		"plancache.miss":    s.misses.Load(),
		"plancache.corrupt": s.corrupt.Load(),
		"plancache.put":     s.puts.Load(),
	}
}

// Flush persists the store's counter snapshot as a stats sidecar (best
// effort, atomic like entries). The daemon calls it during graceful drain
// so hit/miss history survives restarts for /plans consumers.
func (s *Store) Flush() error {
	raw, err := json.MarshalIndent(s.Counters(), "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	tmp, err := os.CreateTemp(s.dir, ".tmp-stats-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(s.dir, "stats.json"))
}

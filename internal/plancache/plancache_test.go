package plancache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testKey(src string) Key {
	return Key{SourceHash: strings.Repeat("ab", 32), Fingerprint: Fingerprint("pipeline/v1", 0, "range", "facts0") + "|" + src}
}

func testPlan() Plan {
	return Plan{
		SeqChecksum: 0xdeadbeefcafef00d,
		Regions:     2,
		RegionIndex: 1,
		Facts: []RegionFacts{{
			Var: "i", Pos: "cg.lnl:17", AdvisorPlan: "domore (cross-invocation deps)",
			InnerClasses: []string{"j: doall"}, CrossInvDeps: 3,
		}},
		Profile:   &Profile{Tasks: 400, Epochs: 40, Conflicts: 12, MinDistance: 9, PerLoop: map[string]int64{"j": 9}},
		Adaptive:  &AdaptiveSeed{Start: "domore", Window: 32},
		Engine:    "domore",
		LintClean: true,
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("a")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	want := testPlan()
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Errorf("round trip drifted:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	c := s.Counters()
	if c["plancache.hit"] != 1 || c["plancache.miss"] != 1 || c["plancache.put"] != 1 || c["plancache.corrupt"] != 0 {
		t.Errorf("counters = %v, want 1 hit / 1 miss / 1 put / 0 corrupt", c)
	}
}

// TestKeySeparation: same source under a different fingerprint (or a
// different source under the same fingerprint) addresses a different entry.
func TestKeySeparation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := Key{SourceHash: strings.Repeat("aa", 32), Fingerprint: Fingerprint("pipeline/v1", 0, "range", "facts0")}
	b := Key{SourceHash: strings.Repeat("aa", 32), Fingerprint: Fingerprint("pipeline/v1", 1, "range", "facts0")}
	c := Key{SourceHash: strings.Repeat("bb", 32), Fingerprint: a.Fingerprint}
	if a.ID() == b.ID() || a.ID() == c.ID() {
		t.Fatal("distinct keys share an ID")
	}
	if err := s.Put(a, Plan{SeqChecksum: 1, Regions: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(b); ok {
		t.Error("fingerprint b hit entry written under fingerprint a")
	}
	if _, ok := s.Get(c); ok {
		t.Error("source c hit entry written under source a")
	}
}

// TestCorruptEntryIsAMiss is the robustness regression: every corruption
// shape — truncation, garbage, payload tampering, schema drift — must read
// as a miss (recompute), never an error, and must increment
// plancache.corrupt. A subsequent Put must repair the slot.
func TestCorruptEntryIsAMiss(t *testing.T) {
	corruptions := []struct {
		name string
		mang func(raw []byte) []byte
	}{
		{"truncated", func(raw []byte) []byte { return raw[:len(raw)/3] }},
		{"garbage", func(raw []byte) []byte { return []byte("{not json") }},
		{"empty", func(raw []byte) []byte { return nil }},
		{"tampered payload", func(raw []byte) []byte {
			// Flip the cached oracle checksum without updating the
			// integrity hash — the dangerous case: a plausible entry whose
			// plan would verify wrong results as right.
			return []byte(strings.Replace(string(raw), `"seq_checksum": `, `"seq_checksum": 1`, 1))
		}},
		{"wrong schema", func(raw []byte) []byte {
			return []byte(strings.Replace(string(raw), Schema, "crossinv-plancache/v0", 1))
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := testKey(tc.name)
			if err := s.Put(key, testPlan()); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(s.Dir(), key.ID()[:2], key.ID()+".json")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mang(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, ok := s.Get(key); ok {
				t.Fatal("corrupted entry served as a hit")
			}
			if got := s.Counters()["plancache.corrupt"]; got != 1 {
				t.Errorf("plancache.corrupt = %d, want 1", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt file not quarantined: stat err = %v", err)
			}

			// Recovery: recompute-and-Put must restore a serving entry.
			if err := s.Put(key, testPlan()); err != nil {
				t.Fatalf("re-Put after corruption: %v", err)
			}
			if got, ok := s.Get(key); !ok || got.SeqChecksum != testPlan().SeqChecksum {
				t.Fatalf("entry not recovered after re-Put (ok=%v)", ok)
			}
		})
	}
}

func TestListSkipsCorrupt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	good := testKey("good")
	if err := s.Put(good, testPlan()); err != nil {
		t.Fatal(err)
	}
	bad := testKey("bad")
	if err := s.Put(bad, testPlan()); err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(s.Dir(), bad.ID()[:2], bad.ID()+".json")
	if err := os.WriteFile(badPath, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	infos := s.List()
	if len(infos) != 1 {
		t.Fatalf("List returned %d entries, want 1 (corrupt one skipped)", len(infos))
	}
	if infos[0].ID != good.ID() || !infos[0].Profiled || infos[0].Engine != "domore" {
		t.Errorf("List row %+v does not describe the good entry", infos[0])
	}
}

// TestConcurrentAccess hammers one store from many goroutines (the daemon
// serves concurrent invocations over a shared store) — run under -race in
// the CI daemon job.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := testKey(string(rune('a' + g%4)))
			for i := 0; i < 50; i++ {
				if i%5 == 0 {
					if err := s.Put(key, testPlan()); err != nil {
						t.Error(err)
						return
					}
				}
				s.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if got := s.Counters()["plancache.corrupt"]; got != 0 {
		t.Errorf("concurrent access produced %d corrupt reads", got)
	}
}

func TestFlushWritesStats(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Get(testKey("x")) // one miss
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(s.Dir(), "stats.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]int64
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats["plancache.miss"] != 1 {
		t.Errorf("flushed stats = %v, want 1 miss", stats)
	}
}

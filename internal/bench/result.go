// Package bench is the stats-aware performance harness: it runs every
// engine×workload cell (plus queue/signature/shadow microbenchmarks) a
// configurable number of times, summarizes each cell with median, mean,
// coefficient of variation, and a bootstrap confidence interval, and
// serializes the lot as a schema-versioned BENCH_<n>.json. Successive
// BENCH files committed at the repo root form the performance trajectory;
// Compare runs Mann-Whitney U tests between two files and flags
// statistically significant regressions, which is what the cmd/bench
// -compare gate (and the CI smoke job) enforce.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Schema identifies the BENCH file format. Bump the suffix on breaking
// changes; Validate rejects files from other schemas so a comparison
// never silently misreads old data.
const Schema = "crossinv-bench/v1"

// Env records the machine and build context a BENCH file was produced
// under. Compare prints (rather than fails on) mismatches: cross-machine
// deltas are informative but not regressions.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	GitRev     string `json:"git_rev,omitempty"`
}

// CaptureEnv records the current environment. Git revision and CPU model
// degrade to empty/unknown when unavailable (detached containers, non-Linux
// hosts) — absence is not an error.
func CaptureEnv(repoDir string) Env {
	e := Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = repoDir
	if out, err := cmd.Output(); err == nil {
		e.GitRev = strings.TrimSpace(string(out))
	}
	return e
}

// cpuModel reads the model name from /proc/cpuinfo (Linux); empty elsewhere.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if _, after, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(after)
			}
		}
	}
	return ""
}

// Cell is one benchmark cell's summarized samples. Samples are wall-clock
// nanoseconds per run; the setup (fresh workload state) is excluded.
type Cell struct {
	// ID is "<engine>/<workload>", e.g. "domore/CG" or "micro/queue.spsc".
	ID       string `json:"id"`
	Engine   string `json:"engine"`
	Workload string `json:"workload"`

	Samples []float64 `json:"samples_ns"`
	Median  float64   `json:"median_ns"`
	Mean    float64   `json:"mean_ns"`
	CoV     float64   `json:"cov"`
	// CILow/CIHigh bound the median at 95% confidence (percentile
	// bootstrap, deterministic seed).
	CILow  float64 `json:"ci_low_ns"`
	CIHigh float64 `json:"ci_high_ns"`

	// AllocsPerOp is the median heap allocations per timed run (MemStats
	// Mallocs delta around the sample, measured outside the timed region).
	// Zero in files written before the column existed, so Compare only
	// gates on it when both sides carry it. Allocation counts are
	// near-deterministic, unlike wall time, which makes this the stable
	// early-warning column for per-task allocation regressions.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// Breakdown maps trace span classes (stall, barrier-wait, recovery, …)
	// to their fraction of total lane time, derived from one extra traced
	// run per cell. Empty for microbenchmarks and untraced runs.
	Breakdown map[string]float64 `json:"breakdown,omitempty"`

	// Note records cell-level caveats, e.g. a speculation-unprofitable
	// workload falling back to barrier execution.
	Note string `json:"note,omitempty"`
}

// summarize fills the derived statistics from Samples. The bootstrap seed
// is derived from the cell ID so re-running over identical samples yields
// a byte-identical file.
func (c *Cell) summarize() {
	c.Median = Median(c.Samples)
	c.Mean = Mean(c.Samples)
	c.CoV = CoV(c.Samples)
	seed := uint64(0x5eed)
	for _, b := range []byte(c.ID) {
		seed = seed*1099511628211 + uint64(b)
	}
	c.CILow, c.CIHigh = BootstrapCI(c.Samples, 0.95, 1000, seed)
}

// Result is one BENCH file: the full grid of cells plus run parameters
// and environment.
type Result struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_at,omitempty"`
	N         int    `json:"n"`
	Warmup    int    `json:"warmup"`
	Workers   int    `json:"workers"`
	Scale     int    `json:"scale"`
	Env       Env    `json:"env"`
	Cells     []Cell `json:"cells"`
}

// Validate checks structural invariants: schema match, unique non-empty
// cell IDs, sample counts consistent with N, and finite summary stats.
func (r *Result) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, Schema)
	}
	if r.N <= 0 {
		return fmt.Errorf("bench: n = %d, want > 0", r.N)
	}
	if len(r.Cells) == 0 {
		return fmt.Errorf("bench: no cells")
	}
	seen := map[string]bool{}
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.ID == "" || c.Engine == "" || c.Workload == "" {
			return fmt.Errorf("bench: cell %d has empty id/engine/workload", i)
		}
		if seen[c.ID] {
			return fmt.Errorf("bench: duplicate cell id %q", c.ID)
		}
		seen[c.ID] = true
		if len(c.Samples) == 0 {
			return fmt.Errorf("bench: cell %s has no samples", c.ID)
		}
		if len(c.Samples) != r.N {
			return fmt.Errorf("bench: cell %s has %d samples, file says n=%d", c.ID, len(c.Samples), r.N)
		}
		for _, v := range []float64{c.Median, c.Mean, c.CILow, c.CIHigh} {
			if v <= 0 || v != v { // non-positive or NaN
				return fmt.Errorf("bench: cell %s has invalid summary stat %v", c.ID, v)
			}
		}
		if c.CILow > c.Median || c.Median > c.CIHigh {
			return fmt.Errorf("bench: cell %s CI [%v, %v] does not bracket median %v", c.ID, c.CILow, c.CIHigh, c.Median)
		}
	}
	return nil
}

// Cell returns the cell with the given ID, or nil.
func (r *Result) Cell(id string) *Cell {
	for i := range r.Cells {
		if r.Cells[i].ID == id {
			return &r.Cells[i]
		}
	}
	return nil
}

// ReadFile loads and validates a BENCH file.
func ReadFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// WriteFile serializes the result (indented, trailing newline) to path.
func (r *Result) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextPath returns the next free BENCH_<n>.json in dir: one past the
// highest existing index (BENCH_0.json when none exist), so the committed
// sequence forms a gap-tolerant, append-only trajectory.
func NextPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 0
	for _, e := range entries {
		if m := benchName.FindStringSubmatch(e.Name()); m != nil {
			if n, err := strconv.Atoi(m[1]); err == nil && n+1 > next {
				next = n + 1
			}
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

package bench

import (
	"sync"
	"time"

	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/workloads"
)

// Scheduler cells isolate what the sharded DOMORE scheduler buys over the
// single-threaded one: the same workload run through domore.Run (one
// scheduler thread performs every ComputeAddr and every shadow
// lookup/update serially) versus domore.RunSharded (the dependence
// detection splits across scheduler lanes by address shard, and the
// forwarded sync conditions publish in batches).
//
//	domore/sched.single  — domore.Run, the flat Algorithm-1 scheduler
//	domore/sched.sharded — domore.RunSharded, schedLanes concurrent lanes
//
// The workload is scheduler-bound by construction: every iteration touches
// schedAddrs addresses of a space sized so repeat touches (and therefore
// sync conditions and worker stalls) are rare — dependence-wait critical
// paths would bound both engines equally and bury the scheduler — its
// ComputeAddr is a pure copy of a precomputed row (cheap enough that the
// concurrent lanes' redundant address computation does not erase the
// detection split), and Execute is a short private-cell spin. At ≥8
// workers the worker side is far from the bottleneck and the scheduler's
// serial detection loop is, which is exactly the regime the sharded
// scheduler targets; TestSchedCellsGate holds the gap to the same
// Mann-Whitney significance gate `bench -compare` applies between
// snapshots.
const (
	schedInvs     = 48
	schedIters    = 64
	schedAddrs    = 32
	schedSpace    = 1 << 22
	schedCellLane = 4
	schedSpin     = 300
)

// schedAddrRows holds the precomputed per-iteration address rows. They are
// read-only after construction and identical for every sample, so one copy
// serves all runs (ComputeAddr must be lane-pure anyway).
var (
	schedRowsOnce sync.Once
	schedRows     [][]uint64
)

func schedAddrRows() [][]uint64 {
	schedRowsOnce.Do(func() {
		total := schedInvs * schedIters
		flat := make([]uint64, total*schedAddrs)
		schedRows = make([][]uint64, total)
		for g := 0; g < total; g++ {
			row := flat[g*schedAddrs : (g+1)*schedAddrs : (g+1)*schedAddrs]
			for j := range row {
				row[j] = workloads.Mix64(uint64(g*schedAddrs+j)+1) % schedSpace
			}
			schedRows[g] = row
		}
	})
	return schedRows
}

// schedWorkload is the purpose-built scheduler-bound workload. The
// addresses are virtual (only the scheduler sees them); Execute writes a
// private output cell, so the run is deterministic and race-free under
// any schedule the engines produce.
type schedWorkload struct {
	rows  [][]uint64
	state []int64
}

func newSchedWorkload() *schedWorkload {
	return &schedWorkload{rows: schedAddrRows(), state: make([]int64, schedInvs*schedIters)}
}

func (w *schedWorkload) Invocations() int       { return schedInvs }
func (w *schedWorkload) Iterations(inv int) int { return schedIters }
func (w *schedWorkload) Sequential(inv int)     {}

// ComputeAddr is pure and cheap: a copy of the precomputed row. Safe for
// the concurrent scheduler lanes (Options.ConcurrentAddr).
func (w *schedWorkload) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	return append(buf, w.rows[inv*schedIters+iter]...)
}

func (w *schedWorkload) Execute(inv, iter, tid int) {
	g := inv*schedIters + iter
	v := int64(g)
	for i := 0; i < schedSpin; i++ {
		v = v*6364136223846793005 + 1442695040888963407
	}
	w.state[g] = v
}

func schedOptions(sharded bool, workers int, rec *trace.Recorder) domore.Options {
	o := domore.Options{Workers: workers, Trace: rec}
	if sharded {
		o.Lanes = schedCellLane
		o.ConcurrentAddr = true
	}
	return o
}

// schedSpecs builds the two cells. Each sample gets a fresh workload (the
// engines build fresh shadow state per run anyway; the address rows are
// shared and read-only).
func schedSpecs(opts Options) []cellSpec {
	var specs []cellSpec
	for _, c := range []struct {
		name    string
		sharded bool
	}{
		{"sched.single", false},
		{"sched.sharded", true},
	} {
		c := c
		run := func(w *schedWorkload, o domore.Options) {
			if c.sharded {
				domore.RunSharded(w, o)
			} else {
				domore.Run(w, o)
			}
		}
		specs = append(specs, cellSpec{
			id: "domore/" + c.name, engine: "domore", workload: c.name,
			prepare: func() func() {
				w := newSchedWorkload()
				o := schedOptions(c.sharded, opts.Workers, nil)
				return func() { run(w, o) }
			},
			traced: func() (*trace.Recorder, time.Duration) {
				w := newSchedWorkload()
				rec := trace.NewRecorder()
				o := schedOptions(c.sharded, opts.Workers, rec)
				start := time.Now()
				run(w, o)
				return rec, time.Since(start)
			},
		})
	}
	return specs
}

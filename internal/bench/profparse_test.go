package bench

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/workloads"
)

// --- synthetic wire-format test ---

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendField(b []byte, field uint64, payload []byte) []byte {
	b = appendVarint(b, field<<3|2)
	b = appendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendVarintField(b []byte, field, v uint64) []byte {
	b = appendVarint(b, field<<3|0)
	return appendVarint(b, v)
}

// TestParseProfileSynthetic hand-encodes a two-sample profile — one
// lane-labeled, one not — and checks the parser resolves strings,
// stacks, packed values, and labels.
func TestParseProfileSynthetic(t *testing.T) {
	// String table: index 0 must be "".
	strs := []string{"", "lane", "worker", "crossinv/internal/runtime/domore.Run.func1", "samples", "cpu"}

	var prof []byte
	for _, s := range strs {
		prof = appendField(prof, 6, []byte(s))
	}
	// Function id=1 name=3.
	var fn []byte
	fn = appendVarintField(fn, 1, 1)
	fn = appendVarintField(fn, 2, 3)
	prof = appendField(prof, 5, fn)
	// Location id=1 with one Line{function_id=1}.
	var line []byte
	line = appendVarintField(line, 1, 1)
	var loc []byte
	loc = appendVarintField(loc, 1, 1)
	loc = appendField(loc, 4, line)
	prof = appendField(prof, 4, loc)

	// Sample 1: packed location_id [1], packed value [5, 500], label lane=worker.
	var lbl []byte
	lbl = appendVarintField(lbl, 1, 1) // key -> "lane"
	lbl = appendVarintField(lbl, 2, 2) // str -> "worker"
	var s1 []byte
	s1 = appendField(s1, 1, appendVarint(nil, 1))
	s1 = appendField(s1, 2, appendVarint(appendVarint(nil, 5), 500))
	s1 = appendField(s1, 3, lbl)
	prof = appendField(prof, 2, s1)

	// Sample 2: same stack, no label, value [3, 300].
	var s2 []byte
	s2 = appendField(s2, 1, appendVarint(nil, 1))
	s2 = appendField(s2, 2, appendVarint(appendVarint(nil, 3), 300))
	prof = appendField(prof, 2, s2)

	p, err := ParseProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Samples) != 2 {
		t.Fatalf("%d samples, want 2", len(p.Samples))
	}
	if got := p.Samples[0].Labels["lane"]; got != "worker" {
		t.Errorf("sample 0 lane label = %q, want worker", got)
	}
	if len(p.Samples[0].Funcs) != 1 || p.Samples[0].Funcs[0] != strs[3] {
		t.Errorf("sample 0 funcs = %v", p.Samples[0].Funcs)
	}
	if p.Samples[1].Labels["lane"] != "" {
		t.Error("sample 1 should be unlabeled")
	}
	labeled, total := LaneAttribution(p, "crossinv/internal/runtime/")
	if labeled != 500 || total != 800 {
		t.Errorf("attribution = %d/%d, want 500/800", labeled, total)
	}
	if l, tot := LaneAttribution(p, "no/such/pkg"); l != 0 || tot != 0 {
		t.Errorf("foreign-package attribution = %d/%d, want 0/0", l, tot)
	}
}

// --- live acceptance test ---

// TestLaneAttributionLive is the acceptance check for the pprof labeling:
// profile the real engines and assert that at least 90% of the CPU time
// spent under crossinv/internal/runtime/ carries a lane label.
//
// The check is statistical: the profiler ticks at 100Hz regardless of
// load, and on small or heavily shared boxes (1-CPU CI runners
// especially) a single 2-second slice can catch the engines mostly
// parked in scheduler wait — few engine samples, or a sample mix
// dominated by label-free runtime assists. The test therefore profiles in
// independent slices and passes on the first slice that both collected
// enough engine CPU and attributes >= 90% of it; genuine attribution loss
// (a Labeled wrapper dropped from an engine) depresses every slice on
// every box, so retrying never masks it. Slices scale with how starved
// the box is: boxes with fewer CPUs get more attempts.
func TestLaneAttributionLive(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling run skipped in -short mode")
	}
	e, err := workloads.Find("CG")
	if err != nil {
		t.Fatal(err)
	}
	// Profile-based gating runs outside the profiling window so its
	// unlabeled signature work cannot dilute the attribution.
	dist, profitable := profiledDistance(e, 1, 4)

	attempts := 3
	if runtime.NumCPU() < 4 {
		attempts = 6
	}
	const minSamples = 10_000_000 // under 10ms of engine samples: too noisy to judge

	var lastFrac float64
	judged := false
	for a := 0; a < attempts; a++ {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			t.Skipf("cannot start CPU profile: %v", err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			domore.Run(e.Make(1).(domore.Workload), domore.Options{Workers: 4})
			speccross.RunBarriers(e.Make(1).(speccross.Workload), 4)
			if profitable {
				speccross.Run(e.Make(1).(speccross.Workload), speccross.Config{
					Workers: 4, CheckpointEvery: 200, SpecDistance: dist,
				})
				adaptive.Run(e.Make(1).(adaptive.Workload), adaptive.Config{
					Workers: 4, Spec: speccross.Config{SpecDistance: dist},
				})
			} else {
				adaptive.Run(e.Make(1).(adaptive.Workload), adaptive.Config{
					Workers: 4, Policy: adaptive.Fixed(adaptive.EngineDomore),
				})
			}
		}
		pprof.StopCPUProfile()

		p, err := ParseProfile(buf.Bytes())
		if err != nil {
			t.Fatalf("cannot parse own CPU profile: %v", err)
		}
		labeled, total := LaneAttribution(p, "crossinv/internal/runtime/")
		if total < minSamples {
			t.Logf("slice %d: only %dns of engine samples; profiler starved, retrying", a, total)
			continue
		}
		judged = true
		lastFrac = float64(labeled) / float64(total)
		t.Logf("slice %d: %.1f%% of %.0fms engine CPU labeled", a, 100*lastFrac, float64(total)/1e6)
		if lastFrac >= 0.9 {
			return
		}
	}
	if !judged {
		t.Skipf("no profiling slice collected %dns of engine samples in %d attempts; profiler starved", minSamples, attempts)
	}
	t.Errorf("lane labels attribute %.1f%% of engine CPU time in every slice, want >= 90%% in at least one", 100*lastFrac)
}

package bench

import (
	"strings"
	"testing"
)

// TestCkptCellsGate is the checkpoint-substitution acceptance gate: on the
// isolated checkpoint-cost workload, incremental checkpoints must beat
// full snapshots with Mann-Whitney significance. The cell is built so the
// only difference between the two runs is the checkpoint mode; the full
// mode copies the 64k-cell state at every 4-epoch boundary while the
// incremental mode refreshes ~32 tracked cells.
func TestCkptCellsGate(t *testing.T) {
	res, err := Run(Options{
		N: 5, Warmup: 1, Workers: 4,
		Filter: func(id string) bool { return strings.HasPrefix(id, "speccross/ckpt.") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	full, inc := res.Cell("speccross/ckpt.full"), res.Cell("speccross/ckpt.incremental")
	if full == nil || inc == nil {
		t.Fatalf("checkpoint cells missing from grid: %+v", res.Cells)
	}
	if inc.Median >= full.Median {
		t.Errorf("incremental median %.0fns not below full %.0fns", inc.Median, full.Median)
	}
	if p := MannWhitneyP(full.Samples, inc.Samples); p >= 0.05 {
		t.Errorf("full-vs-incremental p = %.3f, want < 0.05 (full %v, inc %v)",
			p, full.Samples, inc.Samples)
	}
	// The allocs column must be live for engine cells: a speccross run
	// allocates signatures, checkpoints, and worker structures.
	for _, c := range []*Cell{full, inc} {
		if c.AllocsPerOp <= 0 {
			t.Errorf("%s: AllocsPerOp = %v, want > 0", c.ID, c.AllocsPerOp)
		}
	}
}

// TestCompareAllocRegressionGate pins the allocs/op gate: allocation
// growth past old×1.25+64 must fail the comparison even when wall time is
// unchanged, and files predating the column (allocs 0) must never flag.
func TestCompareAllocRegressionGate(t *testing.T) {
	old := fixture(baseSamples)
	cur := fixture(baseSamples)
	old.Cell("domore/CG").AllocsPerOp = 1000
	cur.Cell("domore/CG").AllocsPerOp = 2000

	cr := Compare(old, cur, CompareOptions{})
	if cr.AllocRegressions != 1 {
		t.Fatalf("AllocRegressions = %d, want 1", cr.AllocRegressions)
	}
	if !cr.Failed() {
		t.Fatal("doubled allocs/op did not gate")
	}
	var sb strings.Builder
	if err := cr.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ALLOCS") {
		t.Errorf("table does not mark the alloc regression:\n%s", sb.String())
	}

	// Within threshold: 20% growth plus slack stays quiet.
	cur.Cell("domore/CG").AllocsPerOp = 1200
	if cr := Compare(old, cur, CompareOptions{}); cr.AllocRegressions != 0 || cr.Failed() {
		t.Errorf("20%% alloc growth flagged: %d regressions", cr.AllocRegressions)
	}

	// Old file predates the column: no gate regardless of new counts.
	old.Cell("domore/CG").AllocsPerOp = 0
	cur.Cell("domore/CG").AllocsPerOp = 1 << 20
	if cr := Compare(old, cur, CompareOptions{}); cr.AllocRegressions != 0 {
		t.Errorf("pre-column old file flagged %d alloc regressions", cr.AllocRegressions)
	}
}

package bench

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
)

// This file is a minimal reader for the pprof profile.proto wire format,
// hand-decoded so the lane-attribution check needs no dependency outside
// the standard library. It extracts exactly what the check consumes:
// per-sample values, string labels (the "engine"/"lane" pairs
// trace.Labeled attaches), and the function names on each sample's stack.

// ProfSample is one decoded profile sample.
type ProfSample struct {
	// Value holds the sample-type values; for CPU profiles index 1 is
	// nanoseconds and index 0 is the sample count.
	Value []int64
	// Labels holds the string labels attached via pprof.Do.
	Labels map[string]string
	// Funcs lists the function names on the stack, leaf first.
	Funcs []string
}

// Prof is a decoded CPU profile.
type Prof struct {
	Samples []ProfSample
}

// ParseProfile decodes a pprof protobuf profile (gzipped or raw).
func ParseProfile(data []byte) (*Prof, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("bench: profile gunzip: %w", err)
		}
		defer zr.Close()
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("bench: profile gunzip: %w", err)
		}
	}

	var strtab []string
	var rawSamples [][]byte
	locLines := map[uint64][]uint64{} // location id → function ids, leaf first
	funcNames := map[uint64]uint64{}  // function id → strtab index

	// Pass 1: string table, locations, functions.
	err := eachField(data, func(field uint64, wire int, v uint64, payload []byte) error {
		switch field {
		case 2: // Sample
			rawSamples = append(rawSamples, payload)
		case 4: // Location
			var id uint64
			var fns []uint64
			if err := eachField(payload, func(f uint64, w int, v uint64, p []byte) error {
				switch f {
				case 1:
					id = v
				case 4: // Line
					return eachField(p, func(lf uint64, lw int, lv uint64, lp []byte) error {
						if lf == 1 {
							fns = append(fns, lv)
						}
						return nil
					})
				}
				return nil
			}); err != nil {
				return err
			}
			locLines[id] = fns
		case 5: // Function
			var id, name uint64
			if err := eachField(payload, func(f uint64, w int, v uint64, p []byte) error {
				switch f {
				case 1:
					id = v
				case 2:
					name = v
				}
				return nil
			}); err != nil {
				return err
			}
			funcNames[id] = name
		case 6: // string_table
			strtab = append(strtab, string(payload))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}

	// Pass 2: samples, resolved against the tables.
	p := &Prof{}
	for _, raw := range rawSamples {
		s := ProfSample{Labels: map[string]string{}}
		var locIDs []uint64
		err := eachField(raw, func(f uint64, w int, v uint64, payload []byte) error {
			switch f {
			case 1: // location_id (repeated, possibly packed)
				if w == 2 {
					return eachVarint(payload, func(x uint64) { locIDs = append(locIDs, x) })
				}
				locIDs = append(locIDs, v)
			case 2: // value (repeated, possibly packed)
				if w == 2 {
					return eachVarint(payload, func(x uint64) { s.Value = append(s.Value, int64(x)) })
				}
				s.Value = append(s.Value, int64(v))
			case 3: // Label
				var key, sv uint64
				if err := eachField(payload, func(lf uint64, lw int, lv uint64, lp []byte) error {
					switch lf {
					case 1:
						key = lv
					case 2:
						sv = lv
					}
					return nil
				}); err != nil {
					return err
				}
				if sv != 0 {
					s.Labels[str(key)] = str(sv)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, id := range locIDs {
			for _, fn := range locLines[id] {
				s.Funcs = append(s.Funcs, str(funcNames[fn]))
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// eachField walks one protobuf message, invoking fn per field. For varint
// fields v carries the value; for length-delimited fields payload carries
// the bytes. Fixed32/fixed64 fields are skipped (the profile messages the
// parser reads never use them).
func eachField(data []byte, fn func(field uint64, wire int, v uint64, payload []byte) error) error {
	for len(data) > 0 {
		tag, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("bench: bad profile tag varint")
		}
		data = data[n:]
		field, wire := tag>>3, int(tag&7)
		switch wire {
		case 0: // varint
			v, n := uvarint(data)
			if n <= 0 {
				return fmt.Errorf("bench: bad profile varint (field %d)", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return fmt.Errorf("bench: truncated fixed64 (field %d)", field)
			}
			data = data[8:]
		case 2: // length-delimited
			l, n := uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("bench: truncated length-delimited (field %d)", field)
			}
			if err := fn(field, wire, 0, data[n:n+int(l)]); err != nil {
				return err
			}
			data = data[n+int(l):]
		case 5: // fixed32
			if len(data) < 4 {
				return fmt.Errorf("bench: truncated fixed32 (field %d)", field)
			}
			data = data[4:]
		default:
			return fmt.Errorf("bench: unsupported wire type %d (field %d)", wire, field)
		}
	}
	return nil
}

// eachVarint decodes a packed varint payload.
func eachVarint(data []byte, fn func(uint64)) error {
	for len(data) > 0 {
		v, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("bench: bad packed varint")
		}
		fn(v)
		data = data[n:]
	}
	return nil
}

// uvarint is encoding/binary.Uvarint without the import ceremony's
// surprises: returns (value, bytes consumed), n<=0 on malformed input.
func uvarint(data []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(data) && i < 10; i++ {
		b := data[i]
		v |= uint64(b&0x7f) << (7 * uint(i))
		if b < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// LaneAttribution sums CPU time (sample-type index 1, falling back to
// index 0) over samples whose stack contains pkgSubstr, split by whether
// the sample carries a "lane" label. The acceptance check asserts
// labeled/(labeled+unlabeled) ≥ 0.9 for the engine packages: the
// trace.Labeled wrappers must cover (nearly) all engine goroutines.
func LaneAttribution(p *Prof, pkgSubstr string) (labeled, total int64) {
	for _, s := range p.Samples {
		inPkg := false
		for _, fn := range s.Funcs {
			if strings.Contains(fn, pkgSubstr) {
				inPkg = true
				break
			}
		}
		if !inPkg {
			continue
		}
		v := int64(1)
		if len(s.Value) > 1 {
			v = s.Value[1]
		} else if len(s.Value) == 1 {
			v = s.Value[0]
		}
		total += v
		if s.Labels["lane"] != "" {
			labeled += v
		}
	}
	return labeled, total
}

package bench

import (
	"strings"
	"testing"
)

// fixture builds a result whose cells have the given per-cell sample sets.
func fixture(cells map[string][]float64) *Result {
	n := 0
	for _, s := range cells {
		n = len(s)
	}
	r := &Result{Schema: Schema, N: n, Warmup: 1, Workers: 4, Scale: 1,
		Env: Env{GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8, CPUModel: "testcpu"}}
	for id, samples := range cells {
		c := Cell{ID: id, Engine: "e", Workload: "w", Samples: samples}
		c.summarize()
		r.Cells = append(r.Cells, c)
	}
	return r
}

var baseSamples = map[string][]float64{
	"domore/CG":   {1000, 1010, 990, 1005, 995, 1002, 998, 1008},
	"barrier/CG":  {2000, 2020, 1980, 2010, 1990, 2005, 1995, 2015},
	"micro/queue": {500, 505, 495, 502, 498, 501, 499, 503},
}

// TestCompareIdentical proves the zero-exit side of the acceptance gate:
// comparing a file against identical data flags nothing.
func TestCompareIdentical(t *testing.T) {
	old := fixture(baseSamples)
	cur := fixture(baseSamples)
	cr := Compare(old, cur, CompareOptions{})
	if cr.Failed() {
		t.Error("identical data reported as failed")
	}
	if cr.Regressions != 0 || cr.Improvements != 0 {
		t.Errorf("identical data: %d regressions, %d improvements, want 0/0", cr.Regressions, cr.Improvements)
	}
	if cr.EnvMismatch() {
		t.Errorf("same env flagged as mismatch: %v", cr.EnvWarnings)
	}
}

// TestCompareInjectedRegression proves the nonzero-exit side: a synthetic
// 50% slowdown on one cell must be detected as a significant regression.
func TestCompareInjectedRegression(t *testing.T) {
	old := fixture(baseSamples)
	slowed := map[string][]float64{}
	for id, s := range baseSamples {
		slowed[id] = append([]float64(nil), s...)
	}
	for i := range slowed["domore/CG"] {
		slowed["domore/CG"][i] *= 1.5
	}
	cur := fixture(slowed)

	cr := Compare(old, cur, CompareOptions{})
	if !cr.Failed() {
		t.Fatal("injected 50% regression not gated")
	}
	if cr.Regressions != 1 {
		t.Errorf("regressions = %d, want 1", cr.Regressions)
	}
	var hit *Delta
	for i := range cr.Deltas {
		if cr.Deltas[i].ID == "domore/CG" {
			hit = &cr.Deltas[i]
		}
	}
	if hit == nil || !hit.Significant || hit.Rel < 0.4 {
		t.Fatalf("domore/CG delta not flagged: %+v", hit)
	}
	var sb strings.Builder
	if err := cr.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("table lacks REGRESSION marker:\n%s", sb.String())
	}

	// The mirror image is an improvement, not a failure.
	rev := Compare(cur, old, CompareOptions{})
	if rev.Failed() {
		t.Error("speedup gated as a regression")
	}
	if rev.Improvements != 1 {
		t.Errorf("improvements = %d, want 1", rev.Improvements)
	}
}

// TestCompareEnvMismatchDemotes checks satellite 3's cross-machine rule:
// a regression measured on a different CPU is reported but never gates.
func TestCompareEnvMismatchDemotes(t *testing.T) {
	old := fixture(baseSamples)
	slowed := map[string][]float64{}
	for id, s := range baseSamples {
		slowed[id] = append([]float64(nil), s...)
		for i := range slowed[id] {
			slowed[id][i] *= 2
		}
	}
	cur := fixture(slowed)
	cur.Env.CPUModel = "othercpu"
	cur.Env.GOMAXPROCS = 2

	cr := Compare(old, cur, CompareOptions{})
	if !cr.EnvMismatch() {
		t.Fatal("differing env not detected")
	}
	if cr.Regressions == 0 {
		t.Error("regressions should still be counted under env mismatch")
	}
	if cr.Failed() {
		t.Error("env-mismatched comparison must not gate")
	}
	var sb strings.Builder
	if err := cr.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"env mismatch", "cpu_model", "gomaxprocs", "not gated"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table lacks %q:\n%s", want, sb.String())
		}
	}
}

// TestCompareGridDrift: cells present on only one side are listed, never
// gated on.
func TestCompareGridDrift(t *testing.T) {
	old := fixture(baseSamples)
	cur := fixture(map[string][]float64{
		"domore/CG":    baseSamples["domore/CG"],
		"barrier/CG":   baseSamples["barrier/CG"],
		"adaptive/NEW": {900, 905, 895, 902, 898, 901, 899, 903},
	})
	cr := Compare(old, cur, CompareOptions{})
	if cr.Failed() {
		t.Error("grid drift gated")
	}
	if len(cr.OnlyOld) != 1 || cr.OnlyOld[0] != "micro/queue" {
		t.Errorf("OnlyOld = %v, want [micro/queue]", cr.OnlyOld)
	}
	if len(cr.OnlyNew) != 1 || cr.OnlyNew[0] != "adaptive/NEW" {
		t.Errorf("OnlyNew = %v, want [adaptive/NEW]", cr.OnlyNew)
	}
}

// TestCompareThreshold: a significant-but-tiny shift stays unflagged.
func TestCompareThreshold(t *testing.T) {
	old := fixture(baseSamples)
	nudged := map[string][]float64{}
	for id, s := range baseSamples {
		nudged[id] = append([]float64(nil), s...)
	}
	for i := range nudged["micro/queue"] {
		nudged["micro/queue"][i] *= 1.01 // 1% < default 3% threshold
	}
	cr := Compare(old, fixture(nudged), CompareOptions{})
	if cr.Failed() {
		t.Error("1% shift gated despite 3% threshold")
	}
	// Tightening the threshold flags it (the shift is fully separated, so
	// p is small).
	cr = Compare(old, fixture(nudged), CompareOptions{Threshold: 0.005})
	if !cr.Failed() {
		t.Error("1% shift not gated at 0.5% threshold")
	}
}

package bench

import (
	"strings"
	"testing"

	_ "crossinv/internal/workloads/blackscholes"
	_ "crossinv/internal/workloads/cg"
	_ "crossinv/internal/workloads/eclat"
	_ "crossinv/internal/workloads/equake"
	_ "crossinv/internal/workloads/fdtd"
	_ "crossinv/internal/workloads/fluidanimate"
	_ "crossinv/internal/workloads/jacobi"
	_ "crossinv/internal/workloads/llubench"
	_ "crossinv/internal/workloads/loopdep"
	_ "crossinv/internal/workloads/phased"
	_ "crossinv/internal/workloads/symm"
)

// TestRunCGGrid runs the harness end to end on one workload that is
// applicable to all four engines (CG), plus one microbenchmark, at the
// CI smoke size: the produced Result must validate against the schema,
// cover all four engines, and carry trace-derived breakdowns.
func TestRunCGGrid(t *testing.T) {
	res, err := Run(Options{
		N: 2, Warmup: 1, Workers: 4,
		Breakdown: true,
		Filter: func(id string) bool {
			return strings.HasSuffix(id, "/CG") || id == "micro/queue.spsc"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("harness produced invalid result: %v", err)
	}

	wantIDs := []string{"barrier/CG", "domore/CG", "speccross/CG", "adaptive/CG", "micro/queue.spsc"}
	for _, id := range wantIDs {
		c := res.Cell(id)
		if c == nil {
			t.Errorf("missing cell %s", id)
			continue
		}
		if len(c.Samples) != 2 {
			t.Errorf("%s: %d samples, want 2", id, len(c.Samples))
		}
		if c.Engine != "micro" && len(c.Breakdown) == 0 {
			t.Errorf("%s: no breakdown from traced run", id)
		}
		for class, frac := range c.Breakdown {
			if frac < 0 || frac > 1.5 {
				// Fractions can slightly exceed 1 for nested spans
				// (task inside iteration) but not wildly.
				t.Errorf("%s: breakdown[%s] = %v out of range", id, class, frac)
			}
		}
	}
	if res.Env.GoVersion == "" || res.Env.GOMAXPROCS == 0 {
		t.Errorf("environment not captured: %+v", res.Env)
	}

	// The filter is honored: nothing beyond the requested cells.
	if len(res.Cells) != len(wantIDs) {
		ids := make([]string, 0, len(res.Cells))
		for _, c := range res.Cells {
			ids = append(ids, c.ID)
		}
		t.Errorf("got cells %v, want exactly %v", ids, wantIDs)
	}
}

// TestFullGridEnumeration checks the cell grid against the registry's
// applicability columns without running anything.
func TestFullGridEnumeration(t *testing.T) {
	specs := cellSpecs(Options{N: 1, Workers: 4, Scale: 1})
	byEngine := map[string]int{}
	ids := map[string]bool{}
	for _, s := range specs {
		if ids[s.id] {
			t.Errorf("duplicate cell id %s", s.id)
		}
		ids[s.id] = true
		byEngine[s.engine]++
	}
	for _, engine := range []string{"barrier", "domore", "speccross", "adaptive", "micro"} {
		if byEngine[engine] == 0 {
			t.Errorf("no cells for engine %s", engine)
		}
	}
	// Spot-check applicability gating: ECLAT is DOMORE-only in Table 5.1.
	if ids["speccross/ECLAT"] {
		t.Error("speccross cell for a non-speculatable workload")
	}
	if !ids["domore/ECLAT"] {
		t.Error("missing domore/ECLAT")
	}
}

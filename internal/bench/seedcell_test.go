package bench

import (
	"strings"
	"testing"

	"crossinv/internal/runtime/adaptive"
)

// TestSeedKernelBehavior pins the mechanism the seed cells measure: the
// cold controller escalates to unbounded speculation and misspeculates on
// the hot-cell recurrence, while the statically seeded run speculates
// inside the proven distance bound and never rolls back. Both must still
// match the sequential result — seeding is a performance fact, never a
// correctness one.
func TestSeedKernelBehavior(t *testing.T) {
	seq := seedKernel()
	seq.RunSequential()
	want := seq.Checksum()

	run := func(static bool) adaptive.Stats {
		k := seedKernel()
		st := adaptive.Run(k, seedConfig(static, 4, nil))
		if got := k.Checksum(); got != want {
			t.Fatalf("static=%v checksum %x != sequential %x", static, got, want)
		}
		return st
	}

	cold := run(false)
	var coldMisspec, coldSpec int
	for _, s := range cold.Samples {
		if s.Engine == adaptive.EngineSpecCross {
			coldSpec++
			if s.Misspeculated {
				coldMisspec++
			}
		}
	}
	if coldSpec == 0 {
		t.Error("cold run never escalated to speculation; the manifest rate is not below SpecEnter")
	}
	if coldMisspec == 0 {
		t.Error("cold run never misspeculated; the cells have no structural gap to measure")
	}

	static := run(true)
	var staticSpec int
	for _, s := range static.Samples {
		if s.Misspeculated {
			t.Errorf("seeded run misspeculated in window [%d,%d); the proven bound %d did not gate it",
				s.StartEpoch, s.EndEpoch, seedMinDistance)
		}
		if s.Engine == adaptive.EngineSpecCross {
			staticSpec++
		}
	}
	if staticSpec == 0 {
		t.Error("seeded run never speculated; the bound made speculation unreachable")
	}
}

// TestSeedCellsPassMannWhitneyGate runs the two cells through the real
// harness and holds the cold/static gap to the same significance gate
// `bench -compare` applies between snapshots: the seeded cell must be
// faster at the Mann-Whitney 0.05 level. The misspeculation cost the cold
// run pays (whole-window rollback plus barrier re-execution, then policy
// backoff) is structural, so the gap survives noisy CI machines.
func TestSeedCellsPassMannWhitneyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timed cells in -short mode")
	}
	attempt := func(n int) (p, coldMed, staticMed float64) {
		res, err := Run(Options{
			N: n, Warmup: 1, Workers: 4,
			Filter: func(id string) bool { return strings.HasPrefix(id, "adaptive/seed.") },
		})
		if err != nil {
			t.Fatal(err)
		}
		byID := map[string]*Cell{}
		for i := range res.Cells {
			byID[res.Cells[i].ID] = &res.Cells[i]
		}
		cold, static := byID["adaptive/seed.cold"], byID["adaptive/seed.static"]
		if cold == nil || static == nil {
			t.Fatalf("cells missing from grid: %v", res.Cells)
		}
		return MannWhitneyP(cold.Samples, static.Samples), cold.Median, static.Median
	}
	// The gap is structural but the samples are wall times on a shared
	// machine; escalating retries with more samples keep a noise burst
	// during one batch from failing the build.
	var p, coldMed, staticMed float64
	for _, n := range []int{12, 20, 28} {
		p, coldMed, staticMed = attempt(n)
		if p < 0.05 && staticMed < coldMed {
			break
		}
	}
	if staticMed >= coldMed {
		t.Errorf("seeded median %.0fns not below cold median %.0fns", staticMed, coldMed)
	}
	if p >= 0.05 {
		t.Errorf("cold/static gap not significant: Mann-Whitney p = %.3f (cold median %.0fns, static %.0fns)",
			p, coldMed, staticMed)
	}
}

package bench

import (
	"runtime"
	"strings"
	"testing"

	"crossinv/internal/raceflag"
)

// TestSchedCellsGate is the sharded-scheduler acceptance gate: on the
// isolated scheduler-bound workload at 8 workers, the sharded scheduler
// must beat the flat one with Mann-Whitney significance. The cells differ
// only in the scheduler (same workload, same worker count), so the gap is
// the detection split across lanes plus the batched condition publication.
//
// The gap is parallel detection, so it needs real cores: time-sliced on
// one CPU the lanes serialize and their coordination is pure overhead
// (measured ~20% slower, every lane/batch tuning). The gate skips there,
// like it skips under the race detector; the cells still run in BENCH
// snapshots on any box, so the numbers stay visible even where the gate
// cannot be held.
func TestSchedCellsGate(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("timing gate is meaningless under the race detector's slowdown")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("sharded-scheduler gate needs >=2 CPUs; lane parallelism cannot manifest time-sliced on one core")
	}
	res, err := Run(Options{
		N: 5, Warmup: 1, Workers: 8,
		Filter: func(id string) bool { return strings.HasPrefix(id, "domore/sched.") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	single, sharded := res.Cell("domore/sched.single"), res.Cell("domore/sched.sharded")
	if single == nil || sharded == nil {
		t.Fatalf("scheduler cells missing from grid: %+v", res.Cells)
	}
	if sharded.Median >= single.Median {
		t.Errorf("sharded median %.0fns not below single %.0fns", sharded.Median, single.Median)
	}
	if p := MannWhitneyP(single.Samples, sharded.Samples); p >= 0.05 {
		t.Errorf("single-vs-sharded p = %.3f, want < 0.05 (single %v, sharded %v)",
			p, single.Samples, sharded.Samples)
	}
	// The allocs column must be live: both engines build queues, shadow
	// stores, and worker structures per run. The sharded engine's per-run
	// setup must stay in the same regime as the flat one's — its steady
	// state is allocation-free (pinned by the domore package's marginal
	// allocs test), so anything beyond setup growth here is a leak.
	for _, c := range []*Cell{single, sharded} {
		if c.AllocsPerOp <= 0 {
			t.Errorf("%s: AllocsPerOp = %v, want > 0", c.ID, c.AllocsPerOp)
		}
	}
	if sharded.AllocsPerOp > 50*single.AllocsPerOp {
		t.Errorf("sharded allocs/op %.0f vs single %.0f: sharded steady state should not allocate",
			sharded.AllocsPerOp, single.AllocsPerOp)
	}
}

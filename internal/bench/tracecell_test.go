package bench

import (
	"strings"
	"testing"
)

// TestTraceOverheadGate is the always-on tracing acceptance gate: on the
// hot daemon path, request tracing (spans + engine events + flight span
// extraction) must stay within 2% of the tracing-disabled median. The
// gate only fails on a statistically significant breach — median beyond
// the budget AND Mann-Whitney p < 0.05 — and escalates the sample count
// before concluding, since single-digit-percent medians on a fast path
// are noisy at small N.
func TestTraceOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate needs repeated daemon invocations; skipped in -short")
	}
	const budget = 1.02
	var offMed, onMed, p float64
	for _, n := range []int{12, 20, 28} {
		res, err := Run(Options{
			N: n, Warmup: 2, Workers: 4,
			Filter: func(id string) bool { return strings.HasPrefix(id, "daemon/trace.") },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		off, on := res.Cell("daemon/trace.off"), res.Cell("daemon/trace.on")
		if off == nil || on == nil {
			t.Fatalf("trace cells missing from grid: %+v", res.Cells)
		}
		offMed, onMed = off.Median, on.Median
		if onMed <= offMed*budget {
			return
		}
		if p = MannWhitneyP(off.Samples, on.Samples); p >= 0.05 {
			return // over budget but indistinguishable from noise
		}
		t.Logf("N=%d: trace.on median %.0fns vs trace.off %.0fns (%.2f%%, p=%.3f); escalating",
			n, onMed, offMed, 100*(onMed/offMed-1), p)
	}
	t.Errorf("always-on tracing overhead: trace.on median %.0fns > trace.off %.0fns × %.2f (%.2f%% over, p=%.3f)",
		onMed, offMed, budget, 100*(onMed/offMed-1), p)
}

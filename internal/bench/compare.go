package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// CompareOptions tunes the significance gate.
type CompareOptions struct {
	// Alpha is the Mann-Whitney significance level (default 0.05).
	Alpha float64
	// Threshold is the minimum relative median delta to flag even when
	// significant (default 0.03): sub-3% shifts on a shared CI runner are
	// noise regardless of p-value.
	Threshold float64
}

func (o *CompareOptions) fill() {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.03
	}
}

// Delta is one cell's old-vs-new comparison.
type Delta struct {
	ID        string
	OldMedian float64
	NewMedian float64
	// Rel is (new-old)/old: positive means slower.
	Rel float64
	// P is the two-sided Mann-Whitney p-value over the raw samples.
	P float64
	// Significant means p < alpha AND |Rel| >= threshold.
	Significant bool
	// OldAllocs/NewAllocs are the cells' allocs/op columns (zero when the
	// file predates the column).
	OldAllocs, NewAllocs float64
	// AllocRegression flags allocation growth past the gate (new >
	// old×1.25 + 64; the additive slack keeps near-zero cells from
	// flagging on a handful of allocations). Only set when the old file
	// carries the column.
	AllocRegression bool
}

// CompareResult is the full old-vs-new report.
type CompareResult struct {
	Deltas []Delta
	// OnlyOld/OnlyNew list cells present in one file but not the other
	// (grid drift, e.g. a new workload) — reported, never failed on.
	OnlyOld, OnlyNew []string
	// EnvWarnings lists environment differences between the two files.
	EnvWarnings []string
	// Regressions and Improvements count significant deltas by sign.
	Regressions, Improvements int
	// AllocRegressions counts cells whose allocs/op grew past the gate
	// threshold. Gated like time regressions (allocation counts do not
	// depend on machine speed, so they gate even across environments).
	AllocRegressions int
}

// EnvMismatch reports whether the two runs came from different
// environments. Compare demotes regressions to warnings when true: a
// slower CPU model is not a code regression.
func (cr *CompareResult) EnvMismatch() bool { return len(cr.EnvWarnings) > 0 }

// Failed reports whether the comparison should gate (nonzero exit):
// significant regressions on matching environments, or allocation
// regressions anywhere.
func (cr *CompareResult) Failed() bool {
	return (cr.Regressions > 0 && !cr.EnvMismatch()) || cr.AllocRegressions > 0
}

// Compare runs the Mann-Whitney U significance gate cell by cell over two
// BENCH files. Cells are matched by ID; raw samples (not summaries) feed
// the test, so both files must carry them (Validate enforces it).
func Compare(old, cur *Result, opts CompareOptions) *CompareResult {
	opts.fill()
	cr := &CompareResult{EnvWarnings: envDiff(old.Env, cur.Env)}
	newSeen := map[string]bool{}
	for i := range cur.Cells {
		newSeen[cur.Cells[i].ID] = false
	}
	for i := range old.Cells {
		oc := &old.Cells[i]
		nc := cur.Cell(oc.ID)
		if nc == nil {
			cr.OnlyOld = append(cr.OnlyOld, oc.ID)
			continue
		}
		newSeen[oc.ID] = true
		d := Delta{
			ID:        oc.ID,
			OldMedian: oc.Median,
			NewMedian: nc.Median,
			P:         MannWhitneyP(oc.Samples, nc.Samples),
		}
		if oc.Median > 0 {
			d.Rel = (nc.Median - oc.Median) / oc.Median
		}
		d.Significant = d.P < opts.Alpha && math.Abs(d.Rel) >= opts.Threshold
		if d.Significant {
			if d.Rel > 0 {
				cr.Regressions++
			} else {
				cr.Improvements++
			}
		}
		d.OldAllocs, d.NewAllocs = oc.AllocsPerOp, nc.AllocsPerOp
		if d.OldAllocs > 0 && d.NewAllocs > d.OldAllocs*1.25+64 {
			d.AllocRegression = true
			cr.AllocRegressions++
		}
		cr.Deltas = append(cr.Deltas, d)
	}
	for id, seen := range newSeen {
		if !seen {
			cr.OnlyNew = append(cr.OnlyNew, id)
		}
	}
	sort.Strings(cr.OnlyNew)
	return cr
}

// envDiff lists the environment fields that differ between two runs.
func envDiff(a, b Env) []string {
	var warns []string
	diff := func(field, av, bv string) {
		if av != bv {
			warns = append(warns, fmt.Sprintf("%s: %q vs %q", field, av, bv))
		}
	}
	diff("go_version", a.GoVersion, b.GoVersion)
	diff("goos", a.GOOS, b.GOOS)
	diff("goarch", a.GOARCH, b.GOARCH)
	diff("cpu_model", a.CPUModel, b.CPUModel)
	if a.GOMAXPROCS != b.GOMAXPROCS {
		warns = append(warns, fmt.Sprintf("gomaxprocs: %d vs %d", a.GOMAXPROCS, b.GOMAXPROCS))
	}
	return warns
}

// WriteTable renders a benchstat-style report: one row per matched cell
// with the median shift and its p-value, then grid and environment notes.
func (cr *CompareResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-28s %14s %14s %9s %8s\n", "cell", "old median", "new median", "delta", "p"); err != nil {
		return err
	}
	for _, d := range cr.Deltas {
		mark := ""
		if d.Significant {
			if d.Rel > 0 {
				mark = "  REGRESSION"
			} else {
				mark = "  improved"
			}
		}
		if d.AllocRegression {
			mark += fmt.Sprintf("  ALLOCS %.0f→%.0f", d.OldAllocs, d.NewAllocs)
		}
		if _, err := fmt.Fprintf(w, "%-28s %14s %14s %+8.1f%% %8.3f%s\n",
			d.ID, fmtNs(d.OldMedian), fmtNs(d.NewMedian), 100*d.Rel, d.P, mark); err != nil {
			return err
		}
	}
	for _, id := range cr.OnlyOld {
		fmt.Fprintf(w, "only in old: %s\n", id)
	}
	for _, id := range cr.OnlyNew {
		fmt.Fprintf(w, "only in new: %s\n", id)
	}
	for _, warn := range cr.EnvWarnings {
		fmt.Fprintf(w, "env mismatch: %s\n", warn)
	}
	fmt.Fprintf(w, "significant: %d regression(s), %d improvement(s), %d alloc regression(s)\n",
		cr.Regressions, cr.Improvements, cr.AllocRegressions)
	if cr.Regressions > 0 && cr.EnvMismatch() {
		fmt.Fprintf(w, "note: environments differ; regressions reported but not gated\n")
	}
	return nil
}

// fmtNs renders nanoseconds with an adaptive unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

package bench

import (
	"time"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/workloads/epochal"
)

// Seed cells quantify what the static cross-invocation analyzer buys the
// adaptive runtime: the same workload run cold (no facts — the controller
// probes, escalates to unbounded speculation, misspeculates on the real
// forward dependence, rolls back, and backs off, repeatedly) versus
// seeded via Config.SeedFromFacts with the analyzer's proven verdict
// (forward-only, minimum distance seedMinDistance), which pre-loads the
// speculative-range bound so every speculative window is gated inside the
// proven window and never misspeculates.
//
//	adaptive/seed.cold   — Config zero value: probe, misspeculate, flap
//	adaptive/seed.static — SeedFromFacts("forward-only", seedMinDistance)
//
// The gap between the two cells is structural (whole-window rollback and
// barrier re-execution on every unbounded speculative attempt), which is
// what lets TestSeedCellsPassMannWhitneyGate hold it to the same
// significance gate `bench -compare` applies between snapshots.
const (
	seedEpochs = 48
	seedTasks  = 32
	seedWindow = 6
	// seedMinDistance is the kernel's exact minimum dependence distance in
	// tasks: task 0 of every epoch reads and rewrites one hot cell, a
	// lag-1-epoch recurrence, so conflicting tasks sit exactly one epoch —
	// seedTasks tasks — apart. This is the distance the xdep analyzer
	// would prove and the plan cache would replay.
	seedMinDistance = seedTasks
	// seedSpin is the per-task real-compute spin (see Update below).
	seedSpin = 5000
)

// seedKernel builds the forward-only pipeline instance. Every task owns a
// private cell; task 0 additionally carries the hot-cell recurrence. The
// manifest rate is 1/seedTasks ≈ 3% — below the threshold policy's
// SpecEnter bound, so a cold controller always escalates to speculation.
func seedKernel() *epochal.Kernel {
	const hot = uint64(seedEpochs * seedTasks) // one past the private cells
	k := &epochal.Kernel{
		BenchName: "SEED-FWD",
		State:     make([]int64, seedEpochs*seedTasks+1),
		NumEpochs: seedEpochs,
		SeqCost:   150,
	}
	k.TasksOf = func(int) int { return seedTasks }
	k.Access = func(e, t int, reads, writes []uint64) ([]uint64, []uint64) {
		a := uint64(e*seedTasks + t)
		if t == 0 {
			return append(reads, a, hot), append(writes, a, hot)
		}
		return append(reads, a), append(writes, a)
	}
	k.Update = func(e, t int) {
		g := e*seedTasks + t
		// Real compute, not just the virtual TaskCost the sim uses: the
		// cells compare wall time, and with free tasks every engine cell
		// measures only its own overhead — the misspeculation re-execution
		// the cold run pays would vanish into it. An LCG spin makes task
		// compute dominate, so re-executing a rolled-back window costs what
		// it costs in the paper's regime.
		v := k.State[g]
		for i := 0; i < seedSpin; i++ {
			v = v*6364136223846793005 + 1442695040888963407
		}
		k.State[g] = v*3 + int64(g) + 1
		if t == 0 {
			k.State[hot] = k.State[hot]*3 + int64(e) + 1
		}
	}
	k.TaskCost = func(int, int) int64 { return seedSpin }
	return k
}

func seedConfig(static bool, workers int, rec *trace.Recorder) adaptive.Config {
	cfg := adaptive.Config{Workers: workers, Window: seedWindow, Trace: rec}
	if static {
		if !cfg.SeedFromFacts("forward-only", seedMinDistance) {
			panic("bench seed cell: SeedFromFacts rejected forward-only")
		}
	}
	return cfg
}

// seedSpecs builds the two cells. Each sample gets a fresh kernel (the
// run mutates State) and a fresh config (the threshold policy is
// stateful).
func seedSpecs(opts Options) []cellSpec {
	var specs []cellSpec
	for _, c := range []struct {
		name   string
		static bool
	}{
		{"seed.cold", false},
		{"seed.static", true},
	} {
		c := c
		specs = append(specs, cellSpec{
			id: "adaptive/" + c.name, engine: "adaptive", workload: c.name,
			prepare: func() func() {
				k := seedKernel()
				cfg := seedConfig(c.static, opts.Workers, nil)
				return func() { adaptive.Run(k, cfg) }
			},
			traced: func() (*trace.Recorder, time.Duration) {
				k := seedKernel()
				rec := trace.NewRecorder()
				cfg := seedConfig(c.static, opts.Workers, rec)
				start := time.Now()
				adaptive.Run(k, cfg)
				return rec, time.Since(start)
			},
		})
	}
	return specs
}

package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/queue"
	"crossinv/internal/runtime/shadow"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/workloads"
)

// Options configures one harness run.
type Options struct {
	// N is the number of timed samples per cell (default 5).
	N int
	// Warmup is the number of untimed runs before sampling (default 1).
	Warmup int
	// Workers is the engine worker count (default 4).
	Workers int
	// Scale is the workload scale passed to Entry.Make (default 1).
	Scale int
	// Filter, when non-nil, selects cells by ID; nil runs everything.
	Filter func(id string) bool
	// Breakdown enables one extra traced run per engine cell to derive
	// the stall/check/recovery time fractions (default off: tracing
	// perturbs the timed runs' cache state and the extra run costs time).
	Breakdown bool
	// Log, when non-nil, receives one progress line per cell.
	Log io.Writer
}

func (o *Options) fill() {
	if o.N <= 0 {
		o.N = 5
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
}

// cellSpec is one runnable cell: prepare builds fresh state (untimed) and
// returns the closure the harness times. trace, when non-nil, performs a
// full traced run and returns the recorder plus the run's wall time — the
// breakdown source. resolve, when non-nil, is called once before the
// cell's first run and returns its Note; it exists so the expensive §4.4
// profiling pass runs only for cells that actually execute (enumeration
// and -list stay cheap).
type cellSpec struct {
	id, engine, workload string
	resolve              func() string
	prepare              func() func()
	traced               func() (*trace.Recorder, time.Duration)
	// cleanup, when non-nil, runs after the cell's last sample (scratch
	// state teardown, outside the timed region).
	cleanup func()
}

// Run executes the full cell grid and returns the summarized result.
func Run(opts Options) (*Result, error) {
	opts.fill()
	specs := cellSpecs(opts)
	if len(specs) == 0 {
		return nil, fmt.Errorf("bench: filter selected no cells")
	}
	res := &Result{
		Schema:    Schema,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		N:         opts.N,
		Warmup:    opts.Warmup,
		Workers:   opts.Workers,
		Scale:     opts.Scale,
		Env:       CaptureEnv("."),
	}
	for _, s := range specs {
		c := Cell{ID: s.id, Engine: s.engine, Workload: s.workload}
		if s.resolve != nil {
			c.Note = s.resolve()
		}
		for i := 0; i < opts.Warmup; i++ {
			s.prepare()()
		}
		allocs := make([]float64, 0, opts.N)
		for i := 0; i < opts.N; i++ {
			run := s.prepare()
			// MemStats reads bracket (never overlap) the timed region, so
			// the allocs column costs the samples nothing.
			var msBefore, msAfter runtime.MemStats
			runtime.ReadMemStats(&msBefore)
			start := time.Now()
			run()
			elapsed := time.Since(start)
			runtime.ReadMemStats(&msAfter)
			c.Samples = append(c.Samples, float64(elapsed.Nanoseconds()))
			allocs = append(allocs, float64(msAfter.Mallocs-msBefore.Mallocs))
		}
		c.summarize()
		c.AllocsPerOp = Median(allocs)
		if opts.Breakdown && s.traced != nil {
			rec, wall := s.traced()
			c.Breakdown = breakdown(rec, wall)
		}
		if s.cleanup != nil {
			s.cleanup()
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "%-28s median %12.0fns  cov %5.1f%%\n", c.ID, c.Median, 100*c.CoV)
		}
		res.Cells = append(res.Cells, c)
	}
	return res, nil
}

// CellIDs returns the IDs of the cells opts would run, without running
// them (the -list mode). Cell existence is static — only the speculative
// cells' behavior depends on the (lazily run) profiling pass — so listing
// is cheap.
func CellIDs(opts Options) ([]string, error) {
	opts.fill()
	specs := cellSpecs(opts)
	if len(specs) == 0 {
		return nil, fmt.Errorf("bench: filter selected no cells")
	}
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.id
	}
	return ids, nil
}

// breakdown converts a traced run's span histograms into fractions of
// total lane time: TotalDuration(class) / (wall × lanes). The recorder
// must be quiescent (the traced run has returned) since Metrics walks the
// ring buffers.
func breakdown(rec *trace.Recorder, wall time.Duration) map[string]float64 {
	if rec == nil || wall <= 0 {
		return nil
	}
	sum := rec.Summary()
	if sum.Lanes == 0 {
		return nil
	}
	g := rec.Metrics()
	budget := float64(wall.Nanoseconds()) * float64(sum.Lanes)
	out := map[string]float64{}
	for _, class := range []string{"stall", "queue-full", "queue-empty", "barrier-wait", "range-stall", "recovery", "task", "iteration"} {
		if d := g.TotalDuration(class + ".ns"); d > 0 {
			out[class] = float64(d.Nanoseconds()) / budget
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// cellSpecs enumerates the grid: every applicable engine per registered
// workload (mirroring the equivalence harness's applicability gates), then
// the runtime-primitive microbenchmarks.
func cellSpecs(opts Options) []cellSpec {
	var specs []cellSpec
	add := func(s cellSpec) {
		if opts.Filter == nil || opts.Filter(s.id) {
			specs = append(specs, s)
		}
	}
	for _, e := range workloads.All() {
		for _, s := range entrySpecs(e, opts) {
			add(s)
		}
	}
	for _, s := range microSpecs(opts) {
		add(s)
	}
	for _, s := range ckptSpecs(opts) {
		add(s)
	}
	for _, s := range seedSpecs(opts) {
		add(s)
	}
	for _, s := range schedSpecs(opts) {
		add(s)
	}
	for _, s := range daemonSpecs(opts) {
		add(s)
	}
	for _, s := range traceSpecs(opts) {
		add(s)
	}
	return specs
}

// profileEntry memoizes the §4.4 profiling pass per workload: it is
// deterministic and by far the most expensive part of cell setup.
var (
	profileMu    sync.Mutex
	profileCache = map[string]profileInfo{}
)

type profileInfo struct {
	dist int64
	ok   bool
}

func profiledDistance(e workloads.Entry, scale, workers int) (int64, bool) {
	key := fmt.Sprintf("%s/%d/%d", e.Name, scale, workers)
	profileMu.Lock()
	defer profileMu.Unlock()
	if pi, ok := profileCache[key]; ok {
		return pi.dist, pi.ok
	}
	kind := signature.Range
	if e.Exact {
		kind = signature.Exact
	}
	pr := speccross.Profile(e.Make(scale).(speccross.Workload), kind, 8)
	dist, ok := pr.Recommended(workers)
	profileCache[key] = profileInfo{dist, ok}
	return dist, ok
}

// entrySpecs builds the engine cells for one registry entry.
func entrySpecs(e workloads.Entry, opts Options) []cellSpec {
	var specs []cellSpec
	kind := signature.Range
	if e.Exact {
		kind = signature.Exact
	}

	if e.SpecOK {
		specs = append(specs, cellSpec{
			id: "barrier/" + e.Name, engine: "barrier", workload: e.Name,
			prepare: func() func() {
				sw := e.Make(opts.Scale).(speccross.Workload)
				return func() { speccross.RunBarriers(sw, opts.Workers) }
			},
			traced: func() (*trace.Recorder, time.Duration) {
				sw := e.Make(opts.Scale).(speccross.Workload)
				rec := trace.NewRecorder()
				start := time.Now()
				speccross.RunBarriersTraced(sw, opts.Workers, rec)
				return rec, time.Since(start)
			},
		})
	}
	if e.DomoreOK {
		specs = append(specs, cellSpec{
			id: "domore/" + e.Name, engine: "domore", workload: e.Name,
			prepare: func() func() {
				dw := e.Make(opts.Scale).(domore.Workload)
				return func() { domore.Run(dw, domore.Options{Workers: opts.Workers}) }
			},
			traced: func() (*trace.Recorder, time.Duration) {
				dw := e.Make(opts.Scale).(domore.Workload)
				rec := trace.NewRecorder()
				start := time.Now()
				domore.Run(dw, domore.Options{Workers: opts.Workers, Trace: rec})
				return rec, time.Since(start)
			},
		})
	}
	if e.SpecOK {
		s := cellSpec{id: "speccross/" + e.Name, engine: "speccross", workload: e.Name}
		s.resolve = func() string {
			if _, profitable := profiledDistance(e, opts.Scale, opts.Workers); !profitable {
				// The runtime's own policy: decline to speculate, run
				// barriers. Timing the fallback keeps the cell honest about
				// what the engine actually does on this workload.
				return "speculation unprofitable at this worker count; barrier fallback"
			}
			return ""
		}
		run := func(rec *trace.Recorder) func() {
			sw := e.Make(opts.Scale).(speccross.Workload)
			dist, profitable := profiledDistance(e, opts.Scale, opts.Workers)
			if !profitable {
				return func() { speccross.RunBarriers(sw, opts.Workers) }
			}
			cfg := speccross.Config{
				Workers: opts.Workers, CheckpointEvery: 200,
				SigKind: kind, SpecDistance: dist, Trace: rec,
			}
			return func() { speccross.Run(sw, cfg) }
		}
		s.prepare = func() func() { return run(nil) }
		s.traced = func() (*trace.Recorder, time.Duration) {
			rec := trace.NewRecorder()
			r := run(rec)
			start := time.Now()
			r()
			return rec, time.Since(start)
		}
		specs = append(specs, s)
	}
	if e.DomoreOK && e.SpecOK {
		if _, ok := e.Make(opts.Scale).(adaptive.Workload); ok {
			s := cellSpec{id: "adaptive/" + e.Name, engine: "adaptive", workload: e.Name}
			s.resolve = func() string {
				if _, profitable := profiledDistance(e, opts.Scale, opts.Workers); !profitable {
					return "speculation unprofitable; policy pinned to DOMORE"
				}
				return ""
			}
			run := func(rec *trace.Recorder) func() {
				aw := e.Make(opts.Scale).(adaptive.Workload)
				dist, profitable := profiledDistance(e, opts.Scale, opts.Workers)
				cfg := adaptive.Config{Workers: opts.Workers, Trace: rec}
				// The speculative windows must use the workload's signature
				// scheme: Range summaries on an Exact workload (scattered
				// access sets) conflict constantly, and every window would
				// misspeculate and re-execute.
				cfg.Spec.SigKind = kind
				if profitable {
					cfg.Spec.SpecDistance = dist
				} else {
					cfg.Policy = adaptive.Fixed(adaptive.EngineDomore)
				}
				return func() { adaptive.Run(aw, cfg) }
			}
			s.prepare = func() func() { return run(nil) }
			s.traced = func() (*trace.Recorder, time.Duration) {
				rec := trace.NewRecorder()
				r := run(rec)
				start := time.Now()
				r()
				return rec, time.Since(start)
			}
			specs = append(specs, s)
		}
	}
	return specs
}

// microSpecs benchmarks the runtime primitives the engines are built on —
// cross-thread SPSC forwarding, signature insert/compare for each scheme,
// and shadow-memory update/lookup — so a primitive-level regression is
// attributable even when engine cells move for workload reasons.
func microSpecs(opts Options) []cellSpec {
	const items = 1 << 16
	specs := []cellSpec{
		{
			id: "micro/queue.spsc", engine: "micro", workload: "queue.spsc",
			prepare: func() func() {
				q := queue.NewSPSC[int64](1024)
				return func() {
					done := make(chan struct{})
					go func() {
						for i := 0; i < items; i++ {
							q.Consume()
						}
						close(done)
					}()
					for i := 0; i < items; i++ {
						q.Produce(int64(i))
					}
					<-done
				}
			},
		},
		{
			id: "micro/shadow.dense", engine: "micro", workload: "shadow.dense",
			prepare: func() func() {
				st := shadow.NewDense(1 << 12)
				return func() { shadowLoop(st, items) }
			},
		},
		{
			id: "micro/shadow.sparse", engine: "micro", workload: "shadow.sparse",
			prepare: func() func() {
				st := shadow.NewSparse()
				return func() { shadowLoop(st, items) }
			},
		},
	}
	for _, kind := range []signature.Kind{signature.Range, signature.Bloom, signature.Exact} {
		kind := kind
		specs = append(specs, cellSpec{
			id:     "micro/signature." + kind.String(),
			engine: "micro", workload: "signature." + kind.String(),
			prepare: func() func() {
				return func() {
					a, b := signature.New(kind), signature.New(kind)
					for i := 0; i < items/16; i++ {
						a.Reset()
						b.Reset()
						for k := 0; k < 8; k++ {
							a.Write(uint64(i*64 + k*2))
							b.Read(uint64(i*64 + k*2 + 1))
						}
						a.Conflicts(b)
					}
				}
			},
		})
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].id < specs[j].id })
	return specs
}

// ckptWorkload isolates checkpoint cost: a large state (64k cells) with a
// tiny owner-partitioned write set per task, under a short checkpoint
// period. Full snapshots copy all cells at every segment boundary;
// incremental checkpoints refresh only the tracked writes, so the two
// cells' gap is the §4.2.2 checkpoint-substitution saving with everything
// else held equal. Tasks of one epoch own disjoint cells and cross-epoch
// writes stay within one owner (always the same worker row), so the run
// never misspeculates.
type ckptWorkload struct {
	epochs, tasks, writes int
	state                 []int64
}

func (w *ckptWorkload) Epochs() int                         { return w.epochs }
func (w *ckptWorkload) Tasks(int) int                       { return w.tasks }
func (w *ckptWorkload) Snapshot() any                       { return append([]int64(nil), w.state...) }
func (w *ckptWorkload) Restore(s any)                       { copy(w.state, s.([]int64)) }
func (w *ckptWorkload) StateLen() int                       { return len(w.state) }
func (w *ckptWorkload) ReadCell(c uint64) int64             { return w.state[c] }
func (w *ckptWorkload) WriteCell(c uint64, v int64)         { w.state[c] = v }
func (w *ckptWorkload) AddrCells(a uint64) (uint64, uint64) { return a, a + 1 }

func (w *ckptWorkload) Run(e, t, tid int, sig *signature.Signature) {
	slots := len(w.state) / w.tasks
	for j := 0; j < w.writes; j++ {
		c := t + ((e*3+j*7)%slots)*w.tasks
		if sig != nil {
			sig.Write(uint64(c))
		}
		w.state[c] = w.state[c]*3 + int64(e+j+1)
	}
}

// ckptSpecs builds the speccross/ckpt.{full,incremental} cells: the same
// workload under the two checkpoint substitutions, everything else equal.
func ckptSpecs(opts Options) []cellSpec {
	modes := []struct {
		name string
		mode speccross.CheckpointMode
	}{
		{"ckpt.full", speccross.CkptFull},
		{"ckpt.incremental", speccross.CkptIncremental},
	}
	var specs []cellSpec
	for _, m := range modes {
		m := m
		specs = append(specs, cellSpec{
			id: "speccross/" + m.name, engine: "speccross", workload: m.name,
			prepare: func() func() {
				w := &ckptWorkload{epochs: 64, tasks: 8, writes: 4, state: make([]int64, 1<<16)}
				cfg := speccross.Config{
					Workers: opts.Workers, SigKind: signature.Exact,
					CheckpointEvery: 4, Checkpoint: m.mode,
				}
				return func() { speccross.Run(w, cfg) }
			},
		})
	}
	return specs
}

func shadowLoop(st shadow.Store, items int) {
	for i := 0; i < items; i++ {
		a := uint64(i) & 0xfff
		st.Lookup(a)
		st.Update(a, int32(i&3), int64(i))
	}
}

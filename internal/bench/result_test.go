package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// mkResult builds a minimal valid result for schema tests.
func mkResult(n int, ids ...string) *Result {
	r := &Result{Schema: Schema, N: n, Warmup: 1, Workers: 4, Scale: 1}
	for _, id := range ids {
		c := Cell{ID: id, Engine: "e", Workload: "w"}
		for i := 0; i < n; i++ {
			c.Samples = append(c.Samples, float64(1000+i*10))
		}
		c.summarize()
		r.Cells = append(r.Cells, c)
	}
	return r
}

func TestValidate(t *testing.T) {
	if err := mkResult(5, "a/x", "b/y").Validate(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}

	bad := func(name string, mutate func(*Result)) {
		r := mkResult(5, "a/x", "b/y")
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid result", name)
		}
	}
	bad("wrong schema", func(r *Result) { r.Schema = "crossinv-bench/v0" })
	bad("no cells", func(r *Result) { r.Cells = nil })
	bad("duplicate id", func(r *Result) { r.Cells[1].ID = r.Cells[0].ID })
	bad("empty engine", func(r *Result) { r.Cells[0].Engine = "" })
	bad("sample count mismatch", func(r *Result) { r.Cells[0].Samples = r.Cells[0].Samples[:3] })
	bad("zero n", func(r *Result) { r.N = 0 })
	bad("non-positive median", func(r *Result) { r.Cells[0].Median = 0 })
	bad("CI not bracketing", func(r *Result) { r.Cells[0].CILow = r.Cells[0].Median + 1 })
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := mkResult(5, "domore/CG")
	r.Env = CaptureEnv(".")
	path := filepath.Join(dir, "BENCH_0.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cells[0].Median != r.Cells[0].Median || got.Env.GoVersion != r.Env.GoVersion {
		t.Errorf("roundtrip mismatch: %+v vs %+v", got, r)
	}
	// ReadFile validates: a corrupted file must be rejected.
	if err := os.WriteFile(path, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted wrong-schema file")
	}
}

func TestNextPath(t *testing.T) {
	dir := t.TempDir()
	for want, seed := range map[string][]string{
		"BENCH_0.json": nil,
		"BENCH_1.json": {"BENCH_0.json"},
		"BENCH_8.json": {"BENCH_0.json", "BENCH_7.json", "BENCH_x.json", "other.json"},
	} {
		sub := filepath.Join(dir, want)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, f := range seed {
			if err := os.WriteFile(filepath.Join(sub, f), []byte("{}"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got, err := NextPath(sub)
		if err != nil {
			t.Fatal(err)
		}
		if filepath.Base(got) != want {
			t.Errorf("NextPath with %v = %s, want %s", seed, filepath.Base(got), want)
		}
	}
}

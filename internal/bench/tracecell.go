package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"crossinv/internal/daemon"
)

// traceSpecs builds the always-on-tracing overhead cells:
//
//	daemon/trace.off — long-lived server with DisableTracing: no recorder
//	  is checked out, engines see a nil trace sink, the flight recorder
//	  observes counter-free invocations;
//	daemon/trace.on  — the same server shape with the default always-on
//	  request tracing: pooled recorder, request-lane spans, per-task engine
//	  events, span extraction for the flight window.
//
// Both cells run the hot path (in-memory program cache, zero analysis
// spans), so the gap between them is purely the per-invocation span and
// event cost — the ISSUE's "within 2%" acceptance cell. Cache priming
// happens in the first prepare, outside the timed region.
func traceSpecs(opts Options) []cellSpec {
	run := func(s *daemon.Server) {
		resp, status := s.Execute(&daemon.RunRequest{
			Source: daemonProgram, Mode: "speccross", Workers: opts.Workers,
		})
		if status != 200 {
			panic(fmt.Sprintf("bench trace cell: status %d: %s", status, resp.Error))
		}
	}
	variants := []struct {
		name    string
		disable bool
	}{
		{"trace.off", true},
		{"trace.on", false},
	}
	var specs []cellSpec
	for _, v := range variants {
		v := v
		var (
			root string
			s    *daemon.Server
		)
		specs = append(specs, cellSpec{
			id: "daemon/" + v.name, engine: "daemon", workload: v.name,
			prepare: func() func() {
				if s == nil {
					dir, err := os.MkdirTemp("", "crossinv-bench-trace-")
					if err != nil {
						panic(fmt.Sprintf("bench trace cell: %v", err))
					}
					root = dir
					s, err = daemon.New(daemon.Config{
						CacheDir:       filepath.Join(root, "cache"),
						DefaultWorkers: opts.Workers,
						DisableTracing: v.disable,
					})
					if err != nil {
						panic(fmt.Sprintf("bench trace cell: %v", err))
					}
					run(s) // prime: cold compile + cache fill
					run(s) // prime: first hot-path hit
				}
				return func() { run(s) }
			},
			cleanup: func() {
				if root != "" {
					os.RemoveAll(root)
				}
			},
		})
	}
	return specs
}

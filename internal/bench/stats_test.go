package bench

import (
	"math"
	"testing"
)

func TestMedianMeanCoV(t *testing.T) {
	cases := []struct {
		xs           []float64
		median, mean float64
	}{
		{nil, 0, 0},
		{[]float64{7}, 7, 7},
		{[]float64{1, 3}, 2, 2},
		{[]float64{5, 1, 3}, 3, 3},
		{[]float64{4, 1, 3, 2}, 2.5, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.median {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.median)
		}
		if got := Mean(c.xs); got != c.mean {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.mean)
		}
	}
	// CoV of {2,4,4,4,5,5,7,9}: mean 5, sample sd ~2.138, CoV ~0.4276.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CoV(xs); math.Abs(got-0.42762) > 1e-4 {
		t.Errorf("CoV = %v, want ~0.42762", got)
	}
	if CoV([]float64{5}) != 0 {
		t.Error("CoV of one sample should be 0")
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	lo1, hi1 := BootstrapCI(xs, 0.95, 500, 42)
	lo2, hi2 := BootstrapCI(xs, 0.95, 500, 42)
	if lo1 != lo2 || hi1 != hi2 {
		t.Errorf("bootstrap not deterministic for fixed seed: (%v,%v) vs (%v,%v)", lo1, hi1, lo2, hi2)
	}
	med := Median(xs)
	if lo1 > med || med > hi1 {
		t.Errorf("CI [%v, %v] does not bracket median %v", lo1, hi1, med)
	}
	if lo1 < 10 || hi1 > 19 {
		t.Errorf("CI [%v, %v] outside data range", lo1, hi1)
	}
	if lo, hi := BootstrapCI([]float64{3}, 0.95, 100, 1); lo != 3 || hi != 3 {
		t.Errorf("single-sample CI = [%v, %v], want [3, 3]", lo, hi)
	}
}

func TestMannWhitneyP(t *testing.T) {
	// Identical distributions: no evidence of a shift.
	same := []float64{5, 6, 7, 8, 9, 10}
	if p := MannWhitneyP(same, same); p < 0.9 {
		t.Errorf("identical samples p = %v, want ~1", p)
	}
	// Fully separated samples: strong evidence.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{11, 12, 13, 14, 15, 16, 17, 18}
	if p := MannWhitneyP(a, b); p > 0.01 {
		t.Errorf("separated samples p = %v, want < 0.01", p)
	}
	// Symmetry.
	if p1, p2 := MannWhitneyP(a, b), MannWhitneyP(b, a); math.Abs(p1-p2) > 1e-12 {
		t.Errorf("p not symmetric: %v vs %v", p1, p2)
	}
	// Too few samples: the test abstains.
	if p := MannWhitneyP([]float64{1, 2, 3}, b); p != 1 {
		t.Errorf("n=3 should abstain with p=1, got %v", p)
	}
	// All values tied across both sides.
	tied := []float64{4, 4, 4, 4, 4}
	if p := MannWhitneyP(tied, tied); p != 1 {
		t.Errorf("all-tied p = %v, want 1", p)
	}
	// Overlapping but shifted: significant at conventional alpha.
	c := []float64{10, 11, 12, 13, 14, 15, 16, 17}
	d := []float64{13, 14, 15, 16, 17, 18, 19, 20}
	if p := MannWhitneyP(c, d); p >= 0.05 {
		t.Errorf("shifted overlapping samples p = %v, want < 0.05", p)
	}
}

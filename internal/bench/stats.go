package bench

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the middle value (average of the middle two for even
// lengths; 0 when empty). The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// CoV returns the coefficient of variation: sample standard deviation over
// mean. It is the harness's noise gauge — a cell with CoV above a few
// percent needs more samples before its deltas mean anything.
func CoV(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs)-1)) / m
}

// splitmix is the deterministic generator for bootstrap resampling: the
// harness must produce identical BENCH files for identical samples, so no
// global randomness.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// BootstrapCI returns a percentile-bootstrap confidence interval for the
// median: resamples with replacement, each resample's median collected,
// and the (1-conf)/2 and (1+conf)/2 percentiles reported. Deterministic
// for a given seed. Degenerates to (x, x) for single-sample input.
func BootstrapCI(xs []float64, conf float64, resamples int, seed uint64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) == 1 {
		return xs[0], xs[0]
	}
	if resamples <= 0 {
		resamples = 1000
	}
	rng := splitmix{s: seed}
	meds := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for i := range meds {
		for j := range buf {
			buf[j] = xs[rng.next()%uint64(len(xs))]
		}
		meds[i] = Median(buf)
	}
	sort.Float64s(meds)
	alpha := (1 - conf) / 2
	idx := func(p float64) int {
		i := int(p * float64(resamples))
		if i < 0 {
			i = 0
		}
		if i >= resamples {
			i = resamples - 1
		}
		return i
	}
	return meds[idx(alpha)], meds[idx(1-alpha)]
}

// MannWhitneyP returns the two-sided p-value of the Mann-Whitney U test
// for samples a vs b, using the normal approximation with tie correction
// and continuity correction — the benchstat-style significance gate for
// BENCH comparisons. With fewer than 4 samples on either side the normal
// approximation is meaningless and the test abstains by returning 1.
func MannWhitneyP(a, b []float64) float64 {
	na, nb := len(a), len(b)
	if na < 4 || nb < 4 {
		return 1
	}
	type obs struct {
		v    float64
		side int // 0 = a, 1 = b
	}
	all := make([]obs, 0, na+nb)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie groups; accumulate the tie-correction term.
	n := float64(na + nb)
	var ra float64 // rank sum of a
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		rank := (float64(i+1) + float64(j)) / 2 // midrank (1-based)
		for k := i; k < j; k++ {
			if all[k].side == 0 {
				ra += rank
			}
		}
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}

	u := ra - float64(na)*float64(na+1)/2
	mu := float64(na) * float64(nb) / 2
	sigma2 := float64(na) * float64(nb) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations tied: no evidence of a shift.
		return 1
	}
	z := u - mu
	// Continuity correction toward the mean.
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(sigma2)
	return 2 * (1 - phi(math.Abs(z)))
}

// phi is the standard normal CDF.
func phi(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"crossinv/internal/daemon"
)

// daemonProgram is the invocation-latency probe: the CG loop nest of
// Fig 3.1 (same shape as examples/compiler/cg.lnl), embedded so the bench
// harness has no working-directory dependency. Small enough that the
// pipeline — parse, analyze, oracle, §4.4 profile — dominates execution,
// which is exactly the cost the plan cache amortizes.
const daemonProgram = `
func cg() {
  var S[40], E[40], C[120], IDX[400]

  parfor p = 0 .. 40 {
    S[p] = p * 9 % 300
  }
  parfor q = 0 .. 40 {
    E[q] = S[q] % 300 + 9
  }
  parfor z = 0 .. 400 {
    IDX[z] = z * 17 % 120
  }

  for i = 0 .. 40 {
    start = S[i] % 391
    end = start + 9
    parfor j = start .. end {
      C[IDX[j]] = C[IDX[j]] * 3 + j + 1
    }
  }
}
`

// daemonSpecs builds the cold/warm/hot invocation-latency cells that track
// the plan cache's amortization gains in the BENCH_<n>.json trajectory:
//
//	daemon/invoke.cold — fresh process state AND empty cache: full
//	  pipeline (compile, oracle, profile) plus execution;
//	daemon/invoke.warm — fresh process state, populated on-disk cache:
//	  recompile but replay the cached oracle and §4.4 profile;
//	daemon/invoke.hot  — long-lived server: in-memory program cache,
//	  zero analysis spans, pure execution.
//
// cold/warm is the ISSUE acceptance ratio (warm p50 ≥2× better than
// cold); hot is the steady state a client of a running daemon sees. All
// setup and teardown happens in prepare/cleanup, outside the timed
// closures.
func daemonSpecs(opts Options) []cellSpec {
	run := func(s *daemon.Server, wantCache string) {
		resp, status := s.Execute(&daemon.RunRequest{
			Source: daemonProgram, Mode: "speccross", Workers: opts.Workers,
		})
		if status != 200 {
			panic(fmt.Sprintf("bench daemon cell: status %d: %s", status, resp.Error))
		}
		if resp.Cache != wantCache {
			panic(fmt.Sprintf("bench daemon cell: cache %q, want %q", resp.Cache, wantCache))
		}
	}
	newServer := func(dir string) *daemon.Server {
		s, err := daemon.New(daemon.Config{CacheDir: dir, DefaultWorkers: opts.Workers})
		if err != nil {
			panic(fmt.Sprintf("bench daemon cell: %v", err))
		}
		return s
	}
	scratch := func() string {
		dir, err := os.MkdirTemp("", "crossinv-bench-plancache-")
		if err != nil {
			panic(fmt.Sprintf("bench daemon cell: %v", err))
		}
		return dir
	}

	var specs []cellSpec

	// Cold: every sample gets a fresh server and a fresh cache directory,
	// so each timed run pays the full pipeline.
	{
		var roots []string
		specs = append(specs, cellSpec{
			id: "daemon/invoke.cold", engine: "daemon", workload: "invoke.cold",
			prepare: func() func() {
				root := scratch()
				roots = append(roots, root)
				s := newServer(filepath.Join(root, "cache"))
				return func() { run(s, "cold") }
			},
			cleanup: func() {
				for _, r := range roots {
					os.RemoveAll(r)
				}
			},
		})
	}

	// Warm: one directory populated once (untimed); every sample gets a
	// fresh server over it — empty memory, warm disk.
	{
		var root string
		specs = append(specs, cellSpec{
			id: "daemon/invoke.warm", engine: "daemon", workload: "invoke.warm",
			prepare: func() func() {
				if root == "" {
					root = scratch()
					run(newServer(filepath.Join(root, "cache")), "cold")
				}
				s := newServer(filepath.Join(root, "cache"))
				return func() { run(s, "warm") }
			},
			cleanup: func() {
				if root != "" {
					os.RemoveAll(root)
				}
			},
		})
	}

	// Hot: one long-lived server; the first prepare runs it cold then hot
	// (untimed) so every timed sample is the established in-memory path.
	{
		var (
			root string
			s    *daemon.Server
		)
		specs = append(specs, cellSpec{
			id: "daemon/invoke.hot", engine: "daemon", workload: "invoke.hot",
			prepare: func() func() {
				if s == nil {
					root = scratch()
					s = newServer(filepath.Join(root, "cache"))
					run(s, "cold")
					run(s, "hot")
				}
				return func() { run(s, "hot") }
			},
			cleanup: func() {
				if root != "" {
					os.RemoveAll(root)
				}
			},
		})
	}

	return specs
}

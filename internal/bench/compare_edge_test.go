package bench

import (
	"strings"
	"testing"
)

// TestCompareEdgeCases is the table-driven edge sweep of the significance
// gate: sample counts too small for the normal approximation, fully tied
// samples, and environment mismatches each have a pinned behaviour, so a
// future stats refactor cannot silently change what gates CI.
func TestCompareEdgeCases(t *testing.T) {
	scale := func(samples []float64, f float64) []float64 {
		out := append([]float64(nil), samples...)
		for i := range out {
			out[i] *= f
		}
		return out
	}
	const cell = "domore/CG"

	cases := []struct {
		name string
		old  []float64
		cur  []float64
		env  func(*Env) // mutates cur's env; nil = identical envs
		opts CompareOptions

		wantFailed       bool
		wantRegressions  int
		wantImprovements int
		// wantP, when >= 0, pins the matched cell's p-value exactly
		// (abstentions return exactly 1).
		wantP float64
	}{
		{
			// Three samples a side is below the n>=4 floor of the normal
			// approximation: the test must abstain (p = 1) no matter how
			// large the shift, rather than emit a bogus p-value.
			name:  "n3-abstains-despite-2x-slowdown",
			old:   []float64{1000, 1010, 990},
			cur:   []float64{2000, 2020, 1980},
			wantP: 1,
		},
		{
			// One side below the floor is enough to abstain.
			name:  "asymmetric-n3-vs-n8-abstains",
			old:   []float64{1000, 1010, 990},
			cur:   scale([]float64{1000, 1010, 990, 1005, 995, 1002, 998, 1008}, 2),
			wantP: 1,
		},
		{
			// n = 4 is the boundary: a fully separated 2x shift is
			// significant again, proving the abstention window is exactly
			// n < 4 and the gate re-arms immediately past it.
			name:            "n4-boundary-detects-2x-slowdown",
			old:             []float64{1000, 1010, 990, 1005},
			cur:             []float64{2000, 2020, 1980, 2010},
			wantFailed:      true,
			wantRegressions: 1,
			wantP:           -1,
		},
		{
			// Every observation identical on both sides: the rank variance
			// is zero and the test must declare "no evidence" (p = 1), not
			// divide by zero.
			name:  "all-ties-both-sides-abstains",
			old:   []float64{1000, 1000, 1000, 1000, 1000},
			cur:   []float64{1000, 1000, 1000, 1000, 1000},
			wantP: 1,
		},
		{
			// Ties within each side must NOT blind the gate when the sides
			// are separated: constant 1000 vs constant 2000 is the clearest
			// possible regression.
			name:            "constant-sides-separated-still-gates",
			old:             []float64{1000, 1000, 1000, 1000, 1000},
			cur:             []float64{2000, 2000, 2000, 2000, 2000},
			wantFailed:      true,
			wantRegressions: 1,
			wantP:           -1,
		},
		{
			// A real regression measured under a different environment is
			// counted and reported but demoted: cross-machine deltas never
			// gate.
			name:            "env-mismatch-demotes-regression",
			old:             []float64{1000, 1010, 990, 1005, 995, 1002, 998, 1008},
			cur:             scale([]float64{1000, 1010, 990, 1005, 995, 1002, 998, 1008}, 2),
			env:             func(e *Env) { e.CPUModel = "othercpu" },
			wantRegressions: 1,
			wantP:           -1,
		},
		{
			// Any single differing env field triggers the demotion, not
			// just the CPU model.
			name:            "go-version-mismatch-demotes",
			old:             []float64{1000, 1010, 990, 1005, 995, 1002, 998, 1008},
			cur:             scale([]float64{1000, 1010, 990, 1005, 995, 1002, 998, 1008}, 2),
			env:             func(e *Env) { e.GoVersion = "go1.23" },
			wantRegressions: 1,
			wantP:           -1,
		},
		{
			// Env mismatch with clean numbers: nothing reported, nothing
			// gated — the warning alone is not a failure.
			name:  "env-mismatch-without-regression-passes",
			old:   []float64{1000, 1010, 990, 1005, 995, 1002, 998, 1008},
			cur:   []float64{1000, 1010, 990, 1005, 995, 1002, 998, 1008},
			env:   func(e *Env) { e.GOMAXPROCS = 2 },
			wantP: -1,
		},
		{
			// An improvement under matching envs is never a failure.
			name:             "improvement-never-gates",
			old:              []float64{2000, 2020, 1980, 2010, 1990, 2005, 1995, 2015},
			cur:              []float64{1000, 1010, 990, 1005, 995, 1002, 998, 1008},
			wantImprovements: 1,
			wantP:            -1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := fixture(map[string][]float64{cell: tc.old})
			cur := fixture(map[string][]float64{cell: tc.cur})
			if tc.env != nil {
				tc.env(&cur.Env)
			}
			cr := Compare(old, cur, tc.opts)

			if cr.Failed() != tc.wantFailed {
				t.Errorf("Failed() = %v, want %v", cr.Failed(), tc.wantFailed)
			}
			if cr.Regressions != tc.wantRegressions {
				t.Errorf("Regressions = %d, want %d", cr.Regressions, tc.wantRegressions)
			}
			if cr.Improvements != tc.wantImprovements {
				t.Errorf("Improvements = %d, want %d", cr.Improvements, tc.wantImprovements)
			}
			if (cr.EnvMismatch()) != (tc.env != nil) {
				t.Errorf("EnvMismatch() = %v, want %v (%v)", cr.EnvMismatch(), tc.env != nil, cr.EnvWarnings)
			}
			if len(cr.Deltas) != 1 {
				t.Fatalf("Deltas = %d, want 1", len(cr.Deltas))
			}
			d := cr.Deltas[0]
			if tc.wantP >= 0 && d.P != tc.wantP {
				t.Errorf("cell p = %v, want exactly %v (abstention)", d.P, tc.wantP)
			}
			if tc.wantP == 1 && d.Significant {
				t.Errorf("abstained cell marked significant: %+v", d)
			}

			// The report must always render, and demoted regressions must
			// carry the not-gated note.
			var sb strings.Builder
			if err := cr.WriteTable(&sb); err != nil {
				t.Fatal(err)
			}
			if cr.Regressions > 0 && cr.EnvMismatch() && !strings.Contains(sb.String(), "not gated") {
				t.Errorf("demoted regression lacks the not-gated note:\n%s", sb.String())
			}
		})
	}
}

// TestMannWhitneyAbstentionBoundary pins the exact abstention floor of
// the raw statistic, independent of Compare's threshold logic.
func TestMannWhitneyAbstentionBoundary(t *testing.T) {
	a3 := []float64{1, 2, 3}
	a4 := []float64{1, 2, 3, 4}
	b4 := []float64{100, 200, 300, 400}
	if p := MannWhitneyP(a3, b4); p != 1 {
		t.Errorf("MannWhitneyP(n=3, n=4) = %v, want 1", p)
	}
	if p := MannWhitneyP(b4, a3); p != 1 {
		t.Errorf("MannWhitneyP(n=4, n=3) = %v, want 1", p)
	}
	if p := MannWhitneyP(a4, b4); p >= 0.05 {
		t.Errorf("MannWhitneyP(n=4, n=4, fully separated) = %v, want < 0.05", p)
	}
	if p := MannWhitneyP(nil, nil); p != 1 {
		t.Errorf("MannWhitneyP(empty, empty) = %v, want 1", p)
	}
}

// Package workloadtest is the shared per-workload test harness: every
// benchmark package asserts, in its own directory, that each applicable
// engine — barrier, DOMORE, SPECCROSS, and the adaptive hybrid — reproduces
// the sequential checksum. Keeping one equivalence harness avoids nine
// drifting copies of the golden-run/engine-run comparison, and keeps the
// race-detector shrinking rule (see Make) in one place.
package workloadtest

import (
	"testing"

	"crossinv/internal/raceflag"
	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/cg"
	"crossinv/internal/workloads/epochal"
	"crossinv/internal/workloads/fluidanimate"
)

// Make builds an instance at scale 1, shrinking the region (never its
// structure) under the race detector so the 10–20× slowdown keeps suites
// within timeouts; see internal/raceflag. Golden and parallel instances get
// the same shrink, so equivalence checks stay exact.
func Make(e workloads.Entry) workloads.Instance {
	inst := e.Make(1)
	if !raceflag.Enabled {
		return inst
	}
	switch w := inst.(type) {
	case *epochal.Kernel:
		if w.NumEpochs > 120 {
			w.NumEpochs = 120
		}
	case *cg.CG:
		if w.Invs > 120 {
			w.Invs = 120
		}
	case *fluidanimate.Fluid:
		if w.Frames > 10 {
			w.Frames = 10
		}
	}
	return inst
}

// EnginesMatchSequential runs the named benchmark under every engine its
// registry entry declares applicable and fails if any parallel checksum
// diverges from the sequential one. SPECCROSS (and the adaptive runtime's
// speculative windows) are gated with the §4.4 profiled distance when the
// profile calls speculation profitable; otherwise the speculative paths fall
// back to non-speculative execution, which also keeps the harness exact
// under the race detector (conflicts inside the speculative range race by
// design).
func EnginesMatchSequential(t *testing.T, name string) {
	t.Helper()
	e, err := workloads.Find(name)
	if err != nil {
		t.Fatal(err)
	}
	golden := Make(e)
	golden.RunSequential()
	want := golden.Checksum()

	check := func(t *testing.T, inst workloads.Instance, engine string) {
		t.Helper()
		if got := inst.Checksum(); got != want {
			t.Fatalf("%s checksum %x != sequential %x", engine, got, want)
		}
	}
	kind := signature.Range
	if e.Exact {
		kind = signature.Exact
	}
	profiled := func() (int64, bool) {
		pr := speccross.Profile(Make(e).(speccross.Workload), kind, 8)
		return pr.Recommended(4)
	}

	if e.SpecOK {
		t.Run("barrier", func(t *testing.T) {
			inst := Make(e)
			rec := trace.NewRecorder()
			bar := speccross.RunBarriersTraced(inst.(speccross.Workload), 4, rec)
			check(t, inst, "barrier")
			sum := rec.Summary()
			if _, waits := bar.Stats(); sum.Counts[trace.KindBarrierWaitBegin] != waits {
				t.Errorf("trace barrier waits %d != barrier Stats waits %d",
					sum.Counts[trace.KindBarrierWaitBegin], waits)
			}
			assertEq(t, "iter begin/end", sum.Counts[trace.KindIterStart], sum.Counts[trace.KindIterEnd])
		})
	}
	if e.DomoreOK {
		t.Run("domore", func(t *testing.T) {
			inst := Make(e)
			rec := trace.NewRecorder()
			stats := domore.Run(inst.(domore.Workload), domore.Options{Workers: 4, Trace: rec})
			if stats.Iterations == 0 {
				t.Fatal("no iterations scheduled")
			}
			check(t, inst, "domore")
			// Every DOMORE Stats counter must be re-derivable from the exact
			// per-kind trace counts — the recorder is the same information,
			// observed at the emission sites.
			sum := rec.Summary()
			assertEq(t, "iterations", sum.Counts[trace.KindSchedule], stats.Iterations)
			assertEq(t, "dispatches", sum.Counts[trace.KindDispatch], stats.Dispatches)
			assertEq(t, "sync conditions", sum.Counts[trace.KindSyncCond], stats.SyncConditions)
			assertEq(t, "stalls", sum.Counts[trace.KindStallBegin], stats.Stalls)
			assertEq(t, "addr checks", sum.Sums[trace.KindAddrCheck], stats.AddrChecks)
		})
	}
	if e.DomoreOK {
		t.Run("domore-sharded", func(t *testing.T) {
			// The sharded scheduler must reproduce Run's schedule exactly:
			// same checksum, and the same deterministic Stats (Stalls and
			// LaneWaits are timing-dependent and excluded). Every registry
			// workload's ComputeAddr is pure (precomputed index loads or
			// pure geometry), so the suite runs the concurrent-lane mode —
			// the stronger claim, and the one the race pass scrutinizes.
			ref := Make(e)
			want := domore.Run(ref.(domore.Workload), domore.Options{Workers: 4})
			check(t, ref, "domore (reference)")

			inst := Make(e)
			rec := trace.NewRecorder()
			stats := domore.RunSharded(inst.(domore.Workload), domore.Options{
				Workers: 4, Lanes: 3, Batch: 32, ConcurrentAddr: true, Trace: rec,
			})
			if stats.Iterations == 0 {
				t.Fatal("no iterations scheduled")
			}
			check(t, inst, "domore-sharded")
			assertEq(t, "iterations vs Run", stats.Iterations, want.Iterations)
			assertEq(t, "dispatches vs Run", stats.Dispatches, want.Dispatches)
			assertEq(t, "sync conditions vs Run", stats.SyncConditions, want.SyncConditions)
			assertEq(t, "addr checks vs Run", stats.AddrChecks, want.AddrChecks)
			sum := rec.Summary()
			assertEq(t, "iterations", sum.Counts[trace.KindSchedule], stats.Iterations)
			assertEq(t, "dispatches", sum.Counts[trace.KindDispatch], stats.Dispatches)
			assertEq(t, "sync conditions", sum.Counts[trace.KindSyncCond], stats.SyncConditions)
			assertEq(t, "stalls", sum.Counts[trace.KindStallBegin], stats.Stalls)
			assertEq(t, "addr checks", sum.Sums[trace.KindAddrCheck], stats.AddrChecks)
			if sum.Counts[trace.KindShardChunk] == 0 {
				t.Error("no shard-chunk events; scheduler lanes did not run")
			}
		})
	}
	if e.SpecOK {
		t.Run("speccross", func(t *testing.T) {
			inst := Make(e)
			sw := inst.(speccross.Workload)
			cfg := speccross.Config{Workers: 4, CheckpointEvery: 200, SigKind: kind}
			if dist, ok := profiled(); ok {
				cfg.SpecDistance = dist
				rec := trace.NewRecorder()
				cfg.Trace = rec
				stats := speccross.Run(sw, cfg)
				if stats.Misspeculations != 0 {
					t.Errorf("misspeculations = %d with profiled gating, want 0", stats.Misspeculations)
				}
				sum := rec.Summary()
				assertEq(t, "tasks", sum.Counts[trace.KindTaskEnd], stats.Tasks)
				assertEq(t, "epochs", sum.Sums[trace.KindEpochCommit], stats.Epochs)
				assertEq(t, "check requests", sum.Counts[trace.KindCheckRequest], stats.CheckRequests)
				assertEq(t, "comparisons", sum.Counts[trace.KindSigCheck], stats.Comparisons)
				assertEq(t, "misspeculations", sum.Counts[trace.KindMisspec], stats.Misspeculations)
				assertEq(t, "checkpoints", sum.Counts[trace.KindCheckpoint], stats.Checkpoints)
				assertEq(t, "re-executed epochs", sum.Sums[trace.KindRecoveryEnd], stats.ReexecutedEpochs)
				assertEq(t, "range stalls", sum.Counts[trace.KindRangeStallBegin], stats.RangeStalls)
			} else {
				speccross.RunBarriers(sw, cfg.Workers)
			}
			check(t, inst, "speccross")
		})
	}
	if e.DomoreOK && e.SpecOK {
		t.Run("adaptive", func(t *testing.T) {
			inst := Make(e)
			aw, ok := inst.(adaptive.Workload)
			if !ok {
				t.Fatalf("%s is marked for both engines but is not an adaptive.Workload", name)
			}
			rec := trace.NewRecorder()
			cfg := adaptive.Config{Workers: 4, Trace: rec}
			// The speculative windows must use the workload's signature
			// scheme: Range summaries on an Exact workload conflict
			// constantly and every window would misspeculate.
			cfg.Spec.SigKind = kind
			if dist, ok := profiled(); ok {
				cfg.Spec.SpecDistance = dist
			} else if raceflag.Enabled {
				// Unprofitable speculation would misspeculate — by design a
				// data race — so pin the policy to DOMORE under the detector.
				cfg.Policy = adaptive.Fixed(adaptive.EngineDomore)
			}
			stats := adaptive.Run(aw, cfg)
			if stats.Windows == 0 {
				t.Fatal("no windows executed")
			}
			check(t, inst, "adaptive")
			sum := rec.Summary()
			assertEq(t, "windows", sum.Counts[trace.KindWindowBegin], int64(stats.Windows))
			assertEq(t, "switches", sum.Counts[trace.KindEngineSwitch], int64(stats.Switches))
		})
	}
}

// assertEq compares a trace-derived counter against the engine's own Stats
// field — the contract that lets the observability layer replace ad-hoc
// counters.
func assertEq(t *testing.T, what string, fromTrace, fromStats int64) {
	t.Helper()
	if fromTrace != fromStats {
		t.Errorf("trace-derived %s = %d, engine Stats = %d", what, fromTrace, fromStats)
	}
}

package workloadtest

import (
	"testing"

	"crossinv/internal/plancache"
	"crossinv/internal/workloads"

	_ "crossinv/internal/workloads/blackscholes"
	_ "crossinv/internal/workloads/cg"
	_ "crossinv/internal/workloads/eclat"
	_ "crossinv/internal/workloads/epochal"
	_ "crossinv/internal/workloads/equake"
	_ "crossinv/internal/workloads/fdtd"
	_ "crossinv/internal/workloads/fluidanimate"
	_ "crossinv/internal/workloads/jacobi"
	_ "crossinv/internal/workloads/llubench"
	_ "crossinv/internal/workloads/loopdep"
	_ "crossinv/internal/workloads/phased"
	_ "crossinv/internal/workloads/symm"
)

// TestCachedPlanMatchesCold is the warm-path equivalence suite (daemon
// satellite): for every benchmark where all four engines apply, running
// from a plan that went through the on-disk cache must reproduce the cold
// checksums exactly. One shared store across sub-tests also exercises
// distinct keys coexisting in one cache directory.
func TestCachedPlanMatchesCold(t *testing.T) {
	store, err := plancache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range workloads.All() {
		if !e.DomoreOK || !e.SpecOK {
			continue
		}
		ran++
		t.Run(e.Name, func(t *testing.T) {
			CachedPlanMatchesCold(t, store, e.Name)
		})
	}
	if ran < 3 {
		t.Fatalf("only %d four-engine benchmarks found; registry shrank?", ran)
	}
	c := store.Counters()
	if c["plancache.put"] != int64(ran) || c["plancache.hit"] != int64(ran) {
		t.Errorf("store counters %v: want %d puts and %d hits", c, ran, ran)
	}
	if c["plancache.corrupt"] != 0 {
		t.Errorf("plancache.corrupt = %d on a healthy store", c["plancache.corrupt"])
	}
}

package workloadtest

import (
	"crypto/sha256"
	"encoding/hex"
	"reflect"
	"testing"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/plancache"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/workloads"
)

// cacheProfile and uncacheProfile are the serialization boundary between a
// live §4.4 profile and its plancache form. They mirror the daemon's
// converters (internal/daemon keeps its own copy so plancache stays free
// of runtime imports); this harness proves the round-trip is lossless for
// every workload's profile shape, including per-loop distance maps.
func cacheProfile(pr *speccross.ProfileResult) *plancache.Profile {
	p := &plancache.Profile{
		Tasks:       pr.Tasks,
		Epochs:      pr.Epochs,
		Conflicts:   pr.Conflicts,
		MinDistance: pr.MinDistance,
	}
	if len(pr.PerLoop) > 0 {
		p.PerLoop = make(map[string]int64, len(pr.PerLoop))
		for k, v := range pr.PerLoop {
			p.PerLoop[k] = v
		}
	}
	return p
}

func uncacheProfile(p *plancache.Profile) *speccross.ProfileResult {
	pr := &speccross.ProfileResult{
		Tasks:       p.Tasks,
		Epochs:      p.Epochs,
		Conflicts:   p.Conflicts,
		MinDistance: p.MinDistance,
		PerLoop:     map[string]int64{},
	}
	for k, v := range p.PerLoop {
		pr.PerLoop[k] = v
	}
	return pr
}

// CachedPlanMatchesCold is the warm-path equivalence harness: it profiles
// the named benchmark once (the cold invocation), persists the profile and
// oracle checksum through a real on-disk plancache store, reloads them,
// and re-runs every applicable engine configured ONLY from the cached
// plan — no re-profiling. Each engine's checksum must equal both the
// sequential oracle and the cached SeqChecksum, so a daemon serving this
// workload warm is provably equivalent to serving it cold.
func CachedPlanMatchesCold(t *testing.T, store *plancache.Store, name string) {
	t.Helper()
	e, err := workloads.Find(name)
	if err != nil {
		t.Fatal(err)
	}
	golden := Make(e)
	golden.RunSequential()
	want := golden.Checksum()

	kind := signature.Range
	if e.Exact {
		kind = signature.Exact
	}

	// Go workloads have no source text; the content address is the
	// registry identity at the shrunken scale, fingerprinted like the
	// daemon fingerprints LNL programs.
	h := sha256.Sum256([]byte("workload:" + name + "|scale=1"))
	key := plancache.Key{
		SourceHash:  hex.EncodeToString(h[:]),
		// Go workloads carry no static xdep report; the fixed token keys
		// them apart from any real facts hash.
		Fingerprint: plancache.Fingerprint("workloads/v1", 0, kind.String(), "unanalyzed"),
	}

	// Cold half: first lookup must miss, then profile and publish.
	if _, ok := store.Get(key); ok {
		t.Fatalf("%s: unexpected cache hit before the cold run", name)
	}
	pr := speccross.Profile(Make(e).(speccross.Workload), kind, 8)
	dist, profitable := pr.Recommended(4)
	engine := "domore"
	if profitable {
		engine = "speccross"
	}
	if err := store.Put(key, plancache.Plan{
		SeqChecksum: want,
		Regions:     1,
		Profile:     cacheProfile(&pr),
		Adaptive:    &plancache.AdaptiveSeed{Start: engine, Window: 32},
		Engine:      engine,
		LintClean:   true,
	}); err != nil {
		t.Fatal(err)
	}

	// Warm half: reload and reconstruct. The round-trip must be lossless —
	// a drifted distance would silently change speculation bounds.
	plan, ok := store.Get(key)
	if !ok {
		t.Fatalf("%s: plan written but not readable", name)
	}
	if plan.SeqChecksum != want {
		t.Fatalf("%s: cached oracle %x != sequential %x", name, plan.SeqChecksum, want)
	}
	cached := uncacheProfile(plan.Profile)
	if got, want := *cached, pr; !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: profile round-trip drifted: %+v != %+v", name, got, want)
	}

	check := func(t *testing.T, inst workloads.Instance, engine string) {
		t.Helper()
		if got := inst.Checksum(); got != want {
			t.Fatalf("%s from cached plan: checksum %x != sequential %x", engine, got, want)
		}
	}

	if e.SpecOK {
		t.Run("barrier", func(t *testing.T) {
			inst := Make(e)
			speccross.RunBarriers(inst.(speccross.Workload), 4)
			check(t, inst, "barrier")
		})
		t.Run("speccross", func(t *testing.T) {
			inst := Make(e)
			sw := inst.(speccross.Workload)
			cdist, cprofitable := cached.Recommended(4)
			if cprofitable != profitable || cdist != dist {
				t.Fatalf("cached recommendation (%d,%v) != cold (%d,%v)",
					cdist, cprofitable, dist, profitable)
			}
			if cprofitable {
				stats := speccross.Run(sw, speccross.Config{
					Workers: 4, CheckpointEvery: 200, SigKind: kind, SpecDistance: cdist,
				})
				if stats.Misspeculations != 0 {
					t.Errorf("misspeculations = %d with cached gating, want 0", stats.Misspeculations)
				}
			} else {
				speccross.RunBarriers(sw, 4)
			}
			check(t, inst, "speccross")
		})
	}
	if e.DomoreOK {
		t.Run("domore", func(t *testing.T) {
			inst := Make(e)
			stats := domore.Run(inst.(domore.Workload), domore.Options{Workers: 4})
			if stats.Iterations == 0 {
				t.Fatal("no iterations scheduled")
			}
			check(t, inst, "domore")
		})
	}
	if e.DomoreOK && e.SpecOK {
		t.Run("adaptive", func(t *testing.T) {
			inst := Make(e)
			cfg := adaptive.Config{Workers: 4}
			if plan.Adaptive != nil && plan.Adaptive.Window > 0 {
				cfg.Window = plan.Adaptive.Window
			}
			cfg.Spec.SigKind = kind
			// The daemon's warm path: policy state seeded from the cached
			// distance instead of a fresh profiling pass.
			cfg.SeedFromProfile(cached.MinDistance, 4)
			stats := adaptive.Run(inst.(adaptive.Workload), cfg)
			if stats.Windows == 0 {
				t.Fatal("no windows executed")
			}
			check(t, inst, "adaptive")
		})
	}
}

// Package epochal provides the shared skeleton for benchmarks whose
// parallel region is a sequence of loop invocations (epochs) of independent
// tasks over a flat int64 state — the program shape of Fig 1.3/Fig 4.2.
// A Kernel describes the structure (epoch/task counts, per-task address
// sets, the update computation and virtual costs); the skeleton derives the
// sequential execution, checksum, sim trace, and the speccross.Workload and
// domore.Workload adapters from it.
package epochal

import (
	"crossinv/internal/runtime/signature"
	"crossinv/internal/sim"
	"crossinv/internal/workloads"
)

// Kernel is a declaratively-described epochal benchmark instance.
type Kernel struct {
	// BenchName is the display name.
	BenchName string
	// State is the shared mutable state all tasks operate on.
	State []int64
	// NumEpochs is the number of invocations in the region.
	NumEpochs int
	// TasksOf reports the task count of an epoch.
	TasksOf func(epoch int) int
	// Access appends the task's read and write address sets to the given
	// buffers and returns them. Addresses are workload-defined (element or
	// block granular) but must be conservative: every cross-task conflict
	// must be visible in them. It must be safe to call concurrently.
	Access func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64)
	// Update applies the task's computation to State. Tasks within one
	// epoch must be independent (the inner loops are DOALL/LOCALWRITE
	// parallelized); Update must be safe to call concurrently for
	// different tasks of one epoch.
	Update func(epoch, task int)
	// TaskCost is the task's virtual execution cost (for Trace).
	TaskCost func(epoch, task int) int64
	// SeqCost is the serial work preceding each epoch (for Trace).
	SeqCost int64
	// AddrSpan, when set, maps a signature address from Access to the State
	// cell range [lo, hi) it covers, enabling incremental checkpoints
	// (speccross.DeltaWorkload): the engine refreshes and rolls back only
	// the cells the tracked write set spans instead of copying the whole
	// state. Use IdentitySpan for element-granular kernels whose addresses
	// are State indices. Nil declares no sound mapping (block- or
	// object-granular addresses with no fixed span), keeping the kernel on
	// full snapshots.
	AddrSpan func(addr uint64) (lo, hi uint64)
}

// IdentitySpan is the AddrSpan of element-granular kernels: signature
// address a covers exactly State cell a.
func IdentitySpan(addr uint64) (lo, hi uint64) { return addr, addr + 1 }

// BlockSpan builds the AddrSpan of uniformly block-granular kernels:
// signature address a covers State cells [a·size, (a+1)·size).
func BlockSpan(size uint64) func(addr uint64) (lo, hi uint64) {
	return func(addr uint64) (lo, hi uint64) { return addr * size, (addr + 1) * size }
}

// Name implements workloads.Instance.
func (k *Kernel) Name() string { return k.BenchName }

// RunSequential implements workloads.Instance.
func (k *Kernel) RunSequential() {
	for e := 0; e < k.NumEpochs; e++ {
		n := k.TasksOf(e)
		for t := 0; t < n; t++ {
			k.Update(e, t)
		}
	}
}

// Checksum implements workloads.Instance.
func (k *Kernel) Checksum() uint64 {
	return workloads.FoldChecksum(1469598103934665603, k.State)
}

// Trace implements workloads.Instance.
func (k *Kernel) Trace() *sim.Trace {
	tr := &sim.Trace{Name: k.BenchName}
	for e := 0; e < k.NumEpochs; e++ {
		ep := sim.Epoch{SeqCost: k.SeqCost}
		n := k.TasksOf(e)
		for t := 0; t < n; t++ {
			r, w := k.Access(e, t, nil, nil)
			ep.Tasks = append(ep.Tasks, sim.Task{
				Cost:   k.TaskCost(e, t),
				Reads:  r,
				Writes: w,
			})
		}
		tr.Epochs = append(tr.Epochs, ep)
	}
	return tr
}

// --- speccross.Workload ---

// Epochs implements speccross.Workload.
func (k *Kernel) Epochs() int { return k.NumEpochs }

// Tasks implements speccross.Workload.
func (k *Kernel) Tasks(epoch int) int { return k.TasksOf(epoch) }

// Run implements speccross.Workload.
func (k *Kernel) Run(epoch, task, tid int, sig *signature.Signature) {
	if sig != nil {
		r, w := k.Access(epoch, task, nil, nil)
		for _, a := range r {
			sig.Read(a)
		}
		for _, a := range w {
			sig.Write(a)
		}
	}
	k.Update(epoch, task)
}

// Snapshot implements speccross.Workload.
func (k *Kernel) Snapshot() any {
	cp := make([]int64, len(k.State))
	copy(cp, k.State)
	return cp
}

// Restore implements speccross.Workload.
func (k *Kernel) Restore(s any) { copy(k.State, s.([]int64)) }

// StateLen implements speccross.DeltaWorkload; 0 (no AddrSpan declared)
// keeps the kernel on full snapshots.
func (k *Kernel) StateLen() int {
	if k.AddrSpan == nil {
		return 0
	}
	return len(k.State)
}

// ReadCell implements speccross.DeltaWorkload.
func (k *Kernel) ReadCell(cell uint64) int64 { return k.State[cell] }

// WriteCell implements speccross.DeltaWorkload.
func (k *Kernel) WriteCell(cell uint64, v int64) { k.State[cell] = v }

// AddrCells implements speccross.DeltaWorkload.
func (k *Kernel) AddrCells(addr uint64) (lo, hi uint64) { return k.AddrSpan(addr) }

// --- domore.Workload ---

// Invocations implements domore.Workload.
func (k *Kernel) Invocations() int { return k.NumEpochs }

// Iterations implements domore.Workload.
func (k *Kernel) Iterations(inv int) int { return k.TasksOf(inv) }

// Sequential implements domore.Workload. The synthetic kernels precompute
// their bound data, so the scheduler-side serial work is virtual only
// (SeqCost in the trace).
func (k *Kernel) Sequential(inv int) {}

// ComputeAddr implements domore.Workload: the scheduler needs the combined
// read∪write address set of the iteration (Algorithm 1 shadows every
// access).
func (k *Kernel) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	reads, writes := k.Access(inv, iter, buf, nil)
	for _, w := range writes {
		dup := false
		for _, r := range reads {
			if r == w {
				dup = true
				break
			}
		}
		if !dup {
			reads = append(reads, w)
		}
	}
	return reads
}

// Execute implements domore.Workload.
func (k *Kernel) Execute(inv, iter, tid int) { k.Update(inv, iter) }

package epochal

import (
	"testing"

	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/speccross"
)

// counterKernel: epoch e task t multiplies-and-adds into cell t of a
// rotating pair of buffers, giving cross-epoch dependences of one epoch.
func counterKernel(epochs, tasks int) *Kernel {
	k := &Kernel{
		BenchName: "counter",
		State:     make([]int64, 2*tasks),
		NumEpochs: epochs,
		SeqCost:   10,
	}
	k.TasksOf = func(epoch int) int { return tasks }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		dst := (epoch % 2) * tasks
		src := ((epoch + 1) % 2) * tasks
		writes = append(writes, uint64(dst+task))
		reads = append(reads, uint64(src+task))
		return reads, writes
	}
	k.Update = func(epoch, task int) {
		dst := (epoch%2)*tasks + task
		src := ((epoch+1)%2)*tasks + task
		k.State[dst] = k.State[dst]*3 + k.State[src] + int64(epoch+task)
	}
	k.TaskCost = func(epoch, task int) int64 { return 100 }
	return k
}

func TestSequentialAndChecksum(t *testing.T) {
	a := counterKernel(10, 8)
	b := counterKernel(10, 8)
	a.RunSequential()
	b.RunSequential()
	if a.Checksum() != b.Checksum() {
		t.Fatal("determinism violated")
	}
	if a.Name() != "counter" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestTraceShape(t *testing.T) {
	k := counterKernel(10, 8)
	tr := k.Trace()
	if len(tr.Epochs) != 10 || tr.Tasks() != 80 {
		t.Fatalf("trace shape %d epochs / %d tasks", len(tr.Epochs), tr.Tasks())
	}
	if tr.Epochs[0].SeqCost != 10 {
		t.Fatalf("SeqCost = %d", tr.Epochs[0].SeqCost)
	}
	task := tr.Epochs[3].Tasks[2]
	if len(task.Reads) != 1 || len(task.Writes) != 1 || task.Cost != 100 {
		t.Fatalf("task = %+v", task)
	}
}

func TestSpeccrossAdapter(t *testing.T) {
	golden := counterKernel(12, 6)
	golden.RunSequential()
	want := golden.Checksum()

	k := counterKernel(12, 6)
	speccross.Run(k, speccross.Config{Workers: 3, CheckpointEvery: 4, SpecDistance: 6})
	if k.Checksum() != want {
		t.Fatal("speccross adapter diverged")
	}
}

func TestDomoreAdapter(t *testing.T) {
	golden := counterKernel(12, 6)
	golden.RunSequential()
	want := golden.Checksum()

	k := counterKernel(12, 6)
	stats := domore.Run(k, domore.Options{Workers: 3})
	if k.Checksum() != want {
		t.Fatal("domore adapter diverged")
	}
	if stats.Iterations != 72 {
		t.Fatalf("iterations = %d", stats.Iterations)
	}
	// Same-index conflicts land on the same worker every other epoch under
	// round-robin with 3 workers and 6 tasks, so cross-thread conditions
	// are absent; the shadow memory still tracked every access.
	if stats.AddrChecks == 0 {
		t.Fatal("no address checks recorded")
	}
}

func TestComputeAddrMergesReadWriteSets(t *testing.T) {
	k := counterKernel(4, 4)
	addrs := k.ComputeAddr(1, 2, nil)
	if len(addrs) != 2 {
		t.Fatalf("ComputeAddr = %v, want read+write", addrs)
	}
	// Duplicate addresses must not repeat.
	k2 := counterKernel(4, 4)
	k2.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		reads = append(reads, 7)
		writes = append(writes, 7)
		return reads, writes
	}
	if got := k2.ComputeAddr(0, 0, nil); len(got) != 1 {
		t.Fatalf("ComputeAddr with aliasing sets = %v, want deduplicated", got)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	k := counterKernel(4, 4)
	k.RunSequential()
	snap := k.Snapshot()
	before := k.Checksum()
	k.State[0] = -999
	k.Restore(snap)
	if k.Checksum() != before {
		t.Fatal("restore did not round-trip")
	}
}

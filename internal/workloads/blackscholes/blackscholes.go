// Package blackscholes ports PARSEC blackscholes (Table 5.1): option
// pricing where bs_thread re-prices the whole option portfolio NUM_RUNS
// times. Each run is one inner-loop invocation (the paper parallelizes it
// with Spec-DOALL); runs write the same price array, so consecutive
// invocations carry same-index dependences that round-robin keeps on one
// thread — DOMORE therefore overlaps runs nearly perfectly (Fig 5.1(a)).
package blackscholes

import (
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// Chunks is the task count per run (option blocks).
const Chunks = 64

// New builds a deterministic instance. scale 1 gives 600 runs over 64
// option chunks of 32 options each.
func New(scale int) *epochal.Kernel {
	if scale <= 0 {
		scale = 1
	}
	const perChunk = 32
	const options = Chunks * perChunk
	runs := 600 * scale
	// State: prices at [0, options), read-only option parameters at
	// [options, 2·options).
	k := &epochal.Kernel{
		BenchName: "BLACKSCHOLES",
		State:     make([]int64, 2*options),
		NumEpochs: runs,
		SeqCost:   150,
	}
	rng := workloads.NewRng(0xB5)
	params := k.State[options:]
	for i := range params {
		params[i] = int64(rng.Intn(1 << 20))
	}
	k.TasksOf = func(epoch int) int { return Chunks }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		// Chunk-granular: each task owns one block of prices.
		writes = append(writes, uint64(task))
		reads = append(reads, uint64(Chunks+task)) // its parameter block
		return reads, writes
	}
	k.Update = func(epoch, task int) {
		lo := task * perChunk
		for i := 0; i < perChunk; i++ {
			// A fixed-point stand-in for the CNDF pipeline: several
			// dependent integer ops per option.
			p := params[lo+i] + int64(epoch)
			v := int64(workloads.Mix64(uint64(p)) >> 40)
			k.State[lo+i] = k.State[lo+i]/3 + v
		}
	}
	k.TaskCost = func(epoch, task int) int64 { return 3300 }
	// Chunk-granular addresses: price chunk t and parameter block Chunks+t
	// both cover perChunk consecutive cells at addr*perChunk.
	k.AddrSpan = epochal.BlockSpan(perChunk)
	return k
}

func init() {
	workloads.Register(workloads.Entry{
		Name: "BLACKSCHOLES", Suite: "Parsec", Function: "bs_thread", Plan: "Spec-DOALL",
		DomoreOK: true, SpecOK: false,
		Make: func(scale int) workloads.Instance { return New(scale) },
	})
}

// Package symm ports PolyBench SYMM (Table 5.1): symmetric matrix multiply
// with a three-level nest whose middle loop is DOALL. Its defining
// evaluation property is tiny invocations — §5.1 measures ≈4000 cycles per
// inner-loop invocation — so per-invocation synchronization overhead
// dominates and neither barriers nor DOMORE scale well (Fig 5.1(f)),
// while SPECCROSS's amortized epochs fare better (Fig 5.2(h)).
package symm

import (
	"crossinv/internal/sim"
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// New builds a deterministic instance: sweeps over an n-row matrix where
// epoch (s, i) updates row i from row i−1 (the symmetric accumulation's
// row-to-row flow), with few, very small tasks per epoch. scale 1 gives
// n=250 rows × 8 sweeps = 2000 epochs (Table 5.3's epoch count).
func New(scale int) *epochal.Kernel {
	if scale <= 0 {
		scale = 1
	}
	const n = 250      // rows (epochs per sweep)
	const width = 25   // task count per epoch: column blocks
	const cols = width // one cell per task keeps tasks tiny
	sweeps := 8 * scale
	k := &epochal.Kernel{
		BenchName: "SYMM",
		State:     make([]int64, n*cols),
		NumEpochs: n * sweeps,
		SeqCost:   120,
	}
	rng := workloads.NewRng(0x57)
	for i := range k.State {
		k.State[i] = int64(rng.Intn(97))
	}
	cell := func(row, col int) int { return row*cols + col }
	k.TasksOf = func(epoch int) int { return width }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		row := epoch % n
		writes = append(writes, uint64(cell(row, task)))
		if row > 0 {
			reads = append(reads, uint64(cell(row-1, task)))
		}
		return reads, writes
	}
	k.Update = func(epoch, task int) {
		row := epoch % n
		i := cell(row, task)
		acc := k.State[i] * 2
		if row > 0 {
			acc += k.State[cell(row-1, task)]
		}
		k.State[i] = acc%100003 + int64(task)
	}
	// Tiny tasks: the whole invocation is ~width·cost ≈ a few thousand
	// cycles, the §5.1 regime. computeAddr is pure affine arithmetic, so
	// the DOMORE scheduler's share is small (Table 5.2: 1.5%).
	k.TaskCost = func(epoch, task int) int64 { return 480 }
	// Element-granular addresses: signature address == State index.
	k.AddrSpan = epochal.IdentitySpan
	return k
}

// SchedCost is the scheduler's per-iteration cost for SYMM's affine
// computeAddr (used by the Trace exporter below via the sim package).
const SchedCost = 8

func init() {
	workloads.Register(workloads.Entry{
		Name: "SYMM", Suite: "PolyBench", Function: "main", Plan: "DOALL",
		DomoreOK: true, SpecOK: true,
		Make: func(scale int) workloads.Instance { return NewTraced(scale) },
	})
}

// NewTraced wraps New with the per-task scheduler-cost override installed
// in the exported trace.
func NewTraced(scale int) *tracedKernel {
	return &tracedKernel{Kernel: New(scale)}
}

type tracedKernel struct{ *epochal.Kernel }

// Trace overrides epochal's trace to carry SYMM's cheap scheduler cost.
func (t *tracedKernel) Trace() *sim.Trace {
	tr := t.Kernel.Trace()
	for ei := range tr.Epochs {
		for ti := range tr.Epochs[ei].Tasks {
			tr.Epochs[ei].Tasks[ti].SchedCost = SchedCost
		}
	}
	return tr
}

package symm_test

import (
	"testing"

	"crossinv/internal/workloads/workloadtest"
)

// TestEnginesMatchSequential asserts every applicable engine reproduces
// the sequential checksum; see internal/workloads/workloadtest.
func TestEnginesMatchSequential(t *testing.T) {
	workloadtest.EnginesMatchSequential(t, "SYMM")
}

package fluidanimate

import (
	"testing"

	"crossinv/internal/raceflag"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
)

// newT builds an instance sized for the active detector: the race build
// runs 10–20× slower, so the frame count shrinks (structure unchanged).
func newT() *Fluid {
	f := New(1)
	if raceflag.Enabled && f.Frames > 10 {
		f.Frames = 10
	}
	return f
}

func golden(t *testing.T) uint64 {
	t.Helper()
	f := newT()
	f.RunSequential()
	return f.Checksum()
}

func TestSequentialDeterminism(t *testing.T) {
	if golden(t) != golden(t) {
		t.Fatal("sequential execution not deterministic")
	}
}

func TestParticlesConserved(t *testing.T) {
	f := newT()
	f.RunSequential()
	// After the final RebuildGrid-consistent frame, every particle belongs
	// to exactly one cell.
	seen := make([]bool, f.P)
	total := 0
	for c := 0; c < f.Cells; c++ {
		for _, p := range f.cell(c) {
			if seen[p] {
				t.Fatalf("particle %d in two buckets", p)
			}
			seen[p] = true
			total++
		}
	}
	if total != f.P {
		t.Fatalf("buckets hold %d particles, want %d", total, f.P)
	}
}

func TestBarrierMatchesSequential(t *testing.T) {
	want := golden(t)
	f := newT()
	speccross.RunBarriers(f, 4)
	if got := f.Checksum(); got != want {
		t.Fatalf("barrier checksum %x != sequential %x", got, want)
	}
}

func TestManualDOANYMatchesSequential(t *testing.T) {
	want := golden(t)
	f := newT()
	f.RunManualDOANY(4)
	if got := f.Checksum(); got != want {
		t.Fatalf("manual DOANY checksum %x != sequential %x (pair sums must commute)", got, want)
	}
}

func TestDomoreWithJoinMatchesSequential(t *testing.T) {
	want := golden(t)
	f := newT()
	stats := domore.Run(f, domore.Options{Workers: 3})
	if got := f.Checksum(); got != want {
		t.Fatalf("domore checksum %x != sequential %x", got, want)
	}
	if stats.Iterations != int64(f.Frames*NumPhases*f.Cells) {
		t.Fatalf("iterations = %d", stats.Iterations)
	}
}

func TestSpecCrossWithProfiledDistance(t *testing.T) {
	want := golden(t)
	prof := newT()
	pr := speccross.Profile(prof, signature.Exact, 4)
	if pr.MinDistance == speccross.NoConflict {
		t.Fatal("fluidanimate must have cross-invocation conflicts (Table 5.3)")
	}
	f := newT()
	cfg := speccross.Config{Workers: 4, CheckpointEvery: 64, SigKind: signature.Exact}
	if dist, profitable := pr.Recommended(cfg.Workers); profitable {
		cfg.SpecDistance = dist
	}
	stats := speccross.Run(f, cfg)
	if got := f.Checksum(); got != want {
		t.Fatalf("speccross checksum %x != sequential %x", got, want)
	}
	if stats.Misspeculations != 0 {
		t.Errorf("misspeculations = %d with profiled gating", stats.Misspeculations)
	}
	t.Logf("profiled min distance: %d (per loop: %v)", pr.MinDistance, pr.PerLoop)
}

func TestTraceVariantsDiffer(t *testing.T) {
	f := newT()
	lw := f.TraceVariant(LocalWrite)
	dm := f.TraceVariant(Domore)
	mn := f.TraceVariant(Manual)
	fo := f.TraceVariant(ForcesOnly)
	if lw.Epochs[0].PerThreadCost == 0 {
		t.Fatal("LOCALWRITE variant must carry redundant per-thread cost")
	}
	if dm.Epochs[0].PerThreadCost != 0 {
		t.Fatal("DOMORE variant must not carry the redundant walk")
	}
	if mn.SeqTime() >= lw.SeqTime() {
		t.Fatal("manual pair-once plan must do less total work than LOCALWRITE")
	}
	if len(fo.Epochs) != f.Frames {
		t.Fatalf("FLUIDANIMATE-1 epochs = %d, want one per frame", len(fo.Epochs))
	}
	if !fo.Epochs[0].JoinAfter {
		t.Fatal("FLUIDANIMATE-1 must join after each invocation")
	}
	for _, v := range []Variant{LocalWrite, Domore, Manual, ForcesOnly} {
		if v.String() == "?" {
			t.Fatal("unnamed variant")
		}
	}
}

func TestEpochLabels(t *testing.T) {
	f := newT()
	if f.EpochLabel(0) != "ClearParticles" || f.EpochLabel(5) != "ComputeForces" {
		t.Fatalf("labels wrong: %q %q", f.EpochLabel(0), f.EpochLabel(5))
	}
}

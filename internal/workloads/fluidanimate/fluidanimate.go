// Package fluidanimate ports the PARSEC fluidanimate benchmark — the
// paper's case study (§5.4, Figs 5.5–5.6): a smoothed-particle-
// hydrodynamics frame loop of eight phases (Fig 5.5's ClearParticles …
// AdvanceParticles), where particles interact through a uniform grid of
// cells and a particle can be the neighbor of particles in adjacent cells —
// the statically-unanalyzable update pattern that forces LOCALWRITE or
// DOANY parallelizations of the interaction phases.
//
// The port uses fixed-point integer physics so every execution strategy is
// bit-exact comparable. Tasks are cells; under the owner-computes rule each
// phase's task writes only its own cell's particles, so phases are DOALL
// across cells and the cross-phase dependences (positions → grid → density
// → force → movement) are exactly the cross-invocation dependences the
// paper's techniques target (Table 5.3 measures a minimum distance of 54
// tasks on some of them).
package fluidanimate

import (
	"runtime"
	"sync"
	"sync/atomic"

	"crossinv/internal/runtime/barrier"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/sim"
	"crossinv/internal/workloads"
)

// NumPhases is the number of parallel invocations per frame (Fig 5.5).
const NumPhases = 8

// Phase indices.
const (
	PhaseClear = iota
	PhaseRebuild
	PhaseInitDensities
	PhaseDensities
	PhaseDensities2
	PhaseForces
	PhaseCollisions
	PhaseAdvance
)

// PhaseNames matches Fig 5.5's function names.
var PhaseNames = [NumPhases]string{
	"ClearParticles", "RebuildGrid", "InitDensitiesAndForces",
	"ComputeDensities", "ComputeDensities2", "ComputeForces",
	"ProcessCollisions", "AdvanceParticles",
}

// Address planes for conflict tracking (cell granular).
const (
	planeBucket = iota
	planeDensity
	planeForce
	planePos
	planeVel
	planeCellOf
	numPlanes
)

// Fluid is one benchmark instance.
type Fluid struct {
	// G is the grid side; Cells = G·G.
	G, Cells int
	// P is the particle count.
	P int
	// Frames is the frame-loop trip count.
	Frames int

	// Particle state, fixed point (20.12).
	px, py, vx, vy []int64
	fx, fy         []int64
	density        []int64
	cellOf         []int32
	// Buckets are stored flat (bucketData[c·P+i], bucketLen[c]) rather than
	// as slices-of-slices: speculative execution may read a bucket while
	// its owner rebuilds it, and stale int32s are memory-safe where torn
	// slice headers would not be (the conflict is then caught by the
	// signature checker and rolled back).
	bucketData []int32
	bucketLen  []int32

	// joinDone supports the DOMORE adapter's invocation join (see
	// DomoreJoin): completed-task counter per invocation.
	joinDone atomic.Int64
}

const fp = 1 << 12 // fixed-point unit

// New builds a deterministic instance. scale 1 gives a 12×12 grid, 1440
// particles, and 62 frames (496 epochs, near Table 5.3's 1488 at scale 3).
func New(scale int) *Fluid {
	if scale <= 0 {
		scale = 1
	}
	f := &Fluid{G: 12, Frames: 62 * scale}
	f.Cells = f.G * f.G
	f.P = f.Cells * 10
	f.px = make([]int64, f.P)
	f.py = make([]int64, f.P)
	f.vx = make([]int64, f.P)
	f.vy = make([]int64, f.P)
	f.fx = make([]int64, f.P)
	f.fy = make([]int64, f.P)
	f.density = make([]int64, f.P)
	f.cellOf = make([]int32, f.P)
	f.bucketData = make([]int32, f.Cells*f.P)
	f.bucketLen = make([]int32, f.Cells)
	rng := workloads.NewRng(0xF1D)
	world := int64(f.G) * fp
	for p := 0; p < f.P; p++ {
		f.px[p] = int64(rng.Intn(int(world)))
		f.py[p] = int64(rng.Intn(int(world)))
		f.vx[p] = int64(rng.Intn(fp/2)) - fp/4
		f.vy[p] = int64(rng.Intn(fp/2)) - fp/4
		f.cellOf[p] = f.cellAt(f.px[p], f.py[p])
	}
	return f
}

func (f *Fluid) cellAt(x, y int64) int32 {
	cx := int(x / fp)
	cy := int(y / fp)
	if cx < 0 {
		cx = 0
	}
	if cx >= f.G {
		cx = f.G - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= f.G {
		cy = f.G - 1
	}
	return int32(cy*f.G + cx)
}

// neighbors appends cell c's 3×3 neighborhood (including c).
func (f *Fluid) neighbors(c int, out []int) []int {
	cx, cy := c%f.G, c/f.G
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx >= 0 && nx < f.G && ny >= 0 && ny < f.G {
				out = append(out, ny*f.G+nx)
			}
		}
	}
	return out
}

// Name implements workloads.Instance.
func (f *Fluid) Name() string { return "FLUIDANIMATE" }

// cell returns cell c's particle list view.
func (f *Fluid) cell(c int) []int32 {
	return f.bucketData[c*f.P : c*f.P+int(f.bucketLen[c])]
}

// phase executes one phase for one owner cell (the owner-computes rule:
// only state of particles in cell c — or cell c's bucket — is written).
func (f *Fluid) phase(ph, c int) {
	switch ph {
	case PhaseClear:
		f.bucketLen[c] = 0
	case PhaseRebuild:
		// LOCALWRITE redundancy: every task scans all particles, keeping
		// only its own (§2.2's redundant traversal).
		n := int32(0)
		for p := 0; p < f.P; p++ {
			if int(f.cellOf[p]) == c {
				f.bucketData[c*f.P+int(n)] = int32(p)
				n++
			}
		}
		f.bucketLen[c] = n
	case PhaseInitDensities:
		for _, p := range f.cell(c) {
			f.density[p] = fp
			f.fx[p] = 0
			f.fy[p] = -fp / 8 // gravity
		}
	case PhaseDensities:
		var nb []int
		nb = f.neighbors(c, nb)
		for _, p := range f.cell(c) {
			for _, n := range nb {
				for _, q := range f.cell(n) {
					if q == p {
						continue
					}
					dx := f.px[p] - f.px[int(q)]
					dy := f.py[p] - f.py[int(q)]
					d2 := (dx*dx + dy*dy) / fp
					if d2 < fp {
						f.density[p] += (fp - d2) / 16
					}
				}
			}
		}
	case PhaseDensities2:
		for _, p := range f.cell(c) {
			f.density[p] = f.density[p] * 9 / 10
		}
	case PhaseForces:
		var nb []int
		nb = f.neighbors(c, nb)
		for _, p := range f.cell(c) {
			for _, n := range nb {
				for _, q := range f.cell(n) {
					if q == p {
						continue
					}
					dx := f.px[p] - f.px[int(q)]
					dy := f.py[p] - f.py[int(q)]
					d2 := (dx*dx + dy*dy) / fp
					if d2 < fp && d2 > 0 {
						press := (f.density[p] + f.density[int(q)]) / 2
						f.fx[p] += dx * press / (d2 + 1) / 64
						f.fy[p] += dy * press / (d2 + 1) / 64
					}
				}
			}
		}
	case PhaseCollisions:
		world := int64(f.G) * fp
		for _, p := range f.cell(c) {
			if f.px[p] < 0 || f.px[p] >= world {
				f.vx[p] = -f.vx[p] * 7 / 8
			}
			if f.py[p] < 0 || f.py[p] >= world {
				f.vy[p] = -f.vy[p] * 7 / 8
			}
		}
	case PhaseAdvance:
		world := int64(f.G) * fp
		for _, p := range f.cell(c) {
			f.vx[p] += f.fx[p] / 32
			f.vy[p] += f.fy[p] / 32
			f.px[p] += f.vx[p] / 16
			f.py[p] += f.vy[p] / 16
			if f.px[p] < 0 {
				f.px[p] = 0
			}
			if f.px[p] >= world {
				f.px[p] = world - 1
			}
			if f.py[p] < 0 {
				f.py[p] = 0
			}
			if f.py[p] >= world {
				f.py[p] = world - 1
			}
			f.cellOf[p] = f.cellAt(f.px[p], f.py[p])
		}
	}
}

// RunSequential implements workloads.Instance.
func (f *Fluid) RunSequential() {
	for fr := 0; fr < f.Frames; fr++ {
		for ph := 0; ph < NumPhases; ph++ {
			for c := 0; c < f.Cells; c++ {
				f.phase(ph, c)
			}
		}
	}
}

// Checksum implements workloads.Instance.
func (f *Fluid) Checksum() uint64 {
	h := uint64(1469598103934665603)
	h = workloads.FoldChecksum(h, f.px)
	h = workloads.FoldChecksum(h, f.py)
	h = workloads.FoldChecksum(h, f.vx)
	h = workloads.FoldChecksum(h, f.vy)
	h = workloads.FoldChecksum(h, f.density)
	return h
}

// access appends the cell-granular read and write sets of (phase, cell).
func (f *Fluid) access(ph, c int, reads, writes []uint64) ([]uint64, []uint64) {
	// Cell-contiguous layout (cell·numPlanes + plane): one task's writes
	// form a tight address cluster, which keeps range signatures usable and
	// is also how the real program's per-cell structs would sit in memory.
	plane := func(pl, cell int) uint64 { return uint64(cell*numPlanes + pl) }
	switch ph {
	case PhaseClear:
		writes = append(writes, plane(planeBucket, c))
	case PhaseRebuild:
		writes = append(writes, plane(planeBucket, c))
		for cc := 0; cc < f.Cells; cc++ {
			reads = append(reads, plane(planeCellOf, cc))
		}
	case PhaseInitDensities:
		writes = append(writes, plane(planeDensity, c), plane(planeForce, c))
		reads = append(reads, plane(planeBucket, c))
	case PhaseDensities:
		writes = append(writes, plane(planeDensity, c))
		var nb []int
		nb = f.neighbors(c, nb)
		for _, n := range nb {
			reads = append(reads, plane(planeBucket, n), plane(planePos, n), plane(planeDensity, n))
		}
	case PhaseDensities2:
		writes = append(writes, plane(planeDensity, c))
		reads = append(reads, plane(planeBucket, c))
	case PhaseForces:
		writes = append(writes, plane(planeForce, c))
		var nb []int
		nb = f.neighbors(c, nb)
		for _, n := range nb {
			reads = append(reads, plane(planeBucket, n), plane(planePos, n), plane(planeDensity, n))
		}
	case PhaseCollisions:
		writes = append(writes, plane(planeVel, c))
		reads = append(reads, plane(planeBucket, c), plane(planePos, c))
	case PhaseAdvance:
		writes = append(writes, plane(planePos, c), plane(planeVel, c), plane(planeCellOf, c))
		reads = append(reads, plane(planeBucket, c), plane(planeForce, c))
	}
	return reads, writes
}

// lwTaskCost is the per-cell cost a LOCALWRITE worker pays for its OWN
// cell (own-side updates; RebuildGrid's full particle scan is inherently
// per-task).
func lwTaskCost(ph int) int64 {
	switch ph {
	case PhaseDensities:
		return 2800
	case PhaseForces:
		return 5300
	case PhaseRebuild:
		return 3000 // scans every particle, keeping its own (§2.2)
	default:
		return 900
	}
}

// lwWalkPercent is the share of a phase's pair-once per-cell work that
// LOCALWRITE executes redundantly on EVERY thread — statements 1–2 of
// Fig 2.3(c): the traversal and the pair distance computation run
// everywhere; only the owned update is filtered. This is why the paper's
// LOCALWRITE fluidanimate caps near 2.5× however many threads run (§5.4).
func lwWalkPercent(ph int) int64 {
	switch ph {
	case PhaseDensities, PhaseForces:
		return 55
	case PhaseRebuild:
		return 0 // the scan is modeled as task cost
	default:
		return 10
	}
}

// Trace implements workloads.Instance: FLUIDANIMATE-2's plan is LOCALWRITE
// (Table 5.1), so the default trace carries the redundant per-thread work.
func (f *Fluid) Trace() *sim.Trace {
	tr := &sim.Trace{Name: f.Name()}
	for fr := 0; fr < f.Frames; fr++ {
		for ph := 0; ph < NumPhases; ph++ {
			e := sim.Epoch{
				SeqCost:       200,
				PerThreadCost: lwWalkPercent(ph) * plainCost(ph) * int64(f.Cells) / 100,
			}
			for c := 0; c < f.Cells; c++ {
				r, w := f.access(ph, c, nil, nil)
				e.Tasks = append(e.Tasks, sim.Task{Cost: lwTaskCost(ph), Reads: r, Writes: w})
			}
			tr.Epochs = append(tr.Epochs, e)
		}
	}
	return tr
}

// --- speccross.Workload (FLUIDANIMATE-2: the whole frame loop) ---

// Epochs implements speccross.Workload.
func (f *Fluid) Epochs() int { return f.Frames * NumPhases }

// Tasks implements speccross.Workload.
func (f *Fluid) Tasks(epoch int) int { return f.Cells }

// Run implements speccross.Workload.
func (f *Fluid) Run(epoch, task, tid int, sig *signature.Signature) {
	ph := epoch % NumPhases
	if sig != nil {
		r, w := f.access(ph, task, nil, nil)
		for _, a := range r {
			sig.Read(a)
		}
		for _, a := range w {
			sig.Write(a)
		}
	}
	f.phase(ph, task)
}

// Snapshot implements speccross.Workload.
func (f *Fluid) Snapshot() any {
	return &snapshot{
		px: append([]int64(nil), f.px...), py: append([]int64(nil), f.py...),
		vx: append([]int64(nil), f.vx...), vy: append([]int64(nil), f.vy...),
		fx: append([]int64(nil), f.fx...), fy: append([]int64(nil), f.fy...),
		density:    append([]int64(nil), f.density...),
		cellOf:     append([]int32(nil), f.cellOf...),
		bucketData: append([]int32(nil), f.bucketData...),
		bucketLen:  append([]int32(nil), f.bucketLen...),
	}
}

type snapshot struct {
	px, py, vx, vy, fx, fy, density []int64
	cellOf                          []int32
	bucketData, bucketLen           []int32
}

// Restore implements speccross.Workload.
func (f *Fluid) Restore(sn any) {
	s := sn.(*snapshot)
	copy(f.px, s.px)
	copy(f.py, s.py)
	copy(f.vx, s.vx)
	copy(f.vy, s.vy)
	copy(f.fx, s.fx)
	copy(f.fy, s.fy)
	copy(f.density, s.density)
	copy(f.cellOf, s.cellOf)
	copy(f.bucketData, s.bucketData)
	copy(f.bucketLen, s.bucketLen)
}

// EpochLabel implements speccross.Labeler.
func (f *Fluid) EpochLabel(epoch int) string { return PhaseNames[epoch%NumPhases] }

// --- domore.Workload (FLUIDANIMATE-1 and the Fig 5.6 DOMORE plans) ---

// Invocations implements domore.Workload.
func (f *Fluid) Invocations() int { return f.Frames * NumPhases }

// Iterations implements domore.Workload.
func (f *Fluid) Iterations(inv int) int { return f.Cells }

// Sequential implements domore.Workload. Phase boundaries inside a frame
// consume the previous phase's worker results, so the scheduler must join
// before proceeding — the constraint that keeps DOMORE from overlapping
// FLUIDANIMATE's invocations (Fig 5.1(d)'s flat curve). The join is
// implemented by waiting for the completed-task counter.
func (f *Fluid) Sequential(inv int) {
	want := int64(inv) * int64(f.Cells)
	for spins := 0; f.joinDone.Load() < want; spins++ {
		if spins > 8 {
			runtime.Gosched()
		}
	}
}

// ComputeAddr implements domore.Workload.
func (f *Fluid) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	_, w := f.access(inv%NumPhases, iter, nil, buf)
	return w
}

// Execute implements domore.Workload.
func (f *Fluid) Execute(inv, iter, tid int) {
	f.phase(inv%NumPhases, iter)
	f.joinDone.Add(1)
}

// --- Manual DOANY parallelization (the hand-written PARSEC version) ---

// RunManualDOANY executes the frame loop the way the PARSEC programmers
// parallelized it (§5.4): every phase is split across workers by cell, the
// interaction phases update both sides of each pair under an array of
// per-cell locks (DOANY), and a barrier separates phases.
func (f *Fluid) RunManualDOANY(workers int) {
	locks := make([]sync.Mutex, f.Cells)
	bar := barrier.New(workers)
	var wg sync.WaitGroup
	for tid := 0; tid < workers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for fr := 0; fr < f.Frames; fr++ {
				for ph := 0; ph < NumPhases; ph++ {
					for c := tid; c < f.Cells; c += workers {
						if ph == PhaseDensities || ph == PhaseForces {
							f.pairPhaseLocked(ph, c, locks)
						} else {
							f.phase(ph, c)
						}
					}
					bar.Wait()
				}
			}
		}(tid)
	}
	wg.Wait()
}

// pairPhaseLocked is the DOANY variant of the interaction phases: each
// (p,q) pair is computed once and both particles are updated while holding
// both cells' locks in ascending order. The outcome is order-insensitive
// because the contributions are commutative sums — the DOANY requirement
// (§2.2). To remain bit-identical with the owner-computes versions, the
// pair contribution is applied from both perspectives exactly as the
// redundant version computes them.
func (f *Fluid) pairPhaseLocked(ph, c int, locks []sync.Mutex) {
	var nb []int
	nb = f.neighbors(c, nb)
	for _, n := range nb {
		if n < c {
			continue // each unordered cell pair handled once
		}
		a, b := c, n
		locks[a].Lock()
		if b != a {
			locks[b].Lock()
		}
		f.pairContrib(ph, c, n)
		if n != c {
			f.pairContrib(ph, n, c)
		}
		if b != a {
			locks[b].Unlock()
		}
		locks[a].Unlock()
	}
}

// pairContrib applies the phase's one-sided contribution: owner cell's
// particles accumulate from src cell's particles.
func (f *Fluid) pairContrib(ph, owner, src int) {
	for _, p := range f.cell(owner) {
		for _, q := range f.cell(src) {
			if q == p {
				continue
			}
			dx := f.px[p] - f.px[int(q)]
			dy := f.py[p] - f.py[int(q)]
			d2 := (dx*dx + dy*dy) / fp
			if ph == PhaseDensities {
				if d2 < fp {
					f.density[p] += (fp - d2) / 16
				}
			} else if d2 < fp && d2 > 0 {
				press := (f.density[p] + f.density[int(q)]) / 2
				f.fx[p] += dx * press / (d2 + 1) / 64
				f.fy[p] += dy * press / (d2 + 1) / 64
			}
		}
	}
}

func init() {
	workloads.Register(workloads.Entry{
		Name: "FLUIDANIMATE", Suite: "Parsec", Function: "frame loop", Plan: "LOCALWRITE",
		DomoreOK: true, SpecOK: true, Exact: true,
		Make: func(scale int) workloads.Instance { return New(scale) },
	})
}

package fluidanimate

import "crossinv/internal/sim"

// Variant selects one of the parallelization plans the case study compares
// (Fig 5.6), plus the FLUIDANIMATE-1 single-loop plan of Fig 5.1(d).
type Variant int

// Variants.
const (
	// LocalWrite is the compiler's owner-computes plan: every thread walks
	// the whole iteration space, and pair interactions are computed from
	// both owners' perspectives (Fig 5.6 "LOCALWRITE+Barrier"/"+SpecCross").
	LocalWrite Variant = iota
	// Domore is DOMORE's precisely-scheduled plan: the scheduler computes
	// ownership and dispatches pair-once work, removing both the redundant
	// walk and the pair recomputation at the price of the scheduler thread
	// (Table 5.2: 21.5% of aggregate worker time).
	Domore
	// Manual is the hand-parallelized PARSEC version: pairs computed once
	// under per-cell locks (DOANY), barriers between phases
	// ("MANUAL(DOANY+Barrier)").
	Manual
	// ForcesOnly is FLUIDANIMATE-1: only ComputeForce is parallelized
	// (50.2% of runtime, Table 5.1); everything else is sequential per
	// frame, so DOMORE must join after every invocation (Fig 5.1(d)).
	ForcesOnly
)

// String returns the variant's Fig 5.6 label.
func (v Variant) String() string {
	switch v {
	case LocalWrite:
		return "LOCALWRITE"
	case Domore:
		return "DOMORE"
	case Manual:
		return "MANUAL(DOANY)"
	case ForcesOnly:
		return "FLUIDANIMATE-1"
	default:
		return "?"
	}
}

// plainCost is the pair-once per-cell cost of each phase — the work the
// original sequential program performs (and the unit Fig 5.6's speedups are
// measured against).
func plainCost(ph int) int64 {
	switch ph {
	case PhaseDensities:
		return 3100
	case PhaseForces:
		return 5900
	case PhaseRebuild:
		return 700
	default:
		return 900
	}
}

// interaction reports whether the phase computes particle pairs.
func interaction(ph int) bool {
	return ph == PhaseDensities || ph == PhaseForces
}

// lockOverhead is the DOANY per-task lock acquisition cost.
const lockOverhead = 800

// forcesOnlySchedCost is FLUIDANIMATE-1's per-iteration scheduler cost:
// the ownership computation plus the LOCALWRITE redundancy the
// transformation moved into the scheduler (§5.1), which is what Table 5.2
// measures as the 21.5% scheduler share.
const forcesOnlySchedCost = 1270

// domoreSchedCost is the DOMORE scheduler's per-iteration cost for
// FLUIDANIMATE: the ownership computation the transformation hoisted out of
// the workers (Table 5.2 measures the resulting scheduler share at 21.5% of aggregate worker time).
const domoreSchedCost = 380

// SeqWork is the sequential program's virtual time (pair-once, no locks).
func (f *Fluid) SeqWork() int64 {
	var total int64
	for fr := 0; fr < f.Frames; fr++ {
		for ph := 0; ph < NumPhases; ph++ {
			total += 200 + plainCost(ph)*int64(f.Cells)
		}
	}
	return total
}

// TraceVariant exports the virtual-time structure of the chosen plan.
func (f *Fluid) TraceVariant(v Variant) *sim.Trace {
	switch v {
	case LocalWrite:
		return f.Trace()
	case Domore:
		tr := &sim.Trace{Name: "FLUIDANIMATE/domore"}
		for fr := 0; fr < f.Frames; fr++ {
			for ph := 0; ph < NumPhases; ph++ {
				e := sim.Epoch{SeqCost: 200}
				for c := 0; c < f.Cells; c++ {
					r, w := f.access(ph, c, nil, nil)
					e.Tasks = append(e.Tasks, sim.Task{
						Cost: plainCost(ph), Reads: r, Writes: w,
						SchedCost: domoreSchedCost,
					})
				}
				tr.Epochs = append(tr.Epochs, e)
			}
		}
		return tr
	case Manual:
		tr := &sim.Trace{Name: "FLUIDANIMATE/manual"}
		for fr := 0; fr < f.Frames; fr++ {
			for ph := 0; ph < NumPhases; ph++ {
				e := sim.Epoch{SeqCost: 200}
				for c := 0; c < f.Cells; c++ {
					r, w := f.access(ph, c, nil, nil)
					cost := plainCost(ph)
					if interaction(ph) {
						cost += lockOverhead
					}
					e.Tasks = append(e.Tasks, sim.Task{Cost: cost, Reads: r, Writes: w})
				}
				tr.Epochs = append(tr.Epochs, e)
			}
		}
		return tr
	case ForcesOnly:
		// One epoch per frame: the seven sequential phases collapse into
		// SeqCost, ComputeForces' cells are the tasks, and DOMORE must
		// join because AdvanceParticles consumes the forces.
		tr := &sim.Trace{Name: "FLUIDANIMATE-1"}
		var seq int64
		for ph := 0; ph < NumPhases; ph++ {
			if ph != PhaseForces {
				seq += plainCost(ph) * int64(f.Cells)
			}
		}
		for fr := 0; fr < f.Frames; fr++ {
			e := sim.Epoch{SeqCost: seq, JoinAfter: true}
			for c := 0; c < f.Cells; c++ {
				r, w := f.access(PhaseForces, c, nil, nil)
				e.Tasks = append(e.Tasks, sim.Task{
					Cost: plainCost(PhaseForces), Reads: r, Writes: w,
					SchedCost: forcesOnlySchedCost,
				})
			}
			tr.Epochs = append(tr.Epochs, e)
		}
		return tr
	default:
		return f.Trace()
	}
}

// Package loopdep ports the OMPBench LOOPDEP benchmark (Table 5.1): a
// region of loop invocations with a *known, regular* cross-invocation
// dependence distance — the profiler measures ≈500 tasks on the training
// input and ≈800 on the reference input (Table 5.3), which is what the
// SPECCROSS speculative range is set from.
package loopdep

import (
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// New builds a deterministic instance: five rotating buffers of M cells;
// epoch e writes buffer e mod 5 and reads the buffer written two epochs
// earlier (anti- and output-dependences rotate further away), so the
// minimum dependence distance is exactly 2·M tasks. scale 1 gives M=245
// tasks/epoch and 1000 epochs (245000 tasks, Table 5.3's counts; distance
// 490 ≈ the measured 500).
func New(scale int) *epochal.Kernel {
	if scale <= 0 {
		scale = 1
	}
	const m = 245
	epochs := 1000 * scale
	k := &epochal.Kernel{
		BenchName: "LOOPDEP",
		State:     make([]int64, 5*m),
		NumEpochs: epochs,
		SeqCost:   150,
	}
	rng := workloads.NewRng(0x100DE)
	for i := range k.State {
		k.State[i] = int64(rng.Intn(1 << 16))
	}
	k.TasksOf = func(epoch int) int { return m }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		dst := (epoch % 5) * m
		src := ((epoch + 3) % 5) * m // == (epoch−2) mod 5
		writes = append(writes, uint64(dst+task))
		reads = append(reads, uint64(src+task))
		return reads, writes
	}
	k.Update = func(epoch, task int) {
		dst := (epoch%5)*m + task
		src := ((epoch+3)%5)*m + task
		k.State[dst] = k.State[dst]*5 + k.State[src]%1009 + int64(epoch)
	}
	k.TaskCost = func(epoch, task int) int64 { return 700 }
	// Element-granular addresses: signature address == State index.
	k.AddrSpan = epochal.IdentitySpan
	return k
}

func init() {
	workloads.Register(workloads.Entry{
		Name: "LOOPDEP", Suite: "OMPBench", Function: "main", Plan: "DOALL",
		DomoreOK: false, SpecOK: true,
		Make: func(scale int) workloads.Instance { return New(scale) },
	})
}

// Package jacobi ports PolyBench jacobi-2d-imper (Table 5.1): T sweeps of a
// five-point stencil alternating between two grids. Each sweep is one
// parallel invocation whose tasks are grid rows; the stencil makes row r of
// one sweep depend on rows r−1..r+1 of the previous sweep, the classic
// cross-invocation dependence pattern barriers serialize and SPECCROSS
// overlaps (Fig 5.2(e)).
package jacobi

import (
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// New builds a deterministic instance: an N×N grid with 2·steps epochs of
// N−2 row tasks. scale 1 gives N=100, steps=250 (500 epochs), close to
// Table 5.3's ≈99 tasks/epoch shape.
func New(scale int) *epochal.Kernel {
	if scale <= 0 {
		scale = 1
	}
	const n = 100
	steps := 250 * scale
	// State layout: grid A at [0, n²), grid B at [n², 2n²). Row-granular
	// trace addresses live in a separate space above the elements.
	k := &epochal.Kernel{
		BenchName: "JACOBI",
		State:     make([]int64, 2*n*n),
		NumEpochs: 2 * steps,
		SeqCost:   200,
	}
	rng := workloads.NewRng(0x1AC0B1)
	for i := range k.State[:n*n] {
		k.State[i] = int64(rng.Intn(1000))
	}
	rowAddr := func(grid, row int) uint64 { return uint64(grid*n + row) }
	k.TasksOf = func(epoch int) int { return n - 2 }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		src := epoch % 2 // even epochs read A(0) write B(1); odd the reverse
		dst := 1 - src
		r := task + 1
		reads = append(reads, rowAddr(src, r-1), rowAddr(src, r), rowAddr(src, r+1))
		writes = append(writes, rowAddr(dst, r))
		return reads, writes
	}
	k.Update = func(epoch, task int) {
		src := (epoch % 2) * n * n
		dst := (1 - epoch%2) * n * n
		r := task + 1
		for c := 1; c < n-1; c++ {
			i := r*n + c
			k.State[dst+i] = (k.State[src+i] + k.State[src+i-1] + k.State[src+i+1] +
				k.State[src+i-n] + k.State[src+i+n]) / 5
		}
	}
	k.TaskCost = func(epoch, task int) int64 { return 2600 }
	// Row-granular addresses: grid*n+row covers the n cells of that row.
	k.AddrSpan = epochal.BlockSpan(n)
	return k
}

func init() {
	workloads.Register(workloads.Entry{
		Name: "JACOBI", Suite: "PolyBench", Function: "main", Plan: "DOALL",
		DomoreOK: false, SpecOK: true,
		Make: func(scale int) workloads.Instance { return New(scale) },
	})
}

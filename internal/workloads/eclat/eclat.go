// Package eclat ports the MineBench ECLAT itemset miner (Table 5.1):
// process_inverti walks a graph of itemset nodes (the outer loop) and, for
// each item in a node (the inner loop), appends transaction IDs to the
// vertical database's per-transaction lists. Transaction numbers are
// computed non-linearly, so the conflict pattern is statically opaque; the
// profiled outer dependence manifests on 99% of iterations (§5.1), which
// is why Spec-DOALL on the outer loop loses and DOMORE — with its heavier
// 12.5% scheduler (Table 5.2) — peaks around 5 threads (Fig 5.1(c)).
package eclat

import (
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// ItemsPerNode is the inner-loop trip count (tasks per invocation).
const ItemsPerNode = 40

// New builds a deterministic instance. scale 1 gives 600 nodes over a
// 500-bucket vertical database; 99% of a node's buckets collide with the
// previous node's.
func New(scale int) *epochal.Kernel {
	if scale <= 0 {
		scale = 1
	}
	const buckets = 500
	nodes := 600 * scale
	k := &epochal.Kernel{
		BenchName: "ECLAT",
		State:     make([]int64, buckets),
		NumEpochs: nodes,
		SeqCost:   400,
	}
	rng := workloads.NewRng(0xEC1A7)
	bucketOf := make([]uint64, nodes*ItemsPerNode)
	prev := make([]uint64, 0, ItemsPerNode)
	cur := make([]uint64, 0, ItemsPerNode)
	used := map[uint64]bool{}
	for nidx := 0; nidx < nodes; nidx++ {
		cur = cur[:0]
		clear(used)
		for t := 0; t < ItemsPerNode; t++ {
			var b uint64
			if len(prev) > 0 && rng.Intn(100) < 99 {
				b = prev[(t+1)%len(prev)] // shifted: lands on another thread
			} else {
				b = uint64(rng.Intn(buckets))
			}
			for used[b] {
				b = uint64(rng.Intn(buckets))
			}
			used[b] = true
			cur = append(cur, b)
			bucketOf[nidx*ItemsPerNode+t] = b
		}
		prev = append(prev[:0], cur...)
	}
	k.TasksOf = func(epoch int) int { return ItemsPerNode }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		writes = append(writes, bucketOf[epoch*ItemsPerNode+task])
		return reads, writes
	}
	k.Update = func(epoch, task int) {
		g := epoch*ItemsPerNode + task
		b := bucketOf[g]
		// Append the transaction id to the bucket's list; modeled as an
		// order-sensitive fold of the id into the bucket summary.
		k.State[b] = k.State[b]*7 + int64(g)%1000 + 1
	}
	// ECLAT's per-item work is light relative to its address computation
	// (the non-linear transaction-number math lands in computeAddr), which
	// is Table 5.2's 12.5% scheduler share.
	k.TaskCost = func(epoch, task int) int64 { return 1200 }
	return k
}

func init() {
	workloads.Register(workloads.Entry{
		Name: "ECLAT", Suite: "MineBench", Function: "process_inverti", Plan: "Spec-DOALL",
		DomoreOK: true, SpecOK: false,
		Make: func(scale int) workloads.Instance { return New(scale) },
	})
}

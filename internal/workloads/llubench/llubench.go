// Package llubench ports the LLVMBench linked-list update microbenchmark
// (Table 5.1): every invocation walks a set of linked lists and updates
// each node's payload; a task owns one list. Lists are disjoint, so no
// cross-thread conflict ever manifests at runtime (Table 5.3 records no
// observed conflicts) — yet the pointer chasing defeats static analysis,
// so the baseline still pays a barrier per invocation. This is the
// best-case workload for both DOMORE (Fig 5.1(e)) and SPECCROSS
// (Fig 5.2(f)).
package llubench

import (
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// Lists is the task count per invocation (Table 5.3: 110000 tasks over
// 2000 epochs → 55).
const Lists = 55

// NodesPerList is each list's length.
const NodesPerList = 40

// New builds a deterministic instance. scale 1 gives 2000 invocations.
// Each list's nodes are chained in a scrambled order so the walk is real
// pointer chasing.
func New(scale int) *epochal.Kernel {
	if scale <= 0 {
		scale = 1
	}
	epochs := 2000 * scale
	k := &epochal.Kernel{
		BenchName: "LLUBENCH",
		// Per node: payload and next-index, stored as two planes.
		State:     make([]int64, 2*Lists*NodesPerList),
		NumEpochs: epochs,
		SeqCost:   100,
	}
	rng := workloads.NewRng(0x77B)
	next := k.State[Lists*NodesPerList:]
	heads := make([]int, Lists)
	for l := 0; l < Lists; l++ {
		perm := rng.Perm(NodesPerList)
		for i := 0; i < NodesPerList-1; i++ {
			next[l*NodesPerList+perm[i]] = int64(perm[i+1])
		}
		next[l*NodesPerList+perm[NodesPerList-1]] = -1
		heads[l] = perm[0]
	}
	k.TasksOf = func(epoch int) int { return Lists }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		// List-granular: the whole list is one shadowed object (the
		// conservative summary a pointer-based analysis would use).
		writes = append(writes, uint64(task))
		return reads, writes
	}
	k.Update = func(epoch, task int) {
		base := task * NodesPerList
		i := heads[task]
		for i >= 0 {
			k.State[base+i] = k.State[base+i]*3 + int64(epoch%97) + 1
			i = int(next[base+i])
		}
	}
	k.TaskCost = func(epoch, task int) int64 { return 8800 }
	return k
}

func init() {
	workloads.Register(workloads.Entry{
		Name: "LLUBENCH", Suite: "LLVMBench", Function: "main", Plan: "DOALL",
		DomoreOK: true, SpecOK: true,
		Make: func(scale int) workloads.Instance { return New(scale) },
	})
}

// Package fdtd ports PolyBench fdtd-2d (Table 5.1): a finite-difference
// time-domain electromagnetic kernel. Every timestep runs three parallel
// invocations — update ey from hz, update ex from hz, update hz from
// ex/ey — so the region has three barriers per step in the baseline and
// dense cross-invocation dependences between consecutive phases
// (Fig 5.2(c); Table 5.3 reports 1200 epochs with a finite minimum
// dependence distance).
package fdtd

import (
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// New builds a deterministic instance: an N×N domain, 3·steps epochs of
// N row tasks. scale 1 gives N=120, steps=400 (1200 epochs, matching
// Table 5.3's epoch count).
func New(scale int) *epochal.Kernel {
	if scale <= 0 {
		scale = 1
	}
	const n = 120
	steps := 400 * scale
	// State: ey at 0, ex at n², hz at 2n².
	k := &epochal.Kernel{
		BenchName: "FDTD",
		State:     make([]int64, 3*n*n),
		NumEpochs: 3 * steps,
		SeqCost:   250,
	}
	rng := workloads.NewRng(0xFD7D)
	for i := range k.State {
		k.State[i] = int64(rng.Intn(512))
	}
	const (
		ey = 0
		ex = 1
		hz = 2
	)
	rowAddr := func(field, row int) uint64 { return uint64(field*n + row) }
	k.TasksOf = func(epoch int) int { return n }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		r := task
		switch epoch % 3 {
		case 0: // ey[r] -= k·(hz[r] − hz[r−1])
			writes = append(writes, rowAddr(ey, r))
			reads = append(reads, rowAddr(hz, r))
			if r > 0 {
				reads = append(reads, rowAddr(hz, r-1))
			}
		case 1: // ex[r] -= k·(hz[r] − hz[r], col shifted): row-local
			writes = append(writes, rowAddr(ex, r))
			reads = append(reads, rowAddr(hz, r))
		default: // hz[r] -= k·(ex[r] + ey[r+1] …)
			writes = append(writes, rowAddr(hz, r))
			reads = append(reads, rowAddr(ex, r), rowAddr(ey, r))
			if r < n-1 {
				reads = append(reads, rowAddr(ey, r+1))
			}
		}
		return reads, writes
	}
	k.Update = func(epoch, task int) {
		r := task
		st := k.State
		base := func(f int) int { return f * n * n }
		switch epoch % 3 {
		case 0:
			if r == 0 {
				for c := 0; c < n; c++ {
					st[base(ey)+c] = int64(epoch / 3)
				}
				return
			}
			for c := 0; c < n; c++ {
				st[base(ey)+r*n+c] -= (st[base(hz)+r*n+c] - st[base(hz)+(r-1)*n+c]) / 2
			}
		case 1:
			for c := 1; c < n; c++ {
				st[base(ex)+r*n+c] -= (st[base(hz)+r*n+c] - st[base(hz)+r*n+c-1]) / 2
			}
		default:
			if r == n-1 {
				return
			}
			for c := 0; c < n-1; c++ {
				st[base(hz)+r*n+c] -= (st[base(ex)+r*n+c+1] - st[base(ex)+r*n+c] +
					st[base(ey)+(r+1)*n+c] - st[base(ey)+r*n+c]) / 3
			}
		}
	}
	k.TaskCost = func(epoch, task int) int64 { return 2400 }
	// Row-granular addresses: field*n+row covers the n cells of that row.
	k.AddrSpan = epochal.BlockSpan(n)
	return k
}

func init() {
	workloads.Register(workloads.Entry{
		Name: "FDTD", Suite: "PolyBench", Function: "main", Plan: "DOALL",
		DomoreOK: false, SpecOK: true,
		Make: func(scale int) workloads.Instance { return New(scale) },
	})
}

// Package equake ports the SPEC FP 183.equake kernel (Table 5.1): an
// earthquake wave-propagation simulation whose timestep loop runs a sparse
// matrix-vector product (smvp) followed by a leapfrog displacement update —
// three parallel invocations per step over node chunks of an unstructured
// mesh. The sparse structure defeats static analysis, so the baseline pays
// three barriers per step; the buffers ping-pong with the step parity, so
// the closest true dependence sits ~two invocations away and speculation
// across the barriers is almost always safe (Table 5.3 records no close
// conflicts for EQUAKE; Fig 5.2(b) shows SPECCROSS scaling).
package equake

import (
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// Chunks is the task count per invocation (Table 5.3: 66000 tasks over
// 3000 epochs → 22).
const Chunks = 22

// New builds a deterministic instance over a synthetic mostly-block-
// diagonal mesh. scale 1 gives 1000 timesteps (3000 epochs).
func New(scale int) *epochal.Kernel {
	if scale <= 0 {
		scale = 1
	}
	const nodesPerChunk = 50
	const nodes = Chunks * nodesPerChunk
	steps := 1000 * scale
	// Fields, each nodes wide: w0, w1 (smvp results, ping-pong by step
	// parity), disp0, disp1 (displacements, ping-pong), dispOld0, dispOld1
	// (history, ping-pong), stiff (read-only stiffness). The ping-pong is
	// what keeps every cross-invocation dependence ≥ two invocations away.
	const (
		w0 = iota
		w1
		disp0
		disp1
		dispOld0
		dispOld1
		stiff
		numFields
	)
	k := &epochal.Kernel{
		BenchName: "EQUAKE",
		State:     make([]int64, numFields*nodes),
		NumEpochs: 3 * steps,
		SeqCost:   300,
	}
	rng := workloads.NewRng(0xE9)
	for i := range k.State {
		k.State[i] = int64(rng.Intn(211))
	}
	// Off-diagonal mesh edges: each chunk additionally reads one nearby
	// remote chunk. The small skew keeps the closest cross-invocation
	// dependence well above typical worker counts.
	remote := func(c int) int { return (c + 5) % Chunks }

	chunkAddr := func(field, c int) uint64 { return uint64(field*Chunks + c) }
	wBuf := func(s int) int { return w0 + s%2 }
	dispSrc := func(s int) int { return disp0 + s%2 }
	dispDst := func(s int) int { return disp0 + (s+1)%2 }
	oldR := func(s int) int { return dispOld0 + (s+1)%2 } // written at step s−1
	oldW := func(s int) int { return dispOld0 + s%2 }

	k.TasksOf = func(epoch int) int { return Chunks }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		s := epoch / 3
		switch epoch % 3 {
		case 0: // smvp: w[s%2][c] = K·disp_src (own + remote chunk)
			writes = append(writes, chunkAddr(wBuf(s), task))
			reads = append(reads,
				chunkAddr(dispSrc(s), task),
				chunkAddr(dispSrc(s), remote(task)),
				chunkAddr(stiff, task))
		case 1: // leapfrog integration: disp_dst from disp_src, the
			// previous step's smvp result, and dispOld
			writes = append(writes, chunkAddr(dispDst(s), task))
			reads = append(reads,
				chunkAddr(dispSrc(s), task),
				chunkAddr(wBuf(s+1), task), // written at phase 0 of step s−1
				chunkAddr(oldR(s), task))
		default: // history shift: dispOld = disp_src
			writes = append(writes, chunkAddr(oldW(s), task))
			reads = append(reads, chunkAddr(dispSrc(s), task))
		}
		return reads, writes
	}
	base := func(f int) int { return f * nodes }
	k.Update = func(epoch, task int) {
		st := k.State
		s := epoch / 3
		lo := task * nodesPerChunk
		switch epoch % 3 {
		case 0:
			rlo := remote(task) * nodesPerChunk
			src := base(dispSrc(s))
			dst := base(wBuf(s))
			for i := 0; i < nodesPerChunk; i++ {
				st[dst+lo+i] = st[base(stiff)+lo+i]*st[src+lo+i]%100003 +
					st[src+rlo+(i*13)%nodesPerChunk]%997
			}
		case 1:
			src := base(dispSrc(s))
			dst := base(dispDst(s))
			wPrev := base(wBuf(s + 1))
			old := base(oldR(s))
			for i := 0; i < nodesPerChunk; i++ {
				st[dst+lo+i] = st[src+lo+i]/2 + st[wPrev+lo+i]%4099 -
					st[old+lo+i]%257
			}
		default:
			src := base(dispSrc(s))
			dst := base(oldW(s))
			for i := 0; i < nodesPerChunk; i++ {
				st[dst+lo+i] = st[src+lo+i]
			}
		}
	}
	k.TaskCost = func(epoch, task int) int64 { return 3200 }
	// Chunk-granular addresses: field*Chunks+c covers that chunk's nodes.
	k.AddrSpan = epochal.BlockSpan(nodesPerChunk)
	return k
}

func init() {
	workloads.Register(workloads.Entry{
		Name: "EQUAKE", Suite: "SpecFP", Function: "main", Plan: "DOALL",
		// The ping-pong field planes scatter each task's addresses, so a
		// range signature spans unrelated fields; use exact sets (§4.2.3's
		// custom-generator hook).
		DomoreOK: false, SpecOK: true, Exact: true,
		Make: func(scale int) workloads.Instance { return New(scale) },
	})
}

// Package workloads hosts Go ports of the paper's evaluated benchmarks
// (Table 5.1). Each sub-package provides a deterministic synthetic instance
// of one program with the loop/dependence structure the paper describes,
// exposes the paper's sequential baseline, adapts the parallel region to
// the runtime engines that apply to it (Table 5.1's applicability columns),
// and exports a sim.Trace so the evaluation figures can be regenerated on
// any host (DESIGN.md, substitution 1 and 4).
package workloads

import (
	"fmt"

	"crossinv/internal/sim"
)

// Instance is a constructed benchmark instance.
type Instance interface {
	// Name is the benchmark's display name (paper spelling).
	Name() string
	// RunSequential runs the region sequentially, mutating the state.
	RunSequential()
	// Checksum folds the final state for equivalence checks.
	Checksum() uint64
	// Trace exports the virtual-time execution structure.
	Trace() *sim.Trace
}

// Entry describes one benchmark in the registry (one row of Table 5.1).
type Entry struct {
	// Name and Suite match Table 5.1.
	Name  string
	Suite string
	// Function is the parallelized function.
	Function string
	// Plan is the inner-loop parallelization plan.
	Plan string
	// DomoreOK and SpecOK are the applicability columns.
	DomoreOK, SpecOK bool
	// Exact selects exact-set signatures for this benchmark (tasks with
	// large scattered read sets, like FLUIDANIMATE's grid rebuild, saturate
	// range and Bloom summaries); the default is the range scheme.
	Exact bool
	// Make constructs a deterministic instance; scale 1 is the default
	// evaluation size, larger scales grow the input.
	Make func(scale int) Instance
}

var registry []Entry

// Register adds a benchmark; called from sub-package init via Add.
func Register(e Entry) {
	registry = append(registry, e)
}

// All returns the registered benchmarks in registration order.
func All() []Entry { return registry }

// Find returns the entry with the given name.
func Find(name string) (Entry, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Mix64 is the shared deterministic value mixer the synthetic kernels use
// as their do_work analog: cheap, invertible-looking, and order-sensitive
// when folded through state.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Rng is a tiny splitmix64 generator for deterministic synthetic inputs.
type Rng struct{ s uint64 }

// NewRng seeds a generator.
func NewRng(seed uint64) *Rng { return &Rng{s: seed} }

// Next returns the next pseudo-random value.
func (r *Rng) Next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return Mix64(r.s)
}

// Intn returns a value in [0, n).
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("workloads: Intn(%d)", n))
	}
	return int(r.Next() % uint64(n))
}

// Perm returns a deterministic permutation of [0, n).
func (r *Rng) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FoldChecksum is a helper to fold int64 slices into a checksum.
func FoldChecksum(h uint64, data []int64) uint64 {
	for _, v := range data {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

package workloads_test

import (
	"testing"

	"crossinv/internal/raceflag"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/cg"
	"crossinv/internal/workloads/epochal"
	"crossinv/internal/workloads/fluidanimate"

	_ "crossinv/internal/workloads/blackscholes"
	_ "crossinv/internal/workloads/eclat"
	_ "crossinv/internal/workloads/equake"
	_ "crossinv/internal/workloads/fdtd"
	_ "crossinv/internal/workloads/jacobi"
	_ "crossinv/internal/workloads/llubench"
	_ "crossinv/internal/workloads/loopdep"
	_ "crossinv/internal/workloads/phased"
	_ "crossinv/internal/workloads/symm"
)

// mk builds an instance, shrinking it under the race detector so the
// 10–20× slowdown keeps the suite within timeouts. The shrink truncates the
// region (fewer invocations), never its structure, and is applied to golden
// and parallel instances alike so equivalence checks stay exact.
func mk(e workloads.Entry) workloads.Instance {
	inst := e.Make(1)
	if !raceflag.Enabled {
		return inst
	}
	switch w := inst.(type) {
	case *epochal.Kernel:
		if w.NumEpochs > 120 {
			w.NumEpochs = 120
		}
	case *cg.CG:
		if w.Invs > 120 {
			w.Invs = 120
		}
	case *fluidanimate.Fluid:
		if w.Frames > 10 {
			w.Frames = 10
		}
	}
	return inst
}

func TestRegistryComplete(t *testing.T) {
	want := map[string]bool{
		"CG": true, "JACOBI": true, "FDTD": true, "SYMM": true,
		"LOOPDEP": true, "EQUAKE": true, "LLUBENCH": true,
		"FLUIDANIMATE": true, "BLACKSCHOLES": true, "ECLAT": true,
		"PHASED": true,
	}
	got := map[string]bool{}
	for _, e := range workloads.All() {
		got[e.Name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("benchmark %s missing from registry", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(got), len(want))
	}
	if _, err := workloads.Find("CG"); err != nil {
		t.Fatal(err)
	}
	if _, err := workloads.Find("nope"); err == nil {
		t.Fatal("Find of unknown benchmark must fail")
	}
}

func TestSequentialDeterminism(t *testing.T) {
	for _, e := range workloads.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			a := mk(e)
			b := mk(e)
			a.RunSequential()
			b.RunSequential()
			if a.Checksum() != b.Checksum() {
				t.Fatalf("two identical instances diverged")
			}
		})
	}
}

func TestTracesMatchAdapters(t *testing.T) {
	for _, e := range workloads.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			inst := e.Make(1)
			tr := inst.Trace()
			if tr.Tasks() == 0 {
				t.Fatal("empty trace")
			}
			if sw, ok := inst.(speccross.Workload); ok && e.SpecOK {
				total := 0
				for ep := 0; ep < sw.Epochs(); ep++ {
					total += sw.Tasks(ep)
				}
				if total != tr.Tasks() {
					t.Fatalf("trace tasks %d != workload tasks %d", tr.Tasks(), total)
				}
				if len(tr.Epochs) != sw.Epochs() {
					t.Fatalf("trace epochs %d != workload epochs %d", len(tr.Epochs), sw.Epochs())
				}
			}
		})
	}
}

func TestBarrierExecutionMatchesSequential(t *testing.T) {
	for _, e := range workloads.All() {
		if !e.SpecOK {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			golden := mk(e)
			golden.RunSequential()
			want := golden.Checksum()

			inst := mk(e)
			sw := inst.(speccross.Workload)
			speccross.RunBarriers(sw, 4)
			if got := inst.Checksum(); got != want {
				t.Fatalf("barrier checksum %x != sequential %x", got, want)
			}
		})
	}
}

func TestSpecCrossExecutionMatchesSequential(t *testing.T) {
	for _, e := range workloads.All() {
		if !e.SpecOK {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			golden := mk(e)
			golden.RunSequential()
			want := golden.Checksum()

			inst := mk(e)
			sw := inst.(speccross.Workload)
			kind := signature.Range
			if e.Exact {
				kind = signature.Exact
			}
			// Profile a scratch copy to configure the speculative range the
			// way the real pipeline does (§4.4).
			prof := mk(e).(speccross.Workload)
			pr := speccross.Profile(prof, kind, 8)
			cfg := speccross.Config{Workers: 4, CheckpointEvery: 200, SigKind: kind}
			if dist, profitable := pr.Recommended(cfg.Workers); profitable {
				cfg.SpecDistance = dist
				stats := speccross.Run(sw, cfg)
				if stats.Misspeculations != 0 {
					t.Errorf("misspeculations = %d with profiled gating, want 0", stats.Misspeculations)
				}
			} else {
				speccross.RunBarriers(sw, cfg.Workers)
			}
			if got := inst.Checksum(); got != want {
				t.Fatalf("speccross checksum %x != sequential %x", got, want)
			}
		})
	}
}

func TestDomoreExecutionMatchesSequential(t *testing.T) {
	for _, e := range workloads.All() {
		if !e.DomoreOK {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			golden := mk(e)
			golden.RunSequential()
			want := golden.Checksum()

			inst := mk(e)
			dw, ok := inst.(domore.Workload)
			if !ok {
				t.Fatalf("%s marked DomoreOK but lacks the adapter", e.Name)
			}
			stats := domore.Run(dw, domore.Options{Workers: 4})
			if got := inst.Checksum(); got != want {
				t.Fatalf("domore checksum %x != sequential %x", got, want)
			}
			if stats.Iterations == 0 {
				t.Fatal("no iterations scheduled")
			}
		})
	}
}

func TestProfileDistancesMatchTable53(t *testing.T) {
	// Table 5.3's training-input minimum dependence distances, adjusted to
	// this port's synthetic structures (see EXPERIMENTS.md): LOOPDEP's
	// rotation gives exactly 2 epochs = 490; CG's shifted reuse gives less
	// than one epoch's worth of tasks.
	cases := []struct {
		name string
		lo   int64
		hi   int64
	}{
		{"LOOPDEP", 490, 490},
		{"CG", 24, 27}, // lag·TasksPerEpoch − shift
		{"JACOBI", 90, 100},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			e, err := workloads.Find(c.name)
			if err != nil {
				t.Fatal(err)
			}
			inst := mk(e).(speccross.Workload)
			pr := speccross.Profile(inst, signature.Range, 8)
			if pr.MinDistance < c.lo || pr.MinDistance > c.hi {
				t.Fatalf("MinDistance = %d, want in [%d,%d]", pr.MinDistance, c.lo, c.hi)
			}
		})
	}
}

func TestLLUBenchNoConflicts(t *testing.T) {
	// Table 5.3 records no observed runtime conflicts for LLUBENCH: the
	// lists are disjoint and same-list accesses stay on one thread.
	e, err := workloads.Find("LLUBENCH")
	if err != nil {
		t.Fatal(err)
	}
	inst := mk(e).(speccross.Workload)
	stats := speccross.Run(inst, speccross.Config{Workers: 4, CheckpointEvery: 500})
	if stats.Misspeculations != 0 {
		t.Fatalf("LLUBENCH misspeculated %d times; lists are disjoint", stats.Misspeculations)
	}
}

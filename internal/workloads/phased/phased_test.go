package phased_test

import (
	"testing"

	"crossinv/internal/workloads"
	"crossinv/internal/workloads/phased"
)

func TestRegistered(t *testing.T) {
	e, err := workloads.Find("PHASED")
	if err != nil {
		t.Fatal(err)
	}
	if !e.DomoreOK || !e.SpecOK {
		t.Fatalf("PHASED must be applicable to both engines: %+v", e)
	}
	inst := e.Make(1)
	if inst.Name() != "PHASED" {
		t.Fatalf("Name() = %q", inst.Name())
	}
}

func TestPhaseBounds(t *testing.T) {
	b := phased.PhaseBounds(1)
	if len(b) != phased.NumPhases+1 || b[0] != 0 || b[phased.NumPhases] != phased.NumPhases*phased.PhaseEpochs {
		t.Fatalf("PhaseBounds(1) = %v", b)
	}
	if phased.PhaseEpochs%phased.Window != 0 {
		t.Fatalf("Window %d must divide PhaseEpochs %d so windows align with phases", phased.Window, phased.PhaseEpochs)
	}
	if !phased.HighPhase(0, 1) || phased.HighPhase(phased.PhaseEpochs, 1) || !phased.HighPhase(2*phased.PhaseEpochs, 1) {
		t.Fatal("HighPhase must flag phases 0 and 2")
	}
}

// conflictStats scans a kernel's address stream. Rates mirror what the
// adaptive runtime's DOMORE monitor sees: reuse counted per window of
// phased.Window epochs against a window-fresh map (cross-window reuses are
// already satisfied at the window boundary). The minimum cross-epoch
// conflict distance is global. Within-epoch address uniqueness (the inner
// loops must stay DOALL) is asserted along the way.
func conflictStats(t *testing.T, k interface {
	Epochs() int
	Tasks(int) int
	ComputeAddr(int, int, []uint64) []uint64
}) (rate []float64, minDist int64) {
	t.Helper()
	phaseConf := make([]int64, phased.NumPhases)
	last := map[uint64]int64{}    // global: addr → last global index
	inWindow := map[uint64]bool{} // window-fresh: addr seen this window
	minDist = int64(1) << 62
	g := int64(0)
	for e := 0; e < k.Epochs(); e++ {
		p := e / phased.PhaseEpochs
		if e%phased.Window == 0 {
			clear(inWindow)
		}
		seen := map[uint64]bool{}
		for task := 0; task < k.Tasks(e); task++ {
			addrs := k.ComputeAddr(e, task, nil)
			if len(addrs) != 1 {
				t.Fatalf("task (%d,%d) touches %d addresses, want 1", e, task, len(addrs))
			}
			a := addrs[0]
			if seen[a] {
				t.Fatalf("epoch %d reuses address %d within the epoch (not DOALL)", e, a)
			}
			seen[a] = true
			if lg, ok := last[a]; ok {
				if d := g - lg; d < minDist {
					minDist = d
				}
				if inWindow[a] {
					phaseConf[p]++
				}
			}
			last[a] = g
			inWindow[a] = true
			g++
		}
	}
	rate = make([]float64, phased.NumPhases)
	for p := range rate {
		rate[p] = float64(phaseConf[p]) / float64(phased.PhaseEpochs*phased.TasksPerEpoch)
	}
	return rate, minDist
}

// TestConflictStructure validates the construction against the advertised
// constants: high phases manifest around HighRate, low phases around
// LowRate, the close variant plants distance-1 conflicts, and the safe
// variant keeps everything at or beyond MinSafeDistance.
func TestConflictStructure(t *testing.T) {
	k := phased.New(1)
	rate, minDist := conflictStats(t, k)
	for p, r := range rate {
		if p%2 == 0 {
			if r < 0.55 || r > 0.80 {
				t.Errorf("high phase %d conflict rate %.3f outside [0.55,0.80]", p, r)
			}
		} else if r < 0.005 || r > 0.04 {
			t.Errorf("low phase %d conflict rate %.3f outside [0.005,0.04]", p, r)
		}
	}
	if minDist != 1 {
		t.Errorf("close variant min dependence distance = %d, want the planted 1", minDist)
	}

	// The safe variant's sources sit SafeLag epochs back, so only epochs
	// past the window's first SafeLag have in-window sources: the visible
	// rate is HighRate scaled by (Window-SafeLag)/Window — still far above
	// any speculation-entry threshold.
	safe := phased.NewSafe(1)
	srate, sminDist := conflictStats(t, safe)
	for p, r := range srate {
		if p%2 == 0 && (r < 0.35 || r > 0.80) {
			t.Errorf("safe high phase %d conflict rate %.3f outside [0.35,0.80]", p, r)
		}
	}
	if sminDist < phased.MinSafeDistance {
		t.Errorf("safe variant min distance %d < MinSafeDistance %d", sminDist, phased.MinSafeDistance)
	}
}

// TestPlantedBoundaryConflict: in the close variant, task 0 of every
// in-phase high epoch reuses the address the previous epoch's last task
// wrote — the distance-1 dependence that defeats speculation.
func TestPlantedBoundaryConflict(t *testing.T) {
	k := phased.New(1)
	for _, e := range []int{10, 500, 2*phased.PhaseEpochs + 100} {
		cur := k.ComputeAddr(e, 0, nil)
		prev := k.ComputeAddr(e-1, phased.TasksPerEpoch-1, nil)
		if cur[0] != prev[0] {
			t.Errorf("epoch %d task 0 addr %d != epoch %d last-task addr %d", e, cur[0], e-1, prev[0])
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, b := phased.New(1), phased.New(1)
	a.RunSequential()
	b.RunSequential()
	if a.Checksum() != b.Checksum() {
		t.Fatal("two identical instances diverged")
	}
	if a.Checksum() == phased.NewSafe(1).Checksum() {
		t.Fatal("checksum of a run instance equals an unrun one")
	}
}

func TestScaleGrows(t *testing.T) {
	if e1, e2 := phased.New(1).Epochs(), phased.New(2).Epochs(); e2 != 2*e1 {
		t.Fatalf("scale 2 has %d epochs, want %d", e2, 2*e1)
	}
}

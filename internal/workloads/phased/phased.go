// Package phased provides the phase-shifting synthetic workload the
// adaptive runtime is evaluated on (Fig A.1): a region whose
// cross-invocation dependence behaviour changes mid-run. It opens in a
// high-manifest-rate phase (CG/ECLAT-like: ~72% of tasks reuse an address
// written one epoch earlier, including conflicts only a few tasks apart —
// the regime where speculation misspeculates and DOMORE wins), shifts to
// a low-manifest-rate phase (JACOBI-like: ~2% of tasks reuse an address
// from four epochs back, far outside any reasonable speculative range —
// the regime where SPECCROSS wins and DOMORE is scheduler-bound), then
// returns to the high-rate phase. No static engine choice is right for
// the whole region, which is exactly what the adaptive controller is for.
package phased

import (
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

const (
	// TasksPerEpoch is the inner-loop trip count of every invocation. It is
	// twice the 24-core budget's worker count (23), so the speculative
	// engine — which keeps the baked-in round-robin task-to-worker
	// assignment across epoch boundaries — is load-balanced at the figure's
	// headline core count.
	TasksPerEpoch = 46
	// PhaseEpochs is the length of each phase in epochs at scale 1: long
	// enough that the controller's one-window discovery cost at each phase
	// change (and the per-window pipeline drain) amortizes to a few percent
	// of the phase.
	PhaseEpochs = 900
	// NumPhases is the number of phases (high, low, high).
	NumPhases = 3
	// Window is the recommended adaptive monitoring window in epochs; it
	// divides PhaseEpochs so windows align with phase boundaries, and it is
	// small enough that the one window the controller loses discovering a
	// phase change (a misspeculated probe pays barrier re-execution of the
	// whole window) stays well inside the 10% per-phase budget.
	Window = 12
	// SafeLag is the epoch lag of the far (speculation-safe) reuses: their
	// minimum dependence distance is SafeLag*TasksPerEpoch-1 tasks.
	SafeLag = 4
	// HighRate and LowRate are the target manifest-dependence rates of the
	// two phase kinds, in conflicts per thousand tasks.
	HighRate = 724
	LowRate  = 20

	space = 1 << 17 // shared-state elements; large so fresh draws stay conflict-free
)

// MinSafeDistance is the minimum dependence distance (in tasks) of every
// conflict in the low-rate phases and in NewSafe's high-rate phases.
const MinSafeDistance = SafeLag*TasksPerEpoch - 1

// New builds the phase-shifting instance. High-rate phases conflict with
// the immediately preceding epoch — every epoch boundary carries at least
// one dependence only one task apart, so speculation across it genuinely
// misspeculates (and the §4.4 profitability test fails).
func New(scale int) *epochal.Kernel {
	return build("PHASED", scale, true)
}

// NewSafe builds the race-safe variant: the high-rate phases keep their
// ~72% manifest rate, but every conflict (in every phase) stays at least
// MinSafeDistance tasks from its source. A SPECCROSS window gated with
// SpecDistance <= MinSafeDistance therefore never overlaps conflicting
// tasks — execution is misspeculation-free and data-race-free — while
// DOMORE still observes the frequent dependences. Tests use it to drive
// the full controller (both switch directions) under the race detector;
// see internal/raceflag.
func NewSafe(scale int) *epochal.Kernel {
	return build("PHASED-SAFE", scale, false)
}

// PhaseBounds returns the epoch index where each phase begins, plus the
// total epoch count as the final element: [0, P, 2P, 3P] at the given
// scale.
func PhaseBounds(scale int) []int {
	if scale <= 0 {
		scale = 1
	}
	p := PhaseEpochs * scale
	return []int{0, p, 2 * p, 3 * p}
}

// HighPhase reports whether the given epoch falls in a high-rate phase at
// the given scale (phases 0 and 2).
func HighPhase(epoch, scale int) bool {
	if scale <= 0 {
		scale = 1
	}
	return (epoch/(PhaseEpochs*scale))%2 == 0
}

func build(name string, scale int, closeConflicts bool) *epochal.Kernel {
	if scale <= 0 {
		scale = 1
	}
	epochs := NumPhases * PhaseEpochs * scale
	k := &epochal.Kernel{
		BenchName: name,
		State:     make([]int64, space),
		NumEpochs: epochs,
		SeqCost:   150,
	}

	// Precompute the address each task updates, like the CG port does: one
	// element read+written per task, reuse pattern fixed per phase.
	rng := workloads.NewRng(0x9A5ED)
	addr := make([]uint64, epochs*TasksPerEpoch)
	lastUsed := make(map[uint64]int, space)
	inEpoch := make(map[uint64]bool, TasksPerEpoch)
	at := func(e, t int) uint64 { return addr[e*TasksPerEpoch+t] }

	for e := 0; e < epochs; e++ {
		high := HighPhase(e, scale)
		clear(inEpoch)
		var perm []int
		if high && closeConflicts {
			// Reuse targets are drawn without replacement so the realized
			// rate tracks HighRate instead of losing collisions to the
			// within-epoch independence rule.
			perm = rng.Perm(TasksPerEpoch)
		}
		for t := 0; t < TasksPerEpoch; t++ {
			var a uint64
			reused := false
			if high && e >= SafeLag && e%(PhaseEpochs*scale) != 0 {
				if closeConflicts {
					// ~72% of tasks reuse the previous epoch; task 0 always
					// reuses the previous epoch's last task, planting a
					// distance-1 dependence on every in-phase boundary.
					if t == 0 {
						a, reused = at(e-1, TasksPerEpoch-1), true
					} else if rng.Intn(1000) < HighRate {
						a, reused = at(e-1, perm[t]), true
					}
				} else if rng.Intn(1000) < HighRate {
					// Same rate, but the source sits SafeLag epochs back
					// (shifted one slot so round-robin never co-locates the
					// pair on one worker, keeping the dependence visible to
					// DOMORE's manifest-rate monitor).
					a, reused = at(e-SafeLag, (t+1)%TasksPerEpoch), true
				}
			} else if !high && e >= SafeLag && rng.Intn(1000) < LowRate {
				a, reused = at(e-SafeLag, (t+1)%TasksPerEpoch), true
			}
			if reused && inEpoch[a] {
				// Tasks within one epoch must stay independent (the inner
				// loop is DOALL); drop a colliding reuse for a fresh draw.
				reused = false
			}
			if !reused {
				for {
					a = uint64(rng.Intn(space))
					if inEpoch[a] {
						continue
					}
					// Keep fresh draws clear of anything recently touched so
					// no accidental short-distance conflict arises.
					if last, ok := lastUsed[a]; !ok || e-last > 3*SafeLag {
						break
					}
				}
			}
			addr[e*TasksPerEpoch+t] = a
			lastUsed[a] = e
			inEpoch[a] = true
		}
	}

	k.TasksOf = func(epoch int) int { return TasksPerEpoch }
	k.Access = func(epoch, task int, reads, writes []uint64) ([]uint64, []uint64) {
		a := addr[epoch*TasksPerEpoch+task]
		return append(reads, a), append(writes, a)
	}
	k.Update = func(epoch, task int) {
		g := epoch*TasksPerEpoch + task
		a := addr[g]
		k.State[a] = k.State[a]*3 + int64(g) + 1
	}
	k.TaskCost = func(epoch, task int) int64 { return 3000 }
	// Element-granular addresses: signature address == State index.
	k.AddrSpan = epochal.IdentitySpan
	return k
}

func init() {
	workloads.Register(workloads.Entry{
		Name: "PHASED", Suite: "synthetic", Function: "phase_shift", Plan: "DOALL",
		DomoreOK: true, SpecOK: true,
		Make: func(scale int) workloads.Instance { return New(scale) },
	})
}

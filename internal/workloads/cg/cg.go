// Package cg ports the performance-dominating loop nest of NAS CG
// (Fig 3.1): an outer loop whose body computes inner-loop bounds and an
// inner DOALL loop updating C through an index pattern. Within one
// invocation no two iterations touch the same element; across invocations
// the update dependence manifests on 72.4% of outer iterations (the
// profiled rate §3.1 reports), which is what makes barrier-parallelized CG
// slower than sequential (Fig 3.3) and DOMORE's runtime synchronization
// profitable.
package cg

import (
	"crossinv/internal/runtime/signature"
	"crossinv/internal/sim"
	"crossinv/internal/workloads"
)

// TasksPerEpoch matches Table 5.3: 63000 tasks over 7000 epochs.
const TasksPerEpoch = 9

// CG is one benchmark instance.
type CG struct {
	// Invs is the outer trip count (inner-loop invocation count).
	Invs int
	// addr[g] is the element updated by combined iteration g.
	addr []uint64
	// C is the updated array.
	C []int64
	// Space is len(C).
	Space int
	// TaskCost is the virtual cost of one update (for Trace).
	TaskCost int64
	// SeqCost is the virtual cost of the per-invocation bound computation.
	SeqCost int64
}

// New builds a deterministic instance. scale 1 gives 700 invocations of 9
// iterations over a 2000-element array; the manifest rate of the
// cross-invocation update dependence is ≈72%.
func New(scale int) *CG {
	if scale <= 0 {
		scale = 1
	}
	g := &CG{
		Invs:     700 * scale,
		Space:    2000,
		TaskCost: 900, // tiny iterations: the reason barriers sink CG below 1x (Fig 3.3)
		SeqCost:  150,
	}
	g.C = make([]int64, g.Space)
	rng := workloads.NewRng(0xC6)
	const lag = 3 // epochs between a reuse and its source
	var history [][]uint64
	lastUsed := map[uint64]int{}
	for inv := 0; inv < g.Invs; inv++ {
		cur := make([]uint64, 0, TasksPerEpoch)
		for t := 0; t < TasksPerEpoch; t++ {
			var a uint64
			// With probability ~72.4%, conflict with the invocation lag
			// epochs back — shifted one slot so round-robin puts the
			// conflicting iterations on different threads. The lag keeps
			// the minimum dependence distance above typical worker counts,
			// which is what lets SPECCROSS profile CG as speculation-safe
			// (Table 5.3 records no close conflicts for its CG region)
			// while DOMORE still observes the frequent dependences.
			reused := false
			if inv >= lag && rng.Intn(1000) < 724 {
				a = history[inv-lag][(t+1)%TasksPerEpoch]
				if last, ok := lastUsed[a]; ok && last == inv-lag {
					reused = true
				}
			}
			if !reused {
				// Fresh draw: avoid anything touched in the recent window
				// so no accidental short-distance conflict arises.
				for {
					a = uint64(rng.Intn(g.Space))
					if last, ok := lastUsed[a]; !ok || inv-last > 2*lag {
						break
					}
				}
			}
			lastUsed[a] = inv
			cur = append(cur, a)
			g.addr = append(g.addr, a)
		}
		history = append(history, cur)
	}
	return g
}

// Name implements workloads.Instance.
func (g *CG) Name() string { return "CG" }

func (g *CG) update(globalIter int) {
	a := g.addr[globalIter]
	g.C[a] = g.C[a]*3 + int64(globalIter) + 1
}

// RunSequential implements workloads.Instance. It honors Invs rather than
// the precomputed address table's length, so truncated instances stay
// consistent across execution strategies.
func (g *CG) RunSequential() {
	for gi := 0; gi < g.Invs*TasksPerEpoch; gi++ {
		g.update(gi)
	}
}

// Checksum implements workloads.Instance.
func (g *CG) Checksum() uint64 {
	return workloads.FoldChecksum(1469598103934665603, g.C)
}

// Trace implements workloads.Instance.
func (g *CG) Trace() *sim.Trace {
	tr := &sim.Trace{Name: g.Name()}
	for inv := 0; inv < g.Invs; inv++ {
		e := sim.Epoch{SeqCost: g.SeqCost}
		for t := 0; t < TasksPerEpoch; t++ {
			a := g.addr[inv*TasksPerEpoch+t]
			e.Tasks = append(e.Tasks, sim.Task{
				Cost:   g.TaskCost,
				Reads:  []uint64{a},
				Writes: []uint64{a},
				// CG's computeAddr is one index-array load (Fig 3.7); the
				// measured scheduler share is 4.1% (Table 5.2).
				SchedCost: 40,
			})
		}
		tr.Epochs = append(tr.Epochs, e)
	}
	return tr
}

// --- domore.Workload ---

// Invocations implements domore.Workload.
func (g *CG) Invocations() int { return g.Invs }

// Iterations implements domore.Workload.
func (g *CG) Iterations(inv int) int { return TasksPerEpoch }

// Sequential implements domore.Workload (the bound computation of Fig 3.1;
// the synthetic instance precomputes its bounds, so this is a no-op).
func (g *CG) Sequential(inv int) {}

// ComputeAddr implements domore.Workload.
func (g *CG) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	return append(buf, g.addr[inv*TasksPerEpoch+iter])
}

// Execute implements domore.Workload.
func (g *CG) Execute(inv, iter, tid int) {
	g.update(inv*TasksPerEpoch + iter)
}

// --- speccross.Workload ---

// Epochs implements speccross.Workload.
func (g *CG) Epochs() int { return g.Invs }

// Tasks implements speccross.Workload.
func (g *CG) Tasks(epoch int) int { return TasksPerEpoch }

// Run implements speccross.Workload.
func (g *CG) Run(epoch, task, tid int, sig *signature.Signature) {
	gi := epoch*TasksPerEpoch + task
	if sig != nil {
		a := g.addr[gi]
		sig.Read(a)
		sig.Write(a)
	}
	g.update(gi)
}

// Snapshot implements speccross.Workload.
func (g *CG) Snapshot() any {
	cp := make([]int64, len(g.C))
	copy(cp, g.C)
	return cp
}

// Restore implements speccross.Workload.
func (g *CG) Restore(s any) { copy(g.C, s.([]int64)) }

func init() {
	workloads.Register(workloads.Entry{
		Name: "CG", Suite: "NAS", Function: "sparse", Plan: "LOCALWRITE",
		DomoreOK: true, SpecOK: true,
		Make: func(scale int) workloads.Instance { return New(scale) },
	})
}

// Package chaos is the differential fuzzing and fault-injection harness
// for the four execution engines. It generates seeded random workloads
// with a known sequential ground truth, runs each one under barrier,
// DOMORE, SPECCROSS, and the adaptive hybrid — with and without trace
// recorders, and with injected faults that force the recovery paths
// (queue-full backoff, delayed lanes, signature-conflict misspeculation,
// speculative panics, timeouts, torn-state restores) — and diffs the
// final memory state plus engine Stats invariants against the sequential
// oracle. A failing case is shrunk to a minimal replayable Spec and
// written to testdata.
//
// The oracle is the one the paper's semantics demand: any dynamic
// schedule an engine produces — stalls forwarded over queues (§3.2.3),
// cross-epoch signature checks (§4.2.1), misspeculation recovery from
// checkpoints (§4.2.2) — must leave memory bit-identical to the
// sequential execution. Hand-written workloads exercise a sliver of that
// schedule space; this package samples it.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"

	"crossinv/internal/runtime/signature"
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// TaskSpec is one task's declared behaviour: the addresses it reads and
// writes (state indices), and an optional amount of spin work performed
// between reading and writing — the knob timing-sensitive cases use to
// make a dependence violation actually manifest.
type TaskSpec struct {
	Reads  []uint64 `json:"reads,omitempty"`
	Writes []uint64 `json:"writes,omitempty"`
	Work   int      `json:"work,omitempty"`
}

// EpochSpec is one invocation: a set of tasks that must be mutually
// independent (the DOALL inner-loop contract every engine assumes).
type EpochSpec struct {
	Tasks []TaskSpec `json:"tasks"`
}

// Spec is a fully explicit chaos case. Generated cases are derived from a
// seed; shrunk and replayed cases are loaded from JSON. A Spec is the
// canonical representation: the shrinker edits it structurally, and
// Kernel materializes it as an epochal.Kernel so it runs under every
// engine and plugs into the internal/workloads interfaces.
type Spec struct {
	Name     string      `json:"name"`
	Seed     uint64      `json:"seed,omitempty"`
	StateLen int         `json:"state_len"`
	SigKind  string      `json:"sig_kind"`
	Epochs   []EpochSpec `json:"epochs"`
}

// Kind parses the spec's signature scheme (default Range).
func (s *Spec) Kind() signature.Kind {
	switch s.SigKind {
	case "bloom":
		return signature.Bloom
	case "exact":
		return signature.Exact
	default:
		return signature.Range
	}
}

// NumEpochs reports the invocation count.
func (s *Spec) NumEpochs() int { return len(s.Epochs) }

// TotalTasks reports the task count summed over epochs.
func (s *Spec) TotalTasks() int64 {
	var n int64
	for i := range s.Epochs {
		n += int64(len(s.Epochs[i].Tasks))
	}
	return n
}

// Validate checks the structural invariants every engine assumes:
// addresses in range, and within-epoch independence — no task may write
// an address another task of the same epoch reads or writes (the inner
// loops are independently parallelized; cross-epoch conflicts are the
// point of the exercise and are unrestricted).
func (s *Spec) Validate() error {
	if s.StateLen <= 0 {
		return fmt.Errorf("chaos: state_len %d", s.StateLen)
	}
	if len(s.Epochs) == 0 {
		return fmt.Errorf("chaos: no epochs")
	}
	switch s.SigKind {
	case "", "range", "bloom", "exact":
	default:
		return fmt.Errorf("chaos: unknown sig_kind %q", s.SigKind)
	}
	for e := range s.Epochs {
		writers := map[uint64]int{}
		for t := range s.Epochs[e].Tasks {
			for _, w := range s.Epochs[e].Tasks[t].Writes {
				if w >= uint64(s.StateLen) {
					return fmt.Errorf("chaos: epoch %d task %d writes %d out of range %d", e, t, w, s.StateLen)
				}
				if prev, dup := writers[w]; dup && prev != t {
					return fmt.Errorf("chaos: epoch %d tasks %d and %d both write %d", e, prev, t, w)
				}
				writers[w] = t
			}
		}
		for t := range s.Epochs[e].Tasks {
			for _, r := range s.Epochs[e].Tasks[t].Reads {
				if r >= uint64(s.StateLen) {
					return fmt.Errorf("chaos: epoch %d task %d reads %d out of range %d", e, t, r, s.StateLen)
				}
				if wt, hit := writers[r]; hit && wt != t {
					return fmt.Errorf("chaos: epoch %d task %d reads %d written by same-epoch task %d", e, t, r, wt)
				}
			}
		}
	}
	return nil
}

// Kernel materializes the spec as a fresh epochal.Kernel with its own
// zeroed state. All state accesses go through atomics: under SPECCROSS,
// cross-epoch dependent accesses legitimately run concurrently inside a
// speculative segment (the checker aborts the segment afterwards), so
// plain accesses would be reported by the race detector even though the
// rollback discards their results. Atomics keep the harness -race-clean
// while ordering violations remain fully visible as value divergence,
// which is exactly what the differential oracle checks.
func (s *Spec) Kernel() *epochal.Kernel {
	k := &epochal.Kernel{
		BenchName: s.Name,
		State:     make([]int64, s.StateLen),
		NumEpochs: len(s.Epochs),
		SeqCost:   1,
	}
	// Declared access addresses are state-cell indices, so the delta view
	// is element-granular: the incremental-checkpoint path runs in chaos
	// sweeps with exactly the spans the tasks really touch.
	k.AddrSpan = epochal.IdentitySpan
	k.TasksOf = func(e int) int { return len(s.Epochs[e].Tasks) }
	k.Access = func(e, t int, reads, writes []uint64) ([]uint64, []uint64) {
		ts := &s.Epochs[e].Tasks[t]
		return append(reads, ts.Reads...), append(writes, ts.Writes...)
	}
	k.TaskCost = func(e, t int) int64 {
		ts := &s.Epochs[e].Tasks[t]
		return int64(1 + len(ts.Reads) + len(ts.Writes))
	}
	k.Update = func(e, t int) {
		ts := &s.Epochs[e].Tasks[t]
		acc := workloads.Mix64(uint64(e)<<32 ^ uint64(t) ^ s.Seed)
		for _, r := range ts.Reads {
			acc = workloads.Mix64(acc ^ uint64(atomic.LoadInt64(&k.State[r])))
		}
		// Yield periodically inside the spin: on few-core machines (CI
		// runners are often single-CPU) a tight loop shorter than the
		// preemption quantum would serialize the workers and no racy
		// interleaving could ever manifest; the yields let other lanes
		// run mid-task, which is the schedule space this harness exists
		// to sample. Values are unaffected.
		for i := 0; i < ts.Work; i++ {
			acc = workloads.Mix64(acc)
			if i&255 == 255 {
				runtime.Gosched()
			}
		}
		for _, w := range ts.Writes {
			old := uint64(atomic.LoadInt64(&k.State[w]))
			atomic.StoreInt64(&k.State[w], int64(workloads.Mix64(old*3+acc+w)))
		}
	}
	return k
}

// SequentialState runs the case sequentially on fresh state and returns
// the final memory image — the differential oracle.
func (s *Spec) SequentialState() []int64 {
	k := s.Kernel()
	k.RunSequential()
	return k.State
}

// MarshalIndent renders the spec as replayable JSON.
func (s *Spec) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// LoadSpec reads a Spec (or an Artifact wrapping one) from a JSON file
// and validates it.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Accept both a bare Spec and a shrink Artifact.
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("chaos: %s: %v", path, err)
	}
	spec := art.Spec
	if spec == nil {
		spec = &Spec{}
		if err := json.Unmarshal(data, spec); err != nil {
			return nil, fmt.Errorf("chaos: %s: %v", path, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %s: %v", path, err)
	}
	return spec, nil
}

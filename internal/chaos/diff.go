package chaos

import (
	"fmt"
	"strings"

	"crossinv/internal/analysis/xdep"
	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/workloads/epochal"
)

// Engines lists the engines the differential runner exercises, in run
// order.
var Engines = []string{"barrier", "domore", "domore-sharded", "speccross", "adaptive"}

// shardLanes is the scheduler-lane count every sharded-scheduler run in
// this package uses — the ShardSkew fault and the stale-shard-claim
// mutation key their shard arithmetic on the same constant, so the lane
// they target is the lane that actually runs.
const shardLanes = 3

// Options configures a differential run of one case.
type Options struct {
	// Workers is the worker-thread count (default 4).
	Workers int
	// CheckpointEvery is the SPECCROSS segment length in epochs. The
	// default 3 is deliberately small so every case spans several
	// checkpoint/recovery cycles.
	CheckpointEvery int
	// Window is the adaptive monitoring-window length (default 4, small
	// for the same reason).
	Window int
	// Faults is the fault-injection plan (zero value: no faults).
	Faults FaultPlan
	// Mutation, when non-empty, deliberately breaks the engine contract
	// (see Mutation) — used to prove the harness catches bugs.
	Mutation Mutation
	// Traced runs every engine with a trace recorder attached and
	// additionally cross-checks trace-derived counts against engine
	// Stats. The DelayLanes fault only perturbs traced runs (its hook
	// hangs off the recorder).
	Traced bool
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 3
	}
	if o.Window <= 0 {
		o.Window = 4
	}
}

// Mismatch is one diverging state cell.
type Mismatch struct {
	Index int   `json:"index"`
	Got   int64 `json:"got"`
	Want  int64 `json:"want"`
}

// Failure describes one engine run that diverged from the sequential
// oracle or violated a Stats invariant.
type Failure struct {
	Engine     string     `json:"engine"`
	Traced     bool       `json:"traced"`
	Faults     string     `json:"faults"`
	Mutation   string     `json:"mutation,omitempty"`
	Detail     string     `json:"detail"`
	Mismatches []Mismatch `json:"mismatches,omitempty"`

	// Spec is the failing case, for artifact serialization.
	Spec *Spec `json:"-"`
}

func (f Failure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: engine=%s traced=%v faults=%s", f.Detail, f.Engine, f.Traced, f.Faults)
	if f.Mutation != "" {
		fmt.Fprintf(&b, " mutation=%s", f.Mutation)
	}
	for _, m := range f.Mismatches {
		fmt.Fprintf(&b, "\n  state[%d] = %d, sequential oracle = %d", m.Index, m.Got, m.Want)
	}
	return b.String()
}

// RunSpec executes the case under every engine and returns all detected
// failures (nil when every engine matches the oracle). Before any engine
// runs, the static soundness gate classifies the case's declared access
// sets and checks the claim against shadow-memory-observed conflicts —
// a statically "conflict-free" case with a real runtime conflict fails
// the sweep before it can mislead an engine.
func RunSpec(spec *Spec, opts Options) []Failure {
	opts.fill()
	var fails []Failure
	claim := StaticClaim(spec)
	if opts.Mutation == MutWidenStatic {
		claim = xdep.SetFacts{Class: xdep.None, ClassName: xdep.None.String()}
	}
	if detail := CheckStaticSoundness(spec, claim); detail != "" {
		fails = append(fails, Failure{
			Engine: "static", Faults: opts.Faults.String(),
			Mutation: string(opts.Mutation), Detail: detail, Spec: spec,
		})
	}
	want := spec.SequentialState()
	for _, eng := range Engines {
		if f := runEngine(spec, eng, want, opts); f != nil {
			fails = append(fails, *f)
		}
	}
	return fails
}

// RunSeed generates the case for seed and runs it both untraced and
// traced (the two differ: tracing enables the DelayLanes perturbation and
// the trace-vs-Stats cross-checks).
func RunSeed(seed uint64, opts Options) []Failure {
	spec := Generate(seed)
	var fails []Failure
	for _, traced := range []bool{false, true} {
		o := opts
		o.Traced = traced
		fails = append(fails, RunSpec(spec, o)...)
	}
	return fails
}

// runEngine builds a fresh kernel for the case, layers the mutation (if
// any) and the fault injector over it, runs one engine, and checks: the
// engine did not panic, the fault layer detected nothing, the Stats
// invariants hold (plus trace-derived equalities on traced runs), and the
// final memory equals the sequential oracle.
func runEngine(spec *Spec, engine string, want []int64, opts Options) (fail *Failure) {
	k := spec.Kernel()
	w := opts.Faults.Wrap(opts.Mutation.Wrap(k), k, spec.NumEpochs())

	var rec *trace.Recorder
	if opts.Traced {
		rec = trace.NewRecorder()
		rec.SetHook(opts.Faults.Hook())
	}

	mk := func(detail string) *Failure {
		return &Failure{
			Engine: engine, Traced: opts.Traced,
			Faults: opts.Faults.String(), Mutation: string(opts.Mutation),
			Detail: detail, Spec: spec,
		}
	}
	// The engines are required to contain speculative faults; a panic
	// escaping an engine entry point is itself a failure.
	defer func() {
		if r := recover(); r != nil {
			fail = mk(fmt.Sprintf("engine panicked: %v", r))
		}
	}()

	var detail string
	switch engine {
	case "barrier":
		speccross.RunBarriersTraced(w, opts.Workers, rec)
		if rec != nil {
			sum := rec.Summary()
			if sum.Counts[trace.KindIterStart] != spec.TotalTasks() {
				detail = fmt.Sprintf("trace iterations %d != total tasks %d",
					sum.Counts[trace.KindIterStart], spec.TotalTasks())
			}
		}
	case "domore":
		st := domore.Run(w, opts.Faults.Domore(domore.Options{Workers: opts.Workers, Trace: rec}))
		detail = domoreInvariants(st, spec, rec)
	case "domore-sharded":
		st := domore.RunSharded(w, opts.Faults.Domore(domore.Options{
			Workers: opts.Workers, Lanes: shardLanes, Batch: 8, Trace: rec,
		}))
		detail = domoreInvariants(st, spec, rec)
		if detail == "" && rec != nil && rec.Summary().Counts[trace.KindShardChunk] == 0 {
			detail = "domore-sharded emitted no shard-chunk events; scheduler lanes did not run"
		}
	case "speccross":
		cfg := opts.Faults.Spec(speccross.Config{
			Workers:         opts.Workers,
			SigKind:         spec.Kind(),
			CheckpointEvery: opts.CheckpointEvery,
			Trace:           rec,
		})
		st := speccross.Run(w, cfg)
		detail = speccrossInvariants(st, spec, rec)
	case "adaptive":
		cfg := adaptive.Config{Workers: opts.Workers, Window: opts.Window, Trace: rec}
		cfg.Spec.SigKind = spec.Kind()
		cfg.Spec = opts.Faults.Spec(cfg.Spec)
		cfg.Domore = opts.Faults.Domore(cfg.Domore)
		st := adaptive.Run(w, cfg)
		detail = adaptiveInvariants(st, spec, opts.Window, rec)
	default:
		panic("chaos: unknown engine " + engine)
	}
	if detail != "" {
		return mk(detail)
	}
	if msg := InjectorErr(w); msg != "" {
		return mk(msg)
	}
	return diffState(k, want, mk)
}

// diffState compares the final memory image against the oracle, keeping
// the first few diverging cells for the report.
func diffState(k *epochal.Kernel, want []int64, mk func(string) *Failure) *Failure {
	var mm []Mismatch
	total := 0
	for i, v := range k.State {
		if v != want[i] {
			total++
			if len(mm) < 4 {
				mm = append(mm, Mismatch{Index: i, Got: v, Want: want[i]})
			}
		}
	}
	if total == 0 {
		return nil
	}
	f := mk(fmt.Sprintf("final state diverges from sequential oracle in %d of %d cells", total, len(k.State)))
	f.Mismatches = mm
	return f
}

func domoreInvariants(st domore.Stats, spec *Spec, rec *trace.Recorder) string {
	if st.Iterations != spec.TotalTasks() {
		return fmt.Sprintf("domore scheduled %d iterations, workload has %d", st.Iterations, spec.TotalTasks())
	}
	if st.Dispatches != st.Iterations {
		// Round-robin is single-owner: exactly one dispatch per iteration.
		return fmt.Sprintf("domore dispatches %d != iterations %d", st.Dispatches, st.Iterations)
	}
	if rec == nil {
		return ""
	}
	sum := rec.Summary()
	for _, c := range []struct {
		what      string
		fromTrace int64
		fromStats int64
	}{
		{"schedules", sum.Counts[trace.KindSchedule], st.Iterations},
		{"dispatches", sum.Counts[trace.KindDispatch], st.Dispatches},
		{"sync conditions", sum.Counts[trace.KindSyncCond], st.SyncConditions},
		{"stalls", sum.Counts[trace.KindStallBegin], st.Stalls},
		{"addr checks", sum.Sums[trace.KindAddrCheck], st.AddrChecks},
	} {
		if c.fromTrace != c.fromStats {
			return fmt.Sprintf("domore trace-derived %s %d != engine Stats %d", c.what, c.fromTrace, c.fromStats)
		}
	}
	return ""
}

func speccrossInvariants(st speccross.Stats, spec *Spec, rec *trace.Recorder) string {
	n := int64(spec.NumEpochs())
	if st.Epochs+st.ReexecutedEpochs != n {
		return fmt.Sprintf("speccross committed %d + re-executed %d epochs != %d", st.Epochs, st.ReexecutedEpochs, n)
	}
	if (st.Misspeculations == 0) != (st.ReexecutedEpochs == 0) {
		return fmt.Sprintf("speccross misspeculations %d inconsistent with re-executed epochs %d",
			st.Misspeculations, st.ReexecutedEpochs)
	}
	if st.Misspeculations == 0 && st.Tasks != spec.TotalTasks() {
		return fmt.Sprintf("speccross ran %d tasks without misspeculation, workload has %d", st.Tasks, spec.TotalTasks())
	}
	if rec == nil {
		return ""
	}
	sum := rec.Summary()
	for _, c := range []struct {
		what      string
		fromTrace int64
		fromStats int64
	}{
		{"tasks", sum.Counts[trace.KindTaskEnd], st.Tasks},
		{"committed epochs", sum.Sums[trace.KindEpochCommit], st.Epochs},
		{"check requests", sum.Counts[trace.KindCheckRequest], st.CheckRequests},
		{"prefilter checks", sum.Counts[trace.KindSigPrefilter], st.PrefilterChecks},
		{"comparisons", sum.Counts[trace.KindSigCheck], st.Comparisons},
		{"misspeculations", sum.Counts[trace.KindMisspec], st.Misspeculations},
		{"checkpoints", sum.Counts[trace.KindCheckpoint], st.Checkpoints},
		{"delta checkpoints", sum.Counts[trace.KindCkptDelta], st.DeltaCheckpoints},
		{"delta restores", sum.Counts[trace.KindDeltaRestore], st.DeltaRestores},
		{"re-executed epochs", sum.Sums[trace.KindRecoveryEnd], st.ReexecutedEpochs},
		{"range stalls", sum.Counts[trace.KindRangeStallBegin], st.RangeStalls},
	} {
		if c.fromTrace != c.fromStats {
			return fmt.Sprintf("speccross trace-derived %s %d != engine Stats %d", c.what, c.fromTrace, c.fromStats)
		}
	}
	return ""
}

func adaptiveInvariants(st adaptive.Stats, spec *Spec, window int, rec *trace.Recorder) string {
	wantWindows := (spec.NumEpochs() + window - 1) / window
	if st.Windows != wantWindows {
		return fmt.Sprintf("adaptive ran %d windows, want %d", st.Windows, wantWindows)
	}
	var engineWindows int
	for _, n := range st.EngineWindows {
		engineWindows += n
	}
	if engineWindows != st.Windows {
		return fmt.Sprintf("adaptive per-engine windows sum %d != windows %d", engineWindows, st.Windows)
	}
	// The policy decides once per window (including after the last), so
	// at most one switch can be charged per window.
	if st.Switches > st.Windows {
		return fmt.Sprintf("adaptive switches %d > windows %d", st.Switches, st.Windows)
	}
	if rec == nil {
		return ""
	}
	sum := rec.Summary()
	if sum.Counts[trace.KindWindowBegin] != int64(st.Windows) {
		return fmt.Sprintf("adaptive trace-derived windows %d != engine Stats %d",
			sum.Counts[trace.KindWindowBegin], st.Windows)
	}
	if sum.Counts[trace.KindEngineSwitch] != int64(st.Switches) {
		return fmt.Sprintf("adaptive trace-derived switches %d != engine Stats %d",
			sum.Counts[trace.KindEngineSwitch], st.Switches)
	}
	return ""
}

package chaos

import (
	"fmt"
	"sync"
	"testing"

	"crossinv/internal/runtime/signature"
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/workloadtest"
)

var plugOnce sync.Once

// registerPlugSpecs adds a few chaos cases to the benchmark registry so
// the shared workloadtest harness can drive them exactly like the
// hand-written workloads — the proof that generated cases speak the same
// interfaces. Registration happens from the test (not package init) so
// the chaos package never pollutes the registry for other importers.
func registerPlugSpecs() {
	add := func(spec *Spec) {
		workloads.Register(workloads.Entry{
			Name:     "chaos/" + spec.Name,
			Suite:    "chaos",
			Function: "generated",
			Plan:     "epochal kernel",
			DomoreOK: true,
			SpecOK:   true,
			Exact:    spec.Kind() == signature.Exact,
			Make:     func(scale int) workloads.Instance { return spec.Kernel() },
		})
	}
	add(MutationCatcher())
	for _, seed := range []uint64{2, 5, 11} {
		add(Generate(seed))
	}
}

// TestGeneratedSpecsPlugIntoWorkloadtest runs generated chaos cases
// through the repo's standard engine-equivalence harness.
func TestGeneratedSpecsPlugIntoWorkloadtest(t *testing.T) {
	plugOnce.Do(registerPlugSpecs)
	names := []string{"chaos/chaos-mutation-catcher"}
	for _, seed := range []uint64{2, 5, 11} {
		names = append(names, fmt.Sprintf("chaos/chaos-%d", seed))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			workloadtest.EnginesMatchSequential(t, name)
		})
	}
}

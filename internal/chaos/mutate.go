package chaos

import (
	"fmt"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/shadow"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/workloads/epochal"
)

// Mutation names a deliberately injected engine-contract bug, applied at
// the instrumentation boundary between a workload and the engines. Each
// one models a realistic compiler/runtime defect — a ComputeAddr slice
// that misses an access, spec_access instrumentation that skips a store,
// a rollback that does not actually restore — and exists to prove the
// harness *detects* such bugs: a differential run over a mutated workload
// must fail and shrink to a replayable case.
type Mutation string

const (
	// MutNone applies no mutation.
	MutNone Mutation = ""
	// MutDropAddr makes ComputeAddr omit the first address whenever an
	// iteration has more than one, so the DOMORE scheduler misses the
	// dependences through that address and forwards no sync condition.
	MutDropAddr Mutation = "drop-addr"
	// MutDropSigWrite makes speculative tasks omit their first write from
	// the recorded signature, so the SPECCROSS checker can miss a real
	// cross-epoch conflict and commit a violated segment.
	MutDropSigWrite Mutation = "drop-sig-write"
	// MutSkipRestore turns Restore into a no-op, so misspeculation
	// recovery re-executes on top of poisoned speculative state.
	MutSkipRestore Mutation = "skip-restore"
	// MutSkipDeltaRestore turns WriteCell into a no-op: the
	// incremental-checkpoint rollback silently fails to repair the cells
	// it believes it restored. Full-snapshot restores are untouched, so
	// only the write-set delta path (and the harness's coverage of it)
	// can catch this one.
	MutSkipDeltaRestore Mutation = "skip-delta-restore"
	// MutWidenStatic corrupts the static cross-invocation claim rather
	// than the engines: the xdep-style classification of the case is
	// forced to "none" (provably conflict-free) regardless of its declared
	// access sets. The soundness gate must catch the lie by observing a
	// real cross-epoch conflict through shadow memory.
	MutWidenStatic Mutation = "widen-static"
	// MutStaleShardClaim models a sharded scheduler whose lanes claim
	// stale shard ownership: ComputeAddr's result loses every address
	// whose shard (shadow.ShardOf at the package's lane count) differs
	// from the last address's shard — exactly a cross-shard dependence
	// edge silently dropped at the shard boundary. Any scheduler that
	// trusts the surviving addresses misses the dependence and forwards no
	// sync condition, so the differential runner must observe a divergent
	// final state.
	MutStaleShardClaim Mutation = "stale-shard-claim"
)

// Mutations lists the non-empty mutation kinds.
func Mutations() []Mutation {
	return []Mutation{MutDropAddr, MutDropSigWrite, MutSkipRestore, MutSkipDeltaRestore, MutWidenStatic, MutStaleShardClaim}
}

// ParseMutation validates a -mutate flag value.
func ParseMutation(s string) (Mutation, error) {
	m := Mutation(s)
	switch m {
	case MutNone, MutDropAddr, MutDropSigWrite, MutSkipRestore, MutSkipDeltaRestore, MutWidenStatic, MutStaleShardClaim:
		return m, nil
	}
	return MutNone, fmt.Errorf("chaos: unknown mutation %q", s)
}

// Faults is the fault plan that makes the mutation's broken path run:
// skip-restore is only reachable through a misspeculation recovery, so it
// pairs with a deterministic injected panic (plus the torn-state scribble
// the skipped restore then fails to repair). skip-delta-restore likewise
// pairs with the torn-delta fault, whose scribbled cell only a working
// delta restore repairs. The other mutations corrupt paths every run
// exercises and need no help.
func (m Mutation) Faults() FaultPlan {
	switch m {
	case MutSkipRestore:
		return FaultPlan{Panic: true, TornState: true}
	case MutSkipDeltaRestore:
		return FaultPlan{TornDelta: true}
	case MutStaleShardClaim:
		// The dropped edge diverges on its own, but skewing one scheduler
		// lane maximizes the window in which the missing sync condition
		// lets the reader overtake the writer.
		return FaultPlan{ShardSkew: true}
	}
	return FaultPlan{}
}

// MutationCatcher is a hand-built case on which every Mutation produces a
// near-deterministic divergence: pairs of epochs where a slow writer
// (epoch 2i, task 0: a long spin, then a store to cell 2i) is followed by
// a fast cross-epoch reader (epoch 2i+1, task 1: load cell 2i, store cell
// 2i+1). Any engine that loses the dependence — a dropped ComputeAddr
// entry, a write missing from a signature, a restore that never happens —
// lets the reader observe the pre-write value while the writer is still
// spinning, and the final state diverges from the oracle. Three pairs
// make the case span multiple SPECCROSS segments and adaptive windows at
// the defaults.
func MutationCatcher() *Spec {
	s := &Spec{
		Name:     "chaos-mutation-catcher",
		StateLen: 6,
		SigKind:  "exact",
	}
	for i := 0; i < 3; i++ {
		a := uint64(2 * i)
		s.Epochs = append(s.Epochs,
			EpochSpec{Tasks: []TaskSpec{
				{Writes: []uint64{a}, Work: 200000},
				{},
			}},
			EpochSpec{Tasks: []TaskSpec{
				{},
				{Reads: []uint64{a}, Writes: []uint64{a + 1}},
			}},
		)
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// Wrap applies the mutation to a case's kernel. MutNone returns the
// kernel unchanged, as does MutWidenStatic — it lies about the analysis,
// not the execution (RunSpec corrupts the claim before the gate).
func (m Mutation) Wrap(k *epochal.Kernel) adaptive.Workload {
	if m == MutNone || m == MutWidenStatic {
		return k
	}
	return &mutated{k: k, m: m}
}

type mutated struct {
	k *epochal.Kernel
	m Mutation
}

func (w *mutated) Invocations() int         { return w.k.Invocations() }
func (w *mutated) Iterations(inv int) int   { return w.k.Iterations(inv) }
func (w *mutated) Sequential(inv int)       { w.k.Sequential(inv) }
func (w *mutated) Execute(inv, iter, t int) { w.k.Execute(inv, iter, t) }
func (w *mutated) Epochs() int              { return w.k.Epochs() }
func (w *mutated) Tasks(epoch int) int      { return w.k.Tasks(epoch) }
func (w *mutated) Snapshot() any            { return w.k.Snapshot() }

// The delta view forwards to the kernel, so the incremental-checkpoint
// path stays engaged under mutation — skip-delta-restore breaks exactly
// that path's repair writes.
func (w *mutated) StateLen() int                       { return w.k.StateLen() }
func (w *mutated) ReadCell(c uint64) int64             { return w.k.ReadCell(c) }
func (w *mutated) AddrCells(a uint64) (uint64, uint64) { return w.k.AddrCells(a) }

func (w *mutated) WriteCell(c uint64, v int64) {
	if w.m == MutSkipDeltaRestore {
		return
	}
	w.k.WriteCell(c, v)
}

func (w *mutated) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	out := w.k.ComputeAddr(inv, iter, buf)
	switch {
	case w.m == MutDropAddr && len(out) > 1:
		copy(out, out[1:])
		out = out[:len(out)-1]
	case w.m == MutStaleShardClaim && len(out) > 1:
		// Keep only addresses sharing the last address's shard: the stale
		// claim drops every cross-shard edge of the iteration (dropping by
		// the first address's shard would spare the catcher case's reads,
		// which precede the writes in ComputeAddr order).
		want := shadow.ShardOf(out[len(out)-1], shardLanes)
		kept := out[:0]
		for _, a := range out {
			if shadow.ShardOf(a, shardLanes) == want {
				kept = append(kept, a)
			}
		}
		out = kept
	}
	return out
}

func (w *mutated) Run(epoch, task, tid int, sig *signature.Signature) {
	if w.m == MutDropSigWrite && sig != nil {
		r, wr := w.k.Access(epoch, task, nil, nil)
		for _, a := range r {
			sig.Read(a)
		}
		for i, a := range wr {
			if i > 0 {
				sig.Write(a)
			}
		}
		// State effects are untouched — only the recorded evidence lies.
		w.k.Update(epoch, task)
		return
	}
	w.k.Run(epoch, task, tid, sig)
}

func (w *mutated) Restore(snap any) {
	if w.m == MutSkipRestore {
		return
	}
	w.k.Restore(snap)
}
